// Command hidisc-asm assembles HiDISC assembly into the toolchain's
// binary format.
//
// Usage:
//
//	hidisc-asm [-o out.bin] [-l] prog.s
//
// With -l the listing (disassembly with labels) is printed instead of
// writing a binary; with -run the program is executed on the
// functional simulator and its OUT lines printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hidisc/internal/asm"
	"hidisc/internal/fnsim"
)

func main() {
	out := flag.String("o", "", "output binary path (default: input with .bin)")
	listing := flag.Bool("l", false, "print the listing instead of writing a binary")
	run := flag.Bool("run", false, "execute on the functional simulator and print output")
	maxInsts := flag.Uint64("max-insts", 1_000_000_000, "functional execution budget")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hidisc-asm [-o out.bin] [-l] [-run] prog.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	p, err := asm.Assemble(name, string(src))
	if err != nil {
		fatal(err)
	}

	switch {
	case *listing:
		fmt.Print(p.Listing())
	case *run:
		res, err := fnsim.RunProgram(p, *maxInsts)
		if err != nil {
			fatal(err)
		}
		for _, line := range res.Output {
			fmt.Println(line)
		}
		fmt.Fprintf(os.Stderr, "executed %d instructions, memory hash %#x\n", res.Insts, res.MemHash)
	default:
		dst := *out
		if dst == "" {
			dst = strings.TrimSuffix(path, filepath.Ext(path)) + ".bin"
		}
		f, err := os.Create(dst)
		if err != nil {
			fatal(err)
		}
		if err := p.WriteBinary(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d instructions, %d data bytes -> %s\n",
			name, len(p.Insts), len(p.Data), dst)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidisc-asm:", err)
	os.Exit(1)
}
