// Command hidisc-sim runs one program on one of the four simulated
// architectures and prints cycle counts and statistics.
//
// Usage:
//
//	hidisc-sim [-arch superscalar|cp+ap|cp+cmp|hidisc] [-l2 N -mem N] prog.{s,bin}
//	hidisc-sim -workload Pointer -arch hidisc
//
// The program is compiled with the HiDISC compiler (profiled when the
// architecture includes a CMP) and verified against the functional
// reference before statistics are reported.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hidisc/internal/asm"
	"hidisc/internal/cpu"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/simfault"
	"hidisc/internal/slicer"
	"hidisc/internal/stats"
	"hidisc/internal/telemetry"
	"hidisc/internal/workloads"
)

func main() {
	arch := flag.String("arch", "hidisc", "architecture: superscalar, cp+ap, cp+cmp, hidisc")
	workload := flag.String("workload", "", "run a built-in benchmark instead of a file")
	scale := flag.String("scale", "paper", "built-in workload scale: test or paper")
	l2lat := flag.Int("l2", 0, "override L2 latency (cycles)")
	memlat := flag.Int("mem", 0, "override memory latency (cycles)")
	maxInsts := flag.Uint64("max-insts", 1_000_000_000, "functional execution budget")
	traceCycles := flag.Int64("trace-cycles", 0, "print a text pipeline trace for the first N cycles")
	traceFile := flag.String("trace", "", "write a machine-wide event trace to FILE")
	traceFormat := flag.String("trace-format", "", "trace encoding: perfetto (default) or ndjson")
	timelineFile := flag.String("timeline", "", "write interval time series to FILE (.csv for CSV, else NDJSON)")
	timelineInterval := flag.Int64("timeline-interval", 0, "sampling interval in cycles (default 1024)")
	compare := flag.Bool("compare", false, "run all four architectures and print a comparison table")
	noSkip := flag.Bool("no-skip", false, "disable event-driven idle-cycle skipping (tick every cycle)")
	noCompile := flag.Bool("no-compile", false, "run the functional reference and cache profile on the pure interpreter instead of the compiled fast path")
	timeout := flag.Duration("timeout", 0, "abort a wedged simulation after this long (0 = no limit)")
	dumpDir := flag.String("dump-on-fault", "", "write fault snapshots as JSON into this directory")
	flag.Parse()

	faultDumpDir = *dumpDir
	if *compare && (*traceFile != "" || *timelineFile != "") {
		fatal(fmt.Errorf("-trace/-timeline record one machine; they cannot be combined with -compare"))
	}
	format, err := telemetry.ParseFormat(*traceFormat)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var p *isa.Program
	switch {
	case *workload != "":
		sc := workloads.ScalePaper
		if *scale == "test" {
			sc = workloads.ScaleTest
		}
		w, werr := workloads.ByName(*workload, sc)
		if werr != nil {
			fatal(werr)
		}
		p, err = w.Program()
	case flag.NArg() == 1:
		p, err = loadProgram(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: hidisc-sim [-arch A] (-workload NAME | prog.{s,bin})")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	hier := mem.DefaultHierConfig()
	if *l2lat > 0 {
		hier.L2.Latency = *l2lat
	}
	if *memlat > 0 {
		hier.MemLatency = *memlat
	}

	runRef, runProf := fnsim.RunProgram, profile.CacheProfile
	if *noCompile {
		runRef, runProf = fnsim.RunProgramInterp, profile.CacheProfileInterp
	}
	ref, err := runRef(p, *maxInsts)
	if err != nil {
		fatal(fmt.Errorf("reference run: %w", err))
	}

	opts := slicer.Options{}
	a := machine.Arch(*arch)
	if *compare || a == machine.CPCMP || a == machine.HiDISC {
		prof, perr := runProf(p, hier, *maxInsts)
		if perr != nil {
			fatal(perr)
		}
		opts.Profile = prof
	}
	b, err := slicer.Separate(p, opts)
	if err != nil {
		fatal(err)
	}

	if *compare {
		var reports []stats.Report
		for _, arch := range machine.Arches {
			acfg := machine.DefaultConfig(arch)
			acfg.Hier = hier
			acfg.NoSkip = *noSkip
			am, rerr := machine.New(b, acfg)
			if rerr != nil {
				fatal(rerr)
			}
			res, rerr := am.RunContext(ctx)
			if rerr != nil {
				fatal(rerr)
			}
			if res.MemHash != ref.MemHash {
				fatal(fmt.Errorf("%s: memory image differs from the reference", arch))
			}
			reports = append(reports, stats.Report{Result: res, SeqInsts: ref.Insts})
		}
		fmt.Print(stats.Compare(reports))
		return
	}
	cfg := machine.DefaultConfig(a)
	cfg.Hier = hier
	cfg.NoSkip = *noSkip
	if *traceCycles > 0 {
		tr := &cpu.TextTracer{W: os.Stderr, ToCycle: *traceCycles}
		cfg.Wide.Tracer = tr
		cfg.CP.Tracer = tr
		cfg.AP.Tracer = tr
	}
	label := *workload
	if label == "" && flag.NArg() == 1 {
		label = filepath.Base(flag.Arg(0))
	}
	var tw *telemetry.TraceWriter
	if *traceFile != "" {
		f, ferr := os.Create(*traceFile)
		if ferr != nil {
			fatal(ferr)
		}
		tw = telemetry.NewTraceWriter(f, format)
		cfg.Trace = tw.Session(label + "/" + string(a))
	}
	if *timelineFile != "" {
		cfg.Sampler = telemetry.NewSampler(*timelineInterval)
		cfg.Sampler.SetLabel(label + "/" + string(a))
	}
	mach, err := machine.New(b, cfg)
	if err != nil {
		fatal(err)
	}
	res, err := mach.RunContext(ctx)
	if tw != nil {
		if cerr := tw.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("writing %s: %w", *traceFile, cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if res.MemHash != ref.MemHash {
		fatal(fmt.Errorf("simulation memory image differs from the functional reference"))
	}
	if *timelineFile != "" {
		if werr := writeTimeline(*timelineFile, cfg.Sampler.Timeline()); werr != nil {
			fatal(werr)
		}
		fmt.Fprint(os.Stderr, stats.Sparklines(cfg.Sampler.Timeline()))
	}

	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Fprint(os.Stderr, stats.Report{Result: res, SeqInsts: ref.Insts})
}

// writeTimeline exports a timeline, choosing CSV for a .csv path and
// NDJSON otherwise.
func writeTimeline(path string, tl *telemetry.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".csv" {
		err = tl.WriteCSV(f)
	} else {
		err = tl.WriteNDJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func loadProgram(path string) (*isa.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if filepath.Ext(path) == ".bin" {
		return isa.ReadBinary(strings.NewReader(string(data)))
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return asm.Assemble(name, string(data))
}

// faultDumpDir, when set by -dump-on-fault, receives JSON snapshots of
// every typed fault carried by the error that killed the run.
var faultDumpDir string

func fatal(err error) {
	if faultDumpDir != "" {
		paths, werr := simfault.WriteSnapshots(faultDumpDir, err)
		if werr != nil {
			fmt.Fprintln(os.Stderr, "hidisc-sim: writing fault snapshots:", werr)
		}
		for _, p := range paths {
			fmt.Fprintln(os.Stderr, "hidisc-sim: fault snapshot written to", p)
		}
	}
	fmt.Fprintln(os.Stderr, "hidisc-sim:", err)
	os.Exit(1)
}
