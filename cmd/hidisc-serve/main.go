// Command hidisc-serve exposes the simulator as a service: a JSON job
// API over experiments.Runner with a content-addressed result cache,
// singleflight deduplication of identical in-flight submissions, and
// bounded-queue admission control (429 + Retry-After under overload).
//
// Usage:
//
//	hidisc-serve [-addr HOST:PORT] [-scale test|paper] [-j N]
//	             [-queue N] [-cache N] [-job-timeout D] [-drain D]
//	             [-store DIR] [-store-sync always|never]
//	             [-coord URL] [-advertise URL]
//
// With -coord, the server joins a hidisc-coord fleet: it registers its
// advertised URL and capacity, heartbeats on the coordinator's cadence,
// and deregisters before draining on SIGTERM so the coordinator stops
// routing to it the moment shutdown starts.
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"Pointer","arch":"hidisc"}'
//	curl -s localhost:8080/v1/batch -d '{"matrix":"fig8"}'
//	curl -s localhost:8080/metrics
//
// SIGTERM/SIGINT triggers a graceful drain: the health probe flips to
// 503, new submissions are refused, in-flight simulations finish (up
// to -drain), and the process exits 0. A second signal — or an expired
// drain deadline — cancels in-flight machines through the RunContext
// path and exits 1.
//
// -smoke runs the CI self-test: start the server on an ephemeral port,
// run one job through the HTTP client, SIGTERM ourselves, and verify
// the drain exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hidisc/internal/cluster"
	"hidisc/internal/debugserver"
	"hidisc/internal/machine"
	"hidisc/internal/resultstore"
	"hidisc/internal/simclient"
	"hidisc/internal/simserver"
	"hidisc/internal/tracing"
	"hidisc/internal/workloads"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	scale := flag.String("scale", "paper", "default workload scale: test or paper")
	jobs := flag.Int("j", 0, "concurrent simulation workers (<= 0: one per CPU)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the running jobs")
	cacheN := flag.Int("cache", 1024, "result cache entries (0 disables caching)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job simulation budget (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain deadline after SIGTERM")
	storeDir := flag.String("store", "", "durable result-store directory (the system of record; empty disables persistence)")
	storeSync := flag.String("store-sync", "always", "store fsync policy: always (every append is durable) or never (OS writeback; crash loses the unsynced tail)")
	coord := flag.String("coord", "", "hidisc-coord base URL to register with (empty: standalone)")
	advertise := flag.String("advertise", "", "base URL the fleet dials this worker at (default http://<listen addr>)")
	traceBuffer := flag.Int("trace-buffer", tracing.DefaultCapacity, "span ring capacity for GET /v1/traces (0 disables tracing)")
	traceMachine := flag.Bool("trace-machine", false, "capture a machine-telemetry Perfetto document on every simulate span (requires tracing)")
	slowJob := flag.Duration("slow-job", 0, "log a warning with the per-stage span breakdown for jobs slower than this (0 disables)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof (empty disables; never exposed on -addr)")
	smoke := flag.Bool("smoke", false, "self-test: serve, run one job via the client, SIGTERM, verify clean drain")
	flag.Parse()

	sc := workloads.ScalePaper
	if *scale == "test" {
		sc = workloads.ScaleTest
	}
	// All operational output is structured JSON on stderr: the server's
	// request/job logs and this process's lifecycle lines share one
	// stream a log pipeline can ingest without parsing prose.
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	cfg := simserver.Config{
		Scale:        sc,
		Workers:      *jobs,
		Queue:        *queue,
		CacheEntries: *cacheN,
		JobTimeout:   *jobTimeout,
		Logger:       logger,
		MachineTrace: *traceMachine,
		SlowJob:      *slowJob,
	}
	if *traceBuffer > 0 {
		cfg.Tracer = tracing.New("hidisc-serve", *traceBuffer)
	}
	if *debugAddr != "" {
		if _, err := debugserver.Start(*debugAddr, logger); err != nil {
			fatal(fmt.Errorf("debug listener: %w", err))
		}
	}
	if *smoke {
		*addr = "127.0.0.1:0"
		cfg.Scale = workloads.ScaleTest
	}
	if *storeDir != "" {
		policy, err := resultstore.ParseSyncPolicy(*storeSync)
		if err != nil {
			fatal(err)
		}
		st, rep, err := resultstore.Open(*storeDir, resultstore.Options{Sync: policy})
		if err != nil {
			// A corrupt system of record is an operator decision, not
			// something to repair silently; refuse to start.
			fatal(fmt.Errorf("opening result store: %w", err))
		}
		logger.Info("result store open",
			"dir", *storeDir, "sync", policy.String(),
			"records", rep.Records, "bytes", rep.Bytes,
			"tornTail", rep.TornTail, "truncatedBytes", rep.TruncatedBytes)
		cfg.Store = st
	}

	srv := simserver.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Info("listening", "url", fmt.Sprintf("http://%s", ln.Addr()),
		"scale", simserver.ScaleName(cfg.Scale))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Fleet membership: register with the coordinator and heartbeat
	// until shutdown begins.
	var agent *cluster.Agent
	agentCtx, agentCancel := context.WithCancel(context.Background())
	defer agentCancel()
	if *coord != "" {
		adv := *advertise
		if adv == "" {
			adv = fmt.Sprintf("http://%s", ln.Addr())
		}
		agent = &cluster.Agent{Coordinator: *coord, Advertise: adv, Server: srv, Logger: logger}
		go agent.Run(agentCtx)
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	if *smoke {
		go runSmoke(fmt.Sprintf("http://%s", ln.Addr()), logger)
	}

	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "deadline", *drain)
	}

	// Leave the fleet first: a deregistered worker gets no new routes,
	// so the drain below only waits on jobs already admitted.
	if agent != nil {
		agentCancel()
		dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
		agent.Deregister(dctx)
		dcancel()
	}
	// Graceful drain: refuse new work, let admitted jobs finish.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		// A second signal forces the issue immediately. Closing the
		// store here too is safe: CloseStore is once-guarded, so this
		// and the main drain path cannot double-close it.
		<-sigs
		logger.Warn("second signal: cancelling in-flight jobs")
		srv.ForceCancel()
		if err := srv.CloseStore(); err != nil {
			logger.Error("closing result store", "err", err.Error())
		}
	}()
	drainErr := srv.Drain(ctx)
	if drainErr != nil {
		logger.Error("drain failed", "err", drainErr.Error())
		srv.ForceCancel()
	}
	// Flush and close the system of record exactly once — CloseStore is
	// idempotent, so the force-cancel path above racing a second signal
	// cannot double-close it.
	if err := srv.CloseStore(); err != nil {
		logger.Error("closing result store", "err", err.Error())
		if drainErr == nil {
			drainErr = err
		}
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	if drainErr != nil {
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

// runSmoke drives the self-test against the live server, then signals
// the main goroutine to drain. Any failure exits non-zero immediately.
func runSmoke(base string, logger *slog.Logger) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := simclient.New(base)

	var err error
	for i := 0; i < 50; i++ {
		if err = c.Healthz(ctx); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		fatal(fmt.Errorf("smoke: healthz never came up: %w", err))
	}

	resp, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	if err != nil {
		fatal(fmt.Errorf("smoke: job: %w", err))
	}
	m, err := resp.Decode()
	if err != nil {
		fatal(fmt.Errorf("smoke: decode: %w", err))
	}
	if m.Cycles <= 0 {
		fatal(fmt.Errorf("smoke: implausible measurement: %+v", m))
	}
	// The same job again must come from the result cache.
	again, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	if err != nil {
		fatal(fmt.Errorf("smoke: cached job: %w", err))
	}
	if !again.Cached {
		fatal(errors.New("smoke: repeat submission missed the result cache"))
	}
	mts, err := c.Metrics(ctx)
	if err != nil || mts.Completed < 1 || mts.CacheHits < 1 {
		fatal(fmt.Errorf("smoke: metrics %+v: %v", mts, err))
	}
	// The same endpoint, content-negotiated to the Prometheus text
	// exposition, must carry the job-latency histogram.
	if err := checkPromMetrics(ctx, base); err != nil {
		fatal(fmt.Errorf("smoke: %w", err))
	}
	// Tracing is on by default: the jobs above must have left a span
	// tree in the ring, served as NDJSON.
	if err := checkTraces(ctx, c); err != nil {
		fatal(fmt.Errorf("smoke: %w", err))
	}
	logger.Info("smoke ok; sending SIGTERM",
		"workload", m.Workload, "arch", m.Arch, "cycles", m.Cycles)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		fatal(fmt.Errorf("smoke: self-signal: %w", err))
	}
}

// checkPromMetrics fetches /metrics with Accept: text/plain and
// verifies the Prometheus view is served with the exposition
// content-type and includes the job-latency histogram.
func checkPromMetrics(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("prom metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"# TYPE hidisc_job_seconds histogram",
		"hidisc_job_seconds_count",
		"hidisc_jobs_completed_total",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("prom metrics missing %q", want)
		}
	}
	return nil
}

// checkTraces verifies GET /v1/traces serves the span ring: the smoke
// jobs above must have produced a request-root span and a simulate
// span.
func checkTraces(ctx context.Context, c *simclient.Client) error {
	spans, err := c.Traces(ctx, "")
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	want := map[string]bool{"serve POST /v1/jobs": false, "serve.simulate": false}
	for _, s := range spans {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
		if s.TraceID == "" || s.SpanID == "" {
			return fmt.Errorf("traces: span %q missing ids", s.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			return fmt.Errorf("traces: no %q span in ring (%d spans)", name, len(spans))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidisc-serve:", err)
	os.Exit(1)
}
