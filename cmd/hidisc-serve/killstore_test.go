package main_test

// The store-smoke e2e: prove the result store is a real system of
// record by killing a live hidisc-serve with SIGKILL mid-batch — no
// drain, no deferred Close, the process simply ceases — then reopening
// the directory and requiring every result the server had acknowledged
// to read back byte-identical. A deliberately torn record is then
// appended (SIGKILL timing alone cannot be forced to land mid-append),
// the server restarts on the same address while a retrying client is
// already re-submitting, and the batch must complete with the store
// answering everything that survived: the hit counters are the proof
// that nothing durable was re-simulated.

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"hidisc/internal/resultstore"
	"hidisc/internal/simclient"
	"hidisc/internal/simserver"
)

// buildServe compiles the hidisc-serve binary once for the test.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hidisc-serve")
	out, err := exec.Command("go", "build", "-o", bin, "hidisc/cmd/hidisc-serve").CombinedOutput()
	if err != nil {
		t.Fatalf("building hidisc-serve: %v\n%s", err, out)
	}
	return bin
}

// startServe launches the binary and returns the process plus the URL
// parsed from its structured "listening" log line.
func startServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting hidisc-serve: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var line struct {
				Msg string `json:"msg"`
				URL string `json:"url"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				urlCh <- line.URL
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case url := <-urlCh:
		return cmd, url
	case <-time.After(30 * time.Second):
		t.Fatal("hidisc-serve never logged its listening URL")
		return nil, ""
	}
}

// freeAddr reserves an address the restarted server can reuse, so the
// client's retry loop has a stable target across the two generations.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestStoreSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildServe(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	args := []string{"-addr", addr, "-scale", "test", "-store", filepath.Join(dir, "store"), "-drain", "5s"}

	gen1, url := startServe(t, bin, args...)

	// Stream the fig8 matrix and SIGKILL the server after a few items
	// have been acknowledged. Every acknowledged item was appended (and
	// fsynced — the default policy) before its NDJSON line was written,
	// so each one is a durability promise the reopened store must keep.
	c := simclient.New(url)
	acked := map[string][]byte{}
	const killAfter = 3
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	err := c.BatchStream(ctx, simserver.BatchRequest{Matrix: "fig8"}, func(it simserver.BatchItem) error {
		if it.Error != nil {
			t.Fatalf("batch item %d failed: %+v", it.Index, it.Error)
		}
		acked[it.Key] = append([]byte(nil), it.Measurement...)
		if len(acked) == killAfter {
			if err := gen1.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
		}
		return nil
	})
	gen1.Wait()
	if err == nil && len(acked) < killAfter {
		t.Fatalf("stream ended cleanly after only %d items; kill never fired", len(acked))
	}
	if len(acked) < killAfter {
		t.Fatalf("only %d items acknowledged before the stream died", len(acked))
	}

	// Reopen the directory the dead process left behind. SIGKILL ran no
	// cleanup: recovery alone must account for every acknowledged
	// record, byte-identical.
	st, rep, err := resultstore.Open(filepath.Join(dir, "store"), resultstore.Options{})
	if err != nil {
		t.Fatalf("reopening store after kill -9: %v", err)
	}
	if rep.Records < killAfter {
		t.Fatalf("recovered %d records, want >= %d acknowledged before the kill", rep.Records, killAfter)
	}
	for key, want := range acked {
		got, ok, err := st.Get(key)
		if err != nil || !ok {
			t.Fatalf("acknowledged record %s lost by kill -9 (ok=%v err=%v)", key, ok, err)
		}
		if string(got) != string(want) {
			t.Errorf("record %s not byte-identical after kill -9", key)
		}
	}
	durable := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// SIGKILL timing can't be steered onto the narrow append window, so
	// tear the tail deliberately: a record whose length prefix promises
	// more bytes than follow. The restarted server must truncate it on
	// open and report the recovery, not refuse to start.
	log, err := os.OpenFile(filepath.Join(dir, "store", "results.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Write([]byte{0x80, 0x00, 0x00, 0x00, 'd', 'e', 'a', 'd'}); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// Restart on the same address and immediately re-submit the whole
	// matrix through a retrying client. The early attempts race the
	// restart — connection refused until the new process binds — which
	// is exactly what the backoff policy exists to absorb.
	_, url2 := startServe(t, bin, args...)
	if url2 != url {
		t.Fatalf("restarted server at %s, want the original %s", url2, url)
	}
	rc := simclient.New(url)
	rc.Retry = simclient.DefaultBackoff()
	items, errs, err := rc.Batch(ctx, simserver.BatchRequest{Matrix: "fig8"})
	if err != nil {
		t.Fatalf("re-submitting batch after restart: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("job %d failed after restart: %v", i, e)
		}
	}
	for _, it := range items {
		if want, ok := acked[it.Key]; ok && string(it.Measurement) != string(want) {
			t.Errorf("job %s differs across the restart", it.Key)
		}
	}

	// The counters are the receipt: every record that survived the kill
	// was served from the store (zero re-simulation of durable work),
	// recovery saw them all, and the torn tail was measured, not hidden.
	m, err := rc.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Store.State != "ok" {
		t.Errorf("store state %q after recovery, want ok", m.Store.State)
	}
	if m.Store.Hits < int64(durable) {
		t.Errorf("store hits %d, want >= %d: durable results were re-simulated", m.Store.Hits, durable)
	}
	if m.Store.RecoveredRecords != durable {
		t.Errorf("recovered %d records, want %d", m.Store.RecoveredRecords, durable)
	}
	if !m.Store.TornTail || m.Store.TruncatedBytes == 0 {
		t.Errorf("torn tail not reported: tornTail=%v truncatedBytes=%d", m.Store.TornTail, m.Store.TruncatedBytes)
	}
}
