// Command hidisc-compile runs the HiDISC compiler's stream separation
// on a sequential binary (or assembly source): it derives the program
// flow graph, slices the Access and Computation streams, inserts queue
// communication, and — when profiling is enabled — builds the Cache
// Miss Access Slices. The output is a human-readable separation
// report; -cs/-as write the separated streams as binaries.
//
// Usage:
//
//	hidisc-compile [-profile] [-cs cs.bin] [-as as.bin] prog.{s,bin}
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
)

func main() {
	withProfile := flag.Bool("profile", true, "run the cache-access profile and build CMAS")
	csOut := flag.String("cs", "", "write the computation stream binary here")
	asOut := flag.String("as", "", "write the access stream binary here")
	maxInsts := flag.Uint64("max-insts", 1_000_000_000, "profiling execution budget")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hidisc-compile [-profile] [-cs out] [-as out] prog.{s,bin}")
		os.Exit(2)
	}
	p, err := loadProgram(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opts := slicer.Options{}
	if *withProfile {
		prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), *maxInsts)
		if err != nil {
			fatal(fmt.Errorf("profiling: %w", err))
		}
		opts.Profile = prof
	}
	b, err := slicer.Separate(p, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(b.Report())

	if *csOut != "" {
		if err := writeBinary(*csOut, b.CS); err != nil {
			fatal(err)
		}
	}
	if *asOut != "" {
		if err := writeBinary(*asOut, b.AS); err != nil {
			fatal(err)
		}
	}
}

func loadProgram(path string) (*isa.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if filepath.Ext(path) == ".bin" {
		return isa.ReadBinary(strings.NewReader(string(data)))
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return asm.Assemble(name, string(data))
}

func writeBinary(path string, p *isa.Program) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidisc-compile:", err)
	os.Exit(1)
}
