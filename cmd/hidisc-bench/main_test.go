package main

import (
	"strings"
	"testing"
)

// A -remote run executes its simulations in another process, so local
// telemetry flags would silently record nothing; they must be refused
// with an error naming the conflict.
func TestRemoteRefusesTelemetryFlags(t *testing.T) {
	cases := []struct {
		remote, trace, timeline string
		wantErr                 string
	}{
		{"", "", "", ""},
		{"", "t.json", "tl.ndjson", ""},
		{"http://host:8080", "", "", ""},
		{"http://host:8080", "t.json", "", "-trace"},
		{"http://host:8080", "", "tl.ndjson", "-timeline"},
		{"http://host:8080", "t.json", "tl.ndjson", "-trace"},
	}
	for _, tc := range cases {
		err := validateTelemetryFlags(tc.remote, tc.trace, tc.timeline)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("validateTelemetryFlags(%q, %q, %q) = %v, want nil", tc.remote, tc.trace, tc.timeline, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("validateTelemetryFlags(%q, %q, %q) accepted a conflicting combination", tc.remote, tc.trace, tc.timeline)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) || !strings.Contains(err.Error(), "-remote") {
			t.Errorf("error %q should name both %s and -remote", err, tc.wantErr)
		}
	}
}
