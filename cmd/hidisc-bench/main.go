// Command hidisc-bench regenerates the paper's evaluation: Table 1
// (simulation parameters), Figure 8 (speedup per benchmark), Table 2
// (average speedups), Figure 9 (cache-miss reduction), and Figure 10
// (latency tolerance for Pointer and Neighborhood).
//
// Usage:
//
//	hidisc-bench [-scale test|paper] [-j N] [-table1] [-fig8] [-table2] [-fig9] [-fig10] [-all]
//	hidisc-bench -remote http://HOST:PORT -fig8   # drive a hidisc-serve instance
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hidisc/internal/experiments"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/simclient"
	"hidisc/internal/simfault"
	"hidisc/internal/simserver"
	"hidisc/internal/stats"
	"hidisc/internal/telemetry"
	"hidisc/internal/workloads"
)

// validateTelemetryFlags rejects flag combinations that silently record
// nothing: -trace and -timeline instrument the local simulator, so a
// -remote run (where the simulations happen in another process) cannot
// honour them.
func validateTelemetryFlags(remote, trace, timeline string) error {
	if remote == "" {
		return nil
	}
	if trace != "" {
		return fmt.Errorf("-trace records the local simulator and cannot be combined with -remote (the simulations run on %s)", remote)
	}
	if timeline != "" {
		return fmt.Errorf("-timeline records the local simulator and cannot be combined with -remote (the simulations run on %s)", remote)
	}
	return nil
}

// writeTimelines exports every job's timeline into one NDJSON file;
// the per-row label field identifies the job.
func writeTimelines(path string, samplers []*telemetry.Sampler) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, s := range samplers {
		if err == nil {
			err = s.Timeline().WriteNDJSON(f)
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	scale := flag.String("scale", "paper", "workload scale: test or paper")
	jobs := flag.Int("j", 0, "number of parallel simulation workers (<= 0: one per CPU)")
	remote := flag.String("remote", "", "submit simulations to a hidisc-serve instance at this base URL instead of running locally")
	t1 := flag.Bool("table1", false, "print Table 1 (simulation parameters)")
	f8 := flag.Bool("fig8", false, "run Figure 8 (speedups)")
	t2 := flag.Bool("table2", false, "run Table 2 (average speedups)")
	f9 := flag.Bool("fig9", false, "run Figure 9 (miss reduction)")
	f10 := flag.Bool("fig10", false, "run Figure 10 (latency tolerance)")
	lod := flag.Bool("lod", false, "run the loss-of-decoupling analysis table")
	extras := flag.Bool("extras", false, "also run the Matrix and CornerTurn stressmarks")
	all := flag.Bool("all", false, "run everything")
	timeout := flag.Duration("timeout", 0, "abort wedged simulations after this long (0 = no limit)")
	dumpDir := flag.String("dump-on-fault", "", "write fault snapshots as JSON into this directory")
	noSkip := flag.Bool("no-skip", false, "disable event-driven idle-cycle skipping (tick every cycle)")
	noCompile := flag.Bool("no-compile", false, "run the functional reference and cache profile on the pure interpreter instead of the compiled fast path")
	traceFile := flag.String("trace", "", "write a machine-wide event trace of every simulation to FILE (forces -j 1)")
	traceFormat := flag.String("trace-format", "", "trace encoding: perfetto (default) or ndjson")
	timelineFile := flag.String("timeline", "", "write per-job interval time series as NDJSON to FILE (forces -j 1)")
	timelineInterval := flag.Int64("timeline-interval", 0, "sampling interval in cycles (default 1024)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	benchJSON := flag.String("bench-json", "", "run the Figure 8 matrix sequentially and write per-run timings as JSON to this file")
	benchReps := flag.Int("bench-reps", 3, "bench-json repetitions per entry, interleaved; each entry commits its minimum wall time")
	flag.Parse()

	faultDumpDir = *dumpDir
	if err := validateTelemetryFlags(*remote, *traceFile, *timelineFile); err != nil {
		fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	cpuProfiling = *cpuProfile != ""
	memProfilePath = *memProfile
	defer stopProfiles()

	sc := workloads.ScalePaper
	if *scale == "test" {
		sc = workloads.ScaleTest
	}
	if !(*t1 || *f8 || *t2 || *f9 || *f10 || *lod || *extras) {
		*all = true
	}

	r := experiments.NewRunner(sc)
	r.Workers = *jobs
	r.NoCompile = *noCompile
	if *noSkip {
		r.Configure = func(c *machine.Config) { c.NoSkip = true }
	}
	var tw *telemetry.TraceWriter
	var samplers []*telemetry.Sampler
	if *traceFile != "" || *timelineFile != "" {
		format, err := telemetry.ParseFormat(*traceFormat)
		if err != nil {
			fatal(err)
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			tw = telemetry.NewTraceWriter(f, format)
		}
		// One machine at a time so trace sessions never interleave on the
		// shared writer, and no memo so every job actually simulates (a
		// memo hit would leave a silent hole in the trace).
		r.Workers = 1
		r.NoMemo = true
		prev := r.Configure
		var jobSeq int
		r.Configure = func(c *machine.Config) {
			if prev != nil {
				prev(c)
			}
			jobSeq++
			label := fmt.Sprintf("job%03d/%s", jobSeq, c.Arch)
			if tw != nil {
				c.Trace = tw.Session(label)
			}
			if *timelineFile != "" {
				s := telemetry.NewSampler(*timelineInterval)
				s.SetLabel(label)
				c.Sampler = s
				samplers = append(samplers, s)
			}
		}
	}
	finishTelemetry := func() {
		if tw != nil {
			if err := tw.Close(); err != nil {
				fatal(fmt.Errorf("writing %s: %w", *traceFile, err))
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *traceFile, tw.Events())
		}
		if *timelineFile != "" {
			if err := writeTimelines(*timelineFile, samplers); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "timeline written to %s (%d jobs)\n", *timelineFile, len(samplers))
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		r.Ctx = ctx
	}
	var rem *remoteRunner
	if *remote != "" {
		// DefaultOptions carries the production retry policy: ride
		// through server restarts and overload shedding instead of
		// failing the figure. The server is content-addressed (and, with
		// -store, durable), so a retried batch re-simulates nothing that
		// already completed. The same Options value configures the
		// coordinator's per-worker clients, so pointing -remote at a
		// cluster coordinator needs no flag changes.
		rc := simclient.NewWithOptions(*remote, simclient.DefaultOptions())
		rem = &remoteRunner{c: rc, ctx: ctx, scale: *scale, hier: mem.DefaultHierConfig()}
		if err := rem.c.Healthz(ctx); err != nil {
			fatal(fmt.Errorf("remote %s: %w", *remote, err))
		}
	}
	start := time.Now()

	if *benchJSON != "" {
		if err := writeBenchJSON(r, *scale, *noSkip, *noCompile, *benchReps, *benchJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench timings written to %s in %v\n",
			*benchJSON, time.Since(start).Round(time.Millisecond))
		finishTelemetry()
		return
	}

	if *all || *t1 {
		fmt.Println(experiments.Table1())
	}
	var fig8 *experiments.Fig8
	if *all || *f8 || *t2 || *f9 || *lod {
		var err error
		if rem != nil {
			fig8, err = rem.fig8()
		} else {
			fig8, err = experiments.RunFig8(r)
		}
		if err != nil {
			fatal(err)
		}
	}
	if *all || *f8 {
		fmt.Println(fig8)
	}
	if *all || *t2 {
		fmt.Println(experiments.RunTable2(fig8))
	}
	if *all || *f9 {
		fig9 := experiments.RunFig9(fig8)
		fmt.Println(fig9)
		fmt.Printf("average HiDISC miss reduction: %.1f%%\n\n", fig9.AverageReduction("hidisc")*100)
	}
	if *all || *lod {
		fmt.Println(experiments.LODTable(fig8))
	}
	if *all || *f10 {
		for _, name := range []string{"Pointer", "NB"} {
			var p *experiments.Fig10
			var err error
			if rem != nil {
				p, err = rem.fig10(name)
			} else {
				p, err = experiments.RunFig10(r, name)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Println(p)
		}
	}
	if *all || *extras {
		fmt.Println("Extra stressmarks (suite completion; not in the paper's figures):")
		for _, name := range []string{"Matrix", "CornerTurn"} {
			var base int64
			for _, arch := range machine.Arches {
				var m experiments.Measurement
				var err error
				if rem != nil {
					m, err = rem.run(name, arch)
				} else {
					m, err = r.Run(name, arch, r.Hier)
				}
				if err != nil {
					fatal(err)
				}
				if arch == machine.Superscalar {
					base = m.Cycles
				}
				fmt.Printf("  %-10s %-12s %10d cycles  %.3fx  IPC %.3f\n",
					name, arch, m.Cycles, float64(base)/float64(m.Cycles), m.IPC)
			}
		}
		fmt.Println()
	}
	finishTelemetry()
	wall := time.Since(start)
	if rem != nil {
		if ms, err := rem.c.Metrics(ctx); err == nil {
			fmt.Fprintf(os.Stderr, "total wall time: %v (remote %s): server %s\n",
				wall.Round(time.Millisecond), *remote, ms.Throughput)
		} else {
			fmt.Fprintf(os.Stderr, "total wall time: %v (remote %s)\n", wall.Round(time.Millisecond), *remote)
		}
		return
	}
	cycles, insts := r.SimTotals()
	tp := stats.Throughput{SimCycles: cycles, SimInsts: insts, Wall: wall}
	fmt.Fprintf(os.Stderr, "total wall time: %v (-j %d): %s\n",
		wall.Round(time.Millisecond), experiments.EffectiveWorkers(*jobs), tp)
}

// remoteRunner drives the figures through a hidisc-serve instance. The
// job lists are the same canonical ones the local path runs, so the
// assembled figures are bit-identical to a local run (pinned by the
// simserver end-to-end test).
type remoteRunner struct {
	c     *simclient.Client
	ctx   context.Context
	scale string
	hier  mem.HierConfig
}

// submit runs a job list remotely and returns measurements in job
// order.
func (rr *remoteRunner) submit(jobs []experiments.Job) ([]experiments.Measurement, error) {
	br := simserver.BatchRequest{Scale: rr.scale}
	for _, j := range jobs {
		br.Jobs = append(br.Jobs, simserver.JobRequest{
			Workload: j.Workload, Arch: j.Arch, Hier: simserver.HierJSON(j.Hier),
		})
	}
	ms, _, err := rr.c.Measurements(rr.ctx, br)
	return ms, err
}

func (rr *remoteRunner) fig8() (*experiments.Fig8, error) {
	jobs := experiments.Fig8Jobs(rr.hier, 0)
	ms, err := rr.submit(jobs)
	if err != nil {
		return nil, err
	}
	return experiments.Fig8From(experiments.GroupByWorkloadArch(jobs, ms)), nil
}

func (rr *remoteRunner) fig10(name string) (*experiments.Fig10, error) {
	jobs := experiments.Fig10Jobs(name, rr.hier, 0)
	ms, err := rr.submit(jobs)
	if err != nil {
		return nil, err
	}
	return experiments.Fig10From(name, jobs, ms), nil
}

func (rr *remoteRunner) run(name string, arch machine.Arch) (experiments.Measurement, error) {
	resp, err := rr.c.Run(rr.ctx, simserver.JobRequest{
		Workload: name, Arch: arch, Scale: rr.scale, Hier: simserver.HierJSON(rr.hier),
	})
	if err != nil {
		return experiments.Measurement{}, err
	}
	return resp.Decode()
}

// benchEntry is one (workload, architecture) timing in the bench-json
// report: the repo's performance trajectory is tracked as a series of
// these files (BENCH_fig8.json on main is the current baseline).
// WallSeconds is the minimum over the report's reps — the least-noisy
// estimator of the true cost on a shared host, since scheduling and
// cache interference only ever add time.
type benchEntry struct {
	Workload      string  `json:"workload"`
	Arch          string  `json:"arch"`
	SimCycles     int64   `json:"simCycles"`
	WallSeconds   float64 `json:"wallSeconds"`
	MCyclesPerSec float64 `json:"mcyclesPerSec"`
}

type benchReport struct {
	Scale     string `json:"scale"`
	Reps      int    `json:"reps"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
	NoSkip    bool   `json:"noSkip,omitempty"`
	NoCompile bool   `json:"noCompile,omitempty"`
	// Totals are sums over the per-entry minima (and the cycle total is
	// additionally verified identical on every repetition).
	TotalWallSeconds   float64      `json:"totalWallSeconds"`
	TotalSimCycles     int64        `json:"totalSimCycles"`
	TotalMCyclesPerSec float64      `json:"totalMCyclesPerSec"`
	Entries            []benchEntry `json:"entries"`
}

// writeBenchJSON times the Figure 8 matrix sequentially — one
// simulation at a time, compile time excluded — and writes the report
// to path. The matrix is repeated reps times in interleaved order
// (whole matrix, then again) so a transient noise burst cannot poison
// every repetition of one entry, and each entry commits its minimum.
// Every run is labelled with its workload and arch for -cpuprofile
// attribution, and every repetition must reproduce the entry's cycle
// count exactly — a mismatch means the simulator went nondeterministic
// and fails the report.
func writeBenchJSON(r *experiments.Runner, scale string, noSkip, noCompile bool, reps int, path string) error {
	if reps < 1 {
		reps = 1
	}
	rep := benchReport{
		Scale: scale, Reps: reps, NoSkip: noSkip, NoCompile: noCompile,
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	r.NoMemo = true // every timed repetition must actually simulate
	type job struct {
		name string
		arch machine.Arch
	}
	var jobs []job
	for _, name := range workloads.Names() {
		if _, err := r.Compile(name); err != nil {
			return err
		}
		for _, arch := range machine.Arches {
			jobs = append(jobs, job{name, arch})
		}
	}
	entries := make([]benchEntry, len(jobs))
	for rp := 0; rp < reps; rp++ {
		for i, j := range jobs {
			var m experiments.Measurement
			var err error
			t0 := time.Now()
			pprof.Do(context.Background(),
				pprof.Labels("workload", j.name, "arch", string(j.arch)),
				func(context.Context) { m, err = r.Run(j.name, j.arch, r.Hier) })
			if err != nil {
				return fmt.Errorf("%s/%s: %w", j.name, j.arch, err)
			}
			wall := time.Since(t0).Seconds()
			e := &entries[i]
			switch {
			case rp == 0:
				*e = benchEntry{
					Workload: j.name, Arch: string(j.arch),
					SimCycles: m.Cycles, WallSeconds: wall,
				}
			case m.Cycles != e.SimCycles:
				return fmt.Errorf("%s/%s: nondeterministic cycle count: rep %d simulated %d cycles, rep 0 simulated %d",
					j.name, j.arch, rp+1, m.Cycles, e.SimCycles)
			case wall < e.WallSeconds:
				e.WallSeconds = wall
			}
		}
	}
	for i := range entries {
		e := &entries[i]
		e.MCyclesPerSec = float64(e.SimCycles) / 1e6 / e.WallSeconds
		rep.TotalSimCycles += e.SimCycles
		rep.TotalWallSeconds += e.WallSeconds
	}
	rep.Entries = entries
	if rep.TotalWallSeconds > 0 {
		rep.TotalMCyclesPerSec = float64(rep.TotalSimCycles) / 1e6 / rep.TotalWallSeconds
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// faultDumpDir, when set by -dump-on-fault, receives JSON snapshots of
// every typed fault carried by the error that killed the run.
var faultDumpDir string

// Profile state shared with fatal(): os.Exit skips defers, so the
// error path must flush profiles explicitly or a faulting run would
// leave a truncated, unusable profile.
var (
	cpuProfiling   bool
	memProfilePath string
)

func stopProfiles() {
	if cpuProfiling {
		pprof.StopCPUProfile()
		cpuProfiling = false
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hidisc-bench: heap profile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialise final live-heap numbers
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "hidisc-bench: heap profile:", err)
		}
		memProfilePath = ""
	}
}

func fatal(err error) {
	stopProfiles()
	if faultDumpDir != "" {
		paths, werr := simfault.WriteSnapshots(faultDumpDir, err)
		if werr != nil {
			fmt.Fprintln(os.Stderr, "hidisc-bench: writing fault snapshots:", werr)
		}
		for _, p := range paths {
			fmt.Fprintln(os.Stderr, "hidisc-bench: fault snapshot written to", p)
		}
	}
	fmt.Fprintln(os.Stderr, "hidisc-bench:", err)
	os.Exit(1)
}
