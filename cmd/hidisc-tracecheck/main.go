// Command hidisc-tracecheck validates telemetry artifacts produced by
// hidisc-sim/hidisc-bench, so `make trace-smoke` can assert the
// observability pipeline end to end instead of merely checking the
// files exist:
//
//   - -trace FILE: the file must parse as Chrome trace-event JSON
//     (what ui.perfetto.dev loads) with a non-empty traceEvents array
//     containing duration slices, counters, and track metadata;
//   - -timeline FILE: every NDJSON row must parse, and each labelled
//     series must honour the sampler's row contract — boundary rows at
//     (i+1)*interval and exactly ceil(lastCycle/interval) rows;
//   - -merged FILE: a merged service+machine trace assembled by
//     hidisc-coord -trace-dir must carry a well-formed span forest
//     (every span's parent resolves in-file or is a remote root, child
//     spans share their parent's trace ID) and every spliced machine
//     timeline must be parented under the simulate span that ran it
//     (matching span_context ids, events starting at or after the
//     span).
//
// Exit status 0 means all supplied artifacts validate; any violation
// prints a diagnostic and exits 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	traceFile := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	timelineFile := flag.String("timeline", "", "timeline NDJSON file to validate")
	mergedFile := flag.String("merged", "", "merged service+machine trace (hidisc-coord -trace-dir output) to validate")
	flag.Parse()

	if *traceFile == "" && *timelineFile == "" && *mergedFile == "" {
		fatal(fmt.Errorf("nothing to check: pass -trace, -timeline and/or -merged"))
	}
	if *traceFile != "" {
		if err := checkTrace(*traceFile); err != nil {
			fatal(fmt.Errorf("%s: %w", *traceFile, err))
		}
	}
	if *timelineFile != "" {
		if err := checkTimeline(*timelineFile); err != nil {
			fatal(fmt.Errorf("%s: %w", *timelineFile, err))
		}
	}
	if *mergedFile != "" {
		if err := checkMerged(*mergedFile); err != nil {
			fatal(fmt.Errorf("%s: %w", *mergedFile, err))
		}
	}
}

// traceEvent is the subset of the Chrome trace-event schema the
// checker inspects.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Pid  int    `json:"pid"`
}

func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	phases := map[string]int{}
	pids := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			return fmt.Errorf("event %d (%q) has no phase", i, ev.Name)
		}
		phases[ev.Ph]++
		pids[ev.Pid] = true
	}
	// A usable machine trace always carries track metadata (M), at
	// least one duration slice (X), and counter samples (C); a file
	// with none of these renders as an empty screen in Perfetto.
	for _, ph := range []string{"M", "X", "C"} {
		if phases[ph] == 0 {
			return fmt.Errorf("no %q-phase events (phases seen: %v)", ph, phases)
		}
	}
	fmt.Printf("%s: ok (%d events, %d tracks, phases %v)\n", path, len(doc.TraceEvents), len(pids), phases)
	return nil
}

// mergedEvent is the richer event subset the merged-trace checker
// inspects (span identity travels in args).
type mergedEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

func (e mergedEvent) arg(key string) string {
	s, _ := e.Args[key].(string)
	return s
}

func checkMerged(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []mergedEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not valid trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}

	// Index the service spans: X events that carry a spanId.
	spans := map[string]mergedEvent{}
	services := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.arg("spanId") != "" {
			if _, dup := spans[ev.arg("spanId")]; dup {
				return fmt.Errorf("span id %s appears twice", ev.arg("spanId"))
			}
			spans[ev.arg("spanId")] = ev
			services++
		}
	}
	if services == 0 {
		return fmt.Errorf("no service spans (X events with args.spanId)")
	}

	// Span forest well-formedness: every parent pointer resolves
	// in-file (a root has parentId "") and children stay in their
	// parent's trace — the traceparent propagation invariant.
	roots := 0
	for id, ev := range spans {
		parent := ev.arg("parentId")
		if parent == "" {
			roots++
			continue
		}
		pev, ok := spans[parent]
		if !ok {
			return fmt.Errorf("span %s (%q) orphaned: parent %s not in file", id, ev.Name, parent)
		}
		if pev.arg("traceId") != ev.arg("traceId") {
			return fmt.Errorf("span %s (%q) trace %s != parent trace %s",
				id, ev.Name, ev.arg("traceId"), pev.arg("traceId"))
		}
	}
	if roots == 0 {
		return fmt.Errorf("no root span")
	}

	// Machine timelines: a pid group carrying a span_context metadata
	// event is a spliced machine document. Its ids must name a simulate
	// span present in the file, and its events must start at or after
	// that span — the splice re-timed them onto the span's clock.
	type machineGroup struct {
		spanID, traceID string
		minTs           int64
		events          int
	}
	groups := map[int]*machineGroup{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "span_context" {
			g := groups[ev.Pid]
			if g == nil {
				g = &machineGroup{minTs: -1}
				groups[ev.Pid] = g
			}
			g.spanID, g.traceID = ev.arg("spanId"), ev.arg("traceId")
		}
	}
	for _, ev := range doc.TraceEvents {
		g, ok := groups[ev.Pid]
		if !ok || ev.Ph == "M" {
			continue
		}
		g.events++
		if g.minTs < 0 || ev.Ts < g.minTs {
			g.minTs = ev.Ts
		}
	}
	machines := 0
	for pid, g := range groups {
		sp, ok := spans[g.spanID]
		if !ok {
			return fmt.Errorf("machine pid %d: span_context %s names no span in file", pid, g.spanID)
		}
		if sp.arg("traceId") != g.traceID {
			return fmt.Errorf("machine pid %d: trace %s != owning span's trace %s", pid, g.traceID, sp.arg("traceId"))
		}
		if g.events == 0 {
			return fmt.Errorf("machine pid %d: no timeline events", pid)
		}
		if g.minTs < sp.Ts {
			return fmt.Errorf("machine pid %d: first event at %dµs precedes its simulate span at %dµs", pid, g.minTs, sp.Ts)
		}
		machines++
	}

	fmt.Printf("%s: ok (%d events, %d service spans, %d roots, %d machine timelines)\n",
		path, len(doc.TraceEvents), services, roots, machines)
	return nil
}

// series accumulates one labelled timeline's rows in file order.
type series struct {
	interval int64
	cycles   []int64
}

func checkTimeline(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	order := []string{}
	byLabel := map[string]*series{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row struct {
			Cycle    int64  `json:"cycle"`
			Interval int64  `json:"interval"`
			Label    string `json:"label"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fmt.Errorf("line %d: not valid JSON: %w", line, err)
		}
		if row.Interval <= 0 {
			return fmt.Errorf("line %d: interval %d", line, row.Interval)
		}
		s, ok := byLabel[row.Label]
		if !ok {
			s = &series{interval: row.Interval}
			byLabel[row.Label] = s
			order = append(order, row.Label)
		}
		if s.interval != row.Interval {
			return fmt.Errorf("line %d: series %q changes interval %d -> %d", line, row.Label, s.interval, row.Interval)
		}
		s.cycles = append(s.cycles, row.Cycle)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if line == 0 {
		return fmt.Errorf("no rows")
	}

	for _, label := range order {
		s := byLabel[label]
		last := s.cycles[len(s.cycles)-1]
		// Row contract (see telemetry.Sampler): in-loop samples land
		// exactly on interval boundaries, the final flush lands on the
		// run's last cycle, and the total is ceil(last/interval).
		want := (last + s.interval - 1) / s.interval
		if int64(len(s.cycles)) != want {
			return fmt.Errorf("series %q: %d rows, want ceil(%d/%d) = %d", label, len(s.cycles), last, s.interval, want)
		}
		for i, c := range s.cycles[:len(s.cycles)-1] {
			if c != int64(i+1)*s.interval {
				return fmt.Errorf("series %q row %d: cycle %d, want boundary %d", label, i, c, int64(i+1)*s.interval)
			}
		}
		if last <= int64(len(s.cycles)-1)*s.interval {
			return fmt.Errorf("series %q final row cycle %d does not extend past the last boundary", label, last)
		}
	}
	fmt.Printf("%s: ok (%d rows, %d series)\n", path, line, len(order))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidisc-tracecheck:", err)
	os.Exit(1)
}
