// Command hidisc-coord fronts a fleet of hidisc-serve workers with the
// same job API a single worker serves. Jobs route to workers by
// consistent-hashing the canonical job key, so each worker's result
// cache, durable store and singleflight dedup stay effective on its
// shard of the key space; a worker that dies mid-batch has its
// in-flight jobs requeued onto the ring minus the dead node.
//
// Usage:
//
//	hidisc-coord [-addr HOST:PORT] [-scale test|paper]
//	             [-workers URL,URL,...] [-heartbeat D] [-ttl D]
//	             [-drain D]
//
//	hidisc-serve -addr 127.0.0.1:8081 -coord http://127.0.0.1:8080 &
//	hidisc-serve -addr 127.0.0.1:8082 -coord http://127.0.0.1:8080 &
//	hidisc-coord -addr 127.0.0.1:8080
//	curl -s localhost:8080/v1/batch -d '{"matrix":"fig8"}'
//	hidisc-bench -remote http://127.0.0.1:8080 -fig8
//
// Workers join by registering themselves (hidisc-serve -coord) or by
// being named in -workers, in which case the coordinator probes and
// adopts them. GET /healthz reports per-worker liveness and store
// state; GET /metrics merges the fleet's counters (JSON or Prometheus
// text). SIGTERM/SIGINT drains: new submissions are refused, forwarded
// jobs finish (up to -drain), and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hidisc/internal/cluster"
	"hidisc/internal/debugserver"
	"hidisc/internal/simclient"
	"hidisc/internal/tracing"
	"hidisc/internal/workloads"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	scale := flag.String("scale", "paper", "default workload scale: test or paper")
	workers := flag.String("workers", "", "comma-separated worker base URLs to probe and adopt (workers may also self-register via hidisc-serve -coord)")
	heartbeat := flag.Duration("heartbeat", time.Second, "heartbeat cadence workers are told to use")
	ttl := flag.Duration("ttl", 3*time.Second, "liveness budget: silent past -ttl is suspect, past 2x -ttl is dead")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain deadline after SIGTERM")
	traceBuffer := flag.Int("trace-buffer", tracing.DefaultCapacity, "span ring capacity for GET /v1/traces (0 disables tracing)")
	traceDir := flag.String("trace-dir", "", "assemble one merged Perfetto trace file per traced request into this directory (requires tracing)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof (empty disables; never exposed on -addr)")
	flag.Parse()

	sc := workloads.ScalePaper
	if *scale == "test" {
		sc = workloads.ScaleTest
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	var static []string
	for _, w := range strings.Split(*workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			static = append(static, strings.TrimRight(w, "/"))
		}
	}
	ccfg := cluster.Config{
		Scale:             sc,
		HeartbeatInterval: *heartbeat,
		TTL:               *ttl,
		ClientOptions:     simclient.Options{},
		StaticWorkers:     static,
		Logger:            logger,
	}
	if *traceBuffer > 0 {
		ccfg.Tracer = tracing.New("hidisc-coord", *traceBuffer)
	}
	if *traceDir != "" {
		if ccfg.Tracer == nil {
			fatal(fmt.Errorf("-trace-dir requires tracing (-trace-buffer > 0)"))
		}
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(fmt.Errorf("trace dir: %w", err))
		}
		ccfg.TraceDir = *traceDir
	}
	if *debugAddr != "" {
		if _, err := debugserver.Start(*debugAddr, logger); err != nil {
			fatal(fmt.Errorf("debug listener: %w", err))
		}
	}
	co := cluster.New(ccfg)
	runCtx, stopRun := context.WithCancel(context.Background())
	defer stopRun()
	go co.Run(runCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: co.Handler()}
	logger.Info("listening", "url", fmt.Sprintf("http://%s", ln.Addr()),
		"scale", *scale, "staticWorkers", len(static))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "deadline", *drain)
	}

	// Graceful drain: refuse new submissions, let forwarded jobs finish
	// on their workers. A second signal abandons them.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sigs
		logger.Warn("second signal: abandoning in-flight forwards")
		co.ForceCancel()
	}()
	drainErr := co.Drain(ctx)
	if drainErr != nil {
		logger.Error("drain failed", "err", drainErr.Error())
		co.ForceCancel()
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	if drainErr != nil {
		os.Exit(1)
	}
	logger.Info("drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hidisc-coord:", err)
	os.Exit(1)
}
