package main_test

// The cluster-smoke e2e: prove the coordinator is a real scale-out
// layer by running a fig8-derived batch through a three-worker fleet,
// SIGKILLing one worker while its share of the batch is still in
// flight, and requiring the batch to complete byte-identical to a
// single standalone worker — the requeue/reroute counters are the
// receipt that the dead worker's jobs were replayed on the survivors,
// not lost. A second test drains the whole fleet with SIGTERM and
// requires every process to exit 0 with the departures recorded as
// graceful (deregistered, not deaths).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"hidisc/internal/cluster"
	"hidisc/internal/machine"
	"hidisc/internal/simclient"
	"hidisc/internal/simserver"
	"hidisc/internal/tracing"
	"hidisc/internal/workloads"
)

// buildBin compiles one of the repo's commands for the test.
func buildBin(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, "hidisc/"+pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProc launches a binary and returns the process plus the URL
// parsed from its structured "listening" log line.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var line struct {
				Msg string `json:"msg"`
				URL string `json:"url"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				urlCh <- line.URL
			}
			// Keep draining so the child never blocks on a full pipe.
		}
	}()
	select {
	case url := <-urlCh:
		return cmd, url
	case <-time.After(30 * time.Second):
		t.Fatal("process never logged its listening URL")
		return nil, ""
	}
}

// fetchSpans pulls GET /v1/traces from a process and decodes the
// NDJSON span stream, filtered by request ID.
func fetchSpans(t *testing.T, base, requestID string) []tracing.Span {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces?request=" + requestID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []tracing.Span
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var s tracing.Span
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("traces NDJSON from %s: %v", base, err)
		}
		spans = append(spans, s)
	}
	return spans
}

// fleetHealth fetches the coordinator's health view.
func fleetHealth(t *testing.T, coord string) cluster.HealthSnapshot {
	t.Helper()
	resp, err := http.Get(coord + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs cluster.HealthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	return hs
}

// coordMetrics fetches the coordinator's merged metrics snapshot.
func coordMetrics(t *testing.T, coord string) cluster.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(coord + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m cluster.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// waitAlive polls healthz until n workers are alive.
func waitAlive(t *testing.T, coord string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		alive := 0
		for _, w := range fleetHealth(t, coord).Workers {
			if w.State == cluster.StateAlive {
				alive++
			}
		}
		if alive >= n {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%d workers never came alive", n)
}

// clusterBatch is the test workload: the Figure 8 benchmark matrix
// crossed with several memory latencies, large enough that a fleet of
// single-threaded workers still has most of it queued when the first
// results arrive — the window the kill test needs.
func clusterBatch() simserver.BatchRequest {
	var jobs []simserver.JobRequest
	for _, lat := range []int{0, 40, 80, 200} { // 0 = Table 1 default (120)
		for _, wl := range workloads.Names() {
			for _, arch := range machine.Arches {
				jr := simserver.JobRequest{Workload: wl, Arch: arch}
				if lat != 0 {
					jr.Hier = json.RawMessage(fmt.Sprintf(`{"memLatency":%d}`, lat))
				}
				jobs = append(jobs, jr)
			}
		}
	}
	return simserver.BatchRequest{Jobs: jobs}
}

func TestClusterSurvivesKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	serveBin := buildBin(t, "cmd/hidisc-serve")
	coordBin := buildBin(t, "cmd/hidisc-coord")
	batch := clusterBatch()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// The single-node reference: one standalone worker runs the whole
	// batch; the fleet must match it byte for byte.
	_, refURL := startProc(t, serveBin, "-addr", "127.0.0.1:0", "-scale", "test", "-queue", "256")
	refClient := simclient.NewWithOptions(refURL, simclient.DefaultOptions())
	refItems, refErrs, err := refClient.Batch(ctx, batch)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}
	for i, e := range refErrs {
		if e != nil {
			t.Fatalf("reference job %d failed: %v", i, e)
		}
	}

	// The fleet: a coordinator and three single-threaded workers that
	// register themselves.
	_, coURL := startProc(t, coordBin, "-addr", "127.0.0.1:0", "-scale", "test",
		"-heartbeat", "100ms", "-ttl", "400ms")
	workers := map[string]*exec.Cmd{}
	for i := 0; i < 3; i++ {
		cmd, url := startProc(t, serveBin, "-addr", "127.0.0.1:0", "-scale", "test",
			"-j", "1", "-queue", "256", "-coord", coURL)
		workers[url] = cmd
	}
	waitAlive(t, coURL, 3)

	// Stream the batch through the coordinator; when the first result
	// arrives, SIGKILL the worker carrying the most in-flight jobs. Its
	// share fails at the transport level and must be requeued onto the
	// ring minus the dead node — the stream must still deliver every
	// item. A fixed request ID lets the trace assertions below pull
	// exactly this batch's spans from every process.
	const batchID = "kill9-fig8"
	killed := false
	victim := ""
	items := make([]simserver.BatchItem, len(batch.Jobs))
	c := simclient.New(coURL)
	err = c.BatchStream(simserver.ContextWithRequestID(ctx, batchID), batch, func(it simserver.BatchItem) error {
		if it.Error != nil {
			t.Fatalf("batch item %d failed: %+v", it.Index, it.Error)
		}
		items[it.Index] = it
		if !killed {
			killed = true
			most := -1
			for _, w := range fleetHealth(t, coURL).Workers {
				if w.State == cluster.StateAlive && w.InFlight > most {
					victim, most = w.URL, w.InFlight
				}
			}
			if victim == "" || workers[victim] == nil {
				t.Fatalf("no alive worker to kill (victim %q)", victim)
			}
			t.Logf("kill -9 %s with %d jobs in flight", victim, most)
			if err := workers[victim].Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatalf("SIGKILL: %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("cluster batch after kill -9: %v", err)
	}

	// Byte identity against the single node, per job.
	for i := range items {
		if items[i].Key == "" {
			t.Fatalf("job %d never completed", i)
		}
		if !bytes.Equal(items[i].Measurement, refItems[i].Measurement) {
			t.Errorf("job %d differs between fleet and single node", i)
		}
		if items[i].Key != refItems[i].Key {
			t.Errorf("job %d key differs: fleet %s, single %s", i, items[i].Key, refItems[i].Key)
		}
	}

	// The counters are the receipt: the victim died once, its in-flight
	// jobs were requeued, and they completed off their ring home.
	cm := coordMetrics(t, coURL).Coordinator
	if cm.WorkerDeaths != 1 {
		t.Errorf("workerDeaths = %d, want 1", cm.WorkerDeaths)
	}
	if cm.Requeued == 0 {
		t.Error("no requeues counted though a worker died mid-batch")
	}
	if cm.Rerouted == 0 {
		t.Error("no reroutes counted though requeued jobs completed elsewhere")
	}
	if cm.Routed != int64(len(batch.Jobs)) {
		t.Errorf("routed = %d, want %d", cm.Routed, len(batch.Jobs))
	}
	dead := 0
	for _, w := range fleetHealth(t, coURL).Workers {
		if w.State == cluster.StateDead {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("healthz shows %d dead workers, want 1", dead)
	}

	// The spans are the narrative of the recovery: the coordinator must
	// carry a coord.requeue span naming the SIGKILLed worker, and the
	// surviving span forest (coordinator + live workers) must have no
	// orphans — every parent pointer resolves even though one process's
	// ring died with it. Spans publish on End, which can trail the HTTP
	// response by a beat, so poll briefly before judging.
	assertRecoveryTrace := func() []string {
		spans := fetchSpans(t, coURL, batchID)
		for url := range workers {
			if url != victim {
				spans = append(spans, fetchSpans(t, url, batchID)...)
			}
		}
		var problems []string
		byID := map[string]bool{}
		for _, s := range spans {
			byID[s.SpanID] = true
		}
		requeues := 0
		for _, s := range spans {
			if s.Name == "coord.requeue" && s.Attrs["worker"] == victim {
				requeues++
			}
			if s.ParentID != "" && !byID[s.ParentID] {
				problems = append(problems, fmt.Sprintf("span %s (%q) orphaned: parent %s missing", s.SpanID, s.Name, s.ParentID))
			}
		}
		if requeues == 0 {
			problems = append(problems, fmt.Sprintf("no coord.requeue span names the killed worker %s", victim))
		}
		if len(spans) == 0 {
			problems = append(problems, "no spans for the batch request at all")
		}
		return problems
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		problems := assertRecoveryTrace()
		if len(problems) == 0 {
			break
		}
		if time.Now().After(deadline) {
			for _, p := range problems {
				t.Error(p)
			}
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestFleetTraceMerged is the showpiece e2e: a three-worker fleet runs
// the fig8 matrix with machine-telemetry capture on, the coordinator
// assembles one merged Perfetto file for the batch, and the extended
// tracecheck binary validates it — HTTP spans from coordinator and
// workers in one span forest, with at least one spliced per-core
// machine timeline parented under the simulate span that produced it.
func TestFleetTraceMerged(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	serveBin := buildBin(t, "cmd/hidisc-serve")
	coordBin := buildBin(t, "cmd/hidisc-coord")
	checkBin := buildBin(t, "cmd/hidisc-tracecheck")
	traceDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	_, coURL := startProc(t, coordBin, "-addr", "127.0.0.1:0", "-scale", "test",
		"-heartbeat", "100ms", "-ttl", "400ms", "-trace-dir", traceDir)
	for i := 0; i < 3; i++ {
		startProc(t, serveBin, "-addr", "127.0.0.1:0", "-scale", "test",
			"-j", "1", "-queue", "256", "-coord", coURL, "-trace-machine")
	}
	waitAlive(t, coURL, 3)

	const reqID = "fleet-fig8"
	c := simclient.New(coURL)
	items, errs, err := c.Batch(simserver.ContextWithRequestID(ctx, reqID),
		simserver.BatchRequest{Matrix: "fig8"})
	if err != nil {
		t.Fatalf("fig8 batch: %v", err)
	}
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("job %d failed: %v", i, errs[i])
		}
	}

	// The assembler waits ~100ms for worker spans to land, then writes
	// via rename — poll for the finished file.
	mergedPath := filepath.Join(traceDir, "trace-"+reqID+".json")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(mergedPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			entries, _ := os.ReadDir(traceDir)
			names := make([]string, 0, len(entries))
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Fatalf("merged trace %s never appeared (dir has %v)", mergedPath, names)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The extended tracecheck must accept it: well-formed span forest,
	// machine timelines parented under their simulate spans.
	out, err := exec.Command(checkBin, "-merged", mergedPath).CombinedOutput()
	if err != nil {
		t.Fatalf("tracecheck -merged rejected the file: %v\n%s", err, out)
	}
	t.Logf("tracecheck: %s", bytes.TrimSpace(out))

	// And the file must actually tell the cross-process story: the
	// coordinator's batch root, worker simulate spans, and at least one
	// spliced machine timeline.
	data, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("merged trace not valid JSON: %v", err)
	}
	spanNames := map[string]int{}
	machines := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if id, _ := ev.Args["spanId"].(string); id != "" {
				spanNames[ev.Name]++
			}
		}
		if ev.Ph == "M" && ev.Name == "span_context" {
			machines++
		}
	}
	for _, want := range []string{"coord POST /v1/batch", "coord.job", "coord.attempt", "client POST /v1/jobs", "serve POST /v1/jobs", "serve.simulate"} {
		if spanNames[want] == 0 {
			t.Errorf("merged trace has no %q span (have %v)", want, spanNames)
		}
	}
	if machines == 0 {
		t.Error("merged trace spliced no machine timelines despite -trace-machine workers")
	}
}

func TestClusterFleetDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	serveBin := buildBin(t, "cmd/hidisc-serve")
	coordBin := buildBin(t, "cmd/hidisc-coord")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	coordCmd, coURL := startProc(t, coordBin, "-addr", "127.0.0.1:0", "-scale", "test",
		"-heartbeat", "100ms", "-ttl", "400ms")
	var workerCmds []*exec.Cmd
	for i := 0; i < 2; i++ {
		cmd, _ := startProc(t, serveBin, "-addr", "127.0.0.1:0", "-scale", "test",
			"-j", "1", "-queue", "64", "-coord", coURL)
		workerCmds = append(workerCmds, cmd)
	}
	waitAlive(t, coURL, 2)

	// A small matrix proves the data plane works before the drain.
	c := simclient.New(coURL)
	items, errs, err := c.Batch(ctx, simserver.BatchRequest{
		Jobs: []simserver.JobRequest{
			{Workload: "Pointer", Arch: machine.HiDISC},
			{Workload: "DM", Arch: machine.Superscalar},
			{Workload: "TC", Arch: machine.CPAP},
		},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("job %d failed: %v", i, errs[i])
		}
	}

	// SIGTERM the workers: each must deregister and exit 0, and the
	// coordinator must record graceful departures, not deaths.
	for _, cmd := range workerCmds {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, cmd := range workerCmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("worker %d did not drain cleanly: %v", i, err)
		}
	}
	cm := coordMetrics(t, coURL).Coordinator
	if cm.Deregistered != 2 {
		t.Errorf("deregistered = %d, want 2", cm.Deregistered)
	}
	if cm.WorkerDeaths != 0 {
		t.Errorf("workerDeaths = %d, want 0 (SIGTERM is graceful)", cm.WorkerDeaths)
	}
	if got := fleetHealth(t, coURL); len(got.Workers) != 0 {
		t.Errorf("healthz still lists %d workers after fleet drain", len(got.Workers))
	}

	// Finally the coordinator itself.
	if err := coordCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := coordCmd.Wait(); err != nil {
		t.Errorf("coordinator did not drain cleanly: %v", err)
	}
}
