# Tier-1 gate: `make ci` is what every change must keep green (see
# ROADMAP.md). Individual targets are provided for quick local loops.

GO ?= go

.PHONY: ci build vet test race bench

ci: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel runner and the multi-core machine are the
# concurrency-bearing packages; run them under the race detector.
race:
	$(GO) test -race ./internal/experiments ./internal/machine

# One pass over every table/figure benchmark (reports simMIPS).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .
