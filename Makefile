# Tier-1 gate: `make ci` is what every change must keep green (see
# ROADMAP.md). Individual targets are provided for quick local loops.

GO ?= go

.PHONY: ci build vet test race fuzz-smoke bench bench-smoke bench-json bench-ab bench-guard serve-smoke trace-smoke store-smoke cluster-smoke

ci: vet build test race fuzz-smoke bench-smoke serve-smoke trace-smoke store-smoke cluster-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel runner, the multi-core machine, the queue/core building
# blocks they drive concurrently, the job server's cache/dedup/
# admission paths, the functional simulator's compiled/interpreted
# pair, and the result store's single-writer/multi-reader locking; run
# them under the race detector.
race:
	$(GO) test -race ./internal/experiments ./internal/machine ./internal/queue ./internal/cpu ./internal/simserver ./internal/fnsim ./internal/resultstore ./internal/cluster

# Short native-fuzz passes: arbitrary assembler source must never
# panic, and the compiled fnsim fast path must stay bit-identical to
# the interpreter on arbitrary programs. Deeper runs: drop -fuzztime.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzAssemble -fuzztime 3s ./internal/asm
	$(GO) test -run xxx -fuzz FuzzCompiledVsInterpreted -fuzztime 3s ./internal/fnsim

# One pass over every table/figure benchmark (reports simMIPS).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# A single-iteration benchmark pass as a CI smoke: catches harness
# regressions (a benchmark that panics or wedges) without paying for a
# full measurement run.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x -timeout 10m .

# End-to-end durability smoke: populate a result store through a live
# hidisc-serve, kill -9 it mid-batch, reopen the directory and require
# every acknowledged record byte-identical, then restart on the same
# address with a deliberately torn tail and prove the batch completes
# from the store (hit and recovered-record counters as the receipt).
store-smoke:
	$(GO) test -run TestStoreSurvivesKill9 -v ./cmd/hidisc-serve

# End-to-end service smoke: start hidisc-serve on an ephemeral port,
# run one job through the HTTP client, confirm the repeat is a cache
# hit, SIGTERM, and require a clean drain (exit 0).
serve-smoke:
	$(GO) run ./cmd/hidisc-serve -smoke

# End-to-end telemetry smoke: run one workload with the machine trace
# and interval timeline enabled, then validate the artifacts — the
# trace must be loadable Chrome trace-event JSON and the timeline must
# honour the sampler's row contract (boundary rows, ceil(cycles/
# interval) count). Then the distributed half: a three-worker fleet
# runs the fig8 matrix with tracing on, the coordinator assembles one
# merged Perfetto file, and tracecheck -merged validates the span
# forest plus the spliced machine timelines.
trace-smoke:
	rm -rf .smoke && mkdir -p .smoke
	$(GO) run ./cmd/hidisc-sim -workload Pointer -scale test -arch hidisc \
		-trace .smoke/trace.json -timeline .smoke/timeline.ndjson > /dev/null
	$(GO) run ./cmd/hidisc-tracecheck -trace .smoke/trace.json -timeline .smoke/timeline.ndjson
	rm -rf .smoke
	$(GO) test -count=1 -run TestFleetTraceMerged -v ./cmd/hidisc-coord

# End-to-end cluster smoke under the race detector: a coordinator and a
# three-worker fleet run a fig8-derived batch, one worker is killed -9
# mid-batch (its jobs must requeue onto the survivors and the batch
# complete byte-identical to a single node), then a two-worker fleet is
# drained with SIGTERM and every process must exit 0 with the
# departures recorded as graceful.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterSurvivesKill9|TestClusterFleetDrain' -v ./cmd/hidisc-coord

# Regenerate the committed per-run timing baseline. The Figure 8 matrix
# runs sequentially at paper scale, repeated 3 times interleaved; each
# entry commits its minimum wall time (the least-noisy estimator on a
# shared host). Diff BENCH_fig8.json to see a change's performance
# effect; reps and host info are recorded in the file.
bench-json:
	$(GO) run ./cmd/hidisc-bench -bench-json BENCH_fig8.json

# Honest A/B: build this tree's hidisc-bench and the one at OLD=<ref>,
# interleave them min-of-3, and print the per-binary totals and delta.
# Usage: make bench-ab OLD=HEAD~1
bench-ab:
	@test -n "$(OLD)" || { echo "usage: make bench-ab OLD=<git-ref>" >&2; exit 1; }
	./scripts/bench_ab.sh "$(OLD)"

# Guard the committed baseline's semantics: a fresh sequential run must
# simulate exactly the same total cycle count as BENCH_fig8.json on
# disk (wall time may drift with the host; cycles may not), and every
# zero-allocation steady-state pin must still hold — a hot-loop
# allocation is a performance regression even when cycles agree.
bench-guard:
	$(GO) test -run 'Alloc' ./internal/cpu ./internal/queue ./internal/mem ./internal/profile
	$(GO) run ./cmd/hidisc-bench -bench-json .bench-guard.json -bench-reps 1
	@want=$$(sed -n 's/.*"totalSimCycles": \([0-9]*\).*/\1/p' BENCH_fig8.json); \
	got=$$(sed -n 's/.*"totalSimCycles": \([0-9]*\).*/\1/p' .bench-guard.json); \
	rm -f .bench-guard.json; \
	if [ "$$want" != "$$got" ]; then \
		echo "bench-guard: totalSimCycles drifted: baseline $$want, got $$got" >&2; exit 1; \
	else \
		echo "bench-guard: totalSimCycles $$got matches baseline"; \
	fi
