// Package hidisc is a from-scratch Go reproduction of "HiDISC: A
// Decoupled Architecture for Data-Intensive Applications" (Ro,
// Gaudiot, Crago, Despain; IPDPS 2003): a cycle-level simulator for
// the three-processor hierarchical decoupled architecture, the
// stream-separating compiler that drives it, the DIS benchmark and
// stressmark kernels it was evaluated on, and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// The library lives under internal/; the public surface is the set of
// command-line tools under cmd/ (hidisc-asm, hidisc-compile,
// hidisc-sim, hidisc-bench), the runnable examples under examples/,
// and the benchmark suite in bench_test.go. See README.md for a tour,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-versus-measured results.
package hidisc
