#!/bin/sh
# bench_ab.sh <git-ref> — honest A/B of the fig8 bench matrix.
#
# Builds hidisc-bench from the working tree ("new") and from <git-ref>
# ("old"), then runs them interleaved (old, new, old, new, ...) for 3
# rounds. Interleaving means both binaries sample the same host-load
# conditions; taking each binary's minimum total discards the noise
# that only ever adds time. Each individual run is itself -bench-reps 1
# so a round is one full matrix pass per binary.
#
# Requires a clean enough tree to `git worktree add` the old ref.
set -eu

OLD_REF=$1
ROUNDS=${ROUNDS:-3}
GO=${GO:-go}
WORK=.bench-ab
rm -rf "$WORK"
mkdir -p "$WORK"
trap 'git worktree remove --force "$WORK/src" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "bench-ab: building new (working tree)" >&2
$GO build -o "$WORK/bench-new" ./cmd/hidisc-bench

echo "bench-ab: building old ($OLD_REF)" >&2
git worktree add --detach --force "$WORK/src" "$OLD_REF" >/dev/null
(cd "$WORK/src" && $GO build -o ../bench-old ./cmd/hidisc-bench)
git worktree remove --force "$WORK/src"

total() {
    sed -n 's/.*"totalWallSeconds": \([0-9.]*\).*/\1/p' "$1"
}

old_min=""
new_min=""
i=1
while [ "$i" -le "$ROUNDS" ]; do
    echo "bench-ab: round $i/$ROUNDS old" >&2
    "$WORK/bench-old" -bench-json "$WORK/old.json" -bench-reps 1 2>/dev/null ||
        "$WORK/bench-old" -bench-json "$WORK/old.json" 2>/dev/null # pre-reps binaries lack -bench-reps
    o=$(total "$WORK/old.json")
    echo "bench-ab: round $i/$ROUNDS new" >&2
    "$WORK/bench-new" -bench-json "$WORK/new.json" -bench-reps 1 2>/dev/null
    n=$(total "$WORK/new.json")
    echo "bench-ab: round $i: old ${o}s new ${n}s" >&2
    old_min=$(awk -v a="$old_min" -v b="$o" 'BEGIN{print (a=="" || b+0<a+0) ? b : a}')
    new_min=$(awk -v a="$new_min" -v b="$n" 'BEGIN{print (a=="" || b+0<a+0) ? b : a}')
    i=$((i + 1))
done

awk -v o="$old_min" -v n="$new_min" -v ref="$OLD_REF" 'BEGIN {
    printf "bench-ab: old(%s) min %.3fs   new(worktree) min %.3fs   speedup %.3fx\n",
        ref, o, n, o / n
}'
