package hidisc

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation (Section 5), plus ablations over the
// design knobs DESIGN.md calls out. Results are reported as custom
// metrics (speedup, IPC, normalised misses) so `go test -bench` output
// is directly comparable with the paper's numbers.
//
// Workloads default to the fast test scale; set HIDISC_SCALE=paper to
// run the paper-scale working sets (as cmd/hidisc-bench does).

import (
	"fmt"
	"os"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/experiments"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/queue"
	"hidisc/internal/slicer"
	"hidisc/internal/stats"
	"hidisc/internal/workloads"
)

// reportThroughput attaches the simulator-speed metrics to a benchmark:
// simulated cycles and committed instructions per wall-clock second
// (stats.Throughput). Pass the simulated work actually performed during
// the benchmark; memoised re-runs contribute nothing, so a benchmark
// whose measurements were already cached honestly reports ~0.
func reportThroughput(b *testing.B, cycles, insts int64) {
	b.Helper()
	tp := stats.Throughput{SimCycles: cycles, SimInsts: insts, Wall: b.Elapsed()}
	b.ReportMetric(tp.CyclesPerSec()/1e6, "simMcycles/s")
	b.ReportMetric(tp.MIPS(), "simMIPS")
}

func benchScale() workloads.Scale {
	if os.Getenv("HIDISC_SCALE") == "paper" {
		return workloads.ScalePaper
	}
	return workloads.ScaleTest
}

// sharedRunner memoises compilations and simulations across benchmark
// iterations and benchmarks.
var sharedRunner = experiments.NewRunner(benchScale())

func measure(b *testing.B, name string, arch machine.Arch, hier mem.HierConfig) experiments.Measurement {
	b.Helper()
	m, err := sharedRunner.Run(name, arch, hier)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable1Params renders the simulation-parameter table.
func BenchmarkTable1Params(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.Table1()
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
	reportThroughput(b, 0, 0) // renders a table; no simulation
}

// BenchmarkFig8Speedup regenerates Figure 8: per-benchmark speedup of
// each architecture over the superscalar baseline.
func BenchmarkFig8Speedup(b *testing.B) {
	hier := mem.DefaultHierConfig()
	for _, name := range workloads.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			c0, i0 := sharedRunner.SimTotals()
			var base experiments.Measurement
			for i := 0; i < b.N; i++ {
				base = measure(b, name, machine.Superscalar, hier)
			}
			for _, arch := range machine.Arches[1:] {
				m := measure(b, name, arch, hier)
				b.ReportMetric(float64(base.Cycles)/float64(m.Cycles), string(arch)+"-speedup")
			}
			b.ReportMetric(base.IPC, "baseline-IPC")
			c1, i1 := sharedRunner.SimTotals()
			reportThroughput(b, c1-c0, i1-i0)
		})
	}
}

// BenchmarkTable2AverageSpeedup regenerates Table 2: the average
// speedup of the three enhanced models.
func BenchmarkTable2AverageSpeedup(b *testing.B) {
	c0, i0 := sharedRunner.SimTotals()
	var t2 *experiments.Table2
	for i := 0; i < b.N; i++ {
		fig8, err := experiments.RunFig8(sharedRunner)
		if err != nil {
			b.Fatal(err)
		}
		t2 = experiments.RunTable2(fig8)
	}
	b.ReportMetric((t2.Avg[machine.CPAP]-1)*100, "cp+ap-pct")
	b.ReportMetric((t2.Avg[machine.CPCMP]-1)*100, "cp+cmp-pct")
	b.ReportMetric((t2.Avg[machine.HiDISC]-1)*100, "hidisc-pct")
	c1, i1 := sharedRunner.SimTotals()
	reportThroughput(b, c1-c0, i1-i0)
}

// BenchmarkFig9MissReduction regenerates Figure 9: L1D demand misses
// normalised to the baseline.
func BenchmarkFig9MissReduction(b *testing.B) {
	c0, i0 := sharedRunner.SimTotals()
	var fig9 *experiments.Fig9
	for i := 0; i < b.N; i++ {
		fig8, err := experiments.RunFig8(sharedRunner)
		if err != nil {
			b.Fatal(err)
		}
		fig9 = experiments.RunFig9(fig8)
	}
	for _, name := range workloads.Names() {
		b.ReportMetric(fig9.Rows[name][machine.HiDISC], name+"-normmiss")
	}
	b.ReportMetric(fig9.AverageReduction(machine.HiDISC)*100, "avg-reduction-pct")
	c1, i1 := sharedRunner.SimTotals()
	reportThroughput(b, c1-c0, i1-i0)
}

// BenchmarkFig10LatencyTolerance regenerates Figure 10: IPC under
// growing L2/memory latency for Pointer and Neighborhood.
func BenchmarkFig10LatencyTolerance(b *testing.B) {
	for _, name := range []string{"Pointer", "NB"} {
		name := name
		b.Run(name, func(b *testing.B) {
			c0, i0 := sharedRunner.SimTotals()
			var fig *experiments.Fig10
			for i := 0; i < b.N; i++ {
				var err error
				fig, err = experiments.RunFig10(sharedRunner, name)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, arch := range machine.Arches {
				b.ReportMetric(fig.Degradation(arch)*100, string(arch)+"-degradation-pct")
			}
			c1, i1 := sharedRunner.SimTotals()
			reportThroughput(b, c1-c0, i1-i0)
		})
	}
}

// --- Ablations (DESIGN.md section 5) ---

// ablationRun compiles Update (the most prefetch-sensitive workload)
// and runs HiDISC under a modified configuration.
func ablationRun(b *testing.B, mutate func(*machine.Config)) experiments.Measurement {
	b.Helper()
	r := experiments.NewRunner(benchScale())
	r.Configure = mutate
	m, err := r.Run("Update", machine.HiDISC, mem.DefaultHierConfig())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationSCQDepth sweeps the slip-control queue depth — the
// CMAS run-ahead bound the paper proposes controlling dynamically.
func BenchmarkAblationSCQDepth(b *testing.B) {
	for _, depth := range []int{4, 16, 32, 128} {
		depth := depth
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var m experiments.Measurement
			var cycles, insts int64
			for i := 0; i < b.N; i++ {
				m = ablationRun(b, func(c *machine.Config) { c.SCQCap = depth })
				cycles += m.Cycles
				insts += int64(m.Result.Committed())
			}
			b.ReportMetric(float64(m.Cycles), "cycles")
			reportThroughput(b, cycles, insts)
		})
	}
}

// BenchmarkAblationCPWindow sweeps the Computation Processor window
// (Table 1 fixes it at 16; the loss-of-decoupling cases are sensitive
// to it).
func BenchmarkAblationCPWindow(b *testing.B) {
	for _, win := range []int{8, 16, 32, 64} {
		win := win
		b.Run(fmt.Sprintf("window%d", win), func(b *testing.B) {
			r := experiments.NewRunner(benchScale())
			r.Configure = func(c *machine.Config) { c.CP.WindowSize = win }
			var m experiments.Measurement
			for i := 0; i < b.N; i++ {
				var err error
				m, err = r.Run("NB", machine.CPAP, mem.DefaultHierConfig())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.IPC, "IPC")
			cycles, insts := r.SimTotals()
			reportThroughput(b, cycles, insts)
		})
	}
}

// BenchmarkAblationBlockingHandshake compares the default annotation
// handshake against the paper's literal blocking GETSCQ/PUTSCQ
// (Figure 3) on the Update stressmark.
func BenchmarkAblationBlockingHandshake(b *testing.B) {
	w, err := workloads.ByName("Update", benchScale())
	if err != nil {
		b.Fatal(err)
	}
	for _, blocking := range []bool{false, true} {
		blocking := blocking
		name := "annotations"
		if blocking {
			name = "blocking-getscq"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProgram(b, w)
			prof, err := profileFor(p, w.MaxInsts)
			if err != nil {
				b.Fatal(err)
			}
			bundle, err := slicer.Separate(p, slicer.Options{
				Profile: prof, BlockingHandshake: blocking,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := machine.DefaultConfig(machine.HiDISC)
			cfg.AP.BlockingSCQ = blocking
			var last, cycles, insts int64
			for i := 0; i < b.N; i++ {
				m, err := machine.New(bundle, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cycles
				cycles += res.Cycles
				insts += int64(res.Committed())
			}
			b.ReportMetric(float64(last), "cycles")
			reportThroughput(b, cycles, insts)
		})
	}
}

// BenchmarkAblationPrefetchDistance sweeps the static prefetch
// distance applied to strided CMAS seeds.
func BenchmarkAblationPrefetchDistance(b *testing.B) {
	w, err := workloads.ByName("TC", benchScale())
	if err != nil {
		b.Fatal(err)
	}
	for _, dist := range []int32{-1, 64, 128, 512} {
		dist := dist
		name := fmt.Sprintf("dist%d", dist)
		if dist < 0 {
			name = "dist0"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProgram(b, w)
			prof, err := profileFor(p, w.MaxInsts)
			if err != nil {
				b.Fatal(err)
			}
			d := dist
			if d < 0 {
				d = 1 // effectively no run-ahead offset
			}
			bundle, err := slicer.Separate(p, slicer.Options{Profile: prof, PrefetchDistance: d})
			if err != nil {
				b.Fatal(err)
			}
			var last, cycles, insts int64
			for i := 0; i < b.N; i++ {
				res, err := machine.RunArch(bundle, machine.HiDISC, mem.DefaultHierConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cycles
				cycles += res.Cycles
				insts += int64(res.Committed())
			}
			b.ReportMetric(float64(last), "cycles")
			reportThroughput(b, cycles, insts)
		})
	}
}

// --- component microbenchmarks ---

const microKernel = `
        .data
buf:    .space 65536
        .text
main:   la   $r2, buf
        li   $r1, 2048
loop:   lw   $r3, 0($r2)
        add  $r4, $r4, $r3
        xor  $r5, $r4, $r3
        sw   $r5, 0($r2)
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r4
        halt
`

// BenchmarkAssembler measures assembler throughput.
func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble("micro", microKernel); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b, 0, 0) // assembles only; no simulation
}

// BenchmarkFunctionalSim measures functional interpreter throughput in
// instructions per second.
func BenchmarkFunctionalSim(b *testing.B) {
	p := mustAssemble(b, "micro", microKernel)
	var insts uint64
	for i := 0; i < b.N; i++ {
		res, err := fnsim.RunProgram(p, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	b.ReportMetric(float64(insts)*float64(b.N), "insts")
	reportThroughput(b, 0, int64(insts)*int64(b.N)) // functional: no cycle model
}

// BenchmarkStreamSeparation measures compiler throughput.
func BenchmarkStreamSeparation(b *testing.B) {
	p := mustAssemble(b, "micro", microKernel)
	for i := 0; i < b.N; i++ {
		if _, err := slicer.Separate(p, slicer.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b, 0, 0) // compiles only; no simulation
}

// BenchmarkCycleSimulator measures timing-simulator throughput in
// simulated cycles per wall second.
func BenchmarkCycleSimulator(b *testing.B) {
	p := mustAssemble(b, "micro", microKernel)
	bundle, err := slicer.Separate(p, slicer.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var cycles, insts int64
	for i := 0; i < b.N; i++ {
		res, err := machine.RunArch(bundle, machine.Superscalar, mem.DefaultHierConfig())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		insts += int64(res.Committed())
	}
	reportThroughput(b, cycles, insts)
}

// BenchmarkQueueOps measures the architectural queue primitives.
func BenchmarkQueueOps(b *testing.B) {
	q := queue.New("bench", 64)
	for i := 0; i < b.N; i++ {
		q.Push(uint64(i))
		s := q.Claim()
		_ = q.ValueAt(s)
		q.Free(s)
	}
	reportThroughput(b, 0, 0) // queue primitive; no simulation
}

// BenchmarkCacheAccess measures hierarchy lookup throughput.
func BenchmarkCacheAccess(b *testing.B) {
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		h.Access(int64(i), uint32(i*64), false, false)
	}
	reportThroughput(b, 0, 0) // cache primitive; no simulation
}

func profileFor(p *isa.Program, maxInsts uint64) (*profile.Profile, error) {
	return profile.CacheProfile(p, mem.DefaultHierConfig(), maxInsts)
}

// BenchmarkAblationDynamicDistance compares the static prefetch
// distance against the runtime controller of Section 6's future work.
func BenchmarkAblationDynamicDistance(b *testing.B) {
	for _, dynamic := range []bool{false, true} {
		dynamic := dynamic
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			r := experiments.NewRunner(benchScale())
			r.Configure = func(c *machine.Config) { c.CMP.DynamicDistance = dynamic }
			var m experiments.Measurement
			for i := 0; i < b.N; i++ {
				var err error
				m, err = r.Run("NB", machine.HiDISC, mem.DefaultHierConfig())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(m.IPC, "IPC")
			b.ReportMetric(float64(m.L1DMisses), "misses")
			cycles, insts := r.SimTotals()
			reportThroughput(b, cycles, insts)
		})
	}
}

// BenchmarkAblationControlThinning compares default control-queue
// thinning against mirroring every branch into the CP.
func BenchmarkAblationControlThinning(b *testing.B) {
	w, err := workloads.ByName("Field", benchScale())
	if err != nil {
		b.Fatal(err)
	}
	for _, keepAll := range []bool{false, true} {
		keepAll := keepAll
		name := "thinned"
		if keepAll {
			name = "mirror-all"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProgram(b, w)
			bundle, err := slicer.Separate(p, slicer.Options{KeepAllControl: keepAll})
			if err != nil {
				b.Fatal(err)
			}
			var last, cycles, insts int64
			for i := 0; i < b.N; i++ {
				res, err := machine.RunArch(bundle, machine.CPAP, mem.DefaultHierConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res.Cycles
				cycles += res.Cycles
				insts += int64(res.Committed())
			}
			b.ReportMetric(float64(last), "cycles")
			reportThroughput(b, cycles, insts)
		})
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}

// mustProgram assembles a workload, failing the benchmark on error.
func mustProgram(tb testing.TB, w *workloads.Workload) *isa.Program {
	tb.Helper()
	p, err := w.Program()
	if err != nil {
		tb.Fatalf("assemble %s: %v", w.Name, err)
	}
	return p
}
