// Latencysweep: reproduce the structure of the paper's Figure 10 for
// one workload — IPC of the four architectures as L2/memory latency
// grows from 4/40 to 16/160 cycles. The CMP-bearing configurations
// should degrade far less than the superscalar and the plain
// decoupled pair.
//
//	go run ./examples/latencysweep [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"hidisc/internal/experiments"
	"hidisc/internal/machine"
	"hidisc/internal/workloads"
)

func main() {
	name := "Pointer"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if _, err := workloads.ByName(name, workloads.ScalePaper); err != nil {
		log.Fatalf("%v (choose from %v)", err, workloads.Names())
	}

	r := experiments.NewRunner(workloads.ScalePaper)
	fig, err := experiments.RunFig10(r, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fig)

	fmt.Println("\nReading the sweep:")
	fmt.Printf("  the baseline superscalar loses %.1f%% of its IPC from the shortest\n",
		fig.Degradation(machine.Superscalar)*100)
	fmt.Printf("  to the longest latency; HiDISC loses %.1f%% — the Cache Management\n",
		fig.Degradation(machine.HiDISC)*100)
	fmt.Println("  Processor's run-ahead slices keep the cache filled ahead of demand.")
}
