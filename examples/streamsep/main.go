// Streamsep: inspect the HiDISC compiler. The example separates the
// Livermore-style kernel the paper walks through in Figures 5-7 and
// prints the annotated sequential binary, the two streams with their
// queue communication, and the cache-miss access slice.
//
//	go run ./examples/streamsep
package main

import (
	"fmt"
	"log"

	"hidisc/internal/asm"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
)

// A Livermore-loop-style kernel (x[k] = q + y[k] * (r*z[k+10] +
// t*z[k+11]), the paper's Figure 5 example) over arrays sized past the
// L1 so the profile finds delinquent loads.
const lll1 = `
        .data
z:      .space 65688          ; 8211 doubles
y:      .space 65536          ; 8192 doubles
x:      .space 65536
consts: .double 2.5, 0.5, 0.25 ; q, r, t
        .text
main:   la   $r2, z           ; initialise z and y
        la   $r3, y
        li   $r4, 0
        li   $r1, 8211
init:   addi $r5, $r4, 2
        cvt.d.w $f1, $r5
        s.d  $f1, 0($r2)
        addi $r2, $r2, 8
        addi $r4, $r4, 1
        addi $r1, $r1, -1
        bgtz $r1, init
        li   $r4, 0
        li   $r1, 8192
inity:  addi $r5, $r4, 7
        cvt.d.w $f1, $r5
        s.d  $f1, 0($r3)
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        addi $r1, $r1, -1
        bgtz $r1, inity
        ; kernel: x[k] = q + y[k]*( r*z[k+10] + t*z[k+11] )
        la   $r8, consts
        l.d  $f20, 0($r8)     ; q
        l.d  $f21, 8($r8)     ; r
        l.d  $f22, 16($r8)    ; t
        li   $r24, 0          ; k
        li   $r1, 8192
        la   $r9, z
        la   $r11, y
        la   $r13, x
kern:   l.d  $f16, 80($r9)    ; z[k+10]
        l.d  $f18, 88($r9)    ; z[k+11]
        mul.d $f4, $f21, $f16 ; r*z[k+10]
        mul.d $f10, $f22, $f18 ; t*z[k+11]
        add.d $f16, $f4, $f10
        l.d  $f18, 0($r11)    ; y[k]
        mul.d $f6, $f16, $f18
        add.d $f6, $f20, $f6  ; q + ...
        s.d  $f6, 0($r13)     ; x[k]
        addi $r9, $r9, 8
        addi $r11, $r11, 8
        addi $r13, $r13, 8
        addi $r24, $r24, 1
        addi $r1, $r1, -1
        bgtz $r1, kern
        la   $r13, x
        l.d  $f1, 80($r13)    ; spot-check x[10]
        out.d $f1
        halt
`

func main() {
	prog, err := asm.Assemble("lll1", lll1)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := profile.CacheProfile(prog, mem.DefaultHierConfig(), 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := slicer.Separate(prog, slicer.Options{Profile: prof})
	if err != nil {
		log.Fatal(err)
	}

	// The kernel loop region of the annotated sequential binary: the
	// paper's Figure 5/6 view (AS/CS tags, LDQ/SDQ taps, CQ pushes).
	kern := prog.Labels["kern"]
	fmt.Println("annotated sequential binary (kernel loop):")
	for i := kern; i < kern+15 && i < len(bundle.Seq.Insts); i++ {
		fmt.Printf("%6d: %s\n", i, bundle.Seq.Insts[i])
	}

	fmt.Println("\naccess stream (kernel loop region):")
	asStart := bundle.ASPos[kern]
	for i := asStart; i < asStart+14 && i < len(bundle.AS.Insts); i++ {
		fmt.Printf("%6d: %s\n", i, bundle.AS.Insts[i])
	}

	fmt.Println("\ncomputation stream (kernel loop region):")
	csStart := bundle.CSPos[kern]
	for i := csStart; i < csStart+12 && i < len(bundle.CS.Insts); i++ {
		fmt.Printf("%6d: %s\n", i, bundle.CS.Insts[i])
	}

	for _, c := range bundle.CMAS {
		fmt.Printf("\ncache miss access slice #%d (seeds: seq insts %v):\n", c.ID, c.DelinquentPCs)
		for i, in := range c.Insts {
			fmt.Printf("%6d: %s\n", i, in)
		}
	}

	st := bundle.Stats()
	fmt.Printf("\nsummary: %d instructions -> %d AS + %d CS; %d LDQ producers, "+
		"%d SDQ producers, %d CQ branches, %d CMAS\n",
		st.Total, st.Access, st.Compute, st.LDQPushes, st.SDQPushes, st.CQBranches, st.CMASCount)
}
