// Quickstart: assemble the paper's discrete-convolution example
// (Figure 3), compile it with the HiDISC stream separator, and run it
// on all four simulated architectures, comparing cycle counts against
// the functional reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hidisc/internal/asm"
	"hidisc/internal/fnsim"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
)

// The inner loop of a discrete convolution — the example the paper
// uses to illustrate stream separation — preceded by array setup so
// there is real data to convolve.
const convolution = `
        .data
x:      .space 8192           ; 1024 doubles
h:      .space 8192
y:      .space 8
        .text
main:   li   $r1, 1024
        la   $r2, x
        la   $r3, h
        li   $r4, 0
init:   addi $r5, $r4, 1
        cvt.d.w $f1, $r5
        s.d  $f1, 0($r2)
        addi $r6, $r4, 3
        cvt.d.w $f2, $r6
        s.d  $f2, 0($r3)
        addi $r2, $r2, 8
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        bne  $r4, $r1, init
        la   $r2, x           ; y = sum x[j]*h[j]
        la   $r3, h
        li   $r4, 0
        sub.d $f10, $f10, $f10
loop:   l.d  $f1, 0($r2)
        l.d  $f2, 0($r3)
        mul.d $f3, $f1, $f2
        add.d $f10, $f10, $f3
        addi $r2, $r2, 8
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        bne  $r4, $r1, loop
        la   $r5, y
        s.d  $f10, 0($r5)
        out.d $f10
        halt
`

func main() {
	// 1. Assemble.
	prog, err := asm.Assemble("convolution", convolution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions, %d data bytes\n\n",
		prog.Name, len(prog.Insts), len(prog.Data))

	// 2. Functional reference.
	ref, err := fnsim.RunProgram(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference result: y = %s (%d instructions executed)\n\n",
		ref.Output[0], ref.Insts)

	// 3. Compile: profile-guided stream separation.
	hier := mem.DefaultHierConfig()
	prof, err := profile.CacheProfile(prog, hier, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := slicer.Separate(prog, slicer.Options{Profile: prof})
	if err != nil {
		log.Fatal(err)
	}
	st := bundle.Stats()
	fmt.Printf("stream separation: %d insts -> %d access / %d compute, %d CMAS\n\n",
		st.Total, st.Access, st.Compute, st.CMASCount)

	// 4. Simulate all four architectures.
	fmt.Printf("%-12s %10s %8s %10s\n", "architecture", "cycles", "IPC", "speedup")
	var base int64
	for _, arch := range machine.Arches {
		res, err := machine.RunArch(bundle, arch, hier)
		if err != nil {
			log.Fatal(err)
		}
		if res.Output[0] != ref.Output[0] || res.MemHash != ref.MemHash {
			log.Fatalf("%s: result mismatch", arch)
		}
		if arch == machine.Superscalar {
			base = res.Cycles
		}
		fmt.Printf("%-12s %10d %8.3f %9.3fx\n", arch, res.Cycles,
			float64(ref.Insts)/float64(res.Cycles), float64(base)/float64(res.Cycles))
	}
	fmt.Println("\nEvery configuration produced the reference result.")
}
