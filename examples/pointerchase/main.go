// Pointerchase: run the DIS Pointer and Update Stressmarks across the
// four architectures and show where the HiDISC mechanisms pay off —
// the access/execute slip on the decoupled pair, and the cache-miss
// coverage of the Cache Management Processor's run-ahead slices.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	"hidisc/internal/fnsim"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
	"hidisc/internal/workloads"
)

func main() {
	hier := mem.DefaultHierConfig()
	for _, name := range []string{"Pointer", "Update"} {
		w, err := workloads.ByName(name, workloads.ScalePaper)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s: %s\n", w.Name, w.Description)

		prog, err := w.Program()
		if err != nil {
			log.Fatal(err)
		}
		ref, err := fnsim.RunProgram(prog, w.MaxInsts)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := profile.CacheProfile(prog, hier, w.MaxInsts)
		if err != nil {
			log.Fatal(err)
		}
		delinquent := prof.Delinquent(0.02, 256)
		fmt.Printf("   profile: %d loads/stores flagged as probable cache missers\n", len(delinquent))

		bundle, err := slicer.Separate(prog, slicer.Options{Profile: prof})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   compiler: %d CMAS built\n", len(bundle.CMAS))

		var base machine.Result
		for _, arch := range machine.Arches {
			res, err := machine.RunArch(bundle, arch, hier)
			if err != nil {
				log.Fatal(err)
			}
			if res.Output[0] != w.Expected[0] {
				log.Fatalf("%s on %s: wrong result %v", name, arch, res.Output)
			}
			if arch == machine.Superscalar {
				base = res
			}
			l1 := res.Hier.L1D
			fmt.Printf("   %-12s %9d cycles (%.3fx)  misses %6d (%.0f%% of baseline)",
				arch, res.Cycles, float64(base.Cycles)/float64(res.Cycles),
				l1.DemandMisses, 100*float64(l1.DemandMisses)/float64(base.Hier.L1D.DemandMisses))
			if res.CMP.Prefetches > 0 {
				fmt.Printf("  [CMP: %d prefetches, %d useful]", res.CMP.Prefetches, l1.UsefulPrefetch)
			}
			fmt.Println()
		}
		fmt.Printf("   reference checksum %s over %d instructions\n\n", ref.Output[0], ref.Insts)
	}
}
