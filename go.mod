module hidisc

go 1.22
