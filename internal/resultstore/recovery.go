package resultstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// recover scans the whole log, verifying every record CRC, and leaves
// the store's in-memory index and size describing the valid prefix.
//
// The algorithm (see the package comment for the failure taxonomy):
//
//  1. An empty file gets a fresh header. A non-empty file must begin
//     with the magic and a supported version.
//  2. Records are walked sequentially. Each is valid iff its length
//     prefix is sane, the full frame+CRC fits in the file, and the CRC
//     matches.
//  3. The first invalid record ends the scan. If its claimed extent
//     reaches (or overruns) EOF it is a torn write: everything from
//     its offset on is truncated and reported. If bytes exist beyond
//     its extent, truncating would also discard those later records —
//     that is mid-log corruption, and recover fails loudly instead.
func (s *Store) recover() error {
	path := filepath.Join(s.dir, logName)
	fi, err := s.log.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()

	if size == 0 {
		var hdr [headerLen]byte
		copy(hdr[:8], logMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], logVersion)
		if _, err := s.log.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("resultstore: writing log header: %w", err)
		}
		if err := s.log.Sync(); err != nil {
			return err
		}
		s.size = headerLen
		s.report = RecoveryReport{Bytes: headerLen}
		return nil
	}
	if size < headerLen {
		// Even the header is torn: only possible on a crash during the
		// very first open, before any record existed. Rewrite it.
		var hdr [headerLen]byte
		copy(hdr[:8], logMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], logVersion)
		if _, err := s.log.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("resultstore: rewriting torn log header: %w", err)
		}
		if err := s.log.Truncate(headerLen); err != nil {
			return err
		}
		if err := s.log.Sync(); err != nil {
			return err
		}
		s.size = headerLen
		s.report = RecoveryReport{Bytes: headerLen, TornTail: true, TruncatedBytes: size, TornReason: "torn log header"}
		return nil
	}

	var hdr [headerLen]byte
	if _, err := io.ReadFull(io.NewSectionReader(s.log, 0, headerLen), hdr[:]); err != nil {
		return err
	}
	if [8]byte(hdr[:8]) != logMagic {
		return &CorruptLogError{Path: path, Offset: 0, Reason: "bad magic (not a hidisc result log)"}
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != logVersion {
		return fmt.Errorf("resultstore: %s is log version %d, this build reads version %d", path, v, logVersion)
	}

	// Walk the records.
	off := int64(headerLen)
	var lenBuf [4]byte
	for off < size {
		tear := func(reason string) error { return s.truncateTail(off, size, reason) }
		if size-off < 4 {
			return tear("short length prefix")
		}
		if _, err := s.log.ReadAt(lenBuf[:], off); err != nil {
			return err
		}
		frameLen := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		extent := off + 4 + frameLen + 4
		if frameLen < minFrame || frameLen > maxFrame {
			// A garbage length prefix. If nothing follows the prefix
			// itself it is a torn write of the prefix; otherwise the
			// bytes after it are unaccounted for either way — with an
			// unparseable length there is no "next record" to protect,
			// so any tail this short is treated as torn only when it
			// is plausibly one partial append (≤ a max record),
			// corruption otherwise.
			if size-off <= 4+maxFrame+4 {
				return tear(fmt.Sprintf("implausible frame length %d", frameLen))
			}
			return &CorruptLogError{Path: path, Offset: off,
				Reason: fmt.Sprintf("implausible frame length %d with %d bytes following", frameLen, size-off)}
		}
		if extent > size {
			return tear(fmt.Sprintf("record extends past EOF (needs %d bytes, %d remain)", extent-off, size-off))
		}
		frame := make([]byte, frameLen)
		if _, err := s.log.ReadAt(frame, off+4); err != nil {
			return err
		}
		var crcBuf [4]byte
		if _, err := s.log.ReadAt(crcBuf[:], off+4+frameLen); err != nil {
			return err
		}
		stored := binary.LittleEndian.Uint32(crcBuf[:])
		if crc := crc32.Checksum(frame, castagnoli); crc != stored {
			if extent == size {
				return tear(fmt.Sprintf("CRC mismatch on final record (stored %08x, computed %08x)", stored, crc))
			}
			return &CorruptLogError{Path: path, Offset: off,
				Reason: fmt.Sprintf("CRC mismatch (stored %08x, computed %08x) with %d bytes following", stored, crc, size-extent)}
		}
		keyLen := int64(binary.LittleEndian.Uint16(frame[0:2]))
		if 2+keyLen > frameLen {
			return &CorruptLogError{Path: path, Offset: off,
				Reason: fmt.Sprintf("key length %d exceeds frame %d", keyLen, frameLen)}
		}
		key := string(frame[2 : 2+keyLen])
		if _, dup := s.index[key]; !dup { // first write wins
			s.index[key] = indexEntry{
				off:    off + 4 + 2 + keyLen,
				length: int32(frameLen - 2 - keyLen),
				crc:    stored,
				keyLen: int32(keyLen),
				frame:  off + 4,
			}
		}
		off = extent
	}
	s.size = off
	s.report.Records = len(s.index)
	s.report.Bytes = off
	return nil
}

// truncateTail discards a torn write at off, records it in the report,
// and finishes recovery at the last valid record.
func (s *Store) truncateTail(off, size int64, reason string) error {
	if err := s.log.Truncate(off); err != nil {
		return fmt.Errorf("resultstore: truncating torn tail: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return err
	}
	s.size = off
	s.report.Records = len(s.index)
	s.report.Bytes = off
	s.report.TornTail = true
	s.report.TruncatedBytes = size - off
	s.report.TornReason = reason
	return nil
}

// fsyncDir syncs a directory so a just-renamed file inside it is
// durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
