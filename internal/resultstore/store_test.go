package resultstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Store, RecoveryReport) {
	t.Helper()
	s, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s, rep
}

func put(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func wantGet(t *testing.T, s *Store, key, val string) {
	t.Helper()
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get(%s) = %v, %v, %v; want hit", key, got, ok, err)
	}
	if string(got) != val {
		t.Fatalf("Get(%s) = %q, want %q", key, got, val)
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, rep := mustOpen(t, dir, Options{})
	if rep.Records != 0 || rep.TornTail {
		t.Fatalf("fresh store recovery report %+v", rep)
	}
	put(t, s, "alpha", "first value")
	put(t, s, "beta", string(bytes.Repeat([]byte{0, 1, 2, 0xff}, 1000)))
	put(t, s, "gamma", "") // empty values are legal
	wantGet(t, s, "alpha", "first value")
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Duplicate put is a no-op: first write wins.
	put(t, s, "alpha", "SHOULD NOT REPLACE")
	wantGet(t, s, "alpha", "first value")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	s2, rep2 := mustOpen(t, dir, Options{})
	if rep2.Records != 3 || rep2.TornTail {
		t.Fatalf("reopen recovery report %+v", rep2)
	}
	wantGet(t, s2, "alpha", "first value")
	wantGet(t, s2, "beta", string(bytes.Repeat([]byte{0, 1, 2, 0xff}, 1000)))
	wantGet(t, s2, "gamma", "")
	if _, ok, err := s2.Get("missing"); ok || err != nil {
		t.Fatalf("Get(missing) = %v, %v", ok, err)
	}
}

func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	_, _ = mustOpen(t, dir, Options{})
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	put(t, s, "k", "v")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v", err)
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v", err)
	}
}

// TestCrashpointRecovery drives every deterministic crashpoint: the
// append dies after the length prefix, mid-payload, or after the
// record is durable but before the index update. In each case a reopen
// must recover every record completed before the crash — and for
// CrashBeforeIndex, the record itself, which IS durable.
func TestCrashpointRecovery(t *testing.T) {
	for _, point := range []string{CrashAfterHeader, CrashMidPayload, CrashBeforeIndex} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := mustOpen(t, dir, Options{})
			put(t, s, "committed-1", "survives")
			put(t, s, "committed-2", "also survives")

			s.crash = func(p string) bool { return p == point }
			err := s.Put("torn", []byte("the record the crash interrupts"))
			if !errors.Is(err, errCrashpoint) {
				t.Fatalf("crashing Put = %v, want errCrashpoint", err)
			}
			// Simulate the process death: abandon the handle without
			// Close (Close would sync; the flock dies with the fd).
			s.mu.Lock()
			s.closed = true
			s.log.Close()
			s.idx.Close()
			s.lock.Close()
			s.mu.Unlock()

			s2, rep := mustOpen(t, dir, Options{})
			wantGet(t, s2, "committed-1", "survives")
			wantGet(t, s2, "committed-2", "also survives")
			switch point {
			case CrashBeforeIndex:
				// The record hit the disk before the crash; recovery
				// must surface it even though no index was updated.
				if rep.TornTail {
					t.Fatalf("before-index crash reported a torn tail: %+v", rep)
				}
				if rep.Records != 3 {
					t.Fatalf("recovered %d records, want 3: %+v", rep.Records, rep)
				}
				wantGet(t, s2, "torn", "the record the crash interrupts")
			default:
				if !rep.TornTail || rep.TruncatedBytes == 0 {
					t.Fatalf("crash %s: recovery report %+v, want torn tail", point, rep)
				}
				if rep.Records != 2 {
					t.Fatalf("recovered %d records, want 2: %+v", rep.Records, rep)
				}
				if s2.Has("torn") {
					t.Fatal("torn record resurfaced")
				}
			}
			// The store must be fully writable after recovery.
			put(t, s2, "after-recovery", "ok")
			wantGet(t, s2, "after-recovery", "ok")
		})
	}
}

// TestTornTailShapes truncates a healthy log at every byte boundary of
// its final record; reopening must always recover the earlier records
// and report the tail torn (or intact at the exact record boundary).
func TestTornTailShapes(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	put(t, s, "keep-1", "value one")
	put(t, s, "keep-2", "value two")
	mark, _ := os.Stat(filepath.Join(dir, logName))
	keepSize := mark.Size()
	put(t, s, "tail", "the record to tear")
	full, _ := os.Stat(filepath.Join(dir, logName))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	pristine, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := keepSize; cut < full.Size(); cut++ {
		if err := os.WriteFile(logPath, pristine[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		s2, rep, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d: Open: %v", cut, err)
		}
		if rep.Records != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2 (%+v)", cut, rep.Records, rep)
		}
		if cut > keepSize && !rep.TornTail {
			t.Fatalf("cut at %d: torn tail not reported (%+v)", cut, rep)
		}
		wantGet(t, s2, "keep-1", "value one")
		wantGet(t, s2, "keep-2", "value two")
		if s2.Has("tail") {
			t.Fatalf("cut at %d: torn record resurfaced", cut)
		}
		s2.Close()
	}
}

// TestMidLogCorruptionRefused flips a byte in the middle record of a
// three-record log: recovery must refuse to open (CorruptLogError
// naming the offset), never silently skip to the next record.
func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	put(t, s, "first", "aaaa")
	put(t, s, "second", "bbbb")
	put(t, s, "third", "cccc")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of the middle record: find "bbbb".
	i := bytes.Index(data, []byte("bbbb"))
	if i < 0 {
		t.Fatal("middle record payload not found")
	}
	data[i] ^= 0xff
	if err := os.WriteFile(logPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	var ce *CorruptLogError
	if !errors.As(err, &ce) {
		t.Fatalf("Open on mid-log corruption = %v, want CorruptLogError", err)
	}
	if ce.Offset <= headerLen {
		t.Fatalf("corruption offset %d implausible", ce.Offset)
	}
}

// TestFinalRecordCRCTornTail flips a byte in the LAST record: with no
// bytes following, a CRC mismatch is indistinguishable from a torn
// overwrite, so it is truncated and reported, not fatal.
func TestFinalRecordCRCTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	put(t, s, "first", "aaaa")
	put(t, s, "last", "zzzz")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	data, _ := os.ReadFile(logPath)
	i := bytes.LastIndex(data, []byte("zzzz"))
	data[i] ^= 0xff
	if err := os.WriteFile(logPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	s2, rep := mustOpen(t, dir, Options{})
	if !rep.TornTail || rep.Records != 1 {
		t.Fatalf("recovery report %+v, want torn tail with 1 record", rep)
	}
	wantGet(t, s2, "first", "aaaa")
}

// TestGetVerifiesCRC corrupts a record byte after open: the read path
// re-verifies the CRC, so the damage surfaces as an error rather than
// a silently wrong measurement.
func TestGetVerifiesCRC(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	put(t, s, "rot", "pristine-bytes")
	// Bitrot behind the store's back via a second handle.
	logPath := filepath.Join(dir, logName)
	data, _ := os.ReadFile(logPath)
	i := bytes.Index(data, []byte("pristine-bytes"))
	f, err := os.OpenFile(logPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, int64(i)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, _, err = s.Get("rot")
	var ce *CorruptLogError
	if !errors.As(err, &ce) {
		t.Fatalf("Get on bitrot = %v, want CorruptLogError", err)
	}
}

// TestBadMagicAndVersion pins the header gate.
func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, logName)
	if err := os.WriteFile(logPath, []byte("not a hidisc log at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a foreign file as its log")
	}

	dir2 := t.TempDir()
	s, _ := mustOpen(t, dir2, Options{})
	s.Close()
	data, _ := os.ReadFile(filepath.Join(dir2, logName))
	binary.LittleEndian.PutUint32(data[8:12], 99)
	os.WriteFile(filepath.Join(dir2, logName), data, 0o666)
	if _, _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("Open accepted a future log version")
	}
}

// TestSidecarIndexMatchesLog checks the atomically rebuilt sidecar
// describes exactly the recovered records, in log order, and that the
// running appends keep it current.
func TestSidecarIndexMatchesLog(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		put(t, s, fmt.Sprintf("key-%02d", i), fmt.Sprintf("value-%d", i))
	}
	checkIndex := func(when string) {
		t.Helper()
		ents, err := ReadIndex(dir)
		if err != nil {
			t.Fatalf("%s: ReadIndex: %v", when, err)
		}
		if len(ents) != 10 {
			t.Fatalf("%s: sidecar has %d entries, want 10", when, len(ents))
		}
		for i, e := range ents {
			if want := fmt.Sprintf("key-%02d", i); e.Key != want {
				t.Fatalf("%s: entry %d key %q, want %q (log order)", when, i, e.Key, want)
			}
			got, ok, err := s.Get(e.Key)
			if err != nil || !ok || int32(len(got)) != e.ValueLen {
				t.Fatalf("%s: entry %d disagrees with log: %v %v %v", when, i, got, ok, err)
			}
		}
	}
	checkIndex("live appends")
	s.Close()
	s, _ = mustOpen(t, dir, Options{})
	checkIndex("after rebuild")
}

// TestSyncNeverStillRecovers exercises the relaxed policy: records are
// readable in-process and across a clean close/reopen.
func TestSyncNeverStillRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	put(t, s, "lazy", "written without fsync")
	wantGet(t, s, "lazy", "written without fsync")
	s.Close() // Close syncs regardless of policy
	s2, rep := mustOpen(t, dir, Options{Sync: SyncNever})
	if rep.Records != 1 {
		t.Fatalf("recovered %d records, want 1", rep.Records)
	}
	wantGet(t, s2, "lazy", "written without fsync")
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "never": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
	if SyncAlways.String() != "always" || SyncNever.String() != "never" {
		t.Error("SyncPolicy.String round-trip broken")
	}
}

// TestConcurrentReadersOneWriter hammers Get from many goroutines
// while one writer appends — the single-writer/multi-reader contract
// under the race detector.
func TestConcurrentReadersOneWriter(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{Sync: SyncNever})
	const n = 64
	for i := 0; i < n; i++ {
		put(t, s, fmt.Sprintf("seed-%d", i), fmt.Sprintf("val-%d", i))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("seed-%d", i%n)
				v, ok, err := s.Get(k)
				if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i%n) {
					t.Errorf("reader %d: Get(%s) = %q %v %v", g, k, v, ok, err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 256; i++ {
		put(t, s, fmt.Sprintf("new-%d", i), "concurrent")
	}
	close(stop)
	wg.Wait()
	if s.Len() != n+256 {
		t.Fatalf("Len = %d, want %d", s.Len(), n+256)
	}
}

// TestPutValidation pins the request-shaped error paths.
func TestPutValidation(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{})
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte{'k'}, 70000)), nil); err == nil {
		t.Error("oversized key accepted")
	}
	if err := s.Put("big", bytes.Repeat([]byte{0}, maxFrame)); err == nil {
		t.Error("oversized record accepted")
	}
}
