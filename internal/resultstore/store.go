// Package resultstore is the system of record for simulation results:
// a crash-safe, append-only log of encoded measurements keyed by the
// canonical experiments.Job.Key() content hash.
//
// Following the systems-of-record vs derived-data split (DDIA Part
// III), the log on disk is the source of truth; every other result
// holder — the hidisc-serve LRU, a client's figure assembly — is a
// derived view that can be rebuilt from it. Simulations are
// deterministic, so a key fully identifies its value and a record is
// immutable once written: the store never updates in place, never
// compacts, and first-write-wins on duplicate keys.
//
// # On-disk format
//
// A store directory holds three files:
//
//	results.log   the record log (source of truth)
//	results.idx   sidecar index, rebuilt atomically on every open
//	results.lock  flock'd for single-writer exclusion
//
// The log begins with a 16-byte versioned header and is followed by
// length-prefixed records:
//
//	header:  magic "hidisclg" | u32 version (=1) | u32 reserved (=0)
//	record:  u32 frameLen | frame | u32 CRC-32C(frame)
//	frame:   u16 keyLen | key | value
//
// All integers are little-endian; the CRC is Castagnoli (the
// polynomial with hardware support on both amd64 and arm64). The
// frame length covers keyLen+key+value, so a record occupies
// 4+frameLen+4 bytes.
//
// # Recovery
//
// Open always scans the whole log, verifying every CRC. A record that
// cannot be completed because the file ends first — a short length
// prefix, a frame extending past EOF, or a CRC mismatch on the final
// record — is a torn write from a crash mid-append: the log is
// truncated back to the last valid record and the loss is reported in
// the RecoveryReport. A CRC mismatch with further bytes beyond the
// record's claimed extent cannot be a torn tail; it is data corruption
// in the middle of the system of record, and Open refuses to proceed
// (*CorruptLogError) rather than silently skipping records.
//
// # Durability
//
// The fsync policy is configurable (Options.Sync): SyncAlways fsyncs
// the log after every append — a record handed back from Put has hit
// the disk; SyncNever leaves scheduling to the OS (crash loses the
// page-cache tail, recovery still truncates it cleanly). Close always
// syncs. The sidecar index is written with the create-temp,
// fsync, rename sequence so a crash can never leave a half-written
// index: it either names the old scan or the new one, and open
// rebuilds it from the log regardless.
package resultstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// SyncPolicy says when the log file is fsync'd.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a Put that returned nil is
	// on disk. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever lets the OS schedule writeback. A crash can lose the
	// unsynced tail; recovery truncates it to the last full record.
	SyncNever
)

// ParseSyncPolicy resolves a policy's wire/flag name.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return SyncAlways, fmt.Errorf("unknown sync policy %q (want \"always\" or \"never\")", s)
}

// String returns the flag name of the policy.
func (p SyncPolicy) String() string {
	if p == SyncNever {
		return "never"
	}
	return "always"
}

// Options parameterise Open.
type Options struct {
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
}

// RecoveryReport describes what Open found in an existing log.
type RecoveryReport struct {
	// Records is the number of valid records recovered.
	Records int
	// Bytes is the valid log length (header + records).
	Bytes int64
	// TornTail is true when a torn write was found at the tail and
	// truncated away.
	TornTail bool
	// TruncatedBytes is how many trailing bytes the torn write cost.
	TruncatedBytes int64
	// TornReason says what shape the torn tail had (short prefix,
	// overrunning frame, final-record CRC mismatch).
	TornReason string
	// IndexRebuilt is always true today (the sidecar index is derived
	// data, rebuilt from the log on every open); kept explicit so a
	// future trusted-index fast path stays honest in metrics.
	IndexRebuilt bool
}

// CorruptLogError reports CRC-verified corruption in the middle of the
// log — not a torn tail, and therefore not recoverable by truncation
// without losing records that come after it. Open never repairs this
// silently: the operator decides.
type CorruptLogError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptLogError) Error() string {
	return fmt.Sprintf("resultstore: corrupt record at %s offset %d: %s", e.Path, e.Offset, e.Reason)
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("resultstore: store is closed")

// ErrLocked is returned by Open when another process holds the store.
var ErrLocked = errors.New("resultstore: store directory is locked by another process")

// errCrashpoint aborts a Put at an injected crashpoint, leaving the
// log exactly as a process death at that instant would.
var errCrashpoint = errors.New("resultstore: simulated crash")

const (
	logName  = "results.log"
	idxName  = "results.idx"
	lockName = "results.lock"

	logVersion = 1
	headerLen  = 16

	// maxFrame bounds a single record (key + value) at 64 MiB: far
	// above any encoded measurement, low enough that a garbage length
	// prefix is recognised instead of driving a giant read.
	maxFrame = 64 << 20
	minFrame = 2 // a frame is at least its keyLen field
)

var logMagic = [8]byte{'h', 'i', 'd', 'i', 's', 'c', 'l', 'g'}

// castagnoli is the CRC-32C table (hardware-accelerated polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Crashpoints for deterministic torn-write tests. A hook observing one
// of these stops the append exactly there, as kill -9 would.
const (
	// CrashAfterHeader dies with only the 4-byte length prefix written.
	CrashAfterHeader = "after-header"
	// CrashMidPayload dies with the frame half-written.
	CrashMidPayload = "mid-payload"
	// CrashBeforeIndex dies after the record is fully durable but
	// before any index is updated; recovery must still surface it.
	CrashBeforeIndex = "before-index"
)

// indexEntry locates one record's value region in the log.
type indexEntry struct {
	off    int64 // offset of the value within the log
	length int32 // value length
	crc    uint32
	keyLen int32
	frame  int64 // offset of the frame start (keyLen field)
}

// Store is an open result store. Get is safe for concurrent use with
// other Gets and with one Put (single-writer / multi-reader: Puts are
// serialised by a mutex, reads go through pread and never touch the
// write path's file offset). Cross-process exclusion is an flock on
// results.lock, released automatically if the process dies.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	log    *os.File
	idx    *os.File
	lock   *os.File
	index  map[string]indexEntry
	size   int64 // current valid log length
	closed bool

	report RecoveryReport

	// crash, when non-nil, is consulted at each crashpoint during an
	// append; returning true abandons the write right there (test
	// hook for torn-write recovery).
	crash func(point string) bool
}

// Open opens (creating if necessary) the store in dir, recovers the
// log, and atomically rebuilds the sidecar index. The second return
// value reports what recovery found; it is also retained and available
// from (*Store).Recovery.
func Open(dir string, opts Options) (*Store, RecoveryReport, error) {
	var rep RecoveryReport
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, rep, err
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, rep, err
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, rep, fmt.Errorf("%w: %s", ErrLocked, dir)
		}
		return nil, rep, fmt.Errorf("resultstore: locking %s: %w", dir, err)
	}
	logf, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		lock.Close()
		return nil, rep, err
	}
	s := &Store{dir: dir, opts: opts, log: logf, lock: lock, index: map[string]indexEntry{}}
	if err := s.recover(); err != nil {
		logf.Close()
		lock.Close()
		return nil, rep, err
	}
	if err := s.writeIndex(); err != nil {
		logf.Close()
		lock.Close()
		return nil, s.report, fmt.Errorf("resultstore: writing index: %w", err)
	}
	s.report.IndexRebuilt = true
	return s, s.report, nil
}

// Recovery returns the report from this store's Open.
func (s *Store) Recovery() RecoveryReport { return s.report }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Has reports whether key has a record.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns every stored key (unordered).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	return keys
}

// Get returns the value stored for key. The record's CRC is
// re-verified on every read, so bitrot that postdates Open surfaces as
// an error instead of a silently wrong result.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	ent, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	frame := make([]byte, 2+ent.keyLen+ent.length)
	if _, err := s.log.ReadAt(frame, ent.frame); err != nil {
		return nil, false, fmt.Errorf("resultstore: reading record for %s: %w", key, err)
	}
	if crc := crc32.Checksum(frame, castagnoli); crc != ent.crc {
		return nil, false, &CorruptLogError{
			Path: filepath.Join(s.dir, logName), Offset: ent.frame - 4,
			Reason: fmt.Sprintf("CRC mismatch on read: stored %08x, computed %08x", ent.crc, crc),
		}
	}
	return frame[2+ent.keyLen:], true, nil
}

// Put appends a record for key. Records are immutable and simulations
// deterministic, so a duplicate key is a no-op (first write wins).
// With SyncAlways, a nil return means the record is on disk.
func (s *Store) Put(key string, value []byte) error {
	if len(key) == 0 {
		return errors.New("resultstore: empty key")
	}
	if len(key) > 0xffff {
		return fmt.Errorf("resultstore: key too long (%d bytes)", len(key))
	}
	frameLen := 2 + len(key) + len(value)
	if frameLen > maxFrame {
		return fmt.Errorf("resultstore: record too large (%d bytes, cap %d)", frameLen, maxFrame)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.index[key]; dup {
		return nil
	}

	// Build the full record: length prefix, frame, CRC.
	rec := make([]byte, 4+frameLen+4)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(frameLen))
	frame := rec[4 : 4+frameLen]
	binary.LittleEndian.PutUint16(frame[0:2], uint16(len(key)))
	copy(frame[2:], key)
	copy(frame[2+len(key):], value)
	crc := crc32.Checksum(frame, castagnoli)
	binary.LittleEndian.PutUint32(rec[4+frameLen:], crc)

	off := s.size
	write := rec
	switch {
	case s.crash != nil && s.crash(CrashAfterHeader):
		write = rec[:4]
	case s.crash != nil && s.crash(CrashMidPayload):
		write = rec[:4+frameLen/2]
	}
	if _, err := s.log.WriteAt(write, off); err != nil {
		// A partial append is a torn tail; cut it back to the last
		// full record right now (live recovery semantics) so a later
		// successful Put can't interleave with half-written garbage.
		_ = s.log.Truncate(s.size)
		return fmt.Errorf("resultstore: appending record: %w", err)
	}
	if len(write) != len(rec) {
		return errCrashpoint
	}
	if s.opts.Sync == SyncAlways {
		if err := s.log.Sync(); err != nil {
			return fmt.Errorf("resultstore: fsync: %w", err)
		}
	}
	if s.crash != nil && s.crash(CrashBeforeIndex) {
		return errCrashpoint
	}
	s.size = off + int64(len(rec))
	s.index[key] = indexEntry{
		off:    off + 4 + 2 + int64(len(key)),
		length: int32(len(value)),
		crc:    crc,
		keyLen: int32(len(key)),
		frame:  off + 4,
	}
	s.appendIndexEntry(key)
	return nil
}

// Sync forces the log to disk regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.log.Sync()
}

// Close syncs and closes the store. Closing an already-closed store is
// a no-op: the caller graph (drain paths, signal handlers) may race to
// be the one that closes.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	if s.idx != nil {
		if cerr := s.idx.Close(); err == nil {
			err = cerr
		}
	}
	// Releasing the flock is implicit in closing its fd.
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}
