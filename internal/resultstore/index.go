package resultstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The sidecar index (results.idx) is derived data: a flat list of
// (key, frame offset, value length, CRC) entries that lets a reader
// locate records without scanning the log. This process never trusts
// it — Open always rebuilds it from the log (write-temp, fsync,
// rename, fsync-dir, so a crash leaves either the old index or the new
// one, never a hybrid) — but external tooling and future read-only
// openers can.
//
//	header: magic "hidiscix" | u32 version (=1) | u32 reserved (=0)
//	entry:  u16 keyLen | key | u64 frameOff | u32 valueLen | u32 crc

var idxMagic = [8]byte{'h', 'i', 'd', 'i', 's', 'c', 'i', 'x'}

const idxVersion = 1

// writeIndex atomically replaces the sidecar with the current
// in-memory index and leaves s.idx open for appending.
func (s *Store) writeIndex() error {
	tmp, err := os.CreateTemp(s.dir, idxName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	var hdr [headerLen]byte
	copy(hdr[:8], idxMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], idxVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	// Entries in log order, so the sidecar is reproducible bytewise.
	keys := s.Keys()
	sort.Slice(keys, func(i, j int) bool { return s.index[keys[i]].frame < s.index[keys[j]].frame })
	for _, k := range keys {
		if err := writeIndexEntry(w, k, s.index[k]); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := filepath.Join(s.dir, idxName)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	if err := fsyncDir(s.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(final, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	s.idx = f
	return nil
}

func writeIndexEntry(w io.Writer, key string, ent indexEntry) error {
	buf := make([]byte, 2+len(key)+8+4+4)
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(key)))
	copy(buf[2:], key)
	p := 2 + len(key)
	binary.LittleEndian.PutUint64(buf[p:], uint64(ent.frame))
	binary.LittleEndian.PutUint32(buf[p+8:], uint32(ent.length))
	binary.LittleEndian.PutUint32(buf[p+12:], ent.crc)
	_, err := w.Write(buf)
	return err
}

// appendIndexEntry keeps the sidecar current as records land. Best
// effort by design: the sidecar is derived data this process never
// reads back (Open rebuilds it from the log), so a failed append can
// cost external tooling freshness but can never cost a record.
func (s *Store) appendIndexEntry(key string) {
	if s.idx == nil {
		return
	}
	_ = writeIndexEntry(s.idx, key, s.index[key])
}

// IndexEntry is one decoded sidecar entry (external-tool view).
type IndexEntry struct {
	Key      string
	FrameOff int64
	ValueLen int32
	CRC      uint32
}

// ReadIndex decodes a sidecar index file. Tools and tests use it to
// check the sidecar against the log; the store itself never reads it.
func ReadIndex(dir string) ([]IndexEntry, error) {
	f, err := os.Open(filepath.Join(dir, idxName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("resultstore: reading index header: %w", err)
	}
	if [8]byte(hdr[:8]) != idxMagic {
		return nil, errors.New("resultstore: bad index magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != idxVersion {
		return nil, fmt.Errorf("resultstore: index version %d, want %d", v, idxVersion)
	}
	var out []IndexEntry
	for {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		keyLen := int(binary.LittleEndian.Uint16(lenBuf[:]))
		rest := make([]byte, keyLen+16)
		if _, err := io.ReadFull(r, rest); err != nil {
			return nil, err
		}
		out = append(out, IndexEntry{
			Key:      string(rest[:keyLen]),
			FrameOff: int64(binary.LittleEndian.Uint64(rest[keyLen:])),
			ValueLen: int32(binary.LittleEndian.Uint32(rest[keyLen+8:])),
			CRC:      binary.LittleEndian.Uint32(rest[keyLen+12:]),
		})
	}
}
