package queue

import "testing"

// collectWake returns a wake fn appending tags to the given slice.
func collectWake(got *[]uint64) func(uint64) {
	return func(tag uint64) { *got = append(*got, tag) }
}

func TestWakeOnPushDrainsSatisfiedClaimsInOrder(t *testing.T) {
	q := New("ldq", 8)
	var got []uint64
	q.SetWake(collectWake(&got))

	s0 := q.Claim()
	s1 := q.Claim()
	s2 := q.Claim()
	q.AddWaiter(s0, 100)
	q.AddWaiter(s1, 101)
	q.AddWaiter(s2, 102)

	if !q.Push(7) {
		t.Fatal("push failed")
	}
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("after first push got %v, want [100]", got)
	}
	q.Push(8)
	q.Push(9)
	if len(got) != 3 || got[1] != 101 || got[2] != 102 {
		t.Fatalf("after three pushes got %v, want [100 101 102]", got)
	}
	// Satisfied waiters are gone: another push wakes nobody.
	q.Push(10)
	if len(got) != 3 {
		t.Fatalf("extra wake after drain: %v", got)
	}
}

func TestWakeSkipsUnsatisfiedClaims(t *testing.T) {
	q := New("cq", 4)
	var got []uint64
	q.SetWake(collectWake(&got))

	// Claim two ahead of any push; only the first becomes ready.
	q.AddWaiter(q.Claim(), 1)
	q.AddWaiter(q.Claim(), 2)
	q.Push(42)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
}

func TestCloseWakesAllWaiters(t *testing.T) {
	q := New("scq", 4)
	var got []uint64
	q.SetWake(collectWake(&got))

	q.AddWaiter(q.Claim(), 1)
	q.AddWaiter(q.Claim(), 2)
	q.Close()
	if len(got) != 2 {
		t.Fatalf("close woke %v, want both", got)
	}
	if !q.Ready(0) || !q.Ready(1) || q.ValueAt(1) != 0 {
		t.Fatal("closed-queue claims must read as ready zeros")
	}
}

func TestUnclaimDropsParkedWaiters(t *testing.T) {
	q := New("sdq", 4)
	var got []uint64
	q.SetWake(collectWake(&got))

	s0 := q.Claim()
	s1 := q.Claim()
	q.AddWaiter(s0, 10)
	q.AddWaiter(s1, 11)
	q.Unclaim(1) // squash the consumer of s1

	// Re-claim the same seq (post-squash re-dispatch) and park a fresh
	// waiter: the dead registration must not resurface or break order.
	if s := q.Claim(); s != s1 {
		t.Fatalf("re-claim got %d, want %d", s, s1)
	}
	q.AddWaiter(s1, 12)
	q.Push(1)
	q.Push(2)
	if len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Fatalf("got %v, want [10 12]", got)
	}
}

func TestResetClearsWaiters(t *testing.T) {
	q := New("ldq", 4)
	var got []uint64
	q.SetWake(collectWake(&got))
	q.AddWaiter(q.Claim(), 1)
	q.Reset()
	q.Push(5)
	if len(got) != 0 {
		t.Fatalf("reset left waiters behind: %v", got)
	}
}

func TestSpawnPreservesWakeAndEpoch(t *testing.T) {
	var epoch int64
	q := New("scq0", 4)
	q.SetEpoch(&epoch)
	var got []uint64
	q.SetWake(collectWake(&got))

	nq := q.Spawn()
	if nq.Name() != "scq0" || nq.Cap() != 4 {
		t.Fatalf("spawn changed identity: %s cap %d", nq.Name(), nq.Cap())
	}
	if nq.Len() != 0 || nq.Avail() != 0 || nq.Closed() {
		t.Fatal("spawn must start empty and open")
	}
	before := epoch
	nq.AddWaiter(nq.Claim(), 9)
	nq.Push(1)
	if epoch == before {
		t.Fatal("spawned generation does not bump the shared epoch")
	}
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("spawned generation wake got %v, want [9]", got)
	}
}

func TestAddWaiterOutOfOrderPanics(t *testing.T) {
	q := New("ldq", 4)
	q.SetWake(func(uint64) {})
	q.AddWaiter(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order AddWaiter")
		}
	}()
	q.AddWaiter(3, 2)
}

func TestAddWaiterWithoutWakePanics(t *testing.T) {
	q := New("ldq", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on AddWaiter without SetWake")
		}
	}()
	q.AddWaiter(0, 1)
}

// The park/wake cycle must not allocate once the waiter slice has
// grown to its steady capacity — it runs inside the core's dispatch
// and the producer's commit path.
func TestWaiterCycleDoesNotAllocate(t *testing.T) {
	q := New("ldq", 8)
	q.SetWake(func(uint64) {})
	// Warm up the waiter slice.
	for i := 0; i < 8; i++ {
		q.AddWaiter(q.Claim(), uint64(i))
		q.Push(uint64(i))
		q.Free(int64(i))
	}
	avg := testing.AllocsPerRun(200, func() {
		s := q.Claim()
		q.AddWaiter(s, 1)
		q.Push(0)
		q.Free(s)
	})
	if avg != 0 {
		t.Fatalf("waiter cycle allocates %v per run, want 0", avg)
	}
}
