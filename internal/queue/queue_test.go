package queue

import (
	"math/rand"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := New("t", 8)
	for i := uint64(0); i < 8; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Error("push succeeded on full queue")
	}
	for i := uint64(0); i < 8; i++ {
		s := q.Claim()
		if !q.Ready(s) {
			t.Fatalf("claim %d not ready", s)
		}
		if v := q.ValueAt(s); v != i {
			t.Fatalf("value at %d = %d, want %d", s, v, i)
		}
		q.Free(s)
	}
	if q.Avail() != 0 || q.Len() != 0 {
		t.Errorf("avail=%d len=%d after drain", q.Avail(), q.Len())
	}
}

func TestClaimBeforePush(t *testing.T) {
	q := New("t", 4)
	s := q.Claim() // consumer dispatched ahead of producer
	if q.Ready(s) {
		t.Error("claim ready before push")
	}
	q.Push(42)
	if !q.Ready(s) {
		t.Error("claim not ready after push")
	}
	if v := q.ValueAt(s); v != 42 {
		t.Errorf("value = %d", v)
	}
	q.Free(s)
}

func TestCapacityCountsUnfreedEntries(t *testing.T) {
	q := New("t", 4)
	var seqs []int64
	for i := uint64(0); i < 4; i++ {
		q.Push(i)
		seqs = append(seqs, q.Claim())
	}
	// All claimed but none freed: storage still held.
	if q.Push(9) {
		t.Error("push succeeded while entries unfreed")
	}
	q.Free(seqs[0])
	if !q.Push(9) {
		t.Error("push failed after Free released a slot")
	}
	if q.Len() != 4 {
		t.Errorf("Len=%d, want 4", q.Len())
	}
}

func TestUnclaimRedeliversInOrder(t *testing.T) {
	q := New("t", 8)
	for i := uint64(10); i < 15; i++ {
		q.Push(i)
	}
	a, b, c := q.Claim(), q.Claim(), q.Claim()
	if q.ValueAt(a) != 10 || q.ValueAt(b) != 11 || q.ValueAt(c) != 12 {
		t.Fatal("claim values wrong")
	}
	// Squash the two newest consumers; values must be re-claimable.
	q.Unclaim(2)
	b2, c2 := q.Claim(), q.Claim()
	if q.ValueAt(b2) != 11 || q.ValueAt(c2) != 12 {
		t.Error("redelivery after Unclaim wrong")
	}
}

func TestUnclaimPanicsOnOverflow(t *testing.T) {
	q := New("t", 2)
	q.Push(1)
	q.Claim()
	defer func() {
		if recover() == nil {
			t.Error("Unclaim(2) with 1 outstanding did not panic")
		}
	}()
	q.Unclaim(2)
}

func TestFreeOutOfOrderPanics(t *testing.T) {
	q := New("t", 4)
	q.Push(1)
	q.Push(2)
	q.Claim()
	s2 := q.Claim()
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Free did not panic")
		}
	}()
	q.Free(s2)
}

func TestValueAtFreedPanics(t *testing.T) {
	q := New("t", 2)
	q.Push(1)
	s := q.Claim()
	q.Free(s)
	defer func() {
		if recover() == nil {
			t.Error("ValueAt on freed entry did not panic")
		}
	}()
	q.ValueAt(s)
}

func TestValueAtUnpushedPanics(t *testing.T) {
	q := New("t", 2)
	s := q.Claim()
	defer func() {
		if recover() == nil {
			t.Error("ValueAt beyond tail did not panic")
		}
	}()
	q.ValueAt(s)
}

func TestPopCommitted(t *testing.T) {
	q := New("t", 2)
	q.Push(7)
	v, ok := q.PopCommitted()
	if !ok || v != 7 {
		t.Fatalf("PopCommitted: %d,%v", v, ok)
	}
	if q.Len() != 0 {
		t.Errorf("entry not freed: len=%d", q.Len())
	}
	if _, ok := q.PopCommitted(); ok {
		t.Error("PopCommitted succeeded on empty queue")
	}
}

func TestCloseSemantics(t *testing.T) {
	q := New("scq", 2)
	q.Push(1)
	q.Close()
	if !q.Closed() {
		t.Error("not closed")
	}
	// Queued entries remain consumable after close.
	if v, ok := q.PopCommitted(); !ok || v != 1 {
		t.Error("pop after close failed")
	}
	// Claims beyond the pushed count are trivially ready, read zero,
	// and free without effect.
	s := q.Claim()
	if !q.Ready(s) {
		t.Error("closed-queue claim not ready")
	}
	if v := q.ValueAt(s); v != 0 {
		t.Errorf("closed-queue value = %d", v)
	}
	q.Free(s) // must not panic
	q.Reopen()
	if q.Closed() {
		t.Error("still closed after Reopen")
	}
}

func TestResetPreservesStats(t *testing.T) {
	q := New("t", 2)
	q.Push(1)
	q.PopCommitted()
	q.Close()
	q.Reset()
	if q.Len() != 0 || q.Avail() != 0 || q.Closed() {
		t.Error("Reset did not clear state")
	}
	s := q.Stats()
	if s.Pushes != 1 || s.Claims != 1 {
		t.Errorf("Reset cleared stats: %+v", s)
	}
}

func TestWraparound(t *testing.T) {
	q := New("t", 3)
	next := uint64(0)
	expect := uint64(0)
	for round := 0; round < 50; round++ {
		for q.Push(next) {
			next++
		}
		for q.Avail() > 0 {
			v, _ := q.PopCommitted()
			if v != expect {
				t.Fatalf("round %d: got %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

// TestAgainstReferenceModel drives the queue with a random operation
// mix and cross-checks every observable against an infinite-log model.
func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		capa := 1 + rng.Intn(16)
		q := New("ref", capa)
		var log []uint64
		var head, next int64
		var value uint64
		var claims []int64
		for step := 0; step < 400; step++ {
			switch rng.Intn(4) {
			case 0: // push
				ok := q.Push(value)
				wantOK := int64(len(log))-head < int64(capa)
				if ok != wantOK {
					t.Fatalf("trial %d step %d: push=%v want %v", trial, step, ok, wantOK)
				}
				if ok {
					log = append(log, value)
					value++
				}
			case 1: // claim
				s := q.Claim()
				if s != next {
					t.Fatalf("trial %d step %d: claim=%d want %d", trial, step, s, next)
				}
				claims = append(claims, s)
				next++
			case 2: // check readiness / value of oldest unfreed claim
				if len(claims) > 0 {
					s := claims[0]
					wantReady := s < int64(len(log))
					if q.Ready(s) != wantReady {
						t.Fatalf("trial %d step %d: ready=%v want %v", trial, step, q.Ready(s), wantReady)
					}
					if wantReady {
						if v := q.ValueAt(s); v != log[s] {
							t.Fatalf("trial %d step %d: value=%d want %d", trial, step, v, log[s])
						}
						// Free it (commit).
						if s == head {
							q.Free(s)
							head++
							claims = claims[1:]
						}
					}
				}
			case 3: // squash some recent claims
				if free := len(claims); free > 0 && rng.Intn(2) == 0 {
					k := 1 + rng.Intn(free)
					q.Unclaim(k)
					claims = claims[:len(claims)-k]
					next -= int64(k)
				}
			}
			if q.Len() != len(log)-int(head) {
				t.Fatalf("trial %d step %d: Len=%d want %d", trial, step, q.Len(), len(log)-int(head))
			}
			wantAvail := int64(len(log)) - next
			if wantAvail < 0 {
				wantAvail = 0
			}
			if int64(q.Avail()) != wantAvail {
				t.Fatalf("trial %d step %d: Avail=%d want %d", trial, step, q.Avail(), wantAvail)
			}
		}
	}
}

func TestStatsCounting(t *testing.T) {
	q := New("t", 4)
	q.Push(1)
	q.Push(2)
	q.Claim()
	q.Unclaim(1)
	s := q.Claim()
	q.Free(s)
	st := q.Stats()
	if st.Pushes != 2 || st.Claims != 2 || st.Unclaims != 1 || st.MaxOccupancy != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with capacity 0 did not panic")
		}
	}()
	New("t", 0)
}

func TestPeekFuture(t *testing.T) {
	q := New("t", 8)
	q.Push(10)
	q.Push(20)
	q.Push(30)
	if v, ok := q.PeekFuture(0); !ok || v != 10 {
		t.Errorf("peek 0 = %d,%v", v, ok)
	}
	if v, ok := q.PeekFuture(2); !ok || v != 30 {
		t.Errorf("peek 2 = %d,%v", v, ok)
	}
	if _, ok := q.PeekFuture(3); ok {
		t.Error("peek beyond tail succeeded")
	}
	// After a claim, peek 0 refers to the next unclaimed value.
	q.Claim()
	if v, ok := q.PeekFuture(0); !ok || v != 20 {
		t.Errorf("peek after claim = %d,%v", v, ok)
	}
	// Negative offsets (before the claim cursor) are rejected once freed.
	s := q.Claim()
	q.Free(0)
	q.Free(s)
	if _, ok := q.PeekFuture(-2); ok {
		t.Error("peek into freed storage succeeded")
	}
}

func TestPeekFutureIsNonDestructive(t *testing.T) {
	q := New("t", 4)
	q.Push(1)
	before := q.Stats()
	q.PeekFuture(0)
	q.PeekFuture(0)
	after := q.Stats()
	if before != after || q.Avail() != 1 {
		t.Error("PeekFuture mutated queue state")
	}
}
