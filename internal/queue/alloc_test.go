package queue

import "testing"

// The queue sits on the cores' hot path; its operations must stay
// allocation-free with telemetry detached (the nil probe check is the
// entire overhead). Pinned so a probe-related regression fails loudly.
func TestQueueOpsDoNotAllocate(t *testing.T) {
	q := New("q", 16)
	var epoch int64
	q.SetEpoch(&epoch)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			if !q.Push(uint64(i)) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 8; i++ {
			s := q.Claim()
			if !q.Ready(s) {
				t.Fatal("claimed value not ready")
			}
			_ = q.ValueAt(s)
			q.Free(s)
		}
		q.Tick(3)
	})
	if avg != 0 {
		t.Errorf("queue ops: %.2f allocs per run with nil probe, want 0", avg)
	}
}

// An attached probe may observe without forcing the queue itself to
// allocate: the events carry only the name and an int.
type countProbe struct{ pushes, pops int }

func (p *countProbe) QueuePush(string, int) { p.pushes++ }
func (p *countProbe) QueuePop(string, int)  { p.pops++ }

func TestQueueProbeSeesTraffic(t *testing.T) {
	q := New("q", 4)
	p := &countProbe{}
	q.SetProbe(p)
	q.Push(1)
	q.Push(2)
	s := q.Claim()
	q.Free(s)
	if p.pushes != 2 || p.pops != 1 {
		t.Errorf("probe saw %d pushes, %d pops; want 2, 1", p.pushes, p.pops)
	}
	q.SetProbe(nil)
	q.Push(3)
	if p.pushes != 2 {
		t.Error("detached probe still receiving events")
	}
}
