// Package queue implements the architectural FIFO queues that connect
// the HiDISC processors (LDQ, SDQ, CQ, SCQ).
//
// The consumer is an out-of-order core, so the queue separates three
// events that a software FIFO would merge into one "pop":
//
//   - Claim: at dispatch the consuming instruction claims the next
//     FIFO sequence number, in program order. Claiming never blocks;
//     it only establishes the pairing between the k-th push and the
//     k-th consumer.
//   - Ready/ValueAt: the claimed value behaves like a register
//     dependency — the instruction becomes ready once the producer has
//     pushed the matching entry. This is what lets the Access
//     Processor dispatch a store whose data is still being computed
//     and keep running ahead (the paper's SAQ/SDQ matching).
//   - Free: when the consuming instruction commits, the entry's
//     storage is released. Entries are freed strictly in sequence
//     order because the consumer commits in order.
//
// Squash recovery simply un-claims (Unclaim); no data moves because
// storage is only released at commit. Producers push at commit and
// block while the queue is full, which is the hardware backpressure.
package queue

import (
	"fmt"

	"hidisc/internal/simfault"
)

// Queue is a bounded FIFO of 64-bit values with sequence-claimed pops.
// The zero value is not usable; call New.
type Queue struct {
	name string
	buf  []uint64
	head int64 // entries freed (absolute count)
	tail int64 // entries pushed (absolute count)
	next int64 // claims issued (absolute count)

	closed bool

	// epoch, when attached, is a machine-wide event counter bumped on
	// every externally visible mutation of any attached queue. The
	// cores' idle fast paths snapshot it: an unchanged epoch proves no
	// queue a component could be waiting on has changed state.
	epoch *int64

	// probe, when attached, observes data movement for the machine-wide
	// trace sink. Nil (the default) costs one pointer check per push and
	// free, pinned by the AllocsPerRun test.
	probe Probe

	// wake, when attached, is the consumer core's push-wakeup callback.
	// waiters holds the claims whose consuming instructions are parked
	// on this queue, sorted by seq (claims are issued in program order);
	// wHead indexes the first still-parked waiter. A push drains every
	// waiter whose claim it satisfies, so the consumer never polls.
	wake    func(tag uint64)
	waiters []waiter
	wHead   int

	stats Stats
}

// waiter parks a consumer-side reference until the claim's value
// arrives. The tag is opaque to the queue — the core packs a
// generation-checked window handle into it, so a waiter that outlives
// its instruction (squash) wakes into a stale-handle no-op.
type waiter struct {
	seq int64
	tag uint64
}

// Probe observes a queue's externally visible data events for the
// telemetry trace sink: a successful push and a storage release
// (free), each reporting the occupancy after the event. Implementations
// must be fast and must not touch the queue — they run inside the
// simulation loop and must not perturb results.
type Probe interface {
	QueuePush(name string, occupancy int)
	QueuePop(name string, occupancy int)
}

// Stats counts queue traffic for the simulator's reports.
type Stats struct {
	Pushes          uint64
	Claims          uint64
	Unclaims        uint64
	MaxOccupancy    int
	OccupancyCycles int64 // sum over cycles of Len() — time-integrated occupancy
}

// New returns an empty queue with the given capacity.
func New(name string, capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue %q: capacity %d must be positive", name, capacity))
	}
	return &Queue{name: name, buf: make([]uint64, capacity)}
}

// SetEpoch attaches a shared event counter. Every externally visible
// mutation (push, claim, unclaim, free, close, reopen, reset) bumps
// it, so a component that snapshotted the counter during an idle cycle
// can prove "no queue changed since" with a single comparison.
func (q *Queue) SetEpoch(p *int64) { q.epoch = p }

// SetProbe attaches an event observer (nil detaches).
func (q *Queue) SetProbe(p Probe) { q.probe = p }

// SetWake attaches the consuming core's push-wakeup callback. A queue
// has exactly one consumer (the machine wires each pop side to one
// core), so a single callback suffices. Must be set before AddWaiter.
func (q *Queue) SetWake(fn func(tag uint64)) { q.wake = fn }

// AddWaiter parks an opaque consumer tag until claim seq is satisfied.
// The consumer claims in program order, so seqs arrive non-decreasing;
// that keeps the list sorted and makes the push-side drain O(woken).
func (q *Queue) AddWaiter(seq int64, tag uint64) {
	if q.wake == nil {
		panic(fmt.Sprintf("queue %q: AddWaiter without SetWake", q.name))
	}
	if n := len(q.waiters); n > q.wHead && q.waiters[n-1].seq > seq {
		panic(fmt.Sprintf("queue %q: AddWaiter(%d) out of order (last %d)", q.name, seq, q.waiters[n-1].seq))
	}
	if q.wHead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.wHead = 0
	} else if q.wHead > 0 && len(q.waiters) == cap(q.waiters) {
		n := copy(q.waiters, q.waiters[q.wHead:])
		q.waiters = q.waiters[:n]
		q.wHead = 0
	}
	q.waiters = append(q.waiters, waiter{seq: seq, tag: tag})
}

// wakeSatisfied drains waiters whose claims are now ready (pushed, or
// any claim once the queue is closed — closed queues read as zero).
func (q *Queue) wakeSatisfied() {
	for q.wHead < len(q.waiters) && (q.waiters[q.wHead].seq < q.tail || q.closed) {
		tag := q.waiters[q.wHead].tag
		q.wHead++
		q.wake(tag)
	}
	if q.wHead == len(q.waiters) {
		q.waiters = q.waiters[:0]
		q.wHead = 0
	}
}

// Spawn returns a fresh generation of this queue: same name, capacity,
// epoch counter, and consumer wakeup, but empty state. The CMP engine
// uses it when a fork replaces a finished CMAS thread's SCQ — claims
// bound to the old generation keep resolving (and unwinding) against
// the old object, while new claims bind to the new one. The telemetry
// probe is deliberately not carried over: the machine registers probes
// on the original generation only.
func (q *Queue) Spawn() *Queue {
	nq := New(q.name, len(q.buf))
	nq.epoch = q.epoch
	nq.wake = q.wake
	return nq
}

func (q *Queue) bump() {
	if q.epoch != nil {
		*q.epoch++
	}
}

// Name returns the queue's name (for diagnostics).
func (q *Queue) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Len returns the number of entries holding storage (pushed, not yet
// freed) — the hardware occupancy.
func (q *Queue) Len() int { return int(q.tail - q.head) }

// Avail returns the number of pushed entries not yet claimed.
func (q *Queue) Avail() int {
	n := q.tail - q.next
	if n < 0 {
		return 0
	}
	return int(n)
}

// Full reports whether a Push would fail.
func (q *Queue) Full() bool { return q.Len() == len(q.buf) }

// Empty reports whether no unclaimed values are available.
func (q *Queue) Empty() bool { return q.Avail() == 0 }

// Closed reports whether the producer has closed the queue (used by
// the slip-control queue: a finished CMAS thread closes its SCQ so the
// Access Processor does not wait forever for credits).
func (q *Queue) Closed() bool { return q.closed }

// Close marks the queue closed. Pushed entries remain consumable;
// claims beyond the pushed count become trivially ready with value 0.
func (q *Queue) Close() {
	q.closed = true
	q.bump()
	if q.wake != nil {
		q.wakeSatisfied()
	}
}

// Reopen clears the closed flag (a re-triggered CMAS reopens its SCQ).
func (q *Queue) Reopen() {
	q.closed = false
	q.bump()
}

// Push appends v. It reports false when the queue is full.
func (q *Queue) Push(v uint64) bool {
	if q.Full() {
		return false
	}
	q.buf[q.tail%int64(len(q.buf))] = v
	q.tail++
	q.stats.Pushes++
	q.bump()
	if n := q.Len(); n > q.stats.MaxOccupancy {
		q.stats.MaxOccupancy = n
	}
	if q.probe != nil {
		q.probe.QueuePush(q.name, q.Len())
	}
	if q.wake != nil {
		q.wakeSatisfied()
	}
	return true
}

// Claim assigns the next FIFO sequence number to a consumer, in
// program order. It never blocks.
func (q *Queue) Claim() int64 {
	s := q.next
	q.next++
	q.stats.Claims++
	q.bump()
	return s
}

// Unclaim rewinds the k most recent claims (consumer squash).
func (q *Queue) Unclaim(k int) {
	if k < 0 || int64(k) > q.next-q.head {
		panic(fmt.Sprintf("queue %q: Unclaim(%d) with %d outstanding", q.name, k, q.next-q.head))
	}
	q.next -= int64(k)
	q.stats.Unclaims += uint64(k)
	// Drop waiters parked on the rewound claims: the same seq numbers
	// will be re-claimed after the squash, and the sorted invariant
	// requires the dead registrations gone before then.
	for n := len(q.waiters); n > q.wHead && q.waiters[n-1].seq >= q.next; n-- {
		q.waiters = q.waiters[:n-1]
	}
	q.bump()
}

// Ready reports whether the value for claim seq has been pushed (or
// the queue is closed, in which case missing values read as zero).
func (q *Queue) Ready(seq int64) bool {
	return seq < q.tail || q.closed
}

// ValueAt returns the value for claim seq. The caller has checked
// Ready; claims beyond the pushed count on a closed queue read zero.
func (q *Queue) ValueAt(seq int64) uint64 {
	if seq >= q.tail {
		if q.closed {
			return 0
		}
		panic(fmt.Sprintf("queue %q: ValueAt(%d) beyond tail %d", q.name, seq, q.tail))
	}
	if seq < q.head {
		panic(fmt.Sprintf("queue %q: ValueAt(%d) already freed (head %d)", q.name, seq, q.head))
	}
	return q.buf[seq%int64(len(q.buf))]
}

// Free releases the storage of claim seq; called when the consuming
// instruction commits. Frees arrive in sequence order because the
// consumer commits in order; claims that were satisfied by a closed
// queue (seq beyond tail) own no storage and are ignored.
func (q *Queue) Free(seq int64) {
	if seq >= q.tail {
		if q.closed {
			return
		}
		panic(fmt.Sprintf("queue %q: Free(%d) beyond tail %d", q.name, seq, q.tail))
	}
	if seq != q.head {
		panic(fmt.Sprintf("queue %q: Free(%d) out of order (head %d)", q.name, seq, q.head))
	}
	q.head++
	q.bump()
	if q.probe != nil {
		q.probe.QueuePop(q.name, q.Len())
	}
}

// PeekFuture inspects the value the (claims+k)-th pop will return, if
// it has already been pushed. The consumer's fetch stage uses this to
// steer down queued control tokens instead of predicting; it is only a
// hint — the dispatch-time claim remains authoritative.
func (q *Queue) PeekFuture(k int) (uint64, bool) {
	s := q.next + int64(k)
	if s < q.head || s >= q.tail {
		return 0, false
	}
	return q.buf[s%int64(len(q.buf))], true
}

// PopCommitted performs claim+read+free in one step for in-order
// consumers (the functional co-simulation). It reports false when no
// unclaimed value is available.
func (q *Queue) PopCommitted() (uint64, bool) {
	if q.Avail() == 0 {
		return 0, false
	}
	s := q.Claim()
	v := q.ValueAt(s)
	q.Free(s)
	return v, true
}

// Reset empties the queue and clears the closed flag. Statistics are
// preserved.
func (q *Queue) Reset() {
	q.head, q.tail, q.next = 0, 0, 0
	q.closed = false
	q.waiters = q.waiters[:0]
	q.wHead = 0
	q.bump()
}

// Stats returns a copy of the traffic counters.
func (q *Queue) Stats() Stats { return q.stats }

// Tick accumulates the time-integrated occupancy: the current Len held
// for the given number of cycles. The machine calls it once per ticked
// cycle (cycles=1) and once per fast-forwarded idle span (cycles=n);
// occupancy is frozen while every consumer and producer is idle, so
// both paths integrate identically.
func (q *Queue) Tick(cycles int64) {
	q.stats.OccupancyCycles += int64(q.Len()) * cycles
}

// State captures the queue's occupancy and traffic for a fault
// snapshot.
func (q *Queue) State() simfault.QueueState {
	return simfault.QueueState{
		Name:     q.name,
		Len:      q.Len(),
		Cap:      len(q.buf),
		Avail:    q.Avail(),
		Closed:   q.closed,
		Pushes:   q.stats.Pushes,
		Claims:   q.stats.Claims,
		Unclaims: q.stats.Unclaims,
	}
}

// String summarises the queue state.
func (q *Queue) String() string {
	return fmt.Sprintf("%s[len=%d/%d avail=%d closed=%v]", q.name, q.Len(), len(q.buf), q.Avail(), q.closed)
}
