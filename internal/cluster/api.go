package cluster

import (
	"hidisc/internal/simserver"
)

// Cluster control-plane endpoints, mounted on the coordinator next to
// the data-plane job API:
//
//	POST /v1/cluster/register    RegisterRequest  -> RegisterResponse
//	POST /v1/cluster/heartbeat   HeartbeatRequest -> 204 (404: re-register)
//	POST /v1/cluster/deregister  DeregisterRequest -> 204
//
// Workers are identified by their advertised base URL — unique on a
// fleet, stable across restarts (a worker that crashes and restarts on
// the same address re-registers as itself and reclaims its ring arcs,
// cache shard and all).

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// URL is the worker's advertised base URL (its identity).
	URL string `json:"url"`
	// Workers and Queue are the worker's admission configuration; their
	// sum is its contribution to fleet capacity.
	Workers int `json:"workers"`
	Queue   int `json:"queue"`
	// Store is the worker's result-store state ("off", "ok",
	// "degraded") for the fleet health view.
	Store string `json:"store,omitempty"`
}

// RegisterResponse tells the worker the fleet's heartbeat cadence.
type RegisterResponse struct {
	// HeartbeatMs is how often the worker should heartbeat.
	HeartbeatMs int64 `json:"heartbeatMs"`
	// TTLMs is the liveness budget: a worker silent for TTLMs is
	// suspect, for 2×TTLMs dead (see the state machine on Fleet).
	TTLMs int64 `json:"ttlMs"`
}

// HeartbeatRequest refreshes a worker's liveness and reports its depth.
type HeartbeatRequest struct {
	URL string `json:"url"`
	// InFlight is the worker's own admitted-jobs count — includes work
	// submitted directly to the worker, which the coordinator cannot
	// see from its side.
	InFlight int `json:"inFlight"`
	// Draining is set while the worker refuses new submissions.
	Draining bool `json:"draining"`
	// Store is the worker's current result-store state.
	Store string `json:"store,omitempty"`
}

// DeregisterRequest removes a worker gracefully (SIGTERM drain): the
// coordinator stops routing to it immediately and does not count the
// departure as a death.
type DeregisterRequest struct {
	URL string `json:"url"`
}

// WorkerState is a worker's position in the heartbeat TTL state
// machine.
type WorkerState string

const (
	// StateAlive: heartbeats within TTL; in the ring.
	StateAlive WorkerState = "alive"
	// StateSuspect: silent past TTL but not yet 2×TTL; still in the
	// ring (a GC pause or scheduling hiccup should not reshard the key
	// space), flagged in healthz.
	StateSuspect WorkerState = "suspect"
	// StateDead: silent past 2×TTL, failed a forward at the transport
	// level, or crashed: out of the ring, in-flight jobs requeued. A
	// dead worker rejoins by re-registering (heartbeats from it are
	// answered 404 to force that).
	StateDead WorkerState = "dead"
)

// WorkerHealth is one worker's row in the fleet health view.
type WorkerHealth struct {
	URL      string      `json:"url"`
	State    WorkerState `json:"state"`
	Store    string      `json:"store"`
	Draining bool        `json:"draining,omitempty"`
	// InFlight is the number of coordinator-routed jobs currently on
	// this worker; ReportedInFlight is the worker's own last-heartbeat
	// count (includes direct submissions).
	InFlight         int `json:"inFlight"`
	ReportedInFlight int `json:"reportedInFlight"`
	Capacity         int `json:"capacity"`
	// SinceHeartbeatMs is the age of the last heartbeat.
	SinceHeartbeatMs int64 `json:"sinceHeartbeatMs"`
}

// HealthSnapshot is the coordinator's GET /healthz body: per-worker
// status plus an overall verdict ("ok" with at least one alive worker,
// "down" with none, "draining" while shutting down).
type HealthSnapshot struct {
	Status  string         `json:"status"`
	Workers []WorkerHealth `json:"workers"`
}

// CoordinatorMetrics is the coordinator's own counter block.
type CoordinatorMetrics struct {
	// Routed counts successfully forwarded jobs; Failed counts jobs
	// that exhausted their attempts or failed fast on a job-shaped
	// error.
	Routed int64 `json:"routed"`
	Failed int64 `json:"failed"`
	// Requeued counts forwards that were in flight on a worker when it
	// died at the transport level and were replayed onto the ring minus
	// the dead node. Rerouted counts jobs that completed on a worker
	// other than their ring home (requeues and drain-dodges land here).
	Requeued int64 `json:"requeued"`
	Rerouted int64 `json:"rerouted"`
	// Throttled counts per-worker 429s absorbed by waiting out the
	// worker's Retry-After on its home shard; Rejected counts
	// submissions the coordinator itself answered 429 because the
	// fleet was saturated.
	Throttled int64 `json:"throttled"`
	Rejected  int64 `json:"rejected"`
	// Membership counters.
	Registered   int64 `json:"registered"`
	Deregistered int64 `json:"deregistered"`
	WorkerDeaths int64 `json:"workerDeaths"`
	// Fleet occupancy at snapshot time.
	WorkersAlive   int `json:"workersAlive"`
	WorkersSuspect int `json:"workersSuspect"`
	WorkersDead    int `json:"workersDead"`
	FleetCapacity  int `json:"fleetCapacity"`
	FleetInFlight  int `json:"fleetInFlight"`
	// JobsPerSec is routed jobs per second of coordinator uptime — the
	// scaling headline (compare a 1-worker and a 3-worker fleet).
	JobsPerSec    float64 `json:"jobsPerSec"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// WorkerMetrics pairs a worker with its live metrics snapshot.
type WorkerMetrics struct {
	URL   string      `json:"url"`
	State WorkerState `json:"state"`
	// Metrics is the worker's own GET /metrics snapshot; omitted for
	// workers that could not be reached at snapshot time.
	Metrics *simserver.MetricsSnapshot `json:"metrics,omitempty"`
}

// MetricsSnapshot is the coordinator's GET /metrics payload. The
// embedded simserver.MetricsSnapshot holds the fleet-wide merged
// totals at the top level — summed over every reachable worker — so
// existing consumers (simclient.Metrics, hidisc-bench's throughput
// line) read a coordinator exactly like a single big server.
type MetricsSnapshot struct {
	simserver.MetricsSnapshot
	Coordinator CoordinatorMetrics `json:"coordinator"`
	Workers     []WorkerMetrics    `json:"workers"`
}
