package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hidisc/internal/simclient"
	"hidisc/internal/simserver"
)

// Metrics snapshots the fleet: every reachable worker's /metrics is
// fetched in parallel and summed into the embedded top-level totals, so
// a consumer pointed at the coordinator reads the fleet exactly like
// one big server; per-worker snapshots and the coordinator's own
// routing counters ride alongside.
func (co *Coordinator) Metrics(ctx context.Context) MetricsSnapshot {
	clients := co.fleet.Clients()
	type fetched struct {
		url string
		m   *simserver.MetricsSnapshot
	}
	results := make(chan fetched, len(clients))
	var wg sync.WaitGroup
	for url, c := range clients {
		wg.Add(1)
		go func(url string, c *simclient.Client) {
			defer wg.Done()
			fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			if m, err := c.Metrics(fctx); err == nil {
				results <- fetched{url, &m}
			} else {
				results <- fetched{url, nil}
			}
		}(url, c)
	}
	wg.Wait()
	close(results)

	snap := MetricsSnapshot{Coordinator: co.coordinatorMetrics()}
	byURL := map[string]*simserver.MetricsSnapshot{}
	for f := range results {
		byURL[f.url] = f.m
		if f.m == nil {
			continue
		}
		mergeTotals(&snap.MetricsSnapshot, f.m)
	}
	// Fleet uptime is the coordinator's; summed worker uptimes would
	// read as a fleet older than its oldest member. Likewise the
	// top-level runtime view is the coordinator's own process — summed
	// goroutine counts or GOMAXPROCS across processes are meaningless;
	// per-worker runtimes live in the per-worker snapshots.
	snap.UptimeSeconds = snap.Coordinator.UptimeSeconds
	snap.Runtime = simserver.ReadRuntimeMetrics()
	for _, h := range co.fleet.Health() {
		snap.Workers = append(snap.Workers, WorkerMetrics{
			URL: h.URL, State: h.State, Metrics: byURL[h.URL],
		})
	}
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].URL < snap.Workers[j].URL })
	return snap
}

// mergeTotals folds one worker snapshot into the fleet totals.
// Counters and gauges sum; the store state is the worst across the
// fleet (degraded > ok > off); derived rates are recomputed from the
// summed cycle/instruction counts against fleet uptime by the caller.
func mergeTotals(dst, src *simserver.MetricsSnapshot) {
	dst.Accepted += src.Accepted
	dst.Rejected += src.Rejected
	dst.Deduped += src.Deduped
	dst.CacheHits += src.CacheHits
	dst.Completed += src.Completed
	dst.Failed += src.Failed
	dst.InFlight += src.InFlight
	dst.CacheEntries += src.CacheEntries
	dst.Workers += src.Workers
	dst.Queue += src.Queue
	dst.Capacity += src.Capacity
	dst.SimCycles += src.SimCycles
	dst.SimInsts += src.SimInsts
	dst.MCyclesPerSec += src.MCyclesPerSec
	dst.SimMIPS += src.SimMIPS
	dst.Throughput = fmt.Sprintf("%.2f Mcycles/s, %.2f MIPS (fleet)", dst.MCyclesPerSec, dst.SimMIPS)
	dst.Store.Hits += src.Store.Hits
	dst.Store.Misses += src.Store.Misses
	dst.Store.Puts += src.Store.Puts
	dst.Store.Errors += src.Store.Errors
	dst.Store.Records += src.Store.Records
	dst.Store.RecoveredRecords += src.Store.RecoveredRecords
	dst.Store.TornTail = dst.Store.TornTail || src.Store.TornTail
	dst.Store.TruncatedBytes += src.Store.TruncatedBytes
	dst.Store.State = worseStore(dst.Store.State, src.Store.State)
}

// worseStore orders store states by severity: degraded > ok > off.
func worseStore(a, b string) string {
	rank := func(s string) int {
		switch s {
		case "degraded":
			return 2
		case "ok":
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	if a == "" {
		return "off"
	}
	return a
}

func (co *Coordinator) coordinatorMetrics() CoordinatorMetrics {
	uptime := time.Since(co.start).Seconds()
	routed := co.routed.Load()
	m := CoordinatorMetrics{
		Routed:        routed,
		Failed:        co.failed.Load(),
		Requeued:      co.requeued.Load(),
		Rerouted:      co.rerouted.Load(),
		Throttled:     co.throttled.Load(),
		Rejected:      co.rejected.Load(),
		Registered:    co.registered.Load(),
		Deregistered:  co.deregistered.Load(),
		WorkerDeaths:  co.workerDeaths.Load(),
		UptimeSeconds: uptime,
	}
	if uptime > 0 {
		m.JobsPerSec = float64(routed) / uptime
	}
	for _, h := range co.fleet.Health() {
		switch h.State {
		case StateAlive:
			m.WorkersAlive++
		case StateSuspect:
			m.WorkersSuspect++
		case StateDead:
			m.WorkersDead++
		}
	}
	m.FleetInFlight, m.FleetCapacity, _ = co.fleet.Occupancy()
	return m
}

// handleMetrics serves the merged fleet snapshot: JSON by default, the
// Prometheus text exposition format (0.0.4) when the Accept header asks
// for it or ?format=prometheus — the same content negotiation the
// workers apply.
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := co.Metrics(r.Context())
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		co.writePrometheus(w, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// writePrometheus renders the coordinator's routing counters plus a
// per-worker liveness/occupancy view. Fleet-summed simulation counters
// are deliberately not re-exported here: a scraper that wants them
// scrapes the workers (labelled at the source) rather than double
// counting through the coordinator.
func (co *Coordinator) writePrometheus(w io.Writer, snap MetricsSnapshot) {
	m := snap.Coordinator
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, v)
	}
	counter("hidisc_coord_jobs_routed_total", "Jobs successfully forwarded to a worker.", m.Routed)
	counter("hidisc_coord_jobs_failed_total", "Jobs that exhausted attempts or failed fast.", m.Failed)
	counter("hidisc_coord_jobs_requeued_total", "In-flight jobs replayed after a worker died under them.", m.Requeued)
	counter("hidisc_coord_jobs_rerouted_total", "Jobs completed on a worker other than their ring home.", m.Rerouted)
	counter("hidisc_coord_jobs_throttled_total", "Per-worker 429s absorbed by waiting out Retry-After.", m.Throttled)
	counter("hidisc_coord_jobs_rejected_total", "Submissions answered 429 by fleet admission.", m.Rejected)
	counter("hidisc_coord_workers_registered_total", "Worker registration events.", m.Registered)
	counter("hidisc_coord_workers_deregistered_total", "Graceful worker departures.", m.Deregistered)
	counter("hidisc_coord_worker_deaths_total", "Workers declared dead (TTL expiry or transport failure).", m.WorkerDeaths)
	gauge("hidisc_fleet_workers_alive", "Workers heartbeating within TTL.", strconv.Itoa(m.WorkersAlive))
	gauge("hidisc_fleet_workers_suspect", "Workers silent past TTL but still in the ring.", strconv.Itoa(m.WorkersSuspect))
	gauge("hidisc_fleet_workers_dead", "Workers out of the ring.", strconv.Itoa(m.WorkersDead))
	gauge("hidisc_fleet_capacity", "Summed admission capacity of routable workers.", strconv.Itoa(m.FleetCapacity))
	gauge("hidisc_fleet_in_flight", "Coordinator-routed jobs currently forwarded.", strconv.Itoa(m.FleetInFlight))
	gauge("hidisc_coord_jobs_per_sec", "Routed jobs per second of coordinator uptime.", strconv.FormatFloat(m.JobsPerSec, 'g', -1, 64))
	gauge("hidisc_coord_uptime_seconds", "Seconds since the coordinator started.", strconv.FormatFloat(m.UptimeSeconds, 'g', -1, 64))
	simserver.WriteRuntimePrometheus(w, snap.Runtime)
	// Per-worker liveness as labelled gauges.
	fmt.Fprintf(w, "# HELP hidisc_worker_up Worker liveness (1 alive, 0.5 suspect, 0 dead).\n# TYPE hidisc_worker_up gauge\n")
	for _, wm := range snap.Workers {
		v := "0"
		switch wm.State {
		case StateAlive:
			v = "1"
		case StateSuspect:
			v = "0.5"
		}
		fmt.Fprintf(w, "hidisc_worker_up{worker=%q} %s\n", wm.URL, v)
	}
}
