package cluster

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"hidisc/internal/simclient"
)

// worker is the coordinator's view of one fleet member.
type worker struct {
	url      string
	workers  int // simulation pool width
	queue    int // admission queue depth
	state    WorkerState
	lastSeen time.Time
	draining bool
	store    string // last-reported result-store state

	// inFlight counts coordinator-routed jobs currently forwarded to
	// this worker; reported is the worker's own last-heartbeat count
	// (it also sees direct submissions).
	inFlight int
	reported int

	// static members were named on the command line: the coordinator
	// probes them instead of waiting for registrations, and a dead
	// static worker keeps being probed forever (it may come back).
	static bool

	client *simclient.Client
}

func (w *worker) capacity() int { return w.workers + w.queue }

// fleet owns cluster membership and the routing ring. The heartbeat
// TTL state machine (documented on the WorkerState constants):
//
//	         register / heartbeat
//	 ┌────────────────────────────┐
//	 ▼                            │
//	alive ──TTL silent──> suspect ┤
//	 │                        │
//	 │ transport failure      │ 2×TTL silent
//	 ▼                        ▼
//	dead <────────────────── dead        (out of the ring; 404s
//	 │                                    heartbeats until re-register)
//	 └── deregister (any state): removed, not a death
//
// Suspect workers stay in the ring — evicting a worker over one missed
// heartbeat would reshard the key space on every GC pause. Death is
// either sustained silence (2×TTL) or hard evidence (a forward failed
// at the transport level), and removal from the ring is what triggers
// requeue: in-flight forwards to the dead worker fail, and the
// coordinator replays them on the ring minus the dead node.
type fleet struct {
	mu      sync.Mutex
	ring    *Ring
	workers map[string]*worker

	hbInterval time.Duration
	ttl        time.Duration
	opts       simclient.Options
	now        func() time.Time
	logger     *slog.Logger

	// onDeath is called (outside the lock) for each death transition.
	onDeath func(url string, reason string)
}

func newFleet(hbInterval, ttl time.Duration, opts simclient.Options, logger *slog.Logger) *fleet {
	return &fleet{
		ring:       NewRing(),
		workers:    map[string]*worker{},
		hbInterval: hbInterval,
		ttl:        ttl,
		opts:       opts,
		now:        time.Now,
		logger:     logger,
	}
}

// Register adds (or revives) a worker and puts it in the ring.
// Re-registration is idempotent and refreshes capacity.
func (f *fleet) Register(req RegisterRequest) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[req.URL]
	if !ok {
		w = &worker{url: req.URL, client: simclient.NewWithOptions(req.URL, f.opts)}
		f.workers[req.URL] = w
	}
	w.workers = req.Workers
	w.queue = req.Queue
	w.state = StateAlive
	w.lastSeen = f.now()
	w.draining = false
	if req.Store != "" {
		w.store = req.Store
	}
	f.ring.Add(req.URL)
}

// Heartbeat refreshes liveness. It reports false for unknown or dead
// workers — the signal (a 404 on the wire) that the worker must
// re-register, so a coordinator restart or a missed death never leaves
// a worker believing it is a member when it is not.
func (f *fleet) Heartbeat(req HeartbeatRequest) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[req.URL]
	if !ok || w.state == StateDead {
		return false
	}
	w.state = StateAlive
	w.lastSeen = f.now()
	w.reported = req.InFlight
	w.draining = req.Draining
	if req.Store != "" {
		w.store = req.Store
	}
	return true
}

// Deregister removes a worker gracefully (not a death): the ring drops
// it immediately so no new jobs route there while it drains. Static
// members stay tracked (dead) so the prober can re-admit them.
func (f *fleet) Deregister(url string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[url]
	if !ok {
		return false
	}
	f.ring.Remove(url)
	if w.static {
		w.state = StateDead
		w.draining = true
	} else {
		delete(f.workers, url)
	}
	return true
}

// MarkDead records hard evidence of death (a transport-level forward
// failure): the worker leaves the ring at once. Heartbeats from it are
// refused until it re-registers — if the "death" was a blip, the
// worker is back within one heartbeat interval.
func (f *fleet) MarkDead(url, reason string) {
	f.mu.Lock()
	w, ok := f.workers[url]
	if !ok || w.state == StateDead {
		f.mu.Unlock()
		return
	}
	w.state = StateDead
	f.ring.Remove(url)
	f.mu.Unlock()
	f.logger.Warn("worker dead", "worker", url, "reason", reason)
	if f.onDeath != nil {
		f.onDeath(url, reason)
	}
}

// Sweep advances the TTL state machine on the current clock: alive
// workers silent past TTL become suspect, suspect workers silent past
// 2×TTL die. Called periodically by the coordinator.
func (f *fleet) Sweep() {
	var died []string
	f.mu.Lock()
	now := f.now()
	for url, w := range f.workers {
		if w.state == StateDead {
			continue
		}
		silent := now.Sub(w.lastSeen)
		switch {
		case silent > 2*f.ttl:
			w.state = StateDead
			f.ring.Remove(url)
			died = append(died, url)
		case silent > f.ttl:
			if w.state == StateAlive {
				w.state = StateSuspect
				f.logger.Warn("worker suspect", "worker", url, "silent", silent.Round(time.Millisecond))
			}
		}
	}
	f.mu.Unlock()
	for _, url := range died {
		f.logger.Warn("worker dead", "worker", url, "reason", "heartbeat TTL expired")
		if f.onDeath != nil {
			f.onDeath(url, "heartbeat TTL expired")
		}
	}
}

// PickClient routes key to its owner on the ring (skipping excluded
// workers) and returns the worker's URL and client. Empty URL means no
// routable worker exists right now.
func (f *fleet) PickClient(key string, excluded map[string]bool) (string, *simclient.Client) {
	f.mu.Lock()
	defer f.mu.Unlock()
	url := f.ring.PickExcluding(key, excluded)
	if url == "" {
		return "", nil
	}
	return url, f.workers[url].client
}

// Begin/End bracket one forward for depth accounting.
func (f *fleet) Begin(url string) {
	f.mu.Lock()
	if w, ok := f.workers[url]; ok {
		w.inFlight++
	}
	f.mu.Unlock()
}

func (f *fleet) End(url string) {
	f.mu.Lock()
	if w, ok := f.workers[url]; ok && w.inFlight > 0 {
		w.inFlight--
	}
	f.mu.Unlock()
}

// Occupancy returns the admission inputs: total coordinator-routed
// jobs in flight, the fleet's admission capacity, and its summed
// simulation-pool width (alive + suspect members — a suspect worker is
// still doing its work).
func (f *fleet) Occupancy() (inFlight, capacity, poolWidth int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.workers {
		inFlight += w.inFlight
		if w.state == StateDead || w.draining {
			continue
		}
		capacity += w.capacity()
		poolWidth += w.workers
	}
	return inFlight, capacity, poolWidth
}

// AliveCount returns the number of routable (in-ring) workers.
func (f *fleet) AliveCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Len()
}

// Health snapshots every tracked worker, sorted by URL.
func (f *fleet) Health() []WorkerHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	out := make([]WorkerHealth, 0, len(f.workers))
	for _, url := range sortedURLs(f.workers) {
		w := f.workers[url]
		store := w.store
		if store == "" {
			store = "off"
		}
		out = append(out, WorkerHealth{
			URL: url, State: w.state, Store: store, Draining: w.draining,
			InFlight: w.inFlight, ReportedInFlight: w.reported, Capacity: w.capacity(),
			SinceHeartbeatMs: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	return out
}

// Clients snapshots the reachable (non-dead) workers for metrics
// fan-out.
func (f *fleet) Clients() map[string]*simclient.Client {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]*simclient.Client{}
	for url, w := range f.workers {
		if w.state != StateDead {
			out[url] = w.client
		}
	}
	return out
}

// State returns a worker's current state ("" if unknown).
func (f *fleet) State(url string) WorkerState {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w, ok := f.workers[url]; ok {
		return w.state
	}
	return ""
}

// AddStatic seeds a command-line worker: tracked dead until its first
// successful probe, probed forever after.
func (f *fleet) AddStatic(url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.workers[url]; ok {
		f.workers[url].static = true
		return
	}
	f.workers[url] = &worker{
		url: url, state: StateDead, static: true, lastSeen: f.now(),
		client: simclient.NewWithOptions(url, f.opts),
	}
}

// StaticURLs lists the static members (probe targets).
func (f *fleet) StaticURLs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for url, w := range f.workers {
		if w.static {
			out = append(out, url)
		}
	}
	return out
}

func sortedURLs(m map[string]*worker) []string {
	out := make([]string, 0, len(m))
	for url := range m {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}
