package cluster

import (
	"fmt"
	"testing"
)

// testKeys returns k deterministic pseudo-keys shaped like the sha256
// hex strings experiments.Job.Key() produces.
func testKeys(k int) []string {
	keys := make([]string, k)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func ringOf(nodes ...string) *Ring {
	r := NewRing()
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// TestRingPlacementGolden pins the placement function: the ring hashes
// with sha256 and is documented stable across processes and releases,
// so a coordinator restart (or a second coordinator) must agree with
// this table. If this test fails, routing changed and every worker's
// cache shard moves — treat that like a cache-key version bump.
func TestRingPlacementGolden(t *testing.T) {
	r := ringOf("w1", "w2", "w3", "w4")
	golden := map[string]string{
		"0000000000000000000000000000000000000000000000000000000000000000": "w3",
		"00000000000000000000000000000000000000000000000000000000009e3779": "w1",
		"3a5b000000000000000000000000000000000000000000000000000000000001": "w1",
		"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff": "w3",
		"deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef": "w1",
		"cafe0000cafe0000cafe0000cafe0000cafe0000cafe0000cafe0000cafe0000": "w4",
	}
	for key, want := range golden {
		if got := r.Pick(key); got != want {
			t.Errorf("Pick(%s..) = %q, want %q", key[:12], got, want)
		}
	}
}

// TestRingDeterministicAcrossInstances asserts two independently built
// rings (different insertion order) place every key identically.
func TestRingDeterministicAcrossInstances(t *testing.T) {
	a := ringOf("w1", "w2", "w3", "w4", "w5")
	b := ringOf("w5", "w3", "w1", "w4", "w2")
	for _, key := range testKeys(500) {
		if a.Pick(key) != b.Pick(key) {
			t.Fatalf("insertion order changed placement of %s", key)
		}
	}
}

// TestRingMovementBounded is the consistent-hashing contract,
// table-driven over 1–8 nodes: when a node joins an N-node ring, at
// most ~1/(N+1) of keys move (with slack for virtual-node variance),
// and every key that moves lands on the new node — no key migrates
// between survivors. Symmetrically for a leave.
func TestRingMovementBounded(t *testing.T) {
	keys := testKeys(4000)
	for n := 1; n <= 8; n++ {
		t.Run(fmt.Sprintf("join-%d-to-%d", n, n+1), func(t *testing.T) {
			var nodes []string
			for i := 1; i <= n; i++ {
				nodes = append(nodes, fmt.Sprintf("w%d", i))
			}
			before := ringOf(nodes...)
			placed := map[string]string{}
			for _, k := range keys {
				placed[k] = before.Pick(k)
			}

			joined := fmt.Sprintf("w%d", n+1)
			after := ringOf(nodes...)
			after.Add(joined)
			moved := 0
			for _, k := range keys {
				got := after.Pick(k)
				if got == placed[k] {
					continue
				}
				moved++
				if got != joined {
					t.Fatalf("key %s moved between survivors: %s -> %s", k[:12], placed[k], got)
				}
			}
			// Expected share is len(keys)/(n+1); allow 1.5x for
			// virtual-node variance at 128 replicas.
			bound := len(keys) * 3 / (2 * (n + 1))
			if moved > bound {
				t.Errorf("join moved %d/%d keys, bound %d (~1/%d + slack)", moved, len(keys), bound, n+1)
			}
			if moved == 0 {
				t.Errorf("join moved no keys; the new node owns nothing")
			}

			// Leaving restores the original placement exactly.
			after.Remove(joined)
			for _, k := range keys {
				if after.Pick(k) != placed[k] {
					t.Fatalf("leave did not restore placement of %s", k[:12])
				}
			}
		})
	}
}

// TestRingPickExcluding verifies the requeue primitive: excluding a
// key's owner re-places only that owner's keys, everyone else's
// placement is untouched, and excluding every node yields "".
func TestRingPickExcluding(t *testing.T) {
	r := ringOf("w1", "w2", "w3")
	dead := "w2"
	for _, k := range testKeys(1000) {
		home := r.Pick(k)
		got := r.PickExcluding(k, map[string]bool{dead: true})
		if home != dead {
			if got != home {
				t.Fatalf("excluding %s moved %s's key %s to %s", dead, home, k[:12], got)
			}
			continue
		}
		if got == dead || got == "" {
			t.Fatalf("excluded node still picked for %s: %q", k[:12], got)
		}
	}
	if got := r.PickExcluding("anything", map[string]bool{"w1": true, "w2": true, "w3": true}); got != "" {
		t.Fatalf("all-excluded pick = %q, want \"\"", got)
	}
	if got := NewRing().Pick("anything"); got != "" {
		t.Fatalf("empty ring pick = %q, want \"\"", got)
	}
}
