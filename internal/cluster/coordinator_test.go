package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hidisc/internal/cluster"
	"hidisc/internal/experiments"
	"hidisc/internal/simclient"
	"hidisc/internal/simserver"
	"hidisc/internal/workloads"
)

// startCluster runs a coordinator (and its control loops) on an
// ephemeral port.
func startCluster(t *testing.T, cfg cluster.Config) (*cluster.Coordinator, *httptest.Server) {
	t.Helper()
	cfg.Scale = workloads.ScaleTest
	if cfg.Backoff == nil {
		// Keep test-side patience short: transport failures re-route
		// without sleeping, so four attempts cover every path exercised
		// here.
		cfg.Backoff = &simclient.Backoff{Base: 10 * time.Millisecond, Attempts: 4}
	}
	co := cluster.New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go co.Run(ctx)
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(func() { cancel(); ts.Close() })
	return co, ts
}

// startWorker runs a real simulation worker on an ephemeral port.
func startWorker(t *testing.T) (*simserver.Server, *httptest.Server) {
	t.Helper()
	cfg := simserver.DefaultConfig(workloads.ScaleTest)
	cfg.Queue = 256 // admit a whole fig8 matrix at once
	s := simserver.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// register announces a worker to the coordinator over the wire.
func register(t *testing.T, coord, url string, workers, queue int) {
	t.Helper()
	body, err := json.Marshal(cluster.RegisterRequest{URL: url, Workers: workers, Queue: queue})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coord+"/v1/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}
	var rr cluster.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.HeartbeatMs <= 0 || rr.TTLMs <= 0 {
		t.Fatalf("register response missing cadence: %+v", rr)
	}
}

// fleetMetrics fetches the coordinator's merged snapshot.
func fleetMetrics(t *testing.T, coord string) cluster.MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(coord + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m cluster.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// localFig8 computes the Figure 8 reference encodings on a sequential
// local runner — what every routed result must match byte for byte.
func localFig8(t *testing.T) [][]byte {
	t.Helper()
	r := experiments.NewRunner(workloads.ScaleTest)
	jobs := experiments.Fig8Jobs(r.Hier, workloads.ScaleTest)
	ms, err := r.RunJobs(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(ms))
	for i, m := range ms {
		enc, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = enc
	}
	return want
}

// TestClusterFig8ByteIdentity is the scale-out acceptance test: the
// Figure 8 matrix submitted through a coordinator fronting two real
// workers must come back byte-identical to a sequential local run, the
// ring must actually spread the keys (both workers simulate), and the
// merged /metrics totals must reconcile with the coordinator's own
// routing counters.
func TestClusterFig8ByteIdentity(t *testing.T) {
	want := localFig8(t)
	w1, ts1 := startWorker(t)
	w2, ts2 := startWorker(t)
	_, co := startCluster(t, cluster.Config{})
	for _, w := range []struct {
		s  *simserver.Server
		ts *httptest.Server
	}{{w1, ts1}, {w2, ts2}} {
		workers, queue := w.s.Capacity()
		register(t, co.URL, w.ts.URL, workers, queue)
	}

	c := simclient.New(co.URL)
	items, errs, err := c.Batch(context.Background(), simserver.BatchRequest{Matrix: "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(want) {
		t.Fatalf("got %d items, want %d", len(items), len(want))
	}
	for i, it := range items {
		if errs[i] != nil {
			t.Fatalf("job %d failed: %v", i, errs[i])
		}
		if !bytes.Equal(it.Measurement, want[i]) {
			t.Errorf("job %d: measurement differs from local run", i)
		}
	}

	m1, m2 := w1.Metrics(), w2.Metrics()
	if m1.Accepted == 0 || m2.Accepted == 0 {
		t.Fatalf("ring did not spread the matrix: worker accepted counts %d / %d",
			m1.Accepted, m2.Accepted)
	}
	fm := fleetMetrics(t, co.URL)
	if fm.Accepted != m1.Accepted+m2.Accepted {
		t.Errorf("merged accepted = %d, want %d + %d", fm.Accepted, m1.Accepted, m2.Accepted)
	}
	if fm.Coordinator.Routed != int64(len(want)) {
		t.Errorf("coordinator routed = %d, want %d", fm.Coordinator.Routed, len(want))
	}
	if fm.Coordinator.Requeued != 0 || fm.Coordinator.WorkerDeaths != 0 {
		t.Errorf("healthy fleet reported requeues/deaths: %+v", fm.Coordinator)
	}
	if len(fm.Workers) != 2 {
		t.Errorf("merged snapshot lists %d workers, want 2", len(fm.Workers))
	}

	// Resubmitting the matrix must be answered from the workers' result
	// caches — the point of routing by content key.
	items2, _, err := c.Batch(context.Background(), simserver.BatchRequest{Matrix: "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items2 {
		if !it.Cached {
			t.Errorf("resubmitted job %d not served from cache", i)
		}
		if !bytes.Equal(it.Measurement, want[i]) {
			t.Errorf("resubmitted job %d: measurement differs", i)
		}
	}
}

// TestClusterRequeueOnWorkerDeath pins the failure path: one of two
// registered workers is unreachable (its port refuses), so every job
// whose ring home it is fails at the transport level, the fleet
// declares it dead, and the jobs are requeued onto the survivor. The
// batch must still complete byte-identically.
func TestClusterRequeueOnWorkerDeath(t *testing.T) {
	want := localFig8(t)
	w1, ts1 := startWorker(t)
	_, co := startCluster(t, cluster.Config{})
	workers, queue := w1.Capacity()
	register(t, co.URL, ts1.URL, workers, queue)
	// A worker that crashed after registering: nothing listens there.
	register(t, co.URL, "http://127.0.0.1:1", 1, 256)

	c := simclient.New(co.URL)
	items, errs, err := c.Batch(context.Background(), simserver.BatchRequest{Matrix: "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if errs[i] != nil {
			t.Fatalf("job %d failed despite a live survivor: %v", i, errs[i])
		}
		if !bytes.Equal(it.Measurement, want[i]) {
			t.Errorf("job %d: measurement differs after requeue", i)
		}
	}

	fm := fleetMetrics(t, co.URL)
	cm := fm.Coordinator
	if cm.WorkerDeaths != 1 {
		t.Errorf("workerDeaths = %d, want 1", cm.WorkerDeaths)
	}
	if cm.Requeued == 0 {
		t.Error("no jobs counted as requeued though their home worker was dead")
	}
	if cm.Rerouted == 0 {
		t.Error("no jobs counted as rerouted though they completed off their ring home")
	}
	if cm.Routed != int64(len(want)) {
		t.Errorf("routed = %d, want %d", cm.Routed, len(want))
	}

	// The fleet health view must show the corpse.
	resp, err := http.Get(co.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hs cluster.HealthSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatal(err)
	}
	if hs.Status != "ok" {
		t.Errorf("fleet status %q, want ok (one worker survives)", hs.Status)
	}
	dead := 0
	for _, w := range hs.Workers {
		if w.State == cluster.StateDead {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("healthz shows %d dead workers, want 1", dead)
	}
}

// TestClusterNoWorkers pins the empty-fleet answer: 503 with a
// distinct kind (a retryable status — capacity may register any
// moment), plus a coordinator-minted request ID on the response.
func TestClusterNoWorkers(t *testing.T) {
	_, co := startCluster(t, cluster.Config{})
	body := []byte(`{"workload":"spmv","arch":"hidisc"}`)
	resp, err := http.Post(co.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet answered HTTP %d, want 503", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("X-Request-Id"), "co-") {
		t.Errorf("X-Request-Id = %q, want a co- prefixed coordinator ID", resp.Header.Get("X-Request-Id"))
	}
	var eb simserver.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Err.Kind != "no-workers" {
		t.Errorf("kind = %q, want no-workers", eb.Err.Kind)
	}
}

// TestClusterFleetAdmission pins fleet-wide backpressure: a batch
// larger than the fleet's summed capacity is answered 429 with a
// Retry-After estimate before any job is forwarded.
func TestClusterFleetAdmission(t *testing.T) {
	_, co := startCluster(t, cluster.Config{})
	// One worker with room for a single job; fig8 is far larger.
	register(t, co.URL, "http://127.0.0.1:1", 1, 0)

	body := []byte(`{"matrix":"fig8"}`)
	resp, err := http.Post(co.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch answered HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	fm := fleetMetrics(t, co.URL)
	if fm.Coordinator.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", fm.Coordinator.Rejected)
	}
}

// TestClusterHeartbeatUnknown pins the re-register signal: a heartbeat
// from a worker the coordinator does not know is answered 404.
func TestClusterHeartbeatUnknown(t *testing.T) {
	_, co := startCluster(t, cluster.Config{})
	body, _ := json.Marshal(cluster.HeartbeatRequest{URL: "http://ghost"})
	resp, err := http.Post(co.URL+"/v1/cluster/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat answered HTTP %d, want 404", resp.StatusCode)
	}
}

// TestClusterPrometheus pins the coordinator's exposition view: its
// routing counters and the per-worker liveness gauge.
func TestClusterPrometheus(t *testing.T) {
	_, co := startCluster(t, cluster.Config{})
	register(t, co.URL, "http://127.0.0.1:1", 1, 1)

	resp, err := http.Get(co.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text exposition", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE hidisc_coord_jobs_routed_total counter",
		"# TYPE hidisc_fleet_workers_alive gauge",
		fmt.Sprintf("hidisc_worker_up{worker=%q} 1", "http://127.0.0.1:1"),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestAgentLifecycle runs the real worker-side agent against a real
// coordinator: registration appears in the fleet health view, the
// heartbeat loop keeps the worker alive well past the TTL, and an
// explicit deregister removes it without counting a death.
func TestAgentLifecycle(t *testing.T) {
	w, wts := startWorker(t)
	_, co := startCluster(t, cluster.Config{
		HeartbeatInterval: 20 * time.Millisecond,
		TTL:               150 * time.Millisecond,
	})

	agent := &cluster.Agent{Coordinator: co.URL, Advertise: wts.URL, Server: w}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); agent.Run(ctx) }()

	workerState := func() cluster.WorkerState {
		resp, err := http.Get(co.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hs cluster.HealthSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
			t.Fatal(err)
		}
		for _, wh := range hs.Workers {
			if wh.URL == wts.URL {
				return wh.State
			}
		}
		return ""
	}

	deadline := time.After(5 * time.Second)
	for workerState() != cluster.StateAlive {
		select {
		case <-deadline:
			t.Fatal("worker never registered")
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Outlive several TTLs: the heartbeat loop must keep us alive.
	time.Sleep(500 * time.Millisecond)
	if got := workerState(); got != cluster.StateAlive {
		t.Fatalf("worker state %q after heartbeating past TTL, want alive", got)
	}

	cancel()
	<-done
	agent.Deregister(context.Background())
	if got := workerState(); got != "" {
		t.Fatalf("worker still tracked after deregister (state %q)", got)
	}
	fm := fleetMetrics(t, co.URL)
	if fm.Coordinator.WorkerDeaths != 0 {
		t.Errorf("graceful departure counted as %d deaths", fm.Coordinator.WorkerDeaths)
	}
	if fm.Coordinator.Deregistered != 1 {
		t.Errorf("deregistered = %d, want 1", fm.Coordinator.Deregistered)
	}
}
