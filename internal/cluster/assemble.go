package cluster

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hidisc/internal/tracing"
)

// assembleTrace stitches one traced request into a single Perfetto
// JSON file: the coordinator's own spans, the spans each live worker
// collected for the request (fetched over GET /v1/traces), and any
// machine-telemetry documents captured on worker simulate spans,
// spliced below the HTTP span tree. The file lands in cfg.TraceDir as
// trace-<requestID>.json via a temp-file rename, so a reader never
// sees a half-written document.
//
// Runs on its own goroutine after the response is sent; a dead worker
// simply contributes no spans (its jobs appear as requeue/re-route
// spans on the coordinator side instead).
func (co *Coordinator) assembleTrace(requestID string) {
	// Workers publish their request-root spans right after writing the
	// response; give those final End()s a beat to land before fetching.
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(co.baseCtx, 10*time.Second)
	defer cancel()

	type proc struct {
		name  string
		spans []tracing.Span
	}
	procs := []proc{{name: "hidisc-coord"}}
	for _, s := range co.tracer.Spans(requestID) {
		procs[0].spans = append(procs[0].spans, *s)
	}

	clients := co.fleet.Clients()
	urls := make([]string, 0, len(clients))
	for u := range clients {
		urls = append(urls, u)
	}
	sort.Strings(urls) // deterministic pid assignment
	for _, u := range urls {
		spans, err := clients[u].Traces(ctx, requestID)
		if err != nil {
			co.logger.Warn("trace fetch failed", "requestId", requestID, "worker", u, "err", err.Error())
			continue
		}
		if len(spans) == 0 {
			continue
		}
		name := "hidisc-serve"
		if s := spans[0].Service; s != "" {
			name = s
		}
		procs = append(procs, proc{name: name + " " + u, spans: spans})
	}

	doc, spliced, skipped, err := buildMergedTrace(requestID, func(yield func(string, []tracing.Span)) {
		for _, p := range procs {
			yield(p.name, p.spans)
		}
	})
	if err != nil {
		co.logger.Error("trace assembly failed", "requestId", requestID, "err", err.Error())
		return
	}
	if skipped > 0 {
		co.logger.Warn("machine timelines capped in merged trace",
			"requestId", requestID, "spliced", spliced, "skipped", skipped, "cap", maxMachineSplices)
	}

	path := filepath.Join(co.cfg.TraceDir, "trace-"+sanitizeID(requestID)+".json")
	tmp, err := os.CreateTemp(co.cfg.TraceDir, ".trace-*")
	if err != nil {
		co.logger.Error("trace write failed", "requestId", requestID, "err", err.Error())
		return
	}
	_, werr := tmp.Write(doc)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		co.logger.Error("trace write failed", "requestId", requestID, "path", path)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		co.logger.Error("trace write failed", "requestId", requestID, "err", err.Error())
		return
	}
	co.logger.Info("trace assembled", "requestId", requestID, "path", path)
}

// sanitizeID makes a request ID safe as a filename component.
func sanitizeID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, id)
}

// machineDoc is the subset of a telemetry Perfetto document the
// splicer rewrites.
type machineDoc struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

// maxMachineSplices bounds how many captured machine documents one
// merged file carries. A single test-scale document is already tens of
// thousands of events; splicing a whole fig8 matrix's worth would
// produce a file Perfetto cannot load. The cap is never silent: the
// assembler logs spliced vs skipped counts when it bites.
const maxMachineSplices = 4

// buildMergedTrace renders processes of service spans (plus their
// captured machine documents) as one Chrome trace-event JSON document:
//
//   - one Perfetto "process" (pid) per service process, spans as ph:"X"
//     duration events on per-track tids, span identity (traceId /
//     spanId / parentId) carried in args;
//   - one additional process per captured machine document (up to
//     maxMachineSplices), its events re-timed so cycle 0 aligns with
//     the simulate span's start and its process name tagged with the
//     owning span id.
//
// All timestamps are microseconds from the earliest span start, so
// cross-process alignment uses the StartUnixNs wall-clock anchors.
// Returns the document plus how many machine documents were spliced
// and how many the cap skipped.
func buildMergedTrace(requestID string, procs func(yield func(string, []tracing.Span))) ([]byte, int, int, error) {
	// Epoch: earliest span start across every process.
	var epoch int64 = -1
	procs(func(_ string, spans []tracing.Span) {
		for _, s := range spans {
			if epoch < 0 || s.StartUnixNs < epoch {
				epoch = s.StartUnixNs
			}
		}
	})
	if epoch < 0 {
		epoch = 0
	}

	var events []map[string]any
	pid := 0
	nextMachinePid := 1000 // machine processes render after the service ones
	spliced, skipped := 0, 0

	procs(func(name string, spans []tracing.Span) {
		if len(spans) == 0 {
			return
		}
		pid++
		events = append(events, map[string]any{
			"ph": "M", "name": "process_name", "pid": pid,
			"args": map[string]any{"name": name},
		})
		// Stable tid per track within the process; "" renders as the
		// request row.
		tids := map[string]int{}
		tid := func(track string) int {
			if t, ok := tids[track]; ok {
				return t
			}
			t := len(tids) + 1
			tids[track] = t
			label := track
			if label == "" {
				label = "request"
			}
			events = append(events, map[string]any{
				"ph": "M", "name": "thread_name", "pid": pid, "tid": t,
				"args": map[string]any{"name": label},
			})
			return t
		}
		for _, s := range spans {
			ts := (s.StartUnixNs - epoch) / 1000
			dur := s.DurationNs / 1000
			if dur < 1 {
				dur = 1 // sub-µs spans still render
			}
			args := map[string]any{
				"traceId": s.TraceID, "spanId": s.SpanID, "parentId": s.ParentID,
				"requestId": s.RequestID, "service": s.Service,
			}
			for k, v := range s.Attrs {
				args[k] = v
			}
			events = append(events, map[string]any{
				"ph": "X", "cat": "span", "name": s.Name,
				"pid": pid, "tid": tid(s.Track), "ts": ts, "dur": dur,
				"args": args,
			})
			if len(s.Machine) > 0 {
				if spliced >= maxMachineSplices {
					skipped++
					continue
				}
				mev, err := spliceMachine(s, ts, nextMachinePid)
				if err == nil {
					events = append(events, mev...)
					nextMachinePid++
					spliced++
				}
			}
		}
	})

	// Compact encoding: one machine document is tens of thousands of
	// events, so indentation would multiply an already-large file.
	doc, err := json.Marshal(struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}{"ms", events})
	return doc, spliced, skipped, err
}

// spliceMachine rewrites one captured machine-telemetry document for
// the merged file: its pid (unique per document), its timestamps
// (machine cycle N, written as N µs, shifts to the simulate span's
// start so the pipeline timeline sits under the span that ran it), and
// its process name (tagged with the owning span id — what tracecheck
// uses to verify parentage, alongside the span_context metadata event
// the telemetry session recorded).
func spliceMachine(s tracing.Span, spanTs int64, pid int) ([]map[string]any, error) {
	var md machineDoc
	if err := json.Unmarshal(s.Machine, &md); err != nil {
		return nil, err
	}
	out := make([]map[string]any, 0, len(md.TraceEvents))
	for _, ev := range md.TraceEvents {
		ev["pid"] = pid
		if ev["ph"] == "M" {
			if ev["name"] == "process_name" {
				if args, ok := ev["args"].(map[string]any); ok {
					if label, ok := args["name"].(string); ok {
						args["name"] = "machine " + label + " span=" + s.SpanID
					}
				}
			}
		} else if ts, ok := ev["ts"].(float64); ok {
			ev["ts"] = int64(ts) + spanTs
		}
		out = append(out, ev)
	}
	return out, nil
}
