package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"hidisc/internal/simserver"
)

// Agent is the worker side of the cluster membership protocol: it
// registers a hidisc-serve instance with a coordinator and keeps a
// heartbeat loop running until told to deregister. It rides the same
// HTTP wire as everything else — three JSON POSTs, no new transport.
type Agent struct {
	// Coordinator is the coordinator's base URL; Advertise is this
	// worker's own base URL as the fleet should dial it (its identity).
	Coordinator string
	Advertise   string
	// Server is the worker being advertised; the agent reads its
	// capacity, depth, drain flag and store state.
	Server *simserver.Server
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Logger receives membership events; nil logs nowhere.
	Logger *slog.Logger

	heartbeat time.Duration
}

func (a *Agent) httpc() *http.Client {
	if a.HTTPClient != nil {
		return a.HTTPClient
	}
	return http.DefaultClient
}

func (a *Agent) logger() *slog.Logger {
	if a.Logger != nil {
		return a.Logger
	}
	return slog.New(discardHandler{})
}

// post sends one control-plane request; okStatus is the expected
// success code.
func (a *Agent) post(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.httpc().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// register announces the worker and adopts the coordinator's heartbeat
// cadence.
func (a *Agent) register(ctx context.Context) error {
	workers, queue := a.Server.Capacity()
	req := RegisterRequest{
		URL: a.Advertise, Workers: workers, Queue: queue, Store: a.Server.StoreState(),
	}
	var resp RegisterResponse
	status, err := a.post(ctx, "/v1/cluster/register", req, &resp)
	if err != nil {
		return err
	}
	if status/100 != 2 {
		return fmt.Errorf("register: coordinator answered HTTP %d", status)
	}
	if resp.HeartbeatMs > 0 {
		a.heartbeat = time.Duration(resp.HeartbeatMs) * time.Millisecond
	} else {
		a.heartbeat = time.Second
	}
	a.logger().Info("registered with coordinator",
		"coordinator", a.Coordinator, "advertise", a.Advertise,
		"heartbeat", a.heartbeat, "ttlMs", resp.TTLMs)
	return nil
}

// Run keeps the worker a fleet member until ctx ends: register (retried
// until the coordinator answers — worker and coordinator may start in
// either order), then heartbeat every interval. A 404 heartbeat means
// the coordinator no longer knows us (it restarted, or declared us dead
// during a stall) — re-register and carry on. Run returns only when ctx
// is cancelled; call Deregister afterwards for a graceful exit.
func (a *Agent) Run(ctx context.Context) {
	for a.register(ctx) != nil {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Second):
		}
	}
	tick := time.NewTicker(a.heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		hb := HeartbeatRequest{
			URL:      a.Advertise,
			InFlight: a.Server.InFlight(),
			Draining: a.Server.Draining(),
			Store:    a.Server.StoreState(),
		}
		hctx, cancel := context.WithTimeout(ctx, a.heartbeat)
		status, err := a.post(hctx, "/v1/cluster/heartbeat", hb, nil)
		cancel()
		switch {
		case err != nil:
			// Coordinator unreachable: keep beating — it may be
			// restarting, and registration state survives on our side.
			a.logger().Warn("heartbeat failed", "err", err.Error())
		case status == http.StatusNotFound:
			// Forgotten (coordinator restart or presumed death):
			// re-register on the next loop turn.
			a.logger().Warn("coordinator forgot us; re-registering")
			if err := a.register(ctx); err != nil {
				a.logger().Warn("re-register failed", "err", err.Error())
			} else {
				tick.Reset(a.heartbeat)
			}
		}
	}
}

// Deregister announces a graceful departure (SIGTERM drain): the
// coordinator stops routing to this worker immediately and does not
// count the exit as a death. Best-effort — a dead coordinator cannot
// stop us from shutting down.
func (a *Agent) Deregister(ctx context.Context) {
	status, err := a.post(ctx, "/v1/cluster/deregister", DeregisterRequest{URL: a.Advertise}, nil)
	switch {
	case err != nil:
		a.logger().Warn("deregister failed", "err", err.Error())
	default:
		a.logger().Info("deregistered from coordinator", "status", status)
	}
}
