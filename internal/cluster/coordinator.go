package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"hidisc/internal/simclient"
	"hidisc/internal/simserver"
	"hidisc/internal/tracing"
	"hidisc/internal/workloads"
)

// Config parameterises a Coordinator.
type Config struct {
	// Scale is the default workload scale for requests that don't name
	// one. The coordinator always resolves the scale before routing and
	// forwards it explicitly, so workers' own -scale defaults never
	// matter behind a coordinator.
	Scale workloads.Scale
	// HeartbeatInterval is the cadence workers are told to heartbeat at
	// (default 1s); TTL is the liveness budget (default 3s; silent past
	// TTL = suspect, past 2×TTL = dead).
	HeartbeatInterval time.Duration
	TTL               time.Duration
	// ClientOptions configures the per-worker clients (transport,
	// static headers). Its Retry policy is ignored: the coordinator
	// owns retries itself, because a retry may need to move to a
	// different worker (see forward).
	ClientOptions simclient.Options
	// Backoff is the delay schedule between forward attempts (default
	// simclient.DefaultBackoff); its MaxAttempts bounds per-job
	// attempts.
	Backoff *simclient.Backoff
	// StaticWorkers are worker base URLs to probe and adopt without
	// waiting for registrations.
	StaticWorkers []string
	// Logger receives structured logs; nil logs nowhere.
	Logger *slog.Logger
	// Tracer, when non-nil, collects routing-lifecycle spans (request,
	// per-job, per-attempt, requeue/re-route) into its ring, served on
	// GET /v1/traces. The coordinator also injects each attempt's span
	// context into the forwarded request (via simclient), so worker
	// span trees parent under the attempt that sent them.
	Tracer *tracing.Tracer
	// TraceDir, when set (and Tracer is on), makes the coordinator
	// assemble one merged Perfetto JSON file per traced request after
	// it completes: its own spans plus spans fetched from the workers'
	// /v1/traces rings, with any captured machine-telemetry documents
	// spliced under their simulate spans. Files land in TraceDir as
	// trace-<requestID>.json.
	TraceDir string
}

// Coordinator fronts a fleet of hidisc-serve workers with the same
// data-plane API a single worker serves: POST /v1/jobs, POST /v1/batch
// (including matrix NDJSON streaming), GET /metrics, GET /healthz.
// Jobs route to workers by consistent-hashing the canonical
// experiments.Job.Key(), so each worker's result cache, store and
// singleflight stay effective on its shard of the key space.
type Coordinator struct {
	cfg   Config
	fleet *fleet
	start time.Time

	baseCtx context.Context
	cancel  context.CancelFunc

	draining atomic.Bool
	logger   *slog.Logger
	reqSeq   atomic.Int64
	backoff  *simclient.Backoff
	tracer   *tracing.Tracer

	routed       atomic.Int64
	failed       atomic.Int64
	requeued     atomic.Int64
	rerouted     atomic.Int64
	throttled    atomic.Int64
	rejected     atomic.Int64
	registered   atomic.Int64
	deregistered atomic.Int64
	workerDeaths atomic.Int64
	avgJobNs     atomic.Int64 // EWMA of forwarded-job wall time
}

// New builds a coordinator.
func New(cfg Config) *Coordinator {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * cfg.HeartbeatInterval
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	if cfg.Backoff == nil {
		cfg.Backoff = simclient.DefaultBackoff()
	}
	// Worker clients never retry on their own: a failure must come back
	// to the coordinator, which decides retry-here vs re-route vs fail
	// fast (simclient.RetryableStatus is the shared table).
	opts := cfg.ClientOptions
	opts.Retry = nil
	ctx, cancel := context.WithCancel(context.Background())
	co := &Coordinator{
		cfg:     cfg,
		fleet:   newFleet(cfg.HeartbeatInterval, cfg.TTL, opts, logger),
		start:   time.Now(),
		baseCtx: ctx,
		cancel:  cancel,
		logger:  logger,
		backoff: cfg.Backoff,
		tracer:  cfg.Tracer,
	}
	co.fleet.onDeath = func(url, reason string) { co.workerDeaths.Add(1) }
	for _, url := range cfg.StaticWorkers {
		co.fleet.AddStatic(url)
	}
	return co
}

// Run operates the control loops until ctx ends: the TTL sweeper and
// one prober per static worker. Call it on its own goroutine.
func (co *Coordinator) Run(ctx context.Context) {
	for _, url := range co.fleet.StaticURLs() {
		go co.probeStatic(ctx, url)
	}
	tick := time.NewTicker(co.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			co.fleet.Sweep()
		}
	}
}

// probeStatic stands in for the registration loop of a worker named on
// the command line: while the worker is dead, probe its /metrics to
// learn capacity and register it; while it is a member, poll /healthz
// as a synthetic heartbeat. A static worker that goes down is probed
// forever — it may come back.
func (co *Coordinator) probeStatic(ctx context.Context, url string) {
	c := simclient.NewWithOptions(url, co.fleet.opts)
	tick := time.NewTicker(co.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		pctx, cancel := context.WithTimeout(ctx, co.cfg.TTL)
		if co.fleet.State(url) == StateDead {
			if m, err := c.Metrics(pctx); err == nil {
				co.fleet.Register(RegisterRequest{
					URL: url, Workers: m.Workers, Queue: m.Queue, Store: m.Store.State,
				})
				co.registered.Add(1)
				co.logger.Info("static worker adopted", "worker", url, "capacity", m.Capacity)
			}
		} else {
			if err := c.Healthz(pctx); err == nil {
				co.fleet.Heartbeat(HeartbeatRequest{URL: url})
			}
			// A draining worker answers healthz 503; the missed
			// synthetic heartbeat ages it through suspect to dead, which
			// is exactly the graceful-departure path a command-line-only
			// worker gets.
		}
		cancel()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// Handler returns the coordinator's route table.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleJob)
	mux.HandleFunc("POST /v1/batch", co.handleBatch)
	mux.HandleFunc("GET /metrics", co.handleMetrics)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	mux.HandleFunc("POST /v1/cluster/register", co.handleRegister)
	mux.HandleFunc("POST /v1/cluster/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/deregister", co.handleDeregister)
	mux.HandleFunc("GET /v1/traces", co.handleTraces)
	return co.withObservability(mux)
}

// Tracer returns the coordinator's span collector (nil when tracing is
// off).
func (co *Coordinator) Tracer() *tracing.Tracer { return co.tracer }

// handleTraces dumps the coordinator's span ring as NDJSON, filterable
// by ?request=<id> — the same wire shape workers serve, so one tool
// reads both.
func (co *Coordinator) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if co.tracer == nil {
		return
	}
	_ = co.tracer.WriteNDJSON(w, r.URL.Query().Get("request"))
}

// withObservability mirrors the worker-side middleware: assign (or
// adopt) an X-Request-Id and log one access line. Coordinator-assigned
// IDs are prefixed "co-" so a fleet log stream shows which hop minted
// the ID; the same ID then travels to the worker via simclient.
func (co *Coordinator) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("co-%08d", co.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		ctx := simserver.ContextWithRequestID(r.Context(), id)
		var span *tracing.Span
		if r.URL.Path == "/v1/jobs" || r.URL.Path == "/v1/batch" {
			span = co.tracer.Root("coord "+r.Method+" "+r.URL.Path, r.Header.Get("traceparent"), id)
			ctx = tracing.ContextWithSpan(ctx, span)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
		if span != nil && co.cfg.TraceDir != "" {
			// Assemble in the background: trace collection must never
			// hold up the response path.
			go co.assembleTrace(id)
		}
		co.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("requestId", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", time.Since(t0).Round(time.Microsecond)),
		)
	})
}

// StartDraining refuses new submissions and flips healthz to 503.
func (co *Coordinator) StartDraining() {
	if co.draining.CompareAndSwap(false, true) {
		co.logger.Info("drain started", "inFlight", co.InFlight())
	}
}

// Draining reports drain mode.
func (co *Coordinator) Draining() bool { return co.draining.Load() }

// ForceCancel aborts in-flight forwards.
func (co *Coordinator) ForceCancel() { co.cancel() }

// requestContext derives a forward context from the request that also
// dies when ForceCancel fires — a second shutdown signal must abandon
// forwards even though their HTTP requests are still open.
func (co *Coordinator) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(co.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// InFlight returns the number of coordinator-routed jobs currently
// forwarded.
func (co *Coordinator) InFlight() int {
	n, _, _ := co.fleet.Occupancy()
	return n
}

// Drain enters drain mode and waits for in-flight forwards.
func (co *Coordinator) Drain(ctx context.Context) error {
	co.StartDraining()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if co.InFlight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d jobs still in flight: %w", co.InFlight(), ctx.Err())
		case <-tick.C:
		}
	}
}

// --- routing ---

// forwardOutcome is one routed job's result.
type forwardOutcome struct {
	resp simserver.JobResponse
	err  error // *simclient.APIError for pass-through, else internal
}

// forward routes one job: canonicalize, hash, pick the ring owner,
// forward, and handle failure per the shared retryable-status table:
//
//   - success → done (count a reroute if it landed off its ring home);
//   - transport error → the worker died under the job: mark it dead,
//     requeue onto the ring minus the dead node (content addressing
//     makes the replay free — if the job actually completed before the
//     crash, the home-to-be worker's store/cache answers it);
//   - 429 → the home worker shed it; wait out Retry-After and try the
//     same worker again (its cache shard makes it the cheapest home);
//   - 502/503 → the worker is draining or behind a blip: exclude it
//     for this job and re-route;
//   - any other status (400/404/405/413/422/500/504) → a property of
//     the job, identical on every worker: fail fast, never re-routed.
//
// reqCtx bounds the caller's wait; between attempts the coordinator
// sleeps the Backoff schedule.
func (co *Coordinator) forward(reqCtx context.Context, jr simserver.JobRequest, def workloads.Scale) forwardOutcome {
	job, err := jr.CanonicalJob(def)
	if err != nil {
		return forwardOutcome{err: &simclient.APIError{
			Status: http.StatusBadRequest,
			Wire: simserver.WireError{
				Status: http.StatusBadRequest, Kind: simserver.KindBadRequest, Message: err.Error(),
			},
		}}
	}
	key := job.Key()
	// Forward the resolved scale explicitly: the key was computed under
	// it, so the worker must run exactly that.
	jr.Scale = simserver.ScaleName(job.Scale)

	sp := tracing.SpanFrom(reqCtx)
	sp.SetAttr("key", key)
	excluded := map[string]bool{}
	home := ""
	var lastErr error
	for attempt := 0; attempt < co.backoff.MaxAttempts(); attempt++ {
		if err := reqCtx.Err(); err != nil {
			return forwardOutcome{err: err}
		}
		url, c := co.fleet.PickClient(key, excluded)
		if url == "" {
			// Nothing routable: membership may recover (a worker restart
			// re-registers within a heartbeat), so wait a slot and widen
			// the search back to the full ring.
			lastErr = errNoWorkers
			excluded = map[string]bool{}
			if err := co.backoff.Sleep(reqCtx, co.backoff.Delay(attempt)); err != nil {
				return forwardOutcome{err: err}
			}
			continue
		}
		if home == "" {
			home = url
		}
		// One span per forward attempt; the worker's own span tree (and
		// simclient's client span) parent under it via the traceparent
		// simclient injects from the attempt context.
		asp := sp.Child("coord.attempt")
		asp.SetAttr("worker", url)
		if url != home {
			asp.SetAttr("reroutedFrom", home)
		}
		actx := tracing.ContextWithSpan(reqCtx, asp)
		co.fleet.Begin(url)
		t0 := time.Now()
		resp, err := c.Run(actx, jr)
		co.fleet.End(url)
		if err == nil {
			asp.End()
			co.observeJobTime(time.Since(t0))
			co.routed.Add(1)
			if url != home {
				co.rerouted.Add(1)
			}
			return forwardOutcome{resp: resp}
		}
		asp.SetAttr("error", err.Error())
		asp.End()
		lastErr = err
		var ae *simclient.APIError
		switch {
		case errors.As(err, &ae) && !simclient.RetryableStatus(ae.Status):
			// The job's own fault — identical on every worker.
			co.failed.Add(1)
			return forwardOutcome{err: ae}
		case errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests:
			// Shed by the home shard: honour its Retry-After there.
			co.throttled.Add(1)
			co.logger.Warn("worker shed job; holding for its shard",
				"requestId", simserver.RequestIDFrom(reqCtx), "worker", url,
				"retryAfter", ae.RetryAfter)
			if err := co.backoff.Sleep(reqCtx, co.backoff.DelayFor(attempt, err)); err != nil {
				return forwardOutcome{err: err}
			}
		case errors.As(err, &ae):
			// 502/503: draining or an intermediary blip — re-route now.
			excluded[url] = true
			rsp := sp.Child("coord.reroute")
			rsp.SetAttr("worker", url)
			rsp.SetAttr("status", strconv.Itoa(ae.Status))
			rsp.End()
			co.logger.Info("worker refused job; re-routing",
				"requestId", simserver.RequestIDFrom(reqCtx), "worker", url,
				"status", ae.Status)
		case reqCtx.Err() != nil:
			return forwardOutcome{err: reqCtx.Err()}
		default:
			// Transport-level failure: the worker died under this job.
			// Requeue it onto the ring minus the dead node. The requeue
			// span names the dead worker, so a merged trace shows exactly
			// which node a job had to abandon.
			co.fleet.MarkDead(url, err.Error())
			co.requeued.Add(1)
			excluded[url] = true
			qsp := sp.Child("coord.requeue")
			qsp.SetAttr("worker", url)
			qsp.SetAttr("reason", err.Error())
			qsp.End()
			co.logger.Warn("worker died in flight; requeueing job",
				"requestId", simserver.RequestIDFrom(reqCtx), "worker", url,
				"key", key, "err", err.Error())
		}
	}
	co.failed.Add(1)
	return forwardOutcome{err: lastErr}
}

var errNoWorkers = errors.New("no routable workers in the fleet")

func (co *Coordinator) observeJobTime(d time.Duration) {
	for {
		old := co.avgJobNs.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/8
		}
		if co.avgJobNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// tryAdmit is fleet-wide admission: all-or-nothing against the summed
// capacity of routable workers, mirroring each worker's own
// workers+queue bound. Returns the 429 Retry-After estimate on
// rejection — backlog over the fleet's summed pool width at the EWMA
// job time, the same math one worker applies to its own queue.
func (co *Coordinator) tryAdmit(n int) (ok bool, retryAfterSecs int, backlog int) {
	inFlight, capacity, poolWidth := co.fleet.Occupancy()
	if inFlight+n <= capacity {
		return true, 0, inFlight
	}
	avg := time.Duration(co.avgJobNs.Load())
	if avg <= 0 {
		avg = time.Second
	}
	est := time.Duration(inFlight/max(poolWidth, 1)+1) * avg
	secs := int((est + time.Second - 1) / time.Second)
	return false, min(max(secs, 1), 60), inFlight
}

// --- handlers ---

func (co *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	if co.Draining() {
		co.writeError(w, r, simserver.WireError{
			Status: http.StatusServiceUnavailable, Kind: simserver.KindDraining,
			Message: "coordinator is draining",
		})
		return
	}
	var jr simserver.JobRequest
	if err := decodeBody(w, r, &jr); err != nil {
		co.writeError(w, r, simserver.WireError{
			Status: http.StatusBadRequest, Kind: simserver.KindBadRequest, Message: err.Error(),
		})
		return
	}
	if co.fleet.AliveCount() == 0 {
		co.writeError(w, r, co.wireError(errNoWorkers))
		return
	}
	asp := tracing.SpanFrom(r.Context()).Child("coord.admit")
	ok, secs, backlog := co.tryAdmit(1)
	asp.SetAttr("ok", strconv.FormatBool(ok))
	asp.SetAttr("backlog", strconv.Itoa(backlog))
	asp.End()
	if !ok {
		co.reject(w, r, secs, backlog)
		return
	}
	ctx, cancel := co.requestContext(r)
	defer cancel()
	out := co.forward(ctx, jr, co.cfg.Scale)
	if out.err != nil {
		co.writeError(w, r, co.wireError(out.err))
		return
	}
	writeJSON(w, http.StatusOK, out.resp)
}

func (co *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	if co.Draining() {
		co.writeError(w, r, simserver.WireError{
			Status: http.StatusServiceUnavailable, Kind: simserver.KindDraining,
			Message: "coordinator is draining",
		})
		return
	}
	var br simserver.BatchRequest
	if err := decodeBody(w, r, &br); err != nil {
		co.writeError(w, r, simserver.WireError{
			Status: http.StatusBadRequest, Kind: simserver.KindBadRequest, Message: err.Error(),
		})
		return
	}
	scale, err := simserver.ParseScale(br.Scale, co.cfg.Scale)
	if err != nil {
		co.writeError(w, r, simserver.WireError{
			Status: http.StatusBadRequest, Kind: simserver.KindBadRequest, Message: err.Error(),
		})
		return
	}
	jobs, err := simserver.ExpandBatch(br, scale)
	if err != nil {
		co.writeError(w, r, simserver.WireError{
			Status: http.StatusBadRequest, Kind: simserver.KindBadRequest, Message: err.Error(),
		})
		return
	}
	if co.fleet.AliveCount() == 0 {
		co.writeError(w, r, co.wireError(errNoWorkers))
		return
	}
	asp := tracing.SpanFrom(r.Context()).Child("coord.admit")
	ok, secs, backlog := co.tryAdmit(len(jobs))
	asp.SetAttr("ok", strconv.FormatBool(ok))
	asp.SetAttr("jobs", strconv.Itoa(len(jobs)))
	asp.SetAttr("backlog", strconv.Itoa(backlog))
	asp.End()
	if !ok {
		co.reject(w, r, secs, backlog)
		return
	}

	// Stream one NDJSON line per job as it completes, exactly like a
	// worker would — batch consumers cannot tell a fleet from a node.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx, cancel := co.requestContext(r)
	defer cancel()
	items := make(chan simserver.BatchItem)
	for i := range jobs {
		go func(i int) {
			// Each routed job gets its own span on its own track, so a
			// fleet batch renders as parallel rows per job.
			jctx := ctx
			jsp := tracing.SpanFrom(ctx).Child("coord.job")
			if jsp != nil {
				jsp.SetTrack(fmt.Sprintf("job[%d]", i))
				jsp.SetAttr("index", strconv.Itoa(i))
				jctx = tracing.ContextWithSpan(ctx, jsp)
			}
			// scale (the batch-level resolution) is the default for jobs
			// without their own, matching the worker's batch semantics.
			out := co.forward(jctx, jobs[i], scale)
			jsp.End()
			it := simserver.BatchItem{
				Index: i, Key: out.resp.Key, Cached: out.resp.Cached,
				Stored: out.resp.Stored, Deduped: out.resp.Deduped,
				Measurement: out.resp.Measurement,
			}
			if out.err != nil {
				we := co.wireError(out.err)
				we.RequestID = simserver.RequestIDFrom(r.Context())
				it.Error = &we
				it.Measurement = nil
			}
			items <- it
		}(i)
	}
	enc := json.NewEncoder(w)
	for range jobs {
		if err := enc.Encode(<-items); err != nil {
			// Client went away; keep consuming so forwards finish.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := HealthSnapshot{Workers: co.fleet.Health()}
	status := http.StatusOK
	switch {
	case co.Draining():
		snap.Status = "draining"
		status = http.StatusServiceUnavailable
	case co.fleet.AliveCount() == 0:
		snap.Status = "down"
		status = http.StatusServiceUnavailable
	default:
		snap.Status = "ok"
	}
	writeJSON(w, status, snap)
}

func (co *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(w, r, &req); err != nil || req.URL == "" {
		http.Error(w, "bad register body", http.StatusBadRequest)
		return
	}
	co.fleet.Register(req)
	co.registered.Add(1)
	co.logger.Info("worker registered",
		"worker", req.URL, "workers", req.Workers, "queue", req.Queue)
	writeJSON(w, http.StatusOK, RegisterResponse{
		HeartbeatMs: co.cfg.HeartbeatInterval.Milliseconds(),
		TTLMs:       co.cfg.TTL.Milliseconds(),
	})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeBody(w, r, &req); err != nil || req.URL == "" {
		http.Error(w, "bad heartbeat body", http.StatusBadRequest)
		return
	}
	if !co.fleet.Heartbeat(req) {
		// Unknown or dead: the worker must re-register.
		http.Error(w, "unknown worker; re-register", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (co *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req DeregisterRequest
	if err := decodeBody(w, r, &req); err != nil || req.URL == "" {
		http.Error(w, "bad deregister body", http.StatusBadRequest)
		return
	}
	if co.fleet.Deregister(req.URL) {
		co.deregistered.Add(1)
		co.logger.Info("worker deregistered", "worker", req.URL)
	}
	w.WriteHeader(http.StatusNoContent)
}

// reject answers 429 with the fleet-wide Retry-After estimate.
func (co *Coordinator) reject(w http.ResponseWriter, r *http.Request, secs, backlog int) {
	co.rejected.Add(1)
	co.logger.Warn("fleet admission rejected",
		"requestId", simserver.RequestIDFrom(r.Context()), "backlog", backlog, "retryAfterSeconds", secs)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	co.writeError(w, r, simserver.WireError{
		Status: http.StatusTooManyRequests, Kind: simserver.KindOverloaded,
		Message: fmt.Sprintf("fleet admission full (%d jobs in flight); retry in %ds", backlog, secs),
	})
}

// wireError renders a forward failure: worker APIErrors pass through
// verbatim (status, kind, snapshot — the worker already mapped its
// fault), everything else is coordinator-shaped.
func (co *Coordinator) wireError(err error) simserver.WireError {
	var ae *simclient.APIError
	if errors.As(err, &ae) {
		return ae.Wire
	}
	if errors.Is(err, errNoWorkers) {
		return simserver.WireError{
			Status: http.StatusServiceUnavailable, Kind: "no-workers",
			Message: "no routable workers in the fleet; retry once one registers",
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return simserver.WireError{
			Status: http.StatusGatewayTimeout, Kind: "timeout",
			Message: err.Error(),
		}
	}
	return simserver.WireError{
		Status: http.StatusBadGateway, Kind: "worker-unreachable",
		Message: err.Error(),
	}
}

func (co *Coordinator) writeError(w http.ResponseWriter, r *http.Request, we simserver.WireError) {
	we.RequestID = simserver.RequestIDFrom(r.Context())
	level := slog.LevelWarn
	if we.Status >= http.StatusInternalServerError {
		level = slog.LevelError
	}
	co.logger.Log(r.Context(), level, "request error",
		"requestId", we.RequestID, "status", we.Status, "kind", we.Kind, "message", we.Message)
	writeJSON(w, we.Status, simserver.ErrorBody{Err: we})
}

// --- plumbing (mirrors simserver's) ---

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// discardHandler drops every record (slog.DiscardHandler needs a newer
// toolchain than go.mod promises).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
