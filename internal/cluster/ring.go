// Package cluster turns single-node hidisc-serve processes into a
// shared-nothing fleet: a Coordinator routes jobs to N workers by
// consistent-hashing the canonical experiments.Job.Key(), so each
// worker's LRU cache, durable result store, and singleflight dedup
// stay effective for its shard of the key space with no cross-shard
// duplication. Workers register and heartbeat over the existing HTTP
// wire (Agent is the worker-side loop); a worker that dies mid-batch
// has its in-flight jobs requeued onto the ring minus the dead node —
// content addressing makes the replays free. Admission aggregates
// fleet-wide (429 + EWMA Retry-After over per-worker depth), and the
// coordinator exposes merged /metrics and per-worker /healthz, so the
// fleet presents the same API surface as one hidisc-serve.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ringReplicas is the number of virtual nodes each worker contributes
// to the ring. More replicas smooth the key distribution (the expected
// per-node share concentrates around 1/N) at the cost of a larger
// sorted point list; 128 keeps an 8-worker ring at 1024 points, small
// enough that a lookup is one binary search over a contiguous slice.
const ringReplicas = 128

// Ring is a consistent-hash ring over node names. Placement is
// deterministic and stable across processes: both virtual-node
// positions and key lookups hash with sha256, so every coordinator
// (and every test) agrees on where a key lives. The zero number of
// nodes is valid — Pick returns "" until a node joins.
//
// Consistent hashing is what makes membership churn cheap: when a node
// joins or leaves, only the keys on the arcs it owns move (expected
// 1/N of the key space), so the surviving workers keep almost all of
// their cache and store locality. RingTestMovement pins that bound.
//
// Ring is not goroutine-safe; the fleet serializes access under its
// own lock.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring.
func NewRing() *Ring {
	return &Ring{nodes: map[string]bool{}}
}

// ringHash maps a string to its position on the ring.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node and its virtual replicas. Adding a present node
// is a no-op.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < ringReplicas; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		r.points = append(r.points, ringPoint{
			hash: ringHash("vnode|" + node + "|" + string(buf[:])),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node and its replicas. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of (real) nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Pick returns the node owning key: the first virtual node clockwise
// from the key's hash. Empty ring picks "".
func (r *Ring) Pick(key string) string {
	return r.PickExcluding(key, nil)
}

// PickExcluding returns the owner of key after skipping excluded
// nodes: the routing primitive for requeue-on-death, where a job is
// re-placed on "the ring minus the dead node". Walking clockwise past
// excluded owners preserves the consistent-hashing property — keys
// whose owner is healthy do not move at all. Returns "" when every
// node is excluded (or the ring is empty).
func (r *Ring) PickExcluding(key string, excluded map[string]bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash("key|" + key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !excluded[p.node] {
			return p.node
		}
	}
	return ""
}
