package cluster

import (
	"log/slog"
	"testing"
	"time"

	"hidisc/internal/simclient"
)

// testFleet builds a fleet on a fake clock: TTL 3s, heartbeat 1s.
func testFleet() (*fleet, *time.Time) {
	now := time.Unix(1_000_000, 0)
	f := newFleet(time.Second, 3*time.Second, simclient.Options{}, slog.New(discardHandler{}))
	f.now = func() time.Time { return now }
	return f, &now
}

// TestFleetTTLStateMachine walks one worker through the heartbeat
// state machine on an injected clock: alive while beating, suspect
// after TTL of silence (still routable — one missed beat must not
// reshard the key space), dead after 2×TTL (out of the ring, onDeath
// fired, heartbeats refused), alive again after re-registering.
func TestFleetTTLStateMachine(t *testing.T) {
	f, now := testFleet()
	var deaths []string
	f.onDeath = func(url, reason string) { deaths = append(deaths, url) }

	f.Register(RegisterRequest{URL: "http://w1", Workers: 2, Queue: 4})
	if got := f.State("http://w1"); got != StateAlive {
		t.Fatalf("after register: state %q, want alive", got)
	}
	if f.AliveCount() != 1 {
		t.Fatalf("after register: AliveCount %d, want 1", f.AliveCount())
	}

	// Silent past TTL: suspect, but still in the ring.
	*now = now.Add(3*time.Second + 500*time.Millisecond)
	f.Sweep()
	if got := f.State("http://w1"); got != StateSuspect {
		t.Fatalf("past TTL: state %q, want suspect", got)
	}
	if f.AliveCount() != 1 {
		t.Fatalf("suspect worker must stay in the ring; AliveCount %d", f.AliveCount())
	}

	// A heartbeat revives a suspect.
	if !f.Heartbeat(HeartbeatRequest{URL: "http://w1"}) {
		t.Fatal("heartbeat from a suspect worker must be accepted")
	}
	if got := f.State("http://w1"); got != StateAlive {
		t.Fatalf("after heartbeat: state %q, want alive", got)
	}

	// Silent past 2×TTL: dead, out of the ring, death callback fired.
	*now = now.Add(6*time.Second + 500*time.Millisecond)
	f.Sweep()
	if got := f.State("http://w1"); got != StateDead {
		t.Fatalf("past 2xTTL: state %q, want dead", got)
	}
	if f.AliveCount() != 0 {
		t.Fatalf("dead worker must leave the ring; AliveCount %d", f.AliveCount())
	}
	if len(deaths) != 1 || deaths[0] != "http://w1" {
		t.Fatalf("onDeath calls = %v, want one for w1", deaths)
	}

	// Heartbeats from the dead are refused (the wire answers 404, which
	// tells the worker to re-register)...
	if f.Heartbeat(HeartbeatRequest{URL: "http://w1"}) {
		t.Fatal("heartbeat from a dead worker must be refused")
	}
	// ...and re-registration revives it.
	f.Register(RegisterRequest{URL: "http://w1", Workers: 2, Queue: 4})
	if got := f.State("http://w1"); got != StateAlive {
		t.Fatalf("after re-register: state %q, want alive", got)
	}
	if f.AliveCount() != 1 {
		t.Fatalf("after re-register: AliveCount %d, want 1", f.AliveCount())
	}
}

// TestFleetMarkDead pins transport-failure death: immediate ring
// removal, exactly one death callback no matter how many in-flight
// forwards report the same corpse.
func TestFleetMarkDead(t *testing.T) {
	f, _ := testFleet()
	var deaths int
	f.onDeath = func(url, reason string) { deaths++ }

	f.Register(RegisterRequest{URL: "http://w1", Workers: 1, Queue: 1})
	f.Register(RegisterRequest{URL: "http://w2", Workers: 1, Queue: 1})
	f.MarkDead("http://w1", "connection refused")
	f.MarkDead("http://w1", "connection refused") // racing forwards
	if deaths != 1 {
		t.Fatalf("deaths = %d, want 1 (idempotent MarkDead)", deaths)
	}
	if f.AliveCount() != 1 {
		t.Fatalf("AliveCount = %d, want 1", f.AliveCount())
	}
	if url, _ := f.PickClient("anykey", nil); url != "http://w2" {
		t.Fatalf("routing after death picked %q, want the survivor", url)
	}
}

// TestFleetDeregister pins graceful departure: dynamic workers vanish,
// static (command-line) workers stay tracked dead so the prober can
// re-admit them, and neither counts as a death.
func TestFleetDeregister(t *testing.T) {
	f, _ := testFleet()
	var deaths int
	f.onDeath = func(url, reason string) { deaths++ }

	f.Register(RegisterRequest{URL: "http://dyn", Workers: 1, Queue: 1})
	f.AddStatic("http://stat")
	f.Register(RegisterRequest{URL: "http://stat", Workers: 1, Queue: 1})

	if !f.Deregister("http://dyn") {
		t.Fatal("deregistering a member must report true")
	}
	if got := f.State("http://dyn"); got != "" {
		t.Fatalf("dynamic worker still tracked after deregister (state %q)", got)
	}
	if !f.Deregister("http://stat") {
		t.Fatal("deregistering the static member must report true")
	}
	if got := f.State("http://stat"); got != StateDead {
		t.Fatalf("static worker state %q after deregister, want dead (kept for probing)", got)
	}
	if f.AliveCount() != 0 {
		t.Fatalf("AliveCount = %d, want 0", f.AliveCount())
	}
	if deaths != 0 {
		t.Fatalf("graceful departures counted as %d deaths, want 0", deaths)
	}
	if f.Deregister("http://unknown") {
		t.Fatal("deregistering an unknown worker must report false")
	}
}

// TestFleetOccupancy pins the admission inputs: dead and draining
// workers contribute no capacity, but their in-flight forwards still
// count (the jobs are real until they finish or fail).
func TestFleetOccupancy(t *testing.T) {
	f, _ := testFleet()
	f.Register(RegisterRequest{URL: "http://w1", Workers: 2, Queue: 8})
	f.Register(RegisterRequest{URL: "http://w2", Workers: 2, Queue: 8})
	f.Begin("http://w1")
	f.Begin("http://w1")
	f.Begin("http://w2")

	inFlight, capacity, pool := f.Occupancy()
	if inFlight != 3 || capacity != 20 || pool != 4 {
		t.Fatalf("Occupancy = (%d,%d,%d), want (3,20,4)", inFlight, capacity, pool)
	}

	f.MarkDead("http://w2", "test")
	inFlight, capacity, pool = f.Occupancy()
	if inFlight != 3 || capacity != 10 || pool != 2 {
		t.Fatalf("Occupancy after death = (%d,%d,%d), want (3,10,2)", inFlight, capacity, pool)
	}

	f.End("http://w1")
	inFlight, _, _ = f.Occupancy()
	if inFlight != 2 {
		t.Fatalf("inFlight after End = %d, want 2", inFlight)
	}
}
