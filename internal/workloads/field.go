package workloads

// Field is the DIS Field Stressmark kernel: token search over a large
// byte field. The field is synthesised once with a cheap additive
// generator, then scanned sequentially counting delimiter-separated
// tokens that start with a key byte. Accesses are sequential (one miss
// per cache line), so the paper observes that the CMP adds little here
// while access/execute decoupling still overlaps the scan with the
// token accounting — Field is the benchmark that "eloquently shows the
// merit of the access/execute decoupling over the CMP".
func Field(s Scale) *Workload {
	length := 49152
	if s == ScaleTest {
		length = 4096
	}
	const (
		key   = 0x41 // token-start byte
		delim = 0x20 // delimiter byte (values land in [0x20, 0x5F])
	)
	src := fmtSrc(`
        .data
field:  .space %d
        .text
main:   la   $r2, field      ; synthesise the field (additive Weyl generator)
        li   $r1, %d
        li   $r5, 12345
fill:   li   $r6, 0x9E3779B9
        add  $r5, $r5, $r6
        srli $r4, $r5, 16
        andi $r4, $r4, 63
        addi $r4, $r4, 0x20
        sb   $r4, 0($r2)
        addi $r2, $r2, 1
        addi $r1, $r1, -1
        bgtz $r1, fill
        la   $r2, field       ; scan
        li   $r1, %d
        li   $r9, %d          ; key byte
        li   $r10, %d         ; delimiter
        li   $r6, 0           ; tokens found
        li   $r7, 0           ; key-byte positions checksum
        li   $r8, 1           ; at-token-start flag
scan:   lbu  $r4, 0($r2)
        beq  $r4, $r10, isdelim
        beq  $r8, $r0, advance
        li   $r8, 0
        bne  $r4, $r9, advance
        addi $r6, $r6, 1      ; token starting with key
        add  $r7, $r7, $r1
        j    advance
isdelim: li  $r8, 1
advance: addi $r2, $r2, 1
        addi $r1, $r1, -1
        bgtz $r1, scan
        out  $r6
        out  $r7
        halt
`, length, length, length, key, delim)

	// Reference.
	field := make([]byte, length)
	u := uint32(12345)
	for i := range field {
		u += 0x9E3779B9
		field[i] = byte((u>>16)&63) + 0x20
	}
	var count, checksum uint32
	atStart := true
	for i, b := range field {
		rem := uint32(length - i)
		if b == delim {
			atStart = true
			continue
		}
		if atStart {
			atStart = false
			if b == key {
				count++
				checksum += rem
			}
		}
	}

	return &Workload{
		Name:        "Field",
		Suite:       "Stressmark",
		Description: "sequential token search over a synthesised byte field",
		Source:      src,
		Expected:    []string{itoa(count), itoa(checksum)},
		MaxInsts:    uint64(length*24) + 1000,
	}
}
