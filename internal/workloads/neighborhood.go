package workloads

// Neighborhood is the DIS Neighborhood Stressmark kernel: for every
// interior pixel of a synthesised image it gathers neighbors at a
// fixed distance, computes a floating point texture measure (sum of
// squared differences) and stores the per-pixel result while
// accumulating a global sum. The per-pixel store of a computed value
// forces a Computation Stream -> Access Stream transfer every
// iteration; the resulting synchronisation pressure is the paper's
// loss-of-decoupling case where CP+AP falls below the superscalar
// baseline.
func Neighborhood(s Scale) *Workload {
	size, dist := 256, 32
	if s == ScaleTest {
		size, dist = 24, 4
	}
	interiorY := size - dist
	interiorX := size - 2
	src := fmtSrc(`
        .data
img:    .space %d             ; size*size bytes
res:    .space %d             ; per-pixel results
        .text
main:   la   $r2, img         ; synthesise the image
        li   $r1, %d
        li   $r5, 777
fill:   li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 255
        sb   $r4, 0($r2)
        addi $r2, $r2, 1
        addi $r1, $r1, -1
        bgtz $r1, fill
        ; neighborhood sweep; the paired pixel sits dist rows up, far
        ; enough that the result stream has evicted its line
        li   $r11, %d         ; y starts at dist
        la   $r14, res
        sub.d $f10, $f10, $f10 ; global sum = 0
yloop:  li   $r12, 1          ; x
xloop:  li   $r6, %d
        mul  $r7, $r11, $r6
        add  $r7, $r7, $r12   ; idx = y*size + x
        la   $r8, img
        add  $r8, $r8, $r7
        lbu  $r3, 0($r8)      ; p
        lbu  $r4, -%d($r8)    ; paired pixel dist rows up
        sub  $r4, $r3, $r4
        cvt.d.w $f1, $r4
        mul.d $f1, $f1, $f1   ; squared difference
        s.d  $f1, 0($r14)     ; per-pixel result (CS -> SDQ -> store)
        add.d $f10, $f10, $f1
        addi $r14, $r14, 8
        addi $r12, $r12, 1
        slti $r7, $r12, %d
        bne  $r7, $r0, xloop
        addi $r11, $r11, 1
        slti $r7, $r11, %d
        bne  $r7, $r0, yloop
        out.d $f10
        halt
`, size*size, interiorY*interiorX*8, size*size, dist, size, dist*size, size-1, size-1)

	// Reference.
	img := make([]byte, size*size)
	u := uint32(777)
	for i := range img {
		u = lcg(u)
		img[i] = byte((u >> 16) & 255)
	}
	var sum float64
	for y := dist; y < size-1; y++ {
		for x := 1; x < size-1; x++ {
			idx := y*size + x
			p := int32(img[idx])
			d1 := float64(p - int32(img[idx-dist*size]))
			sum += d1 * d1
		}
	}

	return &Workload{
		Name:        "NB",
		Suite:       "Stressmark",
		Description: "per-pixel neighborhood texture measure with per-iteration computed stores",
		Source:      src,
		Expected:    []string{ftoa(sum)},
		MaxInsts:    uint64(size*size*10+interiorY*interiorX*30) + 1000,
	}
}
