package workloads

// Matrix is the DIS Matrix Stressmark kernel: repeated sparse
// matrix-vector products in CSR form (the heart of the stressmark's
// conjugate-gradient solver). The gather x[col[j]] is an indirect
// access whose index stream is itself a strided load — the classic
// two-level pattern where the CMAS loads the column indices (value
// needed) and prefetches the gathered elements.
//
// Matrix and CornerTurn complete the seven-member DIS Stressmark
// suite; the paper's figures plot the other five, so these two are
// exercised by the test suite and the tools but not by the Figure 8/9
// harness.
func Matrix(s Scale) *Workload {
	rows, nnzPerRow, iters := 2048, 8, 6
	if s == ScaleTest {
		rows, nnzPerRow, iters = 128, 4, 2
	}
	nnz := rows * nnzPerRow
	src := fmtSrc(`
        .data
colidx: .space %d             ; nnz column indices (words)
vals:   .space %d             ; nnz values (doubles)
x:      .space %d             ; rows doubles
y:      .space %d
        .text
main:   la   $r2, colidx      ; synthesise the sparse structure
        la   $r3, vals
        li   $r1, %d
        li   $r5, 2025
fillnz: li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 8
        andi $r4, $r4, %d     ; column in [0, rows)
        sw   $r4, 0($r2)
        andi $r7, $r5, 15
        addi $r7, $r7, 1
        cvt.d.w $f1, $r7      ; value in [1,16]
        s.d  $f1, 0($r3)
        addi $r2, $r2, 4
        addi $r3, $r3, 8
        addi $r1, $r1, -1
        bgtz $r1, fillnz
        la   $r2, x           ; x[i] = 1.0
        li   $r1, %d
        li   $r7, 1
        cvt.d.w $f1, $r7
fillx:  s.d  $f1, 0($r2)
        addi $r2, $r2, 8
        addi $r1, $r1, -1
        bgtz $r1, fillx
        ; repeated y = A*x ; x = y * 0.001
        li   $r30, %d         ; iterations
        li   $r7, 1000
        cvt.d.w $f20, $r7
iter:   la   $r10, colidx
        la   $r11, vals
        la   $r13, y
        li   $r20, %d         ; row counter
row:    sub.d $f4, $f4, $f4   ; acc = 0
        li   $r21, %d         ; nnz per row
nzl:    lw   $r4, 0($r10)     ; column index (CMAS chases this)
        slli $r4, $r4, 3
        la   $r12, x
        add  $r4, $r12, $r4
        l.d  $f1, 0($r4)      ; gather x[col]
        l.d  $f2, 0($r11)     ; value
        mul.d $f3, $f1, $f2
        add.d $f4, $f4, $f3
        addi $r10, $r10, 4
        addi $r11, $r11, 8
        addi $r21, $r21, -1
        bgtz $r21, nzl
        s.d  $f4, 0($r13)     ; y[row]
        addi $r13, $r13, 8
        addi $r20, $r20, -1
        bgtz $r20, row
        ; x = y / 1000 (keeps magnitudes bounded)
        la   $r12, x
        la   $r13, y
        li   $r20, %d
scale:  l.d  $f1, 0($r13)
        div.d $f1, $f1, $f20
        s.d  $f1, 0($r12)
        addi $r12, $r12, 8
        addi $r13, $r13, 8
        addi $r20, $r20, -1
        bgtz $r20, scale
        addi $r30, $r30, -1
        bgtz $r30, iter
        ; checksum: sum of y
        la   $r13, y
        li   $r20, %d
        sub.d $f10, $f10, $f10
sum:    l.d  $f1, 0($r13)
        add.d $f10, $f10, $f1
        addi $r13, $r13, 8
        addi $r20, $r20, -1
        bgtz $r20, sum
        out.d $f10
        halt
`, nnz*4, nnz*8, rows*8, rows*8,
		nnz, rows-1, rows, iters, rows, nnzPerRow, rows, rows)

	// Reference.
	col := make([]int, nnz)
	val := make([]float64, nnz)
	u := uint32(2025)
	for i := 0; i < nnz; i++ {
		u = lcg(u)
		col[i] = int((u >> 8) & uint32(rows-1))
		val[i] = float64(u&15 + 1)
	}
	x := make([]float64, rows)
	y := make([]float64, rows)
	for i := range x {
		x[i] = 1.0
	}
	for it := 0; it < iters; it++ {
		k := 0
		for r := 0; r < rows; r++ {
			acc := 0.0
			for j := 0; j < nnzPerRow; j++ {
				acc += x[col[k]] * val[k]
				k++
			}
			y[r] = acc
		}
		for i := range x {
			x[i] = y[i] / 1000.0
		}
	}
	var sum float64
	for _, v := range y {
		sum += v
	}

	return &Workload{
		Name:        "Matrix",
		Suite:       "Stressmark",
		Description: "repeated CSR sparse matrix-vector products with indirect gathers",
		Source:      src,
		Expected:    []string{ftoa(sum)},
		MaxInsts:    uint64(nnz*16+rows*8) + uint64(iters)*uint64(nnz*16+rows*14) + 10000,
	}
}

// CornerTurn is the DIS Corner-Turn Stressmark kernel: repeated matrix
// transposes. Reads stream row-major while writes stride a full row —
// the transpose direction's write misses dominate and are strided, so
// the CMAS covers them with distance prefetching.
func CornerTurn(s Scale) *Workload {
	n, passes := 256, 2
	if s == ScaleTest {
		n, passes = 32, 2
	}
	src := fmtSrc(`
        .data
a:      .space %d             ; n*n words
b:      .space %d
        .text
main:   la   $r2, a           ; synthesise A
        li   $r1, %d
        li   $r5, 555
fill:   li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 12
        sw   $r4, 0($r2)
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, fill
        li   $r30, %d         ; passes: B = A^T, then A = B^T
pass:   li   $r20, 0          ; i
iloop:  li   $r21, 0          ; j
        li   $r6, %d
        mul  $r7, $r20, $r6
        slli $r7, $r7, 2
        la   $r8, a
        add  $r8, $r8, $r7    ; &A[i][0]
        slli $r9, $r20, 2
        la   $r10, b
        add  $r9, $r10, $r9   ; &B[0][i]
jloop:  lw   $r4, 0($r8)      ; A[i][j], streaming read
        sw   $r4, 0($r9)      ; B[j][i], strided write (CMAS target)
        addi $r8, $r8, 4
        addi $r9, $r9, %d     ; n*4
        addi $r21, $r21, 1
        slti $r7, $r21, %d
        bne  $r7, $r0, jloop
        addi $r20, $r20, 1
        slti $r7, $r20, %d
        bne  $r7, $r0, iloop
        ; swap roles: copy B back into A (stream copy)
        la   $r8, b
        la   $r9, a
        li   $r1, %d
copy:   lw   $r4, 0($r8)
        sw   $r4, 0($r9)
        addi $r8, $r8, 4
        addi $r9, $r9, 4
        addi $r1, $r1, -1
        bgtz $r1, copy
        addi $r30, $r30, -1
        bgtz $r30, pass
        ; checksum the diagonal and a row
        la   $r8, a
        li   $r20, 0
        li   $r16, 0
diag:   li   $r6, %d
        mul  $r7, $r20, $r6
        add  $r7, $r7, $r20
        slli $r7, $r7, 2
        la   $r9, a
        add  $r7, $r9, $r7
        lw   $r4, 0($r7)
        add  $r16, $r16, $r4
        addi $r20, $r20, 1
        slti $r7, $r20, %d
        bne  $r7, $r0, diag
        out  $r16
        halt
`, n*n*4, n*n*4, n*n, passes, n, n*4, n, n, n*n, n, n)

	// Reference.
	a := make([]uint32, n*n)
	u := uint32(555)
	for i := range a {
		u = lcg(u)
		a[i] = u >> 12
	}
	b := make([]uint32, n*n)
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[j*n+i] = a[i*n+j]
			}
		}
		copy(a, b)
	}
	var sum uint32
	for i := 0; i < n; i++ {
		sum += a[i*n+i]
	}

	return &Workload{
		Name:        "CornerTurn",
		Suite:       "Stressmark",
		Description: "repeated matrix transposes: streaming reads against strided writes",
		Source:      src,
		Expected:    []string{itoa(sum)},
		MaxInsts:    uint64(n*n*10) + uint64(passes)*uint64(n*n*20) + 10000,
	}
}
