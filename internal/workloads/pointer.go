package workloads

// Pointer is the DIS Pointer Stressmark kernel. Following the
// stressmark's structure, each iteration mixes the two access kinds
// the benchmark was designed around: a serial hop through a jump table
// (index = table[index]) and a window probe at a pseudo-randomly
// computed field position. The window positions are arithmetically
// predictable, so the Cache Miss Access Slice runs ahead of them; the
// chained hop is inherently serial and bounds every configuration
// alike.
func Pointer(s Scale) *Workload {
	tableWords, fieldWords, hops := 4096, 65536, 20000
	if s == ScaleTest {
		tableWords, fieldWords, hops = 512, 2048, 800
	}
	src := fmtSrc(`
        .data
table:  .space %d             ; jump table: permutation indices
field:  .space %d             ; probe field (zero filled)
        .text
main:   la   $r2, table      ; table[i] = (5i+13) mod n
        li   $r1, %d
        li   $r8, 0
build:  slli $r6, $r8, 2
        add  $r6, $r6, $r8
        addi $r6, $r6, 13
        andi $r3, $r6, %d
        sw   $r3, 0($r2)
        addi $r8, $r8, 1
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, build
        ; chase + probe loop
        li   $r8, 0           ; chase index
        li   $r5, 97531       ; probe LCG
        li   $r16, 0          ; checksum
        li   $r1, %d
loop:   la   $r2, table
        slli $r4, $r8, 2
        add  $r4, $r2, $r4
        lw   $r8, 0($r4)      ; serial hop: idx = table[idx]
        li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r7, $r5, 8
        andi $r7, $r7, %d     ; window position
        slli $r7, $r7, 2
        la   $r9, field
        add  $r9, $r9, $r7
        lw   $r10, 0($r9)     ; window probe (CMAS-predictable)
        lw   $r11, 128($r9)   ; second probe, next lines
        add  $r12, $r10, $r11
        add  $r12, $r12, $r8
        add  $r16, $r16, $r12
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r16
        halt
`, tableWords*4, fieldWords*4, tableWords, tableWords-1, hops, fieldWords-1)

	// Reference.
	table := make([]uint32, tableWords)
	for i := range table {
		table[i] = uint32((5*i + 13) & (tableWords - 1))
	}
	var idx, sum uint32
	u := uint32(97531)
	for k := 0; k < hops; k++ {
		idx = table[idx]
		u = lcg(u)
		// The probes read the zero-initialised field; their value is 0
		// but the accesses (and misses) are real.
		sum += 0 + 0 + idx
	}

	return &Workload{
		Name:        "Pointer",
		Suite:       "Stressmark",
		Description: "serial jump-table hops mixed with pseudo-random window probes",
		Source:      src,
		Expected:    []string{itoa(sum)},
		MaxInsts:    uint64(tableWords*12+hops*22) + 1000,
	}
}

// Update is the DIS Update Stressmark kernel: read-modify-write at
// pseudo-random positions of a table that overwhelms the L1 and
// competes for the L2. The update indices come from a linear
// congruential sequence, so the Cache Miss Access Slice races
// arbitrarily far ahead of the Access Processor — this is the paper's
// best case (+18.5%).
func Update(s Scale) *Workload {
	tableWords, updates := 32768, 24000 // 128 KiB table: random accesses thrash the L1
	if s == ScaleTest {
		tableWords, updates = 2048, 900
	}
	src := fmtSrc(`
        .data
table:  .space %d
        .text
main:   li   $r5, 424242      ; index LCG
        li   $r16, 0          ; checksum of loaded values
        li   $r1, %d
loop:   li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r7, $r5, 8
        andi $r7, $r7, %d
        slli $r7, $r7, 2
        la   $r9, table
        add  $r9, $r9, $r7
        lw   $r10, 0($r9)     ; load
        add  $r16, $r16, $r10
        xor  $r11, $r10, $r5  ; modify (computation stream)
        addi $r11, $r11, 5
        sw   $r11, 0($r9)     ; write back
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r16
        halt
`, tableWords*4, updates, tableWords-1)

	// Reference.
	table := make([]uint32, tableWords)
	var sum uint32
	u := uint32(424242)
	for k := 0; k < updates; k++ {
		u = lcg(u)
		idx := (u >> 8) & uint32(tableWords-1)
		v := table[idx]
		sum += v
		table[idx] = (v ^ u) + 5
	}

	return &Workload{
		Name:        "Update",
		Suite:       "Stressmark",
		Description: "read-modify-write at pseudo-random table positions (LCG indices)",
		Source:      src,
		Expected:    []string{itoa(sum)},
		MaxInsts:    uint64(updates*20) + 1000,
	}
}
