// Package workloads implements the paper's benchmark programs: the two
// Data-Intensive Systems benchmarks the evaluation reports (Data
// Management and Ray Tracing) and the five DIS Stressmarks (Pointer,
// Update, Field, Neighborhood, Transitive Closure).
//
// The AAEC suites are kernel extractions of data-intensive programs;
// each workload here is the corresponding kernel written in the
// toolchain's assembly (the paper compiles C with gcc to PISA — see
// DESIGN.md for the substitution), with a deterministic synthetic
// input generated in-program from a fixed linear congruential
// generator. Every workload carries a pure-Go reference implementation
// producing the exact OUT lines the kernel must print, which the test
// suite checks against the functional simulator and every machine
// configuration.
package workloads

import (
	"fmt"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
)

// Workload is one benchmark instance.
type Workload struct {
	// Name as it appears in the paper's figures (DM, RayTray, Pointer,
	// Update, Field, NB, TC).
	Name string
	// Suite is "DIS" or "Stressmark".
	Suite string
	// Description of the kernel behaviour.
	Description string
	// Source is the assembly program.
	Source string
	// Expected holds the OUT lines the program must produce.
	Expected []string
	// MaxInsts bounds functional execution (runaway guard).
	MaxInsts uint64
}

// Program assembles the workload.
func (w *Workload) Program() (*isa.Program, error) {
	return asm.Assemble(w.Name, w.Source)
}

// Scale selects workload sizing.
type Scale int

// Available scales.
const (
	// ScaleTest keeps runs small enough for unit tests.
	ScaleTest Scale = iota
	// ScalePaper sizes working sets past the L1 (and partly the L2)
	// like the paper's runs.
	ScalePaper
)

// All returns the seven benchmarks of Figure 8 in presentation order.
func All(s Scale) []*Workload {
	return []*Workload{
		DataManagement(s),
		RayTrace(s),
		Pointer(s),
		Update(s),
		Field(s),
		Neighborhood(s),
		TransitiveClosure(s),
	}
}

// Extra returns the stressmarks that complete the seven-member DIS
// suite but do not appear in the paper's figures (which plot five
// stressmarks plus two DIS benchmark kernels).
func Extra(s Scale) []*Workload {
	return []*Workload{Matrix(s), CornerTurn(s)}
}

// ByName returns the named workload (figure set or extras) at the
// given scale.
func ByName(name string, s Scale) (*Workload, error) {
	for _, w := range append(All(s), Extra(s)...) {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists the benchmark names in figure order.
func Names() []string {
	return []string{"DM", "RayTray", "Pointer", "Update", "Field", "NB", "TC"}
}

// lcg steps the shared linear congruential generator used by the
// kernels' input synthesis.
func lcg(u uint32) uint32 { return u*1103515245 + 12345 }

func itoa(v uint32) string { return fmt.Sprintf("%d", int32(v)) }

// fmtSrc formats an assembly template.
func fmtSrc(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func ftoa(v float64) string { return fmt.Sprintf("%g", v) }
