package workloads

// TransitiveClosure is the DIS Transitive Closure Stressmark kernel:
// Floyd-Warshall all-pairs shortest paths over a dense synthesised
// adjacency matrix larger than the L1 data cache. The inner loop
// streams two matrix rows with a data-dependent update branch; the
// paper reports the largest cache-miss reduction (-26.7%) here.
func TransitiveClosure(s Scale) *Workload {
	v := 96
	if s == ScaleTest {
		v = 20
	}
	const inf = 1 << 20
	src := fmtSrc(`
        .data
dist:   .space %d             ; v*v words
        .text
main:   la   $r2, dist        ; synthesise edge weights
        li   $r8, 0           ; flat index
        li   $r1, %d
        li   $r5, 4242
fill:   li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 1023
        slti $r7, $r4, 160    ; ~16%% of pairs get a direct edge
        beq  $r7, $r0, noedge
        andi $r4, $r4, 127
        addi $r4, $r4, 1      ; weight 1..128
        j    putw
noedge: li   $r4, %d          ; "infinite" distance
putw:   sw   $r4, 0($r2)
        addi $r2, $r2, 4
        addi $r8, $r8, 1
        addi $r1, $r1, -1
        bgtz $r1, fill
        ; dist[i][i] = 0
        la   $r2, dist
        li   $r1, %d
        li   $r8, 0
diag:   sw   $r0, 0($r2)
        addi $r2, $r2, %d     ; (v+1)*4
        addi $r1, $r1, -1
        bgtz $r1, diag
        ; Floyd-Warshall
        li   $r20, 0          ; k
kloop:  li   $r21, 0          ; i
iloop:  li   $r6, %d
        mul  $r7, $r21, $r6
        slli $r7, $r7, 2
        la   $r8, dist
        add  $r8, $r8, $r7    ; &dist[i][0]
        mul  $r7, $r20, $r6
        slli $r7, $r7, 2
        la   $r9, dist
        add  $r9, $r9, $r7    ; &dist[k][0]
        slli $r7, $r20, 2
        add  $r7, $r8, $r7
        lw   $r10, 0($r7)     ; dik = dist[i][k]
        li   $r22, 0          ; j
jloop:  lw   $r11, 0($r9)     ; dist[k][j]
        lw   $r12, 0($r8)     ; dist[i][j]
        add  $r13, $r10, $r11
        slt  $r14, $r13, $r12
        beq  $r14, $r0, nostore
        sw   $r13, 0($r8)
nostore: addi $r8, $r8, 4
        addi $r9, $r9, 4
        addi $r22, $r22, 1
        slti $r14, $r22, %d
        bne  $r14, $r0, jloop
        addi $r21, $r21, 1
        slti $r14, $r21, %d
        bne  $r14, $r0, iloop
        addi $r20, $r20, 1
        slti $r14, $r20, %d
        bne  $r14, $r0, kloop
        ; checksum the reachable distances
        la   $r2, dist
        li   $r1, %d
        li   $r6, 0
        li   $r7, 0
        li   $r15, %d
chk:    lw   $r4, 0($r2)
        slt  $r14, $r4, $r15
        beq  $r14, $r0, skipc
        add  $r6, $r6, $r4    ; sum of finite distances
        addi $r7, $r7, 1      ; reachable pairs
skipc:  addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, chk
        out  $r6
        out  $r7
        halt
`, v*v*4, v*v, inf, v, (v+1)*4, v, v, v, v, v*v, inf)

	// Reference.
	d := make([]int32, v*v)
	u := uint32(4242)
	for i := range d {
		u = lcg(u)
		r := (u >> 16) & 1023
		if r < 160 {
			d[i] = int32(r&127) + 1
		} else {
			d[i] = inf
		}
	}
	for i := 0; i < v; i++ {
		d[i*v+i] = 0
	}
	for k := 0; k < v; k++ {
		for i := 0; i < v; i++ {
			dik := d[i*v+k]
			for j := 0; j < v; j++ {
				if t := dik + d[k*v+j]; t < d[i*v+j] {
					d[i*v+j] = t
				}
			}
		}
	}
	var sum, reach uint32
	for _, x := range d {
		if x < inf {
			sum += uint32(x)
			reach++
		}
	}

	return &Workload{
		Name:        "TC",
		Suite:       "Stressmark",
		Description: "Floyd-Warshall transitive closure over a dense random graph",
		Source:      src,
		Expected:    []string{itoa(sum), itoa(reach)},
		MaxInsts:    uint64(v*v*14+v*v*v*12+v*v*8) + 10000,
	}
}
