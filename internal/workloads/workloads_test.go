package workloads

import (
	"testing"

	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
)

func TestRegistry(t *testing.T) {
	all := All(ScaleTest)
	names := Names()
	if len(all) != 7 || len(names) != 7 {
		t.Fatalf("expected 7 workloads, got %d/%d", len(all), len(names))
	}
	for i, w := range all {
		if w.Name != names[i] {
			t.Errorf("workload %d: name %q, want %q", i, w.Name, names[i])
		}
		if w.Description == "" || w.Suite == "" {
			t.Errorf("%s: missing metadata", w.Name)
		}
		got, err := ByName(w.Name, ScaleTest)
		if err != nil || got.Name != w.Name {
			t.Errorf("ByName(%q): %v", w.Name, err)
		}
	}
	if _, err := ByName("nonsense", ScaleTest); err == nil {
		t.Error("ByName accepted unknown name")
	}
}

// TestReferenceOutputs is the semantic gate for every kernel: the
// functional simulation must print exactly what the Go reference
// implementation computes.
func TestReferenceOutputs(t *testing.T) {
	for _, scale := range []Scale{ScaleTest, ScalePaper} {
		for _, w := range All(scale) {
			w, scale := w, scale
			t.Run(w.Name, func(t *testing.T) {
				if scale == ScalePaper && testing.Short() {
					t.Skip("paper scale skipped in -short")
				}
				p, err := w.Program()
				if err != nil {
					t.Fatalf("assemble: %v", err)
				}
				res, err := fnsim.RunProgram(p, w.MaxInsts)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				if len(res.Output) != len(w.Expected) {
					t.Fatalf("output %v, want %v", res.Output, w.Expected)
				}
				for i := range w.Expected {
					if res.Output[i] != w.Expected[i] {
						t.Errorf("output[%d] = %q, want %q", i, res.Output[i], w.Expected[i])
					}
				}
			})
		}
	}
}

// TestWorkloadsAcrossArchitectures compiles each test-scale workload
// with a profile and checks result equivalence on all four machines.
func TestWorkloadsAcrossArchitectures(t *testing.T) {
	for _, w := range All(ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := mustProgram(t, w)
			prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), w.MaxInsts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := slicer.Separate(p, slicer.Options{Profile: prof, MinMisses: 16})
			if err != nil {
				t.Fatal(err)
			}
			for _, arch := range machine.Arches {
				res, err := machine.RunArch(b, arch, mem.DefaultHierConfig())
				if err != nil {
					t.Fatalf("%s: %v", arch, err)
				}
				if len(res.Output) != len(w.Expected) {
					t.Fatalf("%s: output %v, want %v", arch, res.Output, w.Expected)
				}
				for i := range w.Expected {
					if res.Output[i] != w.Expected[i] {
						t.Errorf("%s: output[%d] = %q, want %q", arch, i, res.Output[i], w.Expected[i])
					}
				}
			}
		})
	}
}

// TestCosimEquivalence checks the functional co-simulation of the
// separated streams for every workload (queue pairing invariant).
func TestCosimEquivalence(t *testing.T) {
	for _, w := range All(ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := mustProgram(t, w)
			b, err := slicer.Separate(p, slicer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := slicer.Cosim(b, 20*w.MaxInsts)
			if err != nil {
				t.Fatalf("cosim: %v", err)
			}
			if len(res.Output) != len(w.Expected) {
				t.Fatalf("output %v, want %v", res.Output, w.Expected)
			}
			for i := range w.Expected {
				if res.Output[i] != w.Expected[i] {
					t.Errorf("output[%d] = %q, want %q", i, res.Output[i], w.Expected[i])
				}
			}
			if !res.Drained {
				t.Error("queues not drained")
			}
		})
	}
}

func TestPaperScaleWorkingSetsExceedL1(t *testing.T) {
	// The paper's premise: data-intensive kernels overwhelm the L1.
	l1 := mem.DefaultHierConfig().L1D.SizeBytes()
	for _, w := range All(ScalePaper) {
		p := mustProgram(t, w)
		if len(p.Data) < l1 {
			t.Errorf("%s: static data %d bytes < L1 %d", w.Name, len(p.Data), l1)
		}
	}
}

func TestScalesDiffer(t *testing.T) {
	for i, small := range All(ScaleTest) {
		big := All(ScalePaper)[i]
		if small.Source == big.Source {
			t.Errorf("%s: test and paper scales produce identical sources", small.Name)
		}
	}
}

func TestExtraStressmarksCompleteTheSuite(t *testing.T) {
	extra := Extra(ScaleTest)
	if len(extra) != 2 || extra[0].Name != "Matrix" || extra[1].Name != "CornerTurn" {
		t.Fatalf("extras: %v", extra)
	}
	// 5 figure stressmarks + 2 extras = the 7-member DIS Stressmark suite.
	stress := 0
	for _, w := range append(All(ScaleTest), extra...) {
		if w.Suite == "Stressmark" {
			stress++
		}
	}
	if stress != 7 {
		t.Errorf("stressmark count = %d, want 7", stress)
	}
}

func TestExtraReferenceOutputs(t *testing.T) {
	for _, scale := range []Scale{ScaleTest, ScalePaper} {
		for _, w := range Extra(scale) {
			w, scale := w, scale
			t.Run(w.Name, func(t *testing.T) {
				if scale == ScalePaper && testing.Short() {
					t.Skip("paper scale skipped in -short")
				}
				p := mustProgram(t, w)
				res, err := fnsim.RunProgram(p, w.MaxInsts)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Output) != len(w.Expected) || res.Output[0] != w.Expected[0] {
					t.Errorf("output %v, want %v", res.Output, w.Expected)
				}
			})
		}
	}
}

func TestExtraAcrossArchitectures(t *testing.T) {
	for _, w := range Extra(ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := mustProgram(t, w)
			prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), w.MaxInsts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := slicer.Separate(p, slicer.Options{Profile: prof, MinMisses: 16})
			if err != nil {
				t.Fatal(err)
			}
			for _, arch := range machine.Arches {
				res, err := machine.RunArch(b, arch, mem.DefaultHierConfig())
				if err != nil {
					t.Fatalf("%s: %v", arch, err)
				}
				if res.Output[0] != w.Expected[0] {
					t.Errorf("%s: output %v, want %v", arch, res.Output, w.Expected)
				}
			}
		})
	}
}

// mustProgram assembles a workload, failing the test on error.
func mustProgram(tb testing.TB, w *Workload) *isa.Program {
	tb.Helper()
	p, err := w.Program()
	if err != nil {
		tb.Fatalf("assemble %s: %v", w.Name, err)
	}
	return p
}
