package workloads

// RayTrace is the kernel of the DIS Ray Tracing benchmark: rays from
// the origin are intersected against every sphere in a scene,
// accumulating the hit count and the nearest-hit metric per ray. The
// per-sphere test is a floating point quadratic discriminant; the
// sphere array is streamed for every ray, mixing regular memory
// traffic with data-dependent branches on computed FP values.
func RayTrace(s Scale) *Workload {
	spheres, rays := 2048, 24
	if s == ScaleTest {
		spheres, rays = 96, 6
	}
	src := fmtSrc(`
        .data
scene:  .space %d             ; spheres: {cx, cy, cz, r} doubles
        .text
main:   la   $r2, scene       ; synthesise the scene
        li   $r1, %d
        li   $r5, 31337
sloop:  li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 255
        addi $r4, $r4, -128
        cvt.d.w $f1, $r4      ; cx in [-128,127]
        s.d  $f1, 0($r2)
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 255
        addi $r4, $r4, -128
        cvt.d.w $f1, $r4      ; cy
        s.d  $f1, 8($r2)
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 255
        addi $r4, $r4, 64
        cvt.d.w $f1, $r4      ; cz in [64,319] (in front of the camera)
        s.d  $f1, 16($r2)
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 31
        addi $r4, $r4, 8
        cvt.d.w $f1, $r4      ; radius in [8,39]
        s.d  $f1, 24($r2)
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, sloop
        ; trace
        li   $r20, %d         ; rays remaining
        li   $r5, 24680       ; direction LCG
        li   $r16, 0          ; total hits
        sub.d $f20, $f20, $f20 ; nearest-metric accumulator
ray:    li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 63
        addi $r4, $r4, -32
        cvt.d.w $f1, $r4      ; dx in [-32,31]
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 16
        andi $r4, $r4, 63
        addi $r4, $r4, -32
        cvt.d.w $f2, $r4      ; dy
        li   $r4, 64
        cvt.d.w $f3, $r4      ; dz = 64 (forward)
        ; a = d . d
        mul.d $f4, $f1, $f1
        mul.d $f5, $f2, $f2
        add.d $f4, $f4, $f5
        mul.d $f5, $f3, $f3
        add.d $f4, $f4, $f5   ; a
        li   $r21, 0x7FFF
        cvt.d.w $f21, $r21    ; nearest = large
        la   $r2, scene
        li   $r1, %d
sphere: l.d  $f6, 0($r2)      ; cx
        l.d  $f7, 8($r2)      ; cy
        l.d  $f8, 16($r2)     ; cz
        l.d  $f9, 24($r2)     ; r
        ; b = d . c ; c2 = c . c - r^2
        mul.d $f10, $f1, $f6
        mul.d $f11, $f2, $f7
        add.d $f10, $f10, $f11
        mul.d $f11, $f3, $f8
        add.d $f10, $f10, $f11 ; b
        mul.d $f11, $f6, $f6
        mul.d $f12, $f7, $f7
        add.d $f11, $f11, $f12
        mul.d $f12, $f8, $f8
        add.d $f11, $f11, $f12
        mul.d $f12, $f9, $f9
        sub.d $f11, $f11, $f12 ; c2
        ; disc = b*b - a*c2
        mul.d $f12, $f10, $f10
        mul.d $f13, $f4, $f11
        sub.d $f12, $f12, $f13
        sub.d $f14, $f14, $f14 ; zero
        c.lt.d $r7, $f14, $f12 ; disc > 0 ?
        beq  $r7, $r0, nohit
        c.lt.d $r7, $f14, $f10 ; and in front: b > 0
        beq  $r7, $r0, nohit
        addi $r16, $r16, 1
        div.d $f15, $f11, $f10 ; metric ~ c2/b (monotone in distance)
        c.lt.d $r7, $f15, $f21
        beq  $r7, $r0, nohit
        mov.d $f21, $f15       ; new nearest
nohit:  addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, sphere
        add.d $f20, $f20, $f21
        addi $r20, $r20, -1
        bgtz $r20, ray
        out  $r16
        out.d $f20
        halt
`, spheres*32, spheres, rays, spheres)

	// Reference.
	type sph struct{ cx, cy, cz, r float64 }
	scene := make([]sph, spheres)
	u := uint32(31337)
	draw := func(mask uint32, off int32) float64 {
		u = lcg(u)
		return float64(int32((u>>16)&mask) + off)
	}
	for i := range scene {
		scene[i].cx = draw(255, -128)
		scene[i].cy = draw(255, -128)
		scene[i].cz = draw(255, 64)
		scene[i].r = draw(31, 8)
	}
	var hits uint32
	var acc float64
	q := uint32(24680)
	drawDir := func() float64 {
		q = lcg(q)
		return float64(int32((q>>16)&63) - 32)
	}
	for n := 0; n < rays; n++ {
		dx, dy, dz := drawDir(), drawDir(), 64.0
		a := (dx*dx + dy*dy) + dz*dz
		nearest := float64(0x7FFF)
		for _, sp := range scene {
			b := (dx*sp.cx + dy*sp.cy) + dz*sp.cz
			c2 := (sp.cx*sp.cx + sp.cy*sp.cy) + sp.cz*sp.cz - sp.r*sp.r
			disc := b*b - a*c2
			if disc > 0 && b > 0 {
				hits++
				if m := c2 / b; m < nearest {
					nearest = m
				}
			}
		}
		acc += nearest
	}

	return &Workload{
		Name:        "RayTray",
		Suite:       "DIS",
		Description: "ray/sphere intersection sweep with FP discriminant tests",
		Source:      src,
		Expected:    []string{itoa(hits), ftoa(acc)},
		MaxInsts:    uint64(spheres*40+rays*(40+spheres*40)) + 10000,
	}
}
