package workloads

// DataManagement is the kernel of the DIS Data Management benchmark: a
// hash-indexed record store. The build phase inserts records at bucket
// heads (chains of pointers); the query phase hashes synthetic keys
// and walks the matching chain comparing keys and accumulating values.
// Bucket heads and chain nodes are scattered, giving the irregular
// access pattern the benchmark was designed to stress.
func DataManagement(s Scale) *Workload {
	buckets, records, queries := 4096, 8192, 16000
	if s == ScaleTest {
		buckets, records, queries = 256, 512, 800
	}
	// Records are 16 bytes: key, value, next, pad.
	src := fmtSrc(`
        .data
bucket: .space %d             ; bucket head pointers
recs:   .space %d             ; records: {key, value, next, pad}
        .text
main:   la   $r2, recs        ; insert records at bucket heads
        li   $r1, %d
        li   $r5, 98765       ; key LCG state
build:  li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 8
        andi $r4, $r4, 0xFFFF ; key
        sw   $r4, 0($r2)      ; rec.key
        xori $r7, $r4, 0x2A
        sw   $r7, 4($r2)      ; rec.value
        ; h = (key * 40503) mod buckets
        li   $r6, 40503
        mul  $r7, $r4, $r6
        andi $r7, $r7, %d
        slli $r7, $r7, 2
        la   $r8, bucket
        add  $r8, $r8, $r7    ; &bucket[h]
        lw   $r9, 0($r8)      ; old head
        sw   $r9, 8($r2)      ; rec.next = old head
        sw   $r2, 0($r8)      ; bucket[h] = rec
        addi $r2, $r2, 16
        addi $r1, $r1, -1
        bgtz $r1, build
        ; query phase
        li   $r5, 13579       ; query LCG state
        li   $r1, %d
        li   $r16, 0          ; hits
        li   $r17, 0          ; value accumulator
        li   $r18, 0          ; probes
query:  li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r4, $r5, 8
        andi $r4, $r4, 0xFFFF ; probe key
        li   $r6, 40503
        mul  $r7, $r4, $r6
        andi $r7, $r7, %d
        slli $r7, $r7, 2
        la   $r8, bucket
        add  $r8, $r8, $r7
        lw   $r9, 0($r8)      ; chain head
walk:   beq  $r9, $r0, miss
        lw   $r10, 0($r9)     ; rec.key
        addi $r18, $r18, 1
        bne  $r10, $r4, next
        lw   $r11, 4($r9)     ; rec.value
        add  $r17, $r17, $r11
        addi $r16, $r16, 1
next:   lw   $r9, 8($r9)      ; rec.next
        j    walk
miss:   addi $r1, $r1, -1
        bgtz $r1, query
        out  $r16
        out  $r17
        out  $r18
        halt
`, buckets*4, records*16, records, buckets-1, queries, buckets-1)

	// Reference.
	type rec struct {
		key, value uint32
		next       int // record index + 1; 0 = nil
	}
	heads := make([]int, buckets)
	rs := make([]rec, records)
	u := uint32(98765)
	for i := 0; i < records; i++ {
		u = lcg(u)
		key := (u >> 8) & 0xFFFF
		h := int((key * 40503) & uint32(buckets-1))
		rs[i] = rec{key: key, value: key ^ 0x2A, next: heads[h]}
		heads[h] = i + 1
	}
	var hits, acc, probes uint32
	q := uint32(13579)
	for n := 0; n < queries; n++ {
		q = lcg(q)
		key := (q >> 8) & 0xFFFF
		h := int((key * 40503) & uint32(buckets-1))
		for p := heads[h]; p != 0; p = rs[p-1].next {
			probes++
			if rs[p-1].key == key {
				acc += rs[p-1].value
				hits++
			}
		}
	}

	return &Workload{
		Name:        "DM",
		Suite:       "DIS",
		Description: "hash-indexed record store: chained inserts and key-probe queries",
		Source:      src,
		Expected:    []string{itoa(hits), itoa(acc), itoa(probes)},
		MaxInsts:    uint64(records*20+queries*14) + uint64(probes*8) + 10000,
	}
}
