package stats

import (
	"strings"
	"testing"

	"hidisc/internal/telemetry"
)

func TestSparklineScalesAndDownsamples(t *testing.T) {
	if got := sparkline([]float64{0, 1}); got != "▁█" {
		t.Errorf("two-point spark = %q, want low then high", got)
	}
	if got := sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat spark = %q, want all-low", got)
	}
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := sparkline(long); len([]rune(got)) != sparkWidth {
		t.Errorf("downsampled spark has %d cells, want %d", len([]rune(got)), sparkWidth)
	}
	if sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
}

func TestSparklinesTable(t *testing.T) {
	s := telemetry.NewSampler(100)
	s.SetLabel("conv/hidisc")
	s.Start([]string{"cp", "ap"}, []string{"ldq"})
	for _, cycle := range []int64{100, 200, 300} {
		r := s.Row()
		r.Cycle = cycle
		r.Cores[0].Committed = uint64(cycle)
		r.Cores[1].Committed = uint64(cycle) * 3
		r.Queues[0] = int(cycle / 100)
		r.L1DAccesses = uint64(cycle)
		r.L1DMisses = uint64(cycle) / 5
		s.Record()
	}
	out := Sparklines(s.Timeline())
	for _, want := range []string{"3 intervals of 100 cycles", "conv/hidisc", "cp ipc", "ap ipc", "ldq occ", "l1d miss", "mshr"} {
		if !strings.Contains(out, want) {
			t.Errorf("sparkline table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "max 3.000") {
		t.Errorf("ap ipc max should be 3.000:\n%s", out)
	}
	// Empty timeline degrades gracefully.
	if got := Sparklines(telemetry.NewSampler(10).Timeline()); !strings.Contains(got, "no samples") {
		t.Errorf("empty timeline: %q", got)
	}
	if got := Sparklines(nil); !strings.Contains(got, "no samples") {
		t.Errorf("nil timeline: %q", got)
	}
}
