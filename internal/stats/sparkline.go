package stats

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"hidisc/internal/telemetry"
)

// sparkRunes are the eight block-element levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkWidth caps a sparkline at a terminal-friendly width; longer
// timelines are downsampled by averaging fixed-size buckets.
const sparkWidth = 60

// sparkline renders a series as block elements scaled to its own
// [min, max] range. A flat series renders at the lowest level.
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	vs = downsample(vs, sparkWidth)
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range vs {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// downsample averages the series into at most width buckets.
func downsample(vs []float64, width int) []float64 {
	if len(vs) <= width {
		return vs
	}
	out := make([]float64, width)
	for i := range out {
		a, b := i*len(vs)/width, (i+1)*len(vs)/width
		var sum float64
		for _, v := range vs[a:b] {
			sum += v
		}
		out[i] = sum / float64(b-a)
	}
	return out
}

func seriesStats(vs []float64) (lo, hi, last float64) {
	if len(vs) == 0 {
		return 0, 0, 0
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return lo, hi, vs[len(vs)-1]
}

func ints(vs []int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

func uints(vs []uint64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

// Sparklines renders a recorded timeline as a compact per-series table:
// one sparkline per core IPC / LOD fraction / memory-wait fraction,
// per-queue occupancy, cache miss rates and MSHR occupancy, each with
// its min/max/last values. Intended for a quick terminal read after a
// run; the NDJSON/CSV export carries the full-resolution data.
func Sparklines(tl *telemetry.Timeline) string {
	if tl == nil || tl.Rows() == 0 {
		return "timeline: no samples recorded\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %d intervals of %d cycles", tl.Rows(), tl.Interval)
	if tl.Label != "" {
		fmt.Fprintf(&sb, " (%s)", tl.Label)
	}
	sb.WriteString("\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	row := func(name string, vs []float64) {
		lo, hi, last := seriesStats(vs)
		fmt.Fprintf(w, "  %s\t%s\tmin %.3f\tmax %.3f\tlast %.3f\n", name, sparkline(vs), lo, hi, last)
	}
	for i, core := range tl.Cores {
		row(core+" ipc", tl.CoreIPC[i])
		row(core+" lod", tl.CoreLOD[i])
		row(core+" memwait", tl.CoreMemWait[i])
	}
	for i, q := range tl.Queues {
		row(q+" occ", ints(tl.QueueOcc[i]))
	}
	row("l1d miss", tl.L1DMissRate)
	row("l2 miss", tl.L2MissRate)
	row("mshr", ints(tl.MSHROcc))
	row("prefetch", uints(tl.PrefetchIssued))
	w.Flush()
	return sb.String()
}
