package stats

import (
	"strings"
	"testing"
	"time"
)

func TestThroughputRates(t *testing.T) {
	tp := Throughput{SimCycles: 2_000_000, SimInsts: 1_000_000, Wall: 2 * time.Second}
	if got := tp.CyclesPerSec(); got != 1e6 {
		t.Errorf("CyclesPerSec = %v, want 1e6", got)
	}
	if got := tp.MIPS(); got != 0.5 {
		t.Errorf("MIPS = %v, want 0.5", got)
	}
	if got := tp.KIPS(); got != 500 {
		t.Errorf("KIPS = %v, want 500", got)
	}
}

func TestThroughputZeroWall(t *testing.T) {
	tp := Throughput{SimCycles: 100, SimInsts: 100}
	if tp.CyclesPerSec() != 0 || tp.MIPS() != 0 {
		t.Error("zero wall time must report zero rates, not Inf")
	}
}

func TestThroughputString(t *testing.T) {
	tp := Throughput{SimCycles: 4_000_000, SimInsts: 2_000_000, Wall: 2 * time.Second}
	s := tp.String()
	for _, want := range []string{"2.00 Mcycles/s", "1.00 simulated MIPS", "4000000 cycles", "2000000 insts", "2s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
