// Package stats renders full simulation reports in the spirit of
// sim-outorder's statistics dump: raw counters plus the derived rates
// the paper's analysis uses (IPC, miss rates, prefetch coverage, queue
// occupancies, and the loss-of-decoupling attribution of Section 5.3).
package stats

import (
	"bytes"
	"fmt"
	"sort"
	"text/tabwriter"

	"hidisc/internal/machine"
)

// Report couples a simulation result with the dynamic instruction
// count of the sequential reference, which normalises IPC across
// architectures (committed counts differ between configurations
// because of inserted communication instructions).
type Report struct {
	Result   machine.Result
	SeqInsts uint64
}

// IPC returns reference instructions per cycle.
func (r Report) IPC() float64 {
	if r.Result.Cycles == 0 {
		return 0
	}
	return float64(r.SeqInsts) / float64(r.Result.Cycles)
}

// Overhead returns the instruction-count overhead of the configuration:
// committed instructions (all cores) relative to the sequential count.
// Decoupled machines execute extra communication pops and mirrors.
func (r Report) Overhead() float64 {
	if r.SeqInsts == 0 {
		return 0
	}
	return float64(r.Result.Committed())/float64(r.SeqInsts) - 1
}

// PrefetchCoverage returns useful prefetch fills per prefetch issued.
func (r Report) PrefetchCoverage() float64 {
	if r.Result.Hier.PrefetchIssued == 0 {
		return 0
	}
	return float64(r.Result.Hier.L1D.UsefulPrefetch) / float64(r.Result.Hier.PrefetchIssued)
}

// LOD summarises loss-of-decoupling pressure: the fraction of cycles
// the named core's oldest instruction was waiting on an architectural
// queue. The paper attributes Neighborhood's slowdown to exactly this.
func (r Report) LOD(core string) float64 {
	s, ok := r.Result.Cores[core]
	if !ok || s.Cycles == 0 {
		return 0
	}
	return float64(s.QueueWaitCycles) / float64(s.Cycles)
}

// String renders the full report.
func (r Report) String() string {
	var b bytes.Buffer
	res := r.Result
	fmt.Fprintf(&b, "=== simulation report: %s ===\n", res.Arch)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	row := func(k string, format string, args ...any) {
		fmt.Fprintf(tw, "%s\t%s\n", k, fmt.Sprintf(format, args...))
	}
	row("cycles", "%d", res.Cycles)
	row("reference insts", "%d", r.SeqInsts)
	row("IPC", "%.4f", r.IPC())
	row("inst overhead", "%+.1f%%", r.Overhead()*100)

	names := make([]string, 0, len(res.Cores))
	for name := range res.Cores {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := res.Cores[name]
		row("core "+name, "committed=%d loads=%d stores=%d branches=%d",
			s.Committed, s.CommittedLoads, s.CommittedStores, s.CommittedBranch)
		row("  speculation", "mispredicts=%d squashed=%d dispatch-redirects=%d",
			s.Mispredicts, s.Squashed, s.DispatchRedirects)
		row("  stalls", "queue-wait=%d mem-wait=%d fetch=%d dispatch=%d commit-queue=%d",
			s.QueueWaitCycles, s.MemWaitCycles, s.FetchStalls, s.DispatchStalls, s.CommitQueueStall)
		row("  LOD fraction", "%.3f", r.LOD(name))
	}

	l1 := res.Hier.L1D
	row("L1D", "accesses=%d misses=%d (%.2f%%) delayed-hits=%d writebacks=%d",
		l1.DemandAccesses, l1.DemandMisses, 100*l1.DemandMissRate(), l1.DelayedHits, l1.Writebacks)
	l2 := res.Hier.L2
	row("L2", "accesses=%d misses=%d (%.2f%%)",
		l2.DemandAccesses, l2.DemandMisses, 100*l2.DemandMissRate())
	if res.Hier.PrefetchIssued > 0 {
		row("prefetch", "issued=%d fills=%d useful=%d coverage=%.1f%%",
			res.Hier.PrefetchIssued, l1.PrefetchFills, l1.UsefulPrefetch, 100*r.PrefetchCoverage())
		c := res.CMP
		row("CMP", "forks=%d (ignored %d) executed=%d completed=%d killed=%d put-stalls=%d",
			c.Forks, c.ForksIgnored, c.Executed, c.Completed, c.Killed, c.PutStalls)
		if c.DistanceGrows+c.DistanceShrinks > 0 {
			row("  dyn distance", "grows=%d shrinks=%d", c.DistanceGrows, c.DistanceShrinks)
		}
	}
	if res.LDQ.Pushes+res.SDQ.Pushes+res.CQ.Pushes > 0 {
		row("LDQ", "pushes=%d max-occupancy=%d", res.LDQ.Pushes, res.LDQ.MaxOccupancy)
		row("SDQ", "pushes=%d max-occupancy=%d", res.SDQ.Pushes, res.SDQ.MaxOccupancy)
		row("CQ", "pushes=%d max-occupancy=%d", res.CQ.Pushes, res.CQ.MaxOccupancy)
	}
	tw.Flush()
	return b.String()
}

// Compare renders a side-by-side summary of several reports (one per
// architecture) for the same workload.
func Compare(reports []Report) string {
	var b bytes.Buffer
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "arch\tcycles\tIPC\toverhead\tL1D-miss%%\tprefetch-cov%%\tLOD(cp)\t\n")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%+.1f%%\t%.2f\t%.1f\t%.3f\t\n",
			r.Result.Arch, r.Result.Cycles, r.IPC(), r.Overhead()*100,
			100*r.Result.Hier.L1D.DemandMissRate(), 100*r.PrefetchCoverage(), r.LOD("cp"))
	}
	tw.Flush()
	return b.String()
}
