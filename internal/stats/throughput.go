package stats

import (
	"fmt"
	"time"
)

// Throughput reports simulator speed: simulated work per second of
// wall-clock time. This is the number the performance work optimises —
// the figures themselves are invariant, only how fast they regenerate.
type Throughput struct {
	SimCycles int64         // simulated machine cycles executed
	SimInsts  int64         // instructions committed across all cores
	Wall      time.Duration // wall-clock time spent simulating
}

// CyclesPerSec returns simulated cycles per wall-clock second.
func (t Throughput) CyclesPerSec() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.SimCycles) / t.Wall.Seconds()
}

// KIPS returns thousands of simulated instructions committed per
// wall-clock second (the classic simulator-speed unit).
func (t Throughput) KIPS() float64 {
	if t.Wall <= 0 {
		return 0
	}
	return float64(t.SimInsts) / t.Wall.Seconds() / 1e3
}

// MIPS returns millions of simulated instructions per second.
func (t Throughput) MIPS() float64 { return t.KIPS() / 1e3 }

// String renders the throughput compactly.
func (t Throughput) String() string {
	return fmt.Sprintf("%.2f Mcycles/s, %.2f simulated MIPS (%d cycles, %d insts in %v)",
		t.CyclesPerSec()/1e6, t.MIPS(), t.SimCycles, t.SimInsts, t.Wall.Round(time.Millisecond))
}
