package stats

import (
	"strings"
	"testing"
	"time"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
	"hidisc/internal/fnsim"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/slicer"
)

const kernel = `
        .data
buf:    .space 16384
        .text
main:   la   $r2, buf
        li   $r1, 2048
loop:   lw   $r3, 0($r2)
        add  $r4, $r4, $r3
        sw   $r4, 0($r2)
        addi $r2, $r2, 8
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r4
        halt
`

func reportFor(t *testing.T, arch machine.Arch) Report {
	t.Helper()
	p := mustAssemble(t, "k", kernel)
	ref, err := fnsim.RunProgram(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := slicer.Separate(p, slicer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.RunArch(b, arch, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Report{Result: res, SeqInsts: ref.Insts}
}

func TestDerivedMetrics(t *testing.T) {
	r := reportFor(t, machine.Superscalar)
	if ipc := r.IPC(); ipc <= 0 || ipc > 8 {
		t.Errorf("IPC = %v", ipc)
	}
	// The superscalar runs the sequential binary: no overhead.
	if ov := r.Overhead(); ov != 0 {
		t.Errorf("superscalar overhead = %v, want 0", ov)
	}
	d := reportFor(t, machine.CPAP)
	// The decoupled pair executes mirrors and pops: positive overhead.
	if ov := d.Overhead(); ov <= 0 {
		t.Errorf("decoupled overhead = %v, want > 0", ov)
	}
	if lod := d.LOD("cp"); lod < 0 || lod > 1 {
		t.Errorf("LOD = %v", lod)
	}
	if d.LOD("nonexistent") != 0 {
		t.Error("unknown core LOD should be 0")
	}
}

func TestReportRendering(t *testing.T) {
	r := reportFor(t, machine.CPAP)
	s := r.String()
	for _, want := range []string{
		"simulation report: cp+ap", "cycles", "IPC", "core ap", "core cp",
		"L1D", "L2", "LDQ", "LOD fraction",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCompareRendering(t *testing.T) {
	rs := []Report{reportFor(t, machine.Superscalar), reportFor(t, machine.CPAP)}
	s := Compare(rs)
	if !strings.Contains(s, "superscalar") || !strings.Contains(s, "cp+ap") {
		t.Errorf("compare table:\n%s", s)
	}
	if !strings.Contains(s, "arch") {
		t.Error("missing header")
	}
}

func TestZeroValueSafety(t *testing.T) {
	var r Report
	if r.IPC() != 0 || r.Overhead() != 0 || r.PrefetchCoverage() != 0 || r.LOD("cp") != 0 {
		t.Error("zero-value report produced nonzero metrics")
	}
	_ = r.String() // must not panic
}

func TestThroughput(t *testing.T) {
	tp := Throughput{SimCycles: 2_000_000, SimInsts: 1_000_000, Wall: 2 * time.Second}
	if got := tp.CyclesPerSec(); got != 1e6 {
		t.Errorf("CyclesPerSec = %v, want 1e6", got)
	}
	if got := tp.KIPS(); got != 500 {
		t.Errorf("KIPS = %v, want 500", got)
	}
	if got := tp.MIPS(); got != 0.5 {
		t.Errorf("MIPS = %v, want 0.5", got)
	}
	if (Throughput{SimCycles: 1, SimInsts: 1}).CyclesPerSec() != 0 {
		t.Error("zero wall must not divide by zero")
	}
	if s := tp.String(); s == "" {
		t.Error("empty String")
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}
