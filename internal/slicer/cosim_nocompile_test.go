package slicer

import (
	"reflect"
	"testing"

	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/workloads"
)

// TestCosimProfileCompileParity is the separated-stream leg of the
// compiled-simulation differential suite: the cache profile computed
// on the compiled fnsim fast path must equal the interpreter's
// profile exactly, and the bundles sliced from each must co-simulate
// to identical results (memory image, output, per-stream instruction
// counts, drain state). Paper scale is skipped in short mode.
func TestCosimProfileCompileParity(t *testing.T) {
	scales := []workloads.Scale{workloads.ScaleTest}
	if !testing.Short() {
		scales = append(scales, workloads.ScalePaper)
	}
	hier := mem.DefaultHierConfig()
	for _, sc := range scales {
		label := "test"
		if sc == workloads.ScalePaper {
			label = "paper"
		}
		t.Run(label, func(t *testing.T) {
			for _, name := range workloads.Names() {
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					w, err := workloads.ByName(name, sc)
					if err != nil {
						t.Fatal(err)
					}
					p, err := w.Program()
					if err != nil {
						t.Fatal(err)
					}
					pc, err := profile.CacheProfile(p, hier, w.MaxInsts)
					if err != nil {
						t.Fatalf("compiled profile: %v", err)
					}
					pi, err := profile.CacheProfileInterp(p, hier, w.MaxInsts)
					if err != nil {
						t.Fatalf("interp profile: %v", err)
					}
					if !reflect.DeepEqual(pc, pi) {
						t.Fatalf("cache profile diverges between compiled and interpreted paths:\ncompiled: %+v\ninterp:   %+v", pc, pi)
					}
					bc, err := Separate(p, Options{Profile: pc})
					if err != nil {
						t.Fatal(err)
					}
					bi, err := Separate(p, Options{Profile: pi})
					if err != nil {
						t.Fatal(err)
					}
					rc, err := Cosim(bc, 100_000_000)
					if err != nil {
						t.Fatalf("cosim (compiled profile): %v", err)
					}
					ri, err := Cosim(bi, 100_000_000)
					if err != nil {
						t.Fatalf("cosim (interp profile): %v", err)
					}
					if !reflect.DeepEqual(rc, ri) {
						t.Errorf("cosim result diverges:\ncompiled: %+v\ninterp:   %+v", rc, ri)
					}
				})
			}
		})
	}
}
