package slicer

import (
	"errors"
	"strings"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/simfault"
)

// convolutionSrc is the paper's running example (Figure 3): the inner
// loop of a discrete convolution, with array initialisation so the
// result is non-trivial.
const convolutionSrc = `
        .data
x:      .space 512            ; 64 doubles
h:      .space 512
y:      .space 8
        .text
main:   li   $r1, 64
        la   $r2, x
        la   $r3, h
        li   $r4, 0
init:   addi $r5, $r4, 1
        cvt.d.w $f1, $r5
        s.d  $f1, 0($r2)
        addi $r6, $r4, 3
        cvt.d.w $f2, $r6
        s.d  $f2, 0($r3)
        addi $r2, $r2, 8
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        bne  $r4, $r1, init
        la   $r2, x
        la   $r3, h
        li   $r4, 0
        sub.d $f10, $f10, $f10
loop:   l.d  $f1, 0($r2)
        l.d  $f2, 0($r3)
        mul.d $f3, $f1, $f2
        add.d $f10, $f10, $f3
        addi $r2, $r2, 8
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        bne  $r4, $r1, loop
        la   $r5, y
        s.d  $f10, 0($r5)
        out.d $f10
        halt
`

func separate(t *testing.T, src string, opts Options) *Bundle {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	b, err := Separate(p, opts)
	if err != nil {
		t.Fatalf("Separate: %v", err)
	}
	return b
}

// checkEquivalence separates src and asserts that the functional
// co-simulation of the streams matches sequential execution exactly.
func checkEquivalence(t *testing.T, name, src string) *Bundle {
	t.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	want, err := fnsim.RunProgram(p, 50_000_000)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	b, err := Separate(p, Options{})
	if err != nil {
		t.Fatalf("Separate: %v", err)
	}
	got, err := Cosim(b, 100_000_000)
	if err != nil {
		t.Fatalf("cosim: %v\n%s", err, b.Report())
	}
	if got.MemHash != want.MemHash {
		t.Errorf("%s: memory mismatch after separation", name)
	}
	if len(got.Output) != len(want.Output) {
		t.Fatalf("%s: output length %d vs %d (%v vs %v)", name, len(got.Output), len(want.Output), got.Output, want.Output)
	}
	for i := range want.Output {
		if got.Output[i] != want.Output[i] {
			t.Errorf("%s: output[%d] = %q, want %q", name, i, got.Output[i], want.Output[i])
		}
	}
	if !got.Drained {
		t.Errorf("%s: queues not drained at completion", name)
	}
	return b
}

func TestCSContainsNoMemoryOps(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	for i, in := range b.CS.Insts {
		if in.Op.IsMem() {
			t.Errorf("CS inst %d is a memory op: %v", i, in)
		}
	}
}

func TestASContainsAllMemoryAndControl(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	for i, in := range b.Seq.Insts {
		if in.Op.IsMem() || (in.Op.IsControl() && in.Op != isa.HALT) {
			if in.Ann.Stream() != isa.StreamAccess {
				t.Errorf("seq inst %d (%v) not in AS", i, in)
			}
		}
	}
}

func TestFPComputeStaysInCS(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	for i, in := range b.Seq.Insts {
		switch in.Op {
		case isa.FMUL, isa.FADD, isa.FSUB:
			if in.Ann.Stream() != isa.StreamCompute {
				t.Errorf("seq inst %d (%v) classified %v, want CS", i, in, in.Ann.Stream())
			}
		}
	}
}

func TestPurePushLoads(t *testing.T) {
	// The convolution's two l.d results are consumed only by the CS
	// multiply, so they become the paper's "l.d $LDQ" transport form.
	b := separate(t, convolutionSrc, Options{})
	pure := 0
	for _, in := range b.AS.Insts {
		if in.Op == isa.LFD && in.Dest() == isa.RegLDQ {
			pure++
		}
	}
	if pure != 2 {
		t.Errorf("pure-push loads = %d, want 2\n%s", pure, b.AS.Listing())
	}
}

func TestStoreDataFlowsThroughSDQ(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	// The cvt.d.w producers and the add.d accumulator feed stores, so
	// they carry the SDQ tap; the AS receives matching pops.
	taps := 0
	for _, in := range b.CS.Insts {
		if in.Ann.Has(isa.AnnTapSDQ) {
			taps++
		}
	}
	if taps < 3 {
		t.Errorf("SDQ taps = %d, want >= 3\n%s", taps, b.CS.Listing())
	}
	pops := 0
	for _, in := range b.AS.Insts {
		for _, s := range in.Sources() {
			if s == isa.RegSDQ {
				pops++
			}
		}
	}
	if pops != taps {
		t.Errorf("SDQ pops (%d) != taps (%d)", pops, taps)
	}
}

func TestBranchMirroring(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	var asBranches, csBCQ int
	for _, in := range b.AS.Insts {
		if in.Op.IsCondBranch() {
			asBranches++
			if !in.Ann.Has(isa.AnnPushCQ) {
				t.Errorf("AS branch without PushCQ: %v", in)
			}
		}
	}
	for _, in := range b.CS.Insts {
		if in.Op == isa.BCQ {
			csBCQ++
		}
	}
	if asBranches == 0 || asBranches != csBCQ {
		t.Errorf("AS branches %d, CS bcq %d", asBranches, csBCQ)
	}
}

func TestStreamEntryPoints(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	if b.CS.Entry != b.CSPos[0] || b.AS.Entry != b.ASPos[0] {
		t.Errorf("entries: CS %d, AS %d", b.CS.Entry, b.AS.Entry)
	}
}

func TestEquivalenceConvolution(t *testing.T) {
	b := checkEquivalence(t, "convolution", convolutionSrc)
	st := b.Stats()
	if st.Access == 0 || st.Compute == 0 {
		t.Errorf("degenerate separation: %+v", st)
	}
}

func TestEquivalenceBranchy(t *testing.T) {
	checkEquivalence(t, "branchy", `
        .data
buf:    .space 400
        .text
main:   li   $r1, 100
        li   $r2, 0          ; even sum
        li   $r3, 0          ; odd sum
        la   $r7, buf
loop:   andi $r4, $r1, 1
        beq  $r4, $r0, even
        add  $r3, $r3, $r1
        j    next
even:   add  $r2, $r2, $r1
next:   sw   $r3, 0($r7)
        addi $r7, $r7, 4
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        out  $r3
        halt
`)
}

func TestEquivalencePointerChase(t *testing.T) {
	checkEquivalence(t, "chase", `
        .data
nodes:  .space 800           ; 100 nodes of {next, value}
        .text
main:   la   $r2, nodes      ; build list: node i -> node i+1
        li   $r1, 99
        li   $r5, 5
build:  addi $r3, $r2, 8
        sw   $r3, 0($r2)
        sw   $r5, 4($r2)
        addi $r5, $r5, 3
        mov  $r2, $r3
        addi $r1, $r1, -1
        bgtz $r1, build
        sw   $r0, 0($r2)     ; terminate
        sw   $r5, 4($r2)
        ; chase and sum values
        la   $r2, nodes
        li   $r6, 0
chase:  lw   $r4, 4($r2)
        add  $r6, $r6, $r4
        lw   $r2, 0($r2)
        bne  $r2, $r0, chase
        out  $r6
        halt
`)
}

func TestEquivalenceCallReturn(t *testing.T) {
	checkEquivalence(t, "call", `
main:   li   $r4, 10
        jal  square
        out  $r2
        li   $r4, 7
        jal  square
        out  $r2
        halt
square: mul  $r2, $r4, $r4
        addi $r2, $r2, 1
        jr   $ra
`)
}

func TestEquivalenceNestedLoops(t *testing.T) {
	checkEquivalence(t, "nested", `
        .data
m:      .space 1024
        .text
main:   li   $r1, 16
        li   $r9, 0
outer:  li   $r2, 16
        la   $r3, m
inner:  lw   $r4, 0($r3)
        addi $r4, $r4, 1
        sw   $r4, 0($r3)
        addi $r3, $r3, 4
        addi $r2, $r2, -1
        bgtz $r2, inner
        addi $r9, $r9, 1
        addi $r1, $r1, -1
        bgtz $r1, outer
        out  $r9
        halt
`)
}

func TestEquivalenceComputedAddress(t *testing.T) {
	// Address depends on a computed (histogram-style) value: the whole
	// chain gets sliced into the AS.
	checkEquivalence(t, "hist", `
        .data
pix:    .space 256
hist:   .space 64
        .text
main:   la   $r2, pix
        li   $r1, 64
        li   $r5, 17
fill:   sw   $r5, 0($r2)
        mul  $r5, $r5, $r5
        addi $r5, $r5, 13
        andi $r5, $r5, 255
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, fill
        la   $r2, pix
        la   $r6, hist
        li   $r1, 64
scan:   lw   $r3, 0($r2)
        srli $r4, $r3, 4
        andi $r4, $r4, 15
        slli $r4, $r4, 2
        add  $r4, $r6, $r4
        lw   $r7, 0($r4)
        addi $r7, $r7, 1
        sw   $r7, 0($r4)
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, scan
        halt
`)
}

// --- CMAS construction ---

const chaseKernelSrc = `
        .data
nodes:  .space 131072        ; 4096 nodes of 32 bytes
        .text
main:   la   $r2, nodes      ; node i -> node (5i+13) mod n, payload
        li   $r1, 4096
        li   $r5, 1
        li   $r8, 0
build:  slli $r6, $r8, 2
        add  $r6, $r6, $r8   ; 5*i
        addi $r6, $r6, 13
        andi $r3, $r6, 4095  ; full-period affine successor
        slli $r4, $r3, 5
        la   $r7, nodes
        add  $r4, $r7, $r4
        sw   $r4, 0($r2)
        sw   $r5, 4($r2)
        addi $r5, $r5, 1
        addi $r8, $r8, 1
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, build
        ; chase
        la   $r2, nodes
        li   $r6, 0
        li   $r1, 8192
chase:  lw   $r4, 4($r2)
        add  $r6, $r6, $r4
        lw   $r2, 0($r2)
        addi $r1, $r1, -1
        bgtz $r1, chase
        out  $r6
        halt
`

func smallHier() mem.HierConfig {
	return mem.HierConfig{
		L1D:        mem.CacheConfig{Name: "dl1", Sets: 16, Ways: 2, BlockSize: 32, Latency: 1},
		L2:         mem.CacheConfig{Name: "ul2", Sets: 128, Ways: 4, BlockSize: 64, Latency: 12},
		MemLatency: 120,
	}
}

func separateWithProfile(t *testing.T, src string) *Bundle {
	t.Helper()
	p, err := asm.Assemble("k", src)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.CacheProfile(p, smallHier(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Separate(p, Options{Profile: prof, MinMissRatio: 0.2, MinMisses: 64})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCMASConstruction(t *testing.T) {
	b := separateWithProfile(t, chaseKernelSrc)
	if len(b.CMAS) == 0 {
		t.Fatalf("no CMAS built\n%s", b.Report())
	}
	var hasChaseLoad, hasPutSCQ, hasHalt, hasStore bool
	for _, c := range b.CMAS {
		for _, in := range c.Insts {
			switch {
			case in.Op == isa.LW && in.Imm == 0:
				hasChaseLoad = true // pointer load: value needed, stays a load
			case in.Op == isa.PUTSCQ:
				hasPutSCQ = true
			case in.Op == isa.HALT:
				hasHalt = true
			case in.Op.IsStore():
				hasStore = true
			}
		}
	}
	if !hasChaseLoad {
		t.Errorf("CMAS missing pointer-chase load:\n%s", b.Report())
	}
	if !hasPutSCQ {
		t.Error("CMAS missing PUTSCQ credit")
	}
	if !hasHalt {
		t.Error("CMAS missing terminating HALT")
	}
	if hasStore {
		t.Error("CMAS contains a store (must be side-effect free)")
	}
	// The payload load (lw $r4, 4($r2)) feeds only the CS sum; in the
	// CMAS its value is unused, so it becomes a PREF... unless it was
	// not delinquent. Either way no CMAS load may write a register the
	// slice does not read.
}

func TestCMASTriggerAnnotationsInAS(t *testing.T) {
	b := separateWithProfile(t, chaseKernelSrc)
	var asTriggers, seqTriggers int
	for _, in := range b.AS.Insts {
		if in.Ann.Has(isa.AnnTrigger) {
			asTriggers++
			if !in.Ann.Has(isa.AnnConsumeSCQ) {
				t.Error("AS trigger without ConsumeSCQ")
			}
			if !in.Op.IsCondBranch() && in.Op != isa.J {
				t.Errorf("trigger annotation on non-branch %v", in)
			}
		}
	}
	for _, in := range b.Seq.Insts {
		if in.Ann.Has(isa.AnnTrigger) {
			seqTriggers++
			if !in.Ann.Has(isa.AnnConsumeSCQ) {
				t.Error("Seq trigger without ConsumeSCQ")
			}
		}
	}
	if asTriggers < len(b.CMAS) {
		t.Errorf("AS triggers %d < CMAS count %d", asTriggers, len(b.CMAS))
	}
	if seqTriggers < len(b.CMAS) {
		t.Errorf("Seq triggers %d < CMAS count %d", seqTriggers, len(b.CMAS))
	}
}

func TestBlockingHandshakeEmitsGETSCQ(t *testing.T) {
	p := mustAssemble(t, "k", chaseKernelSrc)
	prof, err := profile.CacheProfile(p, smallHier(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Separate(p, Options{Profile: prof, MinMissRatio: 0.2, MinMisses: 64, BlockingHandshake: true})
	if err != nil {
		t.Fatal(err)
	}
	getscq := 0
	for _, in := range b.AS.Insts {
		if in.Op == isa.GETSCQ {
			getscq++
			if !in.Ann.Has(isa.AnnTrigger) {
				t.Error("GETSCQ without trigger annotation")
			}
		}
	}
	if getscq != len(b.CMAS) {
		t.Errorf("GETSCQ count %d != CMAS count %d", getscq, len(b.CMAS))
	}
}

func TestCMASBranchTargetsInRange(t *testing.T) {
	b := separateWithProfile(t, chaseKernelSrc)
	for _, c := range b.CMAS {
		for i, in := range c.Insts {
			if in.Op.IsDirectControl() {
				if t2 := in.Target(); t2 < 0 || t2 >= len(c.Insts) {
					t.Errorf("CMAS %d inst %d target %d out of range", c.ID, i, t2)
				}
			}
		}
	}
}

func TestCMASKeepsEquivalence(t *testing.T) {
	// CMAS and GETSCQ/trigger insertion must not change functional
	// results.
	p := mustAssemble(t, "k", chaseKernelSrc)
	want, err := fnsim.RunProgram(p, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b := separateWithProfile(t, chaseKernelSrc)
	got, err := Cosim(b, 100_000_000)
	if err != nil {
		t.Fatalf("cosim: %v", err)
	}
	if got.MemHash != want.MemHash || len(got.Output) != len(want.Output) || got.Output[0] != want.Output[0] {
		t.Error("CMAS insertion changed functional result")
	}
}

func TestNoCMASWithoutProfile(t *testing.T) {
	b := separate(t, chaseKernelSrc, Options{})
	if len(b.CMAS) != 0 {
		t.Error("CMAS built without a profile")
	}
}

func TestJCQTableMonotone(t *testing.T) {
	b := separate(t, `
main:   jal  f
        out  $r2
        halt
f:      li   $r2, 3
        jr   $ra
`, Options{})
	tbl := b.JCQTable()
	if len(tbl) != len(b.AS.Insts)+1 {
		t.Fatalf("table length %d", len(tbl))
	}
	for i := 1; i < len(tbl); i++ {
		if tbl[i] < tbl[i-1] {
			t.Errorf("JCQ table not monotone at %d: %v", i, tbl)
		}
	}
	// The AS return point (after jal) must map to the CS position of
	// the original return instruction (the out mirror position).
	jalAS := -1
	for i, in := range b.AS.Insts {
		if in.Op == isa.JAL {
			jalAS = i
		}
	}
	if jalAS < 0 {
		t.Fatal("no JAL in AS")
	}
	if want := b.CSPos[1]; tbl[jalAS+1] != want {
		t.Errorf("return translation = %d, want %d", tbl[jalAS+1], want)
	}
}

func TestReportAndStats(t *testing.T) {
	b := separateWithProfile(t, chaseKernelSrc)
	r := b.Report()
	for _, want := range []string{"access stream", "computation stream", "CMAS #0", "putscq"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q", want)
		}
	}
	st := b.Stats()
	if st.Total != len(b.Seq.Insts) || st.Access+st.Compute != st.Total {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.CQBranches == 0 || st.CMASCount != len(b.CMAS) {
		t.Errorf("stats: %+v", st)
	}
}

func TestSeparateRejectsInvalidProgram(t *testing.T) {
	if _, err := Separate(&isa.Program{Name: "bad"}, Options{}); err == nil {
		t.Error("invalid program accepted")
	}
}

// --- structural invariants ---

// TestStreamControlIsomorphism checks the invariant queue pairing
// rests on: the two streams carry the same conditional-branch
// structure, mapped through the position tables.
func TestStreamControlIsomorphism(t *testing.T) {
	for _, src := range []string{convolutionSrc, chaseKernelSrc} {
		b := separate(t, src, Options{})
		var asCond, csBCQ []int // stream indices
		for i, in := range b.AS.Insts {
			if in.Op.IsCondBranch() && in.Ann.Has(isa.AnnPushCQ) {
				asCond = append(asCond, i)
			}
		}
		for i, in := range b.CS.Insts {
			if in.Op == isa.BCQ {
				csBCQ = append(csBCQ, i)
			}
		}
		if len(asCond) != len(csBCQ) {
			t.Fatalf("branch counts differ: AS %d, CS %d", len(asCond), len(csBCQ))
		}
		for k := range asCond {
			origA := b.OrigOfAS[asCond[k]]
			origC := b.OrigOfCS[csBCQ[k]]
			if origA != origC {
				t.Errorf("branch %d: AS mirrors orig %d, CS mirrors orig %d", k, origA, origC)
			}
			// Targets must correspond through the position tables.
			ta := b.AS.Insts[asCond[k]].Target()
			tc := b.CS.Insts[csBCQ[k]].Target()
			origTarget := b.Seq.Insts[origA].Target()
			if ta != b.ASPos[origTarget] || tc != b.CSPos[origTarget] {
				t.Errorf("branch %d targets unmapped: AS %d (want %d), CS %d (want %d)",
					k, ta, b.ASPos[origTarget], tc, b.CSPos[origTarget])
			}
		}
	}
}

// TestStaticPushPopBalance: LDQ producers in the AS equal LDQ pops in
// the CS at corresponding original positions, and symmetrically for
// the SDQ.
func TestStaticPushPopBalance(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	ldqProducers := map[int]bool{} // original index
	for i, in := range b.AS.Insts {
		if in.Ann.Has(isa.AnnTapLDQ) || in.Dest() == isa.RegLDQ {
			ldqProducers[b.OrigOfAS[i]] = true
		}
	}
	ldqPops := 0
	for i, in := range b.CS.Insts {
		for _, s := range in.Sources() {
			if s == isa.RegLDQ {
				ldqPops++
				// The pop must sit at the producer's corresponding
				// position: its OrigOf is -1 (inserted) and the nearest
				// preceding real original index is the producer's slot.
				_ = i
			}
		}
	}
	if len(ldqProducers) != ldqPops {
		t.Errorf("LDQ producers %d != pops %d", len(ldqProducers), ldqPops)
	}

	sdqProducers := 0
	for _, in := range b.CS.Insts {
		if in.Ann.Has(isa.AnnTapSDQ) {
			sdqProducers++
		}
	}
	sdqPops := 0
	for _, in := range b.AS.Insts {
		for _, s := range in.Sources() {
			if s == isa.RegSDQ {
				sdqPops++
			}
		}
	}
	if sdqProducers != sdqPops {
		t.Errorf("SDQ producers %d != pops %d", sdqProducers, sdqPops)
	}
}

func TestStreamsCarryNoForeignOps(t *testing.T) {
	b := separateWithProfile(t, chaseKernelSrc)
	for _, in := range b.CS.Insts {
		if in.Op.IsMem() {
			t.Errorf("memory op in CS: %v", in)
		}
		if in.Ann.Has(isa.AnnPushCQ) || in.Ann.Has(isa.AnnTapLDQ) {
			t.Errorf("AS annotation in CS: %v", in)
		}
		if in.Op == isa.GETSCQ || in.Op == isa.PUTSCQ {
			t.Errorf("slip-control op in CS: %v", in)
		}
	}
	for _, in := range b.AS.Insts {
		if in.Op == isa.BCQ || in.Op == isa.JCQ {
			t.Errorf("CS mirror op in AS: %v", in)
		}
		if in.Ann.Has(isa.AnnTapSDQ) {
			t.Errorf("CS annotation in AS: %v", in)
		}
	}
	for _, c := range b.CMAS {
		for _, in := range c.Insts {
			if in.Op == isa.OUT || in.Op == isa.OUTF || in.Op.IsStore() {
				t.Errorf("side effect in CMAS: %v", in)
			}
		}
	}
}

func TestPositionTablesMonotone(t *testing.T) {
	b := separate(t, convolutionSrc, Options{})
	for i := 1; i < len(b.CSPos); i++ {
		if b.CSPos[i] < b.CSPos[i-1] || b.ASPos[i] < b.ASPos[i-1] {
			t.Fatalf("position tables not monotone at %d", i)
		}
	}
	if len(b.OrigOfCS) != len(b.CS.Insts) || len(b.OrigOfAS) != len(b.AS.Insts) {
		t.Error("OrigOf length mismatch")
	}
}

func TestPrefetchDistanceAppliedToStridedSeeds(t *testing.T) {
	// A strided streaming kernel: the CMAS prefetch must carry the
	// configured distance in its immediate.
	src := `
        .data
buf:    .space 262144
        .text
main:   la   $r2, buf
        li   $r1, 32768
loop:   lw   $r3, 0($r2)
        add  $r4, $r4, $r3
        addi $r2, $r2, 8
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r4
        halt
`
	p := mustAssemble(t, "stream", src)
	prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Separate(p, Options{Profile: prof, PrefetchDistance: 192})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.CMAS) == 0 {
		t.Fatal("no CMAS for streaming kernel")
	}
	found := false
	for _, in := range b.CMAS[0].Insts {
		if in.Op == isa.PREF && in.Imm == 192 {
			found = true
		}
	}
	if !found {
		t.Errorf("no PREF with +192 distance:\n%s", b.Report())
	}
}

func TestStoreSeedBecomesPrefetch(t *testing.T) {
	// A store-only streaming kernel: the write-allocate misses seed a
	// CMAS of prefetches.
	src := `
        .data
buf:    .space 262144
        .text
main:   la   $r2, buf
        li   $r1, 32768
loop:   sw   $r1, 0($r2)
        addi $r2, $r2, 8
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`
	p := mustAssemble(t, "storestream", src)
	prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Separate(p, Options{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.CMAS) == 0 {
		t.Fatal("store misses produced no CMAS")
	}
	prefs := 0
	for _, in := range b.CMAS[0].Insts {
		if in.Op == isa.PREF {
			prefs++
		}
		if in.Op.IsStore() {
			t.Errorf("store survived in CMAS: %v", in)
		}
	}
	if prefs == 0 {
		t.Error("no prefetch for the store stream")
	}
}

// --- control-queue thinning ---

const asOnlyLoopSrc = `
        .data
buf:    .space 65536
        .text
main:   la   $r2, buf         ; pure access-stream fill loop
        li   $r1, 4096
fill:   sw   $r1, 0($r2)
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, fill
        ; a computation the CS does care about
        la   $r2, buf
        lw   $r3, 64($r2)
        addi $r4, $r3, 1
        out  $r4
        halt
`

func TestControlThinningDropsASOnlyLoop(t *testing.T) {
	b := separate(t, asOnlyLoopSrc, Options{})
	for _, in := range b.CS.Insts {
		if in.Op == isa.BCQ {
			t.Errorf("CS still mirrors the access-only loop: %v\n%s", in, b.CS.Listing())
		}
	}
	for _, in := range b.AS.Insts {
		if in.Ann.Has(isa.AnnPushCQ) {
			t.Errorf("AS still pushes outcome tokens: %v", in)
		}
	}
	// Thinning must not change semantics.
	p := mustAssemble(t, "t", asOnlyLoopSrc)
	ref, err := fnsim.RunProgram(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cosim(b, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.MemHash != ref.MemHash || got.Output[0] != ref.Output[0] {
		t.Error("thinned separation diverged")
	}
}

func TestKeepAllControlRetainsMirrors(t *testing.T) {
	b := separate(t, asOnlyLoopSrc, Options{KeepAllControl: true})
	bcq := 0
	for _, in := range b.CS.Insts {
		if in.Op == isa.BCQ {
			bcq++
		}
	}
	if bcq == 0 {
		t.Error("KeepAllControl still thinned the loop")
	}
}

func TestThinningKeepsCSRelevantBranches(t *testing.T) {
	// The convolution loop computes in the CS every iteration: its
	// branch must stay mirrored.
	b := separate(t, convolutionSrc, Options{})
	bcq := 0
	for _, in := range b.CS.Insts {
		if in.Op == isa.BCQ {
			bcq++
		}
	}
	if bcq == 0 {
		t.Errorf("CS-relevant loop was thinned:\n%s", b.CS.Listing())
	}
}

func TestThinningReducesCPWork(t *testing.T) {
	thin := separate(t, asOnlyLoopSrc, Options{})
	full := separate(t, asOnlyLoopSrc, Options{KeepAllControl: true})
	if len(thin.CS.Insts) >= len(full.CS.Insts) {
		t.Errorf("thinned CS (%d insts) not smaller than full CS (%d)",
			len(thin.CS.Insts), len(full.CS.Insts))
	}
}

func TestLoopWithCallSkipsCMASGracefully(t *testing.T) {
	src := `
        .data
buf:    .space 262144
        .text
main:   la   $r2, buf
        li   $r1, 16384
loop:   lw   $r3, 0($r2)
        jal  f
        addi $r2, $r2, 16
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r4
        halt
f:      add  $r4, $r4, $r3
        jr   $ra
`
	p := mustAssemble(t, "call-loop", src)
	prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Separate(p, Options{Profile: prof})
	if err != nil {
		t.Fatalf("loop with call must separate without error: %v", err)
	}
	if len(b.CMAS) != 0 {
		t.Errorf("CMAS built for a loop containing a call")
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}

func TestCosimDeadlockIsTypedWithBlockedQueue(t *testing.T) {
	// A mis-sliced bundle: the CS pops an LDQ value the AS never
	// pushes. Cosim must return a structured DeadlockFault naming the
	// starved queue — not an opaque string — so callers can branch on
	// which FIFO wedged the pair.
	cs := mustAssemble(t, "cs", `
main:   add $r1, $LDQ, $r0
        halt
`)
	as := mustAssemble(t, "as", `
main:   halt
`)
	b := &Bundle{Name: "starved", Seq: as, CS: cs, AS: as}
	_, err := Cosim(b, 1_000_000)
	if err == nil {
		t.Fatal("mis-sliced bundle co-simulated without error")
	}
	var dl *simfault.DeadlockFault
	if !errors.As(err, &dl) {
		t.Fatalf("got %T (%v), want *simfault.DeadlockFault", err, err)
	}
	ldq, ok := dl.Queue("LDQ")
	if !ok {
		t.Fatalf("fault lost the LDQ state: %+v", dl.Queues)
	}
	if !ldq.Empty() || ldq.Pushes != 0 {
		t.Errorf("LDQ at deadlock = %+v; want empty and never pushed", ldq)
	}
	if dl.Snapshot == nil || len(dl.Snapshot.Cores) != 2 {
		t.Fatalf("snapshot = %+v, want both pseudo-cores", dl.Snapshot)
	}
	for _, c := range dl.Snapshot.Cores {
		if c.Name == "as" && !c.Halted {
			t.Error("snapshot shows the AS still running; it halted before the wedge")
		}
		if c.Name == "cs" && c.Halted {
			t.Error("snapshot shows the CS halted; it is the blocked consumer")
		}
	}
}

func TestCosimStepLimitIsTyped(t *testing.T) {
	// An infinite CS loop must surface as a CycleLimitFault, not hang.
	cs := mustAssemble(t, "cs", `
main:   j main
`)
	as := mustAssemble(t, "as", `
main:   halt
`)
	b := &Bundle{Name: "spin", Seq: as, CS: cs, AS: as}
	_, err := Cosim(b, 1000)
	var cl *simfault.CycleLimitFault
	if !errors.As(err, &cl) {
		t.Fatalf("got %T (%v), want *simfault.CycleLimitFault", err, err)
	}
	if cl.Limit != 1000 || cl.Snapshot == nil {
		t.Errorf("fault = %+v", cl)
	}
}
