package slicer

import (
	"errors"
	"fmt"

	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/queue"
	"hidisc/internal/simfault"
)

// JCQTable builds the translation from Access Stream coordinates (the
// values the AP pushes for indirect jumps) to Computation Stream
// coordinates: AS position a maps to the CS position of the first
// original instruction located at a, so a return continues through any
// CS-only instructions (which occupy no AS slot of their own).
func (b *Bundle) JCQTable() []int {
	n := len(b.AS.Insts)
	table := make([]int, n+1)
	for i := range table {
		table[i] = -1
	}
	// Descending so the first original instruction at each AS position
	// wins.
	for i := len(b.ASPos) - 1; i >= 0; i-- {
		table[b.ASPos[i]] = b.CSPos[i]
	}
	// Interior insertion points inherit the next mapped position.
	last := len(b.CS.Insts) - 1 // fallback: CS HALT
	for a := n; a >= 0; a-- {
		if table[a] == -1 {
			table[a] = last
		} else {
			last = table[a]
		}
	}
	return table
}

// cosimEnv implements fnsim.QueueEnv over bounded FIFOs for the
// functional co-simulation. Slip-control credits are free: the CMAS is
// a cache-only optimisation with no functional effect, so GETSCQ and
// PUTSCQ never block here.
//
// The interpreter checks PopAvail/PushSpace before calling Pop/Push,
// so a failing queue operation is a violated invariant, not a blocked
// stream. It is recorded in fault (and checked by Cosim after every
// step) rather than raised as a panic, so a mis-sliced bundle surfaces
// as a typed error the slicer tests can branch on.
type cosimEnv struct {
	qs    map[isa.Reg]*queue.Queue
	fault error
}

func newCosimEnv(capacity int) *cosimEnv {
	return &cosimEnv{qs: map[isa.Reg]*queue.Queue{
		isa.RegLDQ: queue.New("LDQ", capacity),
		isa.RegSDQ: queue.New("SDQ", capacity),
		isa.RegCQ:  queue.New("CQ", capacity),
	}}
}

func (e *cosimEnv) PopAvail(q isa.Reg) int { return e.qs[q].Avail() }

func (e *cosimEnv) Pop(q isa.Reg) uint64 {
	v, ok := e.qs[q].PopCommitted()
	if !ok {
		if e.fault == nil {
			e.fault = &simfault.InvariantFault{
				Origin: "slicer cosim",
				Reason: fmt.Sprintf("pop on empty %v", q),
			}
		}
		return 0
	}
	return v
}

func (e *cosimEnv) PushSpace(q isa.Reg) int { return e.qs[q].Cap() - e.qs[q].Len() }

func (e *cosimEnv) Push(q isa.Reg, v uint64) {
	if !e.qs[q].Push(v) && e.fault == nil {
		e.fault = &simfault.InvariantFault{
			Origin: "slicer cosim",
			Reason: fmt.Sprintf("push on full %v", q),
		}
	}
}

func (e *cosimEnv) GetSCQ(int) bool { return true }
func (e *cosimEnv) PutSCQ(int) bool { return true }

// queueStates captures the three architectural queues for a fault.
func (e *cosimEnv) queueStates() []simfault.QueueState {
	return []simfault.QueueState{
		e.qs[isa.RegLDQ].State(),
		e.qs[isa.RegSDQ].State(),
		e.qs[isa.RegCQ].State(),
	}
}

// snapshot summarises both functional streams as pseudo-cores so slicer
// deadlocks carry the same forensics shape as machine deadlocks.
func (e *cosimEnv) snapshot(kind simfault.Kind, as, cs *fnsim.Sim, steps uint64) *simfault.Snapshot {
	return &simfault.Snapshot{
		Kind:  kind,
		Arch:  "cosim",
		Cycle: int64(steps),
		Cores: []simfault.CoreState{
			{Name: "as", Halted: as.Halted(), PC: as.PC(), Committed: as.InstCount()},
			{Name: "cs", Halted: cs.Halted(), PC: cs.PC(), Committed: cs.InstCount()},
		},
		Queues: e.queueStates(),
	}
}

// CosimResult is the observable outcome of a functional co-simulation
// of the separated streams.
type CosimResult struct {
	MemHash uint64
	Output  []string
	ASInsts uint64
	CSInsts uint64
	Drained bool // all queues empty at completion
}

// Cosim executes the bundle's Computation and Access streams together
// on the functional interpreter, alternating whenever one stream
// blocks on a queue. It is the semantic ground truth for stream
// separation: the result must equal the sequential program's.
//
// Failure modes are typed: a wedged stream pair returns a
// *simfault.DeadlockFault whose Queues field names the blocked FIFO, a
// runaway co-simulation returns *simfault.CycleLimitFault, and an
// impossible queue operation returns *simfault.InvariantFault.
func Cosim(b *Bundle, maxSteps uint64) (CosimResult, error) {
	env := newCosimEnv(1024)
	as := fnsim.New(b.AS)
	as.Queues = env
	cs := fnsim.New(b.CS)
	cs.Queues = env
	cs.JCQMap = b.JCQTable()

	origin := fmt.Sprintf("slicer cosim %q", b.Name)
	var steps uint64
	runUntilBlocked := func(s *fnsim.Sim) (bool, error) {
		progress := false
		for !s.Halted() {
			if steps >= maxSteps {
				return progress, &simfault.CycleLimitFault{
					Origin:   origin,
					Limit:    int64(maxSteps),
					Snapshot: env.snapshot(simfault.KindCycleLimit, as, cs, steps),
				}
			}
			err := s.Step()
			if errors.Is(err, fnsim.ErrBlocked) {
				return progress, nil
			}
			if err != nil {
				return progress, err
			}
			if env.fault != nil {
				if f, ok := env.fault.(*simfault.InvariantFault); ok && f.Snapshot == nil {
					f.Origin = origin
					f.Snapshot = env.snapshot(simfault.KindInvariant, as, cs, steps)
				}
				return progress, env.fault
			}
			progress = true
			steps++
		}
		return progress, nil
	}

	for !(as.Halted() && cs.Halted()) {
		p1, err := runUntilBlocked(as)
		if err != nil {
			return CosimResult{}, err
		}
		p2, err := runUntilBlocked(cs)
		if err != nil {
			return CosimResult{}, err
		}
		if !p1 && !p2 {
			return CosimResult{}, &simfault.DeadlockFault{
				Origin:   origin,
				Cycle:    int64(steps),
				Queues:   env.queueStates(),
				Snapshot: env.snapshot(simfault.KindDeadlock, as, cs, steps),
			}
		}
	}

	drained := env.qs[isa.RegLDQ].Len() == 0 && env.qs[isa.RegSDQ].Len() == 0 && env.qs[isa.RegCQ].Len() == 0
	out := append([]string(nil), cs.Output()...)
	out = append(out, as.Output()...)
	return CosimResult{
		MemHash: as.Mem.Checksum(),
		Output:  out,
		ASInsts: as.InstCount(),
		CSInsts: cs.InstCount(),
		Drained: drained,
	}, nil
}
