// Package slicer implements the HiDISC compiler's stream separation
// (Section 4 of the paper): starting from a sequential binary it
//
//  1. derives the program flow graph and reaching definitions,
//  2. seeds the Access Stream with every load, store and control
//     instruction and chases backward slices through register
//     dependences (store *data* operands are not chased — they are the
//     canonical Computation Stream -> Access Stream communication),
//  3. classifies the remainder as the Computation Stream,
//  4. inserts queue communication: Access Stream values consumed by
//     the Computation Stream flow through the LDQ, computed values
//     consumed by stores flow through the SDQ, and every conditional
//     branch outcome flows through the control queue (the generalised
//     End-Of-Data token),
//  5. builds one Cache Miss Access Slice per loop containing
//     delinquent loads (from the cache-access profile), inserting the
//     GETSCQ/PUTSCQ slip-control handshake of Figure 3.
//
// The separation maintains one structural invariant on which queue
// correctness rests: the two streams have isomorphic control-flow
// graphs, and every queue push in one stream has its pop placed at the
// corresponding position of the other, so the k-th push pairs with the
// k-th pop along any executed path.
package slicer

import (
	"fmt"
	"sort"

	"hidisc/internal/cfg"
	"hidisc/internal/isa"
	"hidisc/internal/profile"
)

// Options configures the separation.
type Options struct {
	// Profile enables CMAS construction when non-nil.
	Profile *profile.Profile
	// MinMissRatio and MinMisses select delinquent loads (defaults
	// 0.02 and 256: streaming loads with low per-access miss ratios
	// still account for most total misses, and the CMAS covers them).
	MinMissRatio float64
	MinMisses    uint64
	// MaxCMAS bounds the number of slices (default 8).
	MaxCMAS int
	// PrefetchDistance is the byte offset added to CMAS prefetches of
	// seeds the profile identified as strided (default 256). It is the
	// static form of the runtime prefetch-distance control the paper
	// leaves as future work: streaming misses are covered a fixed
	// distance ahead even when the CMP cannot outrun the demand stream.
	PrefetchDistance int32
	// KeepAllControl disables control-queue thinning: by default the
	// compiler drops the Computation Stream mirror (and the outcome
	// token) of every branch whose region up to its immediate
	// post-dominator contains no Computation Stream work, since the
	// CS's execution is identical on both paths. Pure access-stream
	// loops then cost the CP nothing, instead of one BCQ per
	// iteration.
	KeepAllControl bool
	// BlockingHandshake emits explicit GETSCQ instructions in the
	// Access Stream (the literal Figure 3 handshake, for use with the
	// blocking-SCQ machine option). The default expresses the credit
	// consumption and the CMAS trigger as annotations on the loop's
	// back-edge branch, which costs no issue slots.
	BlockingHandshake bool
}

func (o Options) withDefaults() Options {
	if o.MinMissRatio == 0 {
		o.MinMissRatio = 0.02
	}
	if o.MinMisses == 0 {
		o.MinMisses = 256
	}
	if o.MaxCMAS == 0 {
		o.MaxCMAS = 8
	}
	if o.PrefetchDistance == 0 {
		o.PrefetchDistance = 128
	}
	return o
}

// CMAS is one cache-miss access slice: a small loop program executed
// by the Cache Management Processor with a register context forked
// from the Access Processor at the trigger.
type CMAS struct {
	ID            int
	LoopHeader    int   // original instruction index of the loop header
	DelinquentPCs []int // original indices of the seed loads
	Insts         []isa.Inst
	OrigOf        []int // CMAS index -> original index (-1 for inserted)
}

// Bundle is the compiler's output for one program.
type Bundle struct {
	Name string
	// Seq is the annotated sequential binary: every instruction tagged
	// with its stream, plus trigger/SCQ annotations used by the CP+CMP
	// configuration (speculative precomputation on a superscalar).
	Seq *isa.Program
	// CS and AS are the separated computation and access streams.
	CS *isa.Program
	AS *isa.Program
	// CMAS holds the cache management slices (may be empty).
	CMAS []*CMAS

	// CSPos / ASPos map original instruction indices to the stream
	// position where that instruction (or its mirror/pop) begins.
	CSPos []int
	ASPos []int
	// OrigOfCS / OrigOfAS map stream indices back to original indices
	// (-1 for inserted communication instructions).
	OrigOfCS []int
	OrigOfAS []int
}

// CSIndexOf returns the table translating original instruction indices
// to Computation Stream indices; the CP uses it to resolve JCQ targets.
func (b *Bundle) CSIndexOf() []int { return b.CSPos }

// Separate runs stream separation on the sequential program p.
func Separate(p *isa.Program, opts Options) (*Bundle, error) {
	opts = opts.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	df := cfg.ReachingDefs(g)

	s := &separator{p: p, g: g, df: df, opts: opts}
	s.classify()
	s.computeMirrored()
	if err := s.planCMAS(); err != nil {
		return nil, err
	}
	b, err := s.buildStreams()
	if err != nil {
		return nil, err
	}
	if err := s.buildCMAS(b); err != nil {
		return nil, err
	}
	if err := b.CS.Validate(); err != nil {
		return nil, fmt.Errorf("slicer: CS invalid: %w", err)
	}
	if err := b.AS.Validate(); err != nil {
		return nil, fmt.Errorf("slicer: AS invalid: %w", err)
	}
	return b, nil
}

type loopPlan struct {
	id        int
	loop      *cfg.Loop
	seeds     []int        // delinquent load indices
	slice     map[int]bool // original indices in the CMAS slice
	headerI   int          // first instruction index of the header block
	backEdges []int        // original indices of the back-edge branches
}

type separator struct {
	p    *isa.Program
	g    *cfg.Graph
	df   *cfg.DataFlow
	opts Options

	access   []bool // classification: true = Access Stream
	mirrored []bool // per control instruction: CS carries a mirror
	plans    []*loopPlan
}

// sliceSources returns the source registers chased by backward slicing
// for instruction i: address operands for memory operations, all
// operands for control and other access-stream instructions. Store
// data operands are deliberately excluded (they are CS->AS queue
// traffic, per Figures 5 and 6 of the paper).
func sliceSources(in isa.Inst) []isa.Reg {
	if in.Op.IsStore() {
		return []isa.Reg{in.Rs}
	}
	var out []isa.Reg
	for _, r := range in.Sources() {
		if r.IsArch() {
			out = append(out, r)
		}
	}
	return out
}

// classify seeds the Access Stream and chases backward slices.
func (s *separator) classify() {
	n := len(s.p.Insts)
	s.access = make([]bool, n)
	var work []int
	for i, in := range s.p.Insts {
		if in.Op.IsMem() || in.Op.IsControl() {
			s.access[i] = true
			work = append(work, i)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range sliceSources(s.p.Insts[i]) {
			if !r.IsArch() || r == isa.R0 {
				continue
			}
			for _, d := range s.df.Defs(i, r) {
				if d == cfg.EntryDef || s.access[d] {
					continue
				}
				s.access[d] = true
				work = append(work, d)
			}
		}
	}
}

// blockHasCSContent reports whether block b holds anything the
// Computation Stream must execute: a CS instruction, an inserted LDQ
// pop (an AS definition with a CS consumer), HALT, or a control
// instruction that is currently mirrored.
func (s *separator) blockHasCSContent(b int, exceptCtl map[int]bool) bool {
	blk := s.g.Blocks[b]
	for i := blk.Start; i < blk.End; i++ {
		in := s.p.Insts[i]
		switch {
		case in.Op == isa.HALT:
			return true
		case in.Op.IsControl():
			if s.mirrored[i] && !exceptCtl[i] {
				return true
			}
		case !s.access[i]:
			return true // CS instruction
		default:
			if d := in.Dest(); d.IsArch() && d != isa.R0 && s.hasCSUse(i) {
				return true // LDQ pop inserted here
			}
		}
	}
	return false
}

// computeMirrored decides, per control instruction, whether the
// Computation Stream carries a mirror (BCQ / J / JCQ). A conditional
// branch is thinned when every path from it to its immediate
// post-dominator is free of CS content; the region's unconditional
// jumps are thinned with it (the CS simply falls through — the region
// emits no CS instructions at all). Indirect jumps are never thinned.
func (s *separator) computeMirrored() {
	n := len(s.p.Insts)
	s.mirrored = make([]bool, n)
	for i, in := range s.p.Insts {
		if in.Op.IsControl() {
			s.mirrored[i] = true
		}
	}
	if s.opts.KeepAllControl {
		return
	}
	ipdom := s.g.PostDominators()

	for changed := true; changed; {
		changed = false
		for i, in := range s.p.Insts {
			if !in.Op.IsCondBranch() || !s.mirrored[i] {
				continue
			}
			b := s.g.BlockOf[i]
			ipd := ipdom[b]
			if ipd < 0 {
				continue // region runs to program exit: HALT is CS content
			}
			// Region: blocks reachable from the branch's successors
			// without entering the post-dominator.
			region := map[int]bool{}
			stack := append([]int(nil), s.g.Blocks[b].Succs...)
			for len(stack) > 0 {
				r := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if r == ipd || region[r] {
					continue
				}
				region[r] = true
				stack = append(stack, s.g.Blocks[r].Succs...)
			}
			// Unconditional direct jumps inside the region are thinned
			// together with the branch, provided they stay inside.
			thinnableCtl := map[int]bool{i: true}
			ok := true
			for r := range region {
				blk := s.g.Blocks[r]
				last := s.p.Insts[blk.End-1]
				if last.Op == isa.J || last.Op == isa.JAL {
					t := s.g.BlockOf[last.Target()]
					if region[t] || t == ipd {
						thinnableCtl[blk.End-1] = true
					}
				}
			}
			for r := range region {
				if s.blockHasCSContent(r, thinnableCtl) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for c := range thinnableCtl {
				if s.mirrored[c] {
					s.mirrored[c] = false
					changed = true
				}
			}
		}
	}
}

// hasCSUse reports whether any consumer of the value defined at d is a
// Computation Stream instruction.
func (s *separator) hasCSUse(d int) bool {
	for _, u := range s.df.Uses(d) {
		if !s.access[u] {
			return true
		}
		// A store's data operand is a CS-style use even though the
		// store itself is in the AS only when the def is in CS; here d
		// is an AS def, so AS consumers read it locally.
	}
	return false
}

// hasASUse reports whether any Access Stream instruction consumes the
// value defined at d.
func (s *separator) hasASUse(d int) bool {
	for _, u := range s.df.Uses(d) {
		if s.access[u] {
			return true
		}
	}
	return false
}

// makePop builds the communication instruction popping one value from
// q into register rd, typed by rd's register file.
func makePop(rd isa.Reg, q isa.Reg, stream isa.Stream) isa.Inst {
	ann := isa.Annotation(0).WithStream(stream)
	if rd.IsFP() {
		return isa.Inst{Op: isa.FMOV, Rd: rd, Rs: q, Ann: ann}
	}
	return isa.Inst{Op: isa.ADD, Rd: rd, Rs: q, Rt: isa.R0, Ann: ann}
}

// buildStreams constructs the CS and AS programs plus the annotated
// sequential binary.
func (s *separator) buildStreams() (*Bundle, error) {
	p := s.p
	n := len(p.Insts)
	b := &Bundle{
		Name:  p.Name,
		CSPos: make([]int, n),
		ASPos: make([]int, n),
	}

	seq := p.Clone()
	var csInsts, asInsts []isa.Inst
	var origCS, origAS []int
	var csFix, asFix []int // stream indices whose direct targets need remapping

	appendCS := func(in isa.Inst, orig int, needsFix bool) {
		if needsFix {
			csFix = append(csFix, len(csInsts))
		}
		csInsts = append(csInsts, in)
		origCS = append(origCS, orig)
	}
	appendAS := func(in isa.Inst, orig int, needsFix bool) {
		if needsFix {
			asFix = append(asFix, len(asInsts))
		}
		asInsts = append(asInsts, in)
		origAS = append(origAS, orig)
	}

	// Loop headers that need a GETSCQ (blocking handshake), or
	// back-edge branches that carry the trigger/credit annotations.
	getscqAt := map[int]*loopPlan{} // header first-inst index -> plan
	annotateAt := map[int]*loopPlan{}
	for _, pl := range s.plans {
		if s.opts.BlockingHandshake {
			getscqAt[pl.headerI] = pl
		} else {
			for _, be := range pl.backEdges {
				annotateAt[be] = pl
			}
		}
	}

	for i := 0; i < n; i++ {
		in := p.Insts[i]
		b.CSPos[i] = len(csInsts)
		b.ASPos[i] = len(asInsts)

		if pl, ok := getscqAt[i]; ok {
			// Blocking slip-control handshake at the top of the loop
			// body (Figure 3). The GETSCQ also carries the trigger:
			// forking is idempotent while the CMAS thread runs, and
			// re-forks resynchronise the prefetcher on the next entry.
			ann := isa.Annotation(0).WithStream(isa.StreamAccess).
				WithCMASID(pl.id) | isa.AnnTrigger
			appendAS(isa.Inst{Op: isa.GETSCQ, Imm: int32(pl.id), Ann: ann}, -1, false)
		}
		if pl, ok := annotateAt[i]; ok {
			// Default handshake: the back-edge branch consumes one
			// slip-control credit at commit and (re-)triggers the CMAS
			// thread at dispatch; no instruction is inserted.
			seq.Insts[i].Ann |= isa.AnnTrigger | isa.AnnConsumeSCQ
			seq.Insts[i].Ann = seq.Insts[i].Ann.WithCMASID(pl.id)
		}
		if pl, ok := getscqAt[i]; ok {
			// The annotated sequential binary (CP+CMP configuration)
			// always uses the annotation form.
			seq.Insts[pl.headerI].Ann |= isa.AnnTrigger | isa.AnnConsumeSCQ
			seq.Insts[pl.headerI].Ann = seq.Insts[pl.headerI].Ann.WithCMASID(pl.id)
		}

		switch {
		case in.Op == isa.HALT:
			seq.Insts[i].Ann = seq.Insts[i].Ann.WithStream(isa.StreamAccess)
			appendAS(isa.Inst{Op: isa.HALT, Ann: isa.Annotation(0).WithStream(isa.StreamAccess)}, i, false)
			appendCS(isa.Inst{Op: isa.HALT, Ann: isa.Annotation(0).WithStream(isa.StreamCompute)}, i, false)

		case s.access[i]:
			seq.Insts[i].Ann = seq.Insts[i].Ann.WithStream(isa.StreamAccess)
			cp := in
			cp.Ann = cp.Ann.WithStream(isa.StreamAccess)
			if pl, ok := annotateAt[i]; ok {
				// The Access Stream copy of the back-edge branch
				// carries the trigger and credit-consume annotations.
				cp.Ann |= isa.AnnTrigger | isa.AnnConsumeSCQ
				cp.Ann = cp.Ann.WithCMASID(pl.id)
			}

			// Store data produced by the CS arrives via the SDQ pop
			// placed at the producing instruction; nothing to change
			// on the store itself.

			// Values flowing AS -> CS.
			csUse := false
			if d := in.Dest(); d.IsArch() && d != isa.R0 && s.hasCSUse(i) {
				csUse = true
				if in.Op.IsLoad() && !s.hasASUse(i) {
					// Pure transport: the paper's "l.d $LDQ, ..." form.
					cp.Rd = isa.RegLDQ
				} else {
					cp.Ann |= isa.AnnTapLDQ
				}
			}

			// Control mirroring (thinned branches keep only the AS copy).
			switch {
			case in.Op.IsCondBranch() && s.mirrored[i]:
				cp.Ann |= isa.AnnPushCQ
				appendAS(cp, i, true)
				appendCS(isa.Inst{Op: isa.BCQ, Imm: in.Imm,
					Ann: isa.Annotation(0).WithStream(isa.StreamCompute)}, i, true)
			case (in.Op == isa.J || in.Op == isa.JAL) && s.mirrored[i]:
				appendAS(cp, i, true)
				appendCS(isa.Inst{Op: isa.J, Imm: in.Imm,
					Ann: isa.Annotation(0).WithStream(isa.StreamCompute)}, i, true)
			case in.Op == isa.JR, in.Op == isa.JALR:
				cp.Ann |= isa.AnnPushCQ
				appendAS(cp, i, false)
				appendCS(isa.Inst{Op: isa.JCQ,
					Ann: isa.Annotation(0).WithStream(isa.StreamCompute)}, i, false)
			case in.Op.IsDirectControl():
				appendAS(cp, i, true) // AS keeps the (remapped) branch
			default:
				appendAS(cp, i, false)
			}

			if csUse {
				appendCS(makePop(in.Dest(), isa.RegLDQ, isa.StreamCompute), -1, false)
			}

		default: // Computation Stream
			seq.Insts[i].Ann = seq.Insts[i].Ann.WithStream(isa.StreamCompute)
			cp := in
			cp.Ann = cp.Ann.WithStream(isa.StreamCompute)
			asUse := false
			if d := in.Dest(); d.IsArch() && d != isa.R0 && s.hasASUse(i) {
				asUse = true
				cp.Ann |= isa.AnnTapSDQ
			}
			appendCS(cp, i, false)
			if asUse {
				appendAS(makePop(in.Dest(), isa.RegSDQ, isa.StreamAccess), -1, false)
			}
		}
	}

	// Remap direct control targets into stream coordinates.
	for _, idx := range csFix {
		csInsts[idx].Imm = int32(b.CSPos[csInsts[idx].Imm])
	}
	for _, idx := range asFix {
		asInsts[idx].Imm = int32(b.ASPos[asInsts[idx].Imm])
	}

	remapLabels := func(pos []int) map[string]int {
		out := make(map[string]int, len(p.Labels))
		for name, idx := range p.Labels {
			out[name] = pos[idx]
		}
		return out
	}

	b.Seq = seq
	b.CS = &isa.Program{
		Name:    p.Name + ".cs",
		Insts:   csInsts,
		Entry:   b.CSPos[p.Entry],
		Labels:  remapLabels(b.CSPos),
		Symbols: p.Symbols,
	}
	b.AS = &isa.Program{
		Name:    p.Name + ".as",
		Insts:   asInsts,
		Entry:   b.ASPos[p.Entry],
		Data:    append([]byte(nil), p.Data...),
		Labels:  remapLabels(b.ASPos),
		Symbols: p.Symbols,
	}
	b.OrigOfCS = origCS
	b.OrigOfAS = origAS
	return b, nil
}

// Stats summarises a separation for reports and tests.
type Stats struct {
	Total      int
	Access     int
	Compute    int
	LDQPushes  int // static count of tapped/pure-push producers
	SDQPushes  int
	CQBranches int
	CMASCount  int
}

// Stats computes static separation statistics from the bundle.
func (b *Bundle) Stats() Stats {
	st := Stats{Total: len(b.Seq.Insts), CMASCount: len(b.CMAS)}
	for _, in := range b.Seq.Insts {
		if in.Ann.Stream() == isa.StreamAccess {
			st.Access++
		} else {
			st.Compute++
		}
	}
	for _, in := range b.AS.Insts {
		if in.Ann.Has(isa.AnnTapLDQ) || in.Dest() == isa.RegLDQ {
			st.LDQPushes++
		}
		if in.Ann.Has(isa.AnnPushCQ) {
			st.CQBranches++
		}
	}
	for _, in := range b.CS.Insts {
		if in.Ann.Has(isa.AnnTapSDQ) {
			st.SDQPushes++
		}
	}
	return st
}

// Report renders a human-readable separation report: per-stream
// listings and CMAS contents.
func (b *Bundle) Report() string {
	var sb []byte
	appendf := func(format string, args ...any) {
		sb = append(sb, fmt.Sprintf(format, args...)...)
	}
	st := b.Stats()
	appendf("stream separation of %q: %d insts -> AS %d, CS %d (static)\n",
		b.Name, st.Total, st.Access, st.Compute)
	appendf("communication: %d LDQ producers, %d SDQ producers, %d CQ branches, %d CMAS\n\n",
		st.LDQPushes, st.SDQPushes, st.CQBranches, st.CMASCount)
	appendf("--- access stream ---\n%s\n", b.AS.Listing())
	appendf("--- computation stream ---\n%s\n", b.CS.Listing())
	for _, c := range b.CMAS {
		appendf("--- CMAS #%d (loop header at seq inst %d, seeds %v) ---\n",
			c.ID, c.LoopHeader, c.DelinquentPCs)
		for i, in := range c.Insts {
			appendf("%6d: %s\n", i, in)
		}
		appendf("\n")
	}
	return string(sb)
}

// planCMAS groups delinquent loads by innermost loop and computes the
// slice sets.
func (s *separator) planCMAS() error {
	if s.opts.Profile == nil {
		return nil
	}
	delinquent := s.opts.Profile.Delinquent(s.opts.MinMissRatio, s.opts.MinMisses)
	if len(delinquent) == 0 {
		return nil
	}
	loops := s.g.NaturalLoops()
	byHeader := map[int]*loopPlan{}
	var order []int
	for _, pc := range delinquent {
		l := s.g.InnermostLoopFor(loops, pc)
		if l == nil {
			continue // miss outside any loop: no slice to run ahead
		}
		headerI := s.g.Blocks[l.Header].Start
		pl := byHeader[headerI]
		if pl == nil {
			if len(byHeader) == s.opts.MaxCMAS {
				continue
			}
			pl = &loopPlan{loop: l, headerI: headerI}
			byHeader[headerI] = pl
			order = append(order, headerI)
		}
		pl.seeds = append(pl.seeds, pc)
	}
	sort.Ints(order)
	id := 0
	for _, h := range order {
		pl := byHeader[h]
		for _, be := range pl.loop.BackEdges {
			pl.backEdges = append(pl.backEdges, s.g.Blocks[be].End-1)
		}
		if !s.computeSlice(pl) {
			continue // e.g. the loop contains a call: no slice, no harm
		}
		pl.id = id
		id++
		s.plans = append(s.plans, pl)
	}
	return nil
}

// computeSlice builds the CMAS instruction set for one loop: the
// backward slices of the delinquent loads restricted to the loop, plus
// the loop's control instructions and their slices. It reports false
// when the loop cannot carry a slice (it contains a call).
func (s *separator) computeSlice(pl *loopPlan) bool {
	inLoop := map[int]bool{}
	for _, i := range pl.loop.Insts(s.g) {
		inLoop[i] = true
	}
	slice := map[int]bool{}
	var work []int
	add := func(i int) {
		if !slice[i] {
			slice[i] = true
			work = append(work, i)
		}
	}
	for _, pc := range pl.seeds {
		add(pc)
	}
	// Loop control: keep only what makes the slice iterate and
	// terminate — the back-edge branches and any branch that can leave
	// the loop. Interior control (e.g. an inner chain walk, a
	// conditional update) is dropped: the slice glues the surviving
	// instructions in program order, which may drift from the demand
	// stream but only ever mis-prefetches; this is the "selective"
	// slice reduction the paper's future-work section motivates, and
	// without it a slice degenerates into re-running the whole loop.
	backEdgeInsts := map[int]bool{}
	for _, be := range pl.loop.BackEdges {
		backEdgeInsts[s.g.Blocks[be].End-1] = true
	}
	for i := range inLoop {
		in := s.p.Insts[i]
		if in.Op == isa.JAL || in.Op == isa.JALR || in.Op == isa.JR {
			return false
		}
		if !in.Op.IsControl() {
			continue
		}
		if backEdgeInsts[i] {
			add(i)
			continue
		}
		if in.Op.IsCondBranch() {
			exits := !pl.loop.Contains(s.g, in.Target()) ||
				(i+1 < len(s.p.Insts) && !pl.loop.Contains(s.g, i+1))
			if exits {
				add(i)
			}
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range sliceSources(s.p.Insts[i]) {
			if !r.IsArch() || r == isa.R0 {
				continue
			}
			for _, d := range s.df.Defs(i, r) {
				if d == cfg.EntryDef || !inLoop[d] {
					continue // live-in: provided by the forked context
				}
				add(d)
			}
		}
	}
	// Stores may appear only as seeds (write-allocate misses cost the
	// same fill as load misses); they become address prefetches in the
	// slice. Any other store is removed — the slice must stay free of
	// side effects.
	seedSet := map[int]bool{}
	for _, pc := range pl.seeds {
		seedSet[pc] = true
	}
	for i := range slice {
		if s.p.Insts[i].Op.IsStore() && !seedSet[i] {
			delete(slice, i)
		}
	}
	pl.slice = slice
	return true
}

// buildCMAS materialises the CMAS programs planned by planCMAS.
func (s *separator) buildCMAS(b *Bundle) error {
	for _, pl := range s.plans {
		c := &CMAS{ID: pl.id, LoopHeader: pl.headerI, DelinquentPCs: pl.seeds}

		loopInsts := pl.loop.Insts(s.g)
		// Which slice loads feed other slice instructions (their value
		// is needed to keep chasing)? Others become pure prefetches.
		valueNeeded := map[int]bool{}
		for _, i := range loopInsts {
			if !pl.slice[i] || !s.p.Insts[i].Op.IsLoad() {
				continue
			}
			for _, u := range s.df.Uses(i) {
				if pl.slice[u] {
					valueNeeded[i] = true
					break
				}
			}
		}

		// Identify back-edge branches: last instruction of a back-edge
		// block targeting the header.
		backEdge := map[int]bool{}
		for _, be := range pl.loop.BackEdges {
			blk := s.g.Blocks[be]
			backEdge[blk.End-1] = true
		}

		// Prefetch distance for strided seeds (see Options).
		strideAhead := func(i int) int32 {
			if s.opts.Profile == nil {
				return 0
			}
			if st, ok := s.opts.Profile.PerPC[i]; ok && st.Strided() {
				return s.opts.PrefetchDistance
			}
			return 0
		}

		pos := map[int]int{} // original index -> CMAS index
		var fixups []int
		for _, i := range loopInsts {
			if !pl.slice[i] {
				continue
			}
			in := s.p.Insts[i]
			if backEdge[i] {
				// Slip-control credit: one per iteration, deposited
				// just before looping back (Figure 3's PUT_SCQ).
				c.Insts = append(c.Insts, isa.Inst{Op: isa.PUTSCQ, Imm: int32(pl.id),
					Ann: isa.Annotation(0).WithStream(isa.StreamCMAS).WithCMASID(pl.id)})
				c.OrigOf = append(c.OrigOf, -1)
			}
			pos[i] = len(c.Insts)
			cp := in
			cp.Ann = isa.Annotation(0).WithStream(isa.StreamCMAS).WithCMASID(pl.id)
			switch {
			case in.Op.IsLoad() && !valueNeeded[i]:
				cp = isa.Inst{Op: isa.PREF, Rs: in.Rs, Imm: in.Imm + strideAhead(i), Ann: cp.Ann}
			case in.Op.IsStore():
				// Seed store: prefetch the write-allocate target line.
				cp = isa.Inst{Op: isa.PREF, Rs: in.Rs, Imm: in.Imm + strideAhead(i), Ann: cp.Ann}
			}
			if cp.Op.IsDirectControl() {
				fixups = append(fixups, len(c.Insts))
			}
			c.Insts = append(c.Insts, cp)
			c.OrigOf = append(c.OrigOf, i)
		}
		haltIdx := len(c.Insts)
		c.Insts = append(c.Insts, isa.Inst{Op: isa.HALT,
			Ann: isa.Annotation(0).WithStream(isa.StreamCMAS).WithCMASID(pl.id)})
		c.OrigOf = append(c.OrigOf, -1)

		// Remap branch targets: a target inside the loop maps to the
		// first included instruction at or after it; anything else
		// (loop exit) maps to the HALT.
		inLoopSorted := loopInsts
		remap := func(t int) int32 {
			if !pl.loop.Contains(s.g, t) {
				return int32(haltIdx)
			}
			for _, i := range inLoopSorted {
				if i >= t {
					if p, ok := pos[i]; ok {
						return int32(p)
					}
				}
			}
			return int32(haltIdx)
		}
		for _, fi := range fixups {
			c.Insts[fi].Imm = remap(int(c.Insts[fi].Imm))
		}
		b.CMAS = append(b.CMAS, c)
	}
	return nil
}
