// Package debugserver starts the pprof side listener both server
// binaries share behind their -debug-addr flag. The profiling mux is
// deliberately its own listener — net/http/pprof registers on
// http.DefaultServeMux, and mounting that next to the public API would
// expose heap dumps and symbol tables to anyone who can submit a job.
package debugserver

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
)

// Start listens on addr and serves the net/http/pprof handlers on a
// private mux, on its own goroutine. It returns the bound address
// (useful with port 0) or an error if the listener cannot be opened.
// The listener lives for the life of the process — profiling must stay
// reachable while the server drains, which is exactly when it is
// needed most.
func Start(addr string, logger *slog.Logger) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	logger.Info("debug listener", "url", "http://"+ln.Addr().String()+"/debug/pprof/")
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			logger.Error("debug listener failed", "err", err.Error())
		}
	}()
	return ln.Addr().String(), nil
}
