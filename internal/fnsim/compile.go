// Compiled simulation: instead of re-interpreting an immutable program
// one Step at a time, each basic block (cfg.Build) is pre-translated
// into a chain of specialized closures — one func(*Sim) error per
// instruction with operand registers, immediates and successor PCs
// resolved at translate time. Blocks execute straight-line with a
// single PC update at the block edge, and the per-instruction queue /
// annotation checks of the interpreter are elided entirely for the
// (overwhelmingly common) queue-free block.
//
// The fallback contract: any instruction the translator cannot
// specialize — queue operations (pops, pushes, taps, BCQ/JCQ,
// GETSCQ/PUTSCQ), OUT/OUTF/HALT, statically invalid operand classes,
// unknown ops — marks its whole block as interp, and Run executes that
// block through the ordinary Step interpreter. Fallback therefore
// happens only at block boundaries, the interpreter and the compiled
// chain observe identical architectural state at every boundary, and
// Step-level co-simulation (internal/slicer) is untouched. Results are
// bit-identical to the interpreter — registers, memory, output,
// instruction counts, error strings and the Sim state at an error —
// pinned by the differential and fuzz tests.
//
// A second, MemObserver-aware translation of every block serves the
// cache profiler without putting an observer nil-check in the plain
// fast path; the two translations share the closures of non-memory
// instructions.
package fnsim

import (
	"fmt"
	"math"

	"hidisc/internal/cfg"
	"hidisc/internal/isa"
)

// cop is one translated instruction. Intermediate closures of a block
// never touch s.pc; the block's last closure performs the single PC
// update. A closure that fails rewinds s.pc to its own instruction
// first, so the Sim is left exactly as the interpreter would leave it.
type cop func(*Sim) error

// cblock is the translation of one basic block.
type cblock struct {
	start, end int
	interp     bool  // execute through Step (fallback contract above)
	ops        []cop // plain translation
	obsOps     []cop // MemObserver-aware translation
}

// code is the compiled form of one program.
type code struct {
	blocks  []cblock
	blockOf []int // pc -> block index
}

// compile translates p. It returns nil when no control-flow graph can
// be built at all (empty program, control target or entry outside the
// instruction range); the caller then runs the whole program on the
// interpreter, which reports such conditions lazily and only if
// actually executed.
func compile(p *isa.Program) *code {
	g, err := cfg.Build(p)
	if err != nil {
		return nil
	}
	c := &code{blocks: make([]cblock, len(g.Blocks)), blockOf: g.BlockOf}
	qfree := queueFree(p)
	for i, b := range g.Blocks {
		cb := &c.blocks[i]
		cb.start, cb.end = b.Start, b.End
		cb.ops = make([]cop, 0, b.End-b.Start)
		cb.obsOps = make([]cop, 0, b.End-b.Start)
		for pc := b.Start; pc < b.End; pc++ {
			plain, obs := translate(p, pc, b.End, qfree)
			if plain == nil {
				cb.interp = true
				cb.ops, cb.obsOps = nil, nil
				break
			}
			cb.ops = append(cb.ops, plain)
			cb.obsOps = append(cb.obsOps, obs)
		}
	}
	return c
}

// queueFree reports, per pc, that the instruction touches no
// architectural queue in any way (operands, destination, taps or
// control-queue annotations) — the same derivation New caches in usesQ.
func queueFree(p *isa.Program) []bool {
	out := make([]bool, len(p.Insts))
	for i, in := range p.Insts {
		uses := in.Dest().IsQueue() ||
			in.Ann.Has(isa.AnnTapLDQ) || in.Ann.Has(isa.AnnTapSDQ) || in.Ann.Has(isa.AnnPushCQ)
		src, n := in.SourceList()
		for j := 0; j < n; j++ {
			if src[j].IsQueue() {
				uses = true
			}
		}
		out[i] = !uses
	}
	return out
}

// translate builds the plain and MemObserver-aware closures for the
// instruction at pc inside a block ending at end. A nil plain closure
// means the instruction is unspecializable and its block must fall
// back to the interpreter.
func translate(p *isa.Program, pc, end int, qfree []bool) (plain, obs cop) {
	in := p.Insts[pc]
	if !qfree[pc] {
		return nil, nil
	}
	last := pc == end-1
	rd, rs, rt := in.Rd, in.Rs, in.Rt

	// seal attaches the block-edge PC update to the last closure of a
	// block ending in a non-control instruction.
	seal := func(op cop) cop {
		if op == nil || !last {
			return op
		}
		return func(s *Sim) error {
			if err := op(s); err != nil {
				return err
			}
			s.pc = end
			return nil
		}
	}
	// sealed finalises an op whose plain and observer translations are
	// identical (everything except memory instructions).
	sealed := func(op cop) (cop, cop) {
		sp := seal(op)
		return sp, sp
	}
	sealMem := func(plainOp, obsOp cop) (cop, cop) {
		return seal(plainOp), seal(obsOp)
	}

	switch in.Op {
	case isa.NOP:
		return sealed(func(s *Sim) error { s.instCount++; return nil })

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.NOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU:
		if !rs.IsInt() || !rt.IsInt() || !rd.IsInt() {
			return nil, nil
		}
		return sealed(genIntALU3(in.Op, rd, rs, rt, pc))

	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI:
		if !rs.IsInt() || !rd.IsInt() {
			return nil, nil
		}
		return sealed(genIntALUImm(in.Op, rd, rs, in.Imm))

	case isa.LI:
		if !rd.IsInt() {
			return nil, nil
		}
		v := uint32(in.Imm)
		return sealed(func(s *Sim) error {
			if rd != isa.R0 {
				s.intR[rd] = v
			}
			s.instCount++
			return nil
		})
	case isa.LUI:
		if !rd.IsInt() {
			return nil, nil
		}
		v := uint32(in.Imm) << 16
		return sealed(func(s *Sim) error {
			if rd != isa.R0 {
				s.intR[rd] = v
			}
			s.instCount++
			return nil
		})

	case isa.LW, isa.LBU, isa.LFD, isa.SW, isa.SB, isa.SFD, isa.PREF:
		return sealMem(genMem(in, pc))

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		if !rs.IsFP() || !rt.IsFP() || !rd.IsFP() {
			return nil, nil
		}
		return sealed(genFP3(in.Op, rd.FPIndex(), rs.FPIndex(), rt.FPIndex()))

	case isa.FMOV, isa.FNEG, isa.FABS:
		if !rs.IsFP() || !rd.IsFP() {
			return nil, nil
		}
		return sealed(genFP2(in.Op, rd.FPIndex(), rs.FPIndex()))

	case isa.CVTIF:
		if !rs.IsInt() || !rd.IsFP() {
			return nil, nil
		}
		rdi := rd.FPIndex()
		return sealed(func(s *Sim) error {
			s.fpR[rdi] = float64(int32(s.intR[rs]))
			s.instCount++
			return nil
		})
	case isa.CVTFI:
		if !rs.IsFP() || !rd.IsInt() {
			return nil, nil
		}
		rsi := rs.FPIndex()
		return sealed(func(s *Sim) error {
			if rd != isa.R0 {
				s.intR[rd] = uint32(int32(math.Trunc(s.fpR[rsi])))
			}
			s.instCount++
			return nil
		})

	case isa.FLT, isa.FLE, isa.FEQ:
		if !rs.IsFP() || !rt.IsFP() || !rd.IsInt() {
			return nil, nil
		}
		return sealed(genFPCmp(in.Op, rd, rs.FPIndex(), rt.FPIndex()))

	case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ,
		isa.J, isa.JAL, isa.JR, isa.JALR:
		if !last {
			return nil, nil // control always ends a block; be defensive
		}
		op := genControl(in, pc, end)
		return op, op

	default:
		// HALT, OUT, OUTF, GETSCQ, PUTSCQ, BCQ, JCQ (the last two are
		// already rejected by the queue-free gate) and anything unknown:
		// interpreter territory.
		return nil, nil
	}
}

// genIntALU3 translates the three-register integer ALU group. DIV and
// REM capture pc for the division-by-zero error, which must leave the
// Sim exactly as the interpreter does (pc at the faulting instruction,
// instruction not counted).
func genIntALU3(op isa.Op, rd, rs, rt isa.Reg, pc int) cop {
	set := func(s *Sim, v uint32) {
		if rd != isa.R0 {
			s.intR[rd] = v
		}
		s.instCount++
	}
	switch op {
	case isa.ADD:
		return func(s *Sim) error { set(s, s.intR[rs]+s.intR[rt]); return nil }
	case isa.SUB:
		return func(s *Sim) error { set(s, s.intR[rs]-s.intR[rt]); return nil }
	case isa.MUL:
		return func(s *Sim) error { set(s, uint32(int32(s.intR[rs])*int32(s.intR[rt]))); return nil }
	case isa.DIV:
		return func(s *Sim) error {
			b := s.intR[rt]
			if b == 0 {
				s.pc = pc
				return fmt.Errorf("fnsim: pc %d: integer division by zero", pc)
			}
			set(s, uint32(int32(s.intR[rs])/int32(b)))
			return nil
		}
	case isa.REM:
		return func(s *Sim) error {
			b := s.intR[rt]
			if b == 0 {
				s.pc = pc
				return fmt.Errorf("fnsim: pc %d: integer remainder by zero", pc)
			}
			set(s, uint32(int32(s.intR[rs])%int32(b)))
			return nil
		}
	case isa.AND:
		return func(s *Sim) error { set(s, s.intR[rs]&s.intR[rt]); return nil }
	case isa.OR:
		return func(s *Sim) error { set(s, s.intR[rs]|s.intR[rt]); return nil }
	case isa.XOR:
		return func(s *Sim) error { set(s, s.intR[rs]^s.intR[rt]); return nil }
	case isa.NOR:
		return func(s *Sim) error { set(s, ^(s.intR[rs] | s.intR[rt])); return nil }
	case isa.SLL:
		return func(s *Sim) error { set(s, s.intR[rs]<<(s.intR[rt]&31)); return nil }
	case isa.SRL:
		return func(s *Sim) error { set(s, s.intR[rs]>>(s.intR[rt]&31)); return nil }
	case isa.SRA:
		return func(s *Sim) error { set(s, uint32(int32(s.intR[rs])>>(s.intR[rt]&31))); return nil }
	case isa.SLT:
		return func(s *Sim) error { set(s, b2u(int32(s.intR[rs]) < int32(s.intR[rt]))); return nil }
	case isa.SLTU:
		return func(s *Sim) error { set(s, b2u(s.intR[rs] < s.intR[rt])); return nil }
	}
	return nil
}

// genIntALUImm translates the immediate integer ALU group.
func genIntALUImm(op isa.Op, rd, rs isa.Reg, imm int32) cop {
	b := uint32(imm)
	set := func(s *Sim, v uint32) {
		if rd != isa.R0 {
			s.intR[rd] = v
		}
		s.instCount++
	}
	switch op {
	case isa.ADDI:
		return func(s *Sim) error { set(s, s.intR[rs]+b); return nil }
	case isa.ANDI:
		return func(s *Sim) error { set(s, s.intR[rs]&b); return nil }
	case isa.ORI:
		return func(s *Sim) error { set(s, s.intR[rs]|b); return nil }
	case isa.XORI:
		return func(s *Sim) error { set(s, s.intR[rs]^b); return nil }
	case isa.SLLI:
		return func(s *Sim) error { set(s, s.intR[rs]<<(b&31)); return nil }
	case isa.SRLI:
		return func(s *Sim) error { set(s, s.intR[rs]>>(b&31)); return nil }
	case isa.SRAI:
		return func(s *Sim) error { set(s, uint32(int32(s.intR[rs])>>(b&31))); return nil }
	case isa.SLTI:
		return func(s *Sim) error { set(s, b2u(int32(s.intR[rs]) < imm)); return nil }
	}
	return nil
}

// genMem translates loads, stores and PREF, returning the plain and
// MemObserver-aware variants. The observer fires after the instruction
// has executed and been counted, so InstCount() inside the callback is
// the same per-instruction clock the interpreter's post-step observer
// sees (the Sim's PC is unspecified during the callback).
func genMem(in isa.Inst, pc int) (plain, obs cop) {
	rd, rs, rt := in.Rd, in.Rs, in.Rt
	if !rs.IsInt() {
		return nil, nil
	}
	uimm := uint32(in.Imm)
	switch in.Op {
	case isa.LW:
		if !rd.IsInt() {
			return nil, nil
		}
		load := func(s *Sim) uint32 {
			a := s.intR[rs] + uimm
			if rd != isa.R0 {
				s.intR[rd] = s.Mem.Read32(a)
			}
			s.instCount++
			return a
		}
		return func(s *Sim) error { load(s); return nil },
			func(s *Sim) error { s.MemObserver(pc, load(s), true, false); return nil }
	case isa.LBU:
		if !rd.IsInt() {
			return nil, nil
		}
		load := func(s *Sim) uint32 {
			a := s.intR[rs] + uimm
			if rd != isa.R0 {
				s.intR[rd] = uint32(s.Mem.Read8(a))
			}
			s.instCount++
			return a
		}
		return func(s *Sim) error { load(s); return nil },
			func(s *Sim) error { s.MemObserver(pc, load(s), true, false); return nil }
	case isa.LFD:
		if !rd.IsFP() {
			return nil, nil
		}
		rdi := rd.FPIndex()
		load := func(s *Sim) uint32 {
			a := s.intR[rs] + uimm
			s.fpR[rdi] = s.Mem.ReadFloat64(a)
			s.instCount++
			return a
		}
		return func(s *Sim) error { load(s); return nil },
			func(s *Sim) error { s.MemObserver(pc, load(s), true, false); return nil }
	case isa.SW, isa.SB:
		if !rt.IsInt() {
			return nil, nil
		}
		byteWide := in.Op == isa.SB
		store := func(s *Sim) uint32 {
			a := s.intR[rs] + uimm
			if byteWide {
				s.Mem.Write8(a, byte(s.intR[rt]))
			} else {
				s.Mem.Write32(a, s.intR[rt])
			}
			s.instCount++
			return a
		}
		return func(s *Sim) error { store(s); return nil },
			func(s *Sim) error { s.MemObserver(pc, store(s), false, false); return nil }
	case isa.SFD:
		if !rt.IsFP() {
			return nil, nil
		}
		rti := rt.FPIndex()
		store := func(s *Sim) uint32 {
			a := s.intR[rs] + uimm
			s.Mem.WriteFloat64(a, s.fpR[rti])
			s.instCount++
			return a
		}
		return func(s *Sim) error { store(s); return nil },
			func(s *Sim) error { s.MemObserver(pc, store(s), false, false); return nil }
	case isa.PREF:
		// No architectural effect: the plain translation only counts.
		return func(s *Sim) error { s.instCount++; return nil },
			func(s *Sim) error {
				a := s.intR[rs] + uimm
				s.instCount++
				s.MemObserver(pc, a, false, true)
				return nil
			}
	}
	return nil, nil
}

// genFP3 translates the three-register FP arithmetic group.
func genFP3(op isa.Op, rdi, rsi, rti int) cop {
	switch op {
	case isa.FADD:
		return func(s *Sim) error { s.fpR[rdi] = s.fpR[rsi] + s.fpR[rti]; s.instCount++; return nil }
	case isa.FSUB:
		return func(s *Sim) error { s.fpR[rdi] = s.fpR[rsi] - s.fpR[rti]; s.instCount++; return nil }
	case isa.FMUL:
		return func(s *Sim) error { s.fpR[rdi] = s.fpR[rsi] * s.fpR[rti]; s.instCount++; return nil }
	case isa.FDIV:
		return func(s *Sim) error { s.fpR[rdi] = s.fpR[rsi] / s.fpR[rti]; s.instCount++; return nil }
	}
	return nil
}

// genFP2 translates the two-register FP group.
func genFP2(op isa.Op, rdi, rsi int) cop {
	switch op {
	case isa.FMOV:
		return func(s *Sim) error { s.fpR[rdi] = s.fpR[rsi]; s.instCount++; return nil }
	case isa.FNEG:
		return func(s *Sim) error { s.fpR[rdi] = -s.fpR[rsi]; s.instCount++; return nil }
	case isa.FABS:
		return func(s *Sim) error { s.fpR[rdi] = math.Abs(s.fpR[rsi]); s.instCount++; return nil }
	}
	return nil
}

// genFPCmp translates the FP compares (integer 0/1 destination).
func genFPCmp(op isa.Op, rd isa.Reg, rsi, rti int) cop {
	set := func(s *Sim, cond bool) {
		if rd != isa.R0 {
			s.intR[rd] = b2u(cond)
		}
		s.instCount++
	}
	switch op {
	case isa.FLT:
		return func(s *Sim) error { set(s, s.fpR[rsi] < s.fpR[rti]); return nil }
	case isa.FLE:
		return func(s *Sim) error { set(s, s.fpR[rsi] <= s.fpR[rti]); return nil }
	case isa.FEQ:
		return func(s *Sim) error { set(s, s.fpR[rsi] == s.fpR[rti]); return nil }
	}
	return nil
}

// genControl translates the block-terminating control instructions:
// the closure performs the block's PC update itself (taken target or
// the fall-through successor, which is the block end).
func genControl(in isa.Inst, pc, end int) cop {
	rd, rs, rt := in.Rd, in.Rs, in.Rt
	target := in.Target()
	switch in.Op {
	case isa.BEQ, isa.BNE:
		if !rs.IsInt() || !rt.IsInt() {
			return nil
		}
		wantEq := in.Op == isa.BEQ
		return func(s *Sim) error {
			s.instCount++
			if (s.intR[rs] == s.intR[rt]) == wantEq {
				s.pc = target
			} else {
				s.pc = end
			}
			return nil
		}
	case isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		if !rs.IsInt() {
			return nil
		}
		cond := genZeroCmp(in.Op)
		return func(s *Sim) error {
			s.instCount++
			if cond(int32(s.intR[rs])) {
				s.pc = target
			} else {
				s.pc = end
			}
			return nil
		}
	case isa.J:
		return func(s *Sim) error { s.instCount++; s.pc = target; return nil }
	case isa.JAL:
		link := uint32(pc + 1)
		return func(s *Sim) error {
			s.intR[isa.RA] = link
			s.instCount++
			s.pc = target
			return nil
		}
	case isa.JR:
		if !rs.IsInt() {
			return nil
		}
		return func(s *Sim) error {
			t := s.intR[rs]
			s.instCount++
			s.pc = int(t)
			return nil
		}
	case isa.JALR:
		if !rs.IsInt() || !rd.IsInt() {
			return nil
		}
		link := uint32(pc + 1)
		return func(s *Sim) error {
			t := s.intR[rs]
			if rd != isa.R0 {
				s.intR[rd] = link
			}
			s.instCount++
			s.pc = int(t)
			return nil
		}
	}
	return nil
}

// genZeroCmp returns the compare-against-zero predicate of a
// single-operand branch.
func genZeroCmp(op isa.Op) func(int32) bool {
	switch op {
	case isa.BLEZ:
		return func(a int32) bool { return a <= 0 }
	case isa.BGTZ:
		return func(a int32) bool { return a > 0 }
	case isa.BLTZ:
		return func(a int32) bool { return a < 0 }
	}
	return func(a int32) bool { return a >= 0 } // BGEZ
}
