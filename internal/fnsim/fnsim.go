// Package fnsim implements the in-order functional simulator: a plain
// interpreter for sequential (unseparated) programs. It is the
// reference model every timing configuration is validated against, and
// it drives the cache-access profiler that identifies delinquent loads
// for CMAS construction.
package fnsim

import (
	"errors"
	"fmt"
	"math"

	"hidisc/internal/isa"
	"hidisc/internal/mem"
)

// ErrBlocked is returned by Step when the instruction cannot proceed
// because an architectural queue is empty (pop) or full (push). The
// simulator state is unchanged; the caller may retry after running the
// peer stream. Used by the functional co-simulation of separated
// streams.
var ErrBlocked = errors.New("fnsim: blocked on architectural queue")

// QueueEnv connects a Sim to the architectural queues when it executes
// one stream of a separated program. All methods operate immediately
// (the functional model has no speculation).
type QueueEnv interface {
	// PopAvail returns the number of values available to pop from q.
	PopAvail(q isa.Reg) int
	// Pop dequeues the next value; the caller has checked PopAvail.
	Pop(q isa.Reg) uint64
	// PushSpace returns the number of free slots in q.
	PushSpace(q isa.Reg) int
	// Push enqueues a value; the caller has checked PushSpace.
	Push(q isa.Reg, v uint64)
	// GetSCQ consumes one slip-control credit for the given CMAS; it
	// reports false when the caller must block.
	GetSCQ(id int) bool
	// PutSCQ deposits one credit; false when the caller must block.
	PutSCQ(id int) bool
}

// Event describes one executed instruction, delivered to the Observer.
type Event struct {
	PC     int
	Inst   isa.Inst
	IsLoad bool
	IsMem  bool
	Addr   uint32 // effective address for memory operations
	Taken  bool   // branch outcome for control operations
}

// Sim is a functional simulator instance.
type Sim struct {
	prog   *isa.Program
	Mem    *mem.Memory
	intR   [isa.NumIntRegs]uint32
	fpR    [isa.NumFPRegs]float64
	pc     int
	halted bool

	instCount uint64
	output    []string

	// Observer, when non-nil, is invoked after each executed
	// instruction. It forces the per-instruction interpreter: Run will
	// not use the compiled fast path while an Observer is attached.
	Observer func(Event)

	// MemObserver, when non-nil, is invoked after each executed memory
	// instruction (loads, stores and PREF) with the instruction's pc,
	// its effective address, whether it was a load, and whether it was
	// a PREF. Unlike Observer it is supported on the compiled fast path
	// through a dedicated translation (used by the cache profiler). The
	// Sim's PC is unspecified during the callback; InstCount() counts
	// the observed instruction.
	MemObserver func(pc int, addr uint32, isLoad, isPref bool)

	// NoCompile forces Run onto the pure per-instruction interpreter.
	// The compiled and interpreted paths are bit-identical (pinned by
	// the differential tests); the flag keeps the interpreter reachable
	// from CI and -no-compile.
	NoCompile bool

	// code is the lazily built compiled form of the program (nil until
	// first Run, and permanently nil when the program is untranslatable
	// as a whole).
	code         *code
	compileTried bool

	// Queues, when non-nil, enables the HiDISC queue operations so the
	// Sim can execute one stream of a separated program.
	Queues QueueEnv
	// JCQMap translates the producer-coordinate index popped by JCQ
	// into this stream's coordinates (identity when nil).
	JCQMap []int

	// usesQ caches, per pc, whether the instruction touches any
	// architectural queue (pop source, push destination, or tap
	// annotation). The program is immutable, so Step consults this one
	// bool instead of re-deriving the need sets for the overwhelmingly
	// common queue-free instruction.
	usesQ []bool
}

// New prepares a simulator for the program: memory holds the data
// segment, the stack pointer is initialised, and the PC is at entry.
func New(p *isa.Program) *Sim {
	s := &Sim{prog: p, Mem: mem.NewMemory(), pc: p.Entry}
	s.Mem.LoadSegment(isa.DataBase, p.Data)
	s.intR[isa.SP] = isa.StackTop
	s.usesQ = make([]bool, len(p.Insts))
	for i, in := range p.Insts {
		uses := in.Dest().IsQueue() ||
			in.Ann.Has(isa.AnnTapLDQ) || in.Ann.Has(isa.AnnTapSDQ) || in.Ann.Has(isa.AnnPushCQ)
		src, n := in.SourceList()
		for j := 0; j < n; j++ {
			if src[j].IsQueue() {
				uses = true
			}
		}
		s.usesQ[i] = uses
	}
	return s
}

// Halted reports whether the program has executed HALT.
func (s *Sim) Halted() bool { return s.halted }

// PC returns the current program counter (instruction index).
func (s *Sim) PC() int { return s.pc }

// InstCount returns the number of instructions executed so far.
func (s *Sim) InstCount() uint64 { return s.instCount }

// Output returns the values printed by OUT/OUTF, in order.
func (s *Sim) Output() []string { return s.output }

// IntReg returns the value of an integer register.
func (s *Sim) IntReg(r isa.Reg) uint32 {
	if !r.IsInt() {
		panic(fmt.Sprintf("fnsim: IntReg(%v)", r))
	}
	return s.intR[r]
}

// FPReg returns the value of a floating point register.
func (s *Sim) FPReg(r isa.Reg) float64 {
	if !r.IsFP() {
		panic(fmt.Sprintf("fnsim: FPReg(%v)", r))
	}
	return s.fpR[r.FPIndex()]
}

// SetIntReg sets an integer register (tests and harnesses).
func (s *Sim) SetIntReg(r isa.Reg, v uint32) {
	if !r.IsInt() {
		panic(fmt.Sprintf("fnsim: SetIntReg(%v)", r))
	}
	if r != isa.R0 {
		s.intR[r] = v
	}
}

// Run executes until HALT or maxInsts instructions, whichever first.
// It returns an error for invalid executions (queue operands in a
// sequential program, division by zero, PC out of range).
//
// Runs execute on the compiled fast path (see compile.go) unless
// NoCompile is set or an Observer is attached; the two paths are
// bit-identical in registers, memory, output, instruction counts and
// error behaviour.
func (s *Sim) Run(maxInsts uint64) error {
	if s.NoCompile || s.Observer != nil {
		return s.runInterp(maxInsts)
	}
	if !s.compileTried {
		s.compileTried = true
		s.code = compile(s.prog)
	}
	if s.code == nil {
		return s.runInterp(maxInsts)
	}
	nInsts := len(s.prog.Insts)
	observed := s.MemObserver != nil
	for !s.halted {
		if s.instCount >= maxInsts {
			return fmt.Errorf("fnsim: %q exceeded %d instructions (runaway?)", s.prog.Name, maxInsts)
		}
		if s.pc < 0 || s.pc >= nInsts {
			return fmt.Errorf("fnsim: pc %d out of range", s.pc)
		}
		b := &s.code.blocks[s.code.blockOf[s.pc]]
		// Fallback contract: untranslatable blocks run on the
		// interpreter, as does any block that could overrun the
		// instruction budget mid-chain (the interpreter checks the
		// budget before every instruction, and the runaway error must
		// fire at the exact same instruction on both paths).
		if b.interp || maxInsts-s.instCount < uint64(b.end-s.pc) {
			if err := s.Step(); err != nil {
				return err
			}
			continue
		}
		ops := b.ops
		if observed {
			ops = b.obsOps
		}
		for _, op := range ops[s.pc-b.start:] {
			if err := op(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// runInterp is the per-instruction interpreter loop.
func (s *Sim) runInterp(maxInsts uint64) error {
	for !s.halted {
		if s.instCount >= maxInsts {
			return fmt.Errorf("fnsim: %q exceeded %d instructions (runaway?)", s.prog.Name, maxInsts)
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) getInt(r isa.Reg) (uint32, error) {
	if r.IsQueue() && s.Queues != nil {
		return uint32(s.Queues.Pop(r)), nil
	}
	if !r.IsInt() {
		return 0, fmt.Errorf("fnsim: pc %d: integer operand %v invalid in this execution mode", s.pc, r)
	}
	return s.intR[r], nil
}

func (s *Sim) getFP(r isa.Reg) (float64, error) {
	if r.IsQueue() && s.Queues != nil {
		return math.Float64frombits(s.Queues.Pop(r)), nil
	}
	if !r.IsFP() {
		return 0, fmt.Errorf("fnsim: pc %d: FP operand %v invalid in this execution mode", s.pc, r)
	}
	return s.fpR[r.FPIndex()], nil
}

func (s *Sim) setInt(r isa.Reg, v uint32) error {
	if r.IsQueue() && s.Queues != nil {
		s.Queues.Push(r, uint64(v))
		return nil
	}
	if !r.IsInt() {
		return fmt.Errorf("fnsim: pc %d: integer destination %v invalid in this execution mode", s.pc, r)
	}
	if r != isa.R0 {
		s.intR[r] = v
	}
	return nil
}

func (s *Sim) setFP(r isa.Reg, v float64) error {
	if r.IsQueue() && s.Queues != nil {
		s.Queues.Push(r, math.Float64bits(v))
		return nil
	}
	if !r.IsFP() {
		return fmt.Errorf("fnsim: pc %d: FP destination %v invalid in this execution mode", s.pc, r)
	}
	s.fpR[r.FPIndex()] = v
	return nil
}

// queueReady checks the instruction's queue pops and pushes against
// the environment, returning ErrBlocked when any would block. With no
// environment it returns a descriptive error for queue usage.
func (s *Sim) queueReady(in isa.Inst) error {
	// Needs are tallied in fixed arrays over the four queue registers
	// (RegLDQ..RegSCQ): this runs for every functionally executed
	// instruction, where per-step map allocation dominated the
	// reference simulator's profile.
	var popNeed, pushNeed [int(isa.RegSCQ-isa.RegLDQ) + 1]int
	used := false
	src, n := in.SourceList()
	for i := 0; i < n; i++ {
		if r := src[i]; r.IsQueue() {
			popNeed[r-isa.RegLDQ]++
			used = true
		}
	}
	if d := in.Dest(); d.IsQueue() {
		pushNeed[d-isa.RegLDQ]++
		used = true
	}
	if in.Ann.Has(isa.AnnTapLDQ) {
		pushNeed[0]++ // RegLDQ
		used = true
	}
	if in.Ann.Has(isa.AnnTapSDQ) {
		pushNeed[isa.RegSDQ-isa.RegLDQ]++
		used = true
	}
	if in.Ann.Has(isa.AnnPushCQ) {
		pushNeed[isa.RegCQ-isa.RegLDQ]++
		used = true
	}
	if !used {
		return nil
	}
	if s.Queues == nil {
		return fmt.Errorf("fnsim: pc %d: %v uses architectural queues, invalid in sequential execution", s.pc, in.Op)
	}
	for i, n := range popNeed {
		if n > 0 && s.Queues.PopAvail(isa.RegLDQ+isa.Reg(i)) < n {
			return ErrBlocked
		}
	}
	for i, n := range pushNeed {
		if n > 0 && s.Queues.PushSpace(isa.RegLDQ+isa.Reg(i)) < n {
			return ErrBlocked
		}
	}
	return nil
}

// Step executes one instruction.
func (s *Sim) Step() error {
	if s.halted {
		return nil
	}
	if s.pc < 0 || s.pc >= len(s.prog.Insts) {
		return fmt.Errorf("fnsim: pc %d out of range", s.pc)
	}
	in := s.prog.Insts[s.pc]
	if s.usesQ[s.pc] {
		if err := s.queueReady(in); err != nil {
			return err
		}
	}
	pc := s.pc
	next := s.pc + 1
	var (
		isMem, isLoad, taken bool
		addr                 uint32
	)

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		s.halted = true

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.NOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU:
		a, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		b, err := s.getInt(in.Rt)
		if err != nil {
			return err
		}
		v, err := s.intALU(in.Op, a, b)
		if err != nil {
			return err
		}
		if err := s.setInt(in.Rd, v); err != nil {
			return err
		}

	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI:
		a, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		v, err := s.intALUImm(in.Op, a, in.Imm)
		if err != nil {
			return err
		}
		if err := s.setInt(in.Rd, v); err != nil {
			return err
		}

	case isa.LI:
		if err := s.setInt(in.Rd, uint32(in.Imm)); err != nil {
			return err
		}
	case isa.LUI:
		if err := s.setInt(in.Rd, uint32(in.Imm)<<16); err != nil {
			return err
		}

	case isa.LW, isa.LBU, isa.LFD:
		base, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		addr = base + uint32(in.Imm)
		isMem, isLoad = true, true
		switch in.Op {
		case isa.LW:
			err = s.setInt(in.Rd, s.Mem.Read32(addr))
		case isa.LBU:
			err = s.setInt(in.Rd, uint32(s.Mem.Read8(addr)))
		case isa.LFD:
			err = s.setFP(in.Rd, s.Mem.ReadFloat64(addr))
		}
		if err != nil {
			return err
		}

	case isa.SW, isa.SB, isa.SFD:
		base, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		addr = base + uint32(in.Imm)
		isMem = true
		switch in.Op {
		case isa.SW:
			v, err := s.getInt(in.Rt)
			if err != nil {
				return err
			}
			s.Mem.Write32(addr, v)
		case isa.SB:
			v, err := s.getInt(in.Rt)
			if err != nil {
				return err
			}
			s.Mem.Write8(addr, byte(v))
		case isa.SFD:
			v, err := s.getFP(in.Rt)
			if err != nil {
				return err
			}
			s.Mem.WriteFloat64(addr, v)
		}

	case isa.PREF:
		base, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		isMem, addr = true, base+uint32(in.Imm)
		// No architectural effect.

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		a, err := s.getFP(in.Rs)
		if err != nil {
			return err
		}
		b, err := s.getFP(in.Rt)
		if err != nil {
			return err
		}
		var v float64
		switch in.Op {
		case isa.FADD:
			v = a + b
		case isa.FSUB:
			v = a - b
		case isa.FMUL:
			v = a * b
		case isa.FDIV:
			v = a / b
		}
		if err := s.setFP(in.Rd, v); err != nil {
			return err
		}

	case isa.FMOV, isa.FNEG, isa.FABS:
		a, err := s.getFP(in.Rs)
		if err != nil {
			return err
		}
		switch in.Op {
		case isa.FNEG:
			a = -a
		case isa.FABS:
			a = math.Abs(a)
		}
		if err := s.setFP(in.Rd, a); err != nil {
			return err
		}

	case isa.CVTIF:
		a, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		if err := s.setFP(in.Rd, float64(int32(a))); err != nil {
			return err
		}
	case isa.CVTFI:
		a, err := s.getFP(in.Rs)
		if err != nil {
			return err
		}
		if err := s.setInt(in.Rd, uint32(int32(math.Trunc(a)))); err != nil {
			return err
		}

	case isa.FLT, isa.FLE, isa.FEQ:
		a, err := s.getFP(in.Rs)
		if err != nil {
			return err
		}
		b, err := s.getFP(in.Rt)
		if err != nil {
			return err
		}
		var cond bool
		switch in.Op {
		case isa.FLT:
			cond = a < b
		case isa.FLE:
			cond = a <= b
		case isa.FEQ:
			cond = a == b
		}
		if err := s.setInt(in.Rd, b2u(cond)); err != nil {
			return err
		}

	case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		t, err := s.evalBranch(in)
		if err != nil {
			return err
		}
		taken = t
		if taken {
			next = in.Target()
		}

	case isa.J:
		taken = true
		next = in.Target()
	case isa.JAL:
		taken = true
		if err := s.setInt(isa.RA, uint32(s.pc+1)); err != nil {
			return err
		}
		next = in.Target()
	case isa.JR:
		t, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		taken = true
		next = int(t)
	case isa.JALR:
		t, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		if err := s.setInt(in.Rd, uint32(s.pc+1)); err != nil {
			return err
		}
		taken = true
		next = int(t)

	case isa.OUT:
		v, err := s.getInt(in.Rs)
		if err != nil {
			return err
		}
		s.output = append(s.output, fmt.Sprintf("%d", int32(v)))
	case isa.OUTF:
		v, err := s.getFP(in.Rs)
		if err != nil {
			return err
		}
		s.output = append(s.output, fmt.Sprintf("%g", v))

	case isa.BCQ:
		token := s.Queues.Pop(isa.RegCQ)
		taken = token != 0
		if taken {
			next = in.Target()
		}
	case isa.JCQ:
		v := int(s.Queues.Pop(isa.RegCQ))
		taken = true
		if s.JCQMap != nil {
			if v < 0 || v >= len(s.JCQMap) {
				return fmt.Errorf("fnsim: pc %d: JCQ token %d out of range", s.pc, v)
			}
			v = s.JCQMap[v]
		}
		next = v

	case isa.GETSCQ, isa.PUTSCQ:
		if s.Queues == nil {
			return fmt.Errorf("fnsim: pc %d: %v uses architectural queues, invalid in sequential execution", s.pc, in.Op)
		}
		if in.Op == isa.GETSCQ {
			if !s.Queues.GetSCQ(int(in.Imm)) {
				return ErrBlocked
			}
		} else if !s.Queues.PutSCQ(int(in.Imm)) {
			return ErrBlocked
		}

	default:
		return fmt.Errorf("fnsim: pc %d: unimplemented op %v", s.pc, in.Op)
	}

	// Queue taps and control-outcome pushes (the pre-check reserved
	// the space).
	if s.Queues != nil {
		if d := in.Dest(); d.IsArch() {
			if in.Ann.Has(isa.AnnTapLDQ) || in.Ann.Has(isa.AnnTapSDQ) {
				q := isa.RegLDQ
				if in.Ann.Has(isa.AnnTapSDQ) {
					q = isa.RegSDQ
				}
				if d.IsFP() {
					s.Queues.Push(q, math.Float64bits(s.fpR[d.FPIndex()]))
				} else {
					s.Queues.Push(q, uint64(s.intR[d]))
				}
			}
		}
		if in.Ann.Has(isa.AnnPushCQ) {
			switch {
			case in.Op.IsCondBranch():
				token := uint64(0)
				if taken {
					token = 1
				}
				s.Queues.Push(isa.RegCQ, token)
			case in.Op == isa.JR, in.Op == isa.JALR:
				s.Queues.Push(isa.RegCQ, uint64(uint32(next)))
			}
		}
	}

	s.instCount++
	s.pc = next
	if s.Observer != nil {
		s.Observer(Event{PC: pc, Inst: in, IsLoad: isLoad, IsMem: isMem, Addr: addr, Taken: taken})
	}
	if s.MemObserver != nil && isMem {
		s.MemObserver(pc, addr, isLoad, in.Op == isa.PREF)
	}
	return nil
}

func (s *Sim) evalBranch(in isa.Inst) (bool, error) {
	a, err := s.getInt(in.Rs)
	if err != nil {
		return false, err
	}
	switch in.Op {
	case isa.BEQ, isa.BNE:
		b, err := s.getInt(in.Rt)
		if err != nil {
			return false, err
		}
		if in.Op == isa.BEQ {
			return a == b, nil
		}
		return a != b, nil
	case isa.BLEZ:
		return int32(a) <= 0, nil
	case isa.BGTZ:
		return int32(a) > 0, nil
	case isa.BLTZ:
		return int32(a) < 0, nil
	case isa.BGEZ:
		return int32(a) >= 0, nil
	}
	return false, fmt.Errorf("fnsim: evalBranch(%v)", in.Op)
}

func (s *Sim) intALU(op isa.Op, a, b uint32) (uint32, error) {
	switch op {
	case isa.ADD:
		return a + b, nil
	case isa.SUB:
		return a - b, nil
	case isa.MUL:
		return uint32(int32(a) * int32(b)), nil
	case isa.DIV:
		if b == 0 {
			return 0, fmt.Errorf("fnsim: pc %d: integer division by zero", s.pc)
		}
		return uint32(int32(a) / int32(b)), nil
	case isa.REM:
		if b == 0 {
			return 0, fmt.Errorf("fnsim: pc %d: integer remainder by zero", s.pc)
		}
		return uint32(int32(a) % int32(b)), nil
	case isa.AND:
		return a & b, nil
	case isa.OR:
		return a | b, nil
	case isa.XOR:
		return a ^ b, nil
	case isa.NOR:
		return ^(a | b), nil
	case isa.SLL:
		return a << (b & 31), nil
	case isa.SRL:
		return a >> (b & 31), nil
	case isa.SRA:
		return uint32(int32(a) >> (b & 31)), nil
	case isa.SLT:
		return b2u(int32(a) < int32(b)), nil
	case isa.SLTU:
		return b2u(a < b), nil
	}
	return 0, fmt.Errorf("fnsim: intALU(%v)", op)
}

func (s *Sim) intALUImm(op isa.Op, a uint32, imm int32) (uint32, error) {
	b := uint32(imm)
	switch op {
	case isa.ADDI:
		return a + b, nil
	case isa.ANDI:
		return a & b, nil
	case isa.ORI:
		return a | b, nil
	case isa.XORI:
		return a ^ b, nil
	case isa.SLLI:
		return a << (b & 31), nil
	case isa.SRLI:
		return a >> (b & 31), nil
	case isa.SRAI:
		return uint32(int32(a) >> (b & 31)), nil
	case isa.SLTI:
		return b2u(int32(a) < imm), nil
	}
	return 0, fmt.Errorf("fnsim: intALUImm(%v)", op)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Result bundles the observable outcome of a run for comparisons.
type Result struct {
	Insts   uint64
	MemHash uint64
	Output  []string
}

// RunProgram executes p to completion and returns its result.
func RunProgram(p *isa.Program, maxInsts uint64) (Result, error) {
	s := New(p)
	if err := s.Run(maxInsts); err != nil {
		return Result{}, err
	}
	return Result{Insts: s.InstCount(), MemHash: s.Mem.Checksum(), Output: s.Output()}, nil
}

// RunProgramInterp executes p to completion on the pure interpreter,
// bypassing the compiled fast path (the -no-compile path). It is used
// by the differential tests and CLI flags that pin the two paths
// bit-identical.
func RunProgramInterp(p *isa.Program, maxInsts uint64) (Result, error) {
	s := New(p)
	s.NoCompile = true
	if err := s.Run(maxInsts); err != nil {
		return Result{}, err
	}
	return Result{Insts: s.InstCount(), MemHash: s.Mem.Checksum(), Output: s.Output()}, nil
}
