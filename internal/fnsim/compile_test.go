package fnsim

import (
	"math"
	"reflect"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
	"hidisc/internal/workloads"
)

// diffRun executes p on the compiled and interpreted paths and fails
// unless every piece of observable state matches bit-for-bit: error,
// PC, halted flag, instruction count, all integer and FP registers
// (compared as bits, so NaNs count), memory checksum and output.
func diffRun(tb testing.TB, p *isa.Program, maxInsts uint64) {
	tb.Helper()
	comp := New(p)
	interp := New(p)
	interp.NoCompile = true
	errC := comp.Run(maxInsts)
	errI := interp.Run(maxInsts)
	if (errC == nil) != (errI == nil) || (errC != nil && errC.Error() != errI.Error()) {
		tb.Fatalf("error mismatch: compiled=%v interpreted=%v", errC, errI)
	}
	if comp.PC() != interp.PC() {
		tb.Fatalf("pc mismatch: compiled=%d interpreted=%d", comp.PC(), interp.PC())
	}
	if comp.Halted() != interp.Halted() {
		tb.Fatalf("halted mismatch: compiled=%v interpreted=%v", comp.Halted(), interp.Halted())
	}
	if comp.InstCount() != interp.InstCount() {
		tb.Fatalf("instCount mismatch: compiled=%d interpreted=%d", comp.InstCount(), interp.InstCount())
	}
	for r := isa.Reg(0); r < isa.Reg(isa.NumIntRegs); r++ {
		if comp.IntReg(r) != interp.IntReg(r) {
			tb.Fatalf("%v mismatch: compiled=%#x interpreted=%#x", r, comp.IntReg(r), interp.IntReg(r))
		}
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		r := isa.F0 + isa.Reg(i)
		c, v := math.Float64bits(comp.FPReg(r)), math.Float64bits(interp.FPReg(r))
		if c != v {
			tb.Fatalf("%v mismatch: compiled=%#x interpreted=%#x", r, c, v)
		}
	}
	if c, i := comp.Mem.Checksum(), interp.Mem.Checksum(); c != i {
		tb.Fatalf("memory checksum mismatch: compiled=%#x interpreted=%#x", c, i)
	}
	if !reflect.DeepEqual(comp.Output(), interp.Output()) {
		tb.Fatalf("output mismatch: compiled=%q interpreted=%q", comp.Output(), interp.Output())
	}
}

// TestCompiledMatchesInterpreterOnWorkloads pins bit-identity of the
// two execution paths over every workload at both scales.
func TestCompiledMatchesInterpreterOnWorkloads(t *testing.T) {
	for _, scale := range []workloads.Scale{workloads.ScaleTest, workloads.ScalePaper} {
		ws := append(workloads.All(scale), workloads.Extra(scale)...)
		for _, w := range ws {
			w := w
			name := "test/" + w.Name
			if scale == workloads.ScalePaper {
				name = "paper/" + w.Name
			}
			t.Run(name, func(t *testing.T) {
				p, err := w.Program()
				if err != nil {
					t.Fatal(err)
				}
				diffRun(t, p, w.MaxInsts)
			})
		}
	}
}

// TestCompiledErrorParity pins the failure contract: errors must fire
// at the same instruction with the same message, leaving the same pc
// and instruction count on both paths.
func TestCompiledErrorParity(t *testing.T) {
	cases := map[string]string{
		"div-zero-mid-block": `
main:   li   $r1, 5
        li   $r2, 0
        div  $r3, $r1, $r2
        add  $r4, $r3, $r3
        halt`,
		"rem-zero": `
main:   li   $r1, 7
        rem  $r3, $r1, $r0
        halt`,
		"jr-out-of-range": `
main:   li   $r1, 1000
        jr   $r1`,
		"scq-in-sequential": `
main:   getscq 0
        halt`,
		"queue-src-in-sequential": `
main:   add  $r1, $LDQ, $r0
        halt`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			diffRun(t, mustAssemble(t, name, src), 10_000)
		})
	}
}

// TestCompiledRunawayMidBlock forces the instruction budget to expire
// in the middle of a compiled block; Run must fall back to
// single-stepping so the runaway error fires at the exact same
// instruction as the interpreter's per-instruction check.
func TestCompiledRunawayMidBlock(t *testing.T) {
	p := mustAssemble(t, "runaway", `
main:   li   $r1, 1
loop:   add  $r2, $r2, $r1
        add  $r3, $r3, $r1
        add  $r4, $r4, $r1
        j    loop`)
	for max := uint64(0); max < 12; max++ {
		diffRun(t, p, max)
	}
}

// TestCompiledMidBlockEntry jumps into the middle of a translated
// block (an indirect jump to a non-leader pc): execution must resume
// from the right closure offset.
func TestCompiledMidBlockEntry(t *testing.T) {
	p := mustAssemble(t, "midblock", `
main:   li   $r1, 4
        jr   $r1
        addi $r2, $r2, 1
        addi $r2, $r2, 2
        addi $r2, $r2, 4
        bgtz $r0, end
end:    out  $r2
        halt`)
	diffRun(t, p, 10_000)
	s := New(p)
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := s.Output(); len(got) != 1 || got[0] != "4" {
		t.Fatalf("output = %q, want [4]: mid-block entry must skip the block prefix", got)
	}
}

// TestNoCompileFlagForcesInterpreter pins that NoCompile leaves the
// compiled code unbuilt.
func TestNoCompileFlagForcesInterpreter(t *testing.T) {
	p := mustAssemble(t, "nc", `
main:   li   $r1, 3
        out  $r1
        halt`)
	s := New(p)
	s.NoCompile = true
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.compileTried || s.code != nil {
		t.Error("NoCompile run still compiled the program")
	}
}

// TestMemObserverParity pins that the compiled observer translation
// sees the same (pc, addr, isLoad, isPref, InstCount) stream as the
// interpreter's MemObserver.
func TestMemObserverParity(t *testing.T) {
	p := mustAssemble(t, "obs", `
        .data
buf:    .space 256
        .text
main:   la   $r2, buf
        li   $r1, 16
loop:   lw   $r3, 0($r2)
        sw   $r3, 128($r2)
        pref 64($r2)
        lbu  $r4, 1($r2)
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt`)
	type rec struct {
		pc     int
		addr   uint32
		isLoad bool
		isPref bool
		count  uint64
	}
	trace := func(noCompile bool) []rec {
		s := New(p)
		s.NoCompile = noCompile
		var out []rec
		s.MemObserver = func(pc int, addr uint32, isLoad, isPref bool) {
			out = append(out, rec{pc, addr, isLoad, isPref, s.InstCount()})
		}
		if err := s.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return out
	}
	compiled, interpreted := trace(false), trace(true)
	if len(compiled) == 0 {
		t.Fatal("no memory events observed")
	}
	if !reflect.DeepEqual(compiled, interpreted) {
		t.Fatalf("event streams differ:\ncompiled:    %v\ninterpreted: %v", compiled, interpreted)
	}
}

// FuzzCompiledVsInterpreted feeds arbitrary assembler source to both
// execution paths and asserts bit-identity. Seeded from the
// FuzzAssemble corpus so the interesting ISA corners are covered from
// the first run. Run the smoke pass with `make fuzz-smoke`, or dig
// deeper with
// `go test -fuzz FuzzCompiledVsInterpreted -fuzztime 60s ./internal/fnsim`.
func FuzzCompiledVsInterpreted(f *testing.F) {
	seeds := []string{
		"",
		"main: halt",
		"main: add $r1, $r2, $r3\nhalt",
		"main: lw $r1, 0($r2)\n sw $r1, 4($r2)\n halt",
		"main: add $r1, $LDQ, $r0\n halt",
		".data\nx: .word 1, 2, 3\n.text\nmain: la $r1, x\n halt",
		"loop: addi $r1, $r1, -1\n bgtz $r1, loop\n out $r1\n halt",
		"main: trigger 0, 9\n getscq 0\n putscq 0\n halt",
		"main: li $f1, 1.5\n add.d $f2, $f1, $f1\n halt",
		".data\ns: .space 64\n.text\nmain: jal sub\n halt\nsub: jr $ra",
		"main: .word",
		"main: lw $r1, 0x10000000($r2",
		": :\n\t,,,\n\"",
		".data\nx: .word 99999999999999999999",
		"main: li $r1, 4\n jr $r1\n addi $r2, $r2, 1\n addi $r2, $r2, 2\n bgtz $r0, main\n halt",
		"main: li $r1, 1\n div $r2, $r1, $r0\n halt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Assemble("fuzz", src)
		if err != nil {
			t.Skip()
		}
		diffRun(t, p, 10_000)
	})
}
