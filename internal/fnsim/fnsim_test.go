package fnsim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
)

func run(t *testing.T, src string) *Sim {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	s := New(p)
	if err := s.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return s
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 = 55.
	s := run(t, `
main:   li   $r1, 10
        li   $r2, 0
loop:   add  $r2, $r2, $r1
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        halt
`)
	if got := s.Output(); len(got) != 1 || got[0] != "55" {
		t.Errorf("output = %v, want [55]", got)
	}
}

func TestIntALUOps(t *testing.T) {
	s := run(t, `
main:   li   $r1, 7
        li   $r2, 3
        mul  $r3, $r1, $r2    ; 21
        div  $r4, $r3, $r2    ; 7
        rem  $r5, $r1, $r2    ; 1
        sub  $r6, $r2, $r1    ; -4
        and  $r7, $r1, $r2    ; 3
        or   $r8, $r1, $r2    ; 7
        xor  $r9, $r1, $r2    ; 4
        nor  $r10, $r0, $r0   ; 0xFFFFFFFF
        slli $r11, $r1, 2     ; 28
        srai $r12, $r6, 1     ; -2
        srli $r13, $r10, 28   ; 15
        slt  $r14, $r6, $r0   ; 1 (signed)
        sltu $r15, $r6, $r0   ; 0 (unsigned: -4 is huge)
        slti $r16, $r1, 8     ; 1
        halt
`)
	want := map[isa.Reg]uint32{
		isa.R3: 21, isa.R4: 7, isa.R5: 1, isa.R6: 0xFFFFFFFC,
		isa.R7: 3, isa.R8: 7, isa.R9: 4, isa.R10: 0xFFFFFFFF,
		isa.R11: 28, isa.R12: 0xFFFFFFFE, isa.R13: 15,
		isa.R14: 1, isa.R15: 0, isa.R16: 1,
	}
	for r, v := range want {
		if got := s.IntReg(r); got != v {
			t.Errorf("%v = %#x, want %#x", r, got, v)
		}
	}
}

func TestMemoryOps(t *testing.T) {
	s := run(t, `
        .data
tab:    .word 10, 20, 30
dst:    .space 12
bytes:  .byte 0xAB
        .text
main:   la   $r2, tab
        lw   $r3, 4($r2)      ; 20
        la   $r4, dst
        sw   $r3, 0($r4)
        sb   $r3, 4($r4)      ; low byte 20
        lbu  $r5, bytes($r0)  ; 0xAB
        halt
`)
	if got := s.IntReg(isa.R3); got != 20 {
		t.Errorf("lw = %d", got)
	}
	if got := s.Mem.Read32(isa.DataBase + 12); got != 20 {
		t.Errorf("sw = %d", got)
	}
	if got := s.Mem.Read8(isa.DataBase + 16); got != 20 {
		t.Errorf("sb = %d", got)
	}
	if got := s.IntReg(isa.R5); got != 0xAB {
		t.Errorf("lbu = %#x", got)
	}
}

func TestFPOps(t *testing.T) {
	s := run(t, `
        .data
vals:   .double 1.5, 2.5
res:    .space 8
        .text
main:   la    $r2, vals
        l.d   $f1, 0($r2)
        l.d   $f2, 8($r2)
        add.d $f3, $f1, $f2   ; 4.0
        mul.d $f4, $f1, $f2   ; 3.75
        sub.d $f5, $f1, $f2   ; -1.0
        div.d $f6, $f2, $f1   ; 1.666...
        neg.d $f7, $f5        ; 1.0
        abs.d $f8, $f5        ; 1.0
        c.lt.d $r3, $f1, $f2  ; 1
        c.le.d $r4, $f2, $f1  ; 0
        c.eq.d $r5, $f7, $f8  ; 1
        li    $r6, -3
        cvt.d.w $f9, $r6      ; -3.0
        cvt.w.d $r7, $f4      ; 3
        la    $r8, res
        s.d   $f3, 0($r8)
        out.d $f3
        halt
`)
	if got := s.FPReg(isa.F(3)); got != 4.0 {
		t.Errorf("add.d = %v", got)
	}
	if got := s.FPReg(isa.F(4)); got != 3.75 {
		t.Errorf("mul.d = %v", got)
	}
	if s.IntReg(isa.R3) != 1 || s.IntReg(isa.R4) != 0 || s.IntReg(isa.R5) != 1 {
		t.Error("fp compares wrong")
	}
	if got := s.FPReg(isa.F(9)); got != -3.0 {
		t.Errorf("cvt.d.w = %v", got)
	}
	if got := s.IntReg(isa.R7); got != 3 {
		t.Errorf("cvt.w.d = %d", got)
	}
	if got := s.Mem.ReadFloat64(isa.DataBase + 16); got != 4.0 {
		t.Errorf("s.d = %v", got)
	}
	if out := s.Output(); out[len(out)-1] != "4" {
		t.Errorf("out.d = %v", out)
	}
}

func TestBranchVariants(t *testing.T) {
	s := run(t, `
main:   li   $r1, -1
        li   $r10, 0
        bltz $r1, a
        halt
a:      addi $r10, $r10, 1
        bgez $r0, b
        halt
b:      addi $r10, $r10, 1
        blez $r0, c
        halt
c:      addi $r10, $r10, 1
        li   $r2, 5
        bne  $r2, $r0, d
        halt
d:      addi $r10, $r10, 1
        beq  $r2, $r2, e
        halt
e:      addi $r10, $r10, 1
        bgtz $r2, f
        halt
f:      addi $r10, $r10, 1
        halt
`)
	if got := s.IntReg(isa.R10); got != 6 {
		t.Errorf("branch chain count = %d, want 6", got)
	}
}

func TestCallReturn(t *testing.T) {
	s := run(t, `
main:   li   $r4, 5
        jal  double
        out  $r2
        halt
double: add  $r2, $r4, $r4
        jr   $ra
`)
	if got := s.Output(); got[0] != "10" {
		t.Errorf("output = %v", got)
	}
}

func TestJALR(t *testing.T) {
	s := run(t, `
main:   la   $r5, target
        jalr $r6, $r5
        halt
target: out  $r6
        halt
`)
	if got := s.Output(); got[0] != "2" {
		t.Errorf("jalr link = %v, want 2", got)
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	s := run(t, `
main:   li   $r0, 42
        add  $r0, $r0, $r0
        out  $r0
        halt
`)
	if got := s.Output(); got[0] != "0" {
		t.Errorf("r0 = %v", got)
	}
}

func TestRunawayDetection(t *testing.T) {
	p := mustAssemble(t, "t", "main: j main")
	s := New(p)
	if err := s.Run(1000); err == nil || !strings.Contains(err.Error(), "runaway") {
		t.Errorf("err = %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	p := mustAssemble(t, "t", "main: li $r1, 1\n div $r2, $r1, $r0\n halt")
	s := New(p)
	if err := s.Run(100); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestQueueOpsRejected(t *testing.T) {
	for _, src := range []string{
		"main: bcq main",
		"main: jcq",
		"main: getscq 0",
		"main: putscq 0",
		"main: add $r1, $LDQ, $r0",
		"main: l.d $LDQ, 0($r2)",
	} {
		p := mustAssemble(t, "t", src+"\nhalt")
		s := New(p)
		if err := s.Run(10); err == nil {
			t.Errorf("source %q: queue op accepted in sequential execution", src)
		}
	}
}

func TestObserverSeesMemoryEvents(t *testing.T) {
	p := mustAssemble(t, "t", `
        .data
x:      .word 7
        .text
main:   lw   $r1, x($r0)
        sw   $r1, x+4($r0)
        pref x($r0)
        beq  $r0, $r0, done
        nop
done:   halt
`)
	s := New(p)
	var loads, stores, prefs, branches int
	var takenCount int
	s.Observer = func(ev Event) {
		switch {
		case ev.IsLoad:
			loads++
			if ev.Addr != isa.DataBase {
				t.Errorf("load addr = %#x", ev.Addr)
			}
		case ev.Inst.Op == isa.PREF:
			prefs++
		case ev.IsMem:
			stores++
		case ev.Inst.Op.IsControl():
			branches++
			if ev.Taken {
				takenCount++
			}
		}
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if loads != 1 || stores != 1 || prefs != 1 || branches != 1 || takenCount != 1 {
		t.Errorf("events: loads=%d stores=%d prefs=%d branches=%d taken=%d",
			loads, stores, prefs, branches, takenCount)
	}
}

func TestStackPointerInitialised(t *testing.T) {
	s := run(t, `
main:   sw   $r0, -4($sp)
        halt
`)
	if got := s.IntReg(isa.SP); got != isa.StackTop {
		t.Errorf("sp = %#x, want %#x", got, isa.StackTop)
	}
}

func TestRunProgramResult(t *testing.T) {
	p := mustAssemble(t, "t", `
        .data
x:      .space 4
        .text
main:   li  $r1, 9
        sw  $r1, x($r0)
        out $r1
        halt
`)
	r1, err := RunProgram(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunProgram(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MemHash != r2.MemHash {
		t.Error("non-deterministic memory hash")
	}
	if r1.Insts != 4 {
		t.Errorf("insts = %d, want 4", r1.Insts)
	}
	if len(r1.Output) != 1 || r1.Output[0] != "9" {
		t.Errorf("output = %v", r1.Output)
	}
}

func TestWordCountMatchesExecutedPath(t *testing.T) {
	s := run(t, `
main:   li   $r1, 3
loop:   addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
	// 1 li + 3*(addi+bgtz) + halt = 8.
	if got := s.InstCount(); got != 8 {
		t.Errorf("inst count = %d, want 8", got)
	}
}

// fakeEnv implements QueueEnv over plain slices for unit tests.
type fakeEnv struct {
	q      map[isa.Reg][]uint64
	space  int
	pushed []uint64
	scq    int
}

func (f *fakeEnv) PopAvail(q isa.Reg) int { return len(f.q[q]) }
func (f *fakeEnv) Pop(q isa.Reg) uint64 {
	v := f.q[q][0]
	f.q[q] = f.q[q][1:]
	return v
}
func (f *fakeEnv) PushSpace(isa.Reg) int { return f.space }
func (f *fakeEnv) Push(_ isa.Reg, v uint64) {
	f.pushed = append(f.pushed, v)
	f.space--
}
func (f *fakeEnv) GetSCQ(int) bool { f.scq--; return f.scq >= 0 }
func (f *fakeEnv) PutSCQ(int) bool { return true }

func TestQueueEnvPopIntoRegister(t *testing.T) {
	p := mustAssemble(t, "t", `
main:   add $r1, $LDQ, $r0
        out $r1
        halt
`)
	s := New(p)
	s.Queues = &fakeEnv{q: map[isa.Reg][]uint64{isa.RegLDQ: {77}}, space: 8}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Output()[0] != "77" {
		t.Errorf("output %v", s.Output())
	}
}

func TestQueueEnvBlockedOnEmptyPop(t *testing.T) {
	p := mustAssemble(t, "t", "main: add $r1, $LDQ, $r0\nhalt")
	s := New(p)
	s.Queues = &fakeEnv{q: map[isa.Reg][]uint64{}, space: 8}
	err := s.Step()
	if !errors.Is(err, ErrBlocked) {
		t.Errorf("err = %v, want ErrBlocked", err)
	}
	if s.InstCount() != 0 || s.PC() != 0 {
		t.Error("blocked step mutated state")
	}
}

func TestQueueEnvBlockedOnFullPush(t *testing.T) {
	p := mustAssemble(t, "t", "main: lw $LDQ, 0($r2)\nhalt")
	s := New(p)
	s.Queues = &fakeEnv{q: map[isa.Reg][]uint64{}, space: 0}
	if err := s.Step(); !errors.Is(err, ErrBlocked) {
		t.Errorf("err = %v, want ErrBlocked", err)
	}
}

func TestQueueEnvFPRoundTrip(t *testing.T) {
	p := mustAssemble(t, "t", `
main:   mov.d $f1, $LDQ
        add.d $f2, $f1, $f1
        mov.d $SDQ, $f2
        halt
`)
	env := &fakeEnv{q: map[isa.Reg][]uint64{isa.RegLDQ: {math.Float64bits(1.5)}}, space: 8}
	s := New(p)
	s.Queues = env
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(env.pushed) != 1 || math.Float64frombits(env.pushed[0]) != 3.0 {
		t.Errorf("pushed %v", env.pushed)
	}
}

func TestQueueEnvTapAndBranchPush(t *testing.T) {
	// A tapped producer both writes its register and pushes; a PushCQ
	// branch pushes its outcome.
	prog := &isa.Program{
		Name: "t",
		Insts: []isa.Inst{
			{Op: isa.LI, Rd: isa.R1, Imm: 9, Ann: isa.AnnTapLDQ},
			{Op: isa.BGTZ, Rs: isa.R1, Imm: 2, Ann: isa.AnnPushCQ},
			{Op: isa.HALT},
		},
	}
	env := &fakeEnv{q: map[isa.Reg][]uint64{}, space: 8}
	s := New(prog)
	s.Queues = env
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.IntReg(isa.R1) != 9 {
		t.Error("tap did not write the register")
	}
	if len(env.pushed) != 2 || env.pushed[0] != 9 || env.pushed[1] != 1 {
		t.Errorf("pushes %v, want [9 1]", env.pushed)
	}
}

func TestGetSCQBlocked(t *testing.T) {
	prog := &isa.Program{Name: "t", Insts: []isa.Inst{
		{Op: isa.GETSCQ, Imm: 0},
		{Op: isa.HALT},
	}}
	s := New(prog)
	s.Queues = &fakeEnv{q: map[isa.Reg][]uint64{}, space: 8, scq: 1}
	if err := s.Step(); err != nil {
		t.Fatalf("first credit: %v", err)
	}
	s2 := New(prog)
	s2.Queues = &fakeEnv{q: map[isa.Reg][]uint64{}, space: 8, scq: 0}
	if err := s2.Step(); !errors.Is(err, ErrBlocked) {
		t.Errorf("err = %v, want ErrBlocked", err)
	}
}

func TestJCQMapTranslation(t *testing.T) {
	prog := &isa.Program{Name: "t", Insts: []isa.Inst{
		{Op: isa.JCQ},
		{Op: isa.HALT},
		{Op: isa.OUT, Rs: isa.R0},
		{Op: isa.HALT},
	}}
	s := New(prog)
	s.Queues = &fakeEnv{q: map[isa.Reg][]uint64{isa.RegCQ: {5}}, space: 8}
	s.JCQMap = []int{0, 0, 0, 0, 0, 2} // token 5 -> index 2
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(s.Output()) != 1 {
		t.Errorf("JCQ translation failed: output %v", s.Output())
	}
}

func TestJCQTokenOutOfRange(t *testing.T) {
	prog := &isa.Program{Name: "t", Insts: []isa.Inst{
		{Op: isa.JCQ},
		{Op: isa.HALT},
	}}
	s := New(prog)
	s.Queues = &fakeEnv{q: map[isa.Reg][]uint64{isa.RegCQ: {99}}, space: 8}
	s.JCQMap = []int{0}
	if err := s.Step(); err == nil || errors.Is(err, ErrBlocked) {
		t.Errorf("err = %v, want range error", err)
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}
