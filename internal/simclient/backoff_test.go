package simclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hidisc/internal/simserver"
)

// fixedRand pins the jitter source.
func fixedRand(v float64) func() float64 { return func() float64 { return v } }

func TestDelayGrowthAndCap(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second, rnd: fixedRand(0)}
	// rnd=0 → no jitter subtracted: pure Base·2ⁿ clamped to Cap.
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterBounds(t *testing.T) {
	b := &Backoff{Base: time.Second, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := b.Delay(0)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jittered Delay(0) = %v, want within [500ms, 1s]", d)
		}
	}
	// Full jitter reaches further down; zero-ish jitter stays put.
	none := &Backoff{Base: time.Second, Jitter: -1, rnd: fixedRand(0.99)}
	if got := none.Delay(0); got != time.Second {
		t.Errorf("Jitter<0 Delay(0) = %v, want exactly 1s", got)
	}
}

func TestRetryAfterOverridesSchedule(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond, rnd: fixedRand(0)}
	err := &APIError{Status: 429, RetryAfter: 42 * time.Second}
	if got := b.DelayFor(0, err); got != 42*time.Second {
		t.Errorf("DelayFor(429 + Retry-After) = %v, want the server's 42s", got)
	}
	// Jitter only extends the server's ask, never undercuts it.
	bj := &Backoff{Base: time.Millisecond, rnd: fixedRand(0.999)}
	if got := bj.DelayFor(0, err); got < 42*time.Second {
		t.Errorf("jittered Retry-After %v undercuts the server's 42s", got)
	}
	// Without the header, the computed schedule applies (and the Cap
	// still bounds it).
	if got := b.DelayFor(9, &APIError{Status: 503}); got != 10*time.Millisecond {
		t.Errorf("DelayFor(503, attempt 9) = %v, want cap 10ms", got)
	}
}

func TestRetryableTable(t *testing.T) {
	b := DefaultBackoff()
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("dial tcp 127.0.0.1:1: connect: connection refused"), true},
		{fmt.Errorf("reading stream: %w", errors.New("unexpected EOF")), true},
		{&APIError{Status: 429}, true},
		{&APIError{Status: 502}, true},
		{&APIError{Status: 503}, true},
		{&APIError{Status: 400}, false},
		{&APIError{Status: 404}, false},
		{&APIError{Status: 422}, false},
		{&APIError{Status: 500}, false},
		{&APIError{Status: 504}, false},
		{context.Canceled, false},
		{fmt.Errorf("request: %w", context.DeadlineExceeded), false},
	}
	for _, c := range cases {
		if got := b.Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	b := &Backoff{Base: time.Millisecond, rnd: fixedRand(0),
		sleep: func(ctx context.Context, d time.Duration) error { slept = append(slept, d); return nil }}
	calls := 0
	err := b.Do(context.Background(), func() error {
		calls++
		if calls < 4 {
			return &APIError{Status: 503}
		}
		return nil
	})
	if err != nil || calls != 4 || len(slept) != 3 {
		t.Fatalf("Do: err=%v calls=%d sleeps=%v", err, calls, slept)
	}
	if slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond || slept[2] != 4*time.Millisecond {
		t.Errorf("sleep schedule %v, want 1ms 2ms 4ms", slept)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	b := &Backoff{Base: time.Millisecond,
		sleep: func(context.Context, time.Duration) error { t.Fatal("slept on a non-retryable error"); return nil }}
	calls := 0
	fatal := &APIError{Status: 422}
	if err := b.Do(context.Background(), func() error { calls++; return fatal }); !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("Do: err=%v calls=%d, want the 422 after one call", err, calls)
	}
}

func TestDoBoundedAttempts(t *testing.T) {
	b := &Backoff{Base: time.Nanosecond, Attempts: 3,
		sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	transient := &APIError{Status: 503}
	if err := b.Do(context.Background(), func() error { calls++; return transient }); !errors.Is(err, transient) || calls != 3 {
		t.Fatalf("Do: err=%v calls=%d, want 3 attempts then the last error", err, calls)
	}
}

func TestDoHonoursContextDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := &Backoff{Base: time.Minute,
		sleep: func(ctx context.Context, d time.Duration) error { cancel(); return ctx.Err() }}
	err := b.Do(ctx, func() error { return &APIError{Status: 503} })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
}

// TestClientRidesThroughFailures drives a real Client against a
// handler that sheds, drains, and dies mid-stream before recovering —
// the restart choreography the retrying client must absorb.
func TestClientRidesThroughFailures(t *testing.T) {
	meas := json.RawMessage(`{"Workload":"Pointer","Cycles":123}`)
	var runCalls, batchCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		switch runCalls.Add(1) {
		case 1: // overloaded, with a hint
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(429)
			json.NewEncoder(w).Encode(simserver.ErrorBody{Err: simserver.WireError{Status: 429, Kind: "overloaded"}})
		case 2: // draining ahead of a restart
			w.WriteHeader(503)
			json.NewEncoder(w).Encode(simserver.ErrorBody{Err: simserver.WireError{Status: 503, Kind: "draining"}})
		default:
			json.NewEncoder(w).Encode(simserver.JobResponse{Key: "k", Measurement: meas})
		}
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if batchCalls.Add(1) == 1 {
			// First attempt dies after one item: a kill -9 mid-batch.
			enc.Encode(simserver.BatchItem{Index: 0, Measurement: meas})
			panic(http.ErrAbortHandler)
		}
		enc.Encode(simserver.BatchItem{Index: 1, Measurement: meas})
		enc.Encode(simserver.BatchItem{Index: 0, Stored: true, Measurement: meas})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &Backoff{Base: time.Millisecond, Cap: 2 * time.Millisecond, rnd: fixedRand(0),
		sleep: func(ctx context.Context, d time.Duration) error { return nil }}

	resp, err := c.Run(context.Background(), simserver.JobRequest{Workload: "Pointer", Arch: "hidisc"})
	if err != nil {
		t.Fatalf("Run through 429+503: %v", err)
	}
	if string(resp.Measurement) != string(meas) || runCalls.Load() != 3 {
		t.Fatalf("Run resp %+v after %d calls", resp, runCalls.Load())
	}

	items, errs, err := c.Batch(context.Background(), simserver.BatchRequest{
		Jobs: []simserver.JobRequest{{Workload: "Pointer", Arch: "hidisc"}, {Workload: "Update", Arch: "hidisc"}},
	})
	if err != nil {
		t.Fatalf("Batch through mid-stream death: %v", err)
	}
	if len(items) != 2 || errs[0] != nil || errs[1] != nil {
		t.Fatalf("Batch items %+v errs %v", items, errs)
	}
	if !items[0].Stored {
		t.Error("replayed item 0 did not overwrite the first attempt's copy")
	}
	if batchCalls.Load() != 2 {
		t.Errorf("batch handler called %d times, want 2", batchCalls.Load())
	}
}

// TestNoRetryByDefault pins the zero-value behaviour: without a
// policy, the first failure surfaces immediately.
func TestNoRetryByDefault(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(503)
		json.NewEncoder(w).Encode(simserver.ErrorBody{Err: simserver.WireError{Status: 503, Kind: "draining"}})
	}))
	defer ts.Close()
	c := New(ts.URL)
	_, err := c.Run(context.Background(), simserver.JobRequest{Workload: "Pointer", Arch: "hidisc"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 503 || calls.Load() != 1 {
		t.Fatalf("Run = %v after %d calls, want one immediate 503", err, calls.Load())
	}
}
