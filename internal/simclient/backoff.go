package simclient

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Backoff is the client's retry policy: bounded, context-aware,
// jittered exponential backoff with server override. Delays grow as
// Base·Factorⁿ, are clamped to Cap, and are then jittered down by up
// to the Jitter fraction so a fleet of clients retrying after one
// server restart doesn't reconverge as a synchronized thundering herd.
// A 429's Retry-After header is authoritative and replaces the
// computed delay (jittered up, never down — the server asked for at
// least that much quiet).
//
// Retryable reports which failures are worth another attempt. The
// table, by cause:
//
//	transport error (dial refused/reset, broken or truncated stream)
//	                  → retry: the server is restarting or mid-crash;
//	                    riding it out is the whole point
//	429 overloaded    → retry, honouring Retry-After: admission shed
//	                    the request, capacity will return
//	503 draining      → retry: a graceful restart is in progress and a
//	                    fresh process will take the next attempt
//	502 bad gateway   → retry: an intermediary blip, not the request
//	400/404/405/413/422 → fail: a property of the request or submitted
//	                    content; identical on every attempt
//	500 invariant     → fail: deterministic simulator fault — the same
//	                    job will fault the same way again
//	504 timeout fault → fail: the job deterministically exceeds its
//	                    time budget
//	context cancelled / deadline exceeded
//	                  → fail: the caller gave up; never outlive it
type Backoff struct {
	// Base is the pre-jitter delay before the first retry
	// (default 250ms).
	Base time.Duration
	// Cap bounds any single computed delay (default 5s). Retry-After
	// may exceed it: the server's word wins.
	Cap time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Jitter in [0,1] is the fraction of each delay that is
	// randomized (default 0.5: delays land in [d/2, d]).
	Jitter float64
	// Attempts bounds total tries including the first (default 10).
	Attempts int

	// rnd overrides the jitter source in tests (uniform in [0,1)).
	rnd func() float64
	// sleep overrides context-aware sleeping in tests.
	sleep func(ctx context.Context, d time.Duration) error

	mu sync.Mutex // guards the lazily built default rng
	r  *rand.Rand
}

// DefaultBackoff returns the production policy: 250ms base, 5s cap,
// doubling, half-range jitter, 10 attempts (≈30s of patience — enough
// to ride out a server restart, bounded enough to fail a dead one).
func DefaultBackoff() *Backoff { return &Backoff{} }

func (b *Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 250 * time.Millisecond
}

func (b *Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return 5 * time.Second
}

func (b *Backoff) factor() float64 {
	if b.Factor > 1 {
		return b.Factor
	}
	return 2
}

func (b *Backoff) jitter() float64 {
	switch {
	case b.Jitter < 0:
		return 0
	case b.Jitter == 0:
		return 0.5
	case b.Jitter > 1:
		return 1
	}
	return b.Jitter
}

// MaxAttempts returns the effective attempt bound.
func (b *Backoff) MaxAttempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 10
}

func (b *Backoff) random() float64 {
	if b.rnd != nil {
		return b.rnd()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.r == nil {
		b.r = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return b.r.Float64()
}

// Delay returns the jittered delay before retry number attempt
// (0-based: Delay(0) follows the first failure).
func (b *Backoff) Delay(attempt int) time.Duration {
	d := float64(b.base())
	f := b.factor()
	for i := 0; i < attempt && d < float64(b.cap()); i++ {
		d *= f
	}
	if d > float64(b.cap()) {
		d = float64(b.cap())
	}
	j := b.jitter()
	d = d * (1 - j*b.random())
	return time.Duration(d)
}

// DelayFor returns the delay before retry `attempt` given the error
// that caused it: a server Retry-After hint overrides the computed
// schedule (jittered upward by up to half the jitter fraction, so a
// shed fleet doesn't return in lockstep at the exact estimate).
func (b *Backoff) DelayFor(attempt int, err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter + time.Duration(float64(ae.RetryAfter)*b.jitter()*0.5*b.random())
	}
	return b.Delay(attempt)
}

// RetryableStatus is the one shared classification of HTTP statuses
// worth another attempt — used by Backoff for same-target retries and
// by the cluster coordinator to decide re-route vs fail-fast. The
// split matters for the coordinator: a retryable status (or a
// transport error) means the *worker* is the problem, so the job may
// be replayed on another worker — content addressing makes the replay
// free. A non-retryable status is a property of the *job*, so sending
// it to a different worker would just fail (or fault) identically and
// burn a second core:
//
//	429 overloaded     → retryable: the worker shed it; honour
//	                     Retry-After on the same worker — its cache
//	                     shard still makes it the cheapest home
//	502 bad gateway    → retryable: intermediary blip
//	503 draining       → retryable: a graceful restart/deregister is
//	                     in progress; the coordinator re-routes
//	400/404/405/413/422 → fail fast: malformed or wedging content,
//	                     identical on every worker — MUST NOT be
//	                     retried elsewhere
//	500 invariant      → fail fast: deterministic simulator fault
//	504 timeout fault  → fail fast: the job deterministically exceeds
//	                     its budget
func RetryableStatus(status int) bool {
	switch status {
	case 429, 502, 503:
		return true
	}
	return false
}

// Retryable classifies an error per the table in the type comment.
func (b *Backoff) Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return RetryableStatus(ae.Status)
	}
	// Everything else that survives the context check is
	// transport-shaped: dial failures, resets, truncated streams.
	return true
}

// Sleep waits d or until ctx ends, whichever comes first.
func (b *Backoff) Sleep(ctx context.Context, d time.Duration) error {
	if b.sleep != nil {
		return b.sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn under the policy: up to MaxAttempts tries, sleeping the
// scheduled delay between them, stopping early on success, on a
// non-retryable error, or when ctx ends (the context's error wins so
// the caller sees why the budget was cut short).
func (b *Backoff) Do(ctx context.Context, fn func() error) error {
	var err error
	for attempt := 0; attempt < b.MaxAttempts(); attempt++ {
		if err = fn(); err == nil || !b.Retryable(err) {
			return err
		}
		if attempt == b.MaxAttempts()-1 {
			break // last attempt failed; no point sleeping
		}
		if serr := b.Sleep(ctx, b.DelayFor(attempt, err)); serr != nil {
			return serr
		}
	}
	return err
}
