// Package simclient is the Go client for the hidisc-serve API: submit
// single jobs or batch matrices, stream NDJSON batch results, and
// decode the server's structured error bodies (including Retry-After
// backoff hints and fault snapshots) into typed errors. Setting
// Client.Retry to a Backoff policy makes the client ride through
// server restarts, 429 shedding, and 503 drains instead of failing
// the caller's figure.
package simclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"hidisc/internal/experiments"
	"hidisc/internal/simserver"
	"hidisc/internal/tracing"
)

// Client talks to one hidisc-serve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Simulations can run
	// for minutes, so the default carries no overall timeout; bound
	// requests with a context instead.
	HTTPClient *http.Client
	// Retry, when non-nil, makes Run, Batch, Measurements, Healthz,
	// and Metrics ride through transient failures — server restarts,
	// 429 shedding (Retry-After honoured), 503 drains — under the
	// policy's bounded, jittered schedule (see Backoff for the full
	// retryable-status table). Safe because the API is idempotent:
	// simulations are deterministic and content-addressed, and a
	// restarted server answers completed jobs from its result store.
	// Nil means every failure surfaces immediately.
	Retry *Backoff
	// Header holds static headers applied to every request (the
	// per-request X-Request-Id travels via the context instead; see
	// simserver.ContextWithRequestID).
	Header http.Header
}

// New returns a client for the given base URL.
func New(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

// Options bundles the client configuration every consumer of the API
// shares — the HTTP transport (timeouts live on it), the retry policy,
// and static headers. It exists so the coordinator's per-worker
// clients and hidisc-bench's -remote client are built from one config
// value instead of drifting duplicated literals; construct clients
// from it with NewWithOptions or Targets.
type Options struct {
	// HTTPClient is the transport; nil means http.DefaultClient
	// (deliberately no overall timeout — simulations can run for
	// minutes; bound requests with a context).
	HTTPClient *http.Client
	// Retry is the backoff policy; nil disables retries.
	Retry *Backoff
	// Header holds static headers applied to every request.
	Header http.Header
}

// DefaultOptions is the production client configuration: the default
// transport and DefaultBackoff. The coordinator strips Retry from it
// (it owns re-routing itself, see Backoff's retryable-status table)
// but shares everything else.
func DefaultOptions() Options {
	return Options{Retry: DefaultBackoff()}
}

// NewWithOptions returns a client for base configured by o.
func NewWithOptions(base string, o Options) *Client {
	return &Client{
		BaseURL:    strings.TrimRight(base, "/"),
		HTTPClient: o.HTTPClient,
		Retry:      o.Retry,
		Header:     o.Header,
	}
}

// Targets builds one client per target URL from a single shared
// Options value — the fan-out constructor a coordinator uses for its
// worker fleet.
func Targets(bases []string, o Options) []*Client {
	cs := make([]*Client, len(bases))
	for i, b := range bases {
		cs[i] = NewWithOptions(b, o)
	}
	return cs
}

// withRetry runs op under the client's retry policy, if any.
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	if c.Retry == nil {
		return op()
	}
	return c.Retry.Do(ctx, op)
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server response in typed form.
type APIError struct {
	Status     int
	RetryAfter time.Duration // backoff hint on 429, else 0
	Wire       simserver.WireError
}

func (e *APIError) Error() string {
	return fmt.Sprintf("hidisc-serve: %s: %s", e.Wire.Kind, e.Wire.Message)
}

// Overloaded reports whether the server shed this request (retry after
// RetryAfter).
func (e *APIError) Overloaded() bool { return e.Status == http.StatusTooManyRequests }

// do issues one request and decodes error responses.
func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range c.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// Propagate the caller's request ID so a job forwarded by the
	// coordinator logs under one ID on both hops.
	if id := simserver.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	// When the caller is traced, open a client span for the outbound
	// call and inject its context as the traceparent header, so the
	// receiving server's span tree parents under this call. Untraced
	// callers pay exactly this one branch.
	csp := tracing.SpanFrom(ctx).Child("client " + method + " " + path)
	if csp != nil {
		csp.SetAttr("url", c.BaseURL)
		req.Header.Set("traceparent", csp.Traceparent())
	}
	resp, err := c.httpc().Do(req)
	if csp != nil {
		if err != nil {
			csp.SetAttr("error", err.Error())
		} else {
			csp.SetAttr("status", strconv.Itoa(resp.StatusCode))
		}
		csp.End()
	}
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

func decodeError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	var body simserver.ErrorBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 10<<20)).Decode(&body); err != nil {
		apiErr.Wire = simserver.WireError{
			Status: resp.StatusCode, Kind: "http",
			Message: fmt.Sprintf("HTTP %d with undecodable body: %v", resp.StatusCode, err),
		}
		return apiErr
	}
	apiErr.Wire = body.Err
	return apiErr
}

// Run submits one job and returns the server's response with the
// measurement still in its canonical raw encoding. With Retry set, the
// whole submission — connection, response, body — is retried per the
// policy, so a server restart mid-request costs a delay, not the job.
func (c *Client) Run(ctx context.Context, jr simserver.JobRequest) (simserver.JobResponse, error) {
	var out simserver.JobResponse
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", jr)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		out = simserver.JobResponse{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("decoding job response: %w", err)
		}
		return nil
	})
	if err != nil {
		return simserver.JobResponse{}, err
	}
	return out, nil
}

// BatchStream submits a batch and invokes fn for every NDJSON item as
// it arrives (completion order, not submission order). fn returning an
// error aborts the stream.
//
// BatchStream is deliberately single-shot even with Retry set: a
// retried stream would replay items fn has already seen. Use Batch (or
// Measurements), which absorbs replays by index, for retry semantics.
func (c *Client) BatchStream(ctx context.Context, br simserver.BatchRequest, fn func(simserver.BatchItem) error) error {
	resp, err := c.do(ctx, http.MethodPost, "/v1/batch", br)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item simserver.BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("decoding batch item: %w", err)
		}
		if err := fn(item); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Batch submits a batch and collects every item, reassembled into
// submission order. Per-job failures are returned as *APIError values
// in errs (indexed like items); the call itself fails only on
// transport or protocol errors.
//
// With Retry set, a failed attempt re-submits the whole batch: the
// server is content-addressed, so jobs that completed before a crash
// are answered from its cache or durable store instead of being
// re-simulated, and replayed items simply overwrite by index (results
// are deterministic, so a replay is byte-identical). That makes a
// kill -9 mid-batch cost one backoff delay plus only the unfinished
// jobs' simulation time.
func (c *Client) Batch(ctx context.Context, br simserver.BatchRequest) (items []simserver.BatchItem, errs []error, err error) {
	got := map[int]simserver.BatchItem{}
	err = c.withRetry(ctx, func() error {
		return c.BatchStream(ctx, br, func(it simserver.BatchItem) error {
			got[it.Index] = it
			return nil
		})
	})
	if err != nil {
		return nil, nil, err
	}
	for _, it := range got {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Index < items[j].Index })
	errs = make([]error, len(items))
	for i, it := range items {
		if it.Error != nil {
			errs[i] = &APIError{Status: it.Error.Status, Wire: *it.Error}
		}
	}
	return items, errs, nil
}

// Measurements runs a batch and decodes every measurement, failing on
// the first per-job error. The items' raw encodings are also returned
// for byte-identity checks against local runs.
func (c *Client) Measurements(ctx context.Context, br simserver.BatchRequest) ([]experiments.Measurement, []simserver.BatchItem, error) {
	items, errs, err := c.Batch(ctx, br)
	if err != nil {
		return nil, nil, err
	}
	ms := make([]experiments.Measurement, len(items))
	for i, it := range items {
		if errs[i] != nil {
			return nil, nil, fmt.Errorf("job %d: %w", i, errs[i])
		}
		if ms[i], err = it.Decode(); err != nil {
			return nil, nil, fmt.Errorf("job %d: %w", i, err)
		}
	}
	return ms, items, nil
}

// Healthz probes liveness (retried under the client's policy, so it
// doubles as "wait for the server to come back").
func (c *Client) Healthz(ctx context.Context) error {
	return c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	})
}

// Traces fetches the server's span ring (GET /v1/traces NDJSON),
// optionally filtered by request ID. An empty slice means the server
// has no matching spans (or tracing is off) — not an error.
func (c *Client) Traces(ctx context.Context, requestID string) ([]tracing.Span, error) {
	path := "/v1/traces"
	if requestID != "" {
		path += "?request=" + url.QueryEscape(requestID)
	}
	var spans []tracing.Span
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodGet, path, nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		spans = spans[:0]
		dec := json.NewDecoder(resp.Body)
		for {
			var s tracing.Span
			if err := dec.Decode(&s); err == io.EOF {
				return nil
			} else if err != nil {
				return err
			}
			spans = append(spans, s)
		}
	})
	if err != nil {
		return nil, err
	}
	return spans, nil
}

// Metrics fetches the server counters.
func (c *Client) Metrics(ctx context.Context) (simserver.MetricsSnapshot, error) {
	var m simserver.MetricsSnapshot
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		m = simserver.MetricsSnapshot{}
		return json.NewDecoder(resp.Body).Decode(&m)
	})
	if err != nil {
		return simserver.MetricsSnapshot{}, err
	}
	return m, nil
}
