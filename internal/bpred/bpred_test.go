package bpred

import (
	"math/rand"
	"testing"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(16)
	for i := 0; i < 10; i++ {
		b.Update(5, true)
	}
	if !b.Predict(5) {
		t.Error("did not learn taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(5, false)
	}
	if b.Predict(5) {
		t.Error("did not learn not-taken bias")
	}
}

func TestBimodalHysteresis(t *testing.T) {
	b := NewBimodal(16)
	// Saturate taken, then a single not-taken must not flip the
	// prediction (2-bit counter hysteresis).
	for i := 0; i < 4; i++ {
		b.Update(3, true)
	}
	b.Update(3, false)
	if !b.Predict(3) {
		t.Error("single contrary outcome flipped a saturated counter")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(16)
	// PCs 1 and 17 alias; training one trains the other.
	for i := 0; i < 4; i++ {
		b.Update(1, false)
	}
	if b.Predict(17) {
		t.Error("aliased entry not shared")
	}
}

func TestBimodalMispredictCounting(t *testing.T) {
	b := NewBimodal(16)
	// Initial state weakly taken: a not-taken outcome is a mispredict.
	b.Update(0, false)
	if got := b.Stats().Mispredicts; got != 1 {
		t.Errorf("mispredicts = %d, want 1", got)
	}
	b.Update(0, false) // now predicted not-taken: correct
	if got := b.Stats().Mispredicts; got != 1 {
		t.Errorf("mispredicts = %d, want 1", got)
	}
}

func TestBimodalPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-power-of-two size")
		}
	}()
	NewBimodal(3)
}

func TestGShareUsesHistory(t *testing.T) {
	g := NewGShare(256, 8)
	// Alternating branch at one PC: bimodal cannot learn it, gshare can
	// after warmup because the history disambiguates the two contexts.
	outcome := false
	for i := 0; i < 64; i++ {
		g.Update(10, outcome)
		outcome = !outcome
	}
	correct := 0
	for i := 0; i < 64; i++ {
		if g.Predict(10) == outcome {
			correct++
		}
		g.Update(10, outcome)
		outcome = !outcome
	}
	if correct < 60 {
		t.Errorf("gshare learned alternating pattern %d/64", correct)
	}
}

func TestTakenPredictor(t *testing.T) {
	p := NewTaken()
	if !p.Predict(1) {
		t.Error("Taken predicted not-taken")
	}
	p.Update(1, false)
	p.Update(1, true)
	if p.Stats().Mispredicts != 1 {
		t.Errorf("mispredicts = %d, want 1", p.Stats().Mispredicts)
	}
}

func TestMispredictRate(t *testing.T) {
	s := Stats{Lookups: 10, Mispredicts: 3}
	if got := s.MispredictRate(); got != 0.3 {
		t.Errorf("rate = %v", got)
	}
	if (Stats{}).MispredictRate() != 0 {
		t.Error("empty stats rate should be 0")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(8)
	if _, ok := b.Lookup(5); ok {
		t.Error("cold BTB hit")
	}
	b.Update(5, 100)
	if tgt, ok := b.Lookup(5); !ok || tgt != 100 {
		t.Errorf("lookup = %d,%v", tgt, ok)
	}
	// Aliased PC evicts.
	b.Update(13, 200)
	if _, ok := b.Lookup(5); ok {
		t.Error("aliased entry survived")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Errorf("pop = %d,%v, want 2", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Errorf("pop = %d,%v, want 1", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop on empty RAS succeeded")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
}

func TestPredictorAccuracyOnBiasedStream(t *testing.T) {
	// A 90%-taken random stream: bimodal should be close to 90% accurate.
	rng := rand.New(rand.NewSource(3))
	b := NewBimodal(2048)
	correct, total := 0, 20000
	for i := 0; i < total; i++ {
		pc := rng.Intn(512)
		taken := rng.Float64() < 0.9
		if b.Predict(pc) == taken {
			correct++
		}
		b.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("bimodal accuracy %.3f on 90%% biased stream", acc)
	}
}
