// Package bpred implements the branch predictors used by the cores.
// The paper's configuration is a bimodal predictor with a 2048-entry
// table of 2-bit saturating counters (Table 1); a gshare variant is
// provided for ablation studies, and a small return-address stack plus
// branch target buffer predict indirect jumps.
package bpred

// Predictor predicts conditional branch directions and is trained with
// resolved outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc
	// (an instruction index).
	Predict(pc int) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc int, taken bool)
	// Stats returns prediction counters.
	Stats() Stats
}

// Stats counts predictor performance.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// MispredictRate returns mispredicts per lookup.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	table []uint8
	mask  int
	stats Stats
}

// NewBimodal returns a bimodal predictor with the given table size,
// which must be a power of two. Counters initialise to weakly taken,
// matching SimpleScalar.
func NewBimodal(size int) *Bimodal {
	if size <= 0 || size&(size-1) != 0 {
		panic("bpred: bimodal size must be a positive power of two")
	}
	t := make([]uint8, size)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: size - 1}
}

// Predict returns true when the counter's top bit is set.
func (b *Bimodal) Predict(pc int) bool {
	b.stats.Lookups++
	return b.table[pc&b.mask] >= 2
}

// Update trains the counter and counts mispredicts against the
// prediction the table would make now (standard counter training).
func (b *Bimodal) Update(pc int, taken bool) {
	c := &b.table[pc&b.mask]
	if (*c >= 2) != taken {
		b.stats.Mispredicts++
	}
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Stats returns prediction counters.
func (b *Bimodal) Stats() Stats { return b.stats }

// GShare is a global-history-xor-PC indexed table of 2-bit counters;
// provided for the predictor ablation bench.
type GShare struct {
	table   []uint8
	mask    int
	history uint32
	bits    uint
	stats   Stats
}

// NewGShare returns a gshare predictor with the given table size
// (power of two) and history length in bits.
func NewGShare(size int, historyBits uint) *GShare {
	if size <= 0 || size&(size-1) != 0 {
		panic("bpred: gshare size must be a positive power of two")
	}
	t := make([]uint8, size)
	for i := range t {
		t[i] = 2
	}
	return &GShare{table: t, mask: size - 1, bits: historyBits}
}

func (g *GShare) index(pc int) int {
	return (pc ^ int(g.history)) & g.mask
}

// Predict returns the predicted direction.
func (g *GShare) Predict(pc int) bool {
	g.stats.Lookups++
	return g.table[g.index(pc)] >= 2
}

// Update trains the counter and shifts the outcome into the history.
func (g *GShare) Update(pc int, taken bool) {
	c := &g.table[g.index(pc)]
	if (*c >= 2) != taken {
		g.stats.Mispredicts++
	}
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
	g.history = (g.history << 1) & ((1 << g.bits) - 1)
	if taken {
		g.history |= 1
	}
}

// Stats returns prediction counters.
func (g *GShare) Stats() Stats { return g.stats }

// Taken always predicts taken; used for the CMP's simple in-order
// engine and as a degenerate baseline.
type Taken struct{ stats Stats }

// NewTaken returns an always-taken predictor.
func NewTaken() *Taken { return &Taken{} }

// Predict returns true.
func (p *Taken) Predict(int) bool { p.stats.Lookups++; return true }

// Update counts mispredicts only.
func (p *Taken) Update(_ int, taken bool) {
	if !taken {
		p.stats.Mispredicts++
	}
}

// Stats returns prediction counters.
func (p *Taken) Stats() Stats { return p.stats }

// BTB is a direct-mapped branch target buffer for indirect jumps.
type BTB struct {
	tags    []int
	targets []int
	mask    int
}

// NewBTB returns a BTB with the given number of entries (power of two).
func NewBTB(size int) *BTB {
	if size <= 0 || size&(size-1) != 0 {
		panic("bpred: BTB size must be a positive power of two")
	}
	b := &BTB{tags: make([]int, size), targets: make([]int, size), mask: size - 1}
	for i := range b.tags {
		b.tags[i] = -1
	}
	return b
}

// Lookup returns the predicted target for the indirect jump at pc.
func (b *BTB) Lookup(pc int) (target int, ok bool) {
	i := pc & b.mask
	if b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the resolved target.
func (b *BTB) Update(pc, target int) {
	i := pc & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}

// RAS is a return-address stack predicting JR-through-RA returns.
type RAS struct {
	stack []int
	top   int
}

// NewRAS returns a return-address stack with the given depth.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("bpred: RAS depth must be positive")
	}
	return &RAS{stack: make([]int, depth)}
}

// Push records a return address at a call.
func (r *RAS) Push(ret int) {
	r.stack[r.top%len(r.stack)] = ret
	r.top++
}

// Pop predicts the target of a return. It reports false when empty.
func (r *RAS) Pop() (int, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%len(r.stack)], true
}
