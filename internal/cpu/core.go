// Package cpu implements the cycle-level processor models: an
// out-of-order superscalar core in the style of SimpleScalar's
// sim-outorder (register-update-unit window, load/store queue,
// functional unit pools, bimodal branch prediction) extended with the
// HiDISC architectural-queue operands, plus the simple multithreaded
// in-order engine used as the Cache Management Processor.
package cpu

import (
	"fmt"
	"math"
	"math/bits"

	"hidisc/internal/bpred"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
	"hidisc/internal/simfault"
)

// Config parameterises one out-of-order core.
type Config struct {
	Name        string
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	WindowSize  int // RUU entries
	LSQSize     int
	IFQSize     int

	IntALU   int // integer ALUs (also execute branches and queue ops)
	IntMulDv int // integer multiply/divide units
	FPALU    int // FP adders (also compares, converts, moves)
	FPMulDv  int // FP multiply/divide units
	MemPorts int // cache ports (loads at issue, stores at commit)

	// HasMem permits load/store execution; the Computation Processor
	// of the decoupled configurations has no memory access.
	HasMem bool
	// Prefetching marks this core's memory accesses as prefetches in
	// the hierarchy statistics (the CMP).
	Prefetching bool
	// EnableTriggers forks CMAS threads at trigger annotations.
	EnableTriggers bool
	// BlockingSCQ makes GETSCQ wait for a slip-control credit (the
	// paper's literal Figure 3 handshake). The default is non-blocking
	// consumption: the CMP's run-ahead stays bounded by the SCQ
	// capacity, but a prefetcher slower than the Access Processor can
	// never throttle it.
	BlockingSCQ bool
	// JCQMap translates JCQ tokens (producer coordinates) into this
	// core's program coordinates; identity when nil.
	JCQMap []int

	// Tracer, when non-nil, receives pipeline events (see trace.go).
	Tracer Tracer

	// ForceMispredict, when non-nil, is asked at each conditional-
	// branch fetch whether to invert the prediction; wired by the
	// fault injector's mispredict storms. Nil costs one pointer check
	// per fetched branch (pinned by the AllocsPerRun tests).
	ForceMispredict func(now int64) bool

	PredictorKind string // "bimodal" (default), "gshare", or "taken"
	PredictorSize int    // predictor table entries (default 2048)
	BTBSize       int    // default 64
	RASDepth      int    // default 8
}

func (c Config) withDefaults() Config {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&c.FetchWidth, 8)
	def(&c.IssueWidth, 8)
	def(&c.CommitWidth, 8)
	def(&c.WindowSize, 64)
	def(&c.LSQSize, 32)
	def(&c.IFQSize, 16)
	def(&c.IntALU, 4)
	def(&c.IntMulDv, 1)
	def(&c.FPALU, 4)
	def(&c.FPMulDv, 1)
	def(&c.MemPorts, 2)
	def(&c.PredictorSize, 2048)
	def(&c.BTBSize, 64)
	def(&c.RASDepth, 8)
	return c
}

// QueueSet wires a core to the architectural queues it may consume
// (Pop) and produce (Push), and to the per-CMAS slip-control queues.
type QueueSet struct {
	Pop  map[isa.Reg]*queue.Queue
	Push map[isa.Reg]*queue.Queue
	SCQ  []*queue.Queue
}

// Stats counts core events.
type Stats struct {
	Cycles            int64
	Committed         uint64
	CommittedLoads    uint64
	CommittedStores   uint64
	CommittedBranch   uint64
	Mispredicts       uint64
	FetchStalls       int64
	DispatchStalls    int64 // window or LSQ full
	QueueWaitCycles   int64 // oldest entry waiting on an architectural queue
	MemWaitCycles     int64 // oldest entry waiting on a cache access
	CommitQueueStall  int64 // commit blocked by a full output queue
	Squashed          uint64
	DispatchRedirects uint64 // BCQ/JCQ resolved at dispatch against the fetch direction
}

// Handle names a window entry without holding a pointer to it: the low
// 16 bits are the entry's ring slot, the high 16 its generation at the
// time the handle was taken. The slot's generation bumps whenever its
// occupant departs the window (commit or squash), so a stale handle —
// one taken on an occupant that has since departed — fails the
// generation compare on dereference and reads as "gone" instead of
// aliasing the slot's next occupant. Every cross-structure reference
// (rename table, LSQ order, producer→consumer waiter lists, the
// push-release list, parked queue claims) is a Handle, which is what
// lets the window itself be a flat []entry the per-cycle scans walk
// without pointer chasing.
type Handle uint32

// NoHandle is the nil Handle; its slot field (0xffff) is reserved —
// New rejects window sizes that could allocate it.
const NoHandle Handle = ^Handle(0)

// String renders a handle as slot.generation for trace consumers.
func (h Handle) String() string {
	if h == NoHandle {
		return "none"
	}
	return fmt.Sprintf("w%d.g%d", uint32(h)&0xffff, uint32(h)>>16)
}

// at dereferences a handle: the live entry it names, or nil if that
// entry has departed the window. A matching generation proves liveness
// by itself — the generation bumps at departure, so no range check
// against head/tail is needed.
func (c *Core) at(h Handle) *entry {
	slot := uint32(h) & 0xffff
	if slot > c.winMask {
		return nil
	}
	e := &c.win[slot]
	if e.gen != uint16(uint32(h)>>16) {
		return nil
	}
	return e
}

type srcOperand struct {
	val      uint64
	qseq     int64
	qref     *queue.Queue
	producer Handle
	reg      isa.Reg
	ready    bool
}

// entry is one window slot, held by value in the core's ring. Fields
// are ordered so the scalars the per-cycle scans touch (issue,
// writeback, commit) share the leading cache lines; the large srcsBuf
// array sits at the end. slot is fixed at construction; gen only ever
// increments (at window departure).
type entry struct {
	seq        int64
	completeAt int64
	result     uint64

	pc         int
	predNext   int
	actualNext int

	// memory
	addr uint32

	slot, gen uint16

	dest isa.Reg

	// nsrc counts operands in srcsBuf (including GETSCQ's hidden
	// slip-control credit); nready counts those whose ready flag is
	// set, so the issue scan skips the per-source loop for the common
	// entry whose operands have all arrived.
	nsrc   uint8
	nready int8

	issued    bool
	completed bool

	// control
	isCtl bool
	taken bool

	isLoad, isStore bool
	addrReady       bool

	// pushed: queue pushes already released (at completion or commit)
	pushed bool

	execErr error

	srcsBuf [isa.MaxSources + 1]srcOperand // +1 for GETSCQ's hidden credit
}

// handle returns the entry's current identity.
func (e *entry) handle() Handle { return Handle(uint32(e.gen)<<16 | uint32(e.slot)) }

// fetched carries a fetch-queue slot; the instruction itself is
// re-read from the immutable program at dispatch (prog.Insts[pc]), so
// the IFQ never copies Inst structs around.
type fetched struct {
	pc       int
	predNext int
}

type fuPool struct {
	busyUntil []int64
	// freeAt caches the earliest unit-free time observed at the last
	// failed acquire. busyUntil entries only ever grow (acquire and
	// StallMemPorts both extend them), so any attempt before freeAt
	// must fail again — repeated failed acquires from a saturated
	// issue scan become one compare instead of a pool scan. A stale-
	// low freeAt is harmless: it only costs the scan it skipped.
	freeAt int64
}

func (f *fuPool) acquire(now int64, occupy int64) bool {
	if now < f.freeAt {
		return false
	}
	for i := range f.busyUntil {
		if f.busyUntil[i] <= now {
			f.busyUntil[i] = now + occupy
			return true
		}
	}
	f.freeAt = f.nextFree()
	return false
}

// nextFree returns the earliest cycle a unit comes free; only
// meaningful right after a failed acquire (every unit busy past now).
func (f *fuPool) nextFree() int64 {
	t := int64(math.MaxInt64)
	for _, b := range f.busyUntil {
		if b < t {
			t = b
		}
	}
	return t
}

// dec caches every Op-derived predicate the per-cycle stages need for
// one static instruction. The program never changes after construction,
// so decoding each dispatched instance again (SourceList, IsMem, Dest,
// functional-unit class) was pure per-cycle overhead — on memory-bound
// runs it dominated the dispatch stage's profile.
type dec struct {
	src     [isa.MaxSources]isa.Reg
	nsrc    uint8
	pool    int8  // functional-unit pool id (poolNone..poolMem)
	ctlKind uint8 // fetch steering kind (ctlNone..ctlCond)
	commit  uint8 // commit side effect (ckNone..ckHalt)
	isMem   bool
	isCtl   bool
	isLoad  bool
	isStore bool
	hasPush bool // pushes to any architectural queue at commit/release
	hasQSrc bool // claims a queue operand (incl. GETSCQ's hidden credit)

	// Commit/dispatch predicates that were re-derived from the Op and
	// annotation bits on every committed instance.
	updatesPred bool // conditional branch trained into the predictor
	updatesBTB  bool // indirect jump recorded in the BTB
	isGetSCQ    bool
	consumeSCQ  bool // AnnConsumeSCQ (or GETSCQ in non-blocking mode)
	trigger     bool // AnnTrigger
	noExec      bool // NOP/HALT: completed at dispatch
	isCQCtl     bool // BCQ/JCQ: control-queue steered

	// Push-plan and execute predicates, so the hot paths never touch
	// the Inst struct at all.
	tapLDQ   bool // AnnTapLDQ
	tapSDQ   bool // AnnTapSDQ
	pushCQ   bool // AnnPushCQ
	isPutSCQ bool
	isCondBr bool

	scqID  int32 // slip-control queue id for consumeSCQ/isGetSCQ
	cmasID int32 // trigger target (AnnTrigger)
	imm    int32

	op     isa.Op
	dest   isa.Reg
	target int    // direct-control target
	msize  uint32 // memory access width in bytes
	lat    int64  // result latency in cycles
	occupy int64  // pool reservation in cycles (latency if unpipelined)
}

// Functional-unit pool ids in dec.pool.
const (
	poolNone = int8(iota)
	poolIntALU
	poolIntMulDv
	poolFPALU
	poolFPMulDv
	poolMem
)

// Fetch steering kinds in dec.ctlKind.
const (
	ctlNone     = uint8(iota)
	ctlHalt     // stop fetching
	ctlJ        // unconditional direct jump
	ctlJAL      // direct call: push return address
	ctlCQBranch // BCQ: steer by a peeked control-queue token
	ctlCQJump   // JCQ: steer by a peeked control-queue token
	ctlJR       // indirect jump: BTB
	ctlJRRA     // return: RAS, then BTB
	ctlJALR     // indirect call: BTB, push return address
	ctlCond     // conditional branch: predictor
)

// Commit side effects in dec.commit.
const (
	ckNone = uint8(iota)
	ckOut
	ckOutf
	ckHalt
)

// decodeProg builds the static decode table for a program: every
// Op- or annotation-derived fact the per-cycle stages need, resolved
// once, so fetch, dispatch and commit never re-derive predicates per
// dispatched instance.
func decodeProg(insts []isa.Inst) []dec {
	t := make([]dec, len(insts))
	for i, in := range insts {
		d := &t[i]
		src, n := in.SourceList()
		d.src = src
		d.nsrc = uint8(n)
		d.op = in.Op
		d.imm = in.Imm
		d.isMem = in.Op.IsMem()
		d.isCtl = in.Op.IsControl()
		d.isLoad = in.Op.IsLoad() || in.Op == isa.PREF
		d.isStore = in.Op.IsStore()
		d.dest = in.Dest()
		d.msize = uint32(memSize(in.Op))
		d.tapLDQ = in.Ann.Has(isa.AnnTapLDQ)
		d.tapSDQ = in.Ann.Has(isa.AnnTapSDQ)
		d.pushCQ = in.Ann.Has(isa.AnnPushCQ)
		d.isPutSCQ = in.Op == isa.PUTSCQ
		d.isCondBr = in.Op.IsCondBranch()
		d.hasPush = d.dest.IsQueue() || d.isPutSCQ || d.tapLDQ || d.tapSDQ || d.pushCQ
		d.hasQSrc = in.Op == isa.GETSCQ
		for si := 0; si < n; si++ {
			if src[si].IsQueue() {
				d.hasQSrc = true
			}
		}
		d.updatesPred = d.isCondBr && in.Op != isa.BCQ
		d.updatesBTB = in.Op.IsIndirect()
		d.isGetSCQ = in.Op == isa.GETSCQ
		d.consumeSCQ = in.Ann.Has(isa.AnnConsumeSCQ)
		d.trigger = in.Ann.Has(isa.AnnTrigger)
		if d.trigger {
			d.cmasID = int32(in.Ann.CMASID())
		}
		d.noExec = in.Op == isa.NOP || in.Op == isa.HALT
		d.isCQCtl = in.Op == isa.BCQ || in.Op == isa.JCQ
		if d.isGetSCQ {
			d.scqID = in.Imm
		} else if d.consumeSCQ {
			d.scqID = int32(in.Ann.CMASID())
		}
		if in.Op.IsDirectControl() {
			d.target = in.Target()
		}
		switch in.Op {
		case isa.HALT:
			d.ctlKind = ctlHalt
		case isa.J:
			d.ctlKind = ctlJ
		case isa.JAL:
			d.ctlKind = ctlJAL
		case isa.BCQ:
			d.ctlKind = ctlCQBranch
		case isa.JCQ:
			d.ctlKind = ctlCQJump
		case isa.JR:
			d.ctlKind = ctlJR
			if in.Rs == isa.RA {
				d.ctlKind = ctlJRRA
			}
		case isa.JALR:
			d.ctlKind = ctlJALR
		default:
			if in.Op.IsCondBranch() {
				d.ctlKind = ctlCond
			}
		}
		switch in.Op {
		case isa.OUT:
			d.commit = ckOut
		case isa.OUTF:
			d.commit = ckOutf
		case isa.HALT:
			d.commit = ckHalt
		}
		cl := in.Op.Class()
		d.lat = int64(cl.Latency())
		d.occupy = 1
		if !cl.Pipelined() {
			d.occupy = d.lat
		}
		switch cl {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassQueue:
			d.pool = poolIntALU
		case isa.ClassIntMul, isa.ClassIntDiv:
			d.pool = poolIntMulDv
		case isa.ClassFPAdd:
			d.pool = poolFPALU
		case isa.ClassFPMul, isa.ClassFPDiv:
			d.pool = poolFPMulDv
		case isa.ClassLoad, isa.ClassStore:
			d.pool = poolMem
		}
	}
	return t
}

// pushRef is one push-release list slot: the producing entry by handle
// plus its dispatch seq, which disambiguates a wrapped generation (the
// handle alone repeats every 65536 departures of a slot; the seq never
// repeats).
type pushRef struct {
	seq int64
	h   Handle
}

// Core is one out-of-order processor.
type Core struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory
	hier *mem.Hierarchy
	qs   QueueSet

	// deco is the static decode table, indexed by instruction pc (fetch
	// only enqueues in-range pcs, so every in-flight entry has one).
	deco []dec

	// popQ/pushQ mirror qs.Pop and qs.Push as dense arrays indexed by
	// register number: the dispatch and push paths hit them for every
	// queue operand, where a map lookup (hash + bucket walk) is
	// measurable at simulation scale.
	popQ, pushQ [int(isa.RegSCQ) + 1]*queue.Queue

	// minComplete is a lower bound on the earliest completeAt of any
	// issued-but-incomplete entry; writeback skips its window scan
	// entirely while now is below it. Pending completion times never
	// change once set, so the bound only goes stale in the safe
	// direction (too low → a wasted scan, never a missed completion).
	minComplete int64

	intR [isa.NumIntRegs]uint32
	fpR  [isa.NumFPRegs]float64

	pc           int
	fetchStopped bool
	fetchCQPeek  int // control-queue tokens consumed by instructions still in the IFQ
	nextSeq      int64

	// The window is a power-of-two ring of value-typed entries; winHead
	// and winTail are absolute position counters (position & winMask is
	// the slot). The backing array never moves after New, so *entry
	// pointers taken within a cycle stay valid; only Handles may be
	// stored across cycles. stat, due and waiters are per-slot side
	// arrays: stat packs the issued/completed/ctl flags the issue,
	// writeback and wakeup scans test (skipping an entry then touches
	// one byte, not a cold 200-byte struct), due mirrors completeAt,
	// and waiters lists the in-window consumers parked on the slot's
	// occupant as an operand producer.
	win     []entry
	winMask uint32
	winHead int64
	winTail int64
	stat    []uint8
	due     []int64
	waiters [][]Handle

	// lsqRing holds the window handles of in-flight memory operations
	// in program order (same absolute-position ring discipline).
	lsqRing []Handle
	lsqMask uint32
	lsqHead int64
	lsqTail int64

	// ifq is the fetch-queue ring.
	ifq     []fetched
	ifqMask uint32
	ifqHead int64
	ifqTail int64

	// nUnissued counts window entries not yet issued, so the issue scan
	// can stop as soon as it has visited all of them instead of walking
	// the issued-waiting-commit tail of the window every cycle.
	// nInflight counts issued-but-incomplete entries the same way for
	// the writeback scan. issueHead is the window position of the first
	// unissued entry (entries never revert to unissued in the window),
	// so the issue scan also skips the issued prefix stuck behind a
	// blocked head.
	nUnissued int
	nInflight int
	issueHead int64

	// Slot bitmaps (active when bmOK, i.e. the window ring fits in 64
	// slots — every shipped configuration; larger windows fall back to
	// the counted linear scans). Bit s describes the occupant of slot s:
	//   readyBm    — unissued entries the issue scan could advance. An
	//                entry proven operand-blocked drops out and is put
	//                back by the wake that delivers the operand
	//                (wakeWaiters or queueWake); entries blocked on
	//                anything else — LSQ disambiguation, a busy
	//                functional unit or cache port — stay in and are
	//                re-visited, exactly as the linear scan would.
	//   inflightBm — issued but not completed (the writeback scan).
	//   ctlBm      — control entries not yet resolved (the
	//                releasePushes oldest-unresolved-branch probe).
	// The scans rotate a bitmap so bit 0 is the window head and iterate
	// set bits, which preserves program order — completion order is
	// architecturally visible (the oldest mispredicted branch must
	// squash first).
	bmOK       bool
	bmSize     uint32
	bmMask     uint64
	readyBm    uint64
	inflightBm uint64
	ctlBm      uint64

	// Issue-scan gate. A cycle's issue scan can only make progress if
	// something changed since the last one: a register operand arrived
	// (writeback completion), a queue mutated anywhere (machine epoch),
	// an entry was dispatched or squashed, a store left the LSQ at
	// commit, or a busy functional unit / cache port came free (the
	// scan records the earliest such time in issueRetryAt when an
	// acquire fails). issueClean is true only when the previous scan
	// issued nothing, so a skipped scan is provably a no-op — it would
	// have mutated nothing and issued nothing. Gating requires the
	// machine epoch (fastIdle); the NoSkip reference loop always scans.
	issueClean   bool
	issueEpoch   int64
	issueRetryAt int64
	// nCtlPending counts unresolved control entries so releasePushes can
	// skip its oldest-unresolved-branch scan when no branch is in flight.
	nCtlPending int

	// rename maps an architectural register to its youngest in-window
	// producer: a dense array indexed by register number (int and FP
	// registers share the 0..63 space). Invariant: it holds only live
	// handles — commit clears its own entry, squash rebuilds the table
	// from survivors — so dispatch dereferences without a staleness
	// check.
	rename [isa.NumIntRegs + isa.NumFPRegs]Handle

	// pushScratch backs pushPlan's result between calls.
	pushScratch []pushOp

	// pushList holds queue-producing entries in program order; pushes
	// release as soon as an entry has completed non-speculatively, so
	// the consumer stream is fed without waiting for the producer's
	// commit (which may itself be waiting on the consumer).
	pushList []pushRef
	pushHead int

	intALU, intMulDv, fpALU, fpMulDv, memPorts fuPool

	// pools maps dec.pool ids to the pools above (nil for poolNone), so
	// the issue path indexes instead of branching through a switch.
	pools [poolMem + 1]*fuPool

	pred bpred.Predictor
	btb  *bpred.BTB
	ras  *bpred.RAS

	halted bool
	output []string
	stats  Stats

	// worked marks that the current Cycle changed machine state beyond
	// the per-cycle stall counters; idleDelta records which of those
	// counters the cycle incremented. Together they let CycleEv prove a
	// cycle idle (the next cycle with unchanged inputs replays it
	// exactly) and let CreditIdle account fast-forwarded cycles
	// bit-identically to ticked ones.
	worked    bool
	idleDelta idleStalls

	// Per-core idle fast path. After a proven-idle cycle the core
	// records its local wakeup (idleUntil) and a snapshot of the
	// machine-wide queue epoch (idleEpoch). While now < idleUntil and
	// the epoch is unchanged, every tick is an exact replay of that
	// idle cycle, so CycleEv applies idleDelta in O(1) instead of
	// re-running the pipeline scans. This is what makes a core that is
	// blocked behind the prefetch engine (or the other core) cheap even
	// though the machine clock keeps ticking for the busy component.
	// Enabled by AttachEvents; the no-skip reference path never sets it.
	epoch     *int64
	fastIdle  bool
	idleValid bool
	idleUntil int64
	idleEpoch int64

	// recentPCs rings the last committed program counters for fault
	// forensics (oldest overwritten first); recentLen counts total
	// commits recorded.
	recentPCs [recentPCDepth]int32
	recentLen uint64

	// OnTrigger, when set, is invoked at dispatch of a trigger-
	// annotated instruction with the CMAS id and the committed
	// architectural register context. The arrays are passed by
	// pointer to keep the dispatch path copy-free; the callee must
	// copy what it keeps and not retain the pointers.
	OnTrigger func(id int, ir *[isa.NumIntRegs]uint32, fr *[isa.NumFPRegs]float64)
}

// pow2at rounds n up to the next power of two (minimum 1).
func pow2at(n int) int {
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// New builds a core executing prog against the shared memory image and
// hierarchy.
func New(cfg Config, prog *isa.Program, m *mem.Memory, h *mem.Hierarchy, qs QueueSet) *Core {
	cfg = cfg.withDefaults()
	if cfg.WindowSize > 1<<15 || cfg.LSQSize > 1<<15 || cfg.IFQSize > 1<<15 {
		panic("cpu: structure sizes beyond 1<<15 do not fit the 16-bit handle slot")
	}
	mk := func(n int) fuPool { return fuPool{busyUntil: make([]int64, n)} }
	c := &Core{
		cfg:      cfg,
		prog:     prog,
		mem:      m,
		hier:     h,
		qs:       qs,
		pc:       prog.Entry,
		intALU:   mk(cfg.IntALU),
		intMulDv: mk(cfg.IntMulDv),
		fpALU:    mk(cfg.FPALU),
		fpMulDv:  mk(cfg.FPMulDv),
		memPorts: mk(cfg.MemPorts),
		pred:     newPredictor(cfg),
		btb:      bpred.NewBTB(cfg.BTBSize),
		ras:      bpred.NewRAS(cfg.RASDepth),
	}
	c.deco = decodeProg(prog.Insts)
	winSize := pow2at(cfg.WindowSize)
	c.win = make([]entry, winSize)
	c.winMask = uint32(winSize - 1)
	for i := range c.win {
		c.win[i].slot = uint16(i)
	}
	c.stat = make([]uint8, winSize)
	c.due = make([]int64, winSize)
	c.waiters = make([][]Handle, winSize)
	if winSize <= 64 {
		c.bmOK = true
		c.bmSize = uint32(winSize)
		if winSize == 64 {
			c.bmMask = ^uint64(0)
		} else {
			c.bmMask = uint64(1)<<winSize - 1
		}
	}
	lq := pow2at(cfg.LSQSize)
	c.lsqRing = make([]Handle, lq)
	c.lsqMask = uint32(lq - 1)
	fq := pow2at(cfg.IFQSize)
	c.ifq = make([]fetched, fq)
	c.ifqMask = uint32(fq - 1)
	for i := range c.rename {
		c.rename[i] = NoHandle
	}
	for r, q := range qs.Pop {
		if int(r) < len(c.popQ) {
			c.popQ[r] = q
		}
	}
	for r, q := range qs.Push {
		if int(r) < len(c.pushQ) {
			c.pushQ[r] = q
		}
	}
	// Register the push-wakeup callback on every queue this core can
	// claim from: the consumer queues and the slip-control queues
	// (GETSCQ's hidden credit in blocking mode). A queue has exactly
	// one claiming core, so a single wake function per queue suffices.
	wake := c.queueWake
	for _, q := range c.popQ {
		if q != nil {
			q.SetWake(wake)
		}
	}
	for _, q := range qs.SCQ {
		if q != nil {
			q.SetWake(wake)
		}
	}
	c.pools = [poolMem + 1]*fuPool{
		poolIntALU:   &c.intALU,
		poolIntMulDv: &c.intMulDv,
		poolFPALU:    &c.fpALU,
		poolFPMulDv:  &c.fpMulDv,
		poolMem:      &c.memPorts,
	}
	c.intR[isa.SP] = isa.StackTop
	return c
}

func newPredictor(cfg Config) bpred.Predictor {
	switch cfg.PredictorKind {
	case "", "bimodal":
		return bpred.NewBimodal(cfg.PredictorSize)
	case "gshare":
		return bpred.NewGShare(cfg.PredictorSize, 8)
	case "taken":
		return bpred.NewTaken()
	}
	panic(fmt.Sprintf("cpu: unknown predictor kind %q", cfg.PredictorKind))
}

// PredictorStats returns the branch predictor's counters.
func (c *Core) PredictorStats() bpred.Stats { return c.pred.Stats() }

// Halted reports whether the core has committed HALT.
func (c *Core) Halted() bool { return c.halted }

// Stats returns the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// CommittedCount returns the committed-instruction counter alone. The
// machine watchdog polls it every visited cycle; returning the whole
// Stats struct there copied ~136 bytes per core per cycle.
func (c *Core) CommittedCount() uint64 { return c.stats.Committed }

// Output returns values printed by OUT/OUTF at commit, in order.
func (c *Core) Output() []string { return c.output }

// Name returns the configured core name.
func (c *Core) Name() string { return c.cfg.Name }

// SnapshotRegs returns the committed architectural register state.
func (c *Core) SnapshotRegs() ([isa.NumIntRegs]uint32, [isa.NumFPRegs]float64) {
	return c.intR, c.fpR
}

// IntReg returns a committed integer register value (tests).
func (c *Core) IntReg(r isa.Reg) uint32 { return c.intR[r] }

// queueWake is the push-wakeup callback registered on every queue this
// core claims from: when a claimed value arrives (Push) or the queue
// closes, the queue calls back with the tag parked at claim time —
// handle<<2 | source-index — and the operand resolves immediately
// instead of the issue scan polling Ready per cycle. The handle check
// drops wakes for squashed consumers; the Ready re-check makes any
// surviving resolution semantically correct even for a stale tag that
// collides with a live claim (resolving a genuinely-ready claim early
// is always valid — commit re-verifies readiness independently).
func (c *Core) queueWake(tag uint64) {
	e := c.at(Handle(tag >> 2))
	if e == nil {
		return
	}
	s := &e.srcsBuf[tag&3]
	if s.ready || s.qref == nil || !s.qref.Ready(s.qseq) {
		return
	}
	s.val = s.qref.ValueAt(s.qseq)
	s.ready = true
	e.nready++
	c.readyBm |= uint64(1) << e.slot // back to being an issue candidate
	c.issueClean = false
	c.worked = true
}

// idleStalls is the set of stall counters an idle cycle may bump (at
// most once each per cycle). An idle cycle changes nothing else, so
// later idle cycles with unchanged inputs bump exactly the same set —
// which is what makes crediting a fast-forwarded span exact.
// Flags packed into Core.stat, one byte per window slot.
const (
	stIssued uint8 = 1 << iota
	stCompleted
	stCtl
)

type idleStalls struct {
	fetch       int64
	dispatch    int64
	queueWait   int64
	memWait     int64
	commitQueue int64
}

// Cycle advances the core by one clock. Stage order models the
// pipeline flowing from commit back to fetch, so results propagate
// with realistic one-cycle stage separation.
func (c *Core) Cycle(now int64) error {
	_, err := c.CycleEv(now)
	return err
}

// CycleEv advances the core by one clock and returns the earliest
// future cycle at which this core can possibly change state again
// (its next event). The contract the machine's fast-forward relies on:
// if every component reports a wakeup > now+1, every cycle strictly
// before the minimum wakeup is an exact replay of this one (stall
// counters included), so they may be skipped and credited via
// CreditIdle. A core that did any work this cycle reports now+1; a
// core waiting only on another core (an architectural queue) reports
// math.MaxInt64 and relies on the producer's own wakeup to resume the
// clock.
// AttachEvents wires the machine-wide queue-mutation epoch into the
// core and enables the O(1) idle fast path (see the field comment).
// The naive reference loop (Config.NoSkip) does not call it.
func (c *Core) AttachEvents(epoch *int64) {
	c.epoch = epoch
	c.fastIdle = epoch != nil
}

func (c *Core) CycleEv(now int64) (int64, error) {
	if c.halted {
		return math.MaxInt64, nil
	}
	if c.idleValid {
		if *c.epoch == c.idleEpoch && now < c.idleUntil {
			// Provable replay of the last ticked idle cycle: no queue
			// anywhere has changed (epoch) and no local timer — an
			// in-flight completion or a reservation expiry — has fired
			// (idleUntil). Injected port stalls only lengthen
			// reservations, which cannot invalidate an idle replay.
			c.stats.Cycles++
			c.stats.FetchStalls += c.idleDelta.fetch
			c.stats.DispatchStalls += c.idleDelta.dispatch
			c.stats.QueueWaitCycles += c.idleDelta.queueWait
			c.stats.MemWaitCycles += c.idleDelta.memWait
			c.stats.CommitQueueStall += c.idleDelta.commitQueue
			return c.idleUntil, nil
		}
		c.idleValid = false
	}
	// Snapshot only the counters the idle-delta computation and the
	// self-healing guard below compare — copying the whole Stats
	// struct per ticked cycle was measurable.
	fs := struct {
		fetch, dispatch, queueWait, memWait, commitQueue int64
		committed, mispredicts, squashed, redirects      uint64
	}{
		c.stats.FetchStalls, c.stats.DispatchStalls, c.stats.QueueWaitCycles,
		c.stats.MemWaitCycles, c.stats.CommitQueueStall,
		c.stats.Committed, c.stats.Mispredicts, c.stats.Squashed, c.stats.DispatchRedirects,
	}
	c.worked = false
	c.stats.Cycles++
	if err := c.commitInsts(now); err != nil {
		return now + 1, fmt.Errorf("core %s: %w", c.cfg.Name, err)
	}
	if !c.halted {
		c.writeback(now)
		c.releasePushes(now)
		if err := c.issue(now); err != nil {
			return now + 1, fmt.Errorf("core %s: %w", c.cfg.Name, err)
		}
		c.dispatchInsts(now)
		c.fetch(now)
		c.accountStalls(now)
	}
	if !c.worked {
		// Self-healing guard: architectural progress must imply worked.
		// If a mark site is ever missed the core degrades to per-cycle
		// ticking instead of skipping incorrectly.
		if c.stats.Committed != fs.committed || c.stats.Mispredicts != fs.mispredicts ||
			c.stats.Squashed != fs.squashed || c.stats.DispatchRedirects != fs.redirects {
			c.worked = true
		}
	}
	if c.worked || c.halted {
		return now + 1, nil
	}
	c.idleDelta = idleStalls{
		fetch:       c.stats.FetchStalls - fs.fetch,
		dispatch:    c.stats.DispatchStalls - fs.dispatch,
		queueWait:   c.stats.QueueWaitCycles - fs.queueWait,
		memWait:     c.stats.MemWaitCycles - fs.memWait,
		commitQueue: c.stats.CommitQueueStall - fs.commitQueue,
	}
	wake := c.nextWake(now)
	if c.fastIdle {
		c.idleValid = true
		c.idleUntil = wake
		c.idleEpoch = *c.epoch
	}
	return wake, nil
}

// nextWake returns the earliest cycle after now at which an idle core
// has a self-contained reason to act: an in-flight instruction
// completing, or a functional-unit/cache-port reservation expiring
// (a head-of-window store or a ready load may be waiting on exactly
// that). Waits on architectural queues have no local deadline — the
// producing core's wakeup drives them — so they contribute MaxInt64.
func (c *Core) nextWake(now int64) int64 {
	wake := int64(math.MaxInt64)
	if c.bmOK {
		// Order doesn't matter for a minimum; iterate raw slot bits.
		for bm := c.inflightBm; bm != 0; bm &= bm - 1 {
			if d := c.due[bits.TrailingZeros64(bm)]; d > now && d < wake {
				wake = d
			}
		}
	} else {
		remaining := c.nInflight
		for p := c.winHead; p < c.winTail && remaining > 0; p++ {
			slot := uint32(p) & c.winMask
			if c.stat[slot]&(stIssued|stCompleted) != stIssued {
				continue
			}
			remaining--
			if d := c.due[slot]; d > now && d < wake {
				wake = d
			}
		}
	}
	for _, p := range [...]*fuPool{&c.intALU, &c.intMulDv, &c.fpALU, &c.fpMulDv, &c.memPorts} {
		for _, b := range p.busyUntil {
			if b > now && b < wake {
				wake = b
			}
		}
	}
	return wake
}

// CreditIdle accounts n fast-forwarded idle cycles exactly as if they
// had been ticked: the cycle counter advances and the stall pattern of
// the last (idle) cycle repeats n times.
func (c *Core) CreditIdle(n int64) {
	if c.halted || n <= 0 {
		return
	}
	c.stats.Cycles += n
	c.stats.FetchStalls += n * c.idleDelta.fetch
	c.stats.DispatchStalls += n * c.idleDelta.dispatch
	c.stats.QueueWaitCycles += n * c.idleDelta.queueWait
	c.stats.MemWaitCycles += n * c.idleDelta.memWait
	c.stats.CommitQueueStall += n * c.idleDelta.commitQueue
}

// --- commit ---

func (c *Core) commitInsts(now int64) error {
	for n := 0; n < c.cfg.CommitWidth && c.winHead < c.winTail; n++ {
		e := &c.win[uint32(c.winHead)&c.winMask]
		if !e.completed {
			return nil
		}
		if e.execErr != nil {
			return fmt.Errorf("pc %d (%v): %w", e.pc, &c.prog.Insts[e.pc], e.execErr)
		}
		d := &c.deco[e.pc]
		// Queue-operand values must have arrived (claims satisfied).
		if d.hasQSrc {
			for i := 0; i < int(e.nsrc); i++ {
				s := &e.srcsBuf[i]
				if s.qref != nil && !s.qref.Ready(s.qseq) {
					return nil
				}
			}
		}
		// Output-queue space for every push this instruction performs
		// (usually released already at non-speculative completion).
		var pushes []pushOp
		if !e.pushed && d.hasPush {
			pushes = c.pushPlan(e)
			if !queuesHaveSpace(pushes) {
				c.stats.CommitQueueStall++
				return nil
			}
		}
		// Stores need a cache port to retire into the write buffer.
		if e.isStore {
			if !e.addrReady {
				return nil
			}
			if !c.memPorts.acquire(now, 1) {
				return nil
			}
			c.storeCommit(now, e)
		}
		c.worked = true

		// Effects.
		if e.dest.IsArch() && e.dest != isa.R0 {
			c.writeReg(e.dest, e.result)
			if c.rename[e.dest] == e.handle() {
				c.rename[e.dest] = NoHandle
			}
		}
		for _, p := range pushes {
			if !p.q.Push(p.v) {
				panic("cpu: push space vanished within commit")
			}
		}
		if len(pushes) > 0 {
			c.trace(now, StagePush, e, "")
		}
		e.pushed = true // the release list must not push this entry again
		if d.hasQSrc {
			for i := 0; i < int(e.nsrc); i++ {
				if s := &e.srcsBuf[i]; s.qref != nil {
					s.qref.Free(s.qseq)
				}
			}
		}
		if e.isCtl {
			c.stats.CommittedBranch++
			if d.updatesPred {
				c.pred.Update(e.pc, e.taken)
			}
			if d.updatesBTB {
				c.btb.Update(e.pc, e.actualNext)
			}
		}
		switch d.commit {
		case ckOut:
			c.output = append(c.output, fmt.Sprintf("%d", int32(uint32(e.result))))
		case ckOutf:
			c.output = append(c.output, fmt.Sprintf("%g", math.Float64frombits(e.result)))
		case ckHalt:
			c.halted = true
		}
		if d.consumeSCQ || (d.isGetSCQ && !c.cfg.BlockingSCQ) {
			if id := int(d.scqID); id < len(c.qs.SCQ) && c.qs.SCQ[id] != nil {
				c.qs.SCQ[id].PopCommitted() // non-blocking credit consume
			}
		}
		if e.isLoad {
			c.stats.CommittedLoads++
		}
		if e.isStore {
			c.stats.CommittedStores++
			c.issueClean = false // leaving the LSQ can unblock younger loads
		}
		c.stats.Committed++
		c.recentPCs[c.recentLen%recentPCDepth] = int32(e.pc)
		c.recentLen++
		if c.cfg.Tracer != nil {
			c.trace(now, StageCommit, e, "")
		}
		c.winHead++
		if e.isLoad || e.isStore {
			c.lsqHead++
		}
		// Departure: every outstanding handle to this entry goes stale.
		e.gen++
		if c.halted {
			return nil
		}
	}
	return nil
}

type pushOp struct {
	q *queue.Queue
	v uint64
}

// queuesHaveSpace reports whether every architectural queue named in
// pushes can accept all of its pushes at once. The early-release path
// and the commit fallback both gate on this single predicate, so the
// two claim-accounting sites cannot drift apart. The scan is quadratic
// in the push count, which is at most three per instruction.
func queuesHaveSpace(pushes []pushOp) bool {
	for i := range pushes {
		q := pushes[i].q
		seen := false
		for j := 0; j < i; j++ {
			if pushes[j].q == q {
				seen = true
				break
			}
		}
		if seen {
			continue // q already checked at its first occurrence
		}
		need := 1
		for j := i + 1; j < len(pushes); j++ {
			if pushes[j].q == q {
				need++
			}
		}
		if q.Cap()-q.Len() < need {
			return false
		}
	}
	return true
}

// releasePushes performs queue pushes for completed entries that are
// no longer control-speculative, in program order. Decoupling depends
// on this: the producer's commit may legitimately wait on the consumer
// (e.g. an Access Processor store whose datum the Computation
// Processor has not produced yet), so pushing only at commit would
// serialise the two streams into lockstep.
func (c *Core) releasePushes(now int64) {
	oldestUnresolved := int64(math.MaxInt64)
	if c.nCtlPending > 0 {
		if c.bmOK {
			if bm := c.rotBm(c.ctlBm); bm != 0 {
				head := uint32(c.winHead) & c.winMask
				slot := (head + uint32(bits.TrailingZeros64(bm))) & c.winMask
				oldestUnresolved = c.win[slot].seq
			}
		} else {
			for p := c.winHead; p < c.winTail; p++ {
				slot := uint32(p) & c.winMask
				if c.stat[slot]&(stCtl|stCompleted) == stCtl {
					oldestUnresolved = c.win[slot].seq
					break
				}
			}
		}
	}
	for c.pushHead < len(c.pushList) {
		ref := c.pushList[c.pushHead]
		e := c.at(ref.h)
		if e == nil || e.seq != ref.seq || e.pushed {
			// Departed (committed with pushes done, or squashed), or
			// already pushed by the commit fallback (the commit stage
			// reaches an entry first when the release head was blocked
			// on queue space in the preceding cycles). The seq compare
			// rejects a generation-wrapped handle that landed on a live
			// re-occupant of the slot.
			c.pushHead++
			c.worked = true
			continue
		}
		if !e.completed || e.execErr != nil || e.seq >= oldestUnresolved {
			break
		}
		pushes := c.pushPlan(e)
		if !queuesHaveSpace(pushes) {
			return // retry next cycle; order must be preserved
		}
		for _, p := range pushes {
			if !p.q.Push(p.v) {
				panic("cpu: push space vanished within release")
			}
		}
		if len(pushes) > 0 {
			c.trace(now, StagePush, e, "")
		}
		e.pushed = true
		c.pushHead++
		c.worked = true
	}
	if c.pushHead > 4096 {
		n := copy(c.pushList, c.pushList[c.pushHead:])
		c.pushList = c.pushList[:n]
		c.pushHead = 0
	}
}

// pushPlan lists the queue pushes instruction e performs at commit.
// The result aliases a scratch buffer on the core and is only valid
// until the next pushPlan call.
func (c *Core) pushPlan(e *entry) []pushOp {
	d := &c.deco[e.pc]
	out := c.pushScratch[:0]
	add := func(r isa.Reg, v uint64) {
		q := c.pushQ[r]
		if q == nil {
			return
		}
		out = append(out, pushOp{q, v})
	}
	if e.dest.IsQueue() {
		add(e.dest, e.result)
	}
	if d.tapLDQ {
		add(isa.RegLDQ, e.result)
	}
	if d.tapSDQ {
		add(isa.RegSDQ, e.result)
	}
	if d.pushCQ {
		switch {
		case d.isCondBr:
			v := uint64(0)
			if e.taken {
				v = 1
			}
			add(isa.RegCQ, v)
		case d.updatesBTB:
			add(isa.RegCQ, uint64(uint32(e.actualNext)))
		}
	}
	if d.isPutSCQ {
		id := int(d.imm)
		if id < len(c.qs.SCQ) && c.qs.SCQ[id] != nil {
			out = append(out, pushOp{c.qs.SCQ[id], 1})
		}
	}
	c.pushScratch = out[:0]
	return out
}

func (c *Core) storeCommit(now int64, e *entry) {
	c.hier.Access(now, e.addr, true, c.cfg.Prefetching)
	v := e.srcsBuf[1].val
	switch c.deco[e.pc].op {
	case isa.SW:
		c.mem.Write32(e.addr, uint32(v))
	case isa.SB:
		c.mem.Write8(e.addr, byte(v))
	case isa.SFD:
		c.mem.Write64(e.addr, v)
	}
}

func (c *Core) writeReg(r isa.Reg, raw uint64) {
	if r.IsFP() {
		c.fpR[r.FPIndex()] = math.Float64frombits(raw)
	} else if r != isa.R0 {
		c.intR[r] = uint32(raw)
	}
}

// --- writeback ---

// flushIFQ empties the instruction fetch queue (redirect or squash).
func (c *Core) flushIFQ() {
	c.ifqHead = c.ifqTail
	c.fetchCQPeek = 0
}

// ifqLen returns the number of fetched instructions awaiting dispatch.
func (c *Core) ifqLen() int { return int(c.ifqTail - c.ifqHead) }

// rotBm rotates a slot bitmap so bit 0 corresponds to the window
// head's slot; trailing-zero iteration then yields window positions in
// program order. Only meaningful when bmOK.
func (c *Core) rotBm(bm uint64) uint64 {
	h := uint32(c.winHead) & c.winMask
	return (bm>>h | bm<<(c.bmSize-h)) & c.bmMask
}

func (c *Core) writeback(now int64) {
	if now < c.minComplete {
		return // no in-flight completion is due yet (see minComplete)
	}
	pending := int64(math.MaxInt64)
	if c.bmOK {
		head := uint32(c.winHead) & c.winMask
		for bm := c.rotBm(c.inflightBm); bm != 0; bm &= bm - 1 {
			o := uint32(bits.TrailingZeros64(bm))
			slot := (head + o) & c.winMask
			if d := c.due[slot]; d > now {
				if d < pending {
					pending = d
				}
				continue
			}
			if c.completeEntry(now, c.winHead+int64(o), slot) {
				return // window changed; stop scanning
			}
		}
		c.minComplete = pending
		return
	}
	remaining := c.nInflight
	for p := c.winHead; p < c.winTail; p++ {
		if remaining == 0 {
			break // every in-flight entry has been visited
		}
		slot := uint32(p) & c.winMask
		if c.stat[slot]&(stIssued|stCompleted) != stIssued {
			continue
		}
		remaining--
		if d := c.due[slot]; d > now {
			if d < pending {
				pending = d
			}
			continue
		}
		if c.completeEntry(now, p, slot) {
			return // window changed; stop scanning
		}
	}
	c.minComplete = pending
}

// completeEntry finishes the issued entry at window position p (slot is
// p's slot), delivering its result to waiting consumers. It returns
// true when the entry was a mispredicted branch and the window was
// squashed behind it — the caller's scan indices are then stale and it
// must stop.
func (c *Core) completeEntry(now, p int64, slot uint32) bool {
	e := &c.win[slot]
	e.completed = true
	c.stat[slot] |= stCompleted
	bit := uint64(1) << slot
	c.inflightBm &^= bit
	c.issueClean = false // a completion delivers operands / resolves stores
	c.nInflight--
	if e.isCtl {
		c.nCtlPending--
		c.ctlBm &^= bit
	}
	c.worked = true
	if len(c.waiters[slot]) > 0 {
		c.wakeWaiters(slot, e)
	}
	if c.cfg.Tracer != nil {
		c.trace(now, StageComplete, e, "")
	}
	if e.isCtl && e.actualNext != e.predNext {
		c.stats.Mispredicts++
		if c.cfg.Tracer != nil {
			c.trace(now, StageSquash, e, fmt.Sprintf("mispredict: %d not %d", e.actualNext, e.predNext))
		}
		// The squash may drop pending entries and the scan stops
		// early; reset the bound so the next cycle rescans.
		c.minComplete = 0
		c.squashAfter(p)
		c.pc = e.actualNext
		c.fetchStopped = false
		c.flushIFQ()
		return true
	}
	return false
}

// squashAfter removes every entry at a window position greater than
// pos, rewinding queue claims and rebuilding the rename table. Each
// removed entry's generation bumps, which atomically invalidates every
// outstanding handle to it — the rename table, LSQ ring, waiter lists,
// push-release list and parked queue-wake tags all fail the generation
// compare instead of being walked and edited.
func (c *Core) squashAfter(pos int64) {
	for c.winTail > pos+1 {
		slot := uint32(c.winTail-1) & c.winMask
		w := &c.win[slot]
		// Unclaim in reverse dispatch order (youngest first, and within
		// an entry last source first) so per-queue claim counters rewind
		// exactly; the queue drops any waiter parked on a dead claim.
		for j := int(w.nsrc) - 1; j >= 0; j-- {
			if q := w.srcsBuf[j].qref; q != nil {
				q.Unclaim(1)
			}
		}
		if !w.issued {
			c.nUnissued--
		} else if !w.completed {
			c.nInflight--
		}
		if w.isCtl && !w.completed {
			c.nCtlPending--
		}
		if w.isLoad || w.isStore {
			// The LSQ is position-ordered, so squashing the window tail
			// truncates exactly the LSQ tail.
			c.lsqTail--
		}
		c.stats.Squashed++
		bit := uint64(1) << slot
		c.readyBm &^= bit
		c.inflightBm &^= bit
		c.ctlBm &^= bit
		w.gen++
		c.winTail--
	}
	c.issueClean = false
	if c.issueHead > c.winTail {
		c.issueHead = c.winTail
	}
	// Rebuild the rename table from survivors (completed producers
	// included: a later consumer still captures their result).
	for i := range c.rename {
		c.rename[i] = NoHandle
	}
	for p := c.winHead; p < c.winTail; p++ {
		w := &c.win[uint32(p)&c.winMask]
		if w.dest.IsArch() && w.dest != isa.R0 {
			c.rename[w.dest] = w.handle()
		}
	}
}

// --- issue/execute ---

func (c *Core) issue(now int64) error {
	if c.issueClean && c.fastIdle && *c.epoch == c.issueEpoch && now < c.issueRetryAt {
		// Provably fruitless scan: the last one issued nothing, and no
		// event since could have unblocked an entry (see field comment).
		return nil
	}
	if c.fastIdle {
		c.issueEpoch = *c.epoch
	}
	retryAt := int64(math.MaxInt64)
	issued := 0
	if c.bmOK {
		// Dense path: visit only the candidate slots, in program order.
		// Operand-blocked entries are not in readyBm, so an occupied
		// window stalled on far operands costs a popcount, not a walk.
		head := uint32(c.winHead) & c.winMask
		for bm := c.rotBm(c.readyBm); bm != 0 && issued < c.cfg.IssueWidth; bm &= bm - 1 {
			o := uint32(bits.TrailingZeros64(bm))
			c.issueVisit(now, (head+o)&c.winMask, &issued, &retryAt)
		}
	} else {
		remaining := c.nUnissued
		i := c.issueHead
		if i < c.winHead {
			i = c.winHead
		}
		for i < c.winTail && c.stat[uint32(i)&c.winMask]&stIssued != 0 {
			i++
		}
		c.issueHead = i
		for ; i < c.winTail; i++ {
			if remaining == 0 || issued >= c.cfg.IssueWidth {
				break
			}
			slot := uint32(i) & c.winMask
			if c.stat[slot]&stIssued != 0 {
				continue
			}
			remaining--
			c.issueVisit(now, slot, &issued, &retryAt)
		}
	}
	// A scan that issued anything may have unblocked entries it already
	// passed (or was truncated by the issue width); only a fully
	// fruitless scan arms the gate.
	c.issueClean = issued == 0
	c.issueRetryAt = retryAt
	return nil
}

// issueVisit attempts to advance the unissued entry at slot. Entries
// it proves operand-blocked leave readyBm (the delivering wake puts
// them back); entries blocked on disambiguation or a busy unit stay,
// since their unblocking events don't run through a wake.
func (c *Core) issueVisit(now int64, slot uint32, issued *int, retryAt *int64) {
	e := &c.win[slot]
	bit := uint64(1) << slot
	switch {
	case e.isStore:
		// Address generation when the base register arrives; the
		// store completes when address and data are both present.
		if !e.addrReady && e.srcsBuf[0].ready {
			e.addr = uint32(e.srcsBuf[0].val) + uint32(c.deco[e.pc].imm)
			e.addrReady = true
			c.worked = true
			*issued++
		}
		if e.addrReady && e.srcsBuf[1].ready && !e.issued {
			e.issued = true
			c.stat[slot] |= stIssued
			c.due[slot] = now + 1
			c.nUnissued--
			c.nInflight++
			c.readyBm &^= bit
			c.inflightBm |= bit
			e.completed = false
			e.completeAt = now + 1
			if e.completeAt < c.minComplete {
				c.minComplete = e.completeAt
			}
			c.worked = true
		} else {
			c.readyBm &^= bit // waiting on the base or the datum
		}
		return
	case e.isLoad:
		if !e.srcsBuf[0].ready {
			c.readyBm &^= bit // waiting on the base register
			return
		}
		if !e.addrReady {
			e.addr = uint32(e.srcsBuf[0].val) + uint32(c.deco[e.pc].imm)
			e.addrReady = true
			c.worked = true
		}
		ok, fwd, wait := c.loadDisambiguate(e)
		if wait || !ok {
			return // disambiguation wait: stays a candidate
		}
		if fwd != nil {
			if err := c.loadForward(e, fwd); err != nil {
				e.execErr = err
			}
			e.issued = true
			c.stat[slot] |= stIssued
			c.due[slot] = now + 1
			c.nUnissued--
			c.nInflight++
			c.readyBm &^= bit
			c.inflightBm |= bit
			e.completeAt = now + 1
			if e.completeAt < c.minComplete {
				c.minComplete = e.completeAt
			}
			c.worked = true
			*issued++
			return
		}
		if !c.memPorts.acquire(now, 1) {
			if t := c.memPorts.freeAt; t < *retryAt {
				*retryAt = t
			}
			return // port-blocked: stays a candidate
		}
		done := c.hier.Access(now, e.addr, false, c.cfg.Prefetching || c.deco[e.pc].op == isa.PREF)
		c.loadValue(e)
		e.issued = true
		c.stat[slot] |= stIssued
		c.due[slot] = done
		c.nUnissued--
		c.nInflight++
		c.readyBm &^= bit
		c.inflightBm |= bit
		e.completeAt = done
		if done < c.minComplete {
			c.minComplete = done
		}
		c.worked = true
		*issued++
		return
	}
	// Non-memory operations need every operand.
	if int(e.nready) < int(e.nsrc) {
		c.readyBm &^= bit // waiting on an operand wake
		return
	}
	d := &c.deco[e.pc]
	if pool := c.pools[d.pool]; pool != nil && !pool.acquire(now, d.occupy) {
		// acquire just refreshed freeAt (or fast-failed against a
		// still-valid one); either bound is a sound retry time.
		if t := pool.freeAt; t < *retryAt {
			*retryAt = t
		}
		return // unit-blocked: stays a candidate
	}
	c.execute(now, e, d)
	c.stat[slot] |= stIssued
	c.due[slot] = e.completeAt
	c.readyBm &^= bit
	c.inflightBm |= bit
	*issued++
}

// wakeWaiters resolves the operands of every consumer waiting on a
// just-completed producer — the push half of operand wakeup. Register
// results are delivered here, at completion inside writeback, instead
// of each consumer polling its producers every cycle in the issue
// scan; the consuming entry observes exactly the same state when issue
// runs later in the same cycle. A stale waiter handle (a squashed
// consumer, even one whose slot has been re-occupied) fails the
// generation compare or the producer match and falls through.
func (c *Core) wakeWaiters(slot uint32, e *entry) {
	myH := e.handle()
	ws := c.waiters[slot]
	for _, wh := range ws {
		w := c.at(wh)
		if w == nil {
			continue
		}
		for i := 0; i < int(w.nsrc); i++ {
			s := &w.srcsBuf[i]
			if s.producer == myH {
				s.val = e.result
				s.ready = true
				s.producer = NoHandle
				w.nready++
				c.readyBm |= uint64(1) << w.slot // back to being an issue candidate
			}
		}
	}
	c.waiters[slot] = ws[:0]
}

// loadDisambiguate applies the LSQ rules: the load may proceed when
// every older store has a known address and none overlaps; an older
// store with an identical address range and ready data forwards; any
// other overlap waits. The returned *entry is only used within the
// same cycle (the window ring never reallocates), so a raw pointer is
// safe here.
func (c *Core) loadDisambiguate(e *entry) (ok bool, fwd *entry, wait bool) {
	lo, hi := e.addr, e.addr+c.deco[e.pc].msize
	var newestFwd *entry
	for p := c.lsqHead; p < c.lsqTail; p++ {
		s := c.at(c.lsqRing[uint32(p)&c.lsqMask])
		if s == nil {
			panic("cpu: stale LSQ handle")
		}
		if s.seq >= e.seq {
			break
		}
		if !s.isStore {
			continue
		}
		if !s.addrReady {
			return false, nil, true
		}
		slo, shi := s.addr, s.addr+c.deco[s.pc].msize
		if hi <= slo || shi <= lo {
			continue // disjoint
		}
		if slo == lo && shi == hi {
			if s.srcsBuf[1].ready {
				newestFwd = s
				continue
			}
			return false, nil, true // matching store, data not ready
		}
		return false, nil, true // partial overlap: wait for commit
	}
	return true, newestFwd, false
}

func (c *Core) loadForward(e *entry, s *entry) error {
	v := s.srcsBuf[1].val
	switch c.deco[e.pc].op {
	case isa.LW:
		e.result = uint64(uint32(v))
	case isa.LBU:
		e.result = uint64(byte(v))
	case isa.LFD:
		e.result = v
	}
	return nil
}

// loadValue reads the architectural value; disambiguation guarantees
// no older in-flight store overlaps.
func (c *Core) loadValue(e *entry) {
	switch c.deco[e.pc].op {
	case isa.LW:
		e.result = uint64(c.mem.Read32(e.addr))
	case isa.LBU:
		e.result = uint64(c.mem.Read8(e.addr))
	case isa.LFD:
		e.result = c.mem.Read64(e.addr)
	case isa.PREF:
		// no architectural effect
	}
}

func memSize(op isa.Op) int {
	switch op {
	case isa.LBU, isa.SB:
		return 1
	case isa.LFD, isa.SFD:
		return 8
	default:
		return 4
	}
}

// execute computes the result of a non-memory instruction and
// schedules its completion d.lat cycles out (the decode-table latency
// of its functional-unit class). Everything it needs is in the decode
// record and the entry — the Inst struct is never touched here.
func (c *Core) execute(now int64, e *entry, d *dec) {
	val := func(i int) uint64 {
		if i < int(e.nsrc) {
			return e.srcsBuf[i].val
		}
		return 0
	}
	asInt := func(i int) uint32 { return uint32(val(i)) }
	asFP := func(i int) float64 { return math.Float64frombits(val(i)) }

	var err error
	switch d.op {
	case isa.NOP, isa.HALT, isa.GETSCQ, isa.PUTSCQ:
		// GETSCQ's credit is its operand; PUTSCQ pushes at commit.
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.NOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU:
		var v uint32
		v, err = isa.EvalIntALU(d.op, asInt(0), asInt(1))
		e.result = uint64(v)
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI:
		var v uint32
		v, err = isa.EvalIntALUImm(d.op, asInt(0), d.imm)
		e.result = uint64(v)
	case isa.LI:
		e.result = uint64(uint32(d.imm))
	case isa.LUI:
		e.result = uint64(uint32(d.imm) << 16)
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		var v float64
		v, err = isa.EvalFP(d.op, asFP(0), asFP(1))
		e.result = math.Float64bits(v)
	case isa.FMOV, isa.FNEG, isa.FABS:
		a := asFP(0)
		// A queue source carries raw bits; interpret as FP.
		var v float64
		v, err = isa.EvalFP(d.op, a, 0)
		e.result = math.Float64bits(v)
	case isa.CVTIF:
		e.result = math.Float64bits(float64(int32(asInt(0))))
	case isa.CVTFI:
		e.result = uint64(uint32(int32(math.Trunc(asFP(0)))))
	case isa.FLT, isa.FLE, isa.FEQ:
		var b bool
		b, err = isa.EvalFPCmp(d.op, asFP(0), asFP(1))
		if b {
			e.result = 1
		}
	case isa.OUT, isa.OUTF:
		e.result = val(0)

	case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		a := asInt(0)
		b := uint32(0)
		if d.op == isa.BEQ || d.op == isa.BNE {
			b = asInt(1)
		}
		e.taken, err = isa.EvalBranch(d.op, a, b)
		e.actualNext = e.pc + 1
		if e.taken {
			e.actualNext = d.target
		}
	case isa.BCQ:
		c.resolveCtlToken(e, val(0))
	case isa.J:
		e.taken = true
		e.actualNext = d.target
	case isa.JAL:
		e.taken = true
		e.actualNext = d.target
		e.result = uint64(uint32(e.pc + 1))
	case isa.JR, isa.JALR:
		e.taken = true
		e.actualNext = int(int32(asInt(0)))
		if d.op == isa.JALR {
			e.result = uint64(uint32(e.pc + 1))
		}
		if e.actualNext < 0 || e.actualNext >= len(c.prog.Insts) {
			err = fmt.Errorf("indirect jump to %d out of range", e.actualNext)
			e.actualNext = 0
		}
	case isa.JCQ:
		c.resolveCtlToken(e, val(0))
	default:
		err = fmt.Errorf("unimplemented op %v", d.op)
	}
	if err != nil {
		e.execErr = err
	}
	e.issued = true
	c.nUnissued--
	c.nInflight++
	e.completeAt = now + d.lat
	if e.completeAt < c.minComplete {
		c.minComplete = e.completeAt
	}
	c.worked = true
	if c.cfg.Tracer != nil {
		c.trace(now, StageIssue, e, "")
	}
}

// --- dispatch ---

func (c *Core) dispatchInsts(now int64) {
	for n := 0; n < c.cfg.IssueWidth && c.ifqHead < c.ifqTail; n++ {
		if c.winTail-c.winHead >= int64(c.cfg.WindowSize) {
			c.stats.DispatchStalls++
			return
		}
		f := c.ifq[uint32(c.ifqHead)&c.ifqMask]
		d := &c.deco[f.pc]
		isMem := d.isMem
		if isMem && c.lsqTail-c.lsqHead >= int64(c.cfg.LSQSize) {
			c.stats.DispatchStalls++
			return
		}
		c.ifqHead++
		c.worked = true
		if d.isCQCtl && c.fetchCQPeek > 0 {
			c.fetchCQPeek--
		}

		// Claim the tail slot. Occupancy < WindowSize <= ring size, so
		// the slot is vacant; its generation was bumped when the
		// previous occupant departed, so the fresh handle is distinct
		// from every outstanding one.
		slot := uint32(c.winTail) & c.winMask
		e := &c.win[slot]
		c.waiters[slot] = c.waiters[slot][:0]
		h := e.handle()
		e.seq = c.nextSeq
		e.pc = f.pc
		e.dest = d.dest
		e.predNext = f.predNext
		e.isCtl = d.isCtl
		e.isLoad = d.isLoad
		e.isStore = d.isStore
		c.nextSeq++
		e.actualNext = f.pc + 1 // non-control default: never mispredicts
		e.result = 0
		e.execErr = nil
		e.issued = false
		e.completed = false
		e.completeAt = 0
		e.taken = false
		e.addr = 0
		e.addrReady = false
		e.pushed = false
		e.nready = 0
		if isMem && !c.cfg.HasMem {
			e.execErr = fmt.Errorf("memory operation %v on a core without memory access", d.op)
		}

		// Operands are built in place in srcsBuf. Queue claims that are
		// already satisfied resolve on the spot; unsatisfied ones park a
		// wake tag (handle<<2 | source index) with the queue, which
		// calls queueWake at the Push that satisfies them — no per-cycle
		// polling. Register operands resolve from a completed producer's
		// result, a parked waiter registration on a pending producer, or
		// the committed register file.
		nsrc := int(d.nsrc)
		for si := 0; si < nsrc; si++ {
			r := d.src[si]
			s := &e.srcsBuf[si]
			s.reg = r
			s.ready = false
			s.val = 0
			s.producer = NoHandle
			s.qref = nil
			switch {
			case r.IsQueue():
				q := c.popQ[r]
				if q == nil {
					e.execErr = fmt.Errorf("no pop rights on %v", r)
					s.ready = true
				} else {
					s.qref = q
					s.qseq = q.Claim()
					if q.Ready(s.qseq) {
						s.val = q.ValueAt(s.qseq)
						s.ready = true
					} else {
						q.AddWaiter(s.qseq, uint64(h)<<2|uint64(si))
					}
				}
			case r == isa.R0:
				s.ready = true
			default:
				if ph := c.rename[r]; ph != NoHandle {
					prod := &c.win[uint32(ph)&c.winMask]
					if prod.completed {
						s.val = prod.result
						s.ready = true
					} else {
						s.producer = ph
						ps := uint32(ph) & 0xffff
						c.waiters[ps] = append(c.waiters[ps], h)
					}
				} else {
					s.val = c.readReg(r)
					s.ready = true
				}
			}
			if s.ready {
				e.nready++
			}
		}
		// In blocking mode GETSCQ consumes a slip-control credit as a
		// hidden operand (in non-blocking mode the credit, if present,
		// is consumed at commit).
		if d.isGetSCQ && c.cfg.BlockingSCQ {
			id := int(d.imm)
			if id < len(c.qs.SCQ) && c.qs.SCQ[id] != nil {
				q := c.qs.SCQ[id]
				s := &e.srcsBuf[nsrc]
				s.reg = isa.RegSCQ
				s.ready = false
				s.val = 0
				s.producer = NoHandle
				s.qref = q
				s.qseq = q.Claim()
				if q.Ready(s.qseq) {
					s.val = q.ValueAt(s.qseq)
					s.ready = true
					e.nready++
				} else {
					q.AddWaiter(s.qseq, uint64(h)<<2|uint64(nsrc))
				}
				nsrc++
			}
		}
		e.nsrc = uint8(nsrc)

		if e.dest.IsArch() && e.dest != isa.R0 {
			c.rename[e.dest] = h
		}
		if d.noExec {
			e.issued = true
			e.completed = true
			e.completeAt = now
		}
		if c.cfg.Tracer != nil {
			c.trace(now, StageDispatch, e, "")
		}
		c.winTail++
		if isMem {
			c.lsqRing[uint32(c.lsqTail)&c.lsqMask] = h
			c.lsqTail++
		}
		if d.hasPush {
			c.pushList = append(c.pushList, pushRef{seq: e.seq, h: h})
		}

		if c.cfg.EnableTriggers && d.trigger && c.OnTrigger != nil {
			c.OnTrigger(int(d.cmasID), &c.intR, &c.fpR)
		}

		// Control-queue branches resolve at dispatch when their token
		// has already arrived (the usual case: the Access Processor
		// runs ahead). A wrong fetch direction then only flushes the
		// fetch queue — no window squash, no mispredict penalty. This
		// is the hardware benefit of an *architectural* control queue
		// over prediction.
		if d.isCQCtl && nsrc == 1 {
			s0 := &e.srcsBuf[0]
			if s0.qref != nil && s0.ready {
				c.resolveCtlToken(e, s0.val)
				e.issued, e.completed = true, true
				e.completeAt = now
				if e.execErr == nil && e.actualNext != e.predNext {
					c.stats.DispatchRedirects++
					if c.cfg.Tracer != nil {
						c.trace(now, StageRedirect, e, fmt.Sprintf("token steers to %d", e.actualNext))
					}
					c.flushIFQ()
					c.pc = e.actualNext
					c.fetchStopped = false
					e.predNext = e.actualNext // already steered; nothing to squash
				}
			}
		}

		var st uint8
		if e.issued {
			st |= stIssued
		} else {
			c.nUnissued++
			c.readyBm |= uint64(1) << slot
		}
		if e.completed {
			st |= stCompleted
		}
		if e.isCtl {
			st |= stCtl
			if !e.completed {
				c.nCtlPending++
				c.ctlBm |= uint64(1) << slot
			}
		}
		c.stat[slot] = st
		c.due[slot] = e.completeAt
		c.issueClean = false // the new entry is an issue candidate
	}
}

// resolveCtlToken computes the target of a BCQ/JCQ from its token.
func (c *Core) resolveCtlToken(e *entry, v uint64) {
	d := &c.deco[e.pc]
	if d.op == isa.BCQ {
		e.taken = v != 0
		e.actualNext = e.pc + 1
		if e.taken {
			e.actualNext = d.target
		}
		return
	}
	e.taken = true
	t, ok := c.translateJCQ(v)
	if !ok {
		e.execErr = fmt.Errorf("JCQ token %d out of range", int32(uint32(v)))
	}
	e.actualNext = t
}

// translateJCQ maps a control-queue token to this core's instruction
// index via the JCQ table.
func (c *Core) translateJCQ(v uint64) (int, bool) {
	t := int(int32(uint32(v)))
	if c.cfg.JCQMap != nil {
		if t < 0 || t >= len(c.cfg.JCQMap) {
			return 0, false
		}
		t = c.cfg.JCQMap[t]
	}
	if t < 0 || t >= len(c.prog.Insts) {
		return 0, false
	}
	return t, true
}

func (c *Core) readReg(r isa.Reg) uint64 {
	if r.IsFP() {
		return math.Float64bits(c.fpR[r.FPIndex()])
	}
	return uint64(c.intR[r])
}

// --- fetch ---

func (c *Core) fetch(now int64) {
	if c.fetchStopped {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.ifqLen() >= c.cfg.IFQSize {
			c.stats.FetchStalls++
			return
		}
		if c.pc < 0 || c.pc >= len(c.prog.Insts) {
			c.fetchStopped = true
			c.worked = true
			return
		}
		d := &c.deco[c.pc]
		next := c.pc + 1
		taken := false
		switch d.ctlKind {
		case ctlNone:
		case ctlHalt:
			c.ifq[uint32(c.ifqTail)&c.ifqMask] = fetched{pc: c.pc, predNext: next}
			c.ifqTail++
			c.fetchStopped = true
			c.worked = true
			return
		case ctlJ:
			next = d.target
			taken = true
		case ctlJAL:
			c.ras.Push(c.pc + 1)
			next = d.target
			taken = true
		case ctlCQBranch, ctlCQJump:
			// Steer fetch down the queued control token when it is
			// already present: the architectural queue replaces
			// prediction. The dispatch-time claim verifies the
			// direction, so a wrong peek only costs a fetch redirect.
			steered := false
			if q := c.popQ[isa.RegCQ]; q != nil {
				if v, ok := q.PeekFuture(c.fetchCQPeek); ok {
					if d.ctlKind == ctlCQBranch {
						if v != 0 {
							next = d.target
							taken = true
						}
					} else if t, ok := c.translateJCQ(v); ok {
						next = t
						taken = true
					}
					steered = true
				}
			}
			if !steered {
				if d.ctlKind == ctlCQBranch {
					if c.predictTaken(now) {
						next = d.target
						taken = true
					}
				} else if t, ok := c.btb.Lookup(c.pc); ok {
					next = t
					taken = true
				}
			}
			c.fetchCQPeek++
		case ctlJRRA:
			if t, ok := c.ras.Pop(); ok {
				next = t
				taken = true
			} else if t, ok := c.btb.Lookup(c.pc); ok {
				next = t
				taken = true
			}
		case ctlJR:
			if t, ok := c.btb.Lookup(c.pc); ok {
				next = t
				taken = true
			}
		case ctlJALR:
			if t, ok := c.btb.Lookup(c.pc); ok {
				next = t
				taken = true
			}
			c.ras.Push(c.pc + 1)
		case ctlCond:
			if c.predictTaken(now) {
				next = d.target
				taken = true
			}
		}
		c.ifq[uint32(c.ifqTail)&c.ifqMask] = fetched{pc: c.pc, predNext: next}
		c.ifqTail++
		c.pc = next
		c.worked = true
		if taken {
			return // fetch break after a predicted-taken branch
		}
	}
}

// predictTaken consults the branch predictor for the instruction at
// the current fetch PC, inverting the answer when a fault-injection
// mispredict storm is active.
func (c *Core) predictTaken(now int64) bool {
	t := c.pred.Predict(c.pc)
	if c.cfg.ForceMispredict != nil && c.cfg.ForceMispredict(now) {
		t = !t
	}
	return t
}

// StallMemPorts holds every cache port busy until the given cycle;
// the fault injector uses it to starve a core's memory pipeline.
func (c *Core) StallMemPorts(until int64) {
	for i := range c.memPorts.busyUntil {
		if c.memPorts.busyUntil[i] < until {
			c.memPorts.busyUntil[i] = until
		}
	}
	// A recorded issue retry time may now be stale-early; rescanning is
	// always safe, so just disarm the gate.
	c.issueClean = false
}

// recentPCDepth is the committed-PC ring buffer depth kept per core
// for fault snapshots.
const recentPCDepth = 32

// FaultState captures the core's pipeline state for a fault snapshot.
// It is called between cycles (never from inside Cycle).
func (c *Core) FaultState() simfault.CoreState {
	cs := simfault.CoreState{
		Name:         c.cfg.Name,
		Halted:       c.halted,
		PC:           c.pc,
		Committed:    c.stats.Committed,
		Squashed:     c.stats.Squashed,
		WindowOcc:    int(c.winTail - c.winHead),
		WindowCap:    c.cfg.WindowSize,
		LSQOcc:       int(c.lsqTail - c.lsqHead),
		LSQCap:       c.cfg.LSQSize,
		IFQOcc:       c.ifqLen(),
		IFQCap:       c.cfg.IFQSize,
		FetchStopped: c.fetchStopped,
	}
	n := c.recentLen
	if n > recentPCDepth {
		n = recentPCDepth
	}
	for i := uint64(0); i < n; i++ {
		cs.RecentPCs = append(cs.RecentPCs, int(c.recentPCs[(c.recentLen-n+i)%recentPCDepth]))
	}
	if c.winHead < c.winTail {
		e := &c.win[uint32(c.winHead)&c.winMask]
		h := &simfault.HeadState{
			PC:         e.pc,
			Inst:       c.prog.Insts[e.pc].String(),
			Seq:        e.seq,
			Issued:     e.issued,
			Completed:  e.completed,
			CompleteAt: e.completeAt,
			IsLoad:     e.isLoad,
			IsStore:    e.isStore,
			Addr:       e.addr,
			AddrReady:  e.addrReady,
		}
		for i := 0; i < int(e.nsrc); i++ {
			s := &e.srcsBuf[i]
			src := simfault.SourceState{
				Reg:        s.reg.String(),
				Ready:      s.ready,
				ProducerPC: -1,
			}
			if s.qref != nil {
				src.Queue = s.qref.Name()
				src.Seq = s.qseq
				src.QueueReady = s.qref.Ready(s.qseq)
			}
			if p := c.at(s.producer); p != nil {
				src.ProducerPC = p.pc
				src.ProducerDone = p.completed
			}
			h.Sources = append(h.Sources, src)
		}
		cs.Head = h
	}
	return cs
}

// DescribeHead reports the oldest window entry's state for deadlock
// diagnostics.
func (c *Core) DescribeHead() string {
	if c.winHead >= c.winTail {
		return fmt.Sprintf("%s: window empty, pc=%d fetchStopped=%v ifq=%d", c.cfg.Name, c.pc, c.fetchStopped, c.ifqLen())
	}
	e := &c.win[uint32(c.winHead)&c.winMask]
	s := fmt.Sprintf("%s head: pc=%d %q issued=%v completed=%v completeAt=%d addrReady=%v",
		c.cfg.Name, e.pc, c.prog.Insts[e.pc].String(), e.issued, e.completed, e.completeAt, e.addrReady)
	for i := 0; i < int(e.nsrc); i++ {
		src := &e.srcsBuf[i]
		s += fmt.Sprintf(" src%d(%v ready=%v", i, src.reg, src.ready)
		if src.qref != nil {
			s += fmt.Sprintf(" q=%s seq=%d qready=%v", src.qref.Name(), src.qseq, src.qref.Ready(src.qseq))
		}
		if p := c.at(src.producer); p != nil {
			s += fmt.Sprintf(" prod=pc%d done=%v", p.pc, p.completed)
		}
		s += ")"
	}
	return s
}

// accountStalls attributes head-of-window wait reasons for the LOD
// analysis.
func (c *Core) accountStalls(now int64) {
	if c.winHead >= c.winTail {
		return
	}
	e := &c.win[uint32(c.winHead)&c.winMask]
	if e.completed {
		return
	}
	for i := 0; i < int(e.nsrc); i++ {
		s := &e.srcsBuf[i]
		if !s.ready && s.qref != nil && !s.qref.Ready(s.qseq) {
			c.stats.QueueWaitCycles++
			return
		}
	}
	if e.issued && (e.isLoad || e.isStore) {
		c.stats.MemWaitCycles++
	}
}
