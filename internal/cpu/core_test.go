package cpu

import (
	"strings"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
)

func runCore(t *testing.T, src string, cfg Config) (*Core, int64) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	m.LoadSegment(isa.DataBase, p.Data)
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.HasMem = true
	c := New(cfg, p, m, h, QueueSet{})
	var cycle int64
	for !c.Halted() {
		if cycle > 10_000_000 {
			t.Fatalf("core did not halt within %d cycles", cycle)
		}
		if err := c.Cycle(cycle); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		cycle++
	}
	return c, cycle
}

func TestCoreMatchesFunctionalOnALUMix(t *testing.T) {
	src := `
        .data
buf:    .space 64
        .text
main:   li   $r1, 50
        li   $r2, 0
        li   $r3, 1
loop:   mul  $r4, $r1, $r3
        add  $r2, $r2, $r4
        xor  $r3, $r3, $r1
        andi $r3, $r3, 7
        addi $r3, $r3, 1
        addi $r1, $r1, -1
        bgtz $r1, loop
        la   $r5, buf
        sw   $r2, 0($r5)
        out  $r2
        halt
`
	p := mustAssemble(t, "t", src)
	want, err := fnsim.RunProgram(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runCore(t, src, Config{Name: "ss"})
	if len(c.Output()) != 1 || c.Output()[0] != want.Output[0] {
		t.Errorf("output %v, want %v", c.Output(), want.Output)
	}
	if c.Stats().Committed != want.Insts {
		t.Errorf("committed %d, want %d", c.Stats().Committed, want.Insts)
	}
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent unpredictable branch pattern forces mispredicts;
	// results must still be exact.
	src := `
main:   li   $r1, 200
        li   $r2, 0
        li   $r5, 7
loop:   mul  $r5, $r5, $r5
        addi $r5, $r5, 11
        andi $r4, $r5, 1
        beq  $r4, $r0, skip
        addi $r2, $r2, 1
skip:   addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        halt
`
	p := mustAssemble(t, "t", src)
	want, _ := fnsim.RunProgram(p, 100000)
	c, _ := runCore(t, src, Config{Name: "ss"})
	if c.Output()[0] != want.Output[0] {
		t.Errorf("output %v, want %v", c.Output(), want.Output)
	}
	if c.Stats().Mispredicts == 0 {
		t.Error("expected mispredicts on pseudo-random branch")
	}
	if c.Stats().Squashed == 0 {
		t.Error("expected squashed instructions")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// A store immediately followed by a same-address load: the load
	// must forward, producing the stored value well before the store
	// commits to the cache.
	src := `
        .data
x:      .space 8
        .text
main:   li   $r1, 1234
        la   $r2, x
        sw   $r1, 0($r2)
        lw   $r3, 0($r2)
        out  $r3
        halt
`
	c, _ := runCore(t, src, Config{Name: "ss"})
	if c.Output()[0] != "1234" {
		t.Errorf("forwarded value %v", c.Output())
	}
}

func TestPartialOverlapStoreLoadWaits(t *testing.T) {
	// Byte store followed by word load of the same address must still
	// produce the architecturally correct value (the load waits for the
	// store to commit).
	src := `
        .data
x:      .word 0x11223344
        .text
main:   li   $r1, 0xAA
        la   $r2, x
        sb   $r1, 0($r2)
        lw   $r3, 0($r2)
        out  $r3
        halt
`
	p := mustAssemble(t, "t", src)
	want, _ := fnsim.RunProgram(p, 1000)
	c, _ := runCore(t, src, Config{Name: "ss"})
	if c.Output()[0] != want.Output[0] {
		t.Errorf("output %v, want %v", c.Output(), want.Output)
	}
}

func TestSmallerWindowIsSlower(t *testing.T) {
	src := `
        .data
buf:    .space 65536
        .text
main:   la   $r2, buf
        li   $r1, 2048
loop:   lw   $r3, 0($r2)
        add  $r4, $r4, $r3
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r4
        halt
`
	_, wide := runCore(t, src, Config{Name: "w64", WindowSize: 64})
	_, narrow := runCore(t, src, Config{Name: "w4", WindowSize: 4, IssueWidth: 2, FetchWidth: 2, CommitWidth: 2})
	if narrow <= wide {
		t.Errorf("narrow core (%d cycles) not slower than wide core (%d)", narrow, wide)
	}
}

func TestDivUnitSerialises(t *testing.T) {
	// Back-to-back independent divisions on one unpipelined divider
	// must serialise: 8 divisions at 20 cycles >> 60 cycles total.
	src := `
main:   li   $r1, 100
        li   $r2, 3
        div  $r3, $r1, $r2
        div  $r4, $r1, $r2
        div  $r5, $r1, $r2
        div  $r6, $r1, $r2
        div  $r7, $r1, $r2
        div  $r8, $r1, $r2
        div  $r9, $r1, $r2
        div  $r10, $r1, $r2
        out  $r10
        halt
`
	_, cycles := runCore(t, src, Config{Name: "ss"})
	if cycles < 8*20 {
		t.Errorf("8 divisions completed in %d cycles; divider pipelined?", cycles)
	}
}

func TestSpeculativeFaultSquashed(t *testing.T) {
	// A division by zero on the wrong path of a mispredicted branch
	// must not kill the simulation.
	src := `
main:   li   $r1, 64
        li   $r2, 0
loop:   addi $r1, $r1, -1
        bgtz $r1, loop
        ; fall-through path reached exactly once; the branch above is
        ; strongly taken so the exit mispredicts and fetches below.
        bne  $r1, $r0, poison
        out  $r2
        halt
poison: div  $r3, $r2, $r0
        halt
`
	c, _ := runCore(t, src, Config{Name: "ss"})
	if c.Output()[0] != "0" {
		t.Errorf("output %v", c.Output())
	}
}

func TestRealFaultSurfaces(t *testing.T) {
	src := `
main:   li  $r1, 5
        div $r2, $r1, $r0
        halt
`
	p := mustAssemble(t, "t", src)
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	c := New(Config{Name: "ss", HasMem: true}, p, m, h, QueueSet{})
	var err error
	for i := int64(0); i < 1000 && !c.Halted(); i++ {
		if err = c.Cycle(i); err != nil {
			break
		}
	}
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v", err)
	}
}

func TestMemOpOnMemlessCoreFails(t *testing.T) {
	p := mustAssemble(t, "t", "main: lw $r1, 0($r2)\nhalt")
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	c := New(Config{Name: "cp", HasMem: false}, p, m, h, QueueSet{})
	var err error
	for i := int64(0); i < 1000 && !c.Halted(); i++ {
		if err = c.Cycle(i); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("memory op on memory-less core did not fail")
	}
}

// --- queue-connected cores ---

func TestProducerConsumerPair(t *testing.T) {
	// AP pushes 100 loaded values; CP sums them. Verifies claim-based
	// queue consumption end to end at the core level.
	asP := mustAssemble(t, "as", `
        .data
buf:    .space 400
        .text
main:   la   $r2, buf
        li   $r1, 100
        li   $r5, 0
fill:   sw   $r5, 0($r2)
        addi $r5, $r5, 3
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, fill
        la   $r2, buf
        li   $r1, 100
send:   lw   $LDQ, 0($r2)
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, send
        halt
`)
	csP := mustAssemble(t, "cs", `
main:   li   $r1, 100
        li   $r2, 0
recv:   add  $r3, $LDQ, $r0
        add  $r2, $r2, $r3
        addi $r1, $r1, -1
        bgtz $r1, recv
        out  $r2
        halt
`)
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	ldq := queue.New("ldq", 32)
	ap := New(Config{Name: "ap", HasMem: true}, asP, m, h, QueueSet{
		Push: map[isa.Reg]*queue.Queue{isa.RegLDQ: ldq},
	})
	cp := New(Config{Name: "cp", WindowSize: 16}, csP, m, h, QueueSet{
		Pop: map[isa.Reg]*queue.Queue{isa.RegLDQ: ldq},
	})
	var cycle int64
	for !(ap.Halted() && cp.Halted()) {
		if cycle > 1_000_000 {
			t.Fatal("pair did not complete")
		}
		if err := ap.Cycle(cycle); err != nil {
			t.Fatal(err)
		}
		if err := cp.Cycle(cycle); err != nil {
			t.Fatal(err)
		}
		cycle++
	}
	// sum of 0,3,...,297 = 3 * 99*100/2 = 14850
	if cp.Output()[0] != "14850" {
		t.Errorf("sum = %v", cp.Output())
	}
	if ldq.Len() != 0 {
		t.Errorf("LDQ not drained: %v", ldq)
	}
}

// --- CMP engine ---

func cmasProgram() []isa.Inst {
	// for 64 iterations: pref 0(r2); r2 += 64; putscq 0
	return []isa.Inst{
		{Op: isa.LI, Rd: isa.R1, Imm: 64},
		{Op: isa.PREF, Rs: isa.R2, Imm: 0},
		{Op: isa.ADDI, Rd: isa.R2, Rs: isa.R2, Imm: 64},
		{Op: isa.ADDI, Rd: isa.R1, Rs: isa.R1, Imm: -1},
		{Op: isa.PUTSCQ, Imm: 0},
		{Op: isa.BGTZ, Rs: isa.R1, Imm: 1},
		{Op: isa.HALT},
	}
}

func newCMPTestEngine(t *testing.T, scqCap int) (*CMPEngine, *queue.Queue, *mem.Hierarchy) {
	t.Helper()
	m := mem.NewMemory()
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	scq := queue.New("scq0", scqCap)
	e := NewCMP(CMPConfig{}, [][]isa.Inst{cmasProgram()}, m, h, []*queue.Queue{scq})
	return e, scq, h
}

func TestCMPPrefetchesAndCloses(t *testing.T) {
	e, _, h := newCMPTestEngine(t, 256)
	var ir [isa.NumIntRegs]uint32
	ir[isa.R2] = 0x1000_0000
	e.Fork(0, &ir, &[isa.NumFPRegs]float64{})
	scq := e.SCQ(0) // forking starts a fresh queue generation
	for now := int64(0); now < 100000 && e.ActiveContexts() > 0; now++ {
		if err := e.Cycle(now); err != nil {
			t.Fatal(err)
		}
	}
	if e.ActiveContexts() != 0 {
		t.Fatal("context did not terminate")
	}
	st := e.Stats()
	if st.Prefetches != 64 {
		t.Errorf("prefetches = %d, want 64", st.Prefetches)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d", st.Completed)
	}
	if !scq.Closed() {
		t.Error("SCQ not closed at thread completion")
	}
	if scq.Len() != 64 {
		t.Errorf("credits = %d, want 64", scq.Len())
	}
	if h.Stats().PrefetchIssued != 64 {
		t.Errorf("hierarchy prefetches = %d", h.Stats().PrefetchIssued)
	}
}

func TestCMPThrottledBySCQ(t *testing.T) {
	e, _, _ := newCMPTestEngine(t, 4)
	var ir [isa.NumIntRegs]uint32
	ir[isa.R2] = 0x1000_0000
	e.Fork(0, &ir, &[isa.NumFPRegs]float64{})
	scq := e.SCQ(0)
	for now := int64(0); now < 5000; now++ {
		if err := e.Cycle(now); err != nil {
			t.Fatal(err)
		}
	}
	// With no consumer the thread must park at 4 credits.
	if scq.Len() != 4 {
		t.Errorf("credits = %d, want 4 (capacity)", scq.Len())
	}
	if e.ActiveContexts() != 1 {
		t.Error("throttled context terminated")
	}
	if e.Stats().PutStalls == 0 {
		t.Error("no PUTSCQ stalls recorded")
	}
	// Draining credits lets it finish.
	for now := int64(5000); now < 200000 && e.ActiveContexts() > 0; now++ {
		for scq.Avail() > 0 {
			scq.PopCommitted()
		}
		if err := e.Cycle(now); err != nil {
			t.Fatal(err)
		}
	}
	if e.ActiveContexts() != 0 {
		t.Error("context did not finish after credits drained")
	}
}

func TestCMPForkIgnoredWhileRunning(t *testing.T) {
	e, _, _ := newCMPTestEngine(t, 256)
	var ir [isa.NumIntRegs]uint32
	e.Fork(0, &ir, &[isa.NumFPRegs]float64{})
	e.Fork(0, &ir, &[isa.NumFPRegs]float64{})
	if e.Stats().Forks != 1 || e.Stats().ForksIgnored != 1 {
		t.Errorf("forks %d ignored %d", e.Stats().Forks, e.Stats().ForksIgnored)
	}
}

func TestCMPShutdown(t *testing.T) {
	e, _, _ := newCMPTestEngine(t, 256)
	e.Fork(0, &[isa.NumIntRegs]uint32{}, &[isa.NumFPRegs]float64{})
	scq := e.SCQ(0)
	e.Shutdown()
	if e.ActiveContexts() != 0 {
		t.Error("context survived shutdown")
	}
	if !scq.Closed() {
		t.Error("SCQ open after shutdown")
	}
	if e.Stats().Killed != 1 {
		t.Errorf("killed = %d", e.Stats().Killed)
	}
}

func TestCMPStoreRejected(t *testing.T) {
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	prog := []isa.Inst{{Op: isa.SW, Rs: isa.R2, Rt: isa.R3}, {Op: isa.HALT}}
	e := NewCMP(CMPConfig{}, [][]isa.Inst{prog}, m, h, []*queue.Queue{queue.New("s", 4)})
	e.Fork(0, &[isa.NumIntRegs]uint32{}, &[isa.NumFPRegs]float64{})
	var err error
	for now := int64(0); now < 10 && err == nil; now++ {
		err = e.Cycle(now)
	}
	if err == nil {
		t.Error("store in CMAS accepted")
	}
}

func TestCMPRunawayGuard(t *testing.T) {
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	prog := []isa.Inst{{Op: isa.J, Imm: 0}} // infinite loop
	scq := queue.New("s", 4)
	e := NewCMP(CMPConfig{MaxInstsPerThread: 100}, [][]isa.Inst{prog}, m, h, []*queue.Queue{scq})
	e.Fork(0, &[isa.NumIntRegs]uint32{}, &[isa.NumFPRegs]float64{})
	scq = e.SCQ(0)
	for now := int64(0); now < 10000 && e.ActiveContexts() > 0; now++ {
		if err := e.Cycle(now); err != nil {
			t.Fatal(err)
		}
	}
	if e.ActiveContexts() != 0 {
		t.Error("runaway context not killed")
	}
	if !scq.Closed() {
		t.Error("SCQ left open by runaway kill")
	}
}

// --- dynamic prefetch distance ---

func TestCMPDynamicDistanceGrows(t *testing.T) {
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	// Slice prefetches a fixed line over and over: every prefetch after
	// the first hits, so the controller must push the offset out.
	prog := []isa.Inst{
		{Op: isa.PREF, Rs: isa.R2, Imm: 0},
		{Op: isa.ADDI, Rd: isa.R1, Rs: isa.R1, Imm: -1},
		{Op: isa.BGTZ, Rs: isa.R1, Imm: 0},
		{Op: isa.HALT},
	}
	scq := queue.New("s", 1024)
	e := NewCMP(CMPConfig{DynamicDistance: true, DynamicWindow: 16, DynamicStep: 32, MaxDynamicDistance: 128},
		[][]isa.Inst{prog}, m, h, []*queue.Queue{scq})
	var ir [isa.NumIntRegs]uint32
	ir[isa.R1] = 400
	ir[isa.R2] = 0x1000_0000
	e.Fork(0, &ir, &[isa.NumFPRegs]float64{})
	for now := int64(0); now < 100000 && e.ActiveContexts() > 0; now++ {
		if err := e.Cycle(now); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.DistanceGrows == 0 {
		t.Errorf("controller never grew the distance: %+v", st)
	}
	// With offset 32/64/96/128 the engine touches the next lines too.
	if h.Stats().L1D.PrefetchFills < 2 {
		t.Errorf("grown distance fetched no new lines: %+v", h.Stats().L1D)
	}
}

func TestCMPDynamicDistanceIdleWhenFilling(t *testing.T) {
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	// A large-stride stream always fills new lines: no adaptation needed.
	prog := []isa.Inst{
		{Op: isa.PREF, Rs: isa.R2, Imm: 0},
		{Op: isa.ADDI, Rd: isa.R2, Rs: isa.R2, Imm: 4096},
		{Op: isa.ADDI, Rd: isa.R1, Rs: isa.R1, Imm: -1},
		{Op: isa.BGTZ, Rs: isa.R1, Imm: 0},
		{Op: isa.HALT},
	}
	scq := queue.New("s", 1024)
	e := NewCMP(CMPConfig{DynamicDistance: true, DynamicWindow: 16},
		[][]isa.Inst{prog}, m, h, []*queue.Queue{scq})
	var ir [isa.NumIntRegs]uint32
	ir[isa.R1] = 300
	ir[isa.R2] = 0x1000_0000
	e.Fork(0, &ir, &[isa.NumFPRegs]float64{})
	for now := int64(0); now < 100000 && e.ActiveContexts() > 0; now++ {
		if err := e.Cycle(now); err != nil {
			t.Fatal(err)
		}
	}
	if g := e.Stats().DistanceGrows; g != 0 {
		t.Errorf("controller grew the distance %d times on an always-filling stream", g)
	}
}

func TestTracerReceivesPipelineEvents(t *testing.T) {
	p := mustAssemble(t, "t", `
main:   li   $r1, 3
loop:   addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r1
        halt
`)
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	tr := &CollectTracer{}
	c := New(Config{Name: "tr", HasMem: true, Tracer: tr}, p, m, h, QueueSet{})
	for i := int64(0); i < 1000 && !c.Halted(); i++ {
		if err := c.Cycle(i); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[Stage]int{}
	for _, ev := range tr.Events {
		counts[ev.Stage]++
	}
	// 3 loop iterations: li + 3*(addi+bgtz) + out + halt = 9 commits.
	if counts[StageCommit] != 9 {
		t.Errorf("commit events = %d, want 9", counts[StageCommit])
	}
	if counts[StageDispatch] < 9 || counts[StageIssue] == 0 || counts[StageComplete] == 0 {
		t.Errorf("event counts: %v", counts)
	}
	// The loop-exit branch mispredicts once.
	if counts[StageSquash] == 0 {
		t.Errorf("no squash event despite loop exit: %v", counts)
	}
}

func TestTextTracerFiltersAndFormats(t *testing.T) {
	var sb strings.Builder
	tr := &TextTracer{W: &sb, FromCycle: 0, ToCycle: 0, OnlyStages: map[Stage]bool{StageCommit: true}}
	tr.Event(TraceEvent{Cycle: 5, Core: "cp", Stage: StageCommit, PC: 3, Seq: 7,
		Inst: isa.Inst{Op: isa.ADD, Rd: isa.R1, Rs: isa.R2, Rt: isa.R3}, Note: "x"})
	tr.Event(TraceEvent{Cycle: 6, Core: "cp", Stage: StageIssue})
	out := sb.String()
	if !strings.Contains(out, "commit") || !strings.Contains(out, "add $r1, $r2, $r3") || !strings.Contains(out, "; x") {
		t.Errorf("format: %q", out)
	}
	if strings.Contains(out, "issue") {
		t.Error("stage filter did not apply")
	}
	tr2 := &TextTracer{W: &sb, FromCycle: 10, ToCycle: 20}
	sb.Reset()
	tr2.Event(TraceEvent{Cycle: 5, Stage: StageCommit})
	tr2.Event(TraceEvent{Cycle: 25, Stage: StageCommit})
	if sb.Len() != 0 {
		t.Error("cycle window filter did not apply")
	}
}

func TestPredictorKinds(t *testing.T) {
	src := `
main:   li   $r1, 100
        li   $r5, 7
loop:   mul  $r5, $r5, $r5
        addi $r5, $r5, 11
        andi $r4, $r5, 1
        beq  $r4, $r0, skip
        addi $r2, $r2, 1
skip:   addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        halt
`
	p := mustAssemble(t, "t", src)
	want, _ := fnsim.RunProgram(p, 100000)
	for _, kind := range []string{"bimodal", "gshare", "taken"} {
		c, _ := runCore(t, src, Config{Name: kind, PredictorKind: kind})
		if c.Output()[0] != want.Output[0] {
			t.Errorf("%s: output %v, want %v", kind, c.Output(), want.Output)
		}
		if c.PredictorStats().Lookups == 0 {
			t.Errorf("%s: predictor never consulted", kind)
		}
	}
	// Always-taken must mispredict every loop exit and more.
	taken, _ := runCore(t, src, Config{Name: "taken", PredictorKind: "taken"})
	bimodal, _ := runCore(t, src, Config{Name: "bimodal"})
	if taken.Stats().Mispredicts < bimodal.Stats().Mispredicts {
		t.Errorf("taken (%d mispredicts) beat bimodal (%d)",
			taken.Stats().Mispredicts, bimodal.Stats().Mispredicts)
	}
}

func TestUnknownPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown predictor kind accepted")
		}
	}()
	p := mustAssemble(t, "t", "main: halt")
	m := mem.NewMemory()
	h, _ := mem.NewHierarchy(mem.DefaultHierConfig())
	New(Config{Name: "x", PredictorKind: "oracle"}, p, m, h, QueueSet{})
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}
