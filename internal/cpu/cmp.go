package cpu

import (
	"fmt"
	"math"

	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
)

// CMPConfig parameterises the Cache Management Processor: a
// multithreaded in-order engine with the integer and load/store
// resources of Table 1 (4 ALUs, 2 cache ports). Each CMAS id owns at
// most one thread context; a trigger forks the context with the Access
// Processor's architectural registers.
type CMPConfig struct {
	Contexts          int    // maximum live contexts (default 8)
	IssueWidth        int    // in-order issue width per context per cycle (default 4)
	MemPorts          int    // cache ports per cycle, engine wide (default 2)
	MaxInstsPerThread uint64 // runaway guard (default 1 << 20)

	// DynamicDistance enables runtime control of the prefetching
	// distance (the paper's Section 6 future work): when a window of
	// recent prefetches mostly hits in the L1 — the slice is running
	// too close behind the demand stream, or re-touching lines — the
	// context's prefetches are offset further ahead, up to
	// MaxDynamicDistance bytes; when they mostly fill new lines the
	// offset decays back toward the compiler's static distance.
	DynamicDistance    bool
	DynamicWindow      int   // prefetches per adaptation step (default 64)
	DynamicStep        int32 // offset adjustment in bytes (default 64)
	MaxDynamicDistance int32 // offset cap in bytes (default 512)
}

func (c CMPConfig) withDefaults() CMPConfig {
	if c.Contexts == 0 {
		c.Contexts = 8
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 4
	}
	if c.MemPorts == 0 {
		c.MemPorts = 2
	}
	if c.MaxInstsPerThread == 0 {
		c.MaxInstsPerThread = 1 << 20
	}
	if c.DynamicWindow == 0 {
		c.DynamicWindow = 64
	}
	if c.DynamicStep == 0 {
		c.DynamicStep = 64
	}
	if c.MaxDynamicDistance == 0 {
		c.MaxDynamicDistance = 512
	}
	return c
}

// CMPStats counts Cache Management Processor events.
type CMPStats struct {
	Forks        uint64
	ForksIgnored uint64 // trigger while the context was already running
	Executed     uint64
	Prefetches   uint64
	Killed       uint64 // runaway or shutdown terminations
	Completed    uint64 // contexts that ran to HALT
	PutStalls    int64  // cycles blocked depositing a slip credit

	// Dynamic-distance adaptation events.
	DistanceGrows   uint64
	DistanceShrinks uint64
}

// cmpCtx is one CMAS thread: in-order issue with a register-ready
// scoreboard, so independent instructions flow at full width while
// value-dependent chains (pointer chases) serialise naturally. Loads
// are non-blocking — only a consumer of the loaded value waits.
type cmpCtx struct {
	active  bool
	pc      int
	intR    [isa.NumIntRegs]uint32
	fpR     [isa.NumFPRegs]float64
	readyAt [isa.NumIntRegs + isa.NumFPRegs]int64
	insts   uint64

	// Dynamic prefetch-distance state (see CMPConfig.DynamicDistance).
	extraDist    int32
	windowCount  int
	windowUseful int
}

// srcReady checks the scoreboard against the instruction's decoded
// source list (see dec: CMAS programs are static, so the sources are
// precomputed once at engine construction).
func (c *cmpCtx) srcReady(now int64, d *dec) bool {
	for i := 0; i < int(d.nsrc); i++ {
		if r := d.src[i]; r.IsArch() && c.readyAt[r] > now {
			return false
		}
	}
	return true
}

func (c *cmpCtx) setReady(r isa.Reg, at int64) {
	if r.IsArch() && r != isa.R0 {
		c.readyAt[r] = at
	}
}

// CMPEngine executes Cache Miss Access Slices. Its memory accesses are
// marked as prefetches in the hierarchy and it never writes program
// state: the only externally visible effects are cache fills and slip-
// control credits.
type CMPEngine struct {
	cfg   CMPConfig
	progs [][]isa.Inst
	decos [][]dec // static decode tables, parallel to progs
	mem   *mem.Memory
	hier  *mem.Hierarchy
	scq   []*queue.Queue
	// ctxs holds the thread contexts by value, indexed by CMAS id: the
	// per-cycle scan walks a flat array instead of chasing per-context
	// pointers, and Fork recycles a slot by overwriting it in place.
	ctxs  []cmpCtx
	stats CMPStats

	// worked / idlePutStalls mirror the Core's idle-cycle protocol (see
	// Core.CycleEv): an idle CMP cycle changes nothing but PutStalls.
	worked        bool
	idlePutStalls int64

	// Idle fast path, mirroring Core: after a proven-idle cycle, ticks
	// before idleUntil with an unchanged queue epoch are exact replays
	// and cost O(1). Fork and Shutdown invalidate it explicitly (they
	// mutate engine state from outside the cycle).
	epoch     *int64
	fastIdle  bool
	idleValid bool
	idleUntil int64
	idleEpoch int64
}

// NewCMP builds the engine. progs[id] is the CMAS program for id, and
// scq[id] its slip-control queue.
func NewCMP(cfg CMPConfig, progs [][]isa.Inst, m *mem.Memory, h *mem.Hierarchy, scq []*queue.Queue) *CMPEngine {
	cfg = cfg.withDefaults()
	decos := make([][]dec, len(progs))
	for i, p := range progs {
		decos[i] = decodeProg(p)
	}
	return &CMPEngine{
		cfg:   cfg,
		progs: progs,
		decos: decos,
		mem:   m,
		hier:  h,
		scq:   scq,
		ctxs:  make([]cmpCtx, len(progs)),
	}
}

// AttachEvents wires the machine-wide queue-mutation epoch into the
// engine and enables its O(1) idle fast path. Slip-control queue
// generations created later by Fork inherit the epoch.
func (e *CMPEngine) AttachEvents(epoch *int64) {
	e.epoch = epoch
	e.fastIdle = epoch != nil
	for _, q := range e.scq {
		if q != nil {
			q.SetEpoch(epoch)
		}
	}
}

// Stats returns the engine's counters.
func (e *CMPEngine) Stats() CMPStats { return e.stats }

// SCQ returns the current slip-control queue generation for a CMAS id
// (forking replaces generations).
func (e *CMPEngine) SCQ(id int) *queue.Queue { return e.scq[id] }

// ActiveContexts returns the number of live CMAS threads.
func (e *CMPEngine) ActiveContexts() int {
	n := 0
	for i := range e.ctxs {
		if e.ctxs[i].active {
			n++
		}
	}
	return n
}

// Fork starts (or restarts) the CMAS thread for id with the given
// architectural context. A trigger that arrives while the thread is
// still running is ignored — the running slice is already ahead. The
// register arrays are passed by pointer (triggers fire on the
// dispatch hot path) and copied here once the fork is accepted; the
// caller's arrays are not retained.
func (e *CMPEngine) Fork(id int, ir *[isa.NumIntRegs]uint32, fr *[isa.NumFPRegs]float64) {
	if id < 0 || id >= len(e.progs) {
		return
	}
	if e.ctxs[id].active {
		e.stats.ForksIgnored++
		return
	}
	if e.ActiveContexts() >= e.cfg.Contexts {
		e.stats.ForksIgnored++
		return
	}
	e.ctxs[id] = cmpCtx{active: true, intR: *ir, fpR: *fr}
	if id < len(e.scq) && e.scq[id] != nil {
		// Retire the previous slip-control queue generation and start a
		// fresh one in the shared slice. Claims still in flight against
		// the old (closed) generation stay trivially satisfied; simply
		// reopening the old queue would strand them: a claim issued
		// beyond the closed tail would become permanently not-ready
		// once new pushes raised the tail past it. Spawn carries the
		// epoch pointer and the consuming core's wake callback over to
		// the new generation.
		old := e.scq[id]
		old.Close()
		e.scq[id] = old.Spawn()
	}
	e.stats.Forks++
	e.idleValid = false
}

// Shutdown kills every context and closes the slip-control queues;
// called when the feeding processor halts.
func (e *CMPEngine) Shutdown() {
	for id := range e.ctxs {
		if c := &e.ctxs[id]; c.active {
			c.active = false
			e.stats.Killed++
			e.closeSCQ(id)
		}
	}
	e.idleValid = false
}

func (e *CMPEngine) closeSCQ(id int) {
	if id < len(e.scq) && e.scq[id] != nil {
		e.scq[id].Close()
	}
}

// Cycle advances every live context by up to IssueWidth in-order
// instructions, sharing the engine's cache ports.
func (e *CMPEngine) Cycle(now int64) error {
	_, err := e.CycleEv(now)
	return err
}

// CycleEv advances the engine one clock and returns its next-event
// cycle under the same contract as Core.CycleEv: now+1 after any
// progress, the earliest scoreboard wakeup when every context is
// blocked on an in-flight fill, and math.MaxInt64 when the only waits
// are on another component (a full slip-control queue).
func (e *CMPEngine) CycleEv(now int64) (int64, error) {
	if e.idleValid {
		if *e.epoch == e.idleEpoch && now < e.idleUntil {
			// Exact replay of the last ticked idle cycle (see Core.CycleEv).
			e.stats.PutStalls += e.idlePutStalls
			return e.idleUntil, nil
		}
		e.idleValid = false
	}
	ps := e.stats.PutStalls
	e.worked = false
	if err := e.cycle(now); err != nil {
		return now + 1, err
	}
	if e.worked {
		return now + 1, nil
	}
	e.idlePutStalls = e.stats.PutStalls - ps
	wake := e.nextWake(now)
	if e.fastIdle {
		e.idleValid = true
		e.idleUntil = wake
		e.idleEpoch = *e.epoch
	}
	return wake, nil
}

// nextWake returns the earliest cycle at which a blocked context's
// sources all become ready. Only called on idle cycles, where every
// active context is stalled either on the scoreboard (local deadline:
// the max of its pending readyAt times) or on a full slip-control
// queue (no local deadline — the consuming core's wakeup drives it).
func (e *CMPEngine) nextWake(now int64) int64 {
	wake := int64(math.MaxInt64)
	for id := range e.ctxs {
		c := &e.ctxs[id]
		if !c.active {
			continue
		}
		prog := e.progs[id]
		if c.pc < 0 || c.pc >= len(prog) {
			return now + 1 // next cycle reports the pc fault
		}
		if prog[c.pc].Op == isa.PUTSCQ {
			continue // waits on the consumer core
		}
		w := int64(0)
		d := &e.decos[id][c.pc]
		for i := 0; i < int(d.nsrc); i++ {
			if r := d.src[i]; r.IsArch() && c.readyAt[r] > w {
				w = c.readyAt[r]
			}
		}
		if w <= now {
			return now + 1 // blocked for a reason we cannot time: tick
		}
		if w < wake {
			wake = w
		}
	}
	return wake
}

// CreditIdle accounts n fast-forwarded idle cycles: the PutStalls
// pattern of the last (idle) cycle repeats n times.
func (e *CMPEngine) CreditIdle(n int64) {
	if n > 0 {
		e.stats.PutStalls += n * e.idlePutStalls
	}
}

func (e *CMPEngine) cycle(now int64) error {
	ports := 0
	for id := range e.ctxs {
		c := &e.ctxs[id]
		if !c.active {
			continue
		}
		for n := 0; n < e.cfg.IssueWidth && c.active; n++ {
			prog := e.progs[id]
			if c.pc < 0 || c.pc >= len(prog) {
				return fmt.Errorf("cmp: CMAS %d pc %d out of range", id, c.pc)
			}
			in := prog[c.pc]
			d := &e.decos[id][c.pc]
			if !c.srcReady(now, d) {
				break
			}
			if d.isMem && ports >= e.cfg.MemPorts {
				break // port contention: retry next cycle
			}
			advanced, usedPort, taken, err := e.step(now, id, c, in)
			if err != nil {
				return fmt.Errorf("cmp: CMAS %d pc %d (%v): %w", id, c.pc, in, err)
			}
			if usedPort {
				ports++
			}
			if !advanced {
				break
			}
			e.worked = true
			c.insts++
			e.stats.Executed++
			if c.insts > e.cfg.MaxInstsPerThread {
				c.active = false
				e.stats.Killed++
				e.closeSCQ(id)
			}
			if taken {
				break // fetch break after a taken branch
			}
		}
	}
	return nil
}

// step executes one CMAS instruction in context c; sources are known
// ready. It reports whether the pc advanced (PUTSCQ on a full queue
// retries), whether a cache port was consumed, and whether a taken
// branch ended the issue group.
func (e *CMPEngine) step(now int64, id int, c *cmpCtx, in isa.Inst) (advanced, usedPort, taken bool, err error) {
	next := c.pc + 1
	getInt := func(r isa.Reg) uint32 {
		if r == isa.R0 {
			return 0
		}
		return c.intR[r]
	}
	done := now + int64(in.Op.Class().Latency())

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		c.active = false
		e.stats.Completed++
		e.closeSCQ(id)
		c.pc = next
		return true, false, true, nil

	case isa.PUTSCQ:
		q := e.scqFor(int(in.Imm))
		if q == nil {
			return false, false, false, fmt.Errorf("no slip-control queue %d", in.Imm)
		}
		if !q.Push(1) {
			e.stats.PutStalls++
			return false, false, false, nil // full: bounded run-ahead
		}

	case isa.LW, isa.LBU, isa.LFD, isa.PREF:
		addr := getInt(in.Rs) + uint32(in.Imm)
		if in.Op == isa.PREF && e.cfg.DynamicDistance {
			addr += uint32(c.extraDist)
		}
		fill := e.hier.Access(now, addr, false, true)
		e.stats.Prefetches++
		usedPort = true
		if in.Op == isa.PREF && e.cfg.DynamicDistance {
			e.adapt(c, fill-now > int64(e.hier.Config().L1D.Latency))
		}
		// Non-blocking: the value is scoreboarded at the fill time, so
		// only consumers of a chased pointer wait.
		switch in.Op {
		case isa.LW:
			e.setInt(c, in.Rd, e.mem.Read32(addr))
		case isa.LBU:
			e.setInt(c, in.Rd, uint32(e.mem.Read8(addr)))
		case isa.LFD:
			e.setFP(c, in.Rd, e.mem.ReadFloat64(addr))
		}
		if in.Op != isa.PREF {
			c.setReady(in.Dest(), fill)
		}
		c.pc = next
		return true, true, false, nil

	case isa.SW, isa.SB, isa.SFD:
		return false, false, false, fmt.Errorf("store in CMAS (side-effect violation)")

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR, isa.XOR,
		isa.NOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU:
		v, evErr := isa.EvalIntALU(in.Op, getInt(in.Rs), getInt(in.Rt))
		if evErr != nil {
			// A slice racing ahead of stale data may divide by zero;
			// the result is speculative, so squash the thread rather
			// than the simulation.
			c.active = false
			e.stats.Killed++
			e.closeSCQ(id)
			return true, false, true, nil
		}
		e.setInt(c, in.Rd, v)
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI:
		v, evErr := isa.EvalIntALUImm(in.Op, getInt(in.Rs), in.Imm)
		if evErr != nil {
			return false, false, false, evErr
		}
		e.setInt(c, in.Rd, v)
	case isa.LI:
		e.setInt(c, in.Rd, uint32(in.Imm))
	case isa.LUI:
		e.setInt(c, in.Rd, uint32(in.Imm)<<16)

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMOV, isa.FNEG, isa.FABS:
		a := e.getFP(c, in.Rs)
		b := float64(0)
		if in.Op.ReadsRt() {
			b = e.getFP(c, in.Rt)
		}
		v, evErr := isa.EvalFP(in.Op, a, b)
		if evErr != nil {
			return false, false, false, evErr
		}
		e.setFP(c, in.Rd, v)
	case isa.CVTIF:
		e.setFP(c, in.Rd, float64(int32(getInt(in.Rs))))
	case isa.CVTFI:
		e.setInt(c, in.Rd, uint32(int32(math.Trunc(e.getFP(c, in.Rs)))))
	case isa.FLT, isa.FLE, isa.FEQ:
		v, evErr := isa.EvalFPCmp(in.Op, e.getFP(c, in.Rs), e.getFP(c, in.Rt))
		if evErr != nil {
			return false, false, false, evErr
		}
		if v {
			e.setInt(c, in.Rd, 1)
		} else {
			e.setInt(c, in.Rd, 0)
		}

	case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		b := uint32(0)
		if in.Op == isa.BEQ || in.Op == isa.BNE {
			b = getInt(in.Rt)
		}
		t, evErr := isa.EvalBranch(in.Op, getInt(in.Rs), b)
		if evErr != nil {
			return false, false, false, evErr
		}
		if t {
			next = in.Target()
			taken = true
		}
	case isa.J:
		next = in.Target()
		taken = true

	default:
		return false, false, false, fmt.Errorf("op %v not supported on the CMP", in.Op)
	}

	if d := in.Dest(); d.IsArch() {
		c.setReady(d, done)
	}
	c.pc = next
	return true, usedPort, taken, nil
}

// adapt runs the dynamic-distance controller: filled is true when the
// prefetch brought in a new line (it missed), false when it hit a line
// already present (too late, or re-touching).
func (e *CMPEngine) adapt(c *cmpCtx, filled bool) {
	c.windowCount++
	if filled {
		c.windowUseful++
	}
	if c.windowCount < e.cfg.DynamicWindow {
		return
	}
	useful := c.windowUseful * 4
	switch {
	case useful < e.cfg.DynamicWindow: // under 25% filling: push further ahead
		if c.extraDist < e.cfg.MaxDynamicDistance {
			c.extraDist += e.cfg.DynamicStep
			e.stats.DistanceGrows++
		}
	case useful > 3*e.cfg.DynamicWindow: // over 75% filling: relax toward static
		if c.extraDist > 0 {
			c.extraDist -= e.cfg.DynamicStep
			e.stats.DistanceShrinks++
		}
	}
	c.windowCount, c.windowUseful = 0, 0
}

func (e *CMPEngine) scqFor(id int) *queue.Queue {
	if id < 0 || id >= len(e.scq) {
		return nil
	}
	return e.scq[id]
}

func (e *CMPEngine) setInt(c *cmpCtx, r isa.Reg, v uint32) {
	if r.IsInt() && r != isa.R0 {
		c.intR[r] = v
	}
}

func (e *CMPEngine) setFP(c *cmpCtx, r isa.Reg, v float64) {
	if r.IsFP() {
		c.fpR[r.FPIndex()] = v
	}
}

func (e *CMPEngine) getFP(c *cmpCtx, r isa.Reg) float64 {
	if r.IsFP() {
		return c.fpR[r.FPIndex()]
	}
	return 0
}
