package cpu

import (
	"testing"

	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/simfault"
)

// checkWindowInvariants audits every cross-structure reference of the
// window-as-values scheme after a cycle: stat/due/bitmap mirrors, the
// counter trio, the rename table, the LSQ ring and pending operand
// producers. Its core assertion is that no stale-generation handle
// ever resolves — a squashed entry's handle must fail at() everywhere
// it could still be stored — and the dual: every live cross-reference
// must still resolve to the entry it was created for.
func checkWindowInvariants(t *testing.T, c *Core, cycle int64) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("cycle %d: "+format, append([]any{cycle}, args...)...)
	}
	occ := c.winTail - c.winHead
	if occ < 0 || occ > int64(c.cfg.WindowSize) {
		fail("window occupancy %d out of range", occ)
	}
	var unissued, inflight, ctlPending int
	var wantInflightBm, wantCtlBm, unissuedBm uint64
	for p := c.winHead; p < c.winTail; p++ {
		slot := uint32(p) & c.winMask
		e := &c.win[slot]
		bit := uint64(1) << slot
		if got := c.at(e.handle()); got != e {
			fail("live handle %v does not resolve to its entry", e.handle())
		}
		st := c.stat[slot]
		if (st&stIssued != 0) != e.issued || (st&stCompleted != 0) != e.completed || (st&stCtl != 0) != e.isCtl {
			fail("slot %d stat %#x disagrees with entry (issued=%v completed=%v ctl=%v)",
				slot, st, e.issued, e.completed, e.isCtl)
		}
		switch {
		case !e.issued:
			unissued++
			unissuedBm |= bit
		case !e.completed:
			inflight++
			wantInflightBm |= bit
			if c.due[slot] != e.completeAt {
				fail("slot %d due %d != completeAt %d", slot, c.due[slot], e.completeAt)
			}
		}
		if e.isCtl && !e.completed {
			ctlPending++
			wantCtlBm |= bit
		}
		if c.bmOK && !e.issued && c.readyBm&bit == 0 {
			// Dropped from the issue scan: must be provably
			// operand-blocked, or the wake that re-arms it can never
			// come and the entry is silently lost.
			blocked := false
			switch {
			case e.isStore:
				blocked = (!e.addrReady && !e.srcsBuf[0].ready) || (e.addrReady && !e.srcsBuf[1].ready)
			case e.isLoad:
				blocked = !e.srcsBuf[0].ready
			default:
				blocked = int(e.nready) < int(e.nsrc)
			}
			if !blocked {
				fail("slot %d dropped from readyBm but not operand-blocked", slot)
			}
		}
		for i := 0; i < int(e.nsrc); i++ {
			s := &e.srcsBuf[i]
			if s.producer == NoHandle {
				continue
			}
			if s.ready {
				fail("slot %d src %d ready but still has a producer", slot, i)
			}
			prod := c.at(s.producer)
			if prod == nil {
				fail("slot %d src %d waits on a squashed producer %v", slot, i, s.producer)
			}
			if prod.seq >= e.seq {
				fail("slot %d src %d producer #%d is not older than consumer #%d", slot, i, prod.seq, e.seq)
			}
		}
	}
	if c.nUnissued != unissued || c.nInflight != inflight || c.nCtlPending != ctlPending {
		fail("counters (unissued %d inflight %d ctl %d) != window contents (%d %d %d)",
			c.nUnissued, c.nInflight, c.nCtlPending, unissued, inflight, ctlPending)
	}
	if c.bmOK {
		if c.readyBm&^unissuedBm != 0 {
			fail("readyBm %#x contains slots outside the unissued set %#x", c.readyBm, unissuedBm)
		}
		if c.inflightBm != wantInflightBm {
			fail("inflightBm %#x, want %#x", c.inflightBm, wantInflightBm)
		}
		if c.ctlBm != wantCtlBm {
			fail("ctlBm %#x, want %#x", c.ctlBm, wantCtlBm)
		}
	}
	for r, h := range c.rename {
		if h == NoHandle {
			continue
		}
		e := c.at(h)
		if e == nil {
			fail("rename[%d] holds a stale handle %v", r, h)
		}
		if e.dest != isa.Reg(r) {
			fail("rename[%d] resolves to producer of %v", r, e.dest)
		}
	}
	prevSeq := int64(-1)
	for p := c.lsqHead; p < c.lsqTail; p++ {
		e := c.at(c.lsqRing[uint32(p)&c.lsqMask])
		if e == nil {
			fail("LSQ position %d holds a stale handle", p)
		}
		if !e.isLoad && !e.isStore {
			fail("LSQ position %d holds a non-memory entry", p)
		}
		if e.seq <= prevSeq {
			fail("LSQ out of program order at position %d", p)
		}
		prevSeq = e.seq
	}
	// Waiter lists may legitimately hold stale handles (squash leaves
	// them for the generation check to reject), but a live waiter must
	// still be pending on this slot's current occupant: delivery clears
	// the whole list and sets producer to NoHandle, and dispatch
	// truncates the list before re-occupying a slot, so a live entry
	// with no matching pending source means a wake was delivered by the
	// wrong generation.
	for slot := uint32(0); slot <= c.winMask; slot++ {
		for _, wh := range c.waiters[slot] {
			w := c.at(wh)
			if w == nil {
				continue
			}
			myH := c.win[slot].handle()
			found := false
			for i := 0; i < int(w.nsrc); i++ {
				if w.srcsBuf[i].producer == myH && !w.srcsBuf[i].ready {
					found = true
				}
			}
			if !found {
				fail("slot %d waiter list holds live entry #%d with no pending source on the occupant", slot, w.seq)
			}
		}
	}
}

// tortureKernel mixes data-dependent branches, loads, stores and a
// store->load-forwarding pattern, and reports a checksum. Under a
// mispredict storm every conditional fetch direction can be wrong, so
// squash/redirect churn is constant; the checksum and committed count
// must nevertheless match the functional simulator exactly.
const tortureKernel = `
        .data
buf:    .space 16384
        .text
main:   li   $r6, 0
        li   $r4, 12345
        li   $r8, 6
again:  la   $r2, buf
        li   $r1, 200
loop:   lw   $r3, 0($r2)
        add  $r4, $r4, $r3
        xor  $r5, $r4, $r3
        sw   $r5, 0($r2)
        andi $r7, $r4, 3
        bgtz $r7, skip
        addi $r6, $r6, 1
skip:   andi $r7, $r5, 1
        bgtz $r7, odd
        addi $r6, $r6, 2
odd:    addi $r2, $r2, 16
        addi $r1, $r1, -1
        bgtz $r1, loop
        addi $r8, $r8, -1
        bgtz $r8, again
        add  $r6, $r6, $r4
        out  $r6
        halt
`

// TestSquashStormInvariants runs the torture kernel under a permanent
// 70% mispredict-inversion storm (the PR 2 injector), audits every
// cross-structure handle after every cycle, and requires the final
// architectural output bit-identical to the functional simulator. Any
// stale-generation dereference that resolves — rename, LSQ, waiter
// list, push list or queue-wake tag — fails the invariant audit or
// corrupts the checksum.
func TestSquashStormInvariants(t *testing.T) {
	p := mustAssemble(t, "torture", tortureKernel)
	want, err := fnsim.RunProgram(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	inj := simfault.NewInjector(42, simfault.Action{
		Kind: simfault.ActMispredictStorm, Core: "ss", At: 0, Probability: 0.7,
	})
	cfg := Config{Name: "ss", ForceMispredict: func(now int64) bool { return inj.StormActive("ss", now) }}
	c, cycles := runCoreChecked(t, tortureKernel, cfg)
	if c.Stats().Squashed == 0 || c.Stats().Mispredicts == 0 {
		t.Fatalf("storm did not storm: %+v", c.Stats())
	}
	if len(c.Output()) != 1 || c.Output()[0] != want.Output[0] {
		t.Errorf("output %v, want %v", c.Output(), want.Output)
	}
	if c.Stats().Committed != want.Insts {
		t.Errorf("committed %d, want %d", c.Stats().Committed, want.Insts)
	}
	t.Logf("torture: %d cycles, %d squashed, %d mispredicts",
		cycles, c.Stats().Squashed, c.Stats().Mispredicts)
}

// runCoreChecked is runCore with the invariant audit after every cycle.
func runCoreChecked(t *testing.T, src string, cfg Config) (*Core, int64) {
	t.Helper()
	p := mustAssemble(t, "t", src)
	m := mem.NewMemory()
	m.LoadSegment(isa.DataBase, p.Data)
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg.HasMem = true
	c := New(cfg, p, m, h, QueueSet{})
	var cycle int64
	for !c.Halted() {
		if cycle > 10_000_000 {
			t.Fatalf("core did not halt within %d cycles", cycle)
		}
		if err := c.Cycle(cycle); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		checkWindowInvariants(t, c, cycle)
		cycle++
	}
	return c, cycle
}

// TestSquashStormCycleDoesNotAllocate pins the squash-heavy path at
// zero steady-state allocations: with every conditional prediction
// inverted, the window squashes continuously, exercising generation
// bumps, rename rebuilds, queue unclaims and waiter-list truncation.
func TestSquashStormCycleDoesNotAllocate(t *testing.T) {
	inj := simfault.NewInjector(7, simfault.Action{
		Kind: simfault.ActMispredictStorm, Core: "ss", At: 0, Probability: 1,
	})
	cfg := Config{Name: "ss", HasMem: true,
		ForceMispredict: func(now int64) bool { return inj.StormActive("ss", now) }}
	c, cycle := steadyCore(t, allocLoopKernel, cfg, QueueSet{})
	before := c.Stats().Squashed
	const cyclesPerRun = 5_000
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < cyclesPerRun; i++ {
			if err := c.Cycle(cycle); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			cycle++
		}
	})
	if avg != 0 {
		t.Errorf("squash storm: %.2f allocs per %d cycles in steady state, want 0", avg, cyclesPerRun)
	}
	if after := c.Stats().Squashed; after <= before {
		t.Fatalf("no squashes during measurement (before %d, after %d)", before, after)
	}
}
