package cpu

import (
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
)

// The steady-state cycle loop must not allocate: window entries come
// from the core's pool, operand lists live inside the entry, the
// fetch/window/LSQ deques and the push-release list reuse their backing
// arrays, and the rename table is a dense array. These tests pin that
// down with testing.AllocsPerRun so a regression fails loudly.

// allocLoopKernel keeps a superscalar core busy indefinitely: a
// load/store loop with a data-dependent branch mix (mispredicts and
// squashes are part of steady state).
const allocLoopKernel = `
        .data
buf:    .space 16384
        .text
main:   li   $r6, 0
again:  la   $r2, buf
        li   $r1, 256
loop:   lw   $r3, 0($r2)
        add  $r4, $r4, $r3
        xor  $r5, $r4, $r3
        sw   $r5, 0($r2)
        andi $r7, $r4, 3
        bgtz $r7, skip
        addi $r6, $r6, 1
skip:   addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, loop
        j    again
`

func steadyCore(t *testing.T, src string, cfg Config, qs QueueSet) (*Core, int64) {
	t.Helper()
	p, err := asm.Assemble("alloc", src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	m.LoadSegment(isa.DataBase, p.Data)
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg, p, m, h, qs)
	// Warm up: reach steady state so every scratch structure has grown
	// to its final capacity before measuring.
	var cycle int64
	for ; cycle < 20_000; cycle++ {
		if err := c.Cycle(cycle); err != nil {
			t.Fatalf("warmup cycle %d: %v", cycle, err)
		}
	}
	return c, cycle
}

func TestSuperscalarCycleDoesNotAllocate(t *testing.T) {
	c, cycle := steadyCore(t, allocLoopKernel, Config{Name: "ss", HasMem: true}, QueueSet{})
	const cyclesPerRun = 5_000
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < cyclesPerRun; i++ {
			if err := c.Cycle(cycle); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			cycle++
		}
	})
	if avg != 0 {
		t.Errorf("superscalar core: %.2f allocs per %d cycles in steady state, want 0", avg, cyclesPerRun)
	}
}

// TestDecoupledCycleDoesNotAllocate drives a CP/AP pair — the HiDISC
// cores — through their architectural queues: the AP streams loads into
// the LDQ and branch outcomes into the CQ, the CP consumes both and
// returns store data through the SDQ.
func TestDecoupledCycleDoesNotAllocate(t *testing.T) {
	apSrc := `
        .data
buf:    .space 16384
        .text
main:   la   $r2, buf
        li   $r1, 256
loop:   lw   $LDQ, 0($r2)
        sw   $SDQ, 4($r2)
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, loop
        j    main
`
	cpSrc := `
main:   li   $r4, 0
loop:   add  $r4, $r4, $LDQ
        xor  $SDQ, $r4, $r4
        bcq  loop
        j    main
`
	ap, err := asm.Assemble("ap", apSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The slicer normally annotates the AP's mirrored branches; tag the
	// loop branch by hand so its outcome feeds the CP's bcq.
	for i := range ap.Insts {
		if ap.Insts[i].Op == isa.BGTZ {
			ap.Insts[i].Ann |= isa.AnnPushCQ
		}
	}
	cp, err := asm.Assemble("cp", cpSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	m.LoadSegment(isa.DataBase, ap.Data)
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	ldq := queue.New("ldq", 32)
	sdq := queue.New("sdq", 32)
	cq := queue.New("cq", 64)
	cpCore := New(Config{Name: "cp", WindowSize: 16}, cp, m, h, QueueSet{
		Pop:  map[isa.Reg]*queue.Queue{isa.RegLDQ: ldq, isa.RegCQ: cq},
		Push: map[isa.Reg]*queue.Queue{isa.RegSDQ: sdq},
	})
	apCore := New(Config{Name: "ap", HasMem: true}, ap, m, h, QueueSet{
		Pop:  map[isa.Reg]*queue.Queue{isa.RegSDQ: sdq},
		Push: map[isa.Reg]*queue.Queue{isa.RegLDQ: ldq, isa.RegCQ: cq},
	})
	var cycle int64
	step := func(n int) {
		for i := 0; i < n; i++ {
			if err := cpCore.Cycle(cycle); err != nil {
				t.Fatalf("cp cycle %d: %v", cycle, err)
			}
			if err := apCore.Cycle(cycle); err != nil {
				t.Fatalf("ap cycle %d: %v", cycle, err)
			}
			cycle++
		}
	}
	step(20_000) // warm up
	before := cpCore.Stats().Committed + apCore.Stats().Committed
	const cyclesPerRun = 5_000
	avg := testing.AllocsPerRun(20, func() { step(cyclesPerRun) })
	if avg != 0 {
		t.Errorf("CP/AP pair: %.2f allocs per %d cycles in steady state, want 0", avg, cyclesPerRun)
	}
	if after := cpCore.Stats().Committed + apCore.Stats().Committed; after <= before {
		t.Fatalf("cores made no progress during measurement (committed %d)", after)
	}
}
