package cpu

import (
	"fmt"
	"io"

	"hidisc/internal/isa"
)

// Stage identifies a pipeline event kind for tracing.
type Stage string

// Pipeline event kinds.
const (
	StageFetch    Stage = "fetch"
	StageDispatch Stage = "dispatch"
	StageIssue    Stage = "issue"
	StageComplete Stage = "complete"
	StageCommit   Stage = "commit"
	StageSquash   Stage = "squash"
	StageRedirect Stage = "redirect"
	StagePush     Stage = "push"
)

// TraceEvent is one pipeline event delivered to a Tracer.
type TraceEvent struct {
	Cycle int64
	Core  string
	Stage Stage
	PC    int
	Seq   int64
	Inst  isa.Inst
	// Win identifies the window slot+generation the event's entry
	// occupies (NoHandle for events without a window entry), so trace
	// consumers can correlate the lifetime of one window residency
	// across stages even when seq counters or PCs repeat.
	Win  Handle
	Note string
}

// Tracer receives pipeline events; attach one via Config.Tracer to
// watch a core cycle by cycle. Implementations must be fast — they run
// inside the simulation loop.
type Tracer interface {
	Event(TraceEvent)
}

// TextTracer renders events as aligned text lines, optionally limited
// to a cycle window.
type TextTracer struct {
	W          io.Writer
	FromCycle  int64
	ToCycle    int64 // 0 = unbounded
	OnlyStages map[Stage]bool
}

// Event writes one formatted line.
func (t *TextTracer) Event(ev TraceEvent) {
	if ev.Cycle < t.FromCycle || (t.ToCycle > 0 && ev.Cycle > t.ToCycle) {
		return
	}
	if t.OnlyStages != nil && !t.OnlyStages[ev.Stage] {
		return
	}
	note := ev.Note
	if note != "" {
		note = "  ; " + note
	}
	fmt.Fprintf(t.W, "%10d %-4s %-8s #%-6d pc=%-5d %s%s\n",
		ev.Cycle, ev.Core, ev.Stage, ev.Seq, ev.PC, ev.Inst, note)
}

// CollectTracer buffers events for tests.
type CollectTracer struct {
	Events []TraceEvent
}

// Event appends the event.
func (c *CollectTracer) Event(ev TraceEvent) { c.Events = append(c.Events, ev) }

func (c *Core) trace(now int64, stage Stage, e *entry, note string) {
	if c.cfg.Tracer == nil {
		return
	}
	ev := TraceEvent{Cycle: now, Core: c.cfg.Name, Stage: stage, Win: NoHandle, Note: note}
	if e != nil {
		ev.PC, ev.Seq = e.pc, e.seq
		ev.Inst = c.prog.Insts[e.pc]
		ev.Win = e.handle()
	}
	c.cfg.Tracer.Event(ev)
}
