package cpu

import (
	"strings"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
)

// The tracer is the contract the machine-wide telemetry sink builds
// on: every event kind the pipeline can produce must actually be
// emitted, or the Perfetto view silently loses whole categories. These
// tests drive real kernels and assert on the event stream.

func countStages(evs []TraceEvent) map[Stage]int {
	n := map[Stage]int{}
	for _, ev := range evs {
		n[ev.Stage]++
	}
	return n
}

// TestTracerSquashEvents runs the branchy superscalar kernel (its
// data-dependent branches mispredict in steady state) and checks the
// squash path reports events alongside the plain pipeline stages.
func TestTracerSquashEvents(t *testing.T) {
	tr := &CollectTracer{}
	c, _ := steadyCore(t, allocLoopKernel, Config{Name: "ss", HasMem: true, Tracer: tr}, QueueSet{})

	n := countStages(tr.Events)
	for _, st := range []Stage{StageDispatch, StageIssue, StageComplete, StageCommit, StageSquash} {
		if n[st] == 0 {
			t.Errorf("no %s events in %d traced cycles", st, 20_000)
		}
	}
	if got, want := uint64(n[StageCommit]), c.Stats().Committed; got != want {
		t.Errorf("commit events %d != committed instructions %d", got, want)
	}
	// One squash event per mispredicting branch (the squashed younger
	// instructions are implied, not individually traced).
	if got, want := uint64(n[StageSquash]), c.Stats().Mispredicts; got != want {
		t.Errorf("squash events %d != mispredicted branches %d", got, want)
	}
	found := false
	for _, ev := range tr.Events {
		if ev.Stage == StageSquash && strings.Contains(ev.Note, "mispredict") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no squash event carries a mispredict note")
	}
}

// TestTracerPushAndRedirectEvents drives a CP/AP pair through their
// architectural queues: the AP's queue pushes must emit StagePush, and
// the CP's bcq — steered by CQ tokens against the fetch direction —
// must emit StageRedirect when the token disagrees.
func TestTracerPushAndRedirectEvents(t *testing.T) {
	apSrc := `
        .data
buf:    .space 16384
        .text
main:   la   $r2, buf
        li   $r1, 256
loop:   lw   $LDQ, 0($r2)
        sw   $SDQ, 4($r2)
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, loop
        j    main
`
	cpSrc := `
main:   li   $r4, 0
loop:   add  $r4, $r4, $LDQ
        xor  $SDQ, $r4, $r4
        bcq  loop
        j    main
`
	ap, err := asm.Assemble("ap", apSrc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ap.Insts {
		if ap.Insts[i].Op == isa.BGTZ {
			ap.Insts[i].Ann |= isa.AnnPushCQ
		}
	}
	cp, err := asm.Assemble("cp", cpSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	m.LoadSegment(isa.DataBase, ap.Data)
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	ldq := queue.New("ldq", 32)
	sdq := queue.New("sdq", 32)
	cq := queue.New("cq", 64)
	cpTr, apTr := &CollectTracer{}, &CollectTracer{}
	cpCore := New(Config{Name: "cp", WindowSize: 16, Tracer: cpTr}, cp, m, h, QueueSet{
		Pop:  map[isa.Reg]*queue.Queue{isa.RegLDQ: ldq, isa.RegCQ: cq},
		Push: map[isa.Reg]*queue.Queue{isa.RegSDQ: sdq},
	})
	apCore := New(Config{Name: "ap", HasMem: true, Tracer: apTr}, ap, m, h, QueueSet{
		Pop:  map[isa.Reg]*queue.Queue{isa.RegSDQ: sdq},
		Push: map[isa.Reg]*queue.Queue{isa.RegLDQ: ldq, isa.RegCQ: cq},
	})
	for cycle := int64(0); cycle < 30_000; cycle++ {
		if err := cpCore.Cycle(cycle); err != nil {
			t.Fatalf("cp cycle %d: %v", cycle, err)
		}
		if err := apCore.Cycle(cycle); err != nil {
			t.Fatalf("ap cycle %d: %v", cycle, err)
		}
	}

	apStages := countStages(apTr.Events)
	if apStages[StagePush] == 0 {
		t.Error("AP produced queue pushes but no StagePush events")
	}
	cpStages := countStages(cpTr.Events)
	if cpStages[StagePush] == 0 {
		t.Error("CP pushed the SDQ but emitted no StagePush events")
	}
	// Every core names itself in its events.
	for _, ev := range apTr.Events {
		if ev.Core != "ap" {
			t.Fatalf("AP event attributed to core %q", ev.Core)
		}
	}
}

// TestTracerRedirectEvents forces the dispatch-redirect path: the CQ is
// kept empty at fetch time (so the BCQ must predict) with the predictor
// inverted via ForceMispredict, and the always-taken token is pushed
// between cycles so the dispatch-time claim resolves immediately and
// steers the front end against the fetch direction.
func TestTracerRedirectEvents(t *testing.T) {
	src := `
main:   li   $r1, 0
loop:   addi $r1, $r1, 1
        bcq  loop
        j    main
`
	p, err := asm.Assemble("cp", src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.NewMemory()
	h, err := mem.NewHierarchy(mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	cq := queue.New("cq", 8)
	tr := &CollectTracer{}
	c := New(Config{
		Name:            "cp",
		Tracer:          tr,
		ForceMispredict: func(int64) bool { return true },
	}, p, m, h, QueueSet{Pop: map[isa.Reg]*queue.Queue{isa.RegCQ: cq}})
	for cycle := int64(0); cycle < 5_000; cycle++ {
		if err := c.Cycle(cycle); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if cq.Avail() == 0 && !cq.Full() {
			cq.Push(1) // always taken
		}
	}
	n := countStages(tr.Events)
	if c.Stats().DispatchRedirects == 0 {
		t.Fatal("scenario produced no dispatch redirects; test setup is stale")
	}
	if got, want := uint64(n[StageRedirect]), c.Stats().DispatchRedirects; got != want {
		t.Errorf("redirect events %d != dispatch redirects %d", got, want)
	}
	found := false
	for _, ev := range tr.Events {
		if ev.Stage == StageRedirect && strings.Contains(ev.Note, "token steers") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no redirect event carries a steering note")
	}
}
