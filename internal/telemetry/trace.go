package telemetry

import (
	"hidisc/internal/cpu"
)

// Trace is one machine's event sink: it implements cpu.Tracer for
// pipeline events and the queue/mem Probe interfaces for queue and
// memory-system events, and multiplexes everything onto its writer.
// The machine points every component at it and advances its clock
// (SetNow) once per visited cycle; queue and memory probes carry no
// cycle of their own, so the clock timestamps them.
type Trace struct {
	w     *TraceWriter
	pid   int
	label string
	now   int64

	tids map[string]int
	open map[string]map[int64]openSlice // core → seq → in-flight slice
}

// openSlice tracks a dispatched instruction until commit or squash
// closes its duration slice.
type openSlice struct {
	start int64
	name  string
	pc    int
}

// SetNow advances the trace clock; the machine calls it once per
// visited cycle, before any component ticks.
func (t *Trace) SetNow(cycle int64) { t.now = cycle }

// SetSpanContext records the distributed-tracing span this session ran
// under, as a metadata event. The coordinator's trace assembler reads
// it back to parent this machine timeline under the simulate span that
// produced it; trace viewers ignore unknown metadata. Call before the
// simulation starts so the ids lead the event stream.
func (t *Trace) SetSpanContext(traceID, spanID string) {
	switch t.w.format {
	case FormatPerfetto:
		t.w.emit(map[string]any{
			"ph": "M", "name": "span_context", "pid": t.pid,
			"args": map[string]any{"traceId": traceID, "spanId": spanID},
		})
	case FormatNDJSON:
		t.w.emit(map[string]any{
			"ev": "span_context", "pid": t.pid, "traceId": traceID, "spanId": spanID,
		})
	}
}

// Label returns the session label.
func (t *Trace) Label() string { return t.label }

// track returns the tid for a named track, assigning the next id and
// emitting Perfetto thread metadata on first use.
func (t *Trace) track(name string) int {
	if tid, ok := t.tids[name]; ok {
		return tid
	}
	tid := len(t.tids) + 1
	t.tids[name] = tid
	if t.w.format == FormatPerfetto {
		t.w.emit(map[string]any{
			"ph": "M", "name": "thread_name", "pid": t.pid, "tid": tid,
			"args": map[string]any{"name": name},
		})
	}
	return tid
}

// Event receives one pipeline event (the cpu.Tracer interface). The
// NDJSON stream records every event verbatim; the Perfetto view folds
// dispatch→commit into duration slices per core track and renders
// squash/redirect/push as instant markers.
func (t *Trace) Event(ev cpu.TraceEvent) {
	if t.w.format == FormatNDJSON {
		m := map[string]any{
			"ev": "pipeline", "pid": t.pid, "cycle": ev.Cycle, "core": ev.Core,
			"stage": string(ev.Stage), "pc": ev.PC, "seq": ev.Seq, "inst": ev.Inst.String(),
		}
		if ev.Win != cpu.NoHandle {
			m["win"] = ev.Win.String()
		}
		if ev.Note != "" {
			m["note"] = ev.Note
		}
		t.w.emit(m)
		return
	}
	tid := t.track(ev.Core)
	switch ev.Stage {
	case cpu.StageDispatch:
		if t.open == nil {
			t.open = map[string]map[int64]openSlice{}
		}
		byCore := t.open[ev.Core]
		if byCore == nil {
			byCore = map[int64]openSlice{}
			t.open[ev.Core] = byCore
		}
		byCore[ev.Seq] = openSlice{start: ev.Cycle, name: ev.Inst.String(), pc: ev.PC}
	case cpu.StageCommit, cpu.StageSquash:
		if sl, ok := t.open[ev.Core][ev.Seq]; ok {
			delete(t.open[ev.Core], ev.Seq)
			name := sl.name
			if ev.Stage == cpu.StageSquash {
				name += " (squashed)"
			}
			t.w.emit(map[string]any{
				"ph": "X", "cat": "pipeline", "name": name,
				"pid": t.pid, "tid": tid, "ts": sl.start, "dur": ev.Cycle - sl.start + 1,
				"args": map[string]any{"pc": sl.pc, "seq": ev.Seq, "note": ev.Note, "win": ev.Win.String()},
			})
		}
	case cpu.StageRedirect, cpu.StagePush:
		t.w.emit(map[string]any{
			"ph": "i", "s": "t", "cat": string(ev.Stage), "name": string(ev.Stage),
			"pid": t.pid, "tid": tid, "ts": ev.Cycle,
			"args": map[string]any{"pc": ev.PC, "seq": ev.Seq, "note": ev.Note},
		})
	}
	// Issue and complete are implicit in the slice; the NDJSON stream
	// keeps them for analyses that need per-stage timing.
}

// QueuePush receives one architectural-queue push (queue.Probe).
func (t *Trace) QueuePush(name string, occupancy int) {
	t.queueEvent("push", name, occupancy)
}

// QueuePop receives one queue storage release (queue.Probe).
func (t *Trace) QueuePop(name string, occupancy int) {
	t.queueEvent("pop", name, occupancy)
}

func (t *Trace) queueEvent(action, name string, occupancy int) {
	if t.w.format == FormatNDJSON {
		t.w.emit(map[string]any{
			"ev": "queue", "pid": t.pid, "cycle": t.now,
			"queue": name, "action": action, "occ": occupancy,
		})
		return
	}
	t.w.emit(map[string]any{
		"ph": "C", "name": "queue " + name, "pid": t.pid, "ts": t.now,
		"args": map[string]any{"entries": occupancy},
	})
}

// CacheMiss receives one cache miss (mem.Probe).
func (t *Trace) CacheMiss(level string, addr uint32, prefetch bool) {
	if t.w.format == FormatNDJSON {
		t.w.emit(map[string]any{
			"ev": "cache", "pid": t.pid, "cycle": t.now,
			"level": level, "action": "miss", "addr": addr, "prefetch": prefetch,
		})
		return
	}
	name := level + " miss"
	if prefetch {
		name = level + " prefetch miss"
	}
	t.w.emit(map[string]any{
		"ph": "i", "s": "t", "cat": "cache", "name": name,
		"pid": t.pid, "tid": t.track("mem"), "ts": t.now,
		"args": map[string]any{"addr": addr},
	})
}

// CacheFill receives one L1 fill reservation (mem.Probe): the miss at
// the trace clock completes at readyAt. Rendered as a duration slice on
// the mem track, so fill latency is visible directly.
func (t *Trace) CacheFill(level string, addr uint32, readyAt int64) {
	if t.w.format == FormatNDJSON {
		t.w.emit(map[string]any{
			"ev": "cache", "pid": t.pid, "cycle": t.now,
			"level": level, "action": "fill", "addr": addr, "ready": readyAt,
		})
		return
	}
	t.w.emit(map[string]any{
		"ph": "X", "cat": "cache", "name": level + " fill",
		"pid": t.pid, "tid": t.track("mem"), "ts": t.now, "dur": readyAt - t.now,
		"args": map[string]any{"addr": addr},
	})
}

// PrefetchIssued receives one prefetch issue (mem.Probe).
func (t *Trace) PrefetchIssued(addr uint32) {
	if t.w.format == FormatNDJSON {
		t.w.emit(map[string]any{
			"ev": "prefetch", "pid": t.pid, "cycle": t.now, "addr": addr,
		})
		return
	}
	t.w.emit(map[string]any{
		"ph": "i", "s": "t", "cat": "prefetch", "name": "prefetch",
		"pid": t.pid, "tid": t.track("mem"), "ts": t.now,
		"args": map[string]any{"addr": addr},
	})
}

// MSHROccupancy receives the in-flight fill count after it changed
// (mem.Probe); a counter track in the Perfetto view.
func (t *Trace) MSHROccupancy(n int) {
	if t.w.format == FormatNDJSON {
		t.w.emit(map[string]any{"ev": "mshr", "pid": t.pid, "cycle": t.now, "occ": n})
		return
	}
	t.w.emit(map[string]any{
		"ph": "C", "name": "mshr", "pid": t.pid, "ts": t.now,
		"args": map[string]any{"inflight": n},
	})
}
