// Package telemetry is the machine-wide observability layer: an
// interval Sampler that records per-interval time series (IPC,
// queue-wait fractions, queue occupancies, miss rates, prefetch
// counts) into preallocated columnar buffers, and a Trace sink that
// fans pipeline, queue and memory events into Chrome-trace-event
// (Perfetto-loadable) JSON or an NDJSON event stream.
//
// Both halves are pure observers. They read counters and receive
// events but never mutate simulation state, so an instrumented run
// produces a machine.Result bit-identical to an uninstrumented one —
// with and without the event-driven idle-cycle fast-forward (the
// sampler publishes its next boundary so the machine clamps jumps to
// it, and visiting an extra idle cycle is an exact replay). The
// differential tests in internal/experiments pin this.
//
// With telemetry disabled every hook is a single nil pointer check;
// the AllocsPerRun pins in internal/cpu, internal/queue and
// internal/mem prove the telemetry-off hot loop stays allocation-free.
package telemetry
