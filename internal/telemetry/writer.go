package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Format selects the trace file encoding.
type Format string

// Supported trace encodings.
const (
	// FormatPerfetto is the Chrome trace-event JSON form
	// ({"traceEvents":[...]}): load the file in ui.perfetto.dev or
	// chrome://tracing. Pipeline activity renders as per-core duration
	// slices (dispatch→commit), queue and MSHR occupancy as counter
	// tracks. Cycles are written as microsecond timestamps, so "1 µs"
	// in the UI reads as one machine cycle.
	FormatPerfetto Format = "perfetto"
	// FormatNDJSON is a lossless event stream: one JSON object per
	// event per line, for ad-hoc analysis with jq or a dataframe.
	FormatNDJSON Format = "ndjson"
)

// ParseFormat resolves a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatPerfetto, FormatNDJSON:
		return Format(s), nil
	case "":
		return FormatPerfetto, nil
	}
	return "", fmt.Errorf("unknown trace format %q (want %q or %q)", s, FormatPerfetto, FormatNDJSON)
}

// TraceWriter owns one trace output stream. It is not safe for
// concurrent use: callers that trace multiple machines (hidisc-bench)
// run them sequentially, each under its own Session. Close finalises
// the file — for Perfetto output the JSON is invalid until then.
type TraceWriter struct {
	bw     *bufio.Writer
	c      io.Closer
	format Format
	events int
	err    error

	nextPid int
}

// NewTraceWriter starts a trace stream in the given format, writing
// the Perfetto preamble immediately. If w is an io.Closer it is closed
// by Close.
func NewTraceWriter(w io.Writer, format Format) *TraceWriter {
	tw := &TraceWriter{bw: bufio.NewWriterSize(w, 1<<16), format: format}
	if c, ok := w.(io.Closer); ok {
		tw.c = c
	}
	if format == FormatPerfetto {
		tw.writeString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	}
	return tw
}

// Format returns the stream's encoding.
func (w *TraceWriter) Format() Format { return w.format }

// Events returns how many events have been written.
func (w *TraceWriter) Events() int { return w.events }

// Session opens a per-machine trace session. Each session is one
// Perfetto "process" (its own pid and named track group), so a
// multi-job trace file keeps jobs visually separate.
func (w *TraceWriter) Session(label string) *Trace {
	w.nextPid++
	t := &Trace{w: w, pid: w.nextPid, label: label, tids: map[string]int{}}
	switch w.format {
	case FormatPerfetto:
		w.emit(map[string]any{
			"ph": "M", "name": "process_name", "pid": t.pid,
			"args": map[string]any{"name": label},
		})
	case FormatNDJSON:
		w.emit(map[string]any{"ev": "session", "pid": t.pid, "label": label})
	}
	return t
}

// emit writes one event object. Maps marshal with sorted keys, so the
// output is deterministic for a deterministic event stream.
func (w *TraceWriter) emit(m map[string]any) {
	if w.err != nil {
		return
	}
	data, err := json.Marshal(m)
	if err != nil {
		w.err = err
		return
	}
	if w.format == FormatPerfetto && w.events > 0 {
		w.writeString(",\n")
	}
	w.write(data)
	if w.format == FormatNDJSON {
		w.writeString("\n")
	}
	w.events++
}

func (w *TraceWriter) write(p []byte) {
	if w.err == nil {
		_, w.err = w.bw.Write(p)
	}
}

func (w *TraceWriter) writeString(s string) {
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
}

// Close finalises the stream (the Perfetto array footer), flushes, and
// closes the underlying writer when it is closable. It returns the
// first error encountered at any point of the stream's life.
func (w *TraceWriter) Close() error {
	if w.format == FormatPerfetto {
		w.writeString("\n]}\n")
	}
	if err := w.bw.Flush(); w.err == nil {
		w.err = err
	}
	if w.c != nil {
		if err := w.c.Close(); w.err == nil {
			w.err = err
		}
	}
	return w.err
}
