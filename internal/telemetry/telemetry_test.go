package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hidisc/internal/cpu"
	"hidisc/internal/isa"
)

// fillAndRecord fills the sampler's scratch row with synthetic
// cumulative counters derived from the cycle and records it.
func fillAndRecord(s *Sampler, cycle int64) {
	r := s.Row()
	r.Cycle = cycle
	for i := range r.Cores {
		r.Cores[i].Committed = uint64(cycle) * 2
		r.Cores[i].QueueWait = cycle / 4
		r.Cores[i].MemWait = cycle / 8
	}
	for i := range r.Queues {
		r.Queues[i] = int(cycle % 7)
	}
	r.L1DAccesses = uint64(cycle)
	r.L1DMisses = uint64(cycle) / 10
	r.L2Accesses = uint64(cycle) / 10
	r.L2Misses = uint64(cycle) / 20
	r.PrefetchIssued = uint64(cycle) / 3
	r.PrefetchUseful = uint64(cycle) / 6
	r.MSHR = int(cycle % 5)
	s.Record()
}

func TestSamplerRowContract(t *testing.T) {
	s := NewSampler(100)
	s.Start([]string{"cp", "ap"}, []string{"ldq", "cq"})
	// Simulate a machine that visits every boundary and finishes at a
	// non-boundary cycle: rows must equal ceil(final/interval).
	final := int64(537)
	for c := int64(0); c <= final; c++ {
		if s.Due(c) {
			fillAndRecord(s, c)
		}
	}
	fillAndRecord(s, final) // the machine's final flush
	tl := s.Timeline()
	if want := int((final + 99) / 100); tl.Rows() != want {
		t.Fatalf("rows = %d, want %d", tl.Rows(), want)
	}
	// Boundary rows land at multiples of the interval; the flush row
	// carries the final cycle.
	for i := 0; i < tl.Rows()-1; i++ {
		if tl.Cycle[i] != int64(i+1)*100 {
			t.Errorf("row %d at cycle %d, want %d", i, tl.Cycle[i], (i+1)*100)
		}
	}
	if got := tl.Cycle[tl.Rows()-1]; got != final {
		t.Errorf("flush row at cycle %d, want %d", got, final)
	}
	// Interval deltas: committed grows 2/cycle, so IPC is exactly 2.
	for i := range tl.Cycle {
		if tl.CoreIPC[0][i] != 2 {
			t.Errorf("row %d ipc = %v, want 2", i, tl.CoreIPC[0][i])
		}
	}
	// Committed deltas sum back to the cumulative total.
	var sum uint64
	for _, d := range tl.CoreCommitted[1] {
		sum += d
	}
	if want := uint64(final) * 2; sum != want {
		t.Errorf("committed deltas sum to %d, want %d", sum, want)
	}
}

func TestSamplerDropsZeroLengthInterval(t *testing.T) {
	s := NewSampler(50)
	s.Start([]string{"c"}, nil)
	fillAndRecord(s, 50)
	fillAndRecord(s, 100)
	// A run ending exactly on a boundary flushes the same cycle again;
	// the zero-length interval must not produce a row.
	fillAndRecord(s, 100)
	if got := s.Timeline().Rows(); got != 2 {
		t.Fatalf("rows = %d, want 2 (zero-length flush must be dropped)", got)
	}
}

func TestSamplerBoundaryAdvances(t *testing.T) {
	s := NewSampler(64)
	s.Start([]string{"c"}, nil)
	if s.Boundary() != 64 {
		t.Fatalf("initial boundary = %d, want 64", s.Boundary())
	}
	if s.Due(63) || !s.Due(64) {
		t.Fatal("Due must fire exactly at the boundary")
	}
	fillAndRecord(s, 64)
	if s.Boundary() != 128 {
		t.Fatalf("boundary after record = %d, want 128", s.Boundary())
	}
	// An unstarted sampler is never due.
	if NewSampler(64).Due(64) {
		t.Fatal("unstarted sampler reported Due")
	}
}

func TestNewSamplerDefaultInterval(t *testing.T) {
	if got := NewSampler(0).Interval(); got != DefaultInterval {
		t.Errorf("interval = %d, want %d", got, DefaultInterval)
	}
	if got := NewSampler(-5).Interval(); got != DefaultInterval {
		t.Errorf("interval = %d, want %d", got, DefaultInterval)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"": FormatPerfetto, "perfetto": FormatPerfetto, "ndjson": FormatNDJSON} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted an unknown format")
	}
}

func TestTimelineNDJSONAndCSV(t *testing.T) {
	s := NewSampler(10)
	s.SetLabel("job1")
	s.Start([]string{"cp"}, []string{"ldq"})
	fillAndRecord(s, 10)
	fillAndRecord(s, 20)
	tl := s.Timeline()

	var nd bytes.Buffer
	if err := tl.WriteNDJSON(&nd); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(nd.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d, want 2", len(lines))
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("NDJSON row does not parse: %v", err)
	}
	if row["cycle"] != float64(10) || row["label"] != "job1" {
		t.Errorf("row fields: %v", row)
	}
	cores, ok := row["cores"].(map[string]any)
	if !ok || cores["cp"] == nil {
		t.Errorf("row missing per-core block: %v", row)
	}

	var csv bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(csvLines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows", len(csvLines))
	}
	head := strings.Split(csvLines[0], ",")
	for _, want := range []string{"cycle", "label", "cp_ipc", "ldq_occ", "l1d_miss_rate", "mshr"} {
		found := false
		for _, h := range head {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("CSV header missing %q: %v", want, head)
		}
	}
	for i, line := range csvLines[1:] {
		if got := len(strings.Split(line, ",")); got != len(head) {
			t.Errorf("CSV row %d has %d fields, header has %d", i, got, len(head))
		}
	}
}

// traceSession drives a full writer+session lifecycle and returns the
// finished output.
func traceSession(t *testing.T, format Format) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, format)
	tr := w.Session("test-job")
	inst := isa.Inst{Op: isa.ADD, Rd: isa.R1, Rs: isa.R2, Rt: isa.R3}
	tr.SetNow(0)
	// Window handles as the core's trace() emits them: slot 5 at
	// generation 1 for seq 9, its reuse at generation 2 for seq 10;
	// the redirect carries no entry, hence NoHandle.
	h9, h10 := cpu.Handle(1<<16|5), cpu.Handle(2<<16|5)
	tr.Event(cpu.TraceEvent{Cycle: 0, Core: "cp", Stage: cpu.StageDispatch, PC: 4, Seq: 9, Inst: inst, Win: h9})
	tr.Event(cpu.TraceEvent{Cycle: 0, Core: "cp", Stage: cpu.StageIssue, PC: 4, Seq: 9, Inst: inst, Win: h9})
	tr.SetNow(3)
	tr.Event(cpu.TraceEvent{Cycle: 3, Core: "cp", Stage: cpu.StageCommit, PC: 4, Seq: 9, Inst: inst, Win: h9})
	tr.Event(cpu.TraceEvent{Cycle: 3, Core: "cp", Stage: cpu.StageDispatch, PC: 5, Seq: 10, Inst: inst, Win: h10})
	tr.Event(cpu.TraceEvent{Cycle: 3, Core: "cp", Stage: cpu.StageSquash, PC: 5, Seq: 10, Inst: inst, Note: "mispredict", Win: h10})
	tr.Event(cpu.TraceEvent{Cycle: 3, Core: "cp", Stage: cpu.StageRedirect, PC: 6, Seq: 11, Note: "token steers to 2", Win: cpu.NoHandle})
	tr.QueuePush("ldq", 3)
	tr.QueuePop("ldq", 2)
	tr.CacheMiss("l1d", 0x1000, false)
	tr.CacheMiss("l2", 0x1000, true)
	tr.CacheFill("l1d", 0x1000, 133)
	tr.PrefetchIssued(0x2000)
	tr.MSHROccupancy(2)
	if w.Events() == 0 {
		t.Fatal("no events written")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTraceWriterPerfettoParses(t *testing.T) {
	out := traceSession(t, FormatPerfetto)
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
		if _, ok := ev["pid"]; !ok {
			t.Errorf("event missing pid: %v", ev)
		}
	}
	if phases["M"] < 2 {
		t.Errorf("want process+thread metadata, phases = %v", phases)
	}
	// Commit slice, squash slice, and the fill slice.
	if phases["X"] < 3 {
		t.Errorf("want 3 duration slices, phases = %v", phases)
	}
	if phases["C"] < 3 {
		t.Errorf("want queue+mshr counter samples, phases = %v", phases)
	}
	if phases["i"] == 0 {
		t.Errorf("want instant markers, phases = %v", phases)
	}
	for _, want := range []string{"process_name", "thread_name", "queue ldq", "mshr", "l1d miss", "l2 prefetch miss", "l1d fill", "redirect"} {
		if !names[want] {
			t.Errorf("no event named %q (names: %v)", want, names)
		}
	}
	labelled := false
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "process_name" {
			if a, ok := ev["args"].(map[string]any); ok && a["name"] == "test-job" {
				labelled = true
			}
		}
	}
	if !labelled {
		t.Error("session label did not reach the process_name metadata")
	}
	squashed := false
	for n := range names {
		if strings.Contains(n, "(squashed)") {
			squashed = true
		}
	}
	if !squashed {
		t.Error("squash did not close its slice with a (squashed) name")
	}
}

func TestTraceWriterNDJSON(t *testing.T) {
	out := traceSession(t, FormatNDJSON)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	kinds := map[string]int{}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
		k, _ := ev["ev"].(string)
		kinds[k]++
	}
	// Lossless: every pipeline stage appears, including issue.
	if kinds["pipeline"] != 6 {
		t.Errorf("pipeline events = %d, want 6 (%v)", kinds["pipeline"], kinds)
	}
	// Window handles survive into the stream: the squash row must name
	// slot 5 at generation 2, and the redirect (no entry) must omit win.
	wins := map[string]int{}
	for _, line := range lines {
		var ev map[string]any
		_ = json.Unmarshal([]byte(line), &ev)
		if ev["ev"] == "pipeline" {
			if w, ok := ev["win"].(string); ok {
				wins[w]++
			}
		}
	}
	if wins["w5.g1"] != 3 || wins["w5.g2"] != 2 {
		t.Errorf("win handles = %v, want w5.g1 x3 and w5.g2 x2", wins)
	}
	for _, k := range []string{"session", "queue", "cache", "prefetch", "mshr"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events (%v)", k, kinds)
		}
	}
}

func TestTraceWriterMultipleSessions(t *testing.T) {
	var buf bytes.Buffer
	w := NewTraceWriter(&buf, FormatPerfetto)
	a := w.Session("a")
	b := w.Session("b")
	a.SetNow(1)
	a.QueuePush("q", 1)
	b.SetNow(1)
	b.QueuePush("q", 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if len(pids) != 2 {
		t.Errorf("want 2 distinct session pids, got %v", pids)
	}
}
