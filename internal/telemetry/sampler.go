package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// CoreSample is one core's cumulative counters at a sample boundary.
// The machine fills these from cpu.Stats; the sampler differences
// consecutive samples into per-interval rates.
type CoreSample struct {
	Committed uint64
	QueueWait int64 // cycles the oldest entry waited on an architectural queue
	MemWait   int64 // cycles the oldest entry waited on a cache access
}

// Row is the sampler's reusable scratch record. The machine fills it
// with cumulative counters at a sample cycle and calls Record; the
// sampler turns consecutive rows into interval deltas, so filling is
// a plain copy of already-maintained statistics — no per-sample
// bookkeeping inside the components.
type Row struct {
	Cycle  int64
	Cores  []CoreSample
	Queues []int // current occupancy per architectural queue

	L1DAccesses, L1DMisses         uint64 // demand traffic, cumulative
	L2Accesses, L2Misses           uint64
	PrefetchIssued, PrefetchUseful uint64
	MSHR                           int // fills in flight at the sample cycle
}

// Sampler records interval time series. The machine clocks it like
// any other component: Boundary reports the next cycle it must be
// visited at (clamping the idle-cycle fast-forward), Due tests whether
// the current cycle is a boundary, and Record consumes the scratch Row
// the machine filled. NewSampler → (machine attaches, calls Start) →
// Due/Record per boundary → Timeline.
type Sampler struct {
	interval int64
	next     int64
	started  bool

	scratch Row
	prev    Row // previous cumulative sample (interval differencing)

	tl Timeline
}

// DefaultInterval is the sampling interval when none is given.
const DefaultInterval = 1024

// NewSampler returns a sampler recording every interval cycles
// (DefaultInterval when interval <= 0).
func NewSampler(interval int64) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Sampler{interval: interval, next: interval}
}

// SetLabel tags the timeline (hidisc-bench labels each job's rows so
// one file can hold a whole run matrix).
func (s *Sampler) SetLabel(label string) { s.tl.Label = label }

// Interval returns the sampling interval in cycles.
func (s *Sampler) Interval() int64 { return s.interval }

// Start sizes the sampler for a machine: the per-core and per-queue
// series it will record. Called once by machine.New; the columnar
// buffers are preallocated here so steady-state recording is append
// into reserved capacity.
func (s *Sampler) Start(cores, queues []string) {
	const reserve = 1024 // rows preallocated per series
	s.started = true
	s.scratch = Row{Cores: make([]CoreSample, len(cores)), Queues: make([]int, len(queues))}
	s.prev = Row{Cores: make([]CoreSample, len(cores)), Queues: make([]int, len(queues))}
	s.tl.Interval = s.interval
	s.tl.Cores = append([]string(nil), cores...)
	s.tl.Queues = append([]string(nil), queues...)
	s.tl.Cycle = make([]int64, 0, reserve)
	col := func(n int) [][]float64 {
		c := make([][]float64, n)
		for i := range c {
			c[i] = make([]float64, 0, reserve)
		}
		return c
	}
	s.tl.CoreIPC = col(len(cores))
	s.tl.CoreLOD = col(len(cores))
	s.tl.CoreMemWait = col(len(cores))
	s.tl.CoreCommitted = make([][]uint64, len(cores))
	for i := range s.tl.CoreCommitted {
		s.tl.CoreCommitted[i] = make([]uint64, 0, reserve)
	}
	s.tl.QueueOcc = make([][]int, len(queues))
	for i := range s.tl.QueueOcc {
		s.tl.QueueOcc[i] = make([]int, 0, reserve)
	}
	s.tl.L1DMissRate = make([]float64, 0, reserve)
	s.tl.L2MissRate = make([]float64, 0, reserve)
	s.tl.MSHROcc = make([]int, 0, reserve)
	s.tl.PrefetchIssued = make([]uint64, 0, reserve)
	s.tl.PrefetchUseful = make([]uint64, 0, reserve)
}

// Due reports whether now is a sample boundary.
func (s *Sampler) Due(now int64) bool { return s.started && now == s.next }

// Boundary returns the next cycle the machine must visit so the
// sampler can observe it. Always strictly greater than the cycle the
// machine is deciding a jump from, so it composes as one more clamp.
func (s *Sampler) Boundary() int64 { return s.next }

// Row returns the scratch row for the machine to fill before Record.
func (s *Sampler) Row() *Row { return &s.scratch }

// Record consumes the filled scratch row: interval deltas against the
// previous sample are appended to the timeline. A row that advances no
// cycles (a run ending exactly on a boundary) is dropped, so the row
// count is exactly ceil(totalCycles/interval).
func (s *Sampler) Record() {
	r := &s.scratch
	cycles := r.Cycle - s.prev.Cycle
	if cycles <= 0 {
		return
	}
	fc := float64(cycles)
	s.tl.Cycle = append(s.tl.Cycle, r.Cycle)
	for i := range r.Cores {
		d := r.Cores[i].Committed - s.prev.Cores[i].Committed
		s.tl.CoreCommitted[i] = append(s.tl.CoreCommitted[i], d)
		s.tl.CoreIPC[i] = append(s.tl.CoreIPC[i], float64(d)/fc)
		s.tl.CoreLOD[i] = append(s.tl.CoreLOD[i], float64(r.Cores[i].QueueWait-s.prev.Cores[i].QueueWait)/fc)
		s.tl.CoreMemWait[i] = append(s.tl.CoreMemWait[i], float64(r.Cores[i].MemWait-s.prev.Cores[i].MemWait)/fc)
	}
	for i, occ := range r.Queues {
		s.tl.QueueOcc[i] = append(s.tl.QueueOcc[i], occ)
	}
	s.tl.L1DMissRate = append(s.tl.L1DMissRate, rate(r.L1DMisses-s.prev.L1DMisses, r.L1DAccesses-s.prev.L1DAccesses))
	s.tl.L2MissRate = append(s.tl.L2MissRate, rate(r.L2Misses-s.prev.L2Misses, r.L2Accesses-s.prev.L2Accesses))
	s.tl.MSHROcc = append(s.tl.MSHROcc, r.MSHR)
	s.tl.PrefetchIssued = append(s.tl.PrefetchIssued, r.PrefetchIssued-s.prev.PrefetchIssued)
	s.tl.PrefetchUseful = append(s.tl.PrefetchUseful, r.PrefetchUseful-s.prev.PrefetchUseful)

	s.prev.Cycle = r.Cycle
	copy(s.prev.Cores, r.Cores)
	copy(s.prev.Queues, r.Queues)
	s.prev.L1DAccesses, s.prev.L1DMisses = r.L1DAccesses, r.L1DMisses
	s.prev.L2Accesses, s.prev.L2Misses = r.L2Accesses, r.L2Misses
	s.prev.PrefetchIssued, s.prev.PrefetchUseful = r.PrefetchIssued, r.PrefetchUseful
	s.prev.MSHR = r.MSHR
	if r.Cycle >= s.next {
		s.next = (r.Cycle/s.interval + 1) * s.interval
	}
}

func rate(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Timeline returns the recorded series. Valid after the run finishes.
func (s *Sampler) Timeline() *Timeline { return &s.tl }

// Timeline is the sampler's columnar record: one entry per interval
// across every series, indexed the same way (Rows() is the common
// length). The last interval may be partial — its Cycle is the run's
// final cycle count rather than a multiple of Interval.
type Timeline struct {
	Label    string // optional job tag (workload/arch)
	Interval int64
	Cores    []string
	Queues   []string

	Cycle         []int64
	CoreIPC       [][]float64 // committed per cycle over the interval, per core
	CoreCommitted [][]uint64  // committed instructions in the interval
	CoreLOD       [][]float64 // fraction of interval the oldest entry waited on a queue
	CoreMemWait   [][]float64 // fraction of interval the oldest entry waited on memory
	QueueOcc      [][]int     // occupancy at the boundary, per queue
	L1DMissRate   []float64   // demand misses / demand accesses over the interval
	L2MissRate    []float64
	MSHROcc       []int // fills in flight at the boundary
	PrefetchIssued []uint64
	PrefetchUseful []uint64
}

// Rows returns the number of recorded intervals.
func (t *Timeline) Rows() int { return len(t.Cycle) }

// row builds the export form of interval i. Maps marshal with sorted
// keys, so the encoding is deterministic.
func (t *Timeline) row(i int) map[string]any {
	cores := map[string]any{}
	for c, name := range t.Cores {
		cores[name] = map[string]any{
			"ipc":       round6(t.CoreIPC[c][i]),
			"committed": t.CoreCommitted[c][i],
			"lod":       round6(t.CoreLOD[c][i]),
			"memWait":   round6(t.CoreMemWait[c][i]),
		}
	}
	queues := map[string]int{}
	for q, name := range t.Queues {
		queues[name] = t.QueueOcc[q][i]
	}
	m := map[string]any{
		"cycle":          t.Cycle[i],
		"interval":       t.Interval,
		"cores":          cores,
		"queues":         queues,
		"l1dMissRate":    round6(t.L1DMissRate[i]),
		"l2MissRate":     round6(t.L2MissRate[i]),
		"mshr":           t.MSHROcc[i],
		"prefetchIssued": t.PrefetchIssued[i],
		"prefetchUseful": t.PrefetchUseful[i],
	}
	if t.Label != "" {
		m["label"] = t.Label
	}
	return m
}

// round6 clips float noise so exported rates are stable to read and
// diff (1e-6 resolution is far below anything the analysis uses).
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// WriteNDJSON writes one JSON object per interval, one per line.
func (t *Timeline) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range t.Cycle {
		if err := enc.Encode(t.row(i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the timeline as CSV with one header row; per-core
// and per-queue series become <name>_<metric> columns.
func (t *Timeline) WriteCSV(w io.Writer) error {
	head := []string{"cycle"}
	if t.Label != "" {
		head = append(head, "label")
	}
	for _, c := range t.Cores {
		head = append(head, c+"_ipc", c+"_committed", c+"_lod", c+"_memwait")
	}
	for _, q := range t.Queues {
		head = append(head, q+"_occ")
	}
	head = append(head, "l1d_miss_rate", "l2_miss_rate", "mshr", "prefetch_issued", "prefetch_useful")
	if err := writeCSVRow(w, head); err != nil {
		return err
	}
	for i := range t.Cycle {
		row := []string{fmt.Sprint(t.Cycle[i])}
		if t.Label != "" {
			row = append(row, t.Label)
		}
		for c := range t.Cores {
			row = append(row,
				fmt.Sprintf("%.6f", t.CoreIPC[c][i]),
				fmt.Sprint(t.CoreCommitted[c][i]),
				fmt.Sprintf("%.6f", t.CoreLOD[c][i]),
				fmt.Sprintf("%.6f", t.CoreMemWait[c][i]))
		}
		for q := range t.Queues {
			row = append(row, fmt.Sprint(t.QueueOcc[q][i]))
		}
		row = append(row,
			fmt.Sprintf("%.6f", t.L1DMissRate[i]),
			fmt.Sprintf("%.6f", t.L2MissRate[i]),
			fmt.Sprint(t.MSHROcc[i]),
			fmt.Sprint(t.PrefetchIssued[i]),
			fmt.Sprint(t.PrefetchUseful[i]))
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, f); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}
