// External test package: this test drives the dynamic execution
// through fnsim, which depends on cfg for its compiled fast path, so
// importing fnsim from package cfg would form an import cycle.
package cfg_test

import (
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/cfg"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
)

// TestReachingDefsSoundOnExecution executes a branchy looped program
// in the functional simulator, tracking the actual dynamic writer of
// each register, and asserts the analysis covers every observed
// (use, def) pair.
func TestReachingDefsSoundOnExecution(t *testing.T) {
	src := `
main:   li   $r1, 20
        li   $r2, 0
        li   $r3, 0
loop:   andi $r4, $r1, 1
        beq  $r4, $r0, even
        add  $r2, $r2, $r1
        j    next
even:   add  $r3, $r3, $r1
next:   addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        out  $r3
        halt
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	df := cfg.ReachingDefs(g)

	writer := map[isa.Reg]int{}
	sim := fnsim.New(p)
	sim.Observer = func(ev fnsim.Event) {
		for _, src := range ev.Inst.Sources() {
			if !src.IsArch() || src == isa.R0 {
				continue
			}
			d, wrote := writer[src]
			if !wrote {
				d = cfg.EntryDef
			}
			found := false
			for _, cand := range df.Defs(ev.PC, src) {
				if cand == d {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("inst %d use of %v: dynamic def %d not in static set %v",
					ev.PC, src, d, df.Defs(ev.PC, src))
			}
		}
		if d := ev.Inst.Dest(); d.IsArch() && d != isa.R0 {
			writer[d] = ev.PC
		}
	}
	if err := sim.Run(10000); err != nil {
		t.Fatal(err)
	}
}
