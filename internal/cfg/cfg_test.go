package cfg

import (
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

const loopSrc = `
main:   li   $r1, 10
        li   $r2, 0
loop:   add  $r2, $r2, $r1
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        halt
`

func TestBlockStructure(t *testing.T) {
	g := build(t, loopSrc)
	// Blocks: [0,2) preheader, [2,5) loop, [5,7) exit.
	if len(g.Blocks) != 3 {
		t.Fatalf("got %d blocks: %+v", len(g.Blocks), g.Blocks)
	}
	b0, b1, b2 := g.Blocks[0], g.Blocks[1], g.Blocks[2]
	if b0.Start != 0 || b0.End != 2 || b1.Start != 2 || b1.End != 5 || b2.Start != 5 || b2.End != 7 {
		t.Errorf("block ranges wrong: %+v %+v %+v", b0, b1, b2)
	}
	if len(b0.Succs) != 1 || b0.Succs[0] != 1 {
		t.Errorf("b0 succs = %v", b0.Succs)
	}
	wantSuccs := map[int]bool{1: true, 2: true}
	if len(b1.Succs) != 2 || !wantSuccs[b1.Succs[0]] || !wantSuccs[b1.Succs[1]] {
		t.Errorf("b1 succs = %v", b1.Succs)
	}
	if len(b2.Succs) != 0 {
		t.Errorf("b2 succs = %v", b2.Succs)
	}
	for i := 0; i < 7; i++ {
		want := 0
		if i >= 2 {
			want = 1
		}
		if i >= 5 {
			want = 2
		}
		if g.BlockOf[i] != want {
			t.Errorf("BlockOf[%d] = %d, want %d", i, g.BlockOf[i], want)
		}
	}
}

func TestDominators(t *testing.T) {
	g := build(t, `
main:   beq  $r1, $r0, else
        li   $r2, 1
        j    join
else:   li   $r2, 2
join:   out  $r2
        halt
`)
	idom := g.Dominators()
	// Block 0 = branch; 1 = then; 2 = else; 3 = join.
	if idom[1] != 0 || idom[2] != 0 || idom[3] != 0 {
		t.Errorf("idom = %v", idom)
	}
	if !Dominates(idom, 0, 3) {
		t.Error("entry should dominate join")
	}
	if Dominates(idom, 1, 3) {
		t.Error("then-branch should not dominate join")
	}
}

func TestNaturalLoopDetection(t *testing.T) {
	g := build(t, loopSrc)
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("got %d loops", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d", l.Header)
	}
	if len(l.Blocks) != 1 || !l.Blocks[1] {
		t.Errorf("body = %v", l.Blocks)
	}
	if len(l.BackEdges) != 1 || l.BackEdges[0] != 1 {
		t.Errorf("back edges = %v", l.BackEdges)
	}
	if pre := g.Preheader(l); pre != 0 {
		t.Errorf("preheader = %d", pre)
	}
	insts := l.Insts(g)
	if len(insts) != 3 || insts[0] != 2 || insts[2] != 4 {
		t.Errorf("loop insts = %v", insts)
	}
	if !l.Contains(g, 3) || l.Contains(g, 5) {
		t.Error("Contains wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
main:   li   $r1, 3
outer:  li   $r2, 3
inner:  addi $r2, $r2, -1
        bgtz $r2, inner
        addi $r1, $r1, -1
        bgtz $r1, outer
        halt
`)
	loops := g.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("got %d loops", len(loops))
	}
	// Innermost for the inner add instruction (index 2).
	inner := g.InnermostLoopFor(loops, 2)
	if inner == nil || len(inner.Blocks) != 1 {
		t.Fatalf("innermost = %+v", inner)
	}
	outer := g.InnermostLoopFor(loops, 4)
	if outer == nil || len(outer.Blocks) < 2 {
		t.Fatalf("outer = %+v", outer)
	}
	if !outer.Blocks[inner.Header] {
		t.Error("outer loop should contain inner header")
	}
}

func TestIndirectJumpReturnPoints(t *testing.T) {
	g := build(t, `
main:   jal  f
        out  $r2
        halt
f:      li   $r2, 1
        jr   $ra
`)
	// The jr block must have an edge to the return point (out).
	jrBlock := g.BlockFor(4)
	retBlock := g.BlockFor(1)
	found := false
	for _, s := range jrBlock.Succs {
		if s == retBlock.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("jr successors %v missing return block %d", jrBlock.Succs, retBlock.ID)
	}
}

func TestReachingDefsStraightLine(t *testing.T) {
	g := build(t, `
main:   li   $r1, 1
        li   $r1, 2
        add  $r2, $r1, $r0
        halt
`)
	df := ReachingDefs(g)
	defs := df.Defs(2, isa.R1)
	if len(defs) != 1 || defs[0] != 1 {
		t.Errorf("defs of r1 at inst 2 = %v, want [1]", defs)
	}
	if uses := df.Uses(1); len(uses) != 1 || uses[0] != 2 {
		t.Errorf("uses of def 1 = %v", uses)
	}
	if uses := df.Uses(0); len(uses) != 0 {
		t.Errorf("killed def 0 has uses %v", uses)
	}
}

func TestReachingDefsAcrossJoin(t *testing.T) {
	g := build(t, `
main:   beq  $r3, $r0, else
        li   $r1, 1
        j    join
else:   li   $r1, 2
join:   add  $r2, $r1, $r0
        halt
`)
	df := ReachingDefs(g)
	defs := df.Defs(4, isa.R1)
	if len(defs) != 2 || defs[0] != 1 || defs[1] != 3 {
		t.Errorf("defs at join = %v, want [1 3]", defs)
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	g := build(t, loopSrc)
	df := ReachingDefs(g)
	// Inst 2 (add r2,r2,r1) reads r1: defs are inst 0 (li) and inst 3
	// (addi, loop carried).
	defs := df.Defs(2, isa.R1)
	if len(defs) != 2 || defs[0] != 0 || defs[1] != 3 {
		t.Errorf("loop-carried defs of r1 = %v, want [0 3]", defs)
	}
	// r2 at inst 5 (out) reads: only the add (self-loop def).
	defs = df.Defs(5, isa.R2)
	if len(defs) != 1 || defs[0] != 2 {
		t.Errorf("defs of r2 at out = %v, want [2]", defs)
	}
}

func TestReachingDefsEntryContext(t *testing.T) {
	g := build(t, `
main:   add  $r2, $sp, $r0
        halt
`)
	df := ReachingDefs(g)
	defs := df.Defs(0, isa.SP)
	if len(defs) != 1 || defs[0] != EntryDef {
		t.Errorf("defs of sp = %v, want [EntryDef]", defs)
	}
}

func TestReachingDefsR0NotTracked(t *testing.T) {
	g := build(t, `
main:   add  $r0, $r1, $r1
        add  $r2, $r0, $r0
        halt
`)
	df := ReachingDefs(g)
	if defs := df.Defs(1, isa.R0); defs != nil {
		t.Errorf("r0 uses tracked: %v", defs)
	}
	if uses := df.Uses(0); len(uses) != 0 {
		t.Errorf("r0 def has uses: %v", uses)
	}
}

func TestBuildEmptyProgramFails(t *testing.T) {
	if _, err := Build(&isa.Program{Name: "e"}); err == nil {
		t.Error("empty program accepted")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g := build(t, loopSrc)
	rpo := g.ReversePostorder()
	if len(rpo) != 3 || rpo[0] != g.Entry {
		t.Errorf("rpo = %v", rpo)
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	g := build(t, `
main:   beq  $r1, $r0, else
        li   $r2, 1
        j    join
else:   li   $r2, 2
join:   out  $r2
        halt
`)
	ipdom := g.PostDominators()
	// Blocks: 0 branch, 1 then, 2 else, 3 join.
	if ipdom[0] != 3 {
		t.Errorf("ipdom(branch) = %d, want join (3)", ipdom[0])
	}
	if ipdom[1] != 3 || ipdom[2] != 3 {
		t.Errorf("arm ipdoms = %d, %d, want 3", ipdom[1], ipdom[2])
	}
	if ipdom[3] != -1 {
		t.Errorf("ipdom(join) = %d, want virtual exit", ipdom[3])
	}
}

func TestPostDominatorsLoop(t *testing.T) {
	g := build(t, loopSrc)
	ipdom := g.PostDominators()
	// Blocks: 0 preheader, 1 loop, 2 exit.
	if ipdom[0] != 1 {
		t.Errorf("ipdom(preheader) = %d, want loop (1)", ipdom[0])
	}
	if ipdom[1] != 2 {
		t.Errorf("ipdom(loop) = %d, want exit (2)", ipdom[1])
	}
	if ipdom[2] != -1 {
		t.Errorf("ipdom(exit) = %d, want virtual exit", ipdom[2])
	}
}

func TestPostDominatorsNestedLoops(t *testing.T) {
	g := build(t, `
main:   li   $r1, 3
outer:  li   $r2, 3
inner:  addi $r2, $r2, -1
        bgtz $r2, inner
        addi $r1, $r1, -1
        bgtz $r1, outer
        halt
`)
	ipdom := g.PostDominators()
	// The inner loop block's ipdom is the outer continuation, whose
	// ipdom is the halt block.
	innerBlock := g.BlockOf[2]
	contBlock := g.BlockOf[4]
	haltBlock := g.BlockOf[6]
	if ipdom[innerBlock] != contBlock {
		t.Errorf("ipdom(inner) = %d, want %d", ipdom[innerBlock], contBlock)
	}
	if ipdom[contBlock] != haltBlock {
		t.Errorf("ipdom(cont) = %d, want %d", ipdom[contBlock], haltBlock)
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}
