// Package cfg builds control-flow graphs over isa programs and
// provides the dataflow analyses the HiDISC compiler needs: dominator
// trees, natural-loop detection, and instruction-granularity reaching
// definitions (the paper's Program Flow Graph of Section 4.2).
package cfg

import (
	"fmt"
	"sort"

	"hidisc/internal/isa"
)

// Block is a basic block: instructions [Start, End).
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of one program.
type Graph struct {
	Prog    *isa.Program
	Blocks  []*Block
	BlockOf []int // instruction index -> block ID
	Entry   int   // block containing the program entry
}

// Build constructs the CFG. Indirect jumps (JR/JALR) are resolved
// conservatively: their successors are every instruction following a
// JAL/JALR (the possible return points), which is exact for programs
// that use JR only as a return. JCQ mirrors JR and is treated the same
// way.
func Build(p *isa.Program) (*Graph, error) {
	n := len(p.Insts)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty program %q", p.Name)
	}
	if p.Entry < 0 || p.Entry >= n {
		return nil, fmt.Errorf("cfg: %q: entry %d out of range", p.Name, p.Entry)
	}
	for i, in := range p.Insts {
		if in.Op.IsDirectControl() {
			if t := in.Target(); t < 0 || t >= n {
				return nil, fmt.Errorf("cfg: %q: pc %d: control target %d out of range", p.Name, i, t)
			}
		}
	}

	// Return points for indirect jumps.
	var returnPoints []int
	for i, in := range p.Insts {
		if (in.Op == isa.JAL || in.Op == isa.JALR) && i+1 < n {
			returnPoints = append(returnPoints, i+1)
		}
	}

	// Leaders: entry, instruction 0, branch targets, fall-throughs
	// after control instructions, and return points.
	leader := make([]bool, n)
	leader[0] = true
	leader[p.Entry] = true
	for i, in := range p.Insts {
		if in.Op.IsDirectControl() {
			leader[in.Target()] = true
		}
		if in.Op.IsControl() && i+1 < n {
			leader[i+1] = true
		}
	}
	for _, r := range returnPoints {
		leader[r] = true
	}

	g := &Graph{Prog: p, BlockOf: make([]int, n)}
	for i := 0; i < n; {
		b := &Block{ID: len(g.Blocks), Start: i}
		i++
		for i < n && !leader[i] {
			i++
		}
		b.End = i
		g.Blocks = append(g.Blocks, b)
		for j := b.Start; j < b.End; j++ {
			g.BlockOf[j] = b.ID
		}
	}

	addEdge := func(from, to int) {
		fb, tb := g.Blocks[from], g.Blocks[to]
		for _, s := range fb.Succs {
			if s == tb.ID {
				return
			}
		}
		fb.Succs = append(fb.Succs, tb.ID)
		tb.Preds = append(tb.Preds, fb.ID)
	}

	for _, b := range g.Blocks {
		last := p.Insts[b.End-1]
		switch {
		case last.Op == isa.HALT:
			// no successors
		case last.Op.IsCondBranch():
			addEdge(b.ID, g.BlockOf[last.Target()])
			if b.End < n {
				addEdge(b.ID, g.BlockOf[b.End])
			}
		case last.Op.IsJump() && !last.Op.IsIndirect():
			addEdge(b.ID, g.BlockOf[last.Target()])
		case last.Op.IsJump(): // JR / JALR / JCQ
			for _, r := range returnPoints {
				addEdge(b.ID, g.BlockOf[r])
			}
		default:
			if b.End < n {
				addEdge(b.ID, g.BlockOf[b.End])
			}
		}
	}
	g.Entry = g.BlockOf[p.Entry]
	return g, nil
}

// BlockFor returns the block containing instruction index i.
func (g *Graph) BlockFor(i int) *Block { return g.Blocks[g.BlockOf[i]] }

// ReversePostorder returns the block IDs reachable from the entry in
// reverse postorder.
func (g *Graph) ReversePostorder() []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator array using the
// Cooper-Harvey-Kennedy iterative algorithm. idom[entry] = entry;
// unreachable blocks have idom -1.
func (g *Graph) Dominators() []int {
	rpo := g.ReversePostorder()
	order := make([]int, len(g.Blocks)) // block -> rpo position
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	idom := make([]int, len(g.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[g.Entry] = g.Entry

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 || order[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given idom.
func Dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if idom[b] == -1 || idom[b] == b {
			return b == a
		}
		b = idom[b]
	}
}

// Loop is a natural loop: a header block and the set of blocks in the
// body (header included).
type Loop struct {
	Header int
	Blocks map[int]bool
	// BackEdges lists the blocks with an edge back to the header.
	BackEdges []int
}

// Contains reports whether instruction index i is inside the loop.
func (l *Loop) Contains(g *Graph, i int) bool { return l.Blocks[g.BlockOf[i]] }

// InstRange iterates the loop's instruction indices in program order.
func (l *Loop) Insts(g *Graph) []int {
	var out []int
	ids := make([]int, 0, len(l.Blocks))
	for b := range l.Blocks {
		ids = append(ids, b)
	}
	sort.Ints(ids)
	for _, b := range ids {
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			out = append(out, i)
		}
	}
	return out
}

// NaturalLoops finds all natural loops (merging loops that share a
// header) and returns them sorted by header block ID.
func (g *Graph) NaturalLoops() []*Loop {
	idom := g.Dominators()
	byHeader := make(map[int]*Loop)
	for _, b := range g.Blocks {
		if idom[b.ID] == -1 && b.ID != g.Entry {
			continue // unreachable
		}
		for _, s := range b.Succs {
			if !Dominates(idom, s, b.ID) {
				continue
			}
			// b -> s is a back edge; s is the header.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[int]bool{s: true}}
				byHeader[s] = l
			}
			l.BackEdges = append(l.BackEdges, b.ID)
			// Walk predecessors from the latch to collect the body.
			stack := []int{b.ID}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[n] {
					continue
				}
				l.Blocks[n] = true
				for _, p := range g.Blocks[n].Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	headers := make([]int, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// InnermostLoopFor returns the smallest loop containing instruction i,
// or nil.
func (g *Graph) InnermostLoopFor(loops []*Loop, i int) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Contains(g, i) && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}

// Preheader returns the unique out-of-loop predecessor block of the
// loop header, or -1 when the header has zero or multiple outside
// predecessors.
func (g *Graph) Preheader(l *Loop) int {
	pre := -1
	for _, p := range g.Blocks[l.Header].Preds {
		if l.Blocks[p] {
			continue
		}
		if pre != -1 {
			return -1
		}
		pre = p
	}
	return pre
}

// PostDominators computes the immediate post-dominator of every block
// using the iterative algorithm on the reverse graph with a virtual
// exit joining all terminal blocks. Terminal blocks (and blocks that
// cannot reach any exit) get ipdom -1, meaning the virtual exit.
func (g *Graph) PostDominators() []int {
	n := len(g.Blocks)
	const exit = -1
	// Reverse postorder on the reverse graph, starting from the
	// terminal blocks.
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, p := range g.Blocks[b].Preds {
			if !seen[p] {
				dfs(p)
			}
		}
		post = append(post, b)
	}
	for _, b := range g.Blocks {
		if len(b.Succs) == 0 && !seen[b.ID] {
			dfs(b.ID)
		}
	}
	order := make([]int, n) // block -> rpo position (smaller = closer to exit)
	for i := range order {
		order[i] = -1
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		order[post[i]] = len(rpo)
		rpo = append(rpo, post[i])
	}

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -2 // unknown
	}
	intersect := func(a, b int) int {
		for a != b {
			if a == exit || b == exit {
				return exit
			}
			for order[a] > order[b] {
				a = ipdom[a]
				if a == exit {
					return exit
				}
			}
			for order[b] > order[a] {
				b = ipdom[b]
				if b == exit {
					return exit
				}
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var newIpdom = -2
			if len(g.Blocks[b].Succs) == 0 {
				newIpdom = exit
			}
			for _, s := range g.Blocks[b].Succs {
				if order[s] == -1 || (ipdom[s] == -2 && len(g.Blocks[s].Succs) != 0) {
					continue
				}
				cand := s
				if newIpdom == -2 {
					newIpdom = cand
				} else if newIpdom != exit || cand != exit {
					newIpdom = intersect(newIpdom, cand)
				}
			}
			if newIpdom != -2 && ipdom[b] != newIpdom {
				ipdom[b] = newIpdom
				changed = true
			}
		}
	}
	for i := range ipdom {
		if ipdom[i] == -2 {
			ipdom[i] = exit
		}
	}
	return ipdom
}
