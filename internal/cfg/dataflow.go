package cfg

import (
	"sort"

	"hidisc/internal/isa"
)

// EntryDef is the pseudo definition index standing for register values
// live at program entry (the initial context: the stack pointer and
// zero-initialised registers).
const EntryDef = -1

type useKey struct {
	inst int
	reg  isa.Reg
}

// DataFlow holds instruction-granularity use-def and def-use chains
// computed by reaching-definitions analysis over a Graph.
type DataFlow struct {
	g  *Graph
	ud map[useKey][]int
	du map[int][]int
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) orInto(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) copyFrom(o bitset) {
	copy(b, o)
}

// ReachingDefs computes the dataflow chains for the program in g.
// A definition is any instruction writing an architectural register;
// queue pseudo-registers are not tracked (queue pairing is handled
// structurally by the stream separator).
func ReachingDefs(g *Graph) *DataFlow {
	n := len(g.Prog.Insts)
	df := &DataFlow{g: g, ud: make(map[useKey][]int), du: make(map[int][]int)}

	// All defs of each register, program-wide.
	defsOf := make(map[isa.Reg][]int)
	for i, in := range g.Prog.Insts {
		if d := in.Dest(); d.IsArch() && d != isa.R0 {
			defsOf[d] = append(defsOf[d], i)
		}
	}

	nb := len(g.Blocks)
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	in := make([]bitset, nb)
	out := make([]bitset, nb)
	for b := 0; b < nb; b++ {
		gen[b], kill[b], in[b], out[b] = newBitset(n), newBitset(n), newBitset(n), newBitset(n)
	}

	for _, blk := range g.Blocks {
		last := make(map[isa.Reg]int)
		for i := blk.Start; i < blk.End; i++ {
			if d := g.Prog.Insts[i].Dest(); d.IsArch() && d != isa.R0 {
				last[d] = i
			}
		}
		for r, i := range last {
			gen[blk.ID].set(i)
			for _, d := range defsOf[r] {
				if d != i {
					kill[blk.ID].set(d)
				}
			}
		}
		// Defs overwritten within the block are also killed by it.
		for i := blk.Start; i < blk.End; i++ {
			if d := g.Prog.Insts[i].Dest(); d.IsArch() && d != isa.R0 && last[d] != i {
				kill[blk.ID].set(i)
			}
		}
	}

	// Iterate to fixpoint in reverse postorder.
	rpo := g.ReversePostorder()
	tmp := newBitset(n)
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			blk := g.Blocks[b]
			for _, p := range blk.Preds {
				if in[b].orInto(out[p]) {
					changed = true
				}
			}
			// out = gen | (in &^ kill)
			tmp.copyFrom(in[b])
			for i := range tmp {
				tmp[i] = gen[b][i] | (tmp[i] &^ kill[b][i])
			}
			for i := range tmp {
				if tmp[i] != out[b][i] {
					out[b][i] = tmp[i]
					changed = true
				}
			}
		}
	}

	// Walk each block to attribute defs to uses.
	for _, blk := range g.Blocks {
		current := make(map[isa.Reg][]int)
		for r, ds := range defsOf {
			for _, d := range ds {
				if in[blk.ID].has(d) {
					current[r] = append(current[r], d)
				}
			}
		}
		for i := blk.Start; i < blk.End; i++ {
			inst := g.Prog.Insts[i]
			for _, src := range inst.Sources() {
				if !src.IsArch() || src == isa.R0 {
					continue
				}
				ds := current[src]
				if len(ds) == 0 {
					ds = []int{EntryDef}
				}
				key := useKey{inst: i, reg: src}
				if _, seen := df.ud[key]; !seen {
					cp := append([]int(nil), ds...)
					sort.Ints(cp)
					df.ud[key] = cp
					for _, d := range cp {
						if d != EntryDef {
							df.du[d] = append(df.du[d], i)
						}
					}
				}
			}
			if d := inst.Dest(); d.IsArch() && d != isa.R0 {
				current[d] = []int{i}
			}
		}
	}
	for d := range df.du {
		sort.Ints(df.du[d])
	}
	return df
}

// Defs returns the definition sites whose value may reach the use of
// register r by instruction i, sorted; EntryDef appears when the
// initial register context may reach the use.
func (df *DataFlow) Defs(i int, r isa.Reg) []int {
	return df.ud[useKey{inst: i, reg: r}]
}

// Uses returns the instructions that may consume the value defined by
// instruction d, sorted.
func (df *DataFlow) Uses(d int) []int { return df.du[d] }
