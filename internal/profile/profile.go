// Package profile implements the cache-access profiling pass the
// HiDISC compiler uses to identify "probable cache miss instructions"
// (Section 4.2 of the paper): a functional execution drives the same
// cache hierarchy the timing simulation uses and records per-PC access
// and miss counts for loads and stores (write-allocate misses cost the
// same fill). Instructions whose misses exceed a threshold become the
// seeds of Cache Miss Access Slices.
package profile

import (
	"sort"

	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
)

// PCStats counts memory behaviour for one static instruction.
type PCStats struct {
	Accesses uint64
	Misses   uint64

	// Stride detection: an access stream with a repeating address
	// delta is coverable by prefetching a fixed distance ahead.
	prevAddr   uint32
	lastStride int32
	strideHits uint64
}

// MissRatio returns misses per access.
func (s PCStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Strided reports whether the instruction's addresses advance by a
// stable non-zero delta (a streaming access pattern).
func (s PCStats) Strided() bool {
	return s.Accesses > 16 && s.strideHits*2 >= s.Accesses
}

// Stride returns the last observed address delta.
func (s PCStats) Stride() int32 { return s.lastStride }

// Profile is the result of a cache-profiling run.
type Profile struct {
	PerPC         map[int]PCStats
	TotalAccesses uint64
	TotalMisses   uint64
	ExecutedInsts uint64
}

// CacheProfile runs the sequential program to completion on the
// functional simulator with the given cache configuration, recording
// per-PC load statistics. Time is approximated by the dynamic
// instruction count, which is sufficient to exercise LRU and capacity
// behaviour.
//
// The run uses the simulator's MemObserver hook: non-memory
// instructions execute on the compiled fast path with no per-event
// callback or Event construction at all, and the per-PC statistics
// live in a dense array indexed by pc (the profiled program is
// static), so the profiling pass allocates nothing per instruction.
func CacheProfile(p *isa.Program, hcfg mem.HierConfig, maxInsts uint64) (*Profile, error) {
	return cacheProfile(p, hcfg, maxInsts, false)
}

// CacheProfileInterp is CacheProfile on the pure interpreter (the
// -no-compile path); used by the differential tests.
func CacheProfileInterp(p *isa.Program, hcfg mem.HierConfig, maxInsts uint64) (*Profile, error) {
	return cacheProfile(p, hcfg, maxInsts, true)
}

func cacheProfile(p *isa.Program, hcfg mem.HierConfig, maxInsts uint64, noCompile bool) (*Profile, error) {
	hier, err := mem.NewHierarchy(hcfg)
	if err != nil {
		return nil, err
	}
	sim := fnsim.New(p)
	sim.NoCompile = noCompile
	prof := &Profile{}
	perPC := make([]PCStats, len(p.Insts))
	sim.MemObserver = func(pc int, addr uint32, isLoad, isPref bool) {
		if isPref {
			return
		}
		// InstCount counts the observed instruction, so it equals the
		// per-instruction clock the previous Observer implementation
		// advanced — access times are bit-identical.
		now := int64(sim.InstCount())
		missesBefore := hier.Stats().L1D.DemandMisses
		hier.Access(now, addr, !isLoad, false)
		missed := hier.Stats().L1D.DemandMisses > missesBefore
		st := &perPC[pc]
		if st.Accesses > 0 {
			delta := int32(addr - st.prevAddr)
			if delta != 0 && delta == st.lastStride {
				st.strideHits++
			}
			st.lastStride = delta
		}
		st.prevAddr = addr
		st.Accesses++
		prof.TotalAccesses++
		if missed {
			st.Misses++
			prof.TotalMisses++
		}
	}
	if err := sim.Run(maxInsts); err != nil {
		return nil, err
	}
	prof.ExecutedInsts = sim.InstCount()
	prof.PerPC = make(map[int]PCStats, len(p.Insts))
	for pc := range perPC {
		if perPC[pc].Accesses > 0 {
			prof.PerPC[pc] = perPC[pc]
		}
	}
	return prof, nil
}

// Delinquent returns the PCs of loads whose miss ratio is at least
// minRatio and whose absolute miss count is at least minMisses,
// sorted by descending miss count (most delinquent first).
func (prof *Profile) Delinquent(minRatio float64, minMisses uint64) []int {
	var pcs []int
	for pc, st := range prof.PerPC {
		if st.Misses >= minMisses && st.MissRatio() >= minRatio {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool {
		a, b := prof.PerPC[pcs[i]], prof.PerPC[pcs[j]]
		if a.Misses != b.Misses {
			return a.Misses > b.Misses
		}
		return pcs[i] < pcs[j]
	})
	return pcs
}
