package profile

import (
	"fmt"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
)

// smallHier returns a tiny hierarchy (1 KiB L1) so tests can exceed
// capacity with small footprints.
func smallHier() mem.HierConfig {
	return mem.HierConfig{
		L1D:        mem.CacheConfig{Name: "dl1", Sets: 8, Ways: 2, BlockSize: 64, Latency: 1},
		L2:         mem.CacheConfig{Name: "ul2", Sets: 64, Ways: 4, BlockSize: 64, Latency: 12},
		MemLatency: 120,
	}
}

func TestStreamingLoadMostlyHits(t *testing.T) {
	// Sequential walk over 4 KiB: one miss per 64-byte block, 15/16
	// accesses hit.
	p := mustAssemble(t, "stream", `
        .data
buf:    .space 4096
        .text
main:   la   $r2, buf
        li   $r1, 1024
loop:   lw   $r3, 0($r2)
        addi $r2, $r2, 4
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
	prof, err := CacheProfile(p, smallHier(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// The load is instruction index 2.
	st := prof.PerPC[2]
	if st.Accesses != 1024 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.Misses != 64 {
		t.Errorf("misses = %d, want 64 (one per block)", st.Misses)
	}
	if r := st.MissRatio(); r < 0.05 || r > 0.08 {
		t.Errorf("miss ratio = %v", r)
	}
	// Not delinquent at a 25% threshold.
	if pcs := prof.Delinquent(0.25, 10); len(pcs) != 0 {
		t.Errorf("delinquent = %v", pcs)
	}
}

func TestStridedLoadIsDelinquent(t *testing.T) {
	// Stride of 64 bytes over 64 KiB: every access is a new block and
	// the working set exceeds the 1 KiB L1, so the second pass misses
	// too.
	p := mustAssemble(t, "stride", `
        .data
buf:    .space 65536
        .text
main:   li   $r5, 2          ; two passes
pass:   la   $r2, buf
        li   $r1, 1024
loop:   lw   $r3, 0($r2)
        addi $r2, $r2, 64
        addi $r1, $r1, -1
        bgtz $r1, loop
        addi $r5, $r5, -1
        bgtz $r5, pass
        halt
`)
	prof, err := CacheProfile(p, smallHier(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	st := prof.PerPC[3] // the lw
	if st.Accesses != 2048 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if r := st.MissRatio(); r < 0.95 {
		t.Errorf("miss ratio = %v, want ~1.0", r)
	}
	pcs := prof.Delinquent(0.25, 10)
	if len(pcs) != 1 || pcs[0] != 3 {
		t.Errorf("delinquent = %v, want [3]", pcs)
	}
}

func TestDelinquentOrderingByMissCount(t *testing.T) {
	prof := &Profile{PerPC: map[int]PCStats{
		5:  {Accesses: 100, Misses: 90},
		9:  {Accesses: 100, Misses: 50},
		12: {Accesses: 100, Misses: 2}, // below min misses
		20: {Accesses: 100, Misses: 10},
	}}
	pcs := prof.Delinquent(0.05, 5)
	want := []int{5, 9, 20}
	if len(pcs) != len(want) {
		t.Fatalf("pcs = %v", pcs)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Errorf("pcs = %v, want %v", pcs, want)
		}
	}
}

func TestStoresProfiledLikeLoads(t *testing.T) {
	p := mustAssemble(t, "stores", `
        .data
buf:    .space 64
        .text
main:   la  $r2, buf
        sw  $r0, 0($r2)
        lw  $r3, 0($r2)
        halt
`)
	prof, err := CacheProfile(p, smallHier(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// The store takes the write-allocate miss...
	if st := prof.PerPC[1]; st.Misses != 1 || st.Accesses != 1 {
		t.Errorf("store stats = %+v", st)
	}
	// ...warming the line for the load.
	if st := prof.PerPC[2]; st.Misses != 0 || st.Accesses != 1 {
		t.Errorf("load stats = %+v", st)
	}
	if prof.ExecutedInsts != 4 {
		t.Errorf("executed = %d", prof.ExecutedInsts)
	}
}

func TestStrideDetection(t *testing.T) {
	p := mustAssemble(t, "stride", `
        .data
buf:    .space 8192
        .text
main:   la   $r2, buf
        li   $r1, 512
loop:   lw   $r3, 0($r2)
        addi $r2, $r2, 16
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
	prof, err := CacheProfile(p, smallHier(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	st := prof.PerPC[2]
	if !st.Strided() {
		t.Error("regular stride not detected")
	}
	if st.Stride() != 16 {
		t.Errorf("stride = %d, want 16", st.Stride())
	}
}

func TestRandomPatternNotStrided(t *testing.T) {
	p := mustAssemble(t, "rand", `
        .data
buf:    .space 65536
        .text
main:   li   $r5, 777
        li   $r1, 512
loop:   li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r7, $r5, 8
        andi $r7, $r7, 16383
        la   $r2, buf
        add  $r2, $r2, $r7
        lw   $r3, 0($r2)
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
	prof, err := CacheProfile(p, smallHier(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	st := prof.PerPC[9]
	if st.Accesses != 512 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.Strided() {
		t.Error("pseudo-random pattern reported as strided")
	}
}

func TestProfileDeterministic(t *testing.T) {
	p := mustAssemble(t, "det", `
        .data
buf:    .space 8192
        .text
main:   la   $r2, buf
        li   $r1, 512
loop:   lw   $r3, 0($r2)
        addi $r2, $r2, 16
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
	a, err := CacheProfile(p, smallHier(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CacheProfile(p, smallHier(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalMisses != b.TotalMisses || a.TotalAccesses != b.TotalAccesses {
		t.Error("profiling not deterministic")
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}

// loopProgram assembles a load loop of n iterations over one page, so
// two sizes of the same static program isolate per-event cost.
func loopProgram(tb testing.TB, n int) *isa.Program {
	return mustAssemble(tb, "allocloop", `
        .data
buf:    .space 4096
        .text
main:   la   $r2, buf
        li   $r1, `+fmt.Sprint(n)+`
loop:   lw   $r3, 0($r2)
        addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
}

// TestCacheProfileAllocsPerEvent pins the profiling pass's per-event
// cost at zero allocations: growing the dynamic instruction count 64x
// must not change the total allocation count of a profiling run (the
// fixed setup — hierarchy, simulator, result map — is all there is).
func TestCacheProfileAllocsPerEvent(t *testing.T) {
	hier := smallHier()
	run := func(p *isa.Program) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := CacheProfile(p, hier, 10_000_000); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := run(loopProgram(t, 64))
	long := run(loopProgram(t, 4096))
	if long > short {
		t.Errorf("allocs grew with instruction count: %v (64 iters) -> %v (4096 iters); the per-event path must not allocate", short, long)
	}
}
