// Package tracing is the fleet's distributed-tracing spine: a
// stdlib-only span model threaded through the whole request path —
// client submit, coordinator admission/route/forward, worker
// admission/cache/singleflight/store/simulate — so one job yields a
// causally linked span tree across processes.
//
// Design points, in the same spirit as the telemetry package's
// pure-observer contract:
//
//   - Propagation is W3C traceparent ("00-<32hex trace>-<16hex
//     span>-<2hex flags>"): simclient injects the current span's
//     context into the outgoing header, the server middleware adopts
//     it, so a worker's spans parent under the coordinator attempt
//     that forwarded the job.
//   - Durations are monotonic: Span captures time.Now() once at start
//     (Go's time carries the monotonic clock) and End() uses
//     time.Since, so a wall-clock step cannot produce negative spans.
//   - Collection is a bounded lock-free ring per process: End()
//     publishes the finished span with one atomic fetch-add and one
//     atomic pointer store; when the ring wraps, the oldest spans are
//     overwritten (eviction is implicit, no allocation, no lock).
//   - Off is free: a nil *Tracer and a nil *Span are both valid
//     receivers for every method, so call sites pay one pointer
//     check — the same nil-guard discipline machine.Config.Trace
//     enforces for the cycle-level sink. A traceparent with the
//     sampled flag clear makes Root return nil, so a sampled-out
//     request costs exactly one branch at every downstream site.
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the span-ring size binaries use unless told
// otherwise: large enough to hold every span of a full fig8 fleet
// batch with room to spare, small enough (~a few hundred KB of
// pointers plus live spans) to forget about.
const DefaultCapacity = 4096

// idSource is the per-process randomness the ID generators mix with a
// counter: one crypto/rand read at init, then allocation-free,
// syscall-free IDs. Two processes collide only if their 24 random
// bytes do.
var idSource struct {
	traceHi, traceLo uint64
	span             uint64
	ctr              atomic.Uint64
}

func init() {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the clock; IDs stay unique within the process.
		binary.LittleEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	idSource.traceHi = binary.LittleEndian.Uint64(b[0:8])
	idSource.traceLo = binary.LittleEndian.Uint64(b[8:16])
	idSource.span = binary.LittleEndian.Uint64(b[16:24])
}

func newTraceID() string {
	n := idSource.ctr.Add(1)
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], idSource.traceHi^n)
	binary.BigEndian.PutUint64(b[8:16], idSource.traceLo+n)
	return hex.EncodeToString(b[:])
}

func newSpanID() string {
	n := idSource.ctr.Add(1)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], idSource.span^(n*0x9e3779b97f4a7c15))
	return hex.EncodeToString(b[:])
}

// ParseTraceparent splits a W3C traceparent header into trace ID,
// parent span ID, and the sampled flag. ok is false for anything
// malformed — the caller then starts a fresh trace.
func ParseTraceparent(h string) (traceID, spanID string, sampled, ok bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2
	if len(h) != 55 || h[:3] != "00-" || h[35] != '-' || h[52] != '-' {
		return "", "", false, false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !isHex(traceID) || !isHex(spanID) {
		return "", "", false, false
	}
	return traceID, spanID, h[53:55] != "00", true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Tracer is one process's span factory and collector. Zero-config:
// New(service, capacity) and go. A nil Tracer is valid and free.
type Tracer struct {
	service string
	ring    []atomic.Pointer[Span]
	mask    uint64
	pos     atomic.Uint64
	dropped atomic.Int64
}

// New builds a tracer for a named service ("hidisc-serve",
// "hidisc-coord") with a ring of at least capacity finished spans
// (rounded up to a power of two; <= 0 picks DefaultCapacity).
func New(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{service: service, ring: make([]atomic.Pointer[Span], n), mask: uint64(n - 1)}
}

// Service names the tracer's process ("" on a nil tracer).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Root starts a request-root span, adopting the caller's traceparent
// when one is supplied (the span becomes a child of the remote span)
// and minting a fresh trace otherwise. A traceparent whose sampled
// flag is clear returns nil — the whole request then costs one branch
// per instrumentation site and nothing else.
func (t *Tracer) Root(name, traceparent, requestID string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tracer:    t,
		Name:      name,
		Service:   t.service,
		RequestID: requestID,
		SpanID:    newSpanID(),
	}
	if tid, pid, sampled, ok := ParseTraceparent(traceparent); ok {
		if !sampled {
			return nil
		}
		s.TraceID, s.ParentID = tid, pid
	} else {
		s.TraceID = newTraceID()
	}
	s.start = time.Now()
	s.StartUnixNs = s.start.UnixNano()
	return s
}

// publish commits a finished span to the ring, overwriting the oldest
// entry once full.
func (t *Tracer) publish(s *Span) {
	i := t.pos.Add(1) - 1
	if old := t.ring[i&t.mask].Swap(s); old != nil {
		t.dropped.Add(1)
	}
}

// Dropped counts spans evicted by ring wrap-around.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans snapshots the finished spans currently in the ring, oldest
// first, optionally filtered by request ID ("" keeps everything). The
// snapshot is best-effort under concurrent publishing — exactly what a
// debugging endpoint wants.
func (t *Tracer) Spans(requestID string) []*Span {
	if t == nil {
		return nil
	}
	n := t.pos.Load()
	size := uint64(len(t.ring))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*Span, 0, min(n-start, size))
	for i := start; i < n; i++ {
		s := t.ring[i&t.mask].Load()
		if s == nil {
			continue
		}
		if requestID != "" && s.RequestID != requestID {
			continue
		}
		out = append(out, s)
	}
	return out
}

// WriteNDJSON dumps the ring as one JSON object per line — the
// GET /v1/traces wire format on both the worker and the coordinator.
func (t *Tracer) WriteNDJSON(w io.Writer, requestID string) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans(requestID) {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Span is one timed operation. Exported fields are the wire shape
// (NDJSON on /v1/traces, decoded by the coordinator's assembler);
// they must not be mutated after End.
type Span struct {
	TraceID   string `json:"traceId"`
	SpanID    string `json:"spanId"`
	ParentID  string `json:"parentId,omitempty"`
	Name      string `json:"name"`
	Service   string `json:"service"`
	RequestID string `json:"requestId,omitempty"`
	// Track groups spans onto one Perfetto row ("" = the request
	// track); batch handlers put each job index on its own track so
	// concurrent jobs don't interleave visually.
	Track string `json:"track,omitempty"`
	// StartUnixNs anchors the span on the wall clock (for cross-process
	// alignment); DurationNs is measured on the monotonic clock.
	StartUnixNs int64             `json:"startUnixNs"`
	DurationNs  int64             `json:"durationNs"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	// Machine, when set, is a complete machine-telemetry Perfetto
	// document captured under this (simulate) span — the payload the
	// assembler splices below the HTTP span tree.
	Machine json.RawMessage `json:"machine,omitempty"`

	tracer *Tracer
	start  time.Time
	// ended is CAS-guarded (0→1) by End; a plain int32 (not
	// atomic.Bool) so decoded Span values stay copyable — the
	// coordinator's assembler passes wire-decoded spans by value.
	ended int32
}

// Child starts a span under s (nil-safe: a nil receiver returns nil,
// so an untraced request costs one branch here).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer:    s.tracer,
		Name:      name,
		Service:   s.Service,
		RequestID: s.RequestID,
		TraceID:   s.TraceID,
		ParentID:  s.SpanID,
		SpanID:    newSpanID(),
		Track:     s.Track,
	}
	c.start = time.Now()
	c.StartUnixNs = c.start.UnixNano()
	return c
}

// SetAttr attaches a key/value to the span (nil-safe; call before End).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// SetTrack names the Perfetto row this span (and its children, via
// Child's inheritance) renders on.
func (s *Span) SetTrack(track string) {
	if s == nil {
		return
	}
	s.Track = track
}

// SetMachine attaches a machine-telemetry Perfetto document.
func (s *Span) SetMachine(doc []byte) {
	if s == nil {
		return
	}
	s.Machine = doc
}

// End stamps the monotonic duration and publishes the span to its
// tracer's ring. Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil || !atomic.CompareAndSwapInt32(&s.ended, 0, 1) {
		return
	}
	s.DurationNs = int64(time.Since(s.start))
	s.tracer.publish(s)
}

// Duration returns the span's measured duration (0 before End or on
// nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNs)
}

// Traceparent renders the span's propagation header, always sampled
// ("" on nil — callers guard with the same one branch as everything
// else).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.TraceID + "-" + s.SpanID + "-01"
}

// --- context plumbing ---

type ctxKey int

const ctxKeySpan ctxKey = iota

// ContextWithSpan attaches a span to ctx (returns ctx unchanged for a
// nil span, so untraced paths never allocate a context node).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeySpan, s)
}

// SpanFrom returns the span attached to ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKeySpan).(*Span)
	return s
}
