package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("svc", 16)
	root := tr.Root("req", "", "req-1")
	if root == nil {
		t.Fatal("Root returned nil without an incoming traceparent")
	}
	h := root.Traceparent()
	tid, sid, sampled, ok := ParseTraceparent(h)
	if !ok || !sampled {
		t.Fatalf("own header %q did not parse as sampled", h)
	}
	if tid != root.TraceID || sid != root.SpanID {
		t.Fatalf("parse mismatch: got %s/%s, want %s/%s", tid, sid, root.TraceID, root.SpanID)
	}

	// A downstream root adopting the header becomes a child in the same
	// trace.
	down := New("svc2", 16).Root("req", h, "req-1")
	if down.TraceID != root.TraceID {
		t.Errorf("adopted trace %s, want %s", down.TraceID, root.TraceID)
	}
	if down.ParentID != root.SpanID {
		t.Errorf("adopted parent %s, want %s", down.ParentID, root.SpanID)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // wrong version
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01", // uppercase
		"00-0123456789abcdef0123456789abcdef+0123456789abcdef-01", // bad separator
		"00-0123456789abcdef0123456789abcdef-0123456789abcdeg-01", // non-hex
	} {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestSampledOutReturnsNil(t *testing.T) {
	tr := New("svc", 16)
	h := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-00"
	if s := tr.Root("req", h, "x"); s != nil {
		t.Fatalf("unsampled traceparent produced a span: %+v", s)
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := New("svc", 64)
	root := tr.Root("request", "", "req-7")
	c1 := root.Child("cache")
	c1.SetAttr("hit", "false")
	c1.End()
	c2 := root.Child("simulate")
	time.Sleep(time.Millisecond)
	c2.End()
	root.End()
	root.End() // idempotent

	spans := tr.Spans("req-7")
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byID := map[string]*Span{}
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Errorf("span %s in trace %s, want %s", s.Name, s.TraceID, root.TraceID)
		}
		if s.ParentID != "" && byID[s.ParentID] == nil && s.ParentID != root.ParentID {
			t.Errorf("span %s orphaned (parent %s)", s.Name, s.ParentID)
		}
	}
	if byID[c2.SpanID].DurationNs <= 0 {
		t.Error("simulate span has no duration")
	}
	if got := tr.Spans("other-request"); len(got) != 0 {
		t.Errorf("filter leaked %d spans", len(got))
	}
}

func TestRingEviction(t *testing.T) {
	tr := New("svc", 8) // rounds to 8
	for i := 0; i < 20; i++ {
		s := tr.Root("r", "", fmt.Sprintf("req-%d", i))
		s.End()
	}
	spans := tr.Spans("")
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	// Oldest-first: the survivors are the last 8 published.
	if spans[0].RequestID != "req-12" || spans[7].RequestID != "req-19" {
		t.Errorf("ring window [%s .. %s], want [req-12 .. req-19]", spans[0].RequestID, spans[7].RequestID)
	}
	if tr.Dropped() != 12 {
		t.Errorf("dropped = %d, want 12", tr.Dropped())
	}
}

func TestConcurrentPublishAndDump(t *testing.T) {
	tr := New("svc", 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Root("r", "", "rq")
				s.Child("c").End()
				s.End()
				if i%32 == 0 {
					tr.Spans("")
				}
			}
		}(g)
	}
	wg.Wait()
	for _, s := range tr.Spans("") {
		if s.SpanID == "" || s.TraceID == "" {
			t.Fatal("dump returned an unpublished span")
		}
	}
}

func TestWriteNDJSON(t *testing.T) {
	tr := New("svc", 16)
	s := tr.Root("request", "", "req-9")
	s.SetMachine(json.RawMessage(`{"traceEvents":[]}`))
	s.End()
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf, "req-9"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	var got Span
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("NDJSON line undecodable: %v\n%s", err, line)
	}
	if got.Name != "request" || got.RequestID != "req-9" || len(got.Machine) == 0 {
		t.Errorf("round-trip lost fields: %+v", got)
	}
}

// TestNilSafety: every entry point must be a no-op on nil receivers —
// the one-branch cost contract for untraced requests.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if s := tr.Root("x", "", ""); s != nil {
		t.Fatal("nil tracer produced a span")
	}
	if tr.Spans("") != nil || tr.Dropped() != 0 || tr.Service() != "" {
		t.Fatal("nil tracer snapshot not empty")
	}
	var s *Span
	s.SetAttr("k", "v")
	s.SetTrack("t")
	s.SetMachine(nil)
	s.End()
	if s.Child("c") != nil {
		t.Fatal("nil span produced a child")
	}
	if s.Traceparent() != "" || s.Duration() != 0 {
		t.Fatal("nil span not zero-valued")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if ctx != context.Background() {
		t.Fatal("nil span allocated a context node")
	}
	if SpanFrom(ctx) != nil {
		t.Fatal("SpanFrom invented a span")
	}
}

// TestTracingOffAllocs pins the tracing-off fast path at zero
// allocations, the same discipline the telemetry package pins for the
// cycle-level hot loops.
func TestTracingOffAllocs(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		s := SpanFrom(ctx)
		c := s.Child("x")
		c.SetAttr("k", "v")
		c.End()
		_ = tr.Root("x", "", "")
		_ = ContextWithSpan(ctx, nil)
	}); n != 0 {
		t.Fatalf("tracing-off path allocates %v per run, want 0", n)
	}
}
