// Package asm implements the two-pass assembler for the HiDISC
// toolchain. Workload kernels are written in this assembly dialect
// (the transliteration of SimpleScalar's PISA used by the paper's
// examples) and assembled into isa.Program binaries that the stream
// separator and the simulators consume.
//
// Syntax overview:
//
//	        .data
//	tab:    .word 1, 2, 0x10          ; 32-bit words
//	vals:   .double 1.5, -2.0         ; 64-bit floats
//	buf:    .space 1024               ; zero-filled bytes
//	msg:    .ascii "hi"               ; raw bytes
//	        .align 8
//	        .text
//	main:   la   $r2, tab
//	loop:   lw   $r3, 0($r2)
//	        addi $r2, $r2, 4
//	        bne  $r3, $r0, loop
//	        halt
//
// Comments run from ';' or '#' to end of line. Registers are $r0..$r31
// (aliases $zero, $sp, $fp, $ra), $f0..$f31, and the architectural
// queues $LDQ, $SDQ, $CQ, $SCQ. Pseudo-instructions: la, mov, b, beqz,
// bnez, nop-free li with a symbol operand. The ".entry label" directive
// selects the start instruction (default: label "main", else index 0).
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hidisc/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type pending struct {
	line  int
	label string   // mnemonic label text of the instruction's label field
	op    string   // mnemonic
	args  []string // raw operand strings
}

type assembler struct {
	name    string
	lines   []string
	sec     section
	insts   []pending
	data    []byte
	labels  map[string]int    // code label -> instruction index
	symbols map[string]uint32 // data label -> absolute address
	entry   string
}

// Assemble translates source into a program named name.
func Assemble(name, source string) (*isa.Program, error) {
	a := &assembler{
		name:    name,
		lines:   strings.Split(source, "\n"),
		labels:  make(map[string]int),
		symbols: make(map[string]uint32),
	}
	if err := a.pass1(); err != nil {
		return nil, err
	}
	return a.pass2()
}

func stripComment(l string) string {
	for i := 0; i < len(l); i++ {
		c := l[i]
		if c == ';' || c == '#' {
			return l[:i]
		}
		if c == '"' { // skip string literal
			for i++; i < len(l) && l[i] != '"'; i++ {
			}
		}
	}
	return l
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// pass1 scans lines, records labels and data, and queues instructions
// for encoding.
func (a *assembler) pass1() error {
	for ln, raw := range a.lines {
		line := ln + 1
		l := strings.TrimSpace(stripComment(raw))
		if l == "" {
			continue
		}
		// Leading labels (possibly several).
		for {
			i := strings.IndexByte(l, ':')
			if i < 0 || strings.ContainsAny(l[:i], " \t\",(") {
				break
			}
			label := l[:i]
			if !validIdent(label) {
				return a.errf(line, "invalid label %q", label)
			}
			if err := a.defineLabel(line, label); err != nil {
				return err
			}
			l = strings.TrimSpace(l[i+1:])
			if l == "" {
				break
			}
		}
		if l == "" {
			continue
		}
		fields := strings.Fields(l)
		op := strings.ToLower(fields[0])
		rest := strings.TrimSpace(l[len(fields[0]):])
		if strings.HasPrefix(op, ".") {
			if err := a.directive(line, op, rest); err != nil {
				return err
			}
			continue
		}
		if a.sec != secText {
			return a.errf(line, "instruction %q outside .text", op)
		}
		args := splitArgs(rest)
		a.insts = append(a.insts, pending{line: line, op: op, args: args})
	}
	return nil
}

func (a *assembler) defineLabel(line int, label string) error {
	if _, dup := a.labels[label]; dup {
		return a.errf(line, "duplicate label %q", label)
	}
	if _, dup := a.symbols[label]; dup {
		return a.errf(line, "duplicate symbol %q", label)
	}
	if a.sec == secText {
		a.labels[label] = len(a.insts)
	} else {
		a.symbols[label] = isa.DataBase + uint32(len(a.data))
	}
	return nil
}

func (a *assembler) directive(line int, op, rest string) error {
	switch op {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".entry":
		a.entry = strings.TrimSpace(rest)
	case ".equ":
		// .equ NAME, value — a named constant usable wherever a symbol
		// is accepted.
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return a.errf(line, ".equ needs a name and a value")
		}
		name := strings.TrimSpace(parts[0])
		if !validIdent(name) {
			return a.errf(line, "invalid .equ name %q", name)
		}
		v, err := a.constExpr(line, parts[1])
		if err != nil {
			return err
		}
		if _, dup := a.symbols[name]; dup {
			return a.errf(line, "duplicate symbol %q", name)
		}
		if _, dup := a.labels[name]; dup {
			return a.errf(line, "duplicate label %q", name)
		}
		a.symbols[name] = uint32(v)
	case ".word":
		for _, f := range splitArgs(rest) {
			v, err := a.constExpr(line, f)
			if err != nil {
				return err
			}
			a.appendU32(uint32(v))
		}
	case ".double":
		for _, f := range splitArgs(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return a.errf(line, "bad double %q", f)
			}
			bits := math.Float64bits(v)
			a.appendU32(uint32(bits))
			a.appendU32(uint32(bits >> 32))
		}
	case ".byte":
		for _, f := range splitArgs(rest) {
			v, err := a.constExpr(line, f)
			if err != nil {
				return err
			}
			if v < -128 || v > 255 {
				return a.errf(line, "byte value %d out of range", v)
			}
			a.data = append(a.data, byte(v))
		}
	case ".space":
		n, err := a.constExpr(line, strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		if n < 0 {
			return a.errf(line, ".space size %d negative", n)
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		n, err := a.constExpr(line, strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		if n <= 0 || n&(n-1) != 0 {
			return a.errf(line, ".align %d not a power of two", n)
		}
		for len(a.data)%int(n) != 0 {
			a.data = append(a.data, 0)
		}
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return a.errf(line, "bad string %s", rest)
		}
		a.data = append(a.data, s...)
		if op == ".asciz" {
			a.data = append(a.data, 0)
		}
	default:
		return a.errf(line, "unknown directive %q", op)
	}
	return nil
}

func (a *assembler) appendU32(v uint32) {
	a.data = append(a.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// pass2 encodes the queued instructions now that all labels are known.
func (a *assembler) pass2() (*isa.Program, error) {
	p := &isa.Program{
		Name:    a.name,
		Data:    a.data,
		Symbols: a.symbols,
		Labels:  a.labels,
	}
	for _, pd := range a.insts {
		in, err := a.encode(pd)
		if err != nil {
			return nil, err
		}
		p.Insts = append(p.Insts, in)
	}
	entry := a.entry
	if entry == "" {
		if _, ok := a.labels["main"]; ok {
			entry = "main"
		}
	}
	if entry != "" {
		idx, ok := a.labels[entry]
		if !ok {
			return nil, fmt.Errorf("asm: entry label %q not defined", entry)
		}
		p.Entry = idx
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (a *assembler) encode(pd pending) (isa.Inst, error) {
	op, args, err := a.expandPseudo(pd)
	if err != nil {
		return isa.Inst{}, err
	}
	o, ok := isa.OpByName[op]
	if !ok {
		return isa.Inst{}, a.errf(pd.line, "unknown instruction %q", pd.op)
	}
	need := operandCount(o.Format())
	if o == isa.PREF {
		need = 1 // pref has no destination: "pref imm(rs)"
	}
	if len(args) != need {
		return isa.Inst{}, a.errf(pd.line, "%s: got %d operands, want %d", op, len(args), need)
	}
	in := isa.Inst{Op: o}
	switch o.Format() {
	case isa.FmtNone:
	case isa.FmtR3:
		if in.Rd, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Rs, err = a.reg(pd.line, args[1]); err != nil {
			return in, err
		}
		if in.Rt, err = a.reg(pd.line, args[2]); err != nil {
			return in, err
		}
	case isa.FmtR2I:
		if in.Rd, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Rs, err = a.reg(pd.line, args[1]); err != nil {
			return in, err
		}
		if in.Imm, err = a.immExpr(pd.line, args[2]); err != nil {
			return in, err
		}
	case isa.FmtRI:
		if in.Rd, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Imm, err = a.immExpr(pd.line, args[1]); err != nil {
			return in, err
		}
	case isa.FmtR2:
		if in.Rd, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Rs, err = a.reg(pd.line, args[1]); err != nil {
			return in, err
		}
	case isa.FmtMemL:
		i := 0
		if o != isa.PREF {
			if in.Rd, err = a.reg(pd.line, args[0]); err != nil {
				return in, err
			}
			i = 1
		}
		if in.Imm, in.Rs, err = a.memOperand(pd.line, args[i]); err != nil {
			return in, err
		}
	case isa.FmtMemS:
		if in.Rt, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Imm, in.Rs, err = a.memOperand(pd.line, args[1]); err != nil {
			return in, err
		}
	case isa.FmtB2:
		if in.Rs, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Rt, err = a.reg(pd.line, args[1]); err != nil {
			return in, err
		}
		if in.Imm, err = a.codeTarget(pd.line, args[2]); err != nil {
			return in, err
		}
	case isa.FmtB1:
		if in.Rs, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
		if in.Imm, err = a.codeTarget(pd.line, args[1]); err != nil {
			return in, err
		}
	case isa.FmtB0:
		if in.Imm, err = a.codeTarget(pd.line, args[0]); err != nil {
			return in, err
		}
	case isa.FmtR1:
		if in.Rs, err = a.reg(pd.line, args[0]); err != nil {
			return in, err
		}
	case isa.FmtI:
		if in.Imm, err = a.immExpr(pd.line, args[0]); err != nil {
			return in, err
		}
	default:
		return in, a.errf(pd.line, "unhandled format for %q", op)
	}
	return in, nil
}

// expandPseudo rewrites pseudo-instructions into real ones.
func (a *assembler) expandPseudo(pd pending) (string, []string, error) {
	op, args := strings.ToLower(pd.op), pd.args
	switch op {
	case "la":
		// la rd, sym  ->  li rd, address-or-index
		return "li", args, nil
	case "mov", "move":
		if len(args) != 2 {
			return "", nil, a.errf(pd.line, "mov: got %d operands, want 2", len(args))
		}
		return "add", []string{args[0], args[1], "$r0"}, nil
	case "b":
		return "j", args, nil
	case "beqz":
		if len(args) != 2 {
			return "", nil, a.errf(pd.line, "beqz: got %d operands, want 2", len(args))
		}
		return "beq", []string{args[0], "$r0", args[1]}, nil
	case "bnez":
		if len(args) != 2 {
			return "", nil, a.errf(pd.line, "bnez: got %d operands, want 2", len(args))
		}
		return "bne", []string{args[0], "$r0", args[1]}, nil
	}
	return op, args, nil
}

func operandCount(f isa.Fmt) int {
	switch f {
	case isa.FmtNone:
		return 0
	case isa.FmtR3, isa.FmtR2I, isa.FmtB2:
		return 3
	case isa.FmtRI, isa.FmtR2, isa.FmtMemL, isa.FmtMemS, isa.FmtB1:
		return 2
	case isa.FmtB0, isa.FmtR1, isa.FmtI:
		return 1
	}
	return -1
}

// reg parses a register or queue operand.
func (a *assembler) reg(line int, s string) (isa.Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return isa.RegNone, a.errf(line, "expected register, got %q", s)
	}
	body := s[1:]
	switch body {
	case "zero":
		return isa.R0, nil
	case "sp":
		return isa.SP, nil
	case "fp":
		return isa.FP, nil
	case "ra":
		return isa.RA, nil
	case "LDQ", "ldq":
		return isa.RegLDQ, nil
	case "SDQ", "sdq":
		return isa.RegSDQ, nil
	case "CQ", "cq":
		return isa.RegCQ, nil
	case "SCQ", "scq":
		return isa.RegSCQ, nil
	}
	if len(body) >= 2 && (body[0] == 'r' || body[0] == 'f') {
		n, err := strconv.Atoi(body[1:])
		if err == nil && n >= 0 && n < 32 {
			if body[0] == 'r' {
				return isa.R(n), nil
			}
			return isa.F(n), nil
		}
	}
	return isa.RegNone, a.errf(line, "bad register %q", s)
}

// memOperand parses "imm(reg)" or "sym(reg)" or "sym+imm(reg)".
func (a *assembler) memOperand(line int, s string) (int32, isa.Reg, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, isa.RegNone, a.errf(line, "bad memory operand %q", s)
	}
	base, err := a.reg(line, s[open+1:len(s)-1])
	if err != nil {
		return 0, isa.RegNone, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, base, nil
	}
	off, err := a.immExpr(line, offStr)
	if err != nil {
		return 0, isa.RegNone, err
	}
	return off, base, nil
}

// codeTarget resolves a branch/jump target: a code label or a number.
func (a *assembler) codeTarget(line int, s string) (int32, error) {
	s = strings.TrimSpace(s)
	if idx, ok := a.labels[s]; ok {
		return int32(idx), nil
	}
	if v, err := parseInt(s); err == nil {
		return int32(v), nil
	}
	return 0, a.errf(line, "undefined code label %q", s)
}

// immExpr resolves "int", "sym", or "sym+int" / "sym-int".
func (a *assembler) immExpr(line int, s string) (int32, error) {
	v, err := a.constExpr(line, s)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}

func (a *assembler) constExpr(line int, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf(line, "empty expression")
	}
	if v, err := parseInt(s); err == nil {
		return v, nil
	}
	// sym, sym+N, sym-N
	sym := s
	var off int64
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			n, err := parseInt(s[i:])
			if err != nil {
				return 0, a.errf(line, "bad expression %q", s)
			}
			sym, off = s[:i], n
			break
		}
	}
	sym = strings.TrimSpace(sym)
	if addr, ok := a.symbols[sym]; ok {
		return int64(addr) + off, nil
	}
	if idx, ok := a.labels[sym]; ok {
		return int64(idx) + off, nil
	}
	return 0, a.errf(line, "undefined symbol %q", sym)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	out := int64(v)
	if neg {
		out = -out
	}
	if out < math.MinInt32 || out > math.MaxUint32 {
		return 0, fmt.Errorf("value %s out of 32-bit range", s)
	}
	return out, nil
}

// splitArgs splits an operand list on commas, respecting parentheses
// and string quotes.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
