package asm

import "testing"

// FuzzAssemble pins the assembler's containment contract: arbitrary
// source must produce a program or an error, never a panic. Run the
// smoke pass with `make fuzz-smoke`, or dig deeper with
// `go test -fuzz FuzzAssemble -fuzztime 60s ./internal/asm`.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"main: halt",
		"main: add $r1, $r2, $r3\nhalt",
		"main: lw $r1, 0($r2)\n sw $r1, 4($r2)\n halt",
		"main: add $r1, $LDQ, $r0\n halt",
		".data\nx: .word 1, 2, 3\n.text\nmain: la $r1, x\n halt",
		"loop: addi $r1, $r1, -1\n bgtz $r1, loop\n out $r1\n halt",
		"main: trigger 0, 9\n getscq 0\n putscq 0\n halt",
		"main: li $f1, 1.5\n add.d $f2, $f1, $f1\n halt",
		".data\ns: .space 64\n.text\nmain: jal sub\n halt\nsub: jr $ra",
		"main: .word",
		"main: lw $r1, 0x10000000($r2",
		": :\n\t,,,\n\"",
		".data\nx: .word 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err == nil && p == nil {
			t.Error("Assemble returned neither program nor error")
		}
	})
}
