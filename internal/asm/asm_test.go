package asm

import (
	"math"
	"strings"
	"testing"

	"hidisc/internal/isa"
)

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := assemble(t, `
        .text
main:   li   $r1, 100
loop:   addi $r1, $r1, -1
        bgtz $r1, loop
        halt
`)
	if len(p.Insts) != 4 {
		t.Fatalf("got %d insts", len(p.Insts))
	}
	want := []isa.Inst{
		{Op: isa.LI, Rd: isa.R1, Imm: 100},
		{Op: isa.ADDI, Rd: isa.R1, Rs: isa.R1, Imm: -1},
		{Op: isa.BGTZ, Rs: isa.R1, Imm: 1},
		{Op: isa.HALT},
	}
	for i := range want {
		if p.Insts[i] != want[i] {
			t.Errorf("inst %d: got %v, want %v", i, p.Insts[i], want[i])
		}
	}
	if p.Entry != 0 {
		t.Errorf("entry = %d", p.Entry)
	}
	if p.Labels["loop"] != 1 {
		t.Errorf("loop = %d", p.Labels["loop"])
	}
}

func TestDataSection(t *testing.T) {
	p := assemble(t, `
        .data
tab:    .word 1, 2, 0x10, -1
vals:   .double 1.5
        .align 8
buf:    .space 16
bytes:  .byte 65, 0xFF
msg:    .asciz "hi"
        .text
main:   la  $r2, tab
        la  $r3, vals
        lw  $r4, tab+8($r0)
        halt
`)
	if p.Symbols["tab"] != isa.DataBase {
		t.Errorf("tab = %#x", p.Symbols["tab"])
	}
	if p.Symbols["vals"] != isa.DataBase+16 {
		t.Errorf("vals = %#x", p.Symbols["vals"])
	}
	// .align 8 after 16+8=24 bytes: already aligned.
	if p.Symbols["buf"] != isa.DataBase+24 {
		t.Errorf("buf = %#x", p.Symbols["buf"])
	}
	if p.Symbols["bytes"] != isa.DataBase+40 {
		t.Errorf("bytes = %#x", p.Symbols["bytes"])
	}
	// Data contents.
	if p.Data[0] != 1 || p.Data[4] != 2 || p.Data[8] != 0x10 {
		t.Error("word data wrong")
	}
	if p.Data[12] != 0xFF || p.Data[15] != 0xFF {
		t.Error(".word -1 not all ones")
	}
	bits := uint64(0)
	for i := 0; i < 8; i++ {
		bits |= uint64(p.Data[16+i]) << (8 * i)
	}
	if math.Float64frombits(bits) != 1.5 {
		t.Error(".double encoding wrong")
	}
	if p.Data[40] != 65 || p.Data[41] != 0xFF {
		t.Error(".byte data wrong")
	}
	if string(p.Data[42:44]) != "hi" || p.Data[44] != 0 {
		t.Error(".asciz data wrong")
	}
	// la resolves to the data address.
	if p.Insts[0].Imm != int32(isa.DataBase) {
		t.Errorf("la tab imm = %#x", p.Insts[0].Imm)
	}
	if p.Insts[2].Imm != int32(isa.DataBase+8) {
		t.Errorf("sym+off imm = %#x", p.Insts[2].Imm)
	}
}

func TestRegistersAndQueues(t *testing.T) {
	p := assemble(t, `
main:   add   $r1, $sp, $ra
        mul.d $f4, $LDQ, $LDQ
        s.d   $SDQ, 8($r13)
        l.d   $LDQ, 88($r9)
        add   $r2, $zero, $fp
        halt
`)
	if p.Insts[0].Rs != isa.SP || p.Insts[0].Rt != isa.RA {
		t.Error("aliases wrong")
	}
	in := p.Insts[1]
	if in.Op != isa.FMUL || in.Rd != isa.F(4) || in.Rs != isa.RegLDQ || in.Rt != isa.RegLDQ {
		t.Errorf("queue sources: %v", in)
	}
	in = p.Insts[2]
	if in.Op != isa.SFD || in.Rt != isa.RegSDQ || in.Rs != isa.R13 || in.Imm != 8 {
		t.Errorf("store with SDQ: %v", in)
	}
	in = p.Insts[3]
	if in.Rd != isa.RegLDQ {
		t.Errorf("load to LDQ: %v", in)
	}
	if p.Insts[4].Rs != isa.R0 || p.Insts[4].Rt != isa.FP {
		t.Error("zero/fp aliases wrong")
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := assemble(t, `
main:   mov   $r1, $r2
        b     done
        beqz  $r3, done
        bnez  $r4, main
done:   halt
`)
	if p.Insts[0].Op != isa.ADD || p.Insts[0].Rt != isa.R0 {
		t.Errorf("mov: %v", p.Insts[0])
	}
	if p.Insts[1].Op != isa.J || p.Insts[1].Imm != 4 {
		t.Errorf("b: %v", p.Insts[1])
	}
	if p.Insts[2].Op != isa.BEQ || p.Insts[2].Rt != isa.R0 || p.Insts[2].Imm != 4 {
		t.Errorf("beqz: %v", p.Insts[2])
	}
	if p.Insts[3].Op != isa.BNE || p.Insts[3].Imm != 0 {
		t.Errorf("bnez: %v", p.Insts[3])
	}
}

func TestEntryDirectiveAndMainDefault(t *testing.T) {
	p := assemble(t, `
        .entry start
first:  nop
start:  halt
`)
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
	p = assemble(t, `
top:    nop
main:   halt
`)
	if p.Entry != 1 {
		t.Errorf("main default entry = %d, want 1", p.Entry)
	}
	p = assemble(t, `
        nop
        halt
`)
	if p.Entry != 0 {
		t.Errorf("fallback entry = %d, want 0", p.Entry)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := assemble(t, `
; full-line comment
main:   nop           ; trailing comment
        # hash comment
        halt          # another
`)
	if len(p.Insts) != 2 {
		t.Errorf("got %d insts, want 2", len(p.Insts))
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p := assemble(t, `
main: start: nop
        halt
`)
	if p.Labels["main"] != 0 || p.Labels["start"] != 0 {
		t.Errorf("labels: %v", p.Labels)
	}
}

func TestControlFlowForms(t *testing.T) {
	p := assemble(t, `
main:   jal  f
        jr   $ra
f:      bcq  main
        jcq
        getscq 2
        putscq 2
        pref 32($r9)
        out  $r1
        halt
`)
	ops := []isa.Op{isa.JAL, isa.JR, isa.BCQ, isa.JCQ, isa.GETSCQ, isa.PUTSCQ, isa.PREF, isa.OUT, isa.HALT}
	for i, op := range ops {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d: got %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	if p.Insts[0].Imm != 2 {
		t.Errorf("jal target = %d", p.Insts[0].Imm)
	}
	if p.Insts[6].Rs != isa.R9 || p.Insts[6].Imm != 32 {
		t.Errorf("pref operand: %v", p.Insts[6])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"main: frobnicate $r1", "unknown instruction"},
		{"main: add $r1, $r2", "operands"},
		{"main: add $r1, $r2, $r99", "bad register"},
		{"main: lw $r1, tab($r2)", "undefined symbol"},
		{"main: beq $r1, $r0, nowhere", "undefined code label"},
		{".data\nx: .word 1\n.data\nx: .word 2", "duplicate"},
		{"main: halt\nmain: halt", "duplicate"},
		{".entry nowhere\nmain: halt", "not defined"},
		{".bogus 3", "unknown directive"},
		{".data\n.byte 300", "out of range"},
		{".data\n.align 3", "power of two"},
		{".data\n.space -4", "negative"},
		{".data\nx: .word 1\nlw $r1, 0($r2)", "outside .text"},
		{"main: lw $r1, 0", "bad memory operand"},
		{"main: li $r1, 0x1ffffffff", "undefined symbol"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("source %q: no error, want %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("t", "main: nop\n\n bad $r1\nhalt")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q missing line number", err)
	}
}

func TestNegativeAndHexImmediates(t *testing.T) {
	p := assemble(t, `
main:   li   $r1, -42
        li   $r2, 0xFF00
        addi $r3, $r1, -0x10
        halt
`)
	if p.Insts[0].Imm != -42 || p.Insts[1].Imm != 0xFF00 || p.Insts[2].Imm != -16 {
		t.Errorf("immediates: %d %d %d", p.Insts[0].Imm, p.Insts[1].Imm, p.Insts[2].Imm)
	}
}

func TestLargeUnsignedImmediate(t *testing.T) {
	p := assemble(t, "main: li $r1, 0xFFFFFFFF\nhalt")
	if uint32(p.Insts[0].Imm) != 0xFFFFFFFF {
		t.Errorf("imm = %#x", uint32(p.Insts[0].Imm))
	}
}

// TestDisasmReassembleRoundTrip checks that disassembled instructions
// re-assemble to the same encodings (for formats without labels).
func TestDisasmReassembleRoundTrip(t *testing.T) {
	src := `
main:   add   $r9, $r25, $r8
        l.d   $f16, 88($r9)
        s.d   $f4, 0($r13)
        mul.d $f4, $f16, $f18
        li    $r4, -3
        slti  $r5, $r4, 10
        cvt.d.w $f2, $r3
        pref  32($r9)
        getscq 1
        halt
`
	p1 := assemble(t, src)
	var lines []string
	for _, in := range p1.Insts {
		lines = append(lines, in.String())
	}
	p2 := assemble(t, "main: "+strings.Join(lines, "\n"))
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("length mismatch %d vs %d", len(p1.Insts), len(p2.Insts))
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}

func TestAssembleErrorsOnUnknownMnemonic(t *testing.T) {
	if _, err := Assemble("t", "main: frobnicate"); err == nil {
		t.Error("Assemble accepted an unknown mnemonic")
	}
}

func TestSplitArgsRespectsParensAndStrings(t *testing.T) {
	got := splitArgs(`$r1, 8($r2), "a,b"`)
	if len(got) != 3 || got[1] != "8($r2)" || got[2] != `"a,b"` {
		t.Errorf("splitArgs = %q", got)
	}
	if splitArgs("") != nil {
		t.Error("empty splitArgs not nil")
	}
}

func TestEquDirective(t *testing.T) {
	p := assemble(t, `
        .equ N, 64
        .equ MASK, N-1
        .data
buf:    .space N
        .text
main:   li   $r1, N
        andi $r2, $r1, MASK
        lw   $r3, buf+4($r0)
        halt
`)
	if p.Insts[0].Imm != 64 {
		t.Errorf("li N = %d", p.Insts[0].Imm)
	}
	if p.Insts[1].Imm != 63 {
		t.Errorf("andi MASK = %d", p.Insts[1].Imm)
	}
	if uint32(p.Insts[2].Imm) != isa.DataBase+4 {
		t.Errorf("buf+4 = %#x", uint32(p.Insts[2].Imm))
	}
	if len(p.Data) != 64 {
		t.Errorf(".space N = %d bytes", len(p.Data))
	}
}

func TestEquErrors(t *testing.T) {
	for _, src := range []string{
		".equ N",               // missing value
		".equ 9x, 3",           // bad name
		".equ N, 1\n.equ N, 2", // duplicate
		".equ N, undefinedsym", // undefined value
	} {
		if _, err := Assemble("t", src+"\nmain: halt"); err == nil {
			t.Errorf("source %q accepted", src)
		}
	}
}
