//go:build race

package experiments

// raceEnabled gates the paper-scale differential matrix out of the
// race gate: the detector's ~10x slowdown on two full Figure 8 passes
// would dominate CI, and the memory-model interleavings it probes are
// already exercised by the test-scale pass.
const raceEnabled = true
