package experiments

// The batch-robustness acceptance test: a parallel sweep in which some
// jobs are rigged to deadlock or panic must finish every healthy job
// with results bit-identical to a sequential run, and attribute each
// fault to the job that raised it. Runs under -race in CI.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/simfault"
	"hidisc/internal/workloads"
)

func TestFaultyJobsAreContainedAndAttributed(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)

	// The full benchmark matrix (7 workloads x 4 architectures = 28
	// healthy jobs) ...
	var jobs []Job
	for _, name := range workloads.Names() {
		for _, arch := range machine.Arches {
			jobs = append(jobs, Job{Workload: name, Arch: arch, Hier: r.Hier})
		}
	}
	if len(jobs) < 20 {
		t.Fatalf("only %d jobs; the acceptance batch needs >= 20", len(jobs))
	}
	healthy := len(jobs)

	// ... plus one job rigged to deadlock (cache ports stalled forever)
	// and one rigged to panic mid-loop. Each gets its own Injector —
	// they must not share PRNG state across goroutines.
	deadlockIdx := len(jobs)
	jobs = append(jobs, Job{
		Workload: "Pointer", Arch: machine.CPAP, Hier: r.Hier,
		Configure: func(cfg *machine.Config) {
			cfg.WatchdogCycles = 2000
			cfg.Inject = simfault.NewInjector(1, simfault.Action{
				Kind: simfault.ActStallCachePort, Core: "ap", At: 100,
			})
		},
	})
	panicIdx := len(jobs)
	jobs = append(jobs, Job{
		Workload: "Update", Arch: machine.Superscalar, Hier: r.Hier,
		Configure: func(cfg *machine.Config) {
			cfg.Inject = simfault.NewInjector(2, simfault.Action{
				Kind: simfault.ActPanic, At: 50,
			})
		},
	})

	ms, err := r.RunJobsCollect(8, jobs)
	if err == nil {
		t.Fatal("RunJobsCollect reported no error for a batch with rigged jobs")
	}

	// Both faults present, typed, each attributed to its job.
	var dl *simfault.DeadlockFault
	if !errors.As(err, &dl) {
		t.Errorf("aggregate lost the DeadlockFault: %v", err)
	} else if dl.Snapshot == nil || len(dl.Snapshot.Cores) == 0 {
		t.Error("DeadlockFault snapshot is empty")
	}
	var inv *simfault.InvariantFault
	if !errors.As(err, &inv) {
		t.Errorf("aggregate lost the InvariantFault: %v", err)
	} else if inv.Snapshot == nil || inv.Snapshot.Cycle != 50 {
		t.Errorf("InvariantFault snapshot = %+v, want cycle 50", inv.Snapshot)
	}
	var jerrs []*JobError
	var walk func(error)
	walk = func(e error) {
		if je, ok := e.(*JobError); ok {
			jerrs = append(jerrs, je)
			return
		}
		if u, ok := e.(interface{ Unwrap() []error }); ok {
			for _, c := range u.Unwrap() {
				walk(c)
			}
		}
	}
	walk(err)
	if len(jerrs) != 2 {
		t.Fatalf("aggregate holds %d JobErrors, want 2: %v", len(jerrs), err)
	}
	gotIdx := map[int]simfault.Kind{}
	for _, je := range jerrs {
		k, ok := simfault.KindOf(je)
		if !ok {
			t.Errorf("job %d fault is untyped: %v", je.Index, je.Err)
		}
		gotIdx[je.Index] = k
	}
	if gotIdx[deadlockIdx] != simfault.KindDeadlock || gotIdx[panicIdx] != simfault.KindInvariant {
		t.Errorf("fault attribution = %v, want {%d: deadlock, %d: invariant}", gotIdx, deadlockIdx, panicIdx)
	}

	// Every healthy job's measurement is bit-identical to a sequential
	// run on a fresh runner, rigged neighbours notwithstanding.
	seq := NewRunner(workloads.ScaleTest)
	for i := 0; i < healthy; i++ {
		want, serr := seq.Run(jobs[i].Workload, jobs[i].Arch, jobs[i].Hier)
		if serr != nil {
			t.Fatalf("sequential %s on %s: %v", jobs[i].Workload, jobs[i].Arch, serr)
		}
		if !reflect.DeepEqual(ms[i], want) {
			t.Errorf("job %d (%s on %s) differs from its sequential run", i, jobs[i].Workload, jobs[i].Arch)
		}
	}
	// Failed jobs leave zero measurements.
	if ms[deadlockIdx].Cycles != 0 || ms[panicIdx].Cycles != 0 {
		t.Error("rigged jobs left non-zero measurements")
	}

	// And the faults can be persisted for offline forensics.
	paths, werr := simfault.WriteSnapshots(t.TempDir(), err)
	if werr != nil || len(paths) != 2 {
		t.Errorf("WriteSnapshots = %v, %v; want 2 files", paths, werr)
	}
}

func TestRunJobsFirstErrorIsJobAttributed(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	jobs := []Job{
		{Workload: "Pointer", Arch: machine.Superscalar, Hier: r.Hier},
		{Workload: "no-such-workload", Arch: machine.Superscalar, Hier: r.Hier},
		{Workload: "Update", Arch: machine.Superscalar, Hier: r.Hier},
	}
	_, err := r.RunJobs(2, jobs)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("got %T (%v), want *JobError", err, err)
	}
	if je.Index != 1 || je.Job.Workload != "no-such-workload" {
		t.Errorf("first error attributed to job %d (%s), want 1", je.Index, je.Job.Workload)
	}
}

func TestRunnerContextCancelsBatch(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunJobsContext(ctx, 2, []Job{
		{Workload: "Pointer", Arch: machine.Superscalar, Hier: r.Hier},
	})
	var to *simfault.TimeoutFault
	if !errors.As(err, &to) {
		t.Fatalf("got %T (%v), want *simfault.TimeoutFault", err, err)
	}
	// A fresh context must succeed: cancellation is per-call, not
	// sticky runner state.
	if _, err := r.RunJobsContext(context.Background(), 2, []Job{
		{Workload: "Pointer", Arch: machine.Superscalar, Hier: r.Hier},
	}); err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
}

func TestConfigureJobsBypassMeasurementCache(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	clean, err := r.Run("Pointer", machine.CPAP, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	// A perturbed job over the same (workload, arch, hier) key must
	// neither serve nor overwrite the cached clean measurement.
	perturbed := Job{
		Workload: "Pointer", Arch: machine.CPAP, Hier: r.Hier,
		Configure: func(cfg *machine.Config) { cfg.CP.WindowSize = 4 },
	}
	ms, err := r.RunJobs(1, []Job{perturbed})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Cycles == clean.Cycles {
		t.Error("perturbed job returned the cached clean measurement")
	}
	again, err := r.Run("Pointer", machine.CPAP, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, clean) {
		t.Error("perturbed job polluted the measurement cache")
	}
}
