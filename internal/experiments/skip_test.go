package experiments

// Workload-level differential for the event-driven cycle skipper:
// every workload on every architecture must produce a bit-identical
// machine.Result (cycles, all stats, output, memory hash, queue
// integrals) with fast-forwarding on and off. Run under -race by the
// tier-1 gate.

import (
	"reflect"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/workloads"
)

func TestSkipDifferentialAllWorkloads(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	skippedSomewhere := false
	for _, name := range workloads.Names() {
		c, err := r.Compile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, arch := range machine.Arches {
			run := func(noSkip bool) (machine.Result, *machine.Machine) {
				cfg := machine.DefaultConfig(arch)
				cfg.Hier = r.Hier
				cfg.NoSkip = noSkip
				m, err := machine.New(c.bundleFor(arch), cfg)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, arch, err)
				}
				res, err := m.Run()
				if err != nil {
					t.Fatalf("%s/%s (noSkip=%v): %v", name, arch, noSkip, err)
				}
				return res, m
			}
			fast, m := run(false)
			ref, _ := run(true)
			if !reflect.DeepEqual(fast, ref) {
				t.Errorf("%s/%s: Result differs between skip and no-skip:\nskip:    %+v\nno-skip: %+v",
					name, arch, fast, ref)
			}
			if m.CyclesSkipped() > 0 {
				skippedSomewhere = true
			}
		}
	}
	if !skippedSomewhere {
		t.Error("fast-forward never engaged on any workload/architecture")
	}
}
