package experiments

// Workload-level differential for the observability layer: attaching
// the interval sampler AND the full trace sink must leave the
// machine.Result bit-identical on every workload × architecture, both
// with the idle-cycle fast-forward and without it. This is the paper
// pipeline's guarantee that instrumented numbers are the real numbers.

import (
	"io"
	"reflect"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/telemetry"
	"hidisc/internal/workloads"
)

func TestTelemetryDifferentialAllWorkloads(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	for _, name := range workloads.Names() {
		c, err := r.Compile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, arch := range machine.Arches {
			for _, noSkip := range []bool{false, true} {
				run := func(instrument bool) machine.Result {
					cfg := machine.DefaultConfig(arch)
					cfg.Hier = r.Hier
					cfg.NoSkip = noSkip
					var tw *telemetry.TraceWriter
					if instrument {
						cfg.Sampler = telemetry.NewSampler(1024)
						tw = telemetry.NewTraceWriter(io.Discard, telemetry.FormatPerfetto)
						cfg.Trace = tw.Session(name + "/" + string(arch))
					}
					m, err := machine.New(c.bundleFor(arch), cfg)
					if err != nil {
						t.Fatalf("%s/%s: %v", name, arch, err)
					}
					res, err := m.Run()
					if err != nil {
						t.Fatalf("%s/%s (noSkip=%v instrument=%v): %v", name, arch, noSkip, instrument, err)
					}
					if tw != nil {
						if err := tw.Close(); err != nil {
							t.Fatalf("%s/%s: trace close: %v", name, arch, err)
						}
						if tw.Events() == 0 {
							t.Errorf("%s/%s: instrumented run emitted no trace events", name, arch)
						}
					}
					return res
				}
				instrumented := run(true)
				plain := run(false)
				if !reflect.DeepEqual(instrumented, plain) {
					t.Errorf("%s/%s (noSkip=%v): telemetry perturbed the Result:\nwith:    %+v\nwithout: %+v",
						name, arch, noSkip, instrumented, plain)
				}
			}
		}
	}
}
