package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/simfault"
	"hidisc/internal/workloads"
)

// Job names one independent simulation: a workload on an architecture
// with a memory hierarchy.
type Job struct {
	Workload string
	Arch     machine.Arch
	Hier     mem.HierConfig

	// Scale sizes the workload for Key(). The Runner executes every job
	// at its own Scale — this field exists so a content hash computed by
	// one process (e.g. the hidisc-serve result cache) distinguishes
	// test- from paper-scale submissions.
	Scale workloads.Scale

	// Configure, when non-nil, post-processes this job's machine
	// configuration (after the Runner-level hook). Jobs with a Configure
	// hook bypass the measurement cache — they are presumed perturbed
	// (fault injection, ablations) and must not pollute results shared
	// with unperturbed jobs.
	Configure func(*machine.Config)
}

// Key returns a canonical content hash of the job's simulation inputs:
// workload, architecture, the full hierarchy geometry and latencies,
// and workload scale. Simulations are deterministic, so two jobs with
// equal keys produce bit-identical Measurements; the hash is stable
// across processes and releases of this package (field order is fixed
// and versioned) and is used as the result-cache key by both the
// Runner and the hidisc-serve server.
//
// The Configure hook is deliberately excluded — a hook is an opaque
// perturbation, so jobs carrying one must never be cached by key (the
// Runner already bypasses its memo for them).
func (j Job) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "hidisc-job-v1|%s|%s|%d|%d,%d,%d,%d|%d,%d,%d,%d|%d",
		j.Workload, j.Arch, j.Scale,
		j.Hier.L1D.Sets, j.Hier.L1D.Ways, j.Hier.L1D.BlockSize, j.Hier.L1D.Latency,
		j.Hier.L2.Sets, j.Hier.L2.Ways, j.Hier.L2.BlockSize, j.Hier.L2.Latency,
		j.Hier.MemLatency)
	return hex.EncodeToString(h.Sum(nil))
}

// EffectiveWorkers resolves a requested worker count: n > 0 is taken
// literally, anything else (including the zero value) means one worker
// per CPU. Every fan-out entry point — RunJobs, RunAll, the figure
// helpers, hidisc-bench -j, hidisc-serve -j — routes through this so
// "0 workers" can never mean "no workers".
func EffectiveWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// JobError attributes a failure to one job of a batch.
type JobError struct {
	Index int // position in the submitted job slice
	Job   Job
	Err   error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("job %d (%s on %s): %v", e.Index, e.Job.Workload, e.Job.Arch, e.Err)
}

// Unwrap exposes the underlying fault to errors.As / errors.Is.
func (e *JobError) Unwrap() error { return e.Err }

// safeRun executes one job inside a panic-containment boundary: a
// panic escaping compilation, verification, or measurement becomes an
// *simfault.InvariantFault instead of killing the worker goroutine
// (machine-level panics are already recovered inside RunContext with a
// full snapshot; this boundary catches everything around it).
func (r *Runner) safeRun(ctx context.Context, j Job) (m Measurement, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m = Measurement{}
			err = &simfault.InvariantFault{
				Origin: fmt.Sprintf("experiments %s on %s", j.Workload, j.Arch),
				Reason: fmt.Sprint(rec),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	return r.runJob(ctx, j)
}

// runJobs executes every job (healthy or not) across a worker pool and
// returns the per-job measurements and errors, both in job order.
func (r *Runner) runJobs(ctx context.Context, workers int, jobs []Job) ([]Measurement, []error) {
	workers = EffectiveWorkers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Measurement, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			results[i], errs[i] = r.safeRun(ctx, j)
		}
		return results, errs
	}
	// Warm the compile cache on one goroutine first: distinct workloads
	// single-flight anyway, but compiling up front keeps workers from
	// idling behind a shared Once when many jobs share one workload.
	// Failures are ignored here — the memoised error resurfaces on each
	// affected job so the attribution stays per-job.
	seen := map[string]bool{}
	for _, j := range jobs {
		if !seen[j.Workload] {
			seen[j.Workload] = true
			_, _ = r.Compile(j.Workload)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = r.safeRun(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errs
}

// RunJobs executes the jobs across a pool of worker goroutines and
// returns their measurements in job order. Each simulation is fully
// independent (its own machine.Machine, memory image, and hierarchy),
// so results are bit-identical to running the jobs sequentially —
// only the wall-clock order of execution differs.
//
// workers <= 0 means GOMAXPROCS. Every job runs to completion even
// when some fail; on error the first failure in job order is returned
// as a *JobError, matching what a sequential loop would report. Use
// RunJobsCollect to receive every failure.
func (r *Runner) RunJobs(workers int, jobs []Job) ([]Measurement, error) {
	return r.RunJobsContext(r.ctx(), workers, jobs)
}

// RunJobsContext is RunJobs under an explicit context; cancelling ctx
// aborts in-flight simulations with *simfault.TimeoutFault.
func (r *Runner) RunJobsContext(ctx context.Context, workers int, jobs []Job) ([]Measurement, error) {
	ms, errs := r.runJobs(ctx, workers, jobs)
	for i, err := range errs {
		if err != nil {
			return nil, &JobError{Index: i, Job: jobs[i], Err: err}
		}
	}
	return ms, nil
}

// RunJobsCollect executes every job and aggregates all failures with
// errors.Join, each wrapped in a *JobError naming the job it belongs
// to. Healthy jobs' measurements are valid (and bit-identical to a
// sequential run) even when other jobs in the batch deadlock or panic;
// failed jobs leave a zero Measurement at their index. Walk the
// aggregate with errors.As or simfault.WriteSnapshots.
func (r *Runner) RunJobsCollect(workers int, jobs []Job) ([]Measurement, error) {
	ms, errs := r.runJobs(r.ctx(), workers, jobs)
	var jerrs []error
	for i, err := range errs {
		if err != nil {
			jerrs = append(jerrs, &JobError{Index: i, Job: jobs[i], Err: err})
		}
	}
	return ms, errors.Join(jerrs...)
}
