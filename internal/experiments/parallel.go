package experiments

import (
	"runtime"
	"sync"

	"hidisc/internal/machine"
	"hidisc/internal/mem"
)

// Job names one independent simulation: a workload on an architecture
// with a memory hierarchy.
type Job struct {
	Workload string
	Arch     machine.Arch
	Hier     mem.HierConfig
}

// RunJobs executes the jobs across a pool of worker goroutines and
// returns their measurements in job order. Each simulation is fully
// independent (its own machine.Machine, memory image, and hierarchy),
// so results are bit-identical to running the jobs sequentially —
// only the wall-clock order of execution differs.
//
// workers <= 0 means GOMAXPROCS. On error the first failure in job
// order is returned, matching what a sequential loop would report.
func (r *Runner) RunJobs(workers int, jobs []Job) ([]Measurement, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Measurement, len(jobs))
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			m, err := r.Run(j.Workload, j.Arch, j.Hier)
			if err != nil {
				return nil, err
			}
			results[i] = m
		}
		return results, nil
	}
	// Warm the compile cache on one goroutine first: distinct workloads
	// single-flight anyway, but compiling up front keeps workers from
	// idling behind a shared Once when many jobs share one workload.
	seen := map[string]bool{}
	for _, j := range jobs {
		if !seen[j.Workload] {
			seen[j.Workload] = true
			if _, err := r.Compile(j.Workload); err != nil {
				return nil, err
			}
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				results[i], errs[i] = r.Run(j.Workload, j.Arch, j.Hier)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
