package experiments

import (
	"reflect"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/workloads"
)

// TestParallelRunnerDeterministic is the contract behind the -j flag:
// fanning simulations across goroutines must produce bit-identical
// Results to the sequential path — cycles, output checksums, cache
// counters, queue stats, everything. Run under -race this also audits
// that no package-level mutable state is shared between machines.
func TestParallelRunnerDeterministic(t *testing.T) {
	var jobs []Job
	seq := NewRunner(workloads.ScaleTest)
	for _, name := range []string{"Pointer", "NB"} {
		for _, arch := range machine.Arches {
			jobs = append(jobs, Job{Workload: name, Arch: arch, Hier: seq.Hier})
		}
	}
	want := make([]Measurement, len(jobs))
	for i, j := range jobs {
		m, err := seq.Run(j.Workload, j.Arch, j.Hier)
		if err != nil {
			t.Fatalf("sequential %s on %s: %v", j.Workload, j.Arch, err)
		}
		want[i] = m
	}

	par := NewRunner(workloads.ScaleTest)
	got, err := par.RunJobs(8, jobs)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("got %d measurements, want %d", len(got), len(jobs))
	}
	for i, j := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s on %s: parallel measurement differs from sequential\n got: %+v\nwant: %+v",
				j.Workload, j.Arch, got[i], want[i])
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Errorf("%s on %s: Result differs (cycles %d vs %d, memhash %x vs %x)",
				j.Workload, j.Arch, got[i].Result.Cycles, want[i].Result.Cycles,
				got[i].Result.MemHash, want[i].Result.MemHash)
		}
	}
}

// TestRunJobsSequentialFallback pins the workers<=1 path to the same
// results as the pool.
func TestRunJobsSequentialFallback(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	jobs := []Job{
		{Workload: "Field", Arch: machine.Superscalar, Hier: r.Hier},
		{Workload: "Field", Arch: machine.HiDISC, Hier: r.Hier},
	}
	one, err := r.RunJobs(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewRunner(workloads.ScaleTest).RunJobs(4, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Error("workers=1 and workers=4 disagree")
	}
}

// TestRunJobsFirstErrorInJobOrder: a bad job must surface the same
// error a sequential loop would hit first.
func TestRunJobsFirstErrorInJobOrder(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	jobs := []Job{
		{Workload: "Field", Arch: machine.Superscalar, Hier: r.Hier},
		{Workload: "nonsense", Arch: machine.Superscalar, Hier: r.Hier},
	}
	if _, err := r.RunJobs(4, jobs); err == nil {
		t.Fatal("want error for unknown workload")
	}
}

// TestRunAllMatchesSequentialRuns: the fanned-out RunAll must agree
// with individually issued Run calls.
func TestRunAllMatchesSequentialRuns(t *testing.T) {
	par := NewRunner(workloads.ScaleTest)
	par.Workers = 4
	all, err := par.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	seq := NewRunner(workloads.ScaleTest)
	for _, name := range []string{"DM", "TC"} {
		for _, arch := range machine.Arches {
			m, err := seq.Run(name, arch, seq.Hier)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all[name][arch], m) {
				t.Errorf("RunAll %s on %s differs from sequential Run", name, arch)
			}
		}
	}
}
