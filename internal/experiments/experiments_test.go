package experiments

import (
	"strings"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/workloads"
)

func TestTable1RendersParameters(t *testing.T) {
	s := Table1()
	for _, want := range []string{
		"Bimodal", "2048", "256 sets", "1024 sets", "120 cycles", "12 cycles",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestRunnerVerifiesAndCaches(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	m1, err := r.Run("Field", machine.Superscalar, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cycles <= 0 || m1.SeqInsts == 0 || m1.IPC <= 0 {
		t.Errorf("measurement: %+v", m1)
	}
	// Second run must come from the cache (same values, instant).
	m2, err := r.Run("Field", machine.Superscalar, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Cycles != m2.Cycles {
		t.Error("cache returned different measurement")
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	if _, err := r.Run("nonsense", machine.Superscalar, r.Hier); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCompiledBundleSelection(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	c, err := r.Compile("Field")
	if err != nil {
		t.Fatal(err)
	}
	if c.bundleFor(machine.Superscalar) != c.Plain || c.bundleFor(machine.CPAP) != c.Plain {
		t.Error("baseline architectures must use the plain bundle")
	}
	if c.bundleFor(machine.CPCMP) != c.CMAS || c.bundleFor(machine.HiDISC) != c.CMAS {
		t.Error("CMP architectures must use the CMAS bundle")
	}
	if c.SeqInsts == 0 {
		t.Error("no reference instruction count")
	}
}

func TestFig8AndDerivedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	r := NewRunner(workloads.ScaleTest)
	fig8, err := RunFig8(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.Names() {
		row, ok := fig8.Rows[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if row[machine.Superscalar] != 1.0 {
			t.Errorf("%s: baseline speedup %v != 1", name, row[machine.Superscalar])
		}
		for _, a := range machine.Arches {
			if row[a] <= 0 {
				t.Errorf("%s/%s: speedup %v", name, a, row[a])
			}
		}
	}
	s := fig8.String()
	if !strings.Contains(s, "Figure 8") || !strings.Contains(s, "Pointer") {
		t.Errorf("fig8 render:\n%s", s)
	}

	t2 := RunTable2(fig8)
	if t2.Avg[machine.Superscalar] != 1.0 {
		t.Errorf("table 2 baseline average %v", t2.Avg[machine.Superscalar])
	}
	if !strings.Contains(t2.String(), "decoupling and prefetching") {
		t.Error("table 2 render missing HiDISC row")
	}

	fig9 := RunFig9(fig8)
	for _, name := range workloads.Names() {
		if v := fig9.Rows[name][machine.Superscalar]; v != 1.0 {
			t.Errorf("%s: baseline normalised misses %v != 1", name, v)
		}
	}
	if !strings.Contains(fig9.String(), "Figure 9") {
		t.Error("fig9 render")
	}
	_ = fig9.AverageReduction(machine.HiDISC)
}

func TestFig10Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep")
	}
	r := NewRunner(workloads.ScaleTest)
	fig, err := RunFig10(r, "Field")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range machine.Arches {
		if len(fig.IPC[a]) != len(LatencyPoints) {
			t.Fatalf("%s: %d points", a, len(fig.IPC[a]))
		}
		// Longer latencies can never raise IPC.
		for i := 1; i < len(fig.IPC[a]); i++ {
			if fig.IPC[a][i] > fig.IPC[a][i-1]*1.0001 {
				t.Errorf("%s: IPC rose with latency: %v", a, fig.IPC[a])
			}
		}
		if d := fig.Degradation(a); d < 0 || d > 1 {
			t.Errorf("%s: degradation %v", a, d)
		}
	}
	if !strings.Contains(fig.String(), "Figure 10 (Field)") {
		t.Error("fig10 render")
	}
}

func TestConfigureHookApplies(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	called := false
	r.Configure = func(c *machine.Config) {
		called = true
		c.Wide.WindowSize = 4
	}
	slow, err := r.Run("Field", machine.Superscalar, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("Configure not invoked")
	}
	r2 := NewRunner(workloads.ScaleTest)
	fast, err := r2.Run("Field", machine.Superscalar, r2.Hier)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= fast.Cycles {
		t.Errorf("window-4 core (%d cycles) not slower than default (%d)", slow.Cycles, fast.Cycles)
	}
}

func TestSortedArches(t *testing.T) {
	m := map[machine.Arch]float64{
		machine.Superscalar: 1, machine.CPAP: 3, machine.CPCMP: 2, machine.HiDISC: 4,
	}
	got := SortedArches(m)
	if got[0] != machine.HiDISC || got[3] != machine.Superscalar {
		t.Errorf("order: %v", got)
	}
}

func TestLatencySweepUsesHierOverride(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	short, err := r.Run("Field", machine.Superscalar, mem.DefaultHierConfig().WithLatencies(4, 40))
	if err != nil {
		t.Fatal(err)
	}
	long, err := r.Run("Field", machine.Superscalar, mem.DefaultHierConfig().WithLatencies(16, 160))
	if err != nil {
		t.Fatal(err)
	}
	if long.Cycles < short.Cycles {
		t.Errorf("longer latency faster: %d < %d", long.Cycles, short.Cycles)
	}
}

func TestLODTableRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix")
	}
	r := NewRunner(workloads.ScaleTest)
	fig8, err := RunFig8(r)
	if err != nil {
		t.Fatal(err)
	}
	s := LODTable(fig8)
	if !strings.Contains(s, "Loss-of-decoupling") || !strings.Contains(s, "NB") {
		t.Errorf("LOD table:\n%s", s)
	}
}
