// Package experiments reproduces the paper's evaluation (Section 5):
// Table 1 (simulation parameters), Figure 8 (speedup over the
// superscalar baseline for the seven benchmarks on four architecture
// models), Table 2 (average speedups), Figure 9 (cache-miss-rate
// reduction), and Figure 10 (IPC under increasing L2/memory latency
// for Pointer and Neighborhood).
//
// Matching the paper's experimental setup: the Superscalar and CP+AP
// models run the streams without cache-management slices, while CP+CMP
// and HiDISC use the profile-guided CMAS bundle.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"

	"hidisc/internal/fnsim"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
	"hidisc/internal/workloads"
)

// Compiled bundles one workload's build products.
type Compiled struct {
	Workload *workloads.Workload
	SeqInsts uint64         // dynamic instruction count of the sequential binary
	Plain    *slicer.Bundle // no CMAS (Superscalar, CP+AP)
	CMAS     *slicer.Bundle // profile-guided CMAS (CP+CMP, HiDISC)
}

// Measurement is one (workload, architecture, hierarchy) simulation.
type Measurement struct {
	Workload    string
	Arch        machine.Arch
	Cycles      int64
	SeqInsts    uint64
	IPC         float64
	L1DAccesses uint64
	L1DMisses   uint64
	L1DMissRate float64
	Prefetches  uint64
	UsefulPref  uint64
	QueueWaitCP int64
	Result      machine.Result
}

// Runner compiles workloads once and executes measurements, verifying
// every simulation against the reference output.
//
// A Runner is safe for concurrent use: compilation is single-flight
// per workload, the measurement cache is mutex-guarded, and each
// simulation builds its own machine.Machine (the simulator packages
// hold no package-level mutable state — see DESIGN.md §4). The
// Configure hook may be called from several goroutines at once and
// must only mutate the *machine.Config it is handed.
type Runner struct {
	Scale workloads.Scale
	Hier  mem.HierConfig
	// Workers bounds the fan-out of RunJobs/RunAll/RunFig10; <= 0
	// means GOMAXPROCS.
	Workers int
	// Configure, when non-nil, post-processes the machine configuration
	// before each run (used by ablation benches).
	Configure func(*machine.Config)
	// Ctx, when non-nil, bounds every simulation this runner starts
	// (the figure helpers have no context parameter of their own); a
	// cancelled run surfaces as *simfault.TimeoutFault.
	Ctx context.Context
	// NoMemo disables the runner's internal measurement memo (compiled
	// bundles are still memoised). Long-lived callers that keep their
	// own bounded cache — the hidisc-serve LRU — set this so a runner
	// serving an unbounded job stream cannot grow without bound.
	NoMemo bool
	// NoCompile forces the functional reference run and the cache
	// profile onto the pure fnsim interpreter instead of the
	// basic-block-compiled fast path. Both paths are bit-identical by
	// contract; the differential tests set this to prove it.
	NoCompile bool

	mu       sync.Mutex
	compiled map[string]*compileEntry
	cache    map[string]Measurement

	simCycles atomic.Int64 // total simulated cycles actually executed
	simInsts  atomic.Int64 // total committed instructions actually executed
}

// compileEntry single-flights a workload compilation: the first caller
// does the work, concurrent callers wait on the Once.
type compileEntry struct {
	once sync.Once
	c    *Compiled
	err  error
}

// NewRunner returns a runner at the given scale with the Table 1
// hierarchy.
func NewRunner(scale workloads.Scale) *Runner {
	return &Runner{
		Scale:    scale,
		Hier:     mem.DefaultHierConfig(),
		compiled: map[string]*compileEntry{},
		cache:    map[string]Measurement{},
	}
}

// SimTotals returns the cumulative simulated cycles and committed
// instructions this runner has executed (cache hits excluded), for
// throughput reporting.
func (r *Runner) SimTotals() (cycles, insts int64) {
	return r.simCycles.Load(), r.simInsts.Load()
}

// Compile builds (and memoises) both bundles for the named workload.
// Concurrent calls for the same workload compile it exactly once.
func (r *Runner) Compile(name string) (*Compiled, error) {
	r.mu.Lock()
	e, ok := r.compiled[name]
	if !ok {
		e = &compileEntry{}
		r.compiled[name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.c, e.err = r.compile(name) })
	return e.c, e.err
}

func (r *Runner) compile(name string) (*Compiled, error) {
	w, err := workloads.ByName(name, r.Scale)
	if err != nil {
		return nil, err
	}
	p, err := w.Program()
	if err != nil {
		return nil, err
	}
	runRef, runProf := fnsim.RunProgram, profile.CacheProfile
	if r.NoCompile {
		runRef, runProf = fnsim.RunProgramInterp, profile.CacheProfileInterp
	}
	ref, err := runRef(p, w.MaxInsts)
	if err != nil {
		return nil, fmt.Errorf("%s: reference run: %w", name, err)
	}
	plain, err := slicer.Separate(p, slicer.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: separate: %w", name, err)
	}
	prof, err := runProf(p, r.Hier, w.MaxInsts)
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", name, err)
	}
	cmas, err := slicer.Separate(p, slicer.Options{Profile: prof})
	if err != nil {
		return nil, fmt.Errorf("%s: separate with profile: %w", name, err)
	}
	return &Compiled{Workload: w, SeqInsts: ref.Insts, Plain: plain, CMAS: cmas}, nil
}

// bundleFor selects the paper-faithful bundle per architecture.
func (c *Compiled) bundleFor(arch machine.Arch) *slicer.Bundle {
	if arch == machine.CPCMP || arch == machine.HiDISC {
		return c.CMAS
	}
	return c.Plain
}

// ctx returns the runner's ambient context.
func (r *Runner) ctx() context.Context {
	if r.Ctx != nil {
		return r.Ctx
	}
	return context.Background()
}

// Run measures one workload on one architecture with the given
// hierarchy, verifying program output against the reference.
func (r *Runner) Run(name string, arch machine.Arch, hier mem.HierConfig) (Measurement, error) {
	return r.RunContext(r.ctx(), name, arch, hier)
}

// RunContext is Run under an explicit context; cancellation surfaces
// as *simfault.TimeoutFault. Successful measurements are memoised
// (unless NoMemo) under the job's canonical content key.
func (r *Runner) RunContext(ctx context.Context, name string, arch machine.Arch, hier mem.HierConfig) (Measurement, error) {
	j := Job{Workload: name, Arch: arch, Hier: hier, Scale: r.Scale}
	if r.NoMemo {
		return r.measure(ctx, j)
	}
	key := j.Key()
	r.mu.Lock()
	m, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := r.measure(ctx, j)
	if err != nil {
		return Measurement{}, err
	}
	r.mu.Lock()
	r.cache[key] = m
	r.mu.Unlock()
	return m, nil
}

// runJob executes one job. Jobs carrying a per-job Configure hook are
// perturbed (fault injection, ablations) and bypass the measurement
// cache entirely so they can never pollute healthy results.
func (r *Runner) runJob(ctx context.Context, j Job) (Measurement, error) {
	if j.Configure == nil {
		return r.RunContext(ctx, j.Workload, j.Arch, j.Hier)
	}
	return r.measure(ctx, j)
}

// measure compiles, simulates and verifies one job, uncached.
func (r *Runner) measure(ctx context.Context, j Job) (Measurement, error) {
	name, arch := j.Workload, j.Arch
	c, err := r.Compile(name)
	if err != nil {
		return Measurement{}, err
	}
	cfg := machine.DefaultConfig(arch)
	cfg.Hier = j.Hier
	if r.Configure != nil {
		r.Configure(&cfg)
	}
	if j.Configure != nil {
		j.Configure(&cfg)
	}
	mach, err := machine.New(c.bundleFor(arch), cfg)
	if err != nil {
		return Measurement{}, err
	}
	// Label the simulation span so a CPU profile taken over a whole
	// figure attributes its samples per (workload, arch) job. Labels
	// cost nothing when no profiler is attached.
	var res machine.Result
	pprof.Do(ctx, pprof.Labels("workload", name, "arch", string(arch)),
		func(ctx context.Context) { res, err = mach.RunContext(ctx) })
	if err != nil {
		return Measurement{}, fmt.Errorf("%s on %s: %w", name, arch, err)
	}
	if err := verifyOutput(c.Workload, res.Output); err != nil {
		return Measurement{}, fmt.Errorf("%s on %s: %w", name, arch, err)
	}
	r.simCycles.Add(res.Cycles)
	r.simInsts.Add(int64(res.Committed()))
	st := res.Hier.L1D
	m := Measurement{
		Workload:    name,
		Arch:        arch,
		Cycles:      res.Cycles,
		SeqInsts:    c.SeqInsts,
		IPC:         float64(c.SeqInsts) / float64(res.Cycles),
		L1DAccesses: st.DemandAccesses,
		L1DMisses:   st.DemandMisses,
		L1DMissRate: st.DemandMissRate(),
		Prefetches:  res.Hier.PrefetchIssued,
		UsefulPref:  st.UsefulPrefetch,
		Result:      res,
	}
	if cp, ok := res.Cores["cp"]; ok {
		m.QueueWaitCP = cp.QueueWaitCycles
	}
	return m, nil
}

func verifyOutput(w *workloads.Workload, got []string) error {
	if len(got) != len(w.Expected) {
		return fmt.Errorf("output %v, want %v", got, w.Expected)
	}
	for i := range w.Expected {
		if got[i] != w.Expected[i] {
			return fmt.Errorf("output[%d] = %q, want %q", i, got[i], w.Expected[i])
		}
	}
	return nil
}

// Fig8Jobs returns the Figure 8 job matrix — every benchmark on every
// architecture — at the given hierarchy and scale, in the canonical
// (workload-major) order. The same list is built by local runs and by
// remote clients so both paths simulate exactly the same jobs.
func Fig8Jobs(hier mem.HierConfig, scale workloads.Scale) []Job {
	jobs := make([]Job, 0, len(workloads.Names())*len(machine.Arches))
	for _, name := range workloads.Names() {
		for _, arch := range machine.Arches {
			jobs = append(jobs, Job{Workload: name, Arch: arch, Hier: hier, Scale: scale})
		}
	}
	return jobs
}

// GroupByWorkloadArch indexes per-job measurements (in job order) by
// workload and architecture.
func GroupByWorkloadArch(jobs []Job, ms []Measurement) map[string]map[machine.Arch]Measurement {
	out := map[string]map[machine.Arch]Measurement{}
	for i, j := range jobs {
		if out[j.Workload] == nil {
			out[j.Workload] = map[machine.Arch]Measurement{}
		}
		out[j.Workload][j.Arch] = ms[i]
	}
	return out
}

// RunAll measures every benchmark on every architecture at the default
// hierarchy, fanning the independent simulations across r.Workers
// goroutines.
func (r *Runner) RunAll() (map[string]map[machine.Arch]Measurement, error) {
	jobs := Fig8Jobs(r.Hier, r.Scale)
	ms, err := r.RunJobs(r.Workers, jobs)
	if err != nil {
		return nil, err
	}
	return GroupByWorkloadArch(jobs, ms), nil
}

// --- Table 1 ---

// Table1 renders the simulation parameters (the paper's Table 1).
func Table1() string {
	cfg := machine.DefaultConfig(machine.HiDISC)
	var b bytes.Buffer
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	row := func(k, v string) { fmt.Fprintf(tw, "%s\t%s\n", k, v) }
	fmt.Fprintln(&b, "Table 1: simulation parameters")
	row("Branch predict mode", "Bimodal")
	row("Branch table size", "2048")
	row("Issue/commit width", "8")
	row("Instruction window", fmt.Sprintf("Superscalar/AP %d, CP %d", cfg.AP.WindowSize, cfg.CP.WindowSize))
	row("Load/store queue", fmt.Sprintf("%d entries", 32))
	row("Integer units", "ALU x4, MUL/DIV (superscalar, CP, AP, CMP)")
	row("FP units", "ALU x4, MUL/DIV (superscalar and CP)")
	row("Memory ports", "2 per memory-facing processor")
	row("Data L1 cache", fmt.Sprintf("%d sets, %dB block, %d-way, LRU",
		cfg.Hier.L1D.Sets, cfg.Hier.L1D.BlockSize, cfg.Hier.L1D.Ways))
	row("Data L1 latency", fmt.Sprintf("%d cycle", cfg.Hier.L1D.Latency))
	row("Unified L2 cache", fmt.Sprintf("%d sets, %dB block, %d-way, LRU",
		cfg.Hier.L2.Sets, cfg.Hier.L2.BlockSize, cfg.Hier.L2.Ways))
	row("L2 latency", fmt.Sprintf("%d cycles", cfg.Hier.L2.Latency))
	row("Memory latency", fmt.Sprintf("%d cycles", cfg.Hier.MemLatency))
	row("Architectural queues", fmt.Sprintf("LDQ/SDQ %d, CQ %d, SCQ %d", cfg.LDQCap, cfg.CQCap, cfg.SCQCap))
	tw.Flush()
	return b.String()
}

// --- Figure 8 / Table 2 ---

// Fig8 holds per-benchmark speedups normalised to the superscalar.
type Fig8 struct {
	Rows map[string]map[machine.Arch]float64 // speedup
	Meas map[string]map[machine.Arch]Measurement
}

// RunFig8 produces Figure 8's data.
func RunFig8(r *Runner) (*Fig8, error) {
	all, err := r.RunAll()
	if err != nil {
		return nil, err
	}
	return Fig8From(all), nil
}

// Fig8From assembles Figure 8 from grouped measurements, however they
// were obtained (a local RunAll or a remote batch via hidisc-serve).
func Fig8From(all map[string]map[machine.Arch]Measurement) *Fig8 {
	f := &Fig8{Rows: map[string]map[machine.Arch]float64{}, Meas: all}
	for name, per := range all {
		base := per[machine.Superscalar].Cycles
		f.Rows[name] = map[machine.Arch]float64{}
		for arch, m := range per {
			f.Rows[name][arch] = float64(base) / float64(m.Cycles)
		}
	}
	return f
}

// String renders Figure 8 as a table of normalised performance.
func (f *Fig8) String() string {
	var b bytes.Buffer
	fmt.Fprintln(&b, "Figure 8: speed-up compared to the baseline superscalar")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "benchmark\t")
	for _, a := range machine.Arches {
		fmt.Fprintf(tw, "%s\t", a)
	}
	fmt.Fprintln(tw)
	for _, name := range workloads.Names() {
		fmt.Fprintf(tw, "%s\t", name)
		for _, a := range machine.Arches {
			fmt.Fprintf(tw, "%.3f\t", f.Rows[name][a])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}

// Table2 holds the average speedup of the three enhanced models.
type Table2 struct {
	Avg map[machine.Arch]float64
}

// RunTable2 averages Figure 8's speedups (the paper's Table 2).
func RunTable2(f *Fig8) *Table2 {
	t := &Table2{Avg: map[machine.Arch]float64{}}
	for _, a := range machine.Arches {
		sum := 0.0
		for _, name := range workloads.Names() {
			sum += f.Rows[name][a]
		}
		t.Avg[a] = sum / float64(len(workloads.Names()))
	}
	return t
}

// String renders Table 2.
func (t *Table2) String() string {
	var b bytes.Buffer
	fmt.Fprintln(&b, "Table 2: average speed-up for the three architecture models")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "configuration\tcharacteristic\tspeed-up\n")
	fmt.Fprintf(tw, "CP + AP\taccess/execute decoupling\t%+.1f%%\n", (t.Avg[machine.CPAP]-1)*100)
	fmt.Fprintf(tw, "CP + CMP\tcache prefetching\t%+.1f%%\n", (t.Avg[machine.CPCMP]-1)*100)
	fmt.Fprintf(tw, "HiDISC\tdecoupling and prefetching\t%+.1f%%\n", (t.Avg[machine.HiDISC]-1)*100)
	tw.Flush()
	return b.String()
}

// --- Figure 9 ---

// Fig9 holds normalised L1D demand-miss counts (config / baseline).
type Fig9 struct {
	Rows map[string]map[machine.Arch]float64
}

// RunFig9 produces Figure 9's data from the same measurements.
func RunFig9(f *Fig8) *Fig9 {
	g := &Fig9{Rows: map[string]map[machine.Arch]float64{}}
	for name, per := range f.Meas {
		base := per[machine.Superscalar].L1DMisses
		g.Rows[name] = map[machine.Arch]float64{}
		for arch, m := range per {
			if base == 0 {
				g.Rows[name][arch] = 1
				continue
			}
			g.Rows[name][arch] = float64(m.L1DMisses) / float64(base)
		}
	}
	return g
}

// String renders Figure 9.
func (g *Fig9) String() string {
	var b bytes.Buffer
	fmt.Fprintln(&b, "Figure 9: L1D demand misses normalised to the baseline superscalar")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "benchmark\t")
	for _, a := range machine.Arches {
		fmt.Fprintf(tw, "%s\t", a)
	}
	fmt.Fprintln(tw)
	for _, name := range workloads.Names() {
		fmt.Fprintf(tw, "%s\t", name)
		for _, a := range machine.Arches {
			fmt.Fprintf(tw, "%.3f\t", g.Rows[name][a])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}

// AverageReduction returns the mean miss reduction of HiDISC over the
// benchmarks that miss at all.
func (g *Fig9) AverageReduction(arch machine.Arch) float64 {
	sum, n := 0.0, 0
	for _, per := range g.Rows {
		if v, ok := per[arch]; ok {
			sum += 1 - v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- Figure 10 ---

// LatencyPoints is the paper's L2/memory latency sweep.
var LatencyPoints = []struct{ L2, Mem int }{
	{4, 40}, {8, 80}, {12, 120}, {16, 160},
}

// Fig10 holds IPC per latency point per architecture for one workload.
type Fig10 struct {
	Workload string
	IPC      map[machine.Arch][]float64 // indexed by LatencyPoints
}

// Fig10Jobs returns the latency-sweep job list for one workload in
// canonical (architecture-major) order.
func Fig10Jobs(name string, hier mem.HierConfig, scale workloads.Scale) []Job {
	jobs := make([]Job, 0, len(machine.Arches)*len(LatencyPoints))
	for _, arch := range machine.Arches {
		for _, lp := range LatencyPoints {
			jobs = append(jobs, Job{Workload: name, Arch: arch, Hier: hier.WithLatencies(lp.L2, lp.Mem), Scale: scale})
		}
	}
	return jobs
}

// Fig10From assembles one Figure 10 panel from the Fig10Jobs job list
// and its per-job measurements (in job order).
func Fig10From(name string, jobs []Job, ms []Measurement) *Fig10 {
	f := &Fig10{Workload: name, IPC: map[machine.Arch][]float64{}}
	for i, j := range jobs {
		f.IPC[j.Arch] = append(f.IPC[j.Arch], ms[i].IPC)
	}
	return f
}

// RunFig10 produces Figure 10's data for one workload, running the
// latency sweep's independent points in parallel.
func RunFig10(r *Runner, name string) (*Fig10, error) {
	jobs := Fig10Jobs(name, r.Hier, r.Scale)
	ms, err := r.RunJobs(r.Workers, jobs)
	if err != nil {
		return nil, err
	}
	return Fig10From(name, jobs, ms), nil
}

// String renders one Figure 10 panel.
func (f *Fig10) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Figure 10 (%s): IPC vs L2/memory latency\n", f.Workload)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "config\t")
	for _, lp := range LatencyPoints {
		fmt.Fprintf(tw, "%d/%d\t", lp.L2, lp.Mem)
	}
	fmt.Fprintln(tw, "degradation\t")
	for _, a := range machine.Arches {
		fmt.Fprintf(tw, "%s\t", a)
		ipcs := f.IPC[a]
		for _, v := range ipcs {
			fmt.Fprintf(tw, "%.3f\t", v)
		}
		fmt.Fprintf(tw, "%.1f%%\t\n", f.Degradation(a)*100)
	}
	tw.Flush()
	return b.String()
}

// Degradation returns the relative IPC loss from the shortest to the
// longest latency point.
func (f *Fig10) Degradation(arch machine.Arch) float64 {
	ipcs := f.IPC[arch]
	if len(ipcs) == 0 || ipcs[0] == 0 {
		return 0
	}
	return (ipcs[0] - ipcs[len(ipcs)-1]) / ipcs[0]
}

// SortedArches returns architectures ordered by a metric map (largest
// first); a helper for reports.
func SortedArches(m map[machine.Arch]float64) []machine.Arch {
	out := append([]machine.Arch(nil), machine.Arches...)
	sort.SliceStable(out, func(i, j int) bool { return m[out[i]] > m[out[j]] })
	return out
}

// LODTable renders the loss-of-decoupling analysis of Section 5.3: for
// the decoupled machines, the fraction of cycles each processor's
// oldest instruction was stalled on an architectural queue. High CP
// numbers mean the CP starves for AP data (healthy decoupling has the
// CP comfortably behind); high AP numbers mean the AP waits on
// computed values — the loss-of-decoupling events the paper blames for
// Neighborhood's slowdown.
func LODTable(f *Fig8) string {
	var b bytes.Buffer
	fmt.Fprintln(&b, "Loss-of-decoupling analysis (queue-wait cycle fraction)")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\tCP wait (cp+ap)\tAP wait (cp+ap)\tCP wait (hidisc)\tAP wait (hidisc)\t")
	for _, name := range workloads.Names() {
		fmt.Fprintf(tw, "%s\t", name)
		for _, arch := range []machine.Arch{machine.CPAP, machine.HiDISC} {
			m := f.Meas[name][arch]
			for _, core := range []string{"cp", "ap"} {
				s := m.Result.Cores[core]
				frac := 0.0
				if s.Cycles > 0 {
					frac = float64(s.QueueWaitCycles) / float64(s.Cycles)
				}
				fmt.Fprintf(tw, "%.3f\t", frac)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}
