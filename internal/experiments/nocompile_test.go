package experiments

import (
	"reflect"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/workloads"
)

// TestNoCompileMachineParity is the machine-level differential test
// for the compiled fnsim fast path: a runner whose reference run and
// cache profile come from the basic-block-compiled simulator must
// produce measurements bit-identical to a NoCompile (pure interpreter)
// runner — same cycles, same stats, same machine.Result — for every
// workload x architecture. The paper-scale matrix is skipped in short
// mode and under the race detector (see raceEnabled); the test-scale
// matrix always runs.
func TestNoCompileMachineParity(t *testing.T) {
	scales := []workloads.Scale{workloads.ScaleTest}
	if !testing.Short() && !raceEnabled {
		scales = append(scales, workloads.ScalePaper)
	}
	for _, sc := range scales {
		fast := NewRunner(sc)
		interp := NewRunner(sc)
		interp.NoCompile = true
		label := "test"
		if sc == workloads.ScalePaper {
			label = "paper"
		}
		t.Run(label, func(t *testing.T) {
			for _, name := range workloads.Names() {
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cf, err := fast.Compile(name)
					if err != nil {
						t.Fatalf("compiled-path compile: %v", err)
					}
					ci, err := interp.Compile(name)
					if err != nil {
						t.Fatalf("interp-path compile: %v", err)
					}
					if cf.SeqInsts != ci.SeqInsts {
						t.Errorf("SeqInsts: compiled %d, interp %d", cf.SeqInsts, ci.SeqInsts)
					}
					for _, arch := range machine.Arches {
						mf, err := fast.Run(name, arch, fast.Hier)
						if err != nil {
							t.Fatalf("%s compiled-path run: %v", arch, err)
						}
						mi, err := interp.Run(name, arch, interp.Hier)
						if err != nil {
							t.Fatalf("%s interp-path run: %v", arch, err)
						}
						if !reflect.DeepEqual(mf, mi) {
							t.Errorf("%s: measurement diverges between compiled and interpreted reference paths:\ncompiled: %+v\ninterp:   %+v", arch, mf, mi)
						}
					}
				})
			}
		})
	}
}
