package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/workloads"
)

// TestJobKeyDeterministicAndDistinct pins the canonical content hash:
// equal inputs hash equally (across value copies, so the key is usable
// as a cross-process cache key) and every input field participates.
func TestJobKeyDeterministic(t *testing.T) {
	base := Job{Workload: "Pointer", Arch: machine.HiDISC, Hier: mem.DefaultHierConfig(), Scale: workloads.ScalePaper}
	copy := Job{Workload: "Pointer", Arch: machine.HiDISC, Hier: mem.DefaultHierConfig(), Scale: workloads.ScalePaper}
	if base.Key() != copy.Key() {
		t.Fatalf("equal jobs hash differently: %s vs %s", base.Key(), copy.Key())
	}
	if base.Key() != base.Key() {
		t.Fatal("Key is not deterministic across calls")
	}
	if len(base.Key()) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", base.Key())
	}
	// The Configure hook is excluded by design: a perturbed job shares
	// the unperturbed key and must therefore never be cached by key.
	perturbed := base
	perturbed.Configure = func(*machine.Config) {}
	if perturbed.Key() != base.Key() {
		t.Fatal("Configure participates in Key; it must be excluded")
	}
}

// TestJobKeyGolden pins the exact digest for one known job. The key is
// an on-disk contract: hidisc-serve's result store addresses records by
// it, so any drift in the preimage — field order, separator, a renamed
// arch — silently orphans every persisted result. If this test breaks,
// either revert the change or bump the "hidisc-job-v1" version string
// so old stores are recognisably incompatible rather than quietly
// missed.
func TestJobKeyGolden(t *testing.T) {
	j := Job{Workload: "Pointer", Arch: machine.HiDISC, Hier: mem.DefaultHierConfig(), Scale: workloads.ScalePaper}
	const want = "58fae46b130923fdaf83489fdd355f9a6e3c531e52a80862034977b7e1f0c245"
	if got := j.Key(); got != want {
		t.Fatalf("canonical key drifted:\n got %s\nwant %s\nexisting result stores are now unreadable under this key scheme", got, want)
	}
}

func TestJobKeyDistinctness(t *testing.T) {
	base := Job{Workload: "Pointer", Arch: machine.HiDISC, Hier: mem.DefaultHierConfig(), Scale: workloads.ScalePaper}
	mutations := map[string]func(*Job){
		"workload":    func(j *Job) { j.Workload = "Update" },
		"arch":        func(j *Job) { j.Arch = machine.Superscalar },
		"scale":       func(j *Job) { j.Scale = workloads.ScaleTest },
		"l1 sets":     func(j *Job) { j.Hier.L1D.Sets *= 2 },
		"l1 ways":     func(j *Job) { j.Hier.L1D.Ways *= 2 },
		"l1 block":    func(j *Job) { j.Hier.L1D.BlockSize *= 2 },
		"l1 latency":  func(j *Job) { j.Hier.L1D.Latency++ },
		"l2 sets":     func(j *Job) { j.Hier.L2.Sets *= 2 },
		"l2 latency":  func(j *Job) { j.Hier.L2.Latency++ },
		"mem latency": func(j *Job) { j.Hier.MemLatency++ },
		"fig10 point": func(j *Job) { j.Hier = j.Hier.WithLatencies(4, 40) },
	}
	seen := map[string]string{base.Key(): "base"}
	for field, mutate := range mutations {
		j := base
		mutate(&j)
		k := j.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s", field, prev)
		}
		seen[k] = field
	}
}

func TestEffectiveWorkers(t *testing.T) {
	ncpu := runtime.NumCPU()
	for n, want := range map[int]int{0: ncpu, -1: ncpu, -100: ncpu, 1: 1, 7: 7} {
		if got := EffectiveWorkers(n); got != want {
			t.Errorf("EffectiveWorkers(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestRunJobsZeroWorkers exercises the RunJobs fix directly: a zero
// (or negative) worker count must mean "one per CPU", not a wedged or
// serialised pool, and results must match the sequential path.
func TestRunJobsZeroWorkers(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	jobs := []Job{
		{Workload: "Pointer", Arch: machine.Superscalar, Hier: r.Hier},
		{Workload: "Pointer", Arch: machine.HiDISC, Hier: r.Hier},
	}
	got, err := r.RunJobs(0, jobs)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewRunner(workloads.ScaleTest)
	want, err := seq.RunJobs(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("job %d: workers=0 result differs from sequential", i)
		}
	}
}

// TestRunnerNoMemo pins the memo bypass used by hidisc-serve: with
// NoMemo the runner re-simulates (SimTotals grows) yet results stay
// identical.
func TestRunnerNoMemo(t *testing.T) {
	r := NewRunner(workloads.ScaleTest)
	r.NoMemo = true
	m1, err := r.Run("Pointer", machine.Superscalar, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := r.SimTotals()
	m2, err := r.Run("Pointer", machine.Superscalar, r.Hier)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := r.SimTotals()
	if c2 != 2*c1 {
		t.Errorf("NoMemo runner did not re-simulate: totals %d then %d", c1, c2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("re-simulated result differs")
	}
}
