package simfault

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleSnapshot(kind Kind) *Snapshot {
	return &Snapshot{
		Kind:  kind,
		Arch:  "cp+ap",
		Cycle: 12345,
		Cores: []CoreState{{
			Name: "cp", PC: 7, Committed: 42,
			WindowOcc: 3, WindowCap: 16, LSQOcc: 0, LSQCap: 32,
			IFQOcc: 2, IFQCap: 16,
			RecentPCs: []int{3, 4, 5, 6},
			Head: &HeadState{
				PC: 7, Inst: "add $r1, $LDQ, $r0", Seq: 9, IsLoad: false,
				Sources: []SourceState{{
					Reg: "$LDQ", Ready: false, Queue: "ldq", Seq: 4,
					QueueReady: false, ProducerPC: -1,
				}},
			},
		}},
		Queues: []QueueState{
			{Name: "ldq", Len: 0, Cap: 32, Avail: 0, Pushes: 4, Claims: 5},
			{Name: "sdq", Len: 32, Cap: 32, Avail: 32, Pushes: 40, Claims: 8},
		},
		Hier:              &HierState{MSHRInFlight: 2, L1DDemandAccesses: 100, L1DDemandMisses: 9},
		CMPActiveContexts: 1,
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	want := sampleSnapshot(KindDeadlock)
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, want)
	}
}

func TestFaultsImplementSnapshotter(t *testing.T) {
	snap := sampleSnapshot(KindInvariant)
	faults := []Snapshotter{
		&InvariantFault{Origin: "o", Reason: "r", Snapshot: snap},
		&DeadlockFault{Origin: "o", Cycle: 1, Snapshot: snap},
		&CycleLimitFault{Origin: "o", Limit: 10, Snapshot: snap},
		&TimeoutFault{Origin: "o", Cycle: 5, Cause: "deadline", Snapshot: snap},
	}
	for _, f := range faults {
		if f.FaultSnapshot() != snap {
			t.Errorf("%T: FaultSnapshot lost the snapshot", f)
		}
		if f.Error() == "" {
			t.Errorf("%T: empty Error()", f)
		}
	}
}

func TestKindOfAndSnapshotOfThroughWrapping(t *testing.T) {
	inner := &DeadlockFault{Origin: "machine cp+ap", Cycle: 9, Snapshot: sampleSnapshot(KindDeadlock)}
	wrapped := fmt.Errorf("job 3: %w", inner)
	if k, ok := KindOf(wrapped); !ok || k != KindDeadlock {
		t.Errorf("KindOf = %q, %v", k, ok)
	}
	if s := SnapshotOf(wrapped); s != inner.Snapshot {
		t.Error("SnapshotOf did not find the wrapped snapshot")
	}
	if k, ok := KindOf(errors.New("plain")); ok {
		t.Errorf("KindOf(plain) = %q, true", k)
	}
	if s := SnapshotOf(errors.New("plain")); s != nil {
		t.Error("SnapshotOf(plain) != nil")
	}
}

func TestDeadlockFaultQueueLookupAndError(t *testing.T) {
	f := &DeadlockFault{
		Origin:      "machine cp+ap",
		Cycle:       5000,
		StallCycles: 2001,
		Queues: []QueueState{
			{Name: "ldq", Len: 0, Cap: 32},
			{Name: "sdq", Len: 32, Cap: 32, Avail: 32},
		},
		Snapshot: sampleSnapshot(KindDeadlock),
	}
	q, ok := f.Queue("ldq")
	if !ok || !q.Empty() {
		t.Errorf("Queue(ldq) = %+v, %v", q, ok)
	}
	if q, ok := f.Queue("sdq"); !ok || !q.Full() {
		t.Errorf("Queue(sdq) = %+v, %v", q, ok)
	}
	if _, ok := f.Queue("nope"); ok {
		t.Error("Queue(nope) found")
	}
	msg := f.Error()
	for _, want := range []string{"deadlock at cycle 5000", "no commit for 2001", "waiting on ldq"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestWriteSnapshotsWalksJoinedErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "faults")
	err := errors.Join(
		fmt.Errorf("job 0: %w", &DeadlockFault{Origin: "a", Cycle: 10, Snapshot: sampleSnapshot(KindDeadlock)}),
		errors.New("job 1: plain failure"),
		fmt.Errorf("job 2: %w", &InvariantFault{Origin: "b", Reason: "r", Snapshot: sampleSnapshot(KindInvariant)}),
	)
	paths, werr := WriteSnapshots(dir, err)
	if werr != nil {
		t.Fatal(werr)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d snapshots, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Fatal(rerr)
		}
		var s Snapshot
		if jerr := json.Unmarshal(data, &s); jerr != nil {
			t.Errorf("%s: not valid snapshot JSON: %v", p, jerr)
		}
		if s.Cycle == 0 || s.Kind == "" {
			t.Errorf("%s: snapshot lost fields: %+v", p, s)
		}
	}
	// No snapshots in the tree: no directory side effects, no paths.
	none, werr := WriteSnapshots(filepath.Join(t.TempDir(), "empty"), errors.New("plain"))
	if werr != nil || len(none) != 0 {
		t.Errorf("WriteSnapshots(plain) = %v, %v", none, werr)
	}
}

func TestInjectorStormDeterminism(t *testing.T) {
	actions := []Action{{Kind: ActMispredictStorm, Core: "cp", At: 10, Until: 1000, Probability: 0.5}}
	draw := func(seed int64) []bool {
		inj := NewInjector(seed, actions...)
		var out []bool
		for now := int64(0); now < 1200; now += 7 {
			out = append(out, inj.StormActive("cp", now))
		}
		return out
	}
	a, b := draw(42), draw(42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different storm sequences")
	}
	c := draw(43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical storm sequences (suspicious)")
	}
	inj := NewInjector(1, actions...)
	if inj.StormActive("cp", 5) {
		t.Error("storm active before its window")
	}
	if inj.StormActive("ap", 50) {
		t.Error("storm active on untargeted core")
	}
	if !inj.HasStorm("cp") || inj.HasStorm("ap") {
		t.Error("HasStorm misreported targets")
	}
}

func TestActionWindow(t *testing.T) {
	windowed := Action{Kind: ActStallCachePort, Core: "ap", At: 10, Until: 20}
	for now, want := range map[int64]bool{9: false, 10: true, 19: true, 20: false} {
		if got := windowed.Active(now); got != want {
			t.Errorf("windowed.Active(%d) = %v, want %v", now, got, want)
		}
	}
	openEnded := Action{Kind: ActStallCachePort, Core: "ap", At: 10}
	if openEnded.Active(9) || !openEnded.Active(10) || !openEnded.Active(1_000_000) {
		t.Error("open-ended window misbehaved")
	}
}
