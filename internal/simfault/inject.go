package simfault

// The fault injector perturbs a running machine deterministically so
// robustness tests can prove the watchdog fires, snapshots cohere, and
// a batch harness survives a wedged or panicking job. It is off by
// default: a machine with no injector pays exactly one nil-check per
// cycle, and the cores pay one nil function-pointer check per fetched
// conditional branch (pinned by the cpu package's AllocsPerRun tests).
//
// An Injector must not be shared between concurrently running
// machines: the mispredict-storm PRNG mutates injector state. Give
// each injected job its own Injector (they are cheap).

// ActionKind names one injectable perturbation.
type ActionKind string

// The injectable faults.
const (
	// ActCloseQueue closes the named architectural queue at cycle At.
	// Consumers then read zeros for claims beyond the pushed count —
	// modelling a producer that silently dies.
	ActCloseQueue ActionKind = "close-queue"
	// ActDropCredit steals Count pushed-but-unclaimed entries from the
	// named queue at cycle At, desynchronising the FIFO pairing the
	// way a lost hardware credit would.
	ActDropCredit ActionKind = "drop-credit"
	// ActMispredictStorm inverts the named core's conditional-branch
	// predictions with the given Probability during [At, Until).
	ActMispredictStorm ActionKind = "mispredict-storm"
	// ActStallCachePort holds every cache port of the named core busy
	// during [At, Until), starving its loads and store commits.
	ActStallCachePort ActionKind = "stall-cache-port"
	// ActPanic raises a deliberate panic inside the machine's cycle
	// loop at cycle At, to drill the containment path.
	ActPanic ActionKind = "panic"
)

// Action is one scheduled perturbation. Cycle windows are [At, Until);
// Until <= At means the window never closes.
type Action struct {
	Kind        ActionKind `json:"kind"`
	Queue       string     `json:"queue,omitempty"` // target queue (close-queue, drop-credit)
	Core        string     `json:"core,omitempty"`  // target core (mispredict-storm, stall-cache-port)
	At          int64      `json:"at"`
	Until       int64      `json:"until,omitempty"`
	Count       int        `json:"count,omitempty"`       // drop-credit entries (default 1)
	Probability float64    `json:"probability,omitempty"` // storm inversion chance (default 1)
}

// Active reports whether a windowed action covers cycle now.
func (a *Action) Active(now int64) bool {
	return now >= a.At && (a.Until <= a.At || now < a.Until)
}

// Injector is a deterministic, seedable fault injector. The zero value
// with no actions injects nothing.
type Injector struct {
	Seed    int64    `json:"seed,omitempty"`
	Actions []Action `json:"actions,omitempty"`

	rng uint64 // xorshift64 state, lazily seeded from Seed
}

// NewInjector returns an injector running the given actions with the
// given PRNG seed (the seed only matters for probabilistic storms).
func NewInjector(seed int64, actions ...Action) *Injector {
	return &Injector{Seed: seed, Actions: actions}
}

// rand returns the next deterministic pseudo-random value in [0, 1).
func (inj *Injector) rand() float64 {
	if inj.rng == 0 {
		inj.rng = uint64(inj.Seed)*2862933555777941757 + 3037000493
	}
	x := inj.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	inj.rng = x
	return float64(x>>11) / (1 << 53)
}

// HasStorm reports whether any mispredict storm targets the named core
// (so machines only wire the fetch hook when one exists).
func (inj *Injector) HasStorm(core string) bool {
	for i := range inj.Actions {
		a := &inj.Actions[i]
		if a.Kind == ActMispredictStorm && a.Core == core {
			return true
		}
	}
	return false
}

// StormActive reports whether the named core's conditional-branch
// prediction fetched at cycle now should be inverted. One PRNG draw is
// consumed per call inside an active probabilistic window, so the
// decision sequence is deterministic for a given seed and schedule.
func (inj *Injector) StormActive(core string, now int64) bool {
	for i := range inj.Actions {
		a := &inj.Actions[i]
		if a.Kind != ActMispredictStorm || a.Core != core || !a.Active(now) {
			continue
		}
		if a.Probability <= 0 || a.Probability >= 1 {
			return true
		}
		return inj.rand() < a.Probability
	}
	return false
}
