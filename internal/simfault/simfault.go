// Package simfault defines the simulator's fault taxonomy: typed,
// inspectable errors for the failure modes a decoupled machine can
// reach by construction (bounded queues plus slip control make a
// mis-sliced bundle wedge a CP/AP pair), together with a
// JSON-serializable Snapshot of the machine state at fault time.
//
// The design follows MGSim's observation that a multi-core simulator
// earns trust through structured deadlock detection and post-mortem
// state dumps: every failure is an error value a harness can branch
// on (errors.As), attribute to one job in a batch, and persist for
// offline forensics — never a bare panic or an opaque string.
//
// The package is a leaf: it imports only the standard library, so the
// queue, cpu, mem, machine, slicer and experiments layers can all
// produce and consume its types without import cycles.
package simfault

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Kind names a fault class.
type Kind string

// The fault taxonomy.
const (
	// KindInvariant marks a violated internal invariant (a recovered
	// panic): the simulation state is undefined beyond the snapshot.
	KindInvariant Kind = "invariant"
	// KindDeadlock marks a watchdog-detected lack of forward progress:
	// no core committed an instruction for the watchdog interval.
	KindDeadlock Kind = "deadlock"
	// KindCycleLimit marks a simulation that exceeded its cycle (or
	// functional step) budget without halting.
	KindCycleLimit Kind = "cycle-limit"
	// KindTimeout marks a simulation cancelled from outside (context
	// deadline or cancellation).
	KindTimeout Kind = "timeout"
)

// Snapshot is the machine state captured at fault time. Every field is
// plain data so the snapshot round-trips through encoding/json.
type Snapshot struct {
	Kind  Kind   `json:"kind"`
	Arch  string `json:"arch,omitempty"`
	Cycle int64  `json:"cycle"`

	// CyclesSkipped is how many of Cycle the machine fast-forwarded
	// via event-driven idle skipping rather than ticking (0 when the
	// skipper is disabled).
	CyclesSkipped int64 `json:"cyclesSkipped,omitempty"`

	Cores  []CoreState  `json:"cores,omitempty"`
	Queues []QueueState `json:"queues,omitempty"`
	Hier   *HierState   `json:"hier,omitempty"`

	// CMPActiveContexts counts live CMAS threads on the Cache
	// Management Processor, when the architecture has one.
	CMPActiveContexts int `json:"cmpActiveContexts,omitempty"`
}

// CoreState summarises one processor's pipeline at fault time.
type CoreState struct {
	Name         string `json:"name"`
	Halted       bool   `json:"halted"`
	PC           int    `json:"pc"`
	Committed    uint64 `json:"committed"`
	Squashed     uint64 `json:"squashed,omitempty"`
	WindowOcc    int    `json:"windowOcc"`
	WindowCap    int    `json:"windowCap"`
	LSQOcc       int    `json:"lsqOcc"`
	LSQCap       int    `json:"lsqCap"`
	IFQOcc       int    `json:"ifqOcc"`
	IFQCap       int    `json:"ifqCap"`
	FetchStopped bool   `json:"fetchStopped,omitempty"`

	// RecentPCs is the ring buffer of the last committed program
	// counters, oldest first — the instruction trail into the fault.
	RecentPCs []int `json:"recentPCs,omitempty"`

	// Head describes the oldest in-flight instruction (the one a
	// deadlocked core is stuck behind), when the window is non-empty.
	Head *HeadState `json:"head,omitempty"`
}

// HeadState is the oldest window entry of a core.
type HeadState struct {
	PC         int           `json:"pc"`
	Inst       string        `json:"inst"`
	Seq        int64         `json:"seq"`
	Issued     bool          `json:"issued"`
	Completed  bool          `json:"completed"`
	CompleteAt int64         `json:"completeAt,omitempty"`
	IsLoad     bool          `json:"isLoad,omitempty"`
	IsStore    bool          `json:"isStore,omitempty"`
	Addr       uint32        `json:"addr,omitempty"`
	AddrReady  bool          `json:"addrReady,omitempty"`
	Sources    []SourceState `json:"sources,omitempty"`
}

// SourceState is one operand of the head instruction.
type SourceState struct {
	Reg   string `json:"reg"`
	Ready bool   `json:"ready"`

	// Queue is the architectural queue the operand is claimed against,
	// when the operand is a queue pop; QueueReady reports whether the
	// claimed value has been pushed. A blocked head with a non-ready
	// queue source names the queue the deadlock is waiting on.
	Queue      string `json:"queue,omitempty"`
	Seq        int64  `json:"seq,omitempty"`
	QueueReady bool   `json:"queueReady,omitempty"`

	// ProducerPC is the in-flight producer's program counter, -1 when
	// the operand has no in-window producer.
	ProducerPC   int  `json:"producerPC"`
	ProducerDone bool `json:"producerDone,omitempty"`
}

// QueueState is one architectural queue's occupancy and traffic.
type QueueState struct {
	Name     string `json:"name"`
	Len      int    `json:"len"`
	Cap      int    `json:"cap"`
	Avail    int    `json:"avail"`
	Closed   bool   `json:"closed,omitempty"`
	Pushes   uint64 `json:"pushes"`
	Claims   uint64 `json:"claims"`
	Unclaims uint64 `json:"unclaims,omitempty"`
}

// Full reports whether the queue can accept no more pushes.
func (q QueueState) Full() bool { return q.Len == q.Cap }

// Empty reports whether no unclaimed values are available.
func (q QueueState) Empty() bool { return q.Avail == 0 }

// String summarises the queue state (the old describeStall format).
func (q QueueState) String() string {
	return fmt.Sprintf("%s[len=%d/%d avail=%d closed=%v]", q.Name, q.Len, q.Cap, q.Avail, q.Closed)
}

// HierState summarises the memory hierarchy and MSHR state.
type HierState struct {
	MSHRInFlight      int    `json:"mshrInFlight"`
	L1DDemandAccesses uint64 `json:"l1dDemandAccesses"`
	L1DDemandMisses   uint64 `json:"l1dDemandMisses"`
	L2DemandAccesses  uint64 `json:"l2DemandAccesses"`
	L2DemandMisses    uint64 `json:"l2DemandMisses"`
	PrefetchIssued    uint64 `json:"prefetchIssued,omitempty"`
}

// --- fault types ---

// InvariantFault is a violated internal invariant: a panic recovered at
// a containment boundary (Machine.RunContext, the experiment runner's
// workers) or an impossible queue operation detected by the functional
// co-simulation. The simulation that raised it is unusable; the
// snapshot and stack are the forensics.
type InvariantFault struct {
	Origin   string    `json:"origin"`          // subsystem, e.g. "machine cp+ap"
	Reason   string    `json:"reason"`          // the violated invariant / panic value
	Stack    string    `json:"stack,omitempty"` // recovered goroutine stack, when available
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

func (f *InvariantFault) Error() string {
	return fmt.Sprintf("%s: invariant violated: %s", f.Origin, f.Reason)
}

// FaultSnapshot implements Snapshotter.
func (f *InvariantFault) FaultSnapshot() *Snapshot { return f.Snapshot }

// DeadlockFault is a watchdog-detected loss of forward progress. The
// queue occupancies are structured fields so tests and tools can assert
// on the blocked queue instead of string-matching a stall description.
type DeadlockFault struct {
	Origin      string       `json:"origin"`
	Cycle       int64        `json:"cycle"`
	StallCycles int64        `json:"stallCycles,omitempty"` // commit-free interval that tripped the watchdog
	Queues      []QueueState `json:"queues,omitempty"`
	Snapshot    *Snapshot    `json:"snapshot,omitempty"`
}

// Queue returns the named queue's state at fault time.
func (f *DeadlockFault) Queue(name string) (QueueState, bool) {
	for _, q := range f.Queues {
		if q.Name == name {
			return q, true
		}
	}
	return QueueState{}, false
}

func (f *DeadlockFault) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: deadlock at cycle %d", f.Origin, f.Cycle)
	if f.StallCycles > 0 {
		fmt.Fprintf(&b, " (no commit for %d cycles)", f.StallCycles)
	}
	if f.Snapshot != nil {
		for _, c := range f.Snapshot.Cores {
			fmt.Fprintf(&b, "; %s halted=%v committed=%d", c.Name, c.Halted, c.Committed)
			if c.Head != nil {
				fmt.Fprintf(&b, " head=pc%d %q", c.Head.PC, c.Head.Inst)
				for _, s := range c.Head.Sources {
					if !s.Ready && s.Queue != "" {
						fmt.Fprintf(&b, " waiting on %s", s.Queue)
					}
				}
			}
		}
	}
	for _, q := range f.Queues {
		fmt.Fprintf(&b, "; %s", q)
	}
	return b.String()
}

// FaultSnapshot implements Snapshotter.
func (f *DeadlockFault) FaultSnapshot() *Snapshot { return f.Snapshot }

// CycleLimitFault is a simulation that exceeded its cycle or functional
// step budget without halting.
type CycleLimitFault struct {
	Origin   string    `json:"origin"`
	Limit    int64     `json:"limit"`
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

func (f *CycleLimitFault) Error() string {
	return fmt.Sprintf("%s: exceeded %d cycles without halting", f.Origin, f.Limit)
}

// FaultSnapshot implements Snapshotter.
func (f *CycleLimitFault) FaultSnapshot() *Snapshot { return f.Snapshot }

// TimeoutFault is a simulation cancelled from outside (context deadline
// exceeded or explicit cancellation), with the state it was cut off in.
type TimeoutFault struct {
	Origin   string    `json:"origin"`
	Cycle    int64     `json:"cycle"`
	Cause    string    `json:"cause"` // the context error
	Snapshot *Snapshot `json:"snapshot,omitempty"`
}

func (f *TimeoutFault) Error() string {
	return fmt.Sprintf("%s: cancelled at cycle %d: %s", f.Origin, f.Cycle, f.Cause)
}

// FaultSnapshot implements Snapshotter.
func (f *TimeoutFault) FaultSnapshot() *Snapshot { return f.Snapshot }

// --- inspection helpers ---

// Snapshotter is implemented by every fault carrying a Snapshot.
type Snapshotter interface {
	error
	FaultSnapshot() *Snapshot
}

// SnapshotOf extracts the snapshot from the first fault in err's tree
// that carries one; nil when err holds no snapshot.
func SnapshotOf(err error) *Snapshot {
	var s Snapshotter
	if errors.As(err, &s) {
		return s.FaultSnapshot()
	}
	return nil
}

// KindOf classifies the first typed fault in err's tree.
func KindOf(err error) (Kind, bool) {
	var (
		inv *InvariantFault
		dl  *DeadlockFault
		cl  *CycleLimitFault
		to  *TimeoutFault
	)
	switch {
	case errors.As(err, &inv):
		return KindInvariant, true
	case errors.As(err, &dl):
		return KindDeadlock, true
	case errors.As(err, &cl):
		return KindCycleLimit, true
	case errors.As(err, &to):
		return KindTimeout, true
	}
	return "", false
}

// WriteSnapshots walks err's tree (including errors.Join aggregates),
// writes every snapshot it finds as indented JSON into dir, and returns
// the file paths. The directory is created if missing. Files are named
// fault-<n>-<kind>-cycle<cycle>.json so multiple faults from one batch
// do not collide.
func WriteSnapshots(dir string, err error) ([]string, error) {
	snaps := collectSnapshots(err, nil)
	if len(snaps) == 0 {
		return nil, nil
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		return nil, mkErr
	}
	var paths []string
	for i, s := range snaps {
		data, mErr := json.MarshalIndent(s, "", "  ")
		if mErr != nil {
			return paths, mErr
		}
		path := filepath.Join(dir, fmt.Sprintf("fault-%d-%s-cycle%d.json", i, s.Kind, s.Cycle))
		if wErr := os.WriteFile(path, data, 0o644); wErr != nil {
			return paths, wErr
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// collectSnapshots gathers snapshots from an error tree in depth-first
// order, following both single-cause Unwrap and multi-error Unwrap.
func collectSnapshots(err error, acc []*Snapshot) []*Snapshot {
	if err == nil {
		return acc
	}
	if s, ok := err.(Snapshotter); ok && s.FaultSnapshot() != nil {
		return append(acc, s.FaultSnapshot())
	}
	switch u := err.(type) {
	case interface{ Unwrap() []error }:
		for _, e := range u.Unwrap() {
			acc = collectSnapshots(e, acc)
		}
	case interface{ Unwrap() error }:
		acc = collectSnapshots(u.Unwrap(), acc)
	}
	return acc
}
