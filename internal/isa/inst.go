package isa

import (
	"fmt"
	"strings"
)

// Stream identifies which HiDISC instruction stream an instruction
// belongs to after stream separation.
type Stream uint8

// Stream values stored in the annotation field.
const (
	StreamNone    Stream = iota // sequential binary, not yet separated
	StreamCompute               // computation stream (CP)
	StreamAccess                // access stream (AP)
	StreamCMAS                  // cache-miss access slice (CMP)
)

// String names the stream.
func (s Stream) String() string {
	switch s {
	case StreamNone:
		return "seq"
	case StreamCompute:
		return "CS"
	case StreamAccess:
		return "AS"
	case StreamCMAS:
		return "CMAS"
	}
	return "stream?"
}

// Annotation is the per-instruction annotation field the HiDISC
// compiler writes into the binary (the paper stores it in the unused
// annotation field of SimpleScalar's PISA encoding). It records the
// stream, queue-communication taps, and CMAS trigger information.
type Annotation uint32

// Annotation flag bits.
const (
	// AnnTapLDQ marks an Access Stream instruction whose result is also
	// enqueued on the Load Data Queue at commit (value flows AS -> CS).
	AnnTapLDQ Annotation = 1 << (2 + iota)
	// AnnTapSDQ marks a Computation Stream instruction whose result is
	// also enqueued on the Store Data Queue at commit (CS -> AS).
	AnnTapSDQ
	// AnnPushCQ marks an Access Stream control instruction whose
	// outcome (taken/not-taken, or the target index for indirect jumps)
	// is enqueued on the Control Queue at commit.
	AnnPushCQ
	// AnnTrigger marks an Access Stream instruction whose dispatch
	// forks the CMAS thread identified by CMASID on the CMP.
	AnnTrigger
	// AnnConsumeSCQ marks an instruction that consumes one slip-control
	// credit non-blockingly at commit. Used in the CP+CMP configuration
	// where the single stream must not stall on the prefetcher.
	AnnConsumeSCQ
)

const (
	annStreamMask Annotation = 0x3
	annIDShift               = 16
)

// Stream extracts the stream tag.
func (a Annotation) Stream() Stream { return Stream(a & annStreamMask) }

// WithStream returns the annotation with the stream tag replaced.
func (a Annotation) WithStream(s Stream) Annotation {
	return (a &^ annStreamMask) | Annotation(s)
}

// Has reports whether flag is set.
func (a Annotation) Has(flag Annotation) bool { return a&flag != 0 }

// CMASID extracts the CMAS identifier for trigger/SCQ annotations.
func (a Annotation) CMASID() int { return int(a >> annIDShift) }

// WithCMASID returns the annotation with the CMAS identifier replaced.
func (a Annotation) WithCMASID(id int) Annotation {
	return (a & 0xFFFF) | Annotation(id)<<annIDShift
}

// String renders the annotation compactly, e.g. "[AS tapLDQ trig#2]".
func (a Annotation) String() string {
	if a == 0 {
		return ""
	}
	var parts []string
	if a.Stream() != StreamNone {
		parts = append(parts, a.Stream().String())
	}
	if a.Has(AnnTapLDQ) {
		parts = append(parts, "tapLDQ")
	}
	if a.Has(AnnTapSDQ) {
		parts = append(parts, "tapSDQ")
	}
	if a.Has(AnnPushCQ) {
		parts = append(parts, "pushCQ")
	}
	if a.Has(AnnTrigger) {
		parts = append(parts, fmt.Sprintf("trig#%d", a.CMASID()))
	}
	if a.Has(AnnConsumeSCQ) {
		parts = append(parts, fmt.Sprintf("scq#%d", a.CMASID()))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Inst is one decoded instruction. Control-flow targets are absolute
// instruction indices held in Imm. Memory operands address bytes:
// effective address = intReg(Rs) + Imm.
type Inst struct {
	Op  Op
	Rd  Reg // destination (or stored-value register for FmtMemS rendering)
	Rs  Reg // first source / base address
	Rt  Reg // second source / stored value
	Imm int32
	Ann Annotation
}

// Word is the binary encoding of one instruction: opcode and register
// operands packed in Raw, the immediate in Imm, and the HiDISC
// annotation field in Ann.
type Word struct {
	Raw uint32
	Imm int32
	Ann uint32
}

// Encode packs the instruction into its binary form.
func (in Inst) Encode() Word {
	raw := uint32(in.Op) | uint32(in.Rd)<<8 | uint32(in.Rs)<<16 | uint32(in.Rt)<<24
	return Word{Raw: raw, Imm: in.Imm, Ann: uint32(in.Ann)}
}

// Decode unpacks a binary instruction word.
func Decode(w Word) (Inst, error) {
	op := Op(w.Raw & 0xFF)
	if op >= numOps {
		return Inst{}, fmt.Errorf("isa: invalid opcode %d", uint32(op))
	}
	in := Inst{
		Op:  op,
		Rd:  Reg(w.Raw >> 8),
		Rs:  Reg(w.Raw >> 16),
		Rt:  Reg(w.Raw >> 24),
		Imm: w.Imm,
		Ann: Annotation(w.Ann),
	}
	for _, r := range [...]Reg{in.Rd, in.Rs, in.Rt} {
		if r > RegNone {
			return Inst{}, fmt.Errorf("isa: invalid register %d in %v", uint8(r), op)
		}
	}
	return in, nil
}

// StoreData returns the register holding the value stored by a store
// instruction (the Rt operand).
func (in Inst) StoreData() Reg { return in.Rt }

// MaxSources is the largest number of source operands any instruction
// reads (SourceList's array size).
const MaxSources = 3

// SourceList returns the registers (or queues) the instruction reads,
// in operand order, without allocating: the first n entries of the
// returned array are valid. Queue sources are dequeued in exactly this
// order. The simulators' per-cycle hot paths use this form.
func (in Inst) SourceList() (src [MaxSources]Reg, n int) {
	if in.Op.ReadsRs() && in.Rs != RegNone {
		src[n] = in.Rs
		n++
	}
	if in.Op.ReadsRt() && in.Rt != RegNone {
		src[n] = in.Rt
		n++
	}
	if in.Op == BCQ || in.Op == JCQ {
		src[n] = RegCQ
		n++
	}
	return src, n
}

// Sources returns the registers (or queues) the instruction reads, in
// operand order. Queue sources are dequeued in exactly this order.
// Analysis passes use this convenient form; the cycle simulators use
// the allocation-free SourceList.
func (in Inst) Sources() []Reg {
	src, n := in.SourceList()
	if n == 0 {
		return nil
	}
	return src[:n:n]
}

// Dest returns the written register, or RegNone. JAL implicitly writes RA.
func (in Inst) Dest() Reg {
	if !in.Op.WritesRd() {
		return RegNone
	}
	if in.Op == JAL {
		return RA
	}
	return in.Rd
}

// Target returns the direct control-transfer target (instruction index)
// for direct branches and jumps.
func (in Inst) Target() int { return int(in.Imm) }

// String disassembles the instruction, including its annotation.
func (in Inst) String() string {
	s := in.disasm()
	if ann := in.Ann.String(); ann != "" {
		s += " " + ann
	}
	return s
}

func (in Inst) disasm() string {
	name := in.Op.Name()
	switch in.Op.Format() {
	case FmtNone:
		return name
	case FmtR3:
		return fmt.Sprintf("%s %s, %s, %s", name, in.Rd, in.Rs, in.Rt)
	case FmtR2I:
		return fmt.Sprintf("%s %s, %s, %d", name, in.Rd, in.Rs, in.Imm)
	case FmtRI:
		return fmt.Sprintf("%s %s, %d", name, in.Rd, in.Imm)
	case FmtR2:
		return fmt.Sprintf("%s %s, %s", name, in.Rd, in.Rs)
	case FmtMemL:
		if in.Op == PREF {
			return fmt.Sprintf("%s %d(%s)", name, in.Imm, in.Rs)
		}
		return fmt.Sprintf("%s %s, %d(%s)", name, in.Rd, in.Imm, in.Rs)
	case FmtMemS:
		return fmt.Sprintf("%s %s, %d(%s)", name, in.Rt, in.Imm, in.Rs)
	case FmtB2:
		return fmt.Sprintf("%s %s, %s, %d", name, in.Rs, in.Rt, in.Imm)
	case FmtB1:
		return fmt.Sprintf("%s %s, %d", name, in.Rs, in.Imm)
	case FmtB0:
		return fmt.Sprintf("%s %d", name, in.Imm)
	case FmtR1:
		return fmt.Sprintf("%s %s", name, in.Rs)
	case FmtI:
		return fmt.Sprintf("%s %d", name, in.Imm)
	}
	return name
}
