// Package isa defines the PISA-like instruction set simulated by the
// HiDISC toolchain: a MIPS-flavoured 32-bit integer / 64-bit floating
// point ISA extended with the architectural-queue operands and the
// annotation field used by the HiDISC compiler to tag the computation
// stream, the access stream, and the cache-miss access slices (CMAS).
package isa

import "fmt"

// Reg names an architectural register or one of the architectural
// queues. Integer registers are R0..R31 (R0 is hardwired to zero),
// floating point registers are F0..F31. The queue pseudo-registers
// address the FIFOs that connect the HiDISC processors:
//
//   - RegLDQ: Load Data Queue, Access Processor -> Computation Processor
//   - RegSDQ: Store Data Queue, Computation Processor -> Access Processor
//   - RegCQ:  Control Queue, branch outcomes AP -> CP (generalised EOD token)
//   - RegSCQ: Slip Control Queue, CMP -> AP prefetch throttling credits
//
// Reading a queue register dequeues; writing one enqueues. Queue reads
// happen in program order at dispatch, queue writes in program order at
// commit, preserving FIFO pairing between the streams.
type Reg uint8

const (
	// R0 is the integer zero register; writes to it are discarded.
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	// SP is the conventional stack pointer (alias R29).
	SP
	// FP is the conventional frame pointer (alias R30).
	FP
	// RA is the conventional return-address register (alias R31).
	RA
)

// F0 is the first floating point register; F0..F31 are Reg values 32..63.
const F0 Reg = 32

// Queue pseudo-registers and the "no register" sentinel.
const (
	RegLDQ  Reg = 64 + iota // load data queue (AP -> CP)
	RegSDQ                  // store data queue (CP -> AP)
	RegCQ                   // control queue (AP -> CP branch outcomes)
	RegSCQ                  // slip control queue (CMP -> AP credits)
	RegNone                 // operand not present
)

// NumIntRegs and NumFPRegs size the architectural register files.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// F returns the floating point register with the given index (0..31).
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return F0 + Reg(i)
}

// R returns the integer register with the given index (0..31).
func R(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: int register index %d out of range", i))
	}
	return Reg(i)
}

// IsInt reports whether r is an integer architectural register.
func (r Reg) IsInt() bool { return r < 32 }

// IsFP reports whether r is a floating point architectural register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// IsQueue reports whether r names an architectural queue.
func (r Reg) IsQueue() bool { return r >= RegLDQ && r <= RegSCQ }

// IsArch reports whether r is a real architectural register (int or FP).
func (r Reg) IsArch() bool { return r < 64 }

// FPIndex returns the register's index in the FP register file.
func (r Reg) FPIndex() int { return int(r - F0) }

// String returns the assembler spelling of the register.
func (r Reg) String() string {
	switch {
	case r.IsInt():
		switch r {
		case SP:
			return "$sp"
		case FP:
			return "$fp"
		case RA:
			return "$ra"
		}
		return fmt.Sprintf("$r%d", int(r))
	case r.IsFP():
		return fmt.Sprintf("$f%d", r.FPIndex())
	case r == RegLDQ:
		return "$LDQ"
	case r == RegSDQ:
		return "$SDQ"
	case r == RegCQ:
		return "$CQ"
	case r == RegSCQ:
		return "$SCQ"
	case r == RegNone:
		return "$-"
	}
	return fmt.Sprintf("$?%d", uint8(r))
}
