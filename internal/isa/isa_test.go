package isa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegClassification(t *testing.T) {
	cases := []struct {
		r           Reg
		isInt, isFP bool
		isQueue     bool
		str         string
	}{
		{R0, true, false, false, "$r0"},
		{R5, true, false, false, "$r5"},
		{SP, true, false, false, "$sp"},
		{FP, true, false, false, "$fp"},
		{RA, true, false, false, "$ra"},
		{F0, false, true, false, "$f0"},
		{F(31), false, true, false, "$f31"},
		{RegLDQ, false, false, true, "$LDQ"},
		{RegSDQ, false, false, true, "$SDQ"},
		{RegCQ, false, false, true, "$CQ"},
		{RegSCQ, false, false, true, "$SCQ"},
		{RegNone, false, false, false, "$-"},
	}
	for _, c := range cases {
		if got := c.r.IsInt(); got != c.isInt {
			t.Errorf("%v.IsInt() = %v, want %v", c.r, got, c.isInt)
		}
		if got := c.r.IsFP(); got != c.isFP {
			t.Errorf("%v.IsFP() = %v, want %v", c.r, got, c.isFP)
		}
		if got := c.r.IsQueue(); got != c.isQueue {
			t.Errorf("%v.IsQueue() = %v, want %v", c.r, got, c.isQueue)
		}
		if got := c.r.String(); got != c.str {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(c.r), got, c.str)
		}
	}
}

func TestRegConstructorsPanic(t *testing.T) {
	for _, bad := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("R(%d) did not panic", bad)
				}
			}()
			R(bad)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("F(%d) did not panic", bad)
				}
			}()
			F(bad)
		}()
	}
}

func TestOpMetadataConsistency(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Name() == "" {
			t.Fatalf("op %d has no name", op)
		}
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v cannot be both load and store", op)
		}
		if op.IsCondBranch() && op.IsJump() {
			t.Errorf("%v cannot be both branch and jump", op)
		}
		if op.IsLoad() && !op.WritesRd() {
			t.Errorf("load %v should write a destination", op)
		}
		if op.IsStore() && op.WritesRd() {
			t.Errorf("store %v should not write a destination", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpByName[op.Name()]
		if !ok {
			t.Fatalf("OpByName missing %q", op.Name())
		}
		if got != op {
			t.Errorf("OpByName[%q] = %v, want %v", op.Name(), got, op)
		}
	}
}

func TestClassLatencies(t *testing.T) {
	if ClassIntALU.Latency() != 1 {
		t.Errorf("int ALU latency = %d, want 1", ClassIntALU.Latency())
	}
	if ClassIntDiv.Latency() != 20 || ClassIntDiv.Pipelined() {
		t.Errorf("int div should be 20 cycles, unpipelined")
	}
	if ClassFPMul.Latency() != 4 || !ClassFPMul.Pipelined() {
		t.Errorf("fp mul should be 4 cycles, pipelined")
	}
	for c := Class(0); c < NumClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("class %v latency %d < 1", c, c.Latency())
		}
		if c.String() == "class?" {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestAnnotationFields(t *testing.T) {
	var a Annotation
	a = a.WithStream(StreamAccess)
	a |= AnnTapLDQ | AnnTrigger
	a = a.WithCMASID(7)
	if a.Stream() != StreamAccess {
		t.Errorf("stream = %v, want AS", a.Stream())
	}
	if !a.Has(AnnTapLDQ) || !a.Has(AnnTrigger) || a.Has(AnnPushCQ) {
		t.Errorf("flag extraction wrong: %v", a)
	}
	if a.CMASID() != 7 {
		t.Errorf("CMASID = %d, want 7", a.CMASID())
	}
	a = a.WithStream(StreamCompute)
	if a.Stream() != StreamCompute || !a.Has(AnnTapLDQ) || a.CMASID() != 7 {
		t.Errorf("WithStream clobbered other fields: %v", a)
	}
	s := a.String()
	for _, want := range []string{"CS", "tapLDQ", "trig#7"} {
		if !strings.Contains(s, want) {
			t.Errorf("annotation string %q missing %q", s, want)
		}
	}
}

func TestInstEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: ADD, Rd: R3, Rs: R4, Rt: R5},
		{Op: LW, Rd: R7, Rs: SP, Imm: -16},
		{Op: SFD, Rs: R9, Rt: F(4), Imm: 88},
		{Op: BEQ, Rs: R1, Rt: R0, Imm: 42, Ann: Annotation(StreamAccess) | AnnPushCQ},
		{Op: LFD, Rd: RegLDQ, Rs: R9, Imm: 88, Ann: Annotation(StreamAccess)},
		{Op: BCQ, Imm: 3, Ann: Annotation(StreamCompute)},
		{Op: GETSCQ, Imm: 2, Ann: Annotation(StreamAccess).WithCMASID(2)},
		{Op: HALT},
	}
	for _, in := range insts {
		got, err := Decode(in.Encode())
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(Word{Raw: 0xFF}); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
	bad := Inst{Op: ADD, Rd: R1, Rs: R2, Rt: R3}.Encode()
	bad.Raw |= 0xF0 << 24 // Rt = 0xF0, out of range
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted invalid register")
	}
}

func TestInstEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		in := Inst{
			Op:  Op(rng.Intn(int(numOps))),
			Rd:  Reg(rng.Intn(int(RegNone) + 1)),
			Rs:  Reg(rng.Intn(int(RegNone) + 1)),
			Rt:  Reg(rng.Intn(int(RegNone) + 1)),
			Imm: int32(rng.Uint32()),
			Ann: Annotation(rng.Uint32()),
		}
		got, err := Decode(in.Encode())
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInstSourcesAndDest(t *testing.T) {
	cases := []struct {
		in   Inst
		srcs []Reg
		dest Reg
	}{
		{Inst{Op: ADD, Rd: R1, Rs: R2, Rt: R3}, []Reg{R2, R3}, R1},
		{Inst{Op: LI, Rd: R1, Imm: 5}, nil, R1},
		{Inst{Op: SW, Rs: R2, Rt: R3}, []Reg{R2, R3}, RegNone},
		{Inst{Op: BCQ, Imm: 9}, []Reg{RegCQ}, RegNone},
		{Inst{Op: JCQ}, []Reg{RegCQ}, RegNone},
		{Inst{Op: JAL, Imm: 4}, nil, RA},
		{Inst{Op: FMUL, Rd: F(4), Rs: RegLDQ, Rt: RegLDQ}, []Reg{RegLDQ, RegLDQ}, F(4)},
		{Inst{Op: PREF, Rs: R9, Imm: 64}, []Reg{R9}, RegNone},
	}
	for _, c := range cases {
		got := c.in.Sources()
		if len(got) != len(c.srcs) {
			t.Errorf("%v: sources %v, want %v", c.in, got, c.srcs)
			continue
		}
		for i := range got {
			if got[i] != c.srcs[i] {
				t.Errorf("%v: sources %v, want %v", c.in, got, c.srcs)
				break
			}
		}
		if d := c.in.Dest(); d != c.dest {
			t.Errorf("%v: dest %v, want %v", c.in, d, c.dest)
		}
	}
}

func TestDisasmFormats(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: R9, Rs: R25, Rt: R8}, "add $r9, $r25, $r8"},
		{Inst{Op: LFD, Rd: F(16), Rs: R9, Imm: 88}, "l.d $f16, 88($r9)"},
		{Inst{Op: SFD, Rs: R13, Rt: F(4), Imm: 0}, "s.d $f4, 0($r13)"},
		{Inst{Op: LFD, Rd: RegLDQ, Rs: R9, Imm: 88}, "l.d $LDQ, 88($r9)"},
		{Inst{Op: FMUL, Rd: F(4), Rs: RegLDQ, Rt: RegLDQ}, "mul.d $f4, $LDQ, $LDQ"},
		{Inst{Op: BEQ, Rs: R1, Rt: R0, Imm: 12}, "beq $r1, $r0, 12"},
		{Inst{Op: BLEZ, Rs: R1, Imm: 3}, "blez $r1, 3"},
		{Inst{Op: J, Imm: 7}, "j 7"},
		{Inst{Op: JR, Rs: RA}, "jr $ra"},
		{Inst{Op: BCQ, Imm: 2}, "bcq 2"},
		{Inst{Op: JCQ}, "jcq"},
		{Inst{Op: PREF, Rs: R9, Imm: 32}, "pref 32($r9)"},
		{Inst{Op: GETSCQ, Imm: 1}, "getscq 1"},
		{Inst{Op: LI, Rd: R4, Imm: -3}, "li $r4, -3"},
		{Inst{Op: CVTIF, Rd: F(2), Rs: R3}, "cvt.d.w $f2, $r3"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: NOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm: got %q, want %q", got, c.want)
		}
	}
}

func TestDisasmIncludesAnnotation(t *testing.T) {
	in := Inst{Op: LW, Rd: R3, Rs: R4, Ann: Annotation(StreamAccess) | AnnTapLDQ}
	s := in.String()
	if !strings.Contains(s, "[AS tapLDQ]") {
		t.Errorf("disasm %q missing annotation", s)
	}
}

func makeTestProgram() *Program {
	return &Program{
		Name: "t",
		Insts: []Inst{
			{Op: LI, Rd: R1, Imm: 10},
			{Op: ADDI, Rd: R1, Rs: R1, Imm: -1},
			{Op: BGTZ, Rs: R1, Imm: 1},
			{Op: HALT},
		},
		Data:    []byte{1, 2, 3, 4},
		Symbols: map[string]uint32{"tab": DataBase},
		Labels:  map[string]int{"loop": 1},
	}
}

func TestProgramValidate(t *testing.T) {
	p := makeTestProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := p.Clone()
	bad.Insts[2].Imm = 99
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	bad = p.Clone()
	bad.Entry = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative entry accepted")
	}
	empty := &Program{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestProgramBinaryRoundTrip(t *testing.T) {
	p := makeTestProgram()
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	q, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || len(q.Insts) != len(p.Insts) {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Insts {
		if q.Insts[i] != p.Insts[i] {
			t.Errorf("inst %d: got %v, want %v", i, q.Insts[i], p.Insts[i])
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Error("data mismatch")
	}
	if q.Symbols["tab"] != DataBase || q.Labels["loop"] != 1 {
		t.Error("symbol/label mismatch")
	}
}

func TestReadBinaryRejectsCorrupt(t *testing.T) {
	p := makeTestProgram()
	var buf bytes.Buffer
	if err := p.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:8])); err == nil {
		t.Error("truncated binary accepted")
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[0] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := makeTestProgram()
	q := p.Clone()
	q.Insts[0].Imm = 99
	q.Data[0] = 99
	q.Labels["loop"] = 3
	q.Symbols["tab"] = 0
	if p.Insts[0].Imm == 99 || p.Data[0] == 99 || p.Labels["loop"] == 3 || p.Symbols["tab"] == 0 {
		t.Error("Clone shares state with original")
	}
}

func TestProgramListing(t *testing.T) {
	p := makeTestProgram()
	l := p.Listing()
	for _, want := range []string{"loop:", "li $r1, 10", "halt", "4 instructions"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestEvalIntALU(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		want uint32
	}{
		{ADD, 3, 4, 7},
		{ADD, 0xFFFFFFFF, 1, 0}, // wraps
		{SUB, 3, 5, 0xFFFFFFFE},
		{MUL, 0xFFFF, 0xFFFF, 0xFFFE0001},
		{DIV, 0xFFFFFFF9, 2, 0xFFFFFFFD}, // -7/2 = -3 (trunc)
		{REM, 0xFFFFFFF9, 2, 0xFFFFFFFF}, // -7%2 = -1
		{AND, 0b1100, 0b1010, 0b1000},
		{OR, 0b1100, 0b1010, 0b1110},
		{XOR, 0b1100, 0b1010, 0b0110},
		{NOR, 0, 0, 0xFFFFFFFF},
		{SLL, 1, 35, 8}, // shift amount masked to 5 bits
		{SRL, 0x80000000, 31, 1},
		{SRA, 0x80000000, 31, 0xFFFFFFFF},
		{SLT, 0xFFFFFFFF, 0, 1}, // -1 < 0 signed
		{SLTU, 0xFFFFFFFF, 0, 0},
	}
	for _, c := range cases {
		got, err := EvalIntALU(c.op, c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("EvalIntALU(%v, %#x, %#x) = %#x, %v; want %#x", c.op, c.a, c.b, got, err, c.want)
		}
	}
	if _, err := EvalIntALU(DIV, 1, 0); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := EvalIntALU(REM, 1, 0); err == nil {
		t.Error("remainder by zero accepted")
	}
	if _, err := EvalIntALU(ADDI, 1, 1); err == nil {
		t.Error("immediate op accepted by three-register eval")
	}
}

func TestEvalIntALUImm(t *testing.T) {
	if v, _ := EvalIntALUImm(ADDI, 5, -3); v != 2 {
		t.Errorf("addi = %d", v)
	}
	if v, _ := EvalIntALUImm(SLTI, 0xFFFFFFFF, 0); v != 1 {
		t.Errorf("slti signed = %d", v)
	}
	if v, _ := EvalIntALUImm(SRAI, 0x80000000, 4); v != 0xF8000000 {
		t.Errorf("srai = %#x", v)
	}
	if _, err := EvalIntALUImm(ADD, 1, 1); err == nil {
		t.Error("register op accepted by immediate eval")
	}
}

func TestEvalFPAndCompares(t *testing.T) {
	if v, _ := EvalFP(FADD, 1.5, 2.25); v != 3.75 {
		t.Errorf("fadd = %v", v)
	}
	if v, _ := EvalFP(FNEG, 2.0, 0); v != -2.0 {
		t.Errorf("fneg = %v", v)
	}
	if v, _ := EvalFP(FABS, -2.0, 0); v != 2.0 {
		t.Errorf("fabs = %v", v)
	}
	if _, err := EvalFP(ADD, 1, 2); err == nil {
		t.Error("integer op accepted by FP eval")
	}
	if b, _ := EvalFPCmp(FLT, 1, 2); !b {
		t.Error("1 < 2 false")
	}
	if b, _ := EvalFPCmp(FLE, 2, 2); !b {
		t.Error("2 <= 2 false")
	}
	if b, _ := EvalFPCmp(FEQ, 2, 3); b {
		t.Error("2 == 3 true")
	}
	if _, err := EvalFPCmp(FADD, 1, 2); err == nil {
		t.Error("arithmetic op accepted by compare eval")
	}
}

func TestEvalBranch(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint32
		want bool
	}{
		{BEQ, 5, 5, true},
		{BNE, 5, 5, false},
		{BLEZ, 0, 0, true},
		{BLEZ, 0xFFFFFFFF, 0, true}, // -1 <= 0
		{BGTZ, 1, 0, true},
		{BLTZ, 0x80000000, 0, true},
		{BGEZ, 0, 0, true},
	}
	for _, c := range cases {
		got, err := EvalBranch(c.op, c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("EvalBranch(%v, %#x) = %v, %v; want %v", c.op, c.a, got, err, c.want)
		}
	}
	if _, err := EvalBranch(J, 0, 0); err == nil {
		t.Error("jump accepted by branch eval")
	}
}
