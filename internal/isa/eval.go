package isa

import (
	"fmt"
	"math"
)

// EvalIntALU computes a three-register integer ALU operation.
func EvalIntALU(op Op, a, b uint32) (uint32, error) {
	switch op {
	case ADD:
		return a + b, nil
	case SUB:
		return a - b, nil
	case MUL:
		return uint32(int32(a) * int32(b)), nil
	case DIV:
		if b == 0 {
			return 0, fmt.Errorf("isa: integer division by zero")
		}
		return uint32(int32(a) / int32(b)), nil
	case REM:
		if b == 0 {
			return 0, fmt.Errorf("isa: integer remainder by zero")
		}
		return uint32(int32(a) % int32(b)), nil
	case AND:
		return a & b, nil
	case OR:
		return a | b, nil
	case XOR:
		return a ^ b, nil
	case NOR:
		return ^(a | b), nil
	case SLL:
		return a << (b & 31), nil
	case SRL:
		return a >> (b & 31), nil
	case SRA:
		return uint32(int32(a) >> (b & 31)), nil
	case SLT:
		if int32(a) < int32(b) {
			return 1, nil
		}
		return 0, nil
	case SLTU:
		if a < b {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("isa: EvalIntALU(%v)", op)
}

// EvalIntALUImm computes an immediate-form integer ALU operation.
func EvalIntALUImm(op Op, a uint32, imm int32) (uint32, error) {
	switch op {
	case ADDI:
		return a + uint32(imm), nil
	case ANDI:
		return a & uint32(imm), nil
	case ORI:
		return a | uint32(imm), nil
	case XORI:
		return a ^ uint32(imm), nil
	case SLLI:
		return a << (uint32(imm) & 31), nil
	case SRLI:
		return a >> (uint32(imm) & 31), nil
	case SRAI:
		return uint32(int32(a) >> (uint32(imm) & 31)), nil
	case SLTI:
		if int32(a) < imm {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("isa: EvalIntALUImm(%v)", op)
}

// EvalFP computes a floating point arithmetic operation; b is ignored
// for the two-operand forms.
func EvalFP(op Op, a, b float64) (float64, error) {
	switch op {
	case FADD:
		return a + b, nil
	case FSUB:
		return a - b, nil
	case FMUL:
		return a * b, nil
	case FDIV:
		return a / b, nil
	case FMOV:
		return a, nil
	case FNEG:
		return -a, nil
	case FABS:
		return math.Abs(a), nil
	}
	return 0, fmt.Errorf("isa: EvalFP(%v)", op)
}

// EvalFPCmp computes a floating point comparison.
func EvalFPCmp(op Op, a, b float64) (bool, error) {
	switch op {
	case FLT:
		return a < b, nil
	case FLE:
		return a <= b, nil
	case FEQ:
		return a == b, nil
	}
	return false, fmt.Errorf("isa: EvalFPCmp(%v)", op)
}

// EvalBranch computes a conditional branch outcome on integer values.
func EvalBranch(op Op, a, b uint32) (bool, error) {
	switch op {
	case BEQ:
		return a == b, nil
	case BNE:
		return a != b, nil
	case BLEZ:
		return int32(a) <= 0, nil
	case BGTZ:
		return int32(a) > 0, nil
	case BLTZ:
		return int32(a) < 0, nil
	case BGEZ:
		return int32(a) >= 0, nil
	}
	return false, fmt.Errorf("isa: EvalBranch(%v)", op)
}
