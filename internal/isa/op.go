package isa

// Op is an operation code.
type Op uint8

// Operation codes. The set follows SimpleScalar's PISA closely enough
// that the paper's examples (MIPS assembly) transliterate directly,
// plus the HiDISC queue/communication operations.
const (
	NOP Op = iota

	// Integer ALU, three-register form: rd <- rs OP rt.
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	NOR
	SLL
	SRL
	SRA
	SLT  // rd <- (int32(rs) < int32(rt)) ? 1 : 0
	SLTU // rd <- (uint32(rs) < uint32(rt)) ? 1 : 0

	// Integer ALU, immediate form: rd <- rs OP imm.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI

	// Immediate loads: rd <- imm, rd <- imm << 16.
	LI
	LUI

	// Memory. Loads: rd <- mem[rs+imm]; stores: mem[rs+imm] <- rt.
	LW  // load 32-bit word, sign-preserving
	LBU // load byte, zero-extended
	SW  // store 32-bit word
	SB  // store low byte
	LFD // load 64-bit float into FP register rd
	SFD // store 64-bit float from FP register rt

	// Floating point, three-register form (registers are FP).
	FADD
	FSUB
	FMUL
	FDIV

	// Floating point, two-register form: rd <- op(rs).
	FMOV
	FNEG
	FABS
	CVTIF // FP rd <- float64(int32(rs)); rs integer
	CVTFI // int rd <- int32(trunc(fs)); rs FP

	// Floating point compares producing an integer 0/1 in rd.
	FLT
	FLE
	FEQ

	// Control. Conditional branches compare integer registers.
	BEQ  // if rs == rt goto imm
	BNE  // if rs != rt goto imm
	BLEZ // if int32(rs) <= 0 goto imm
	BGTZ // if int32(rs) > 0 goto imm
	BLTZ // if int32(rs) < 0 goto imm
	BGEZ // if int32(rs) >= 0 goto imm
	J    // goto imm
	JAL  // ra <- return index; goto imm
	JR   // goto rs
	JALR // rd <- return index; goto rs

	// HiDISC control communication. BCQ is the Computation Stream's
	// mirror of an Access Stream conditional branch: it consumes one
	// outcome token from the control queue and branches iff the token
	// is "taken". JCQ consumes a full target index (mirror of JR).
	BCQ
	JCQ

	// Slip control queue operations (Figure 3 of the paper). GETSCQ is
	// executed by the Access Processor and blocks until the CMAS thread
	// identified by imm has deposited a credit; PUTSCQ is executed by
	// the Cache Management Processor and blocks while the queue is full,
	// bounding the prefetch run-ahead distance.
	GETSCQ
	PUTSCQ

	// PREF prefetches mem[rs+imm] into the data cache hierarchy without
	// touching architectural state. Used by CMAS code for delinquent
	// loads whose value the slice itself does not need.
	PREF

	// OUT and OUTF append rs (integer) / rs (FP) to the machine's
	// output log; used by examples and tests.
	OUT
	OUTF

	// HALT stops the executing processor.
	HALT

	numOps
)

// Class groups operations by the functional unit that executes them.
type Class uint8

// Functional unit classes with SimpleScalar's default latencies.
const (
	ClassNop    Class = iota // zero-latency bookkeeping (NOP, HALT)
	ClassIntALU              // 1 cycle
	ClassIntMul              // 3 cycles
	ClassIntDiv              // 20 cycles
	ClassFPAdd               // 2 cycles: add/sub/compare/convert/move
	ClassFPMul               // 4 cycles
	ClassFPDiv               // 12 cycles
	ClassLoad                // address generation + cache access
	ClassStore               // address generation; data written at commit
	ClassBranch              // 1 cycle, executed on an integer ALU
	ClassQueue               // queue ops: GETSCQ/PUTSCQ/OUT/OUTF
	NumClasses
)

// Fmt describes the assembler operand format of an operation.
type Fmt uint8

// Operand formats.
const (
	FmtNone Fmt = iota // op
	FmtR3              // op rd, rs, rt
	FmtR2I             // op rd, rs, imm
	FmtRI              // op rd, imm
	FmtR2              // op rd, rs
	FmtMemL            // op rd, imm(rs)
	FmtMemS            // op rt, imm(rs)
	FmtB2              // op rs, rt, target
	FmtB1              // op rs, target
	FmtB0              // op target
	FmtR1              // op rs
	FmtI               // op imm (GETSCQ/PUTSCQ)
)

type opInfo struct {
	name    string
	class   Class
	format  Fmt
	load    bool
	store   bool
	branch  bool // conditional branch
	jump    bool // unconditional control transfer
	indir   bool // target comes from a register (JR/JALR) or queue (JCQ)
	readsRs bool
	readsRt bool
	writes  bool // writes Rd
	fp      bool // operates on FP register file
}

var opTable = [numOps]opInfo{
	NOP:  {name: "nop", class: ClassNop, format: FmtNone},
	ADD:  {name: "add", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	SUB:  {name: "sub", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	MUL:  {name: "mul", class: ClassIntMul, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	DIV:  {name: "div", class: ClassIntDiv, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	REM:  {name: "rem", class: ClassIntDiv, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	AND:  {name: "and", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	OR:   {name: "or", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	XOR:  {name: "xor", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	NOR:  {name: "nor", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	SLL:  {name: "sll", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	SRL:  {name: "srl", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	SRA:  {name: "sra", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	SLT:  {name: "slt", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},
	SLTU: {name: "sltu", class: ClassIntALU, format: FmtR3, readsRs: true, readsRt: true, writes: true},

	ADDI: {name: "addi", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	ANDI: {name: "andi", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	ORI:  {name: "ori", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	XORI: {name: "xori", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	SLLI: {name: "slli", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	SRLI: {name: "srli", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	SRAI: {name: "srai", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},
	SLTI: {name: "slti", class: ClassIntALU, format: FmtR2I, readsRs: true, writes: true},

	LI:  {name: "li", class: ClassIntALU, format: FmtRI, writes: true},
	LUI: {name: "lui", class: ClassIntALU, format: FmtRI, writes: true},

	LW:  {name: "lw", class: ClassLoad, format: FmtMemL, load: true, readsRs: true, writes: true},
	LBU: {name: "lbu", class: ClassLoad, format: FmtMemL, load: true, readsRs: true, writes: true},
	SW:  {name: "sw", class: ClassStore, format: FmtMemS, store: true, readsRs: true, readsRt: true},
	SB:  {name: "sb", class: ClassStore, format: FmtMemS, store: true, readsRs: true, readsRt: true},
	LFD: {name: "l.d", class: ClassLoad, format: FmtMemL, load: true, readsRs: true, writes: true, fp: true},
	SFD: {name: "s.d", class: ClassStore, format: FmtMemS, store: true, readsRs: true, readsRt: true, fp: true},

	FADD: {name: "add.d", class: ClassFPAdd, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},
	FSUB: {name: "sub.d", class: ClassFPAdd, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},
	FMUL: {name: "mul.d", class: ClassFPMul, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},
	FDIV: {name: "div.d", class: ClassFPDiv, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},

	FMOV:  {name: "mov.d", class: ClassFPAdd, format: FmtR2, readsRs: true, writes: true, fp: true},
	FNEG:  {name: "neg.d", class: ClassFPAdd, format: FmtR2, readsRs: true, writes: true, fp: true},
	FABS:  {name: "abs.d", class: ClassFPAdd, format: FmtR2, readsRs: true, writes: true, fp: true},
	CVTIF: {name: "cvt.d.w", class: ClassFPAdd, format: FmtR2, readsRs: true, writes: true, fp: true},
	CVTFI: {name: "cvt.w.d", class: ClassFPAdd, format: FmtR2, readsRs: true, writes: true, fp: true},

	FLT: {name: "c.lt.d", class: ClassFPAdd, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},
	FLE: {name: "c.le.d", class: ClassFPAdd, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},
	FEQ: {name: "c.eq.d", class: ClassFPAdd, format: FmtR3, readsRs: true, readsRt: true, writes: true, fp: true},

	BEQ:  {name: "beq", class: ClassBranch, format: FmtB2, branch: true, readsRs: true, readsRt: true},
	BNE:  {name: "bne", class: ClassBranch, format: FmtB2, branch: true, readsRs: true, readsRt: true},
	BLEZ: {name: "blez", class: ClassBranch, format: FmtB1, branch: true, readsRs: true},
	BGTZ: {name: "bgtz", class: ClassBranch, format: FmtB1, branch: true, readsRs: true},
	BLTZ: {name: "bltz", class: ClassBranch, format: FmtB1, branch: true, readsRs: true},
	BGEZ: {name: "bgez", class: ClassBranch, format: FmtB1, branch: true, readsRs: true},
	J:    {name: "j", class: ClassBranch, format: FmtB0, jump: true},
	JAL:  {name: "jal", class: ClassBranch, format: FmtB0, jump: true, writes: true},
	JR:   {name: "jr", class: ClassBranch, format: FmtR1, jump: true, indir: true, readsRs: true},
	JALR: {name: "jalr", class: ClassBranch, format: FmtR2, jump: true, indir: true, readsRs: true, writes: true},

	BCQ: {name: "bcq", class: ClassBranch, format: FmtB0, branch: true},
	JCQ: {name: "jcq", class: ClassBranch, format: FmtNone, jump: true, indir: true},

	GETSCQ: {name: "getscq", class: ClassQueue, format: FmtI},
	PUTSCQ: {name: "putscq", class: ClassQueue, format: FmtI},

	PREF: {name: "pref", class: ClassLoad, format: FmtMemL, readsRs: true},

	OUT:  {name: "out", class: ClassQueue, format: FmtR1, readsRs: true},
	OUTF: {name: "out.d", class: ClassQueue, format: FmtR1, readsRs: true, fp: true},

	HALT: {name: "halt", class: ClassNop, format: FmtNone},
}

// Name returns the assembler mnemonic of the operation.
func (o Op) Name() string { return opTable[o].name }

// Class returns the functional-unit class of the operation.
func (o Op) Class() Class { return opTable[o].class }

// Format returns the assembler operand format of the operation.
func (o Op) Format() Fmt { return opTable[o].format }

// IsLoad reports whether the operation reads data memory.
func (o Op) IsLoad() bool { return opTable[o].load }

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool { return opTable[o].store }

// IsMem reports whether the operation accesses data memory (PREF included).
func (o Op) IsMem() bool { return opTable[o].load || opTable[o].store || o == PREF }

// IsCondBranch reports whether the operation is a conditional branch.
func (o Op) IsCondBranch() bool { return opTable[o].branch }

// IsJump reports whether the operation is an unconditional control transfer.
func (o Op) IsJump() bool { return opTable[o].jump }

// IsControl reports whether the operation changes control flow.
func (o Op) IsControl() bool { return opTable[o].branch || opTable[o].jump }

// IsIndirect reports whether the control target comes from a register or queue.
func (o Op) IsIndirect() bool { return opTable[o].indir }

// IsDirectControl reports whether the operation transfers control to the
// instruction index held in its immediate.
func (o Op) IsDirectControl() bool { return o.IsControl() && !opTable[o].indir }

// ReadsRs reports whether the operation reads its Rs operand.
func (o Op) ReadsRs() bool { return opTable[o].readsRs }

// ReadsRt reports whether the operation reads its Rt operand.
func (o Op) ReadsRt() bool { return opTable[o].readsRt }

// WritesRd reports whether the operation writes its Rd operand.
func (o Op) WritesRd() bool { return opTable[o].writes }

// IsFP reports whether the operation involves the FP register file.
func (o Op) IsFP() bool { return opTable[o].fp }

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return "op?"
}

// OpByName maps an assembler mnemonic to its operation code.
var OpByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(0); op < numOps; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// Latency returns the default execution latency in cycles for a class.
// Load latency covers address generation only; the cache access is
// modelled by the memory hierarchy.
func (c Class) Latency() int {
	switch c {
	case ClassIntMul:
		return 3
	case ClassIntDiv:
		return 20
	case ClassFPAdd:
		return 2
	case ClassFPMul:
		return 4
	case ClassFPDiv:
		return 12
	default:
		return 1
	}
}

// Pipelined reports whether a unit of this class accepts a new operation
// every cycle (true) or is busy for the whole latency (false).
func (c Class) Pipelined() bool {
	switch c {
	case ClassIntDiv, ClassFPDiv:
		return false
	}
	return true
}

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassIntDiv:
		return "int-div"
	case ClassFPAdd:
		return "fp-add"
	case ClassFPMul:
		return "fp-mul"
	case ClassFPDiv:
		return "fp-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassQueue:
		return "queue"
	}
	return "class?"
}
