package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Memory layout conventions shared by the assembler and the simulators.
const (
	// DataBase is the lowest address of the static data segment.
	DataBase uint32 = 0x1000_0000
	// StackTop is the initial stack pointer; the stack grows downward.
	StackTop uint32 = 0x7FFF_FF00
)

// Program is an assembled (or compiler-separated) instruction stream
// plus its static data image. PCs are instruction indices; the entry
// point is index Entry.
type Program struct {
	Name    string
	Insts   []Inst
	Entry   int
	Data    []byte            // initial contents of [DataBase, DataBase+len)
	Symbols map[string]uint32 // data labels -> addresses (debugging)
	Labels  map[string]int    // code labels -> instruction indices (debugging)
}

// Validate checks structural sanity: control targets in range, register
// encodings valid, entry in range. It does not check queue usage (that
// depends on machine configuration).
func (p *Program) Validate() error {
	n := len(p.Insts)
	if n == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("program %q: entry %d out of range [0,%d)", p.Name, p.Entry, n)
	}
	for i, in := range p.Insts {
		if in.Op >= numOps {
			return fmt.Errorf("program %q: inst %d: invalid opcode %d", p.Name, i, in.Op)
		}
		if in.Op.IsDirectControl() {
			t := in.Target()
			if t < 0 || t >= n {
				return fmt.Errorf("program %q: inst %d (%v): target %d out of range", p.Name, i, in, t)
			}
		}
	}
	return nil
}

// LabelAt returns a code label attached to instruction index i, if any.
func (p *Program) LabelAt(i int) (string, bool) {
	for name, idx := range p.Labels {
		if idx == i {
			return name, true
		}
	}
	return "", false
}

// Listing renders a human-readable disassembly listing with labels.
func (p *Program) Listing() string {
	byIdx := make(map[int][]string)
	for name, idx := range p.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	for _, names := range byIdx {
		sort.Strings(names)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "; program %q: %d instructions, %d data bytes, entry %d\n",
		p.Name, len(p.Insts), len(p.Data), p.Entry)
	for i, in := range p.Insts {
		for _, name := range byIdx[i] {
			fmt.Fprintf(&buf, "%s:\n", name)
		}
		fmt.Fprintf(&buf, "%6d: %s\n", i, in)
	}
	return buf.String()
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:  p.Name,
		Entry: p.Entry,
		Insts: append([]Inst(nil), p.Insts...),
		Data:  append([]byte(nil), p.Data...),
	}
	if p.Symbols != nil {
		q.Symbols = make(map[string]uint32, len(p.Symbols))
		for k, v := range p.Symbols {
			q.Symbols[k] = v
		}
	}
	if p.Labels != nil {
		q.Labels = make(map[string]int, len(p.Labels))
		for k, v := range p.Labels {
			q.Labels[k] = v
		}
	}
	return q
}

const binaryMagic = 0x48644953 // "HdIS"

// WriteBinary serialises the program in the toolchain's binary format:
// a header, the encoded instruction words (with annotation fields), and
// the data image. Symbols and labels are included so that the stream
// separator can produce readable reports.
func (p *Program) WriteBinary(w io.Writer) error {
	var buf bytes.Buffer
	le := binary.LittleEndian
	writeU32 := func(v uint32) { _ = binary.Write(&buf, le, v) }
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		buf.WriteString(s)
	}
	writeU32(binaryMagic)
	writeStr(p.Name)
	writeU32(uint32(p.Entry))
	writeU32(uint32(len(p.Insts)))
	for _, in := range p.Insts {
		wd := in.Encode()
		writeU32(wd.Raw)
		writeU32(uint32(wd.Imm))
		writeU32(wd.Ann)
	}
	writeU32(uint32(len(p.Data)))
	buf.Write(p.Data)
	writeU32(uint32(len(p.Symbols)))
	for _, name := range sortedKeys(p.Symbols) {
		writeStr(name)
		writeU32(p.Symbols[name])
	}
	writeU32(uint32(len(p.Labels)))
	for _, name := range sortedKeysInt(p.Labels) {
		writeStr(name)
		writeU32(uint32(p.Labels[name]))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadBinary deserialises a program written by WriteBinary.
func ReadBinary(r io.Reader) (*Program, error) {
	all, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	b := bytes.NewReader(all)
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(b, le, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(b, s); err != nil {
			return "", err
		}
		return string(s), nil
	}
	magic, err := readU32()
	if err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("isa: bad magic %#x", magic)
	}
	p := &Program{}
	if p.Name, err = readStr(); err != nil {
		return nil, err
	}
	entry, err := readU32()
	if err != nil {
		return nil, err
	}
	p.Entry = int(entry)
	nInsts, err := readU32()
	if err != nil {
		return nil, err
	}
	p.Insts = make([]Inst, nInsts)
	for i := range p.Insts {
		raw, err := readU32()
		if err != nil {
			return nil, err
		}
		imm, err := readU32()
		if err != nil {
			return nil, err
		}
		ann, err := readU32()
		if err != nil {
			return nil, err
		}
		in, err := Decode(Word{Raw: raw, Imm: int32(imm), Ann: ann})
		if err != nil {
			return nil, fmt.Errorf("isa: inst %d: %w", i, err)
		}
		p.Insts[i] = in
	}
	nData, err := readU32()
	if err != nil {
		return nil, err
	}
	p.Data = make([]byte, nData)
	if _, err := io.ReadFull(b, p.Data); err != nil {
		return nil, err
	}
	nSyms, err := readU32()
	if err != nil {
		return nil, err
	}
	p.Symbols = make(map[string]uint32, nSyms)
	for i := uint32(0); i < nSyms; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		addr, err := readU32()
		if err != nil {
			return nil, err
		}
		p.Symbols[name] = addr
	}
	nLabels, err := readU32()
	if err != nil {
		return nil, err
	}
	p.Labels = make(map[string]int, nLabels)
	for i := uint32(0); i < nLabels; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		idx, err := readU32()
		if err != nil {
			return nil, err
		}
		p.Labels[name] = int(idx)
	}
	return p, p.Validate()
}

func sortedKeys(m map[string]uint32) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysInt(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
