package machine

import (
	"errors"
	"strings"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/simfault"
	"hidisc/internal/slicer"
)

// kernels exercised across every architecture. Sizes are kept small so
// the full matrix stays fast; the workloads package holds the real
// benchmark-scale kernels.
var kernels = map[string]string{
	"convolution": `
        .data
x:      .space 512
h:      .space 512
y:      .space 8
        .text
main:   li   $r1, 64
        la   $r2, x
        la   $r3, h
        li   $r4, 0
init:   addi $r5, $r4, 1
        cvt.d.w $f1, $r5
        s.d  $f1, 0($r2)
        addi $r6, $r4, 3
        cvt.d.w $f2, $r6
        s.d  $f2, 0($r3)
        addi $r2, $r2, 8
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        bne  $r4, $r1, init
        la   $r2, x
        la   $r3, h
        li   $r4, 0
        sub.d $f10, $f10, $f10
loop:   l.d  $f1, 0($r2)
        l.d  $f2, 0($r3)
        mul.d $f3, $f1, $f2
        add.d $f10, $f10, $f3
        addi $r2, $r2, 8
        addi $r3, $r3, 8
        addi $r4, $r4, 1
        bne  $r4, $r1, loop
        la   $r5, y
        s.d  $f10, 0($r5)
        out.d $f10
        halt
`,
	"chase": `
        .data
nodes:  .space 65536         ; 2048 nodes of 32 bytes
        .text
main:   la   $r2, nodes
        li   $r1, 2048
        li   $r5, 1
        li   $r8, 0
build:  slli $r6, $r8, 2
        add  $r6, $r6, $r8
        addi $r6, $r6, 13
        andi $r3, $r6, 2047
        slli $r4, $r3, 5
        la   $r7, nodes
        add  $r4, $r7, $r4
        sw   $r4, 0($r2)
        sw   $r5, 4($r2)
        addi $r5, $r5, 1
        addi $r8, $r8, 1
        addi $r2, $r2, 32
        addi $r1, $r1, -1
        bgtz $r1, build
        la   $r2, nodes
        li   $r6, 0
        li   $r1, 4096
chase:  lw   $r4, 4($r2)
        add  $r6, $r6, $r4
        lw   $r2, 0($r2)
        addi $r1, $r1, -1
        bgtz $r1, chase
        out  $r6
        halt
`,
	"randprobe": `
        .data
table:  .space 262144        ; 64K words, twice the L1
        .text
main:   li   $r5, 777
        li   $r16, 0
        li   $r1, 3000
loop:   li   $r6, 1103515245
        mul  $r5, $r5, $r6
        addi $r5, $r5, 12345
        srli $r7, $r5, 8
        andi $r7, $r7, 65535
        slli $r7, $r7, 2
        la   $r9, table
        add  $r9, $r9, $r7
        lw   $r10, 0($r9)
        add  $r16, $r16, $r10
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r16
        halt
`,
	"branchy": `
        .data
buf:    .space 512
        .text
main:   li   $r1, 128
        li   $r2, 0
        li   $r3, 0
        la   $r7, buf
loop:   andi $r4, $r1, 1
        beq  $r4, $r0, even
        add  $r3, $r3, $r1
        j    next
even:   add  $r2, $r2, $r1
next:   sw   $r3, 0($r7)
        addi $r7, $r7, 4
        addi $r1, $r1, -1
        bgtz $r1, loop
        out  $r2
        out  $r3
        halt
`,
	"calls": `
main:   li   $r4, 10
        jal  f
        out  $r2
        li   $r4, 3
        jal  f
        out  $r2
        halt
f:      mul  $r2, $r4, $r4
        addi $r2, $r2, 7
        jr   $ra
`,
}

func compileKernel(t *testing.T, name string, withProfile bool) *slicer.Bundle {
	t.Helper()
	p, err := asm.Assemble(name, kernels[name])
	if err != nil {
		t.Fatal(err)
	}
	opts := slicer.Options{}
	if withProfile {
		prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		opts.Profile = prof
		opts.MinMisses = 32
	}
	b, err := slicer.Separate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAllArchitecturesMatchReference is the central correctness gate:
// every configuration must produce the reference memory image and
// output for every kernel.
func TestAllArchitecturesMatchReference(t *testing.T) {
	for name := range kernels {
		name := name
		t.Run(name, func(t *testing.T) {
			p := mustAssemble(t, name, kernels[name])
			want, err := fnsim.RunProgram(p, 100_000_000)
			if err != nil {
				t.Fatal(err)
			}
			b := compileKernel(t, name, true)
			for _, arch := range Arches {
				res, err := RunArch(b, arch, mem.DefaultHierConfig())
				if err != nil {
					t.Fatalf("%s: %v", arch, err)
				}
				if res.MemHash != want.MemHash {
					t.Errorf("%s: memory image differs from reference", arch)
				}
				if len(res.Output) != len(want.Output) {
					t.Fatalf("%s: output %v, want %v", arch, res.Output, want.Output)
				}
				for i := range want.Output {
					if res.Output[i] != want.Output[i] {
						t.Errorf("%s: output[%d] = %q, want %q", arch, i, res.Output[i], want.Output[i])
					}
				}
				if res.Cycles <= 0 {
					t.Errorf("%s: cycles = %d", arch, res.Cycles)
				}
			}
		})
	}
}

func TestDeterministicCycles(t *testing.T) {
	b := compileKernel(t, "chase", true)
	for _, arch := range Arches {
		r1, err := RunArch(b, arch, mem.DefaultHierConfig())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunArch(b, arch, mem.DefaultHierConfig())
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles {
			t.Errorf("%s: cycles %d then %d (non-deterministic)", arch, r1.Cycles, r2.Cycles)
		}
	}
}

func TestHiDISCPrefetches(t *testing.T) {
	b := compileKernel(t, "randprobe", true)
	if len(b.CMAS) == 0 {
		t.Fatal("randprobe kernel produced no CMAS")
	}
	res, err := RunArch(b, HiDISC, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CMP.Forks == 0 {
		t.Error("CMP never forked")
	}
	if res.CMP.Prefetches == 0 {
		t.Error("CMP issued no prefetches")
	}
	if res.Hier.PrefetchIssued == 0 {
		t.Error("hierarchy saw no prefetches")
	}
}

func TestCMPReducesChaseMisses(t *testing.T) {
	// Pseudo-random probe indices are arithmetically predictable, so
	// the CMAS runs ahead and removes the misses. (A purely serial
	// pointer chase is unprefetchable by any run-ahead scheme: the
	// slice's per-hop latency equals the demand stream's.)
	b := compileKernel(t, "randprobe", true)
	base, err := RunArch(b, Superscalar, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	hd, err := RunArch(b, HiDISC, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hd.Hier.L1D.DemandMisses >= base.Hier.L1D.DemandMisses {
		t.Errorf("HiDISC demand misses %d >= baseline %d",
			hd.Hier.L1D.DemandMisses, base.Hier.L1D.DemandMisses)
	}
}

func TestDecoupledQueuesCarryTraffic(t *testing.T) {
	b := compileKernel(t, "convolution", false)
	res, err := RunArch(b, CPAP, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.LDQ.Pushes == 0 {
		t.Error("no LDQ traffic in decoupled run")
	}
	if res.SDQ.Pushes == 0 {
		t.Error("no SDQ traffic in decoupled run")
	}
	if res.CQ.Pushes == 0 {
		t.Error("no control queue traffic in decoupled run")
	}
	// Net claims (claims minus squash rewinds) pair 1:1 with pushes.
	if res.LDQ.Pushes != res.LDQ.Claims-res.LDQ.Unclaims {
		t.Errorf("LDQ pushes %d != net claims %d", res.LDQ.Pushes, res.LDQ.Claims-res.LDQ.Unclaims)
	}
}

func TestSuperscalarStatsSane(t *testing.T) {
	b := compileKernel(t, "branchy", false)
	res, err := RunArch(b, Superscalar, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Cores["core"]
	if s.Committed == 0 || s.CommittedBranch == 0 || s.CommittedStores == 0 {
		t.Errorf("stats: %+v", s)
	}
	// Committed must match the functional dynamic instruction count.
	p := mustAssemble(t, "branchy", kernels["branchy"])
	want, err := fnsim.RunProgram(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Committed != want.Insts {
		t.Errorf("committed %d, want %d", s.Committed, want.Insts)
	}
	if res.Committed() != s.Committed {
		t.Errorf("Result.Committed() = %d", res.Committed())
	}
}

func TestLatencySweepMonotonicBaseline(t *testing.T) {
	// Longer memory latency must never speed up the superscalar.
	b := compileKernel(t, "chase", true)
	var prev int64
	for _, lat := range []struct{ l2, mem int }{{4, 40}, {8, 80}, {16, 160}} {
		res, err := RunArch(b, Superscalar, mem.DefaultHierConfig().WithLatencies(lat.l2, lat.mem))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles < prev {
			t.Errorf("latency %d/%d: cycles %d < previous %d", lat.l2, lat.mem, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestUnknownArchRejected(t *testing.T) {
	b := compileKernel(t, "calls", false)
	cfg := DefaultConfig("nonsense")
	if _, err := New(b, cfg); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestCPHasNoMemoryTraffic(t *testing.T) {
	// In the decoupled modes every data access goes through the AP: the
	// demand access count must match a superscalar run of the same
	// program's memory operations (modulo prefetches, which are absent
	// in CP+AP).
	b := compileKernel(t, "convolution", false)
	res, err := RunArch(b, CPAP, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	ap := res.Cores["ap"]
	cp := res.Cores["cp"]
	if ap.CommittedLoads == 0 || ap.CommittedStores == 0 {
		t.Errorf("AP stats: %+v", ap)
	}
	if cp.CommittedLoads != 0 || cp.CommittedStores != 0 {
		t.Errorf("CP executed memory operations: %+v", cp)
	}
}

func TestWatchdogTripsOnStarvedQueue(t *testing.T) {
	// A hand-built bundle whose CS pops a value the AS never pushes
	// must trip the watchdog rather than hang.
	cs := mustAssemble(t, "cs", `
main:   add $r1, $LDQ, $r0
        halt
`)
	as := mustAssemble(t, "as", `
main:   halt
`)
	b := &slicer.Bundle{
		Name: "starved",
		Seq:  as,
		CS:   cs,
		AS:   as,
	}
	cfg := DefaultConfig(CPAP)
	cfg.WatchdogCycles = 2000
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil {
		t.Fatal("starved queue did not trip the watchdog")
	}
	var dl *simfault.DeadlockFault
	if !errors.As(err, &dl) {
		t.Fatalf("watchdog returned %T (%v), want *simfault.DeadlockFault", err, err)
	}
	if q, ok := dl.Queue("ldq"); !ok || !q.Empty() || q.Pushes != 0 {
		t.Errorf("ldq state at deadlock = %+v, %v; want present, empty, unpushed", q, ok)
	}
	if dl.Snapshot == nil {
		t.Fatal("DeadlockFault carries no snapshot")
	}
	// The forensics must name the blocked consumer: the CP's head is the
	// LDQ pop, stuck on a queue operand whose value was never pushed.
	var cp *simfault.CoreState
	for i := range dl.Snapshot.Cores {
		if dl.Snapshot.Cores[i].Name == "cp" {
			cp = &dl.Snapshot.Cores[i]
		}
	}
	if cp == nil || cp.Head == nil {
		t.Fatalf("snapshot has no CP head: %+v", dl.Snapshot.Cores)
	}
	if !strings.Contains(cp.Head.Inst, "$LDQ") {
		t.Errorf("CP head inst = %q, want the $LDQ pop", cp.Head.Inst)
	}
	blocked := false
	for _, s := range cp.Head.Sources {
		if s.Queue == "ldq" && !s.QueueReady {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("CP head sources %+v do not show the unsatisfied ldq claim", cp.Head.Sources)
	}
}

func TestIPCWithinPhysicalBounds(t *testing.T) {
	b := compileKernel(t, "convolution", false)
	p := mustAssemble(t, "convolution", kernels["convolution"])
	ref, err := fnsim.RunProgram(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArch(b, Superscalar, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	ipc := float64(ref.Insts) / float64(res.Cycles)
	if ipc <= 0 || ipc > 8 {
		t.Errorf("IPC %.2f outside (0, 8]", ipc)
	}
}

var _ = isa.NOP // keep the import for kernel edits

// TestRegressionCommitReleasePushOrdering pins the double-push bug
// found by differential testing: when the commit stage pushed an
// entry's queue values (because the release list was blocked on queue
// space), the release list later pushed them a second time, corrupting
// the FIFO pairing and deadlocking the consumer. The program below is
// the delta-minimized reproducer.
func TestRegressionCommitReleasePushOrdering(t *testing.T) {
	src := `
        .data
arena:  .space 2048
        .text
main:   li   $r20, 12
L1:     li   $r21, 4
L2:     andi $r10, $r10, 1023
        cvt.d.w $f6, $r10
        mul.d $f6, $f6, $f6
        add.d $f10, $f10, $f6
        sub  $r15, $r11, $r11
        andi $r8, $r15, 2044
        sw   $r11, 0($r8)
        addi $r21, $r21, -1
        bgtz $r21, L2
        addi $r20, $r20, -1
        bgtz $r20, L1
        beq  $r10, $r0, L4
L4:     addi $r13, $r15, 5
        out.d $f10
        halt
`
	p := mustAssemble(t, "regress", src)
	ref, err := fnsim.RunProgram(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := slicer.Separate(p, slicer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunArch(b, CPAP, mem.DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemHash != ref.MemHash || res.Output[0] != ref.Output[0] {
		t.Error("minimized reproducer diverged again")
	}
}

// TestDynamicDistanceEndToEnd runs NB under HiDISC with the runtime
// prefetch-distance controller and checks that results stay correct
// while the controller actually engages.
func TestDynamicDistanceEndToEnd(t *testing.T) {
	b := compileKernel(t, "randprobe", true)
	cfg := DefaultConfig(HiDISC)
	cfg.CMP.DynamicDistance = true
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := mustAssemble(t, "randprobe", kernels["randprobe"])
	ref, err := fnsim.RunProgram(p, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemHash != ref.MemHash {
		t.Error("dynamic distance changed architectural results")
	}
}

// mustAssemble assembles fixed test source, failing the test on error.
func mustAssemble(tb testing.TB, name, src string) *isa.Program {
	tb.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		tb.Fatalf("assemble %s: %v", name, err)
	}
	return p
}
