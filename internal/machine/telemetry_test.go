package machine

// The telemetry layer's core guarantee: attaching a sampler and a full
// trace sink must not change the simulation in any observable way. The
// instrumented Result must be bit-identical to the plain run — with and
// without the idle-cycle fast-forward — and the timeline must honour
// the rows == ceil(cycles/interval) contract.

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"testing"

	"hidisc/internal/cpu"
	"hidisc/internal/telemetry"
)

// runInstrumented runs a kernel with a sampler and trace attached and
// returns the result plus the telemetry artefacts.
func runInstrumented(t *testing.T, name string, arch Arch, noSkip bool, interval int64) (Result, *telemetry.Timeline, *bytes.Buffer) {
	t.Helper()
	withProfile := arch == CPCMP || arch == HiDISC
	b := compileKernel(t, name, withProfile)
	cfg := DefaultConfig(arch)
	cfg.NoSkip = noSkip
	cfg.Sampler = telemetry.NewSampler(interval)
	var buf bytes.Buffer
	tw := telemetry.NewTraceWriter(&buf, telemetry.FormatPerfetto)
	cfg.Trace = tw.Session(name + "/" + string(arch))
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s/%s: %v", name, arch, err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return res, cfg.Sampler.Timeline(), &buf
}

// runPlain is the uninstrumented reference.
func runPlain(t *testing.T, name string, arch Arch, noSkip bool) Result {
	t.Helper()
	withProfile := arch == CPCMP || arch == HiDISC
	b := compileKernel(t, name, withProfile)
	cfg := DefaultConfig(arch)
	cfg.NoSkip = noSkip
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s/%s: %v", name, arch, err)
	}
	return res
}

// TestTelemetryDoesNotPerturbResult is the determinism pin at machine
// granularity: every kernel × architecture, instrumented vs plain,
// under both loop modes.
func TestTelemetryDoesNotPerturbResult(t *testing.T) {
	for name := range kernels {
		for _, arch := range Arches {
			for _, noSkip := range []bool{false, true} {
				res, _, _ := runInstrumented(t, name, arch, noSkip, 512)
				ref := runPlain(t, name, arch, noSkip)
				if !reflect.DeepEqual(res, ref) {
					t.Errorf("%s/%s noSkip=%v: instrumented Result differs\nwith:    %+v\nwithout: %+v",
						name, arch, noSkip, res, ref)
				}
			}
		}
	}
}

// TestTimelineRowContract checks rows == ceil(cycles/interval), the
// boundary placement, and that per-core committed deltas sum back to
// the Result totals — under both loop modes, so the skip clamp provably
// visits every interval edge.
func TestTimelineRowContract(t *testing.T) {
	const interval = 256
	for _, noSkip := range []bool{false, true} {
		res, tl, _ := runInstrumented(t, "convolution", HiDISC, noSkip, interval)
		want := int((res.Cycles + interval - 1) / interval)
		if tl.Rows() != want {
			t.Fatalf("noSkip=%v: rows = %d, want ceil(%d/%d) = %d", noSkip, tl.Rows(), res.Cycles, interval, want)
		}
		for i := 0; i < tl.Rows()-1; i++ {
			if tl.Cycle[i] != int64(i+1)*interval {
				t.Errorf("noSkip=%v: row %d at cycle %d, want %d", noSkip, i, tl.Cycle[i], (i+1)*interval)
			}
		}
		if tl.Cycle[tl.Rows()-1] != res.Cycles {
			t.Errorf("noSkip=%v: final row at %d, want run end %d", noSkip, tl.Cycle[tl.Rows()-1], res.Cycles)
		}
		if len(tl.Cores) != len(res.Cores) {
			t.Fatalf("timeline has %d cores, result has %d", len(tl.Cores), len(res.Cores))
		}
		for c, name := range tl.Cores {
			var sum uint64
			for _, d := range tl.CoreCommitted[c] {
				sum += d
			}
			if sum != res.Cores[name].Committed {
				t.Errorf("noSkip=%v: core %s committed deltas sum to %d, result says %d",
					noSkip, name, sum, res.Cores[name].Committed)
			}
		}
	}
}

// TestTimelineIdenticalAcrossSkipModes: the sampler must read the same
// state at every boundary whether the machine ticked or fast-forwarded
// its way there.
func TestTimelineIdenticalAcrossSkipModes(t *testing.T) {
	_, fast, _ := runInstrumented(t, "chase", CPAP, false, 128)
	_, slow, _ := runInstrumented(t, "chase", CPAP, true, 128)
	if !reflect.DeepEqual(fast, slow) {
		t.Error("timeline differs between skip and no-skip runs")
	}
}

// TestMachineTraceIsValidPerfetto: a real machine run produces a
// loadable Chrome trace-event file with pipeline slices from every
// core and queue counter tracks.
func TestMachineTraceIsValidPerfetto(t *testing.T) {
	_, _, buf := runInstrumented(t, "convolution", CPAP, false, 1024)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("machine trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("machine run emitted no trace events")
	}
	slices, counters := 0, 0
	tracks := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "C":
			counters++
		case "M":
			if ev["name"] == "thread_name" {
				if a, ok := ev["args"].(map[string]any); ok {
					if n, ok := a["name"].(string); ok {
						tracks[n] = true
					}
				}
			}
		}
	}
	if slices == 0 || counters == 0 {
		t.Errorf("trace has %d slices and %d counter samples; want both > 0", slices, counters)
	}
	for _, want := range []string{"cp", "ap"} {
		if !tracks[want] {
			t.Errorf("no %q pipeline track (tracks: %v)", want, tracks)
		}
	}
}

// TestExplicitTracerWins: a core tracer set in the config (hidisc-sim's
// text trace) must not be displaced by the machine-wide sink.
func TestExplicitTracerWins(t *testing.T) {
	b := compileKernel(t, "branchy", false)
	cfg := DefaultConfig(Superscalar)
	var text bytes.Buffer
	tt := &textTracerStub{w: &text}
	cfg.Wide.Tracer = tt
	tw := telemetry.NewTraceWriter(io.Discard, telemetry.FormatNDJSON)
	cfg.Trace = tw.Session("x")
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tt.events == 0 {
		t.Error("explicitly configured tracer received no events")
	}
}

type textTracerStub struct {
	w      io.Writer
	events int
}

func (s *textTracerStub) Event(cpu.TraceEvent) { s.events++ }
