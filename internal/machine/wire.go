package machine

import (
	"encoding/json"
	"fmt"
	"strings"
)

// This file pins the wire encoding of Arch. The four architecture
// names are part of the public surface — they appear in CLI flags,
// fault snapshots (-dump-on-fault), and the hidisc-serve JSON API —
// so (de)serialization is explicit and validating rather than a bare
// string cast: an unknown name fails loudly at the boundary instead
// of surfacing later as "unknown architecture" from machine.New.

// ParseArch resolves an architecture name (case-insensitive) to one of
// the four evaluated models. The empty string is rejected; use a
// default at the call site when absence is meaningful.
func ParseArch(s string) (Arch, error) {
	for _, a := range Arches {
		if strings.EqualFold(s, string(a)) {
			return a, nil
		}
	}
	return "", fmt.Errorf("unknown architecture %q (want one of %s)", s, strings.Join(ArchNames(), ", "))
}

// ArchNames returns the canonical wire names of the four models in
// presentation order.
func ArchNames() []string {
	names := make([]string, len(Arches))
	for i, a := range Arches {
		names[i] = string(a)
	}
	return names
}

// MarshalJSON encodes the architecture as its canonical name,
// rejecting values that are not one of the four models so a corrupt
// Arch can never round-trip silently.
func (a Arch) MarshalJSON() ([]byte, error) {
	if _, err := ParseArch(string(a)); err != nil {
		return nil, fmt.Errorf("machine.Arch: %w", err)
	}
	return json.Marshal(string(a))
}

// UnmarshalJSON decodes and validates an architecture name.
func (a *Arch) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("machine.Arch: %w", err)
	}
	parsed, err := ParseArch(s)
	if err != nil {
		return fmt.Errorf("machine.Arch: %w", err)
	}
	*a = parsed
	return nil
}
