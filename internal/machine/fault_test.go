package machine

// Fault-injection drills: each test perturbs a healthy machine with a
// deterministic simfault.Injector (or an adversarial context) and
// asserts the typed fault comes back with usable forensics.

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"hidisc/internal/simfault"
)

// runInjected builds and runs the convolution kernel on the given
// architecture with an injector attached.
func runInjected(t *testing.T, arch Arch, inj *simfault.Injector, watchdog int64) (Result, error) {
	t.Helper()
	b := compileKernel(t, "convolution", false)
	cfg := DefaultConfig(arch)
	cfg.Inject = inj
	if watchdog > 0 {
		cfg.WatchdogCycles = watchdog
	}
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestInjectedCachePortStallDeadlocks(t *testing.T) {
	// Holding every AP cache port busy forever starves its loads; no
	// load completes, nothing commits, and the watchdog must convert
	// the wedge into a structured DeadlockFault.
	inj := simfault.NewInjector(1, simfault.Action{
		Kind: simfault.ActStallCachePort, Core: "ap", At: 100,
	})
	_, err := runInjected(t, CPAP, inj, 1500)
	if err == nil {
		t.Fatal("stalled cache ports did not deadlock the machine")
	}
	var dl *simfault.DeadlockFault
	if !errors.As(err, &dl) {
		t.Fatalf("got %T (%v), want *simfault.DeadlockFault", err, err)
	}
	if dl.StallCycles < 1500 {
		t.Errorf("StallCycles = %d, want >= watchdog interval", dl.StallCycles)
	}
	if dl.Snapshot == nil || len(dl.Snapshot.Cores) == 0 {
		t.Fatal("DeadlockFault snapshot is empty")
	}
	if k, ok := simfault.KindOf(err); !ok || k != simfault.KindDeadlock {
		t.Errorf("KindOf = %q, %v", k, ok)
	}
}

func TestInjectedPanicIsContained(t *testing.T) {
	inj := simfault.NewInjector(1, simfault.Action{
		Kind: simfault.ActPanic, At: 10,
	})
	_, err := runInjected(t, Superscalar, inj, 0)
	if err == nil {
		t.Fatal("injected panic did not surface")
	}
	var inv *simfault.InvariantFault
	if !errors.As(err, &inv) {
		t.Fatalf("got %T (%v), want *simfault.InvariantFault", err, err)
	}
	if inv.Stack == "" {
		t.Error("recovered panic carries no stack")
	}
	if inv.Snapshot == nil || inv.Snapshot.Cycle != 10 {
		t.Errorf("snapshot = %+v, want cycle 10", inv.Snapshot)
	}
}

func TestInjectedMispredictStormIsDeterministicAndCorrect(t *testing.T) {
	// A mispredict storm slows the machine down but must not change
	// what it computes, and the same seed must reproduce the same run.
	clean, err := runInjected(t, Superscalar, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	storm := func() Result {
		inj := simfault.NewInjector(7, simfault.Action{
			Kind: simfault.ActMispredictStorm, Core: "core",
			At: 0, Until: 100_000, Probability: 0.7,
		})
		res, err := runInjected(t, Superscalar, inj, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	s1, s2 := storm(), storm()
	if s1.Cycles != s2.Cycles || !reflect.DeepEqual(s1.Cores, s2.Cores) {
		t.Errorf("same seed, different runs: %d vs %d cycles", s1.Cycles, s2.Cycles)
	}
	if !reflect.DeepEqual(s1.Output, clean.Output) || s1.MemHash != clean.MemHash {
		t.Error("mispredict storm changed architectural results")
	}
	if s1.Cycles <= clean.Cycles {
		t.Errorf("storm run took %d cycles, clean %d; expected a slowdown", s1.Cycles, clean.Cycles)
	}
}

func TestInjectedQueueCloseBreaksOutput(t *testing.T) {
	// Closing the LDQ mid-run models a silently dying producer: the CP
	// reads zeros from then on. The machine itself completes (closed
	// queues never block), so the corruption must be caught by output
	// verification downstream — here we just pin the mechanism.
	clean, err := runInjected(t, CPAP, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj := simfault.NewInjector(1, simfault.Action{
		Kind: simfault.ActCloseQueue, Queue: "ldq", At: 50,
	})
	res, err := runInjected(t, CPAP, inj, 0)
	if err != nil {
		// Acceptable alternative: the desync wedges the pair instead.
		if _, ok := simfault.KindOf(err); !ok {
			t.Fatalf("close-queue produced an untyped error: %v", err)
		}
		return
	}
	if reflect.DeepEqual(res.Output, clean.Output) && res.MemHash == clean.MemHash {
		t.Error("closing the LDQ changed nothing observable")
	}
}

func TestInjectedCreditDropFaults(t *testing.T) {
	// Stealing one pushed LDQ entry desynchronises the FIFO pairing:
	// the CP waits for a push that was consumed behind its back. The
	// run must end in a typed fault (deadlock) or corrupt output —
	// never a hang or a panic.
	inj := simfault.NewInjector(1, simfault.Action{
		Kind: simfault.ActDropCredit, Queue: "ldq", At: 200, Count: 1,
	})
	clean, err := runInjected(t, CPAP, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runInjected(t, CPAP, inj, 2000)
	if err != nil {
		if _, ok := simfault.KindOf(err); !ok {
			t.Fatalf("credit drop produced an untyped error: %v", err)
		}
		return
	}
	if reflect.DeepEqual(res.Output, clean.Output) && res.MemHash == clean.MemHash {
		t.Error("dropped credit changed nothing observable")
	}
}

func TestRunContextCancellation(t *testing.T) {
	b := compileKernel(t, "convolution", false)
	m, err := New(b, DefaultConfig(Superscalar))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.RunContext(ctx)
	var to *simfault.TimeoutFault
	if !errors.As(err, &to) {
		t.Fatalf("got %T (%v), want *simfault.TimeoutFault", err, err)
	}
	if to.Cause != context.Canceled.Error() {
		t.Errorf("Cause = %q", to.Cause)
	}
	if to.Snapshot == nil {
		t.Error("TimeoutFault carries no snapshot")
	}
}

func TestCycleLimitFault(t *testing.T) {
	b := compileKernel(t, "convolution", false)
	cfg := DefaultConfig(Superscalar)
	cfg.MaxCycles = 64
	m, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var cl *simfault.CycleLimitFault
	if !errors.As(err, &cl) {
		t.Fatalf("got %T (%v), want *simfault.CycleLimitFault", err, err)
	}
	if cl.Limit != 64 || cl.Snapshot == nil {
		t.Errorf("fault = %+v", cl)
	}
}

func TestMachineFaultSnapshotRoundTripsJSON(t *testing.T) {
	inj := simfault.NewInjector(1, simfault.Action{
		Kind: simfault.ActStallCachePort, Core: "ap", At: 100,
	})
	_, err := runInjected(t, HiDISC, inj, 1500)
	snap := simfault.SnapshotOf(err)
	if snap == nil {
		t.Fatalf("no snapshot on %v", err)
	}
	data, jerr := json.Marshal(snap)
	if jerr != nil {
		t.Fatal(jerr)
	}
	var got simfault.Snapshot
	if jerr := json.Unmarshal(data, &got); jerr != nil {
		t.Fatal(jerr)
	}
	if !reflect.DeepEqual(&got, snap) {
		t.Error("machine snapshot does not round-trip through encoding/json")
	}
	if got.Arch != string(HiDISC) || len(got.Cores) == 0 || len(got.Queues) == 0 || got.Hier == nil {
		t.Errorf("snapshot missing sections: %+v", got)
	}
}

func TestInjectorOffCostsNothingObservable(t *testing.T) {
	// A nil injector and an injector whose actions never fire must both
	// reproduce the clean run exactly.
	clean, err := runInjected(t, CPAP, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	idle := simfault.NewInjector(9, simfault.Action{
		Kind: simfault.ActPanic, At: 1 << 40,
	})
	res, err := runInjected(t, CPAP, idle, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != clean.Cycles || res.MemHash != clean.MemHash {
		t.Error("idle injector perturbed the simulation")
	}
}
