// Package machine assembles the four simulated architectures the paper
// evaluates (Section 5.3) from the cpu, mem and queue building blocks:
//
//   - Superscalar: the 8-issue out-of-order baseline (sim-outorder).
//   - CP+AP: a conventional access/execute decoupled pair connected by
//     the LDQ, SDQ and control queue.
//   - CP+CMP: a superscalar running the single annotated stream with a
//     Cache Management Processor executing triggered CMAS threads
//     (speculative precomputation / DDMT style).
//   - HiDISC: all three processors.
//
// A Machine owns the shared memory image and cache hierarchy, steps
// every processor cycle by cycle, and reports the statistics the
// benchmark harness turns into the paper's tables and figures.
package machine

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"

	"hidisc/internal/cpu"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
	"hidisc/internal/simfault"
	"hidisc/internal/slicer"
	"hidisc/internal/telemetry"
)

// Arch selects one of the four evaluated architectures.
type Arch string

// The architecture models of Section 5.3.
const (
	Superscalar Arch = "superscalar"
	CPAP        Arch = "cp+ap"
	CPCMP       Arch = "cp+cmp"
	HiDISC      Arch = "hidisc"
)

// Arches lists all four models in the paper's presentation order.
var Arches = []Arch{Superscalar, CPAP, CPCMP, HiDISC}

// Config parameterises a machine. DefaultConfig reproduces Table 1.
type Config struct {
	Arch Arch
	Hier mem.HierConfig

	Wide cpu.Config // the superscalar / CP+CMP main core
	CP   cpu.Config // computation processor (decoupled modes)
	AP   cpu.Config // access processor (decoupled modes)
	CMP  cpu.CMPConfig

	LDQCap int
	SDQCap int
	CQCap  int
	SCQCap int // slip-control credit depth = CMAS run-ahead bound

	MaxCycles      int64
	WatchdogCycles int64

	// Inject is an optional deterministic fault injector. When nil (the
	// default) the cycle loop pays exactly one pointer check per cycle.
	// An Injector must not be shared between concurrently running
	// machines (its storm PRNG mutates).
	Inject *simfault.Injector

	// NoSkip disables the event-driven fast-forward and ticks every
	// cycle. Results are bit-identical either way (the differential
	// tests pin this); the flag is the escape hatch and the reference
	// semantics the skipper is checked against.
	NoSkip bool

	// Sampler, when non-nil, records interval time series over the run.
	// The machine clocks it like any other component: its next boundary
	// clamps the idle-cycle fast-forward so every interval edge is
	// visited, and sampling at the top of the loop reads exactly the
	// state a no-skip run would have there — Result stays bit-identical
	// (pinned by the telemetry differential tests). Nil costs one
	// pointer check per visited cycle.
	Sampler *telemetry.Sampler

	// Trace, when non-nil, receives every pipeline, queue and memory
	// event: the machine wires it as each core's Tracer (unless the core
	// config already has one), as every queue's Probe, and as the
	// hierarchy's Probe. Pure observer; nil keeps all hooks at a single
	// pointer check (pinned by the AllocsPerRun tests).
	Trace *telemetry.Trace
}

// DefaultConfig returns the paper's Table 1 parameters for the given
// architecture: 8-wide cores, a 64-entry window (16 for the CP),
// 32-entry load/store queues, bimodal 2048 prediction, 4 integer ALUs,
// multiply/divide units, 2 cache ports per memory-facing processor,
// and the default cache hierarchy.
func DefaultConfig(arch Arch) Config {
	return Config{
		Arch: arch,
		Hier: mem.DefaultHierConfig(),
		Wide: cpu.Config{
			Name: "core", WindowSize: 64, HasMem: true,
		},
		CP: cpu.Config{
			Name: "cp", WindowSize: 16, HasMem: false,
		},
		AP: cpu.Config{
			Name: "ap", WindowSize: 64, HasMem: true,
			// The AP has integer and load/store units only; one FP
			// mover handles queue pops of FP values.
			FPALU: 1, FPMulDv: 1,
		},
		CMP:    cpu.CMPConfig{},
		LDQCap: 32,
		SDQCap: 32,
		CQCap:  64,
		SCQCap: 32,

		MaxCycles:      2_000_000_000,
		WatchdogCycles: 100_000,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Arch    Arch
	Cycles  int64
	Output  []string
	MemHash uint64

	Cores map[string]cpu.Stats
	CMP   cpu.CMPStats
	Hier  mem.HierStats

	LDQ, SDQ, CQ queue.Stats
}

// Committed returns the total committed instructions across cores.
func (r Result) Committed() uint64 {
	var n uint64
	for _, s := range r.Cores {
		n += s.Committed
	}
	return n
}

// Machine is one configured simulation instance.
type Machine struct {
	cfg    Config
	bundle *slicer.Bundle

	mem  *mem.Memory
	hier *mem.Hierarchy

	cores []*cpu.Core
	cmp   *cpu.CMPEngine

	ldq, sdq, cq *queue.Queue
	scq          []*queue.Queue

	queues map[string]*queue.Queue // by name, for fault injection

	// sampleQueues lists the architectural queues the sampler records,
	// in timeline column order (fixed at New).
	sampleQueues []*queue.Queue

	skipped int64 // cycles fast-forwarded instead of ticked

	// epoch counts externally visible mutations of every architectural
	// queue; the cores' idle fast paths snapshot it to prove "nothing I
	// could be waiting on has changed" in O(1). Attached only when the
	// skipper is enabled, so NoSkip runs the untouched reference loop.
	epoch int64
}

// New builds a machine running the bundle under the configuration.
func New(b *slicer.Bundle, cfg Config) (*Machine, error) {
	h, err := mem.NewHierarchy(cfg.Hier)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, bundle: b, hier: h, mem: mem.NewMemory()}
	m.mem.LoadSegment(isa.DataBase, b.Seq.Data)
	m.queues = map[string]*queue.Queue{}

	// wireStorm attaches the injector's mispredict-storm hook to a core
	// configuration when a storm targets that core; untargeted cores keep
	// a nil hook and pay one pointer check per fetched branch.
	wireStorm := func(cc *cpu.Config) {
		if inj := cfg.Inject; inj != nil && inj.HasStorm(cc.Name) {
			name := cc.Name
			cc.ForceMispredict = func(now int64) bool { return inj.StormActive(name, now) }
		}
	}

	// wireTrace points a core at the machine-wide trace sink. A tracer
	// already present in the configuration (hidisc-sim's -trace-cycles
	// text trace) wins — the two are alternative views of one stream.
	wireTrace := func(cc *cpu.Config) {
		if cfg.Trace != nil && cc.Tracer == nil {
			cc.Tracer = cfg.Trace
		}
	}

	// Slip-control queues: one per CMAS. Architectures without a CMP
	// create them closed, so GETSCQ instructions in a CMAS-annotated
	// bundle complete immediately.
	hasCMP := cfg.Arch == CPCMP || cfg.Arch == HiDISC
	m.scq = make([]*queue.Queue, len(b.CMAS))
	progs := make([][]isa.Inst, len(b.CMAS))
	for i, c := range b.CMAS {
		m.scq[i] = queue.New(fmt.Sprintf("scq%d", i), cfg.SCQCap)
		m.queues[m.scq[i].Name()] = m.scq[i]
		if !hasCMP {
			m.scq[i].Close()
		}
		progs[i] = c.Insts
	}

	switch cfg.Arch {
	case Superscalar, CPCMP:
		wc := cfg.Wide
		wc.HasMem = true
		wc.EnableTriggers = cfg.Arch == CPCMP
		wireStorm(&wc)
		wireTrace(&wc)
		core := cpu.New(wc, b.Seq, m.mem, m.hier, cpu.QueueSet{SCQ: m.scq})
		m.cores = append(m.cores, core)
		if cfg.Arch == CPCMP {
			m.cmp = cpu.NewCMP(cfg.CMP, progs, m.mem, m.hier, m.scq)
			core.OnTrigger = m.cmp.Fork
		}

	case CPAP, HiDISC:
		m.ldq = queue.New("ldq", cfg.LDQCap)
		m.sdq = queue.New("sdq", cfg.SDQCap)
		m.cq = queue.New("cq", cfg.CQCap)
		m.queues["ldq"], m.queues["sdq"], m.queues["cq"] = m.ldq, m.sdq, m.cq

		cpc := cfg.CP
		cpc.HasMem = false
		cpc.JCQMap = b.JCQTable()
		wireStorm(&cpc)
		wireTrace(&cpc)
		cpCore := cpu.New(cpc, b.CS, m.mem, m.hier, cpu.QueueSet{
			Pop:  map[isa.Reg]*queue.Queue{isa.RegLDQ: m.ldq, isa.RegCQ: m.cq},
			Push: map[isa.Reg]*queue.Queue{isa.RegSDQ: m.sdq},
		})

		apc := cfg.AP
		apc.HasMem = true
		apc.EnableTriggers = cfg.Arch == HiDISC
		wireStorm(&apc)
		wireTrace(&apc)
		apCore := cpu.New(apc, b.AS, m.mem, m.hier, cpu.QueueSet{
			Pop:  map[isa.Reg]*queue.Queue{isa.RegSDQ: m.sdq},
			Push: map[isa.Reg]*queue.Queue{isa.RegLDQ: m.ldq, isa.RegCQ: m.cq},
			SCQ:  m.scq,
		})
		m.cores = append(m.cores, cpCore, apCore)
		if cfg.Arch == HiDISC {
			m.cmp = cpu.NewCMP(cfg.CMP, progs, m.mem, m.hier, m.scq)
			apCore.OnTrigger = m.cmp.Fork
		}

	default:
		return nil, fmt.Errorf("machine: unknown architecture %q", cfg.Arch)
	}

	if !cfg.NoSkip {
		for _, q := range m.queues {
			q.SetEpoch(&m.epoch)
		}
		for _, c := range m.cores {
			c.AttachEvents(&m.epoch)
		}
		if m.cmp != nil {
			m.cmp.AttachEvents(&m.epoch)
		}
	}
	if cfg.Trace != nil {
		for _, q := range m.queues {
			q.SetProbe(cfg.Trace)
		}
		m.hier.SetProbe(cfg.Trace)
	}
	if m.ldq != nil {
		m.sampleQueues = []*queue.Queue{m.ldq, m.sdq, m.cq}
	}
	if cfg.Sampler != nil {
		var cores, qs []string
		for _, c := range m.cores {
			cores = append(cores, c.Name())
		}
		for _, q := range m.sampleQueues {
			qs = append(qs, q.Name())
		}
		cfg.Sampler.Start(cores, qs)
	}
	return m, nil
}

// Run simulates to completion and returns the result.
func (m *Machine) Run() (Result, error) {
	return m.RunContext(context.Background())
}

// RunContext simulates to completion. It is a fault-containment
// boundary: a panic anywhere in the cycle loop is recovered into an
// *simfault.InvariantFault, the watchdog returns a structured
// *simfault.DeadlockFault, exceeding MaxCycles returns a
// *simfault.CycleLimitFault, and cancelling ctx returns a
// *simfault.TimeoutFault — each carrying a JSON-serializable snapshot
// of the machine at fault time. The context is polled every 4096
// cycles so cancellation costs nothing measurable in steady state.
func (m *Machine) RunContext(ctx context.Context) (res Result, err error) {
	var cycle int64
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = &simfault.InvariantFault{
				Origin:   m.origin(),
				Reason:   fmt.Sprint(r),
				Stack:    string(debug.Stack()),
				Snapshot: m.snapshot(simfault.KindInvariant, cycle),
			}
		}
	}()

	lastProgress := int64(0)
	lastCommitted := uint64(0)
	shutdownDone := false

	allHalted := func() bool {
		for _, c := range m.cores {
			if !c.Halted() {
				return false
			}
		}
		return true
	}

	for !allHalted() {
		if cycle&4095 == 0 && ctx.Err() != nil {
			return Result{}, &simfault.TimeoutFault{
				Origin:   m.origin(),
				Cycle:    cycle,
				Cause:    ctx.Err().Error(),
				Snapshot: m.snapshot(simfault.KindTimeout, cycle),
			}
		}
		if cycle >= m.cfg.MaxCycles {
			return Result{}, &simfault.CycleLimitFault{
				Origin:   m.origin(),
				Limit:    m.cfg.MaxCycles,
				Snapshot: m.snapshot(simfault.KindCycleLimit, cycle),
			}
		}
		// Telemetry observes the state as of the end of cycle-1, before
		// any component ticks this cycle: at this point credited idle
		// spans and ticked cycles have integrated identically, so an
		// instrumented run samples exactly what a no-skip run would.
		if m.cfg.Trace != nil {
			m.cfg.Trace.SetNow(cycle)
		}
		if m.cfg.Sampler != nil && m.cfg.Sampler.Due(cycle) {
			m.recordSample(cycle)
		}
		if m.cfg.Inject != nil {
			m.injectTick(cycle)
		}
		// Tick every component, collecting the earliest cycle at which
		// any of them can act again. A component that made progress
		// reports cycle+1; one blocked purely on another component
		// reports MaxInt64 and is woken by the blocker's own event.
		wake := int64(math.MaxInt64)
		for _, c := range m.cores {
			w, err := c.CycleEv(cycle)
			if err != nil {
				return Result{}, fmt.Errorf("%s: %w", m.origin(), err)
			}
			if w < wake {
				wake = w
			}
		}
		if m.cmp != nil {
			w, err := m.cmp.CycleEv(cycle)
			if err != nil {
				return Result{}, fmt.Errorf("%s: %w", m.origin(), err)
			}
			if w < wake {
				wake = w
			}
			// When the triggering processor halts the prefetcher has
			// nothing left to help; kill surviving contexts. Closing the
			// slip-control queues can unblock a core, so no skipping.
			if !shutdownDone && m.triggerCoreHalted() {
				m.cmp.Shutdown()
				shutdownDone = true
				wake = cycle + 1
			}
		}
		// Safety net: the memory system itself has no autonomous events
		// (every fill time is already carried by a waiting instruction or
		// scoreboard entry), but an in-flight fill bounds any jump.
		if w := m.hier.NextFill(cycle); w < wake {
			wake = w
		}
		m.tickQueues(1)

		var committed uint64
		for _, c := range m.cores {
			committed += c.CommittedCount()
		}
		if committed != lastCommitted {
			lastCommitted = committed
			lastProgress = cycle
		} else if cycle-lastProgress > m.cfg.WatchdogCycles {
			return Result{}, &simfault.DeadlockFault{
				Origin:      m.origin(),
				Cycle:       cycle,
				StallCycles: cycle - lastProgress,
				Queues:      m.queueStates(),
				Snapshot:    m.snapshot(simfault.KindDeadlock, cycle),
			}
		}

		next := cycle + 1
		if !m.cfg.NoSkip && wake > next {
			next = wake
			// Clamp the jump so it never leaps over a cycle where the
			// naive loop would do something a pure replay would not:
			// a context poll, the watchdog trip, the MaxCycles fault,
			// or a scheduled injector perturbation.
			if p := (cycle | 4095) + 1; p < next {
				next = p
			}
			if w := lastProgress + m.cfg.WatchdogCycles + 1; w < next {
				next = w
			}
			if m.cfg.MaxCycles < next {
				next = m.cfg.MaxCycles
			}
			if m.cfg.Inject != nil {
				if e := m.injectorNextEvent(cycle); e < next {
					next = e
				}
			}
			// The sampler is clocked like any component: never leap over
			// an interval boundary it must observe.
			if m.cfg.Sampler != nil {
				if b := m.cfg.Sampler.Boundary(); b < next {
					next = b
				}
			}
			if n := next - cycle - 1; n > 0 {
				// Credit the skipped idle cycles exactly as if ticked.
				for _, c := range m.cores {
					c.CreditIdle(n)
				}
				if m.cmp != nil {
					m.cmp.CreditIdle(n)
				}
				m.tickQueues(n)
				m.skipped += n
			}
		}
		cycle = next
	}

	// Flush the final (possibly partial) interval so the timeline ends
	// at the run's cycle count; a run ending exactly on a boundary adds
	// no extra row (Record drops zero-length intervals).
	if m.cfg.Sampler != nil {
		m.recordSample(cycle)
	}

	res = Result{
		Arch:    m.cfg.Arch,
		Cycles:  cycle,
		MemHash: m.mem.Checksum(),
		Cores:   map[string]cpu.Stats{},
		Hier:    m.hier.Stats(),
	}
	for _, c := range m.cores {
		res.Cores[c.Name()] = c.Stats()
		res.Output = append(res.Output, c.Output()...)
	}
	if m.cmp != nil {
		res.CMP = m.cmp.Stats()
	}
	if m.ldq != nil {
		res.LDQ, res.SDQ, res.CQ = m.ldq.Stats(), m.sdq.Stats(), m.cq.Stats()
	}
	return res, nil
}

// recordSample fills the sampler's scratch row with the machine's
// cumulative counters at a boundary cycle. Everything read here is
// already maintained by the components, so a sample is a handful of
// copies — no per-sample work inside the cores.
func (m *Machine) recordSample(cycle int64) {
	s := m.cfg.Sampler
	row := s.Row()
	row.Cycle = cycle
	for i, c := range m.cores {
		st := c.Stats()
		row.Cores[i] = telemetry.CoreSample{
			Committed: st.Committed,
			QueueWait: st.QueueWaitCycles,
			MemWait:   st.MemWaitCycles,
		}
	}
	for i, q := range m.sampleQueues {
		row.Queues[i] = q.Len()
	}
	hs := m.hier.Stats()
	row.L1DAccesses, row.L1DMisses = hs.L1D.DemandAccesses, hs.L1D.DemandMisses
	row.L2Accesses, row.L2Misses = hs.L2.DemandAccesses, hs.L2.DemandMisses
	row.PrefetchIssued, row.PrefetchUseful = hs.PrefetchIssued, hs.L1D.UsefulPrefetch
	row.MSHR = m.hier.InFlight(cycle)
	s.Record()
}

// triggerCoreHalted reports whether the processor that forks CMAS
// threads has halted (the AP in HiDISC, the main core in CP+CMP).
func (m *Machine) triggerCoreHalted() bool {
	return m.cores[len(m.cores)-1].Halted()
}

// CyclesSkipped returns how many cycles the event-driven fast-forward
// jumped over instead of ticking (0 under Config.NoSkip).
func (m *Machine) CyclesSkipped() int64 { return m.skipped }

// tickQueues integrates architectural-queue occupancy over n cycles.
// Occupancy only changes on cycles where some component works, so
// crediting a whole idle span at the frozen length matches the naive
// per-cycle integral exactly.
func (m *Machine) tickQueues(n int64) {
	if m.ldq != nil {
		m.ldq.Tick(n)
		m.sdq.Tick(n)
		m.cq.Tick(n)
	}
}

// injectorNextEvent returns the earliest cycle after now at which the
// injector does something: a point action's At, or any cycle inside a
// stall-cache-port window (which perturbs the target core every cycle
// it covers, so the machine must tick through it).
func (m *Machine) injectorNextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	for i := range m.cfg.Inject.Actions {
		a := &m.cfg.Inject.Actions[i]
		w := int64(math.MaxInt64)
		switch a.Kind {
		case simfault.ActCloseQueue, simfault.ActDropCredit, simfault.ActPanic:
			if a.At > now {
				w = a.At
			}
		case simfault.ActStallCachePort:
			if a.Active(now + 1) {
				w = now + 1
			} else if a.At > now {
				w = a.At
			}
		case simfault.ActMispredictStorm:
			// Storm draws happen only on cycles where the target core
			// fetches a conditional branch — worked cycles, which are
			// never skipped — so the window needs no clamp.
		}
		if w < next {
			next = w
		}
	}
	return next
}

func (m *Machine) origin() string { return fmt.Sprintf("machine %s", m.cfg.Arch) }

// queueStates captures every architectural queue for fault forensics.
func (m *Machine) queueStates() []simfault.QueueState {
	var qs []simfault.QueueState
	if m.ldq != nil {
		qs = append(qs, m.ldq.State(), m.sdq.State(), m.cq.State())
	}
	for _, q := range m.scq {
		qs = append(qs, q.State())
	}
	return qs
}

// snapshot captures the machine state at fault time. It is called from
// paths where the machine may already be corrupt (recovered panics), so
// it guards itself: a panic while snapshotting yields whatever partial
// snapshot was built instead of killing the containment boundary.
func (m *Machine) snapshot(kind simfault.Kind, cycle int64) (snap *simfault.Snapshot) {
	snap = &simfault.Snapshot{Kind: kind, Arch: string(m.cfg.Arch), Cycle: cycle, CyclesSkipped: m.skipped}
	defer func() { _ = recover() }()
	for _, c := range m.cores {
		snap.Cores = append(snap.Cores, c.FaultState())
	}
	snap.Queues = m.queueStates()
	hs := m.hier.FaultState(cycle)
	snap.Hier = &hs
	if m.cmp != nil {
		snap.CMPActiveContexts = m.cmp.ActiveContexts()
	}
	return snap
}

// injectTick applies the injector's scheduled perturbations for this
// cycle. Point actions (close-queue, drop-credit, panic) fire exactly
// at their At cycle; windowed actions (stall-cache-port) apply every
// cycle the window covers.
func (m *Machine) injectTick(cycle int64) {
	for i := range m.cfg.Inject.Actions {
		a := &m.cfg.Inject.Actions[i]
		switch a.Kind {
		case simfault.ActCloseQueue:
			if cycle == a.At {
				if q := m.queues[a.Queue]; q != nil {
					q.Close()
				}
			}
		case simfault.ActDropCredit:
			if cycle == a.At {
				if q := m.queues[a.Queue]; q != nil {
					n := a.Count
					if n <= 0 {
						n = 1
					}
					for j := 0; j < n; j++ {
						if _, ok := q.PopCommitted(); !ok {
							break
						}
					}
				}
			}
		case simfault.ActStallCachePort:
			if a.Active(cycle) {
				if c := m.coreByName(a.Core); c != nil {
					c.StallMemPorts(cycle + 1)
				}
			}
		case simfault.ActPanic:
			if cycle == a.At {
				panic(fmt.Sprintf("simfault: injected panic at cycle %d", cycle))
			}
		}
	}
}

func (m *Machine) coreByName(name string) *cpu.Core {
	for _, c := range m.cores {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// RunArch is a convenience: build and run one architecture over a
// bundle with Table 1 defaults and the given hierarchy override.
func RunArch(b *slicer.Bundle, arch Arch, hier mem.HierConfig) (Result, error) {
	return RunArchContext(context.Background(), b, arch, hier)
}

// RunArchContext is RunArch under an explicit context.
func RunArchContext(ctx context.Context, b *slicer.Bundle, arch Arch, hier mem.HierConfig) (Result, error) {
	cfg := DefaultConfig(arch)
	cfg.Hier = hier
	m, err := New(b, cfg)
	if err != nil {
		return Result{}, err
	}
	return m.RunContext(ctx)
}
