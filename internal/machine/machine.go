// Package machine assembles the four simulated architectures the paper
// evaluates (Section 5.3) from the cpu, mem and queue building blocks:
//
//   - Superscalar: the 8-issue out-of-order baseline (sim-outorder).
//   - CP+AP: a conventional access/execute decoupled pair connected by
//     the LDQ, SDQ and control queue.
//   - CP+CMP: a superscalar running the single annotated stream with a
//     Cache Management Processor executing triggered CMAS threads
//     (speculative precomputation / DDMT style).
//   - HiDISC: all three processors.
//
// A Machine owns the shared memory image and cache hierarchy, steps
// every processor cycle by cycle, and reports the statistics the
// benchmark harness turns into the paper's tables and figures.
package machine

import (
	"fmt"

	"hidisc/internal/cpu"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/queue"
	"hidisc/internal/slicer"
)

// Arch selects one of the four evaluated architectures.
type Arch string

// The architecture models of Section 5.3.
const (
	Superscalar Arch = "superscalar"
	CPAP        Arch = "cp+ap"
	CPCMP       Arch = "cp+cmp"
	HiDISC      Arch = "hidisc"
)

// Arches lists all four models in the paper's presentation order.
var Arches = []Arch{Superscalar, CPAP, CPCMP, HiDISC}

// Config parameterises a machine. DefaultConfig reproduces Table 1.
type Config struct {
	Arch Arch
	Hier mem.HierConfig

	Wide cpu.Config // the superscalar / CP+CMP main core
	CP   cpu.Config // computation processor (decoupled modes)
	AP   cpu.Config // access processor (decoupled modes)
	CMP  cpu.CMPConfig

	LDQCap int
	SDQCap int
	CQCap  int
	SCQCap int // slip-control credit depth = CMAS run-ahead bound

	MaxCycles      int64
	WatchdogCycles int64
}

// DefaultConfig returns the paper's Table 1 parameters for the given
// architecture: 8-wide cores, a 64-entry window (16 for the CP),
// 32-entry load/store queues, bimodal 2048 prediction, 4 integer ALUs,
// multiply/divide units, 2 cache ports per memory-facing processor,
// and the default cache hierarchy.
func DefaultConfig(arch Arch) Config {
	return Config{
		Arch: arch,
		Hier: mem.DefaultHierConfig(),
		Wide: cpu.Config{
			Name: "core", WindowSize: 64, HasMem: true,
		},
		CP: cpu.Config{
			Name: "cp", WindowSize: 16, HasMem: false,
		},
		AP: cpu.Config{
			Name: "ap", WindowSize: 64, HasMem: true,
			// The AP has integer and load/store units only; one FP
			// mover handles queue pops of FP values.
			FPALU: 1, FPMulDv: 1,
		},
		CMP:    cpu.CMPConfig{},
		LDQCap: 32,
		SDQCap: 32,
		CQCap:  64,
		SCQCap: 32,

		MaxCycles:      2_000_000_000,
		WatchdogCycles: 100_000,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Arch    Arch
	Cycles  int64
	Output  []string
	MemHash uint64

	Cores map[string]cpu.Stats
	CMP   cpu.CMPStats
	Hier  mem.HierStats

	LDQ, SDQ, CQ queue.Stats
}

// Committed returns the total committed instructions across cores.
func (r Result) Committed() uint64 {
	var n uint64
	for _, s := range r.Cores {
		n += s.Committed
	}
	return n
}

// Machine is one configured simulation instance.
type Machine struct {
	cfg    Config
	bundle *slicer.Bundle

	mem  *mem.Memory
	hier *mem.Hierarchy

	cores []*cpu.Core
	cmp   *cpu.CMPEngine

	ldq, sdq, cq *queue.Queue
	scq          []*queue.Queue
}

// New builds a machine running the bundle under the configuration.
func New(b *slicer.Bundle, cfg Config) (*Machine, error) {
	h, err := mem.NewHierarchy(cfg.Hier)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, bundle: b, hier: h, mem: mem.NewMemory()}
	m.mem.LoadSegment(isa.DataBase, b.Seq.Data)

	// Slip-control queues: one per CMAS. Architectures without a CMP
	// create them closed, so GETSCQ instructions in a CMAS-annotated
	// bundle complete immediately.
	hasCMP := cfg.Arch == CPCMP || cfg.Arch == HiDISC
	m.scq = make([]*queue.Queue, len(b.CMAS))
	progs := make([][]isa.Inst, len(b.CMAS))
	for i, c := range b.CMAS {
		m.scq[i] = queue.New(fmt.Sprintf("scq%d", i), cfg.SCQCap)
		if !hasCMP {
			m.scq[i].Close()
		}
		progs[i] = c.Insts
	}

	switch cfg.Arch {
	case Superscalar, CPCMP:
		wc := cfg.Wide
		wc.HasMem = true
		wc.EnableTriggers = cfg.Arch == CPCMP
		core := cpu.New(wc, b.Seq, m.mem, m.hier, cpu.QueueSet{SCQ: m.scq})
		m.cores = append(m.cores, core)
		if cfg.Arch == CPCMP {
			m.cmp = cpu.NewCMP(cfg.CMP, progs, m.mem, m.hier, m.scq)
			core.OnTrigger = m.cmp.Fork
		}

	case CPAP, HiDISC:
		m.ldq = queue.New("ldq", cfg.LDQCap)
		m.sdq = queue.New("sdq", cfg.SDQCap)
		m.cq = queue.New("cq", cfg.CQCap)

		cpc := cfg.CP
		cpc.HasMem = false
		cpc.JCQMap = b.JCQTable()
		cpCore := cpu.New(cpc, b.CS, m.mem, m.hier, cpu.QueueSet{
			Pop:  map[isa.Reg]*queue.Queue{isa.RegLDQ: m.ldq, isa.RegCQ: m.cq},
			Push: map[isa.Reg]*queue.Queue{isa.RegSDQ: m.sdq},
		})

		apc := cfg.AP
		apc.HasMem = true
		apc.EnableTriggers = cfg.Arch == HiDISC
		apCore := cpu.New(apc, b.AS, m.mem, m.hier, cpu.QueueSet{
			Pop:  map[isa.Reg]*queue.Queue{isa.RegSDQ: m.sdq},
			Push: map[isa.Reg]*queue.Queue{isa.RegLDQ: m.ldq, isa.RegCQ: m.cq},
			SCQ:  m.scq,
		})
		m.cores = append(m.cores, cpCore, apCore)
		if cfg.Arch == HiDISC {
			m.cmp = cpu.NewCMP(cfg.CMP, progs, m.mem, m.hier, m.scq)
			apCore.OnTrigger = m.cmp.Fork
		}

	default:
		return nil, fmt.Errorf("machine: unknown architecture %q", cfg.Arch)
	}
	return m, nil
}

// Run simulates to completion and returns the result.
func (m *Machine) Run() (Result, error) {
	var cycle int64
	lastProgress := int64(0)
	lastCommitted := uint64(0)
	shutdownDone := false

	allHalted := func() bool {
		for _, c := range m.cores {
			if !c.Halted() {
				return false
			}
		}
		return true
	}

	for !allHalted() {
		if cycle >= m.cfg.MaxCycles {
			return Result{}, fmt.Errorf("machine %s: exceeded %d cycles", m.cfg.Arch, m.cfg.MaxCycles)
		}
		for _, c := range m.cores {
			if err := c.Cycle(cycle); err != nil {
				return Result{}, fmt.Errorf("machine %s: %w", m.cfg.Arch, err)
			}
		}
		if m.cmp != nil {
			if err := m.cmp.Cycle(cycle); err != nil {
				return Result{}, fmt.Errorf("machine %s: %w", m.cfg.Arch, err)
			}
			// When the triggering processor halts the prefetcher has
			// nothing left to help; kill surviving contexts.
			if !shutdownDone && m.triggerCoreHalted() {
				m.cmp.Shutdown()
				shutdownDone = true
			}
		}

		var committed uint64
		for _, c := range m.cores {
			committed += c.Stats().Committed
		}
		if committed != lastCommitted {
			lastCommitted = committed
			lastProgress = cycle
		} else if cycle-lastProgress > m.cfg.WatchdogCycles {
			return Result{}, fmt.Errorf("machine %s: no commit for %d cycles at cycle %d (deadlock?): %s",
				m.cfg.Arch, m.cfg.WatchdogCycles, cycle, m.describeStall())
		}
		cycle++
	}

	res := Result{
		Arch:    m.cfg.Arch,
		Cycles:  cycle,
		MemHash: m.mem.Checksum(),
		Cores:   map[string]cpu.Stats{},
		Hier:    m.hier.Stats(),
	}
	for _, c := range m.cores {
		res.Cores[c.Name()] = c.Stats()
		res.Output = append(res.Output, c.Output()...)
	}
	if m.cmp != nil {
		res.CMP = m.cmp.Stats()
	}
	if m.ldq != nil {
		res.LDQ, res.SDQ, res.CQ = m.ldq.Stats(), m.sdq.Stats(), m.cq.Stats()
	}
	return res, nil
}

// triggerCoreHalted reports whether the processor that forks CMAS
// threads has halted (the AP in HiDISC, the main core in CP+CMP).
func (m *Machine) triggerCoreHalted() bool {
	return m.cores[len(m.cores)-1].Halted()
}

func (m *Machine) describeStall() string {
	s := ""
	for _, c := range m.cores {
		s += fmt.Sprintf("[%s halted=%v committed=%d | %s] ", c.Name(), c.Halted(), c.Stats().Committed, c.DescribeHead())
	}
	if m.ldq != nil {
		s += fmt.Sprintf("ldq=%s sdq=%s cq=%s", m.ldq, m.sdq, m.cq)
	}
	for i, q := range m.scq {
		s += fmt.Sprintf(" scq%d=%s", i, q)
	}
	return s
}

// RunArch is a convenience: build and run one architecture over a
// bundle with Table 1 defaults and the given hierarchy override.
func RunArch(b *slicer.Bundle, arch Arch, hier mem.HierConfig) (Result, error) {
	cfg := DefaultConfig(arch)
	cfg.Hier = hier
	m, err := New(b, cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run()
}
