package machine

// Differential tests for the event-driven idle-cycle skipper: the fast
// path must be bit-identical to the naive per-cycle loop — same
// Result, and on faulting runs the same fault kind at the same cycle —
// with and without an active fault injector. These pin the wakeup
// contract (cpu.Core.CycleEv, cpu.CMPEngine.CycleEv, mem.NextFill) and
// the machine's clamp rules.

import (
	"errors"
	"reflect"
	"testing"

	"hidisc/internal/simfault"
	"hidisc/internal/slicer"
)

// runSkipPair runs the same bundle/config twice — fast-forward on and
// off — and returns both outcomes plus the skipping machine itself.
// mkInject builds a fresh injector per run (they must not be shared).
func runSkipPair(t *testing.T, b *slicer.Bundle, cfg Config, mkInject func() *simfault.Injector) (skip, ref Result, skipErr, refErr error, m *Machine) {
	t.Helper()
	run := func(noSkip bool) (Result, error, *Machine) {
		c := cfg
		c.NoSkip = noSkip
		if mkInject != nil {
			c.Inject = mkInject()
		}
		mm, err := New(b, c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mm.Run()
		return res, err, mm
	}
	skip, skipErr, m = run(false)
	ref, refErr, refM := run(true)
	if n := refM.CyclesSkipped(); n != 0 {
		t.Fatalf("NoSkip machine reports %d skipped cycles", n)
	}
	return skip, ref, skipErr, refErr, m
}

// assertSameOutcome compares the two runs: identical Result on
// success, identical fault kind and fault cycle on failure.
func assertSameOutcome(t *testing.T, who string, skip, ref Result, skipErr, refErr error) {
	t.Helper()
	if (skipErr == nil) != (refErr == nil) {
		t.Fatalf("%s: skip err = %v, no-skip err = %v", who, skipErr, refErr)
	}
	if skipErr != nil {
		sk, ok1 := simfault.KindOf(skipErr)
		rk, ok2 := simfault.KindOf(refErr)
		if !ok1 || !ok2 || sk != rk {
			t.Fatalf("%s: fault kinds differ: skip %q (%v) vs no-skip %q (%v)", who, sk, skipErr, rk, refErr)
		}
		ss, rs := simfault.SnapshotOf(skipErr), simfault.SnapshotOf(refErr)
		if ss == nil || rs == nil {
			t.Fatalf("%s: missing fault snapshot (skip=%v no-skip=%v)", who, ss != nil, rs != nil)
		}
		if ss.Cycle != rs.Cycle {
			t.Fatalf("%s: fault cycle differs: skip %d vs no-skip %d", who, ss.Cycle, rs.Cycle)
		}
		return
	}
	if !reflect.DeepEqual(skip, ref) {
		t.Fatalf("%s: Result differs between skip and no-skip:\nskip:    %+v\nno-skip: %+v", who, skip, ref)
	}
}

// TestSkipBitIdenticalKernels runs every hand-written kernel on every
// architecture and demands a bit-identical Result from the fast path,
// which must also actually skip on the memory-bound configurations.
func TestSkipBitIdenticalKernels(t *testing.T) {
	for name := range kernels {
		for _, arch := range Arches {
			withProfile := arch == CPCMP || arch == HiDISC
			b := compileKernel(t, name, withProfile)
			skip, ref, skipErr, refErr, m := runSkipPair(t, b, DefaultConfig(arch), nil)
			who := name + "/" + string(arch)
			assertSameOutcome(t, who, skip, ref, skipErr, refErr)
			if skipErr == nil && m.CyclesSkipped() == 0 && skip.Cycles > 20_000 {
				t.Errorf("%s: %d-cycle run never fast-forwarded", who, skip.Cycles)
			}
		}
	}
}

// TestSkipBitIdenticalUnderInjection replays the fault-injection
// drills differentially: point actions, windowed port stalls and a
// probabilistic mispredict storm must land on the same cycles (and
// consume the same PRNG draws) whether or not the machine skips.
func TestSkipBitIdenticalUnderInjection(t *testing.T) {
	cases := []struct {
		name string
		arch Arch
		mk   func() *simfault.Injector
	}{
		{"close-cq", CPAP, func() *simfault.Injector {
			return simfault.NewInjector(1, simfault.Action{Kind: simfault.ActCloseQueue, Queue: "cq", At: 400})
		}},
		{"drop-credit", HiDISC, func() *simfault.Injector {
			return simfault.NewInjector(1, simfault.Action{Kind: simfault.ActDropCredit, Queue: "ldq", At: 300, Count: 2})
		}},
		{"storm", Superscalar, func() *simfault.Injector {
			return simfault.NewInjector(7, simfault.Action{
				Kind: simfault.ActMispredictStorm, Core: "core", At: 100, Until: 3000, Probability: 0.5,
			})
		}},
		{"port-stall-window", CPAP, func() *simfault.Injector {
			return simfault.NewInjector(1, simfault.Action{Kind: simfault.ActStallCachePort, Core: "ap", At: 100, Until: 900})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			withProfile := tc.arch == CPCMP || tc.arch == HiDISC
			b := compileKernel(t, "convolution", withProfile)
			skip, ref, skipErr, refErr, _ := runSkipPair(t, b, DefaultConfig(tc.arch), tc.mk)
			assertSameOutcome(t, tc.name, skip, ref, skipErr, refErr)
		})
	}
}

// TestSkipNeverJumpsWatchdog wedges the AP behind permanently stalled
// cache ports: the fast path must ride its clamps to the exact cycle
// where the naive loop trips the watchdog, never leaping over it.
func TestSkipNeverJumpsWatchdog(t *testing.T) {
	b := compileKernel(t, "convolution", false)
	cfg := DefaultConfig(CPAP)
	cfg.WatchdogCycles = 1500
	mk := func() *simfault.Injector {
		return simfault.NewInjector(1, simfault.Action{Kind: simfault.ActStallCachePort, Core: "ap", At: 100})
	}
	skip, ref, skipErr, refErr, _ := runSkipPair(t, b, cfg, mk)
	assertSameOutcome(t, "watchdog", skip, ref, skipErr, refErr)
	var dl *simfault.DeadlockFault
	if !errors.As(skipErr, &dl) {
		t.Fatalf("got %T (%v), want *simfault.DeadlockFault", skipErr, skipErr)
	}
}

// TestSkipNeverJumpsCycleLimit: the MaxCycles fault must fire at the
// limit cycle exactly, not wherever a jump happened to land.
func TestSkipNeverJumpsCycleLimit(t *testing.T) {
	b := compileKernel(t, "chase", false)
	cfg := DefaultConfig(Superscalar)
	cfg.MaxCycles = 777
	skip, ref, skipErr, refErr, _ := runSkipPair(t, b, cfg, nil)
	assertSameOutcome(t, "cycle-limit", skip, ref, skipErr, refErr)
	var cl *simfault.CycleLimitFault
	if !errors.As(skipErr, &cl) {
		t.Fatalf("got %T (%v), want *simfault.CycleLimitFault", skipErr, skipErr)
	}
	if snap := simfault.SnapshotOf(skipErr); snap.Cycle != 777 {
		t.Errorf("fault cycle = %d, want exactly the 777-cycle limit", snap.Cycle)
	}
}
