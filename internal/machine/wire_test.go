package machine

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseArch(t *testing.T) {
	for _, a := range Arches {
		got, err := ParseArch(string(a))
		if err != nil || got != a {
			t.Errorf("ParseArch(%q) = %q, %v", a, got, err)
		}
	}
	if got, err := ParseArch("HiDISC"); err != nil || got != HiDISC {
		t.Errorf("ParseArch is not case-insensitive: got %q, %v", got, err)
	}
	for _, bad := range []string{"", "scalar", "cp", "hidisc2"} {
		if _, err := ParseArch(bad); err == nil {
			t.Errorf("ParseArch(%q) accepted an unknown architecture", bad)
		}
	}
}

func TestArchJSONRoundTrip(t *testing.T) {
	for _, a := range Arches {
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatalf("marshal %q: %v", a, err)
		}
		if want := `"` + string(a) + `"`; string(data) != want {
			t.Errorf("marshal %q = %s, want %s", a, data, want)
		}
		var back Arch
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != a {
			t.Errorf("round trip %q -> %q", a, back)
		}
	}
}

func TestArchJSONRejectsUnknown(t *testing.T) {
	var a Arch
	if err := json.Unmarshal([]byte(`"vliw"`), &a); err == nil {
		t.Fatal("unmarshal accepted an unknown architecture name")
	} else if !strings.Contains(err.Error(), "vliw") {
		t.Errorf("error %q does not name the offending value", err)
	}
	if err := json.Unmarshal([]byte(`3`), &a); err == nil {
		t.Fatal("unmarshal accepted a numeric architecture")
	}
	if _, err := json.Marshal(Arch("bogus")); err == nil {
		t.Fatal("marshal accepted a corrupt Arch value")
	}
}
