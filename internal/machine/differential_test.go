package machine

// Differential testing of the whole stack: randomly generated but
// well-formed programs must produce identical architectural results on
// the functional reference, the functional co-simulation of the
// separated streams, and all four timing machines (with and without
// profile-guided CMAS). This is the widest net for stream-separation
// and microarchitecture bugs: queue pairing, speculation recovery,
// store/load ordering, CMAS side effects.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hidisc/internal/asm"
	"hidisc/internal/fnsim"
	"hidisc/internal/isa"
	"hidisc/internal/mem"
	"hidisc/internal/profile"
	"hidisc/internal/slicer"
)

// progGen emits random structured assembly: straight-line integer and
// FP arithmetic, loads and stores into a bounded arena, counted loops
// (possibly nested), and data-dependent diamonds. Programs always
// terminate and never fault (no divisions, masked addresses).
type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	label int
	depth int
}

func (g *progGen) emit(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *progGen) newLabel() string {
	g.label++
	return fmt.Sprintf("L%d", g.label)
}

// Register pools. r20-r23 hold loop counters (one per nesting level);
// r9 holds the arena base; r10-r15 are scratch; f1-f6 FP scratch.
func (g *progGen) scratch() string   { return fmt.Sprintf("$r%d", 10+g.rng.Intn(6)) }
func (g *progGen) fpScratch() string { return fmt.Sprintf("$f%d", 1+g.rng.Intn(6)) }

const arenaWords = 512

// addr emits code leaving a valid arena address in $r8.
func (g *progGen) addr() {
	g.emit("        andi $r8, %s, %d", g.scratch(), (arenaWords-1)*4)
	g.emit("        add  $r8, $r9, $r8")
}

func (g *progGen) stmt() {
	switch g.rng.Intn(10) {
	case 0, 1: // integer ALU
		ops := []string{"add", "sub", "xor", "and", "or", "slt"}
		g.emit("        %s %s, %s, %s", ops[g.rng.Intn(len(ops))], g.scratch(), g.scratch(), g.scratch())
	case 2: // immediate
		g.emit("        addi %s, %s, %d", g.scratch(), g.scratch(), g.rng.Intn(64)-32)
	case 3: // shift/mul
		if g.rng.Intn(2) == 0 {
			g.emit("        slli %s, %s, %d", g.scratch(), g.scratch(), g.rng.Intn(8))
		} else {
			g.emit("        mul %s, %s, %s", g.scratch(), g.scratch(), g.scratch())
		}
	case 4: // load
		g.addr()
		g.emit("        lw   %s, 0($r8)", g.scratch())
	case 5: // store (value may be compute-stream produced)
		g.addr()
		g.emit("        sw   %s, 0($r8)", g.scratch())
	case 6: // FP chain fed from memory
		g.addr()
		f1, f2 := g.fpScratch(), g.fpScratch()
		g.emit("        lw   $r10, 0($r8)")
		g.emit("        andi $r10, $r10, 1023")
		g.emit("        cvt.d.w %s, $r10", f1)
		g.emit("        mul.d %s, %s, %s", f2, f1, f1)
		g.emit("        add.d $f10, $f10, %s", f2)
	case 7: // data-dependent diamond
		then, join := g.newLabel(), g.newLabel()
		g.emit("        andi $r10, %s, 1", g.scratch())
		g.emit("        beq  $r10, $r0, %s", then)
		g.emit("        addi %s, %s, 3", g.scratch(), g.scratch())
		g.emit("        j    %s", join)
		g.emit("%s:", then)
		g.emit("        addi %s, %s, 5", g.scratch(), g.scratch())
		g.emit("%s:", join)
	case 8: // read-modify-write
		g.addr()
		g.emit("        lw   $r11, 0($r8)")
		g.emit("        xor  $r11, $r11, %s", g.scratch())
		g.emit("        sw   $r11, 0($r8)")
	case 9: // nested counted loop, or a leaf call
		switch {
		case g.depth < 2 && g.rng.Intn(2) == 0:
			g.loop()
		case g.depth < 2:
			// Leaf call: exercises JAL/JR mirroring and the control
			// queue's JCQ target translation.
			g.emit("        jal  helper%d", 1+g.rng.Intn(2))
		default:
			g.emit("        add  %s, %s, %s", g.scratch(), g.scratch(), g.scratch())
		}
	}
}

func (g *progGen) loop() {
	counter := fmt.Sprintf("$r%d", 20+g.depth)
	g.depth++
	head := g.newLabel()
	trip := 2 + g.rng.Intn(12)
	body := 2 + g.rng.Intn(5)
	g.emit("        li   %s, %d", counter, trip)
	g.emit("%s:", head)
	for i := 0; i < body; i++ {
		g.stmt()
	}
	g.emit("        addi %s, %s, -1", counter, counter)
	g.emit("        bgtz %s, %s", counter, head)
	g.depth--
}

func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.emit("        .data")
	g.emit("arena:  .space %d", arenaWords*4)
	g.emit("        .text")
	g.emit("main:   la   $r9, arena")
	// Seed the scratch registers deterministically.
	for i := 10; i < 16; i++ {
		g.emit("        li   $r%d, %d", i, g.rng.Intn(1<<16))
	}
	g.emit("        sub.d $f10, $f10, $f10")
	n := 2 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.loop()
	}
	// Observable results: scratch registers, FP accumulator, and the
	// memory image (checked via checksum).
	for i := 10; i < 16; i++ {
		g.emit("        out  $r%d", i)
	}
	g.emit("        out.d $f10")
	g.emit("        halt")
	// Leaf helpers reachable via jal; they mix pure compute with a
	// memory touch so both streams have work across the call.
	g.emit("helper1: mul $r12, $r12, $r13")
	g.emit("        addi $r12, $r12, 17")
	g.emit("        jr   $ra")
	g.emit("helper2: andi $r8, $r14, %d", (arenaWords-1)*4)
	g.emit("        add  $r8, $r9, $r8")
	g.emit("        lw   $r13, 0($r8)")
	g.emit("        xor  $r13, $r13, $r15")
	g.emit("        jr   $ra")
	return g.sb.String()
}

func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for seed := int64(1); seed <= int64(trials); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := generateProgram(seed)
			p, err := asm.Assemble(fmt.Sprintf("fuzz%d", seed), src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, src)
			}
			ref, err := fnsim.RunProgram(p, 5_000_000)
			if err != nil {
				t.Fatalf("reference: %v\n%s", err, src)
			}

			// Functional co-simulation of the separated streams.
			plain, err := slicer.Separate(p, slicer.Options{})
			if err != nil {
				t.Fatalf("separate: %v", err)
			}
			cos, err := slicer.Cosim(plain, 50_000_000)
			if err != nil {
				t.Fatalf("cosim: %v\n%s", err, plain.Report())
			}
			if cos.MemHash != ref.MemHash {
				t.Fatal("cosim memory image mismatch")
			}
			compareOutput(t, "cosim", cos.Output, ref.Output)

			// Profile-guided bundle for the CMP architectures.
			prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), 5_000_000)
			if err != nil {
				t.Fatal(err)
			}
			cmas, err := slicer.Separate(p, slicer.Options{Profile: prof, MinMisses: 4})
			if err != nil {
				t.Fatal(err)
			}

			for _, arch := range Arches {
				b := plain
				if arch == CPCMP || arch == HiDISC {
					b = cmas
				}
				res, err := RunArch(b, arch, mem.DefaultHierConfig())
				if err != nil {
					t.Fatalf("%s: %v\n%s", arch, err, src)
				}
				if res.MemHash != ref.MemHash {
					t.Errorf("%s: memory image mismatch", arch)
				}
				compareOutput(t, string(arch), res.Output, ref.Output)
			}
		})
	}
}

func compareOutput(t *testing.T, who string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: output %v, want %v", who, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: output[%d] = %q, want %q", who, i, got[i], want[i])
		}
	}
}

// TestDifferentialBlockingHandshake repeats a subset of the seeds with
// the paper-literal blocking GETSCQ handshake.
func TestDifferentialBlockingHandshake(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		src := generateProgram(seed)
		p := mustAssemble(t, fmt.Sprintf("fuzzb%d", seed), src)
		ref, err := fnsim.RunProgram(p, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := profile.CacheProfile(p, mem.DefaultHierConfig(), 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := slicer.Separate(p, slicer.Options{Profile: prof, MinMisses: 4, BlockingHandshake: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(HiDISC)
		cfg.AP.BlockingSCQ = true
		m, err := New(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.MemHash != ref.MemHash {
			t.Errorf("seed %d: memory mismatch under blocking handshake", seed)
		}
	}
}

var _ = isa.NOP
