package mem

import (
	"math"
	"math/rand"
	"testing"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	bad := []CacheConfig{
		{Name: "x", Sets: 3, Ways: 1, BlockSize: 32, Latency: 1},
		{Name: "x", Sets: 4, Ways: 0, BlockSize: 32, Latency: 1},
		{Name: "x", Sets: 4, Ways: 1, BlockSize: 24, Latency: 1},
		{Name: "x", Sets: 4, Ways: 1, BlockSize: 32, Latency: 0},
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("NewCache(%+v) accepted invalid geometry", cfg)
		}
	}
}

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write32(0x1000_0000, 0xDEADBEEF)
	if got := m.Read32(0x1000_0000); got != 0xDEADBEEF {
		t.Errorf("Read32 = %#x", got)
	}
	if got := m.Read8(0x1000_0000); got != 0xEF {
		t.Errorf("little-endian byte 0 = %#x, want 0xEF", got)
	}
	m.Write64(0x2000, 0x0123456789ABCDEF)
	if got := m.Read64(0x2000); got != 0x0123456789ABCDEF {
		t.Errorf("Read64 = %#x", got)
	}
	m.WriteFloat64(0x3000, -2.5)
	if got := m.ReadFloat64(0x3000); got != -2.5 {
		t.Errorf("ReadFloat64 = %v", got)
	}
	if got := m.Read32(0x9999_0000); got != 0 {
		t.Errorf("untouched memory = %#x, want 0", got)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // straddles the first page boundary
	m.Write32(addr, 0x11223344)
	if got := m.Read32(addr); got != 0x11223344 {
		t.Errorf("cross-page Read32 = %#x", got)
	}
	m.Write64(addr, 0xAABBCCDDEEFF0011)
	if got := m.Read64(addr); got != 0xAABBCCDDEEFF0011 {
		t.Errorf("cross-page Read64 = %#x", got)
	}
}

func TestMemoryLoadSegmentAndRange(t *testing.T) {
	m := NewMemory()
	data := []byte{1, 2, 3, 4, 5}
	m.LoadSegment(0x1000_0000, data)
	got := m.ReadRange(0x1000_0000, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("ReadRange[%d] = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestChecksumEquivalence(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	// Same logical contents, written in different orders.
	a.Write32(0x1000, 42)
	a.Write32(0x8000_0000, 7)
	b.Write32(0x8000_0000, 7)
	b.Write32(0x1000, 42)
	if a.Checksum() != b.Checksum() {
		t.Error("checksums differ for identical contents")
	}
	// Allocated-but-zero pages hash like untouched pages.
	b.Write32(0x5000_0000, 1)
	b.Write32(0x5000_0000, 0)
	if a.Checksum() != b.Checksum() {
		t.Error("zeroed page changed checksum")
	}
	b.Write32(0x1000, 43)
	if a.Checksum() == b.Checksum() {
		t.Error("checksums equal for different contents")
	}
}

func TestMemoryClone(t *testing.T) {
	a := NewMemory()
	a.Write32(0x1000, 1)
	b := a.Clone()
	b.Write32(0x1000, 2)
	if a.Read32(0x1000) != 1 {
		t.Error("Clone shares pages")
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "t", Sets: 64, Ways: 2, BlockSize: 32, Latency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []CacheConfig{
		{Name: "t", Sets: 63, Ways: 2, BlockSize: 32, Latency: 1},
		{Name: "t", Sets: 64, Ways: 0, BlockSize: 32, Latency: 1},
		{Name: "t", Sets: 64, Ways: 2, BlockSize: 33, Latency: 1},
		{Name: "t", Sets: 64, Ways: 2, BlockSize: 32, Latency: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if good.SizeBytes() != 64*2*32 {
		t.Errorf("SizeBytes = %d", good.SizeBytes())
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", Sets: 4, Ways: 2, BlockSize: 16, Latency: 1})
	if c.Access(0x100, false, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(0x100, false, false)
	if !c.Access(0x100, false, false) {
		t.Error("access after fill missed")
	}
	if !c.Access(0x10F, false, false) {
		t.Error("same-block access missed")
	}
	if c.Access(0x110, false, false) {
		t.Error("next-block access hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set x 2 ways, 16-byte blocks: three distinct blocks mapping to
	// the same set must evict in LRU order.
	c := mustCache(t, CacheConfig{Name: "t", Sets: 1, Ways: 2, BlockSize: 16, Latency: 1})
	c.Fill(0x000, false, false)
	c.Fill(0x010, false, false)
	c.Access(0x000, false, false) // touch A so B is LRU
	ev, valid, _ := c.Fill(0x020, false, false)
	if !valid || ev != c.BlockAddr(0x010) {
		t.Errorf("evicted block %#x, want %#x", ev, c.BlockAddr(0x010))
	}
	if !c.Access(0x000, false, false) {
		t.Error("A evicted despite being MRU")
	}
	if c.Access(0x010, false, false) {
		t.Error("B still present after eviction")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", Sets: 1, Ways: 1, BlockSize: 16, Latency: 1})
	c.Fill(0x000, true, false) // dirty fill
	_, _, wb := c.Fill(0x010, false, false)
	if !wb {
		t.Error("dirty eviction not reported")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
	// Clean line evicts without writeback.
	_, _, wb = c.Fill(0x020, false, false)
	if wb {
		t.Error("clean eviction reported writeback")
	}
	// A write hit dirties the line.
	c.Access(0x020, true, false)
	_, _, wb = c.Fill(0x030, false, false)
	if !wb {
		t.Error("write-hit line evicted clean")
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", Sets: 4, Ways: 2, BlockSize: 16, Latency: 1})
	c.Access(0x100, false, true)
	c.Fill(0x100, false, true)
	s := c.Stats()
	if s.DemandAccesses != 0 || s.DemandMisses != 0 {
		t.Errorf("prefetch counted as demand: %+v", s)
	}
	if s.PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d", s.PrefetchFills)
	}
	if !c.Access(0x100, false, false) {
		t.Fatal("demand access after prefetch missed")
	}
	if c.Stats().UsefulPrefetch != 1 {
		t.Errorf("UsefulPrefetch = %d", c.Stats().UsefulPrefetch)
	}
	// Second demand touch does not double-count usefulness.
	c.Access(0x100, false, false)
	if c.Stats().UsefulPrefetch != 1 {
		t.Errorf("UsefulPrefetch double-counted: %d", c.Stats().UsefulPrefetch)
	}
}

func TestCacheWritebackTo(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", Sets: 4, Ways: 1, BlockSize: 16, Latency: 1})
	c.Fill(0x200, false, false)
	if !c.WritebackTo(0x208) {
		t.Error("WritebackTo missed present line")
	}
	_, _, wb := c.Fill(0x200+16*4, false, false) // same set, evicts
	if !wb {
		t.Error("WritebackTo did not dirty the line")
	}
	if c.WritebackTo(0x900) {
		t.Error("WritebackTo hit absent line")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := mustCache(t, CacheConfig{Name: "t", Sets: 4, Ways: 2, BlockSize: 16, Latency: 1})
	c.Fill(0x100, false, false)
	c.Invalidate(0x104)
	if c.Lookup(0x100) {
		t.Error("line present after Invalidate")
	}
}

// TestCacheLRUAgainstReference models a single set as an LRU list and
// cross-checks hit/miss behaviour over a random access stream.
func TestCacheLRUAgainstReference(t *testing.T) {
	const ways = 4
	c := mustCache(t, CacheConfig{Name: "t", Sets: 1, Ways: ways, BlockSize: 16, Latency: 1})
	var ref []uint32 // MRU first
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		block := uint32(rng.Intn(12))
		addr := block * 16
		hit := c.Access(addr, false, false)
		refHit := false
		for j, b := range ref {
			if b == block {
				refHit = true
				ref = append(ref[:j], ref[j+1:]...)
				break
			}
		}
		if hit != refHit {
			t.Fatalf("access %d block %d: hit=%v ref=%v", i, block, hit, refHit)
		}
		if !hit {
			c.Fill(addr, false, false)
			if len(ref) == ways {
				ref = ref[:ways-1]
			}
		}
		ref = append([]uint32{block}, ref...)
	}
}

func defaultHier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := defaultHier(t)
	// Cold access: L1 miss + L2 miss -> 1 + 12 + 120.
	done := h.Access(0, 0x1000_0000, false, false)
	if done != 133 {
		t.Errorf("cold access latency = %d, want 133", done)
	}
	// Re-access after fill: L1 hit -> 1 cycle.
	done = h.Access(200, 0x1000_0000, false, false)
	if done != 201 {
		t.Errorf("L1 hit latency = %d, want 201", done)
	}
	// Evict the L1 line by filling the same set, then re-access: the
	// line is still in L2 -> 1 + 12.
	cfg := h.Config().L1D
	for i := 1; i <= cfg.Ways; i++ {
		h.Access(300, 0x1000_0000+uint32(i*cfg.Sets*cfg.BlockSize), false, false)
	}
	done = h.Access(1000, 0x1000_0000, false, false)
	if done != 1013 {
		t.Errorf("L2 hit latency = %d, want 1013", done)
	}
}

func TestHierarchyMSHRMerge(t *testing.T) {
	h := defaultHier(t)
	done1 := h.Access(0, 0x1000_0000, false, false)
	// Access to the same block while in flight completes with the fill
	// and counts as a delayed hit, not a second miss.
	done2 := h.Access(5, 0x1000_0004, false, false)
	if done2 != done1 {
		t.Errorf("merged access done=%d, want %d", done2, done1)
	}
	s := h.Stats()
	if s.L1D.DemandMisses != 1 {
		t.Errorf("demand misses = %d, want 1", s.L1D.DemandMisses)
	}
	if s.L1D.DelayedHits != 1 || s.MSHRMergedHits != 1 {
		t.Errorf("delayed hits = %d / merged = %d, want 1/1", s.L1D.DelayedHits, s.MSHRMergedHits)
	}
	// After the fill completes the block hits at normal latency.
	done3 := h.Access(done1+10, 0x1000_0008, false, false)
	if done3 != done1+11 {
		t.Errorf("post-fill hit done=%d, want %d", done3, done1+11)
	}
}

func TestHierarchyPrefetchHidesLatency(t *testing.T) {
	h := defaultHier(t)
	h.Access(0, 0x1000_0000, false, true) // prefetch
	// Demand access after the prefetch completes: pure L1 hit.
	done := h.Access(500, 0x1000_0000, false, false)
	if done != 501 {
		t.Errorf("demand after prefetch = %d, want 501", done)
	}
	s := h.Stats()
	if s.L1D.DemandMisses != 0 {
		t.Errorf("demand misses = %d, want 0", s.L1D.DemandMisses)
	}
	if s.L1D.UsefulPrefetch != 1 || s.PrefetchIssued != 1 {
		t.Errorf("useful=%d issued=%d", s.L1D.UsefulPrefetch, s.PrefetchIssued)
	}
}

func TestHierarchyEarlyDemandMergesWithPrefetch(t *testing.T) {
	h := defaultHier(t)
	h.Access(0, 0x1000_0000, false, true)
	// Demand arrives while the prefetch is still in flight: partial hiding.
	done := h.Access(50, 0x1000_0000, false, false)
	if done != 133 {
		t.Errorf("demand during prefetch = %d, want 133", done)
	}
	if h.Stats().L1D.DemandMisses != 0 {
		t.Error("merged demand counted as miss")
	}
}

func TestHierarchyWithLatencies(t *testing.T) {
	cfg := DefaultHierConfig().WithLatencies(4, 40)
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := h.Access(0, 0x1000_0000, false, false)
	if done != 45 {
		t.Errorf("cold access with 4/40 = %d, want 45", done)
	}
}

func TestHierarchyValidation(t *testing.T) {
	bad := DefaultHierConfig()
	bad.MemLatency = 0
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("zero memory latency accepted")
	}
	bad = DefaultHierConfig()
	bad.L2.BlockSize = 16 // smaller than L1's 32
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("L2 block < L1 block accepted")
	}
}

func TestHierarchyReset(t *testing.T) {
	h := defaultHier(t)
	h.Access(0, 0x1000_0000, false, false)
	h.Reset()
	s := h.Stats()
	if s.L1D.Accesses != 0 || s.InFlightAtReset != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	if h.Present(1000, 0x1000_0000) {
		t.Error("line survived reset")
	}
}

func TestHierarchyDirtyEvictionWritebacks(t *testing.T) {
	h := defaultHier(t)
	cfg := h.Config().L1D
	base := uint32(0x1000_0000)
	// Dirty a line, then evict it by filling its set.
	h.Access(0, base, true, false)
	for i := 1; i <= cfg.Ways; i++ {
		h.Access(1000, base+uint32(i*cfg.Sets*cfg.BlockSize), false, false)
	}
	if h.Stats().L1D.Writebacks == 0 {
		t.Error("no L1 writeback recorded")
	}
}

func TestHierarchyMSHRBoundedByOutstandingMisses(t *testing.T) {
	h := defaultHier(t)
	now := int64(0)
	for i := 0; i < 10000; i++ {
		addr := uint32(0x1000_0000 + i*4096)
		now += 200
		h.Access(now, addr, false, false)
	}
	// Every previous fill has completed by the time the next access
	// arrives (200-cycle spacing beats the 133-cycle miss), so the
	// in-flight list must stay at the single outstanding miss.
	if n := len(h.mshr); n > 1 {
		t.Errorf("MSHR list holds %d entries; completed fills not pruned", n)
	}
}

func TestHierarchyNextFill(t *testing.T) {
	h := defaultHier(t)
	if got := h.NextFill(0); got != math.MaxInt64 {
		t.Errorf("NextFill on an idle hierarchy = %d, want MaxInt64", got)
	}
	d1 := h.Access(0, 0x1000_0000, false, false)
	d2 := h.Access(0, 0x2000_0000, false, false)
	if d1 != d2 {
		t.Fatalf("identical cold misses filled at %d and %d", d1, d2)
	}
	if got := h.NextFill(0); got != d1 {
		t.Errorf("NextFill(0) = %d, want earliest fill %d", got, d1)
	}
	// At the fill cycle itself nothing later is outstanding.
	if got := h.NextFill(d1); got != math.MaxInt64 {
		t.Errorf("NextFill(%d) = %d, want MaxInt64", d1, got)
	}
	// A later, nearer fill (L2 hit after eviction does not apply here;
	// use a second miss issued later) keeps the list sorted.
	d3 := h.Access(50, 0x3000_0000, false, false)
	if got := h.NextFill(0); got != d1 || d3 <= d1 {
		t.Errorf("NextFill(0) = %d, want %d (later fill at %d)", got, d1, d3)
	}
}

func TestHierarchyPresent(t *testing.T) {
	h := defaultHier(t)
	if h.Present(0, 0x1000_0000) {
		t.Error("cold line present")
	}
	done := h.Access(0, 0x1000_0000, false, false)
	if h.Present(done-1, 0x1000_0000) {
		t.Error("in-flight line reported present")
	}
	if !h.Present(done, 0x1000_0000) {
		t.Error("filled line not present")
	}
}

func TestFloatBitsStability(t *testing.T) {
	m := NewMemory()
	for _, v := range []float64{0, 1, -1, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		m.WriteFloat64(0x100, v)
		if got := m.ReadFloat64(0x100); got != v {
			t.Errorf("float round trip: got %v, want %v", got, v)
		}
	}
}
