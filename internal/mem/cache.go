package mem

import "fmt"

// CacheConfig describes one set-associative cache level. The JSON
// tags are part of the HierConfig wire format (see hierarchy.go).
type CacheConfig struct {
	Name      string `json:"name,omitempty"`
	Sets      int    `json:"sets"`      // number of sets (power of two)
	Ways      int    `json:"ways"`      // associativity
	BlockSize int    `json:"blockSize"` // line size in bytes (power of two)
	Latency   int    `json:"latency"`   // access latency in cycles
}

// Validate checks the configuration.
func (c CacheConfig) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets %d must be a positive power of two", c.Name, c.Sets)
	}
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache %s: block size %d must be a positive power of two", c.Name, c.BlockSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", c.Name, c.Ways)
	}
	if c.Latency < 1 {
		return fmt.Errorf("cache %s: latency %d must be >= 1", c.Name, c.Latency)
	}
	return nil
}

// SizeBytes returns the cache capacity.
func (c CacheConfig) SizeBytes() int { return c.Sets * c.Ways * c.BlockSize }

// CacheStats counts cache events. Demand counters exclude prefetches.
type CacheStats struct {
	Accesses       uint64 // all lookups, including prefetch
	Misses         uint64 // all misses, including prefetch
	DemandAccesses uint64
	DemandMisses   uint64 // demand access, line absent and not in flight
	DelayedHits    uint64 // demand access to an in-flight line
	Writebacks     uint64 // dirty evictions
	PrefetchFills  uint64 // lines brought in by prefetch
	UsefulPrefetch uint64 // prefetched lines later touched by demand
	Evictions      uint64
}

// DemandMissRate returns demand misses per demand access.
func (s CacheStats) DemandMissRate() float64 {
	if s.DemandAccesses == 0 {
		return 0
	}
	return float64(s.DemandMisses) / float64(s.DemandAccesses)
}

type cacheLine struct {
	valid      bool
	tag        uint32 // block address (addr >> blockBits)
	dirty      bool
	prefetched bool   // filled by a CMP prefetch, not yet touched by demand
	lastUse    uint64 // LRU timestamp
}

// Cache is one timing-only set-associative cache level with true LRU
// replacement.
type Cache struct {
	cfg       CacheConfig
	blockBits uint
	setMask   uint32
	lines     []cacheLine // sets*ways, row-major by set
	tick      uint64
	stats     CacheStats
}

// NewCache builds a cache from its configuration, rejecting invalid
// geometry with an error.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bb := uint(0)
	for 1<<bb != cfg.BlockSize {
		bb++
	}
	return &Cache{
		cfg:       cfg,
		blockBits: bb,
		setMask:   uint32(cfg.Sets - 1),
		lines:     make([]cacheLine, cfg.Sets*cfg.Ways),
	}, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// BlockAddr returns the block address of a byte address.
func (c *Cache) BlockAddr(addr uint32) uint32 { return addr >> c.blockBits }

func (c *Cache) set(block uint32) []cacheLine {
	s := int(block & c.setMask)
	return c.lines[s*c.cfg.Ways : (s+1)*c.cfg.Ways]
}

// Lookup probes for the block containing addr without modifying state.
func (c *Cache) Lookup(addr uint32) bool {
	block := c.BlockAddr(addr)
	for i := range c.set(block) {
		l := &c.set(block)[i]
		if l.valid && l.tag == block {
			return true
		}
	}
	return false
}

// Access probes the cache, updating LRU and dirty state. It returns
// whether the access hit. On a miss the caller is responsible for
// calling Fill once the lower level has supplied the line.
func (c *Cache) Access(addr uint32, write, prefetch bool) (hit bool) {
	c.tick++
	c.stats.Accesses++
	if !prefetch {
		c.stats.DemandAccesses++
	}
	block := c.BlockAddr(addr)
	set := c.set(block)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == block {
			l.lastUse = c.tick
			if write {
				l.dirty = true
			}
			if !prefetch && l.prefetched {
				c.stats.UsefulPrefetch++
				l.prefetched = false
			}
			return true
		}
	}
	c.stats.Misses++
	if !prefetch {
		c.stats.DemandMisses++
	}
	return false
}

// MarkDelayedHit records a demand access that hit a line still in
// flight from a previous miss (counted by the hierarchy's MSHRs).
func (c *Cache) MarkDelayedHit() { c.stats.DelayedHits++ }

// WritebackTo marks the line containing addr dirty if present,
// modelling a dirty eviction from the level above landing in this
// level. It reports whether the line was present; when it is not, the
// writeback falls through to main memory.
func (c *Cache) WritebackTo(addr uint32) bool {
	block := c.BlockAddr(addr)
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Fill allocates the block containing addr, evicting the LRU way.
// It returns the evicted block address and whether a dirty line was
// evicted (for writeback accounting at the caller's discretion).
func (c *Cache) Fill(addr uint32, write, prefetch bool) (evicted uint32, evictedValid, writeback bool) {
	c.tick++
	block := c.BlockAddr(addr)
	set := c.set(block)
	victim := 0
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = i
			break
		}
		if l.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		evicted, evictedValid = v.tag, true
		c.stats.Evictions++
		if v.dirty {
			writeback = true
			c.stats.Writebacks++
		}
	}
	*v = cacheLine{valid: true, tag: block, dirty: write, prefetched: prefetch, lastUse: c.tick}
	if prefetch {
		c.stats.PrefetchFills++
	}
	return evicted, evictedValid, writeback
}

// Invalidate drops the block containing addr if present.
func (c *Cache) Invalidate(addr uint32) {
	block := c.BlockAddr(addr)
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i] = cacheLine{}
			return
		}
	}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Flush invalidates every line (contents only; stats preserved).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}
