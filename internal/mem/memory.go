// Package mem implements the simulated memory system: a sparse byte-
// addressable main memory holding the architectural data image, and a
// two-level set-associative cache hierarchy used for timing.
//
// The caches are timing-only: data always lives in the Memory image and
// every store updates it at commit, while the caches track presence,
// LRU state, dirtiness and in-flight fills to produce latencies and
// miss statistics. This is the same separation SimpleScalar's
// sim-outorder uses.
package mem

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// Memory is a sparse, paged, little-endian byte-addressable memory.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	// Last translation, memoised: accesses have strong page locality,
	// so most lookups skip the map probe entirely. lastPage==nil means
	// the memo is empty (untouched pages are never cached, so a later
	// write to the same page cannot be shadowed by a stale nil).
	lastPN   uint32
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*[pageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// Read8 returns the byte at addr (0 for untouched memory).
func (m *Memory) Read8(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// Write8 stores one byte.
func (m *Memory) Write8(addr uint32, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read32 loads a little-endian 32-bit word.
func (m *Memory) Read32(addr uint32) uint32 {
	// Fast path within one page.
	if addr&pageMask <= pageSize-4 {
		if p := m.page(addr, false); p != nil {
			o := addr & pageMask
			return uint32(p[o]) | uint32(p[o+1])<<8 | uint32(p[o+2])<<16 | uint32(p[o+3])<<24
		}
		return 0
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v |= uint32(m.Read8(addr+i)) << (8 * i)
	}
	return v
}

// Write32 stores a little-endian 32-bit word.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&pageMask <= pageSize-4 {
		p := m.page(addr, true)
		o := addr & pageMask
		p[o] = byte(v)
		p[o+1] = byte(v >> 8)
		p[o+2] = byte(v >> 16)
		p[o+3] = byte(v >> 24)
		return
	}
	for i := uint32(0); i < 4; i++ {
		m.Write8(addr+i, byte(v>>(8*i)))
	}
}

// Read64 loads a little-endian 64-bit word.
func (m *Memory) Read64(addr uint32) uint64 {
	return uint64(m.Read32(addr)) | uint64(m.Read32(addr+4))<<32
}

// Write64 stores a little-endian 64-bit word.
func (m *Memory) Write64(addr uint32, v uint64) {
	m.Write32(addr, uint32(v))
	m.Write32(addr+4, uint32(v>>32))
}

// ReadFloat64 loads an IEEE-754 double.
func (m *Memory) ReadFloat64(addr uint32) float64 {
	return math.Float64frombits(m.Read64(addr))
}

// WriteFloat64 stores an IEEE-754 double.
func (m *Memory) WriteFloat64(addr uint32, v float64) {
	m.Write64(addr, math.Float64bits(v))
}

// LoadSegment copies data into memory starting at base.
func (m *Memory) LoadSegment(base uint32, data []byte) {
	for i, b := range data {
		m.Write8(base+uint32(i), b)
	}
}

// ReadRange copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadRange(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint32(i))
	}
	return out
}

// Checksum returns a deterministic FNV-1a digest of the entire touched
// memory image. Pages that were allocated but remain all-zero hash the
// same as untouched pages, so images produced by different simulators
// compare equal iff the architectural contents are equal.
func (m *Memory) Checksum() uint64 {
	pns := make([]uint32, 0, len(m.pages))
	for pn, p := range m.pages {
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if !zero {
			pns = append(pns, pn)
		}
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := fnv.New64a()
	var buf [4]byte
	for _, pn := range pns {
		buf[0], buf[1], buf[2], buf[3] = byte(pn), byte(pn>>8), byte(pn>>16), byte(pn>>24)
		h.Write(buf[:])
		h.Write(m.pages[pn][:])
	}
	return h.Sum64()
}

// Clone returns a deep copy of the memory image.
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		c.pages[pn] = cp
	}
	return c
}

// String summarises the image.
func (m *Memory) String() string {
	return fmt.Sprintf("memory[%d pages]", len(m.pages))
}
