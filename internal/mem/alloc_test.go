package mem

import "testing"

// Access is called for every load, store, and prefetch the machine
// simulates; with no probe attached it must not allocate once the MSHR
// list has grown to its steady-state capacity. Pinned so the telemetry
// hooks can never sneak an allocation into the telemetry-off path.
func TestHierarchyAccessDoesNotAllocate(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	// A strided sweep over a footprint larger than L2 keeps both levels
	// missing, so every access exercises the miss+fill path. Warm up
	// until the MSHR slice has reached its final capacity.
	const stride, footprint = 64, 1 << 22
	addr := uint32(0)
	access := func() {
		h.Access(now, addr, false, false)
		addr = (addr + stride) % footprint
		now += 3
	}
	for i := 0; i < 100_000; i++ {
		access()
	}
	avg := testing.AllocsPerRun(20, func() {
		for i := 0; i < 10_000; i++ {
			access()
		}
	})
	if avg != 0 {
		t.Errorf("Access: %.2f allocs per 10k accesses with nil probe, want 0", avg)
	}
}

// fillProbe records probe callbacks for the wiring test.
type fillProbe struct {
	misses, fills, prefetches int
	lastMSHR                  int
}

func (p *fillProbe) CacheMiss(string, uint32, bool) { p.misses++ }
func (p *fillProbe) CacheFill(string, uint32, int64) {
	p.fills++
}
func (p *fillProbe) PrefetchIssued(uint32) { p.prefetches++ }
func (p *fillProbe) MSHROccupancy(n int)   { p.lastMSHR = n }

func TestHierarchyProbeSeesTraffic(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := &fillProbe{}
	h.SetProbe(p)
	h.Access(0, 0x1000, false, false)  // cold: L1 and L2 miss, one fill
	h.Access(0, 0x9000, false, true)   // prefetch miss
	if p.misses < 2 {
		t.Errorf("probe saw %d misses, want >= 2 (l1d+l2 per cold access)", p.misses)
	}
	if p.fills != 2 {
		t.Errorf("probe saw %d fills, want 2", p.fills)
	}
	if p.prefetches != 1 {
		t.Errorf("probe saw %d prefetch issues, want 1", p.prefetches)
	}
	if p.lastMSHR != 2 {
		t.Errorf("probe saw MSHR occupancy %d, want 2", p.lastMSHR)
	}
	if got := h.InFlight(0); got != 2 {
		t.Errorf("InFlight(0) = %d, want 2", got)
	}
	// Both fills complete well before cycle 10000.
	if got := h.InFlight(10_000); got != 0 {
		t.Errorf("InFlight(10000) = %d, want 0", got)
	}
}
