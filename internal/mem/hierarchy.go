package mem

import (
	"fmt"
	"math"

	"hidisc/internal/simfault"
)

// HierConfig describes the full data-memory hierarchy. The defaults
// reproduce Table 1 of the paper.
//
// The JSON field names are a stable wire format shared by the
// hidisc-serve API, its client, and configuration files; changing a
// tag is a breaking protocol change (pinned by TestHierConfigJSON).
type HierConfig struct {
	L1D        CacheConfig `json:"l1d"`
	L2         CacheConfig `json:"l2"`
	MemLatency int         `json:"memLatency"` // main-memory access latency in CPU cycles
}

// DefaultHierConfig returns the paper's Table 1 hierarchy: L1D 256
// sets / 32 B blocks / 4-way LRU / 1 cycle; unified L2 1024 sets / 64 B
// blocks / 4-way LRU / 12 cycles; memory 120 cycles.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1D:        CacheConfig{Name: "dl1", Sets: 256, Ways: 4, BlockSize: 32, Latency: 1},
		L2:         CacheConfig{Name: "ul2", Sets: 1024, Ways: 4, BlockSize: 64, Latency: 12},
		MemLatency: 120,
	}
}

// WithLatencies returns a copy with the L2 and memory latencies
// replaced; used for the Figure 10 latency-tolerance sweep.
func (c HierConfig) WithLatencies(l2, mem int) HierConfig {
	c.L2.Latency = l2
	c.MemLatency = mem
	return c
}

// Validate checks the configuration.
func (c HierConfig) Validate() error {
	if err := c.L1D.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.MemLatency < 1 {
		return fmt.Errorf("hierarchy: memory latency %d must be >= 1", c.MemLatency)
	}
	if c.L2.BlockSize < c.L1D.BlockSize {
		return fmt.Errorf("hierarchy: L2 block (%d) smaller than L1 block (%d)", c.L2.BlockSize, c.L1D.BlockSize)
	}
	return nil
}

// HierStats aggregates hierarchy-level counters.
type HierStats struct {
	L1D             CacheStats
	L2              CacheStats
	MemWritebacks   uint64 // dirty L2 evictions (timing ignored)
	MSHRMergedHits  uint64 // demand accesses merged into an in-flight fill
	PrefetchIssued  uint64
	InFlightAtReset int
}

// mshrFill is one in-flight L1 block: the block address and the cycle
// its fill completes.
type mshrFill struct {
	block uint32
	ready int64
}

// Hierarchy is the shared data-memory system: an L1 data cache backed
// by a unified L2 backed by main memory, with MSHR-style merging of
// accesses to in-flight blocks.
//
// State (tag arrays, LRU) is updated eagerly at access time; the MSHR
// list records when each in-flight L1 block's fill completes so that
// later accesses to the block are delayed until the data has actually
// arrived. This models a non-blocking cache with unlimited MSHRs, the
// sim-outorder default. The list is kept sorted by completion cycle
// and bounded by the number of outstanding misses: completed entries
// are pruned from the front on every access, and NextFill (the
// event-driven cycle skipper's clock) is O(1).
type Hierarchy struct {
	cfg  HierConfig
	L1D  *Cache
	L2   *Cache
	mshr []mshrFill // in flight, sorted ascending by ready cycle

	l1BlockShift uint // log2(L1 block size), precomputed

	// probe, when attached, observes miss/fill/prefetch traffic for the
	// telemetry trace sink. Nil (the default) costs a pointer check per
	// event site, pinned by the AllocsPerRun test.
	probe Probe

	memWritebacks  uint64
	mergedHits     uint64
	prefetchIssued uint64
}

// Probe observes memory-system events for the telemetry trace sink:
// demand/prefetch misses per level, L1 fill reservations with their
// completion cycle, prefetch issues, and the in-flight fill count
// whenever it changes. Implementations are pure observers — they must
// not touch the hierarchy or perturb timing.
type Probe interface {
	CacheMiss(level string, addr uint32, prefetch bool)
	CacheFill(level string, addr uint32, readyAt int64)
	PrefetchIssued(addr uint32)
	MSHROccupancy(n int)
}

// NewHierarchy builds a hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	bb := uint(0)
	for 1<<bb != cfg.L1D.BlockSize {
		bb++
	}
	return &Hierarchy{
		cfg:          cfg,
		L1D:          l1,
		L2:           l2,
		l1BlockShift: bb,
	}, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// SetProbe attaches an event observer (nil detaches).
func (h *Hierarchy) SetProbe(p Probe) { h.probe = p }

// Access simulates one data access issued at cycle now and returns the
// cycle at which the data is available (loads) or the write is accepted
// (stores). Prefetch accesses fill the caches and are tracked
// separately in the statistics; they never raise demand-miss counters.
func (h *Hierarchy) Access(now int64, addr uint32, write, prefetch bool) int64 {
	if prefetch {
		h.prefetchIssued++
		if h.probe != nil {
			h.probe.PrefetchIssued(addr)
		}
	}
	// Prune completed fills from the sorted front. This is driven purely
	// by the access sequence, so skip and no-skip runs prune identically.
	pruned := false
	for len(h.mshr) > 0 && h.mshr[0].ready <= now {
		h.mshr = h.mshr[:copy(h.mshr, h.mshr[1:])]
		pruned = true
	}
	if pruned && h.probe != nil {
		h.probe.MSHROccupancy(len(h.mshr))
	}
	l1lat := int64(h.cfg.L1D.Latency)
	block := h.L1D.BlockAddr(addr)
	if h.L1D.Access(addr, write, prefetch) {
		if ready, ok := h.fillTime(block); ok && now < ready {
			// Line is still in flight: merge into the pending fill.
			if !prefetch {
				h.L1D.MarkDelayedHit()
				h.mergedHits++
			}
			return ready
		}
		return now + l1lat
	}

	// L1 miss: consult L2, fill both levels, record fill time.
	if h.probe != nil {
		h.probe.CacheMiss("l1d", addr, prefetch)
	}
	fill := l1lat + int64(h.cfg.L2.Latency)
	if !h.L2.Access(addr, false, prefetch) {
		if h.probe != nil {
			h.probe.CacheMiss("l2", addr, prefetch)
		}
		fill += int64(h.cfg.MemLatency)
		_, _, wb := h.L2.Fill(addr, false, prefetch)
		if wb {
			h.memWritebacks++
		}
	}
	evicted, evValid, wb := h.L1D.Fill(addr, write, prefetch)
	if evValid {
		// If the victim was itself in flight its MSHR entry is dead.
		h.dropFill(evicted)
		if wb {
			evAddr := evicted << h.l1BlockShift
			if !h.L2.WritebackTo(evAddr) {
				h.memWritebacks++
			}
		}
	}
	ready := now + fill
	h.insertFill(block, ready)
	if h.probe != nil {
		h.probe.CacheFill("l1d", addr, ready)
		h.probe.MSHROccupancy(len(h.mshr))
	}
	return ready
}

// fillTime returns the completion cycle of the in-flight fill for an L1
// block, if one is outstanding.
func (h *Hierarchy) fillTime(block uint32) (int64, bool) {
	for i := range h.mshr {
		if h.mshr[i].block == block {
			return h.mshr[i].ready, true
		}
	}
	return 0, false
}

// dropFill removes the MSHR entry for a block, preserving order.
func (h *Hierarchy) dropFill(block uint32) {
	for i := range h.mshr {
		if h.mshr[i].block == block {
			h.mshr = append(h.mshr[:i], h.mshr[i+1:]...)
			return
		}
	}
}

// insertFill records an in-flight fill, keeping the list sorted by
// completion cycle (ties keep insertion order, so the order is
// deterministic).
func (h *Hierarchy) insertFill(block uint32, ready int64) {
	h.mshr = append(h.mshr, mshrFill{block: block, ready: ready})
	for i := len(h.mshr) - 1; i > 0 && h.mshr[i-1].ready > ready; i-- {
		h.mshr[i-1], h.mshr[i] = h.mshr[i], h.mshr[i-1]
	}
}

// NextFill returns the earliest cycle strictly after now at which an
// in-flight fill completes, or math.MaxInt64 when nothing is in flight.
// The machine's event-driven fast-forward uses it as the memory
// system's next-wakeup clock. O(1) in the common case: the list is
// sorted by completion cycle and completed entries are pruned on every
// access.
func (h *Hierarchy) NextFill(now int64) int64 {
	for i := range h.mshr {
		if h.mshr[i].ready > now {
			return h.mshr[i].ready
		}
	}
	return math.MaxInt64
}

// InFlight returns how many L1 fills are outstanding at cycle now
// (the MSHR occupancy the telemetry sampler records).
func (h *Hierarchy) InFlight(now int64) int {
	n := 0
	for i := range h.mshr {
		if h.mshr[i].ready > now {
			n++
		}
	}
	return n
}

// Present reports whether addr currently hits in L1 with its fill
// complete at cycle now; used by tests and the prefetch-usefulness
// accounting.
func (h *Hierarchy) Present(now int64, addr uint32) bool {
	if !h.L1D.Lookup(addr) {
		return false
	}
	if ready, ok := h.fillTime(h.L1D.BlockAddr(addr)); ok && now < ready {
		return false
	}
	return true
}

// Stats returns the aggregated counters.
func (h *Hierarchy) Stats() HierStats {
	return HierStats{
		L1D:             h.L1D.Stats(),
		L2:              h.L2.Stats(),
		MemWritebacks:   h.memWritebacks,
		MSHRMergedHits:  h.mergedHits,
		PrefetchIssued:  h.prefetchIssued,
		InFlightAtReset: len(h.mshr),
	}
}

// FaultState summarises the hierarchy for a fault snapshot: MSHR
// entries whose fill has not completed by cycle now, plus the demand
// traffic at both levels.
func (h *Hierarchy) FaultState(now int64) simfault.HierState {
	inFlight := 0
	for i := range h.mshr {
		if h.mshr[i].ready > now {
			inFlight++
		}
	}
	l1, l2 := h.L1D.Stats(), h.L2.Stats()
	return simfault.HierState{
		MSHRInFlight:      inFlight,
		L1DDemandAccesses: l1.DemandAccesses,
		L1DDemandMisses:   l1.DemandMisses,
		L2DemandAccesses:  l2.DemandAccesses,
		L2DemandMisses:    l2.DemandMisses,
		PrefetchIssued:    h.prefetchIssued,
	}
}

// Reset flushes both cache levels, clears in-flight state and zeroes
// statistics.
func (h *Hierarchy) Reset() {
	h.L1D.Flush()
	h.L1D.ResetStats()
	h.L2.Flush()
	h.L2.ResetStats()
	h.mshr = h.mshr[:0]
	h.memWritebacks, h.mergedHits, h.prefetchIssued = 0, 0, 0
}
