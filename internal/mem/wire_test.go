package mem

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestHierConfigJSON pins the hierarchy wire format: explicit camelCase
// field names (no bare Go identifiers leaking into the protocol) and a
// lossless round trip, since the hidisc-serve API and client both ship
// hierarchies across this encoding.
func TestHierConfigJSON(t *testing.T) {
	cfg := DefaultHierConfig()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"l1d"`, `"l2"`, `"memLatency"`, `"sets"`, `"ways"`, `"blockSize"`, `"latency"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoding %s missing field %s", data, want)
		}
	}
	for _, stale := range []string{`"L1D"`, `"MemLatency"`, `"BlockSize"`} {
		if strings.Contains(string(data), stale) {
			t.Errorf("encoding %s leaks Go field name %s", data, stale)
		}
	}
	var back HierConfig
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Errorf("round trip mangled the config:\n got %+v\nwant %+v", back, cfg)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped config fails validation: %v", err)
	}
}

func TestHierConfigJSONPartial(t *testing.T) {
	// Deserializing into a default lets API callers override only the
	// latencies, the common Figure 10 use.
	cfg := DefaultHierConfig()
	if err := json.Unmarshal([]byte(`{"l2":{"sets":1024,"ways":4,"blockSize":64,"latency":4},"memLatency":40}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.L2.Latency != 4 || cfg.MemLatency != 40 {
		t.Errorf("override not applied: %+v", cfg)
	}
	if cfg.L1D != DefaultHierConfig().L1D {
		t.Errorf("untouched L1D changed: %+v", cfg.L1D)
	}
}
