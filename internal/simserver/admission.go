package simserver

import (
	"context"
	"sync"
)

// admission is the bounded-queue admission controller. It tracks two
// limits: run slots (the simulation worker pool, `workers` wide) and
// an overall admission bound of workers+queue jobs in the building at
// once. A submission first reserves admission tokens — all-or-nothing,
// so a batch either fits entirely or is rejected whole — then each job
// blocks on a run slot before simulating. Rejection is instantaneous
// (no waiting), which is what lets the server promise Retry-After
// instead of letting latency grow without bound.
type admission struct {
	mu       sync.Mutex
	admitted int
	limit    int // workers + queue depth

	run chan struct{} // buffered to the worker-pool width
}

func newAdmission(workers, queue int) *admission {
	return &admission{
		limit: workers + queue,
		run:   make(chan struct{}, workers),
	}
}

// TryAdmit reserves n admission tokens, all or nothing. It reports
// whether the reservation succeeded and, on failure, how many jobs
// were already admitted (the backlog a Retry-After estimate is based
// on).
func (a *admission) TryAdmit(n int) (ok bool, backlog int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.admitted+n > a.limit {
		return false, a.admitted
	}
	a.admitted += n
	return true, a.admitted
}

// Release returns n admission tokens.
func (a *admission) Release(n int) {
	a.mu.Lock()
	a.admitted -= n
	if a.admitted < 0 {
		panic("simserver: admission token over-release")
	}
	a.mu.Unlock()
}

// InFlight returns the number of currently admitted jobs.
func (a *admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted
}

// AcquireRun blocks until a worker slot is free or ctx is done.
func (a *admission) AcquireRun(ctx context.Context) error {
	select {
	case a.run <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReleaseRun frees a worker slot.
func (a *admission) ReleaseRun() { <-a.run }
