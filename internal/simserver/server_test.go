package simserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hidisc/internal/experiments"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/simclient"
	"hidisc/internal/simfault"
	"hidisc/internal/simserver"
	"hidisc/internal/workloads"
)

// newTestServer starts a simserver on an ephemeral port.
func newTestServer(t *testing.T, cfg simserver.Config) (*simserver.Server, *simclient.Client) {
	t.Helper()
	s := simserver.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, simclient.New(ts.URL)
}

func testConfig() simserver.Config {
	cfg := simserver.DefaultConfig(workloads.ScaleTest)
	cfg.Queue = 256 // admit several whole fig8 matrices at once
	return cfg
}

// localFig8 runs the Figure 8 matrix on a sequential local runner and
// returns the canonical JSON encoding of each measurement, in job
// order — the reference the service must match byte for byte.
func localFig8(t *testing.T) ([]experiments.Job, [][]byte) {
	t.Helper()
	r := experiments.NewRunner(workloads.ScaleTest)
	jobs := experiments.Fig8Jobs(r.Hier, workloads.ScaleTest)
	ms, err := r.RunJobs(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(ms))
	for i, m := range ms {
		enc, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = enc
	}
	return jobs, want
}

// TestEndToEndFig8Concurrent is the acceptance test: four concurrent
// remote clients submit the Figure 8 matrix; every response must be
// byte-identical to the sequential local runner, identical in-flight
// submissions must dedup (singleflight counter > 0, forced
// deterministically by gating one job until the other clients join
// it), and the admission/cache counters must reconcile.
func TestEndToEndFig8Concurrent(t *testing.T) {
	jobs, want := localFig8(t)
	s, c := newTestServer(t, testConfig())

	// Gate the first matrix job's singleflight leader until the other
	// three clients have joined the same in-flight simulation.
	target := jobs[0].Key()
	gate := make(chan struct{})
	var gateOnce sync.Once
	simserver.SetLeadGate(s, func(key string) {
		if key == target {
			gateOnce.Do(func() { <-gate })
		}
	})
	const clients = 4
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for simserver.FlightWaiters(s, target) < clients-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		close(gate)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	type result struct {
		items []simserver.BatchItem
		err   error
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		go func() {
			items, errs, err := c.Batch(ctx, simserver.BatchRequest{Matrix: "fig8", Scale: "test"})
			if err == nil {
				err = errors.Join(errs...)
			}
			results <- result{items, err}
		}()
	}
	for i := 0; i < clients; i++ {
		res := <-results
		if res.err != nil {
			t.Fatalf("client %d: %v", i, res.err)
		}
		if len(res.items) != len(jobs) {
			t.Fatalf("client %d: %d items, want %d", i, len(res.items), len(jobs))
		}
		for _, it := range res.items {
			if !bytes.Equal(it.Measurement, want[it.Index]) {
				t.Errorf("job %d (%s on %s): remote measurement differs from local sequential run\nremote: %s\nlocal:  %s",
					it.Index, jobs[it.Index].Workload, jobs[it.Index].Arch, it.Measurement, want[it.Index])
			}
			if it.Key != jobs[it.Index].Key() {
				t.Errorf("job %d: key %s, want %s", it.Index, it.Key, jobs[it.Index].Key())
			}
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Deduped == 0 {
		t.Error("dedup counter is 0; concurrent identical submissions did not share a simulation")
	}
	if m.Accepted != int64(clients*len(jobs)) {
		t.Errorf("accepted = %d, want %d", m.Accepted, clients*len(jobs))
	}
	if m.CacheHits+m.Deduped+m.Completed < int64(clients*len(jobs)) {
		t.Errorf("counters don't cover the traffic: %+v", m)
	}
	if m.InFlight != 0 {
		t.Errorf("inFlight = %d after all batches returned", m.InFlight)
	}
	if m.SimCycles == 0 || m.MCyclesPerSec == 0 {
		t.Errorf("throughput metrics empty: %+v", m)
	}
}

// TestSingleJobCacheAndDedupFlags pins the response metadata: a cold
// job is neither cached nor deduped, an identical resubmission is a
// cache hit, and the measurement bytes are identical in both.
func TestSingleJobCacheAndDedupFlags(t *testing.T) {
	_, c := newTestServer(t, testConfig())
	ctx := context.Background()
	req := simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC}

	first, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Deduped {
		t.Errorf("cold job flagged cached=%v deduped=%v", first.Cached, first.Deduped)
	}
	again, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical resubmission missed the result cache")
	}
	if !bytes.Equal(first.Measurement, again.Measurement) {
		t.Error("cached measurement differs from the original")
	}
	m, err := first.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload != "Pointer" || m.Cycles <= 0 {
		t.Errorf("implausible measurement %+v", m)
	}
}

// TestBackpressure429 fills the admission queue (1 worker + 1 queue
// slot, both held at the leader gate) and checks that the next
// submission is shed with 429 + Retry-After instead of waiting.
func TestBackpressure429(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Queue = 1
	s, c := newTestServer(t, cfg)

	gate := make(chan struct{})
	simserver.SetLeadGate(s, func(string) { <-gate })
	ctx := context.Background()

	type done struct {
		resp simserver.JobResponse
		err  error
	}
	finished := make(chan done, 2)
	submit := func(arch machine.Arch) {
		resp, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: arch})
		finished <- done{resp, err}
	}
	go submit(machine.Superscalar)
	go submit(machine.HiDISC)
	deadline := time.Now().Add(30 * time.Second)
	for s.InFlight() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", s.InFlight())
	}

	_, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.CPAP})
	var apiErr *simclient.APIError
	if !errors.As(err, &apiErr) || !apiErr.Overloaded() {
		t.Fatalf("overloaded server answered %v, want 429", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Errorf("Retry-After = %v, want >= 1s", apiErr.RetryAfter)
	}
	if !strings.Contains(apiErr.Wire.Message, "admission queue full") {
		t.Errorf("unhelpful overload message %q", apiErr.Wire.Message)
	}

	close(gate) // let the held jobs run to completion
	for i := 0; i < 2; i++ {
		d := <-finished
		if d.err != nil {
			t.Errorf("admitted job failed after overload: %v", d.err)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}
}

// TestGracefulDrain pins the shutdown contract: draining flips the
// health probe to 503 and refuses new submissions while admitted jobs
// run to completion and answer 200.
func TestGracefulDrain(t *testing.T) {
	s, c := newTestServer(t, testConfig())
	gate := make(chan struct{})
	simserver.SetLeadGate(s, func(string) { <-gate })
	ctx := context.Background()

	finished := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.Superscalar})
		finished <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for s.InFlight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	s.StartDraining()
	if err := c.Healthz(ctx); err == nil {
		t.Error("healthz reports live while draining")
	} else {
		var apiErr *simclient.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
			t.Errorf("draining healthz = %v, want 503", err)
		}
	}
	_, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	var apiErr *simclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Wire.Kind != simserver.KindDraining {
		t.Fatalf("draining server accepted a job: %v", err)
	}

	close(gate)
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-finished; err != nil {
		t.Errorf("in-flight job failed during drain: %v", err)
	}
}

// TestErrorMapping pins the typed-fault → HTTP contract, including the
// downloadable forensic snapshot on simulation faults.
func TestErrorMapping(t *testing.T) {
	_, c := newTestServer(t, testConfig())
	ctx := context.Background()

	expect := func(t *testing.T, err error, status int, kind string) *simclient.APIError {
		t.Helper()
		var apiErr *simclient.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("got %v, want *APIError", err)
		}
		if apiErr.Status != status || apiErr.Wire.Kind != kind {
			t.Fatalf("got HTTP %d kind %q (%s), want %d %q",
				apiErr.Status, apiErr.Wire.Kind, apiErr.Wire.Message, status, kind)
		}
		return apiErr
	}

	t.Run("unknown workload", func(t *testing.T) {
		_, err := c.Run(ctx, simserver.JobRequest{Workload: "Nonsense", Arch: machine.HiDISC})
		expect(t, err, http.StatusBadRequest, simserver.KindBadRequest)
	})
	t.Run("unknown arch", func(t *testing.T) {
		// The typed client can't even marshal an invalid Arch, so this
		// server-side rejection needs a raw request.
		resp, err := http.Post(c.BaseURL+"/v1/jobs", "application/json",
			strings.NewReader(`{"workload":"Pointer","arch":"vliw"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body simserver.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest || body.Err.Kind != simserver.KindBadRequest {
			t.Fatalf("got HTTP %d kind %q (%s), want 400 bad-request",
				resp.StatusCode, body.Err.Kind, body.Err.Message)
		}
		if !strings.Contains(body.Err.Message, "superscalar") {
			t.Errorf("message %q does not list the valid architectures", body.Err.Message)
		}
	})
	t.Run("invalid hierarchy", func(t *testing.T) {
		_, err := c.Run(ctx, simserver.JobRequest{
			Workload: "Pointer", Arch: machine.HiDISC,
			Hier: json.RawMessage(`{"memLatency":-5}`),
		})
		expect(t, err, http.StatusBadRequest, simserver.KindBadRequest)
	})
	t.Run("unknown matrix", func(t *testing.T) {
		_, _, err := c.Batch(ctx, simserver.BatchRequest{Matrix: "fig99"})
		expect(t, err, http.StatusBadRequest, simserver.KindBadRequest)
	})
	t.Run("injected deadlock maps to 422 with snapshot", func(t *testing.T) {
		// Stall the AP's cache ports forever: the machine wedges and
		// the watchdog raises a DeadlockFault with a forensic snapshot.
		_, err := c.Run(ctx, simserver.JobRequest{
			Workload: "Pointer", Arch: machine.CPAP,
			Fault: simfault.NewInjector(1, simfault.Action{Kind: simfault.ActStallCachePort, Core: "ap", At: 100}),
		})
		apiErr := expect(t, err, http.StatusUnprocessableEntity, string(simfault.KindDeadlock))
		if len(apiErr.Wire.Snapshot) == 0 {
			t.Fatal("deadlock error carries no snapshot")
		}
		var snap simfault.Snapshot
		if jerr := json.Unmarshal(apiErr.Wire.Snapshot, &snap); jerr != nil {
			t.Fatalf("snapshot does not decode: %v", jerr)
		}
		if snap.Kind != simfault.KindDeadlock || len(snap.Cores) == 0 {
			t.Errorf("snapshot lacks forensics: %+v", snap)
		}
	})
	t.Run("cancelled job maps to 504", func(t *testing.T) {
		_, err := c.Run(ctx, simserver.JobRequest{
			Workload: "Pointer", Arch: machine.HiDISC, TimeoutMs: 1, Scale: "paper",
		})
		expect(t, err, http.StatusGatewayTimeout, string(simfault.KindTimeout))
	})
}

// TestBatchHierOverride checks that batch jobs carry per-job
// hierarchies (the Figure 10 sweep shape) and that measurements come
// back in submission order with matching keys.
func TestBatchHierOverride(t *testing.T) {
	_, c := newTestServer(t, testConfig())
	ctx := context.Background()

	hier := mem.DefaultHierConfig()
	jobs := experiments.Fig10Jobs("Pointer", hier, workloads.ScaleTest)[:4] // superscalar sweep
	br := simserver.BatchRequest{Scale: "test"}
	for _, j := range jobs {
		br.Jobs = append(br.Jobs, simserver.JobRequest{
			Workload: j.Workload, Arch: j.Arch, Hier: simserver.HierJSON(j.Hier),
		})
	}
	ms, items, err := c.Measurements(ctx, br)
	if err != nil {
		t.Fatal(err)
	}
	r := experiments.NewRunner(workloads.ScaleTest)
	want, err := r.RunJobs(1, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if items[i].Key != jobs[i].Key() {
			t.Errorf("job %d: key mismatch", i)
		}
		if ms[i].Cycles != want[i].Cycles {
			t.Errorf("job %d: %d cycles remote, %d local", i, ms[i].Cycles, want[i].Cycles)
		}
		wantEnc, _ := json.Marshal(want[i])
		if !bytes.Equal(items[i].Measurement, wantEnc) {
			t.Errorf("job %d: measurement bytes differ from local run", i)
		}
	}
	// The four latency points must be distinct simulations.
	seen := map[string]bool{}
	for _, it := range items {
		if seen[it.Key] {
			t.Errorf("duplicate key %s across distinct latency points", it.Key)
		}
		seen[it.Key] = true
	}
}

// TestOversizedBatchRejected pins the capacity guard: a batch larger
// than workers+queue can never be admitted, so it must be refused as a
// bad request (not endlessly 429ed).
func TestOversizedBatchRejected(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Queue = 2
	_, c := newTestServer(t, cfg)
	br := simserver.BatchRequest{}
	for i := 0; i < 4; i++ {
		br.Jobs = append(br.Jobs, simserver.JobRequest{Workload: "Pointer", Arch: machine.HiDISC})
	}
	_, _, err := c.Batch(context.Background(), br)
	var apiErr *simclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("oversized batch: %v, want 400", err)
	}
	if !strings.Contains(apiErr.Wire.Message, "capacity") {
		t.Errorf("message %q does not explain the capacity limit", apiErr.Wire.Message)
	}
}

// TestFaultedJobsBypassCache: two identical fault-plan submissions
// must both simulate (no cache pollution from perturbed runs), and a
// healthy job with the same shape must not see their results.
func TestFaultedJobsBypassCache(t *testing.T) {
	_, c := newTestServer(t, testConfig())
	ctx := context.Background()
	// A benign perturbation that still completes: stall the core's
	// cache ports briefly.
	plan := simfault.NewInjector(7, simfault.Action{
		Kind: simfault.ActStallCachePort, Core: "core", At: 10, Until: 200,
	})
	req := simserver.JobRequest{Workload: "Pointer", Arch: machine.Superscalar, Fault: plan}
	first, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || second.Cached || first.Deduped || second.Deduped {
		t.Error("faulted submissions used cache/dedup; they must bypass both")
	}
	if !bytes.Equal(first.Measurement, second.Measurement) {
		t.Error("deterministic fault plan produced differing measurements")
	}
	healthy, err := c.Run(ctx, simserver.JobRequest{Workload: "Pointer", Arch: machine.Superscalar})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Cached {
		t.Error("healthy job hit a cache entry created by a perturbed run")
	}
	if bytes.Equal(healthy.Measurement, first.Measurement) {
		t.Error("perturbed and healthy measurements are identical; the fault plan was dropped")
	}
}

func ExampleScaleName() {
	fmt.Println(simserver.ScaleName(workloads.ScaleTest), simserver.ScaleName(workloads.ScalePaper))
	// Output: test paper
}
