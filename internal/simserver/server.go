package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hidisc/internal/experiments"
	"hidisc/internal/machine"
	"hidisc/internal/mem"
	"hidisc/internal/resultstore"
	"hidisc/internal/simfault"
	"hidisc/internal/stats"
	"hidisc/internal/telemetry"
	"hidisc/internal/tracing"
	"hidisc/internal/workloads"
)

// Config parameterises a Server.
type Config struct {
	// Scale is the default workload scale for requests that don't name
	// one.
	Scale workloads.Scale
	// Workers bounds concurrently running simulations; <= 0 means one
	// per CPU (experiments.EffectiveWorkers).
	Workers int
	// Queue bounds jobs admitted beyond the running ones. A submission
	// that would push the total past Workers+Queue is answered 429.
	Queue int
	// CacheEntries bounds the result cache; <= 0 disables caching.
	CacheEntries int
	// JobTimeout bounds each simulation's wall time (0 = unbounded);
	// requests may override per job via TimeoutMs.
	JobTimeout time.Duration
	// Logger receives structured request/job logs. Nil logs nowhere
	// (handy for tests); hidisc-serve passes a JSON handler on stderr.
	Logger *slog.Logger
	// Store, when non-nil, is the durable system of record for
	// results. Lookup order becomes LRU → store → simulate-and-append,
	// so completed jobs survive a process restart and are never
	// re-simulated. The server takes ownership: CloseStore (idempotent)
	// flushes and closes it on the drain path.
	Store *resultstore.Store
	// Tracer, when non-nil, collects job-lifecycle spans (request,
	// cache lookup, store read/append, singleflight wait, queue wait,
	// simulate) into its ring, served on GET /v1/traces. Nil disables
	// tracing; every instrumentation site then costs one pointer check
	// and allocates nothing.
	Tracer *tracing.Tracer
	// MachineTrace, when set (and Tracer is on), attaches a machine
	// telemetry session to every simulation this server runs and
	// captures the resulting Perfetto document on the simulate span, so
	// the coordinator's trace assembler can splice the per-core
	// pipeline timeline directly under the HTTP span that caused it.
	// Telemetry is a pure observer (the PR 5 contract): results stay
	// bit-identical, so cached/stored results remain valid either way.
	MachineTrace bool
	// SlowJob, when > 0, logs a structured warning with the per-stage
	// span breakdown for any job whose execute path exceeds it. The
	// durations in the log line are read from the spans themselves, so
	// the line and GET /v1/traces always agree.
	SlowJob time.Duration
}

// DefaultConfig returns production-shaped defaults at the given scale.
func DefaultConfig(scale workloads.Scale) Config {
	return Config{
		Scale:        scale,
		Workers:      0, // one per CPU
		Queue:        64,
		CacheEntries: 1024,
		JobTimeout:   0,
	}
}

// Server wraps experiments.Runner behind the HTTP API. Create with
// New, mount Handler on an http.Server, and call StartDraining /
// ForceCancel from the signal path for graceful shutdown.
type Server struct {
	cfg     Config
	workers int

	adm    *admission
	flight *flightGroup
	cache  *resultCache
	start  time.Time

	// baseCtx parents every simulation; ForceCancel cancels it, which
	// aborts in-flight machines through the RunContext path.
	baseCtx    context.Context
	cancelJobs context.CancelFunc

	draining atomic.Bool

	mu      sync.Mutex
	runners map[workloads.Scale]*experiments.Runner

	accepted  atomic.Int64
	rejected  atomic.Int64
	deduped   atomic.Int64
	cacheHits atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	avgJobNs  atomic.Int64 // EWMA of executed-job wall time

	// System-of-record tier (nil store leaves these zero and the
	// store state "off").
	store         *resultstore.Store
	storeHits     atomic.Int64
	storeMisses   atomic.Int64
	storePuts     atomic.Int64
	storeErrors   atomic.Int64
	storeDegraded atomic.Bool
	storeClose    sync.Once
	storeCloseErr error

	logger *slog.Logger
	tracer *tracing.Tracer
	reqSeq atomic.Int64 // request-ID source

	jobSeconds       *histogram // executed-job wall time
	queueWaitSeconds *histogram // wait for a worker slot

	// leadGate, when non-nil, is called by a singleflight leader after
	// it has registered its key and before it simulates. Tests use it
	// to hold a job in flight deterministically.
	leadGate func(key string)
}

// New builds a server. The runners it creates bypass their internal
// memo (Runner.NoMemo) — the server's bounded LRU is the only result
// cache, so a long job stream cannot grow memory without bound.
func New(cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	workers := experiments.EffectiveWorkers(cfg.Workers)
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger()
	}
	return &Server{
		cfg:        cfg,
		workers:    workers,
		adm:        newAdmission(workers, cfg.Queue),
		flight:     newFlightGroup(),
		cache:      newResultCache(cfg.CacheEntries),
		start:      time.Now(),
		baseCtx:    ctx,
		cancelJobs: cancel,
		runners:    map[workloads.Scale]*experiments.Runner{},
		store:      cfg.Store,

		logger:           logger,
		tracer:           cfg.Tracer,
		jobSeconds:       newHistogram(jobLatencyBounds),
		queueWaitSeconds: newHistogram(queueWaitBounds),
	}
}

// Tracer returns the server's span collector (nil when tracing is
// off) — the agent and tests read it; the coordinator reaches worker
// spans over GET /v1/traces instead.
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// runner returns the (lazily created) runner for a scale.
func (s *Server) runner(scale workloads.Scale) *experiments.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runners[scale]
	if !ok {
		r = experiments.NewRunner(scale)
		r.NoMemo = true
		s.runners[scale] = r
	}
	return r
}

// Handler returns the server's route table, wrapped in the
// observability middleware (request IDs + structured access log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	return s.withObservability(mux)
}

// StartDraining flips the server into drain mode: the liveness probe
// goes 503 (so load balancers stop routing here) and new submissions
// are refused, while admitted jobs run to completion.
func (s *Server) StartDraining() {
	if s.draining.CompareAndSwap(false, true) {
		s.logger.Info("drain started", "inFlight", s.adm.InFlight())
	}
}

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// ForceCancel aborts every in-flight simulation through the machine's
// RunContext cancellation path (they fail as timeout faults). The
// escape hatch when a drain deadline expires.
func (s *Server) ForceCancel() { s.cancelJobs() }

// InFlight returns the number of admitted, unfinished jobs.
func (s *Server) InFlight() int { return s.adm.InFlight() }

// Capacity returns the admission configuration (resolved worker-pool
// width and queue depth) — what a registering worker reports to the
// cluster coordinator as its contribution to fleet capacity.
func (s *Server) Capacity() (workers, queue int) { return s.workers, s.cfg.Queue }

// StoreState reports the result-store tier's health ("off", "ok",
// "degraded") — what a worker's cluster heartbeat carries to the fleet
// health view.
func (s *Server) StoreState() string { return s.storeState() }

// CloseStore flushes and closes the result store, exactly once no
// matter how many shutdown paths race to call it (graceful drain,
// drain-deadline force-cancel, second-signal force-cancel). Without a
// store it is a no-op. Every call returns the one close's error.
func (s *Server) CloseStore() error {
	if s.store == nil {
		return nil
	}
	s.storeClose.Do(func() {
		s.storeCloseErr = s.store.Close()
		s.logger.Info("result store closed",
			"records", s.store.Len(), "err", errString(s.storeCloseErr))
	})
	return s.storeCloseErr
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// storeState names the store tier's health for healthz and metrics:
// "off" (no store configured), "ok", or "degraded" (a store read or
// write has failed since startup; the server keeps serving from the
// LRU and by re-simulating, but durability is impaired).
func (s *Server) storeState() string {
	switch {
	case s.store == nil:
		return "off"
	case s.storeDegraded.Load():
		return "degraded"
	default:
		return "ok"
	}
}

// storeGet consults the system of record below the LRU. A read error
// degrades the store tier but does not fail the job — the result can
// be re-simulated.
func (s *Server) storeGet(reqCtx context.Context, key string, ph *phases) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	ssp := tracing.SpanFrom(reqCtx).Child("serve.store.read")
	ts := time.Now()
	enc, ok, err := s.store.Get(key)
	ssp.SetAttr("hit", strconv.FormatBool(ok && err == nil))
	ph.storeRead += endPhase(ssp, ts)
	if err != nil {
		if !errors.Is(err, resultstore.ErrClosed) {
			// Read-after-close is a shutdown artefact (the drain path
			// closed the store under an in-flight job), not damage.
			s.storeErrors.Add(1)
			s.storeDegraded.Store(true)
		}
		s.logger.Error("store read failed",
			"requestId", RequestIDFrom(reqCtx), "key", key, "err", err.Error())
		return nil, false
	}
	if !ok {
		s.storeMisses.Add(1)
		return nil, false
	}
	s.storeHits.Add(1)
	return enc, true
}

// storePut appends a completed result to the system of record. A
// write error degrades the store tier but never fails the job: the
// measurement is already in hand (and in the LRU).
func (s *Server) storePut(reqCtx context.Context, key string, enc []byte, ph *phases) {
	if s.store == nil {
		return
	}
	ssp := tracing.SpanFrom(reqCtx).Child("serve.store.append")
	ts := time.Now()
	err := s.store.Put(key, enc)
	ph.storeAppend += endPhase(ssp, ts)
	if err != nil {
		if !errors.Is(err, resultstore.ErrClosed) {
			// Put-after-close only happens when a job completes while
			// the drain path is closing the store; the job's client
			// still gets its result, and the next run re-simulates.
			s.storeErrors.Add(1)
			s.storeDegraded.Store(true)
		}
		s.logger.Error("store append failed",
			"requestId", RequestIDFrom(reqCtx), "key", key, "err", err.Error())
		return
	}
	s.storePuts.Add(1)
}

// Drain enters drain mode and waits until every admitted job has
// finished or ctx expires (ErrDrainTimeout).
func (s *Server) Drain(ctx context.Context) error {
	s.StartDraining()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.adm.InFlight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain: %d jobs still in flight: %w", s.adm.InFlight(), ctx.Err())
		case <-tick.C:
		}
	}
}

// --- job execution ---

// outcome is one job's result in server-internal form.
type outcome struct {
	key     string
	enc     []byte
	cached  bool
	stored  bool
	deduped bool
	err     error
}

// phases collects one job's per-stage durations for the slow-job log
// line. Each field mirrors the span of the same name: when tracing is
// on the value is the span's own measured duration, so the log line
// and GET /v1/traces agree exactly; with tracing off the stages are
// timed directly.
type phases struct {
	queueWait, cacheLookup, storeRead, simulate, storeAppend time.Duration
}

// endPhase closes a stage span and returns its duration, falling back
// to direct timing when tracing is off.
func endPhase(sp *tracing.Span, t0 time.Time) time.Duration {
	if sp == nil {
		return time.Since(t0)
	}
	sp.End()
	return sp.Duration()
}

// execute runs one validated submission through cache, dedup, and the
// worker pool. reqCtx governs only this caller's wait: a leader's
// simulation runs under the server's base context (plus the job's time
// budget) so a disconnected client cannot kill a result that other
// submissions — or the cache — still want.
func (s *Server) execute(reqCtx context.Context, jr JobRequest, scale workloads.Scale) outcome {
	job, err := jr.CanonicalJob(scale)
	if err != nil {
		return outcome{err: badRequest(err)}
	}
	key := job.Key()
	tracing.SpanFrom(reqCtx).SetAttr("key", key)
	t0 := time.Now()
	var ph phases
	out := s.executeJob(reqCtx, jr, job, key, scale, &ph)
	if s.cfg.SlowJob > 0 {
		if wall := time.Since(t0); wall >= s.cfg.SlowJob {
			s.logger.Warn("slow job",
				"requestId", RequestIDFrom(reqCtx), "key", key,
				"workload", job.Workload, "arch", string(job.Arch),
				"wallNs", wall.Nanoseconds(),
				"queueWaitNs", ph.queueWait.Nanoseconds(),
				"cacheLookupNs", ph.cacheLookup.Nanoseconds(),
				"storeReadNs", ph.storeRead.Nanoseconds(),
				"simulateNs", ph.simulate.Nanoseconds(),
				"storeAppendNs", ph.storeAppend.Nanoseconds(),
				"cached", out.cached, "stored", out.stored, "deduped", out.deduped)
		}
	}
	return out
}

// executeJob is execute's body: the cache → store → singleflight →
// simulate ladder, with one span per rung.
func (s *Server) executeJob(reqCtx context.Context, jr JobRequest, job experiments.Job, key string, scale workloads.Scale, ph *phases) outcome {
	// Faulted jobs are perturbed: not content-addressed, so neither
	// cached nor deduplicated. Each gets a private Injector copy (the
	// storm PRNG mutates).
	if jr.Fault != nil {
		inj := *jr.Fault
		job.Configure = func(c *machine.Config) { c.Inject = &inj }
		m, err := s.simulate(reqCtx, jr, job, scale, ph)
		if err != nil {
			return outcome{key: key, err: err}
		}
		enc, err := json.Marshal(m)
		if err != nil {
			return outcome{key: key, err: err}
		}
		return outcome{key: key, enc: enc}
	}

	sp := tracing.SpanFrom(reqCtx)

	// Lookup order: LRU cache, then the durable system of record, then
	// simulate-and-append. A store hit is promoted into the LRU so the
	// next lookup is memory-speed.
	csp := sp.Child("serve.cache.lookup")
	tc := time.Now()
	enc, ok := s.cache.Get(key)
	csp.SetAttr("hit", strconv.FormatBool(ok))
	ph.cacheLookup = endPhase(csp, tc)
	if ok {
		s.cacheHits.Add(1)
		return outcome{key: key, enc: enc, cached: true}
	}
	if enc, ok := s.storeGet(reqCtx, key, ph); ok {
		s.cache.Put(key, enc)
		return outcome{key: key, enc: enc, stored: true}
	}

	// The singleflight span covers this caller's whole wait: for the
	// leader it contains the simulate span; for followers it is the
	// dedup wait itself.
	fsp := sp.Child("serve.flight")
	fctx := tracing.ContextWithSpan(reqCtx, fsp)
	var fromStore bool
	_, enc, err, shared := s.flight.Do(reqCtx, key, func() (experiments.Measurement, []byte, error) {
		if s.leadGate != nil {
			s.leadGate(key)
		}
		// Double-check cache and store: a previous flight for this key
		// may have completed between our misses and Do.
		if enc, ok := s.cache.Get(key); ok {
			s.cacheHits.Add(1)
			return experiments.Measurement{}, enc, nil
		}
		if enc, ok := s.storeGet(fctx, key, ph); ok {
			fromStore = true
			s.cache.Put(key, enc)
			return experiments.Measurement{}, enc, nil
		}
		m, err := s.simulate(fctx, jr, job, scale, ph)
		if err != nil {
			return experiments.Measurement{}, nil, err
		}
		enc, err := json.Marshal(m)
		if err != nil {
			return experiments.Measurement{}, nil, err
		}
		s.cache.Put(key, enc)
		s.storePut(fctx, key, enc, ph)
		return m, enc, nil
	})
	fsp.SetAttr("deduped", strconv.FormatBool(shared))
	fsp.End()
	if shared {
		s.deduped.Add(1)
	}
	if err != nil {
		return outcome{key: key, err: err}
	}
	return outcome{key: key, enc: enc, stored: fromStore && !shared, deduped: shared}
}

// simulate acquires a worker slot and runs one job under its time
// budget, recording throughput bookkeeping and latency histograms.
// reqCtx carries only observability state (the request ID and span);
// the simulation itself runs under the server's base context.
func (s *Server) simulate(reqCtx context.Context, jr JobRequest, job experiments.Job, scale workloads.Scale, ph *phases) (experiments.Measurement, error) {
	sp := tracing.SpanFrom(reqCtx)
	qsp := sp.Child("serve.queue.wait")
	tq := time.Now()
	if err := s.adm.AcquireRun(s.baseCtx); err != nil {
		ph.queueWait = endPhase(qsp, tq)
		return experiments.Measurement{}, &simfault.TimeoutFault{
			Origin: "simserver", Cause: "server shutting down: " + err.Error(),
		}
	}
	s.queueWaitSeconds.Observe(time.Since(tq))
	ph.queueWait = endPhase(qsp, tq)
	defer s.adm.ReleaseRun()

	ctx := s.baseCtx
	timeout := s.cfg.JobTimeout
	if jr.TimeoutMs > 0 {
		timeout = time.Duration(jr.TimeoutMs) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	ssp := sp.Child("serve.simulate")
	ssp.SetAttr("workload", job.Workload)
	ssp.SetAttr("arch", string(job.Arch))

	// The showpiece link between service and machine tracing: with
	// MachineTrace on, attach a telemetry session whose Perfetto
	// document records this span's trace/span ids, then capture the
	// document on the simulate span so the coordinator's assembler can
	// splice the per-core pipeline timeline under the HTTP span that
	// caused it. Telemetry is a pure observer, so the measurement (and
	// therefore the cache/store entry) is bit-identical either way.
	var mtrace *bytes.Buffer
	var mtw *telemetry.TraceWriter
	if s.cfg.MachineTrace && ssp != nil {
		mtrace = &bytes.Buffer{}
		mtw = telemetry.NewTraceWriter(mtrace, telemetry.FormatPerfetto)
		sess := mtw.Session(job.Workload + "/" + string(job.Arch))
		sess.SetSpanContext(ssp.TraceID, ssp.SpanID)
		prev := job.Configure
		job.Configure = func(c *machine.Config) {
			if prev != nil {
				prev(c)
			}
			c.Trace = sess
		}
	}

	// Profiler labels make fleet CPU profiles sliceable per job kind:
	// `go tool pprof -tagfocus workload=Pointer` against -debug-addr
	// isolates one workload's share of the samples (DESIGN.md §4).
	t0 := time.Now()
	var ms []experiments.Measurement
	var err error
	pprof.Do(ctx, pprof.Labels("workload", job.Workload, "arch", string(job.Arch)),
		func(ctx context.Context) {
			ms, err = s.runner(scale).RunJobsContext(ctx, 1, []experiments.Job{job})
		})
	wall := time.Since(t0)
	if mtw != nil {
		if cerr := mtw.Close(); cerr == nil {
			ssp.SetMachine(mtrace.Bytes())
		}
	}
	ph.simulate = endPhase(ssp, t0)
	s.observeJobTime(wall)
	s.jobSeconds.Observe(wall)
	if err != nil {
		s.failed.Add(1)
		// Strip the batch attribution wrapper: this is a single job and
		// the response already names it.
		var je *experiments.JobError
		if errors.As(err, &je) {
			err = je.Err
		}
		attrs := []any{
			"requestId", RequestIDFrom(reqCtx),
			"workload", job.Workload, "arch", string(job.Arch),
			"wall", wall.Round(time.Microsecond),
		}
		if kind, ok := simfault.KindOf(err); ok {
			attrs = append(attrs, "fault", string(kind))
			if snap := simfault.SnapshotOf(err); snap != nil {
				attrs = append(attrs, "faultCycle", snap.Cycle)
			}
		}
		s.logger.Error("job failed", attrs...)
		return experiments.Measurement{}, err
	}
	s.completed.Add(1)
	s.logger.Info("job completed",
		"requestId", RequestIDFrom(reqCtx),
		"workload", job.Workload, "arch", string(job.Arch),
		"cycles", ms[0].Cycles, "wall", wall.Round(time.Microsecond))
	return ms[0], nil
}

// observeJobTime folds a sample into the EWMA used for Retry-After.
func (s *Server) observeJobTime(d time.Duration) {
	for {
		old := s.avgJobNs.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/8
		}
		if s.avgJobNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// --- handlers ---

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, r, WireError{Status: http.StatusServiceUnavailable, Kind: KindDraining, Message: "server is draining"})
		return
	}
	var jr JobRequest
	if err := decodeBody(w, r, &jr); err != nil {
		s.writeError(w, r, wireError(badRequest(err)))
		return
	}
	scale, err := ParseScale(jr.Scale, s.cfg.Scale)
	if err != nil {
		s.writeError(w, r, wireError(badRequest(err)))
		return
	}
	if ok, backlog := s.adm.TryAdmit(1); !ok {
		s.reject(w, r, backlog)
		return
	}
	s.accepted.Add(1)
	defer s.adm.Release(1)

	out := s.execute(r.Context(), jr, scale)
	if out.err != nil {
		s.writeError(w, r, wireError(out.err))
		return
	}
	writeJSON(w, http.StatusOK, JobResponse{
		Key: out.key, Cached: out.cached, Stored: out.stored, Deduped: out.deduped, Measurement: out.enc,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeError(w, r, WireError{Status: http.StatusServiceUnavailable, Kind: KindDraining, Message: "server is draining"})
		return
	}
	var br BatchRequest
	if err := decodeBody(w, r, &br); err != nil {
		s.writeError(w, r, wireError(badRequest(err)))
		return
	}
	scale, err := ParseScale(br.Scale, s.cfg.Scale)
	if err != nil {
		s.writeError(w, r, wireError(badRequest(err)))
		return
	}
	jobs, err := ExpandBatch(br, scale)
	if err != nil {
		s.writeError(w, r, wireError(badRequest(err)))
		return
	}
	if len(jobs) > s.workers+s.cfg.Queue {
		s.writeError(w, r, WireError{
			Status: http.StatusBadRequest, Kind: KindBadRequest,
			Message: fmt.Sprintf("batch of %d exceeds server capacity %d; split it", len(jobs), s.workers+s.cfg.Queue),
		})
		return
	}
	if ok, backlog := s.adm.TryAdmit(len(jobs)); !ok {
		s.reject(w, r, backlog)
		return
	}
	s.accepted.Add(int64(len(jobs)))

	// Stream one NDJSON line per job as it completes, out of order.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	items := make(chan BatchItem)
	for i := range jobs {
		go func(i int) {
			defer s.adm.Release(1)
			// Each job gets its own span on its own track, so concurrent
			// jobs render as parallel Perfetto rows instead of
			// interleaving on the request row.
			ctx := r.Context()
			jsp := tracing.SpanFrom(ctx).Child("serve.job")
			if jsp != nil {
				jsp.SetTrack(fmt.Sprintf("job[%d]", i))
				jsp.SetAttr("index", strconv.Itoa(i))
				ctx = tracing.ContextWithSpan(ctx, jsp)
			}
			jscale, serr := ParseScale(jobs[i].Scale, scale)
			var out outcome
			if serr != nil {
				out = outcome{err: badRequest(serr)}
			} else {
				out = s.execute(ctx, jobs[i], jscale)
			}
			jsp.End()
			it := BatchItem{Index: i, Key: out.key, Cached: out.cached, Stored: out.stored, Deduped: out.deduped, Measurement: out.enc}
			if out.err != nil {
				we := wireError(out.err)
				we.RequestID = RequestIDFrom(r.Context())
				it.Error = &we
				it.Measurement = nil
			}
			items <- it
		}(i)
	}
	enc := json.NewEncoder(w)
	for range jobs {
		if err := enc.Encode(<-items); err != nil {
			// Client went away; keep consuming so the workers finish
			// and release their admission tokens.
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// ExpandBatch resolves a batch request to per-job requests. Exported
// because the cluster coordinator expands batches the same way before
// routing each job to its ring owner.
func ExpandBatch(br BatchRequest, scale workloads.Scale) ([]JobRequest, error) {
	switch {
	case br.Matrix != "" && len(br.Jobs) > 0:
		return nil, errors.New("set either matrix or jobs, not both")
	case br.Matrix == "fig8":
		var jrs []JobRequest
		for _, j := range experiments.Fig8Jobs(mem.DefaultHierConfig(), scale) {
			jrs = append(jrs, JobRequest{Workload: j.Workload, Arch: j.Arch})
		}
		return jrs, nil
	case br.Matrix != "":
		return nil, fmt.Errorf("unknown matrix %q (want \"fig8\")", br.Matrix)
	case len(br.Jobs) == 0:
		return nil, errors.New("empty batch")
	}
	return br.Jobs, nil
}

// handleMetrics content-negotiates between the JSON MetricsSnapshot
// (the default, what simclient consumes) and the Prometheus text
// exposition (Accept: text/plain — what a scraper sends — or an
// explicit ?format=prom). Both views are rendered from one snapshot,
// so the counters always agree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	switch {
	case format == "prom",
		format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain"):
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writePrometheus(w)
	case format == "" || format == "json":
		writeJSON(w, http.StatusOK, s.Metrics())
	default:
		s.writeError(w, r, WireError{
			Status: http.StatusBadRequest, Kind: KindBadRequest,
			Message: fmt.Sprintf("unknown metrics format %q (want \"json\" or \"prom\")", format),
		})
	}
}

// handleTraces dumps the span ring as NDJSON, optionally filtered by
// ?request=<id>. With tracing off the body is empty — the endpoint
// stays mounted so probes don't need to know the configuration.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.tracer == nil {
		return
	}
	_ = s.tracer.WriteNDJSON(w, r.URL.Query().Get("request"))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]string{"status": "ok", "store": s.storeState()}
	if s.Draining() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() MetricsSnapshot {
	var cycles, insts int64
	s.mu.Lock()
	for _, r := range s.runners {
		c, i := r.SimTotals()
		cycles += c
		insts += i
	}
	s.mu.Unlock()
	wall := time.Since(s.start)
	tp := stats.Throughput{SimCycles: cycles, SimInsts: insts, Wall: wall}
	var st StoreMetrics
	st.State = s.storeState()
	if s.store != nil {
		rep := s.store.Recovery()
		st.Hits = s.storeHits.Load()
		st.Misses = s.storeMisses.Load()
		st.Puts = s.storePuts.Load()
		st.Errors = s.storeErrors.Load()
		st.Records = s.store.Len()
		st.RecoveredRecords = rep.Records
		st.TornTail = rep.TornTail
		st.TruncatedBytes = rep.TruncatedBytes
	}
	return MetricsSnapshot{
		Accepted:      s.accepted.Load(),
		Rejected:      s.rejected.Load(),
		Deduped:       s.deduped.Load(),
		CacheHits:     s.cacheHits.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		InFlight:      int64(s.adm.InFlight()),
		CacheEntries:  s.cache.Len(),
		Workers:       s.workers,
		Queue:         s.cfg.Queue,
		Capacity:      s.workers + s.cfg.Queue,
		Store:         st,
		UptimeSeconds: wall.Seconds(),
		SimCycles:     cycles,
		SimInsts:      insts,
		MCyclesPerSec: tp.CyclesPerSec() / 1e6,
		SimMIPS:       tp.MIPS(),
		Throughput:    tp.String(),
		Runtime:       ReadRuntimeMetrics(),
	}
}

// reject answers 429 with a Retry-After estimate.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, backlog int) {
	s.rejected.Add(1)
	secs := retryAfter(backlog, s.workers, time.Duration(s.avgJobNs.Load()))
	s.logger.Warn("admission rejected",
		"requestId", RequestIDFrom(r.Context()), "backlog", backlog, "retryAfterSeconds", secs)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeError(w, r, WireError{
		Status: http.StatusTooManyRequests, Kind: KindOverloaded,
		Message: fmt.Sprintf("admission queue full (%d jobs in flight); retry in %ds", backlog, secs),
	})
}

// --- plumbing ---

// badRequestError marks request-shaped failures before a simulation
// ever starts.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return badRequestError{err} }

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError stamps the request ID onto the wire error so a client can
// quote it back when reporting a failure, logs it, and renders the
// standard error body.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, we WireError) {
	we.RequestID = RequestIDFrom(r.Context())
	level := slog.LevelWarn
	if we.Status >= http.StatusInternalServerError {
		level = slog.LevelError
	}
	s.logger.Log(r.Context(), level, "request error",
		"requestId", we.RequestID, "status", we.Status, "kind", we.Kind, "message", we.Message)
	writeJSON(w, we.Status, ErrorBody{Err: we})
}
