package simserver

import "runtime"

// ReadRuntimeMetrics snapshots the Go runtime introspection counters
// for the current process. Exported because the cluster coordinator
// reports its own process's runtime on its merged /metrics view with
// the same reader.
//
// ReadMemStats stops the world briefly; /metrics is a scrape-cadence
// endpoint, not a hot path, so that cost is fine here — never call
// this from the job execution path.
func ReadRuntimeMetrics() RuntimeMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeMetrics{
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
		GCPauseTotalNs: ms.PauseTotalNs,
		GCCycles:       ms.NumGC,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
}
