package simserver

// Test-only access for the external simserver_test package (which
// imports simclient and therefore cannot live in-package).

// SetLeadGate installs a hook a singleflight leader calls after
// registering its key and before simulating; tests use it to hold a
// job in flight deterministically.
func SetLeadGate(s *Server, fn func(key string)) { s.leadGate = fn }

// FlightWaiters reports how many followers are blocked on key's
// in-flight simulation.
func FlightWaiters(s *Server, key string) int { return s.flight.Waiters(key) }
